module multitherm

go 1.22
