// Package multitherm is a from-scratch Go reproduction of Donald &
// Martonosi, "Techniques for Multicore Thermal Management:
// Classification and New Exploration" (ISCA 2006): a taxonomy of
// dynamic thermal management policies for chip multiprocessors —
// stop-go vs. control-theoretic DVFS, global vs. distributed scope, and
// OS-level thread migration driven by performance counters or thermal
// sensors — evaluated on a simulated 4-core processor with a
// HotSpot-style compact thermal model.
//
// The facade in this package is the supported entry point: configure a
// system, pick a policy cell from the taxonomy, and simulate a workload
// mix. The full per-table/figure reproduction of the paper lives behind
// Experiments/RunExperiment and the cmd/sweep binary.
package multitherm

import (
	"fmt"
	"strings"

	"multitherm/internal/core"
	"multitherm/internal/experiments"
	"multitherm/internal/metrics"
	"multitherm/internal/sim"
	"multitherm/internal/workload"
)

// Policy identifies one cell of the paper's 12-policy taxonomy
// (Table 2).
type Policy = core.PolicySpec

// Config carries every model parameter of a simulation: floorplan,
// thermal package, power model, core model, policy constants, and
// simulated duration.
type Config = sim.Config

// Result holds the measurements of one simulation: instruction
// throughput (BIPS), adjusted duty cycle, stall/penalty accounting,
// migrations, and thermal statistics.
type Result = metrics.Run

// Options configures paper-reproduction experiments.
type Options = experiments.Options

// ExperimentResult is a rendered paper artifact.
type ExperimentResult = experiments.Result

// Baseline is the paper's normalization policy: distributed stop-go.
var Baseline = core.Baseline

// DefaultConfig returns the calibrated configuration of the paper's
// experiments: the 4-core 3.6 GHz chip of Table 3 under an 84.2 °C
// constraint, simulated for 0.5 s of silicon time.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Policies enumerates the full taxonomy in the paper's order.
func Policies() []Policy { return core.Taxonomy() }

// PolicyNames lists the accepted PolicyByName identifiers, sorted.
func PolicyNames() []string { return core.PolicyNames() }

// PolicyByName resolves names like "dist-dvfs", "global-stopgo",
// "dist-stopgo+counter", or "dist-dvfs+sensor".
func PolicyByName(name string) (Policy, error) {
	p, err := core.PolicyByName(name)
	if err != nil {
		return Policy{}, fmt.Errorf("multitherm: unknown policy %q (known: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
	return p, nil
}

// Workloads lists the names of the 12 four-process mixes of Table 4.
func Workloads() []string {
	var out []string
	for _, m := range workload.Mixes {
		out = append(out, m.Name)
	}
	return out
}

// Benchmarks lists the 22 SPEC CPU2000-like benchmark profiles.
func Benchmarks() []string { return workload.Benchmarks() }

// Simulate runs one policy on one named workload mix under the given
// configuration and returns the collected metrics.
func Simulate(cfg Config, workloadName string, p Policy) (*Result, error) {
	mix, err := workload.MixByName(workloadName)
	if err != nil {
		return nil, err
	}
	r, err := sim.New(cfg, mix, p)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// SimulateTimeshared runs a DTM policy with more processes than cores:
// the OS round-robins the population across the chip while the policy
// manages heat (the multiprogrammed case the paper's §6 notes exists in
// any real system). benchmarks must name at least as many profiles as
// the chip has cores; timeslice 0 selects the 20 ms default.
func SimulateTimeshared(cfg Config, label string, benchmarks []string, p Policy, timeslice float64) (*Result, error) {
	r, err := sim.NewTimeshared(cfg, label, benchmarks, p, timeslice)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// SimulateUnthrottled runs a workload with DTM disabled — the reference
// for metric validation and for demonstrating thermal duress.
func SimulateUnthrottled(cfg Config, workloadName string) (*Result, error) {
	mix, err := workload.MixByName(workloadName)
	if err != nil {
		return nil, err
	}
	r, err := sim.NewUnthrottled(cfg, mix)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// Experiments lists every reproducible paper artifact (tables and
// figures) with its identifier and description.
func Experiments() []experiments.Runner { return experiments.Registry() }

// DefaultExperimentOptions runs experiments at full paper fidelity
// (0.5 s simulations); QuickExperimentOptions trades precision for
// speed.
func DefaultExperimentOptions() Options { return experiments.DefaultOptions() }

// QuickExperimentOptions returns reduced-fidelity options for smoke
// tests and demos.
func QuickExperimentOptions() Options { return experiments.QuickOptions() }

// RunExperiment reproduces one paper artifact by identifier ("table1",
// "fig3", "table8", ...).
func RunExperiment(name string, opt Options) (ExperimentResult, error) {
	r, err := experiments.Find(name)
	if err != nil {
		return nil, err
	}
	return r.Run(opt)
}
