#!/bin/sh
# benchsmoke.sh — benchmark-regression gate for CI.
#
# Runs the three benchmarks that cover the hot paths end to end — the
# batched thermal kernel (BenchmarkThermalStepBatch32), the batched
# sweep engine (BenchmarkSweepBatched/batch8), and the sparse Krylov
# step on a 256-core generated grid (BenchmarkGridStepN256) — takes the
# min of three
# repetitions (min-of-N is robust against scheduler noise on shared
# runners; the min is the least-perturbed run), and fails if either
# regresses more than 25% against the checked-in BENCH_baseline.json.
#
# Usage: scripts/benchsmoke.sh            # gate against the baseline
#        scripts/benchsmoke.sh --update   # re-measure, rewrite baseline
#
# The baseline is wall-clock on a reference machine, so the 25% gate is
# deliberately loose: it catches algorithmic regressions (a lost SIMD
# dispatch, an allocation sneaking into the tick loop), not single-digit
# drift. After an intentional perf change, or when moving the reference
# machine, refresh with --update and commit the new numbers.
# The serving stack is gated separately: BenchmarkServeWarm (one warm
# cache-hit request over loopback HTTP) is compared against the
# serve_warm_request_ns recorded in BENCH_serve.json by
# cmd/thermald-bench, with a loose 3x bound — HTTP round-trips on a
# shared runner are noisier than kernel benches, and the gate only
# needs to catch the cache or the canonical-bytes path falling off the
# hit path entirely. Skipped when BENCH_serve.json is absent.
set -eu

cd "$(dirname "$0")/.."
base="BENCH_baseline.json"
serve="BENCH_serve.json"

# min_ns <bench regex> <benchtime>: min ns/op over 3 repetitions.
min_ns() {
    go test -run '^$' -bench "$1" -benchtime "$2" -count=3 . |
        awk '/ns\/op/ { if (min == "" || $3 + 0 < min + 0) min = $3 } END { print (min == "" ? "FAIL" : min) }'
}

field() {
    awk -v k="\"$1\"" -F '[:,]' '$1 ~ k { gsub(/[ \t]/, "", $2); print $2; exit }' "$base"
}

echo "building..." >&2
go build ./...

echo "BenchmarkThermalStepBatch32 (min of 3 x 200k iterations)..." >&2
batch32=$(min_ns 'BenchmarkThermalStepBatch32' 200000x)
echo "BenchmarkSweepBatched/batch8 (min of 3 x 1 iteration)..." >&2
sweep8=$(min_ns 'BenchmarkSweepBatched/batch8' 1x)
echo "BenchmarkGridStepN256 (min of 3 x 3k iterations)..." >&2
grid256=$(min_ns 'BenchmarkGridStepN256' 3000x)

if [ "${1:-}" = "--update" ]; then
    cat >"$base" <<EOF
{
  "thermal_step_batch32_ns_per_op": ${batch32},
  "sweep_batched8_ns_per_op": ${sweep8},
  "grid_step_n256_ns_per_op": ${grid256}
}
EOF
    echo "wrote ${base}:" >&2
    cat "$base"
    exit 0
fi

status=0
for row in \
    "BenchmarkThermalStepBatch32 ${batch32} $(field thermal_step_batch32_ns_per_op)" \
    "BenchmarkSweepBatched/batch8 ${sweep8} $(field sweep_batched8_ns_per_op)" \
    "BenchmarkGridStepN256 ${grid256} $(field grid_step_n256_ns_per_op)"; do
    set -- $row
    if ! awk -v name="$1" -v got="$2" -v want="$3" 'BEGIN {
        ratio = got / want
        printf "%-30s %14.0f ns/op  baseline %14.0f  ratio %.2f\n", name, got, want, ratio
        exit (ratio > 1.25 ? 1 : 0)
    }'; then
        echo "FAIL: ${1} regressed more than 25% against ${base}" >&2
        status=1
    fi
done

if [ -f "$serve" ]; then
    echo "BenchmarkServeWarm (min of 3 x 2000 iterations)..." >&2
    servewarm=$(go test -run '^$' -bench '^BenchmarkServeWarm$' -benchtime 2000x -count=3 ./internal/serve/ |
        awk '/ns\/op/ { if (min == "" || $3 + 0 < min + 0) min = $3 } END { print (min == "" ? "FAIL" : min) }')
    servebase=$(awk -F '[:,]' '$1 ~ /"serve_warm_request_ns"/ { gsub(/[ \t]/, "", $2); print $2; exit }' "$serve")
    if ! awk -v got="$servewarm" -v want="$servebase" 'BEGIN {
        ratio = got / want
        printf "%-30s %14.0f ns/op  baseline %14.0f  ratio %.2f\n", "BenchmarkServeWarm", got, want, ratio
        exit (ratio > 3.0 ? 1 : 0)
    }'; then
        echo "FAIL: BenchmarkServeWarm more than 3x the serve_warm_request_ns recorded in ${serve}" >&2
        status=1
    fi
else
    echo "skipping serve gate: no ${serve}" >&2
fi
exit $status
