#!/bin/sh
# bench.sh — benchmark the thermal kernel and the parallel sweep engine,
# emitting a machine-readable summary to BENCH_sweep.json.
#
# Usage: scripts/bench.sh [output.json]
#
# Measures:
#   - kernel_ns_per_op: BenchmarkThermalStep (one 28 us transient step of
#     the 55-node CMP4 RC network, RK4 with substeps)
#   - kernel_flat_ns_per_op: BenchmarkThermalStepFlat (single RK4 step at
#     the stability bound, no substep loop)
#   - kernel_expm_ns_per_op: BenchmarkThermalStepExpm (exact ZOH step
#     through the packed propagator, constant power)
#   - kernel_expm_dirty_ns_per_op: BenchmarkThermalStepExpmDirty (same
#     with per-tick SetPower, the simulator's leakage-feedback pattern)
#   - kernel_expm_speedup: RK4 step time / exact step time
#   - kernel_batch_ns_per_lane: BenchmarkThermalStepBatch8 per-lane cost
#     (eight models stepped in lockstep through one shared propagator)
#   - batch_speedup: dirty exact step time / batched per-lane step time
#   - sweep wall-clock of a quick reproduction at -parallel 1 vs all CPUs
#
# On a single-core machine the two sweep times are expected to match;
# the speedup column is only meaningful with GOMAXPROCS > 1.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_sweep.json}"
ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)"

bench_ns() {
    # Fixed iteration count + min of 3 repetitions: robust on noisy VMs.
    go test -run '^$' -bench "^$1\$" -benchtime=200000x -count=3 . |
        awk '/ns\/op/ { if (min == "" || $3 < min) min = $3 } END { print (min == "" ? "null" : min) }'
}

sweep_seconds() {
    start=$(date +%s.%N 2>/dev/null || date +%s)
    go run ./cmd/sweep -quick -simtime 0.02 -parallel "$1" >/dev/null
    end=$(date +%s.%N 2>/dev/null || date +%s)
    awk -v a="$start" -v b="$end" 'BEGIN { printf "%.2f", b - a }'
}

echo "building..." >&2
go build ./...

echo "kernel benchmarks (min of 3 x 200k iterations)..." >&2
step_ns=$(bench_ns BenchmarkThermalStep)
flat_ns=$(bench_ns BenchmarkThermalStepFlat)
expm_ns=$(bench_ns BenchmarkThermalStepExpm)
expm_dirty_ns=$(bench_ns BenchmarkThermalStepExpmDirty)
expm_speedup=$(awk -v a="$step_ns" -v b="$expm_ns" 'BEGIN { printf "%.2f", (b > 0 ? a / b : 0) }')
# BenchmarkThermalStepBatch8 steps eight lanes per op; per-lane cost is
# ns/op divided by the batch width.
batch8_ns=$(bench_ns BenchmarkThermalStepBatch8)
batch_lane_ns=$(awk -v a="$batch8_ns" 'BEGIN { printf "%.1f", a / 8 }')
batch_speedup=$(awk -v a="$expm_dirty_ns" -v b="$batch_lane_ns" 'BEGIN { printf "%.2f", (b > 0 ? a / b : 0) }')

echo "quick sweep, sequential..." >&2
seq_s=$(sweep_seconds 1)
echo "quick sweep, ${ncpu} workers..." >&2
par_s=$(sweep_seconds 0)

speedup=$(awk -v a="$seq_s" -v b="$par_s" 'BEGIN { printf "%.2f", (b > 0 ? a / b : 0) }')

cat >"$out" <<EOF
{
  "gomaxprocs": ${ncpu},
  "kernel_ns_per_op": ${step_ns},
  "kernel_flat_ns_per_op": ${flat_ns},
  "kernel_expm_ns_per_op": ${expm_ns},
  "kernel_expm_dirty_ns_per_op": ${expm_dirty_ns},
  "kernel_expm_speedup": ${expm_speedup},
  "kernel_batch_ns_per_lane": ${batch_lane_ns},
  "batch_speedup": ${batch_speedup},
  "sweep_quick_sequential_s": ${seq_s},
  "sweep_quick_parallel_s": ${par_s},
  "sweep_parallel_speedup": ${speedup}
}
EOF

echo "wrote ${out}:" >&2
cat "$out"
