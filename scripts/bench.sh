#!/bin/sh
# bench.sh — benchmark the thermal kernel and the parallel sweep engine,
# emitting a machine-readable summary to BENCH_sweep.json.
#
# Usage: scripts/bench.sh [output.json]
#
# Measures:
#   - kernel_ns_per_op: BenchmarkThermalStep (one 28 us transient step of
#     the 55-node CMP4 RC network, RK4 with substeps)
#   - kernel_flat_ns_per_op: BenchmarkThermalStepFlat (single RK4 step at
#     the stability bound, no substep loop)
#   - kernel_expm_ns_per_op: BenchmarkThermalStepExpm (exact ZOH step
#     through the packed propagator, constant power)
#   - kernel_expm_dirty_ns_per_op: BenchmarkThermalStepExpmDirty (same
#     with per-tick SetPower, the simulator's leakage-feedback pattern)
#   - kernel_expm_speedup: RK4 step time / exact step time
#   - kernel_batch_ns_per_lane: BenchmarkThermalStepBatch8 per-lane cost
#     (eight models stepped in lockstep through one shared propagator)
#   - batch_speedup: dirty exact step time / batched per-lane step time
#   - sweep_n{4,16,64,256}_step_ns: BenchmarkGridStepN* — one exact tick
#     on generated 2x2/4x4/8x8/16x16 grids (26/74/266/1034 thermal
#     nodes; dense packed below the 64-node crossover, sparse Krylov
#     above it)
#   - step_cost_exponent: least-squares slope of ln(step ns) against
#     ln(cores) over the four grid sizes — the sparse-solve scaling
#     claim (dense exact ZOH would fit ~2, per-nonzero cost fits < 2)
#   - sweep wall-clock of a quick reproduction, three ways: -workers 1
#     at GOMAXPROCS=1 (the true sequential baseline), -workers 0 at
#     GOMAXPROCS=1 (scheduler overhead with no extra CPUs), and
#     -workers 0 at GOMAXPROCS=NumCPU (the real parallel run)
#   - sweep_parallel_speedup_ncpu: sequential / NumCPU wall-clock, the
#     honest multi-core speedup; `workers` records NumCPU alongside so
#     the number can be judged against the machine it ran on
#   - previous_*: the prior run's headline numbers, carried forward so
#     the trajectory survives regeneration
#
# On a single-core machine all three sweep times are expected to match;
# the speedup fields are only meaningful with NumCPU > 1.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_sweep.json}"
ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)"

bench_ns() {
    # Fixed iteration count + min of 3 repetitions: robust on noisy VMs.
    go test -run '^$' -bench "^$1\$" -benchtime=200000x -count=3 . |
        awk '/ns\/op/ { if (min == "" || $3 < min) min = $3 } END { print (min == "" ? "null" : min) }'
}

# bench_ns_at <name> <iterations>: like bench_ns with a per-benchmark
# iteration count, for the big-grid steps where 200k iterations would
# take minutes each.
bench_ns_at() {
    go test -run '^$' -bench "^$1\$" -benchtime="$2"x -count=3 . |
        awk '/ns\/op/ { if (min == "" || $3 < min) min = $3 } END { print (min == "" ? "null" : min) }'
}

# sweep_seconds <workers> <gomaxprocs>
sweep_seconds() {
    start=$(date +%s.%N 2>/dev/null || date +%s)
    GOMAXPROCS="$2" go run ./cmd/sweep -quick -simtime 0.02 -workers "$1" >/dev/null
    end=$(date +%s.%N 2>/dev/null || date +%s)
    awk -v a="$start" -v b="$end" 'BEGIN { printf "%.2f", b - a }'
}

# prev_field <name>: pull a numeric field out of the existing summary so
# regeneration keeps the previous headline numbers for trajectory.
prev_field() {
    [ -f "$out" ] || { echo null; return; }
    awk -v k="\"$1\"" -F '[:,]' '$1 ~ k { gsub(/[ \t]/, "", $2); print ($2 == "" ? "null" : $2); found = 1; exit }
        END { if (!found) print "null" }' "$out"
}

# prev_or <name> <current>: prev_field, seeded from the current
# measurement when the field is absent — on the first run, or the first
# run after a metric is added, the trajectory starts at the current
# value instead of recording "previous_*: null".
prev_or() {
    v=$(prev_field "$1")
    [ "$v" = "null" ] && v="$2"
    echo "$v"
}

echo "building..." >&2
go build ./...

echo "kernel benchmarks (min of 3 x 200k iterations)..." >&2
step_ns=$(bench_ns BenchmarkThermalStep)
flat_ns=$(bench_ns BenchmarkThermalStepFlat)
expm_ns=$(bench_ns BenchmarkThermalStepExpm)
expm_dirty_ns=$(bench_ns BenchmarkThermalStepExpmDirty)
expm_speedup=$(awk -v a="$step_ns" -v b="$expm_ns" 'BEGIN { printf "%.2f", (b > 0 ? a / b : 0) }')
# BenchmarkThermalStepBatch8 steps eight lanes per op; per-lane cost is
# ns/op divided by the batch width.
batch8_ns=$(bench_ns BenchmarkThermalStepBatch8)
batch_lane_ns=$(awk -v a="$batch8_ns" 'BEGIN { printf "%.1f", a / 8 }')
batch_speedup=$(awk -v a="$expm_dirty_ns" -v b="$batch_lane_ns" 'BEGIN { printf "%.2f", (b > 0 ? a / b : 0) }')

echo "many-core grid step scaling (4/16/64/256 cores)..." >&2
n4_ns=$(bench_ns_at BenchmarkGridStepN4 200000)
n16_ns=$(bench_ns_at BenchmarkGridStepN16 20000)
n64_ns=$(bench_ns_at BenchmarkGridStepN64 10000)
n256_ns=$(bench_ns_at BenchmarkGridStepN256 3000)
# Least-squares fit of ln(ns) over ln(cores): the fitted exponent is the
# effective power p in step_cost ~ cores^p.
step_exponent=$(awk -v a="$n4_ns" -v b="$n16_ns" -v c="$n64_ns" -v d="$n256_ns" 'BEGIN {
    n = 4
    x[1] = log(4);   y[1] = log(a)
    x[2] = log(16);  y[2] = log(b)
    x[3] = log(64);  y[3] = log(c)
    x[4] = log(256); y[4] = log(d)
    for (i = 1; i <= n; i++) { sx += x[i]; sy += y[i] }
    mx = sx / n; my = sy / n
    for (i = 1; i <= n; i++) { num += (x[i] - mx) * (y[i] - my); den += (x[i] - mx) ^ 2 }
    printf "%.3f", num / den
}')

# Warm the build cache and the binary link before timing: the first
# `go run` pays compile/link and cold page-cache costs that would
# otherwise inflate whichever run happens to go first (and with it the
# reported speedup).
go run ./cmd/sweep -list >/dev/null

echo "quick sweep, 1 worker at GOMAXPROCS=1..." >&2
seq_s=$(sweep_seconds 1 1)
echo "quick sweep, all workers at GOMAXPROCS=1..." >&2
par_s=$(sweep_seconds 0 1)
echo "quick sweep, all workers at GOMAXPROCS=${ncpu}..." >&2
par_ncpu_s=$(sweep_seconds 0 "$ncpu")

speedup=$(awk -v a="$seq_s" -v b="$par_s" 'BEGIN { printf "%.2f", (b > 0 ? a / b : 0) }')
speedup_ncpu=$(awk -v a="$seq_s" -v b="$par_ncpu_s" 'BEGIN { printf "%.2f", (b > 0 ? a / b : 0) }')

# Carry the prior run's headline numbers before overwriting the file,
# seeding any metric the existing summary predates from this run.
prev_batch_speedup=$(prev_or batch_speedup "$batch_speedup")
prev_batch_lane_ns=$(prev_or kernel_batch_ns_per_lane "$batch_lane_ns")
prev_speedup=$(prev_or sweep_parallel_speedup "$speedup")
prev_speedup_ncpu=$(prev_or sweep_parallel_speedup_ncpu "$speedup_ncpu")
prev_step_exponent=$(prev_or step_cost_exponent "$step_exponent")

cat >"$out" <<EOF
{
  "gomaxprocs": ${ncpu},
  "workers": ${ncpu},
  "kernel_ns_per_op": ${step_ns},
  "kernel_flat_ns_per_op": ${flat_ns},
  "kernel_expm_ns_per_op": ${expm_ns},
  "kernel_expm_dirty_ns_per_op": ${expm_dirty_ns},
  "kernel_expm_speedup": ${expm_speedup},
  "kernel_batch_ns_per_lane": ${batch_lane_ns},
  "batch_speedup": ${batch_speedup},
  "sweep_n4_step_ns": ${n4_ns},
  "sweep_n16_step_ns": ${n16_ns},
  "sweep_n64_step_ns": ${n64_ns},
  "sweep_n256_step_ns": ${n256_ns},
  "step_cost_exponent": ${step_exponent},
  "sweep_quick_sequential_s": ${seq_s},
  "sweep_quick_parallel_s": ${par_s},
  "sweep_quick_parallel_ncpu_s": ${par_ncpu_s},
  "sweep_parallel_speedup": ${speedup},
  "sweep_parallel_speedup_ncpu": ${speedup_ncpu},
  "previous_kernel_batch_ns_per_lane": ${prev_batch_lane_ns},
  "previous_batch_speedup": ${prev_batch_speedup},
  "previous_sweep_parallel_speedup": ${prev_speedup},
  "previous_sweep_parallel_speedup_ncpu": ${prev_speedup_ncpu},
  "previous_step_cost_exponent": ${prev_step_exponent}
}
EOF

echo "wrote ${out}:" >&2
cat "$out"
