#!/usr/bin/env bash
# lint.sh — run the repository's full static-analysis stack.
#
#   ./scripts/lint.sh                 best effort: run whatever tools exist,
#                                     install missing ones only if the module
#                                     proxy is reachable, skip otherwise
#   ./scripts/lint.sh --require-tools fail if a tool can neither be found nor
#                                     installed (CI mode)
#
# mtlint and go vet always run — they need nothing but the Go toolchain.
# staticcheck, golangci-lint, and govulncheck are external: installs go
# through `go install` into GOBIN (cacheable in CI), pinned versions so
# cache keys stay meaningful.
set -euo pipefail
cd "$(dirname "$0")/.."

REQUIRE_TOOLS=0
[[ "${1:-}" == "--require-tools" ]] && REQUIRE_TOOLS=1

GOBIN="${GOBIN:-$(go env GOPATH)/bin}"
export PATH="$GOBIN:$PATH"

STATICCHECK_VERSION=2023.1.7   # last line supporting go1.22
GOLANGCI_VERSION=v1.59.1
GOVULNCHECK_VERSION=v1.1.3

fail=0

# ensure_tool <binary> <install-path@version>
ensure_tool() {
  local bin=$1 mod=$2
  if command -v "$bin" >/dev/null 2>&1; then
    return 0
  fi
  echo "lint.sh: $bin not found; attempting go install $mod" >&2
  if GOBIN="$GOBIN" go install "$mod" 2>/dev/null && command -v "$bin" >/dev/null 2>&1; then
    return 0
  fi
  if [[ $REQUIRE_TOOLS == 1 ]]; then
    echo "lint.sh: FATAL: $bin unavailable and install failed" >&2
    exit 1
  fi
  echo "lint.sh: skipping $bin (offline or install failed)" >&2
  return 1
}

echo "==> go vet"
go vet ./...

# mtlint runs with a wall-clock budget (default 60s, override with
# MTLINT_BUDGET_SECONDS). The driver parallelizes (package, analyzer)
# slots, and the interprocedural passes (taintcheck, and the summary
# lookups in lockcheck/lifecycle) share one memoized per-invocation
# summary cache — each function is summarized once no matter how many
# passes ask. The budget catches a fixpoint or cache regression before
# it quietly doubles every CI run.
echo "==> mtlint"
mtlint_budget="${MTLINT_BUDGET_SECONDS:-60}"
mtlint_start=$(date +%s)
go run ./cmd/mtlint ./...
mtlint_elapsed=$(( $(date +%s) - mtlint_start ))
echo "mtlint: clean in ${mtlint_elapsed}s (budget ${mtlint_budget}s)"
if [[ $mtlint_elapsed -gt $mtlint_budget ]]; then
  echo "lint.sh: FATAL: mtlint took ${mtlint_elapsed}s, over the ${mtlint_budget}s budget; profile the driver before raising MTLINT_BUDGET_SECONDS" >&2
  exit 1
fi

if ensure_tool staticcheck "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION"; then
  echo "==> staticcheck"
  staticcheck ./... || fail=1
fi

if ensure_tool golangci-lint "github.com/golangci/golangci-lint/cmd/golangci-lint@$GOLANGCI_VERSION"; then
  echo "==> golangci-lint"
  golangci-lint run || fail=1
fi

if ensure_tool govulncheck "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION"; then
  echo "==> govulncheck"
  govulncheck ./... || fail=1
fi

exit $fail
