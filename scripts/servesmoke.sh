#!/bin/sh
# servesmoke.sh — end-to-end smoke for the thermald serving stack.
#
# Builds thermald and thermald-bench, starts the server on an ephemeral
# port, fires a mixed sim/sweep/trace burst at it twice in different
# client orderings (thermald-bench -smoke), and fails unless every
# response is bit-identical across the two runs — the serving layer's
# determinism contract. Finishes by exercising the SIGTERM drain path
# and checking the server reports a clean exit.
set -eu

cd "$(dirname "$0")/.."
tmp="${TMPDIR:-/tmp}/thermald-smoke.$$"
mkdir -p "$tmp"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

echo "building..." >&2
go build -o "$tmp/thermald" ./cmd/thermald
go build -o "$tmp/thermald-bench" ./cmd/thermald-bench

"$tmp/thermald" -addr 127.0.0.1:0 >"$tmp/thermald.log" 2>&1 &
pid=$!

# The server prints "thermald: listening on http://host:port" once the
# listener is up; with port 0 that line is the only way to learn the
# port.
url=""
i=0
while [ $i -lt 100 ]; do
    url=$(sed -n 's/^thermald: listening on \(http:.*\)$/\1/p' "$tmp/thermald.log" | head -1)
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { cat "$tmp/thermald.log" >&2; echo "FAIL: thermald exited before listening" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$url" ] || { echo "FAIL: thermald never reported its address" >&2; exit 1; }
echo "thermald up at ${url}" >&2

"$tmp/thermald-bench" -smoke -url "$url"

# Graceful drain under load: open trace streams, then SIGTERM while
# they are in flight. The server must finish every open stream, report
# a clean drain, and exit 0 — a drain that cuts streams or hangs on
# them is exactly the bug this guards against.
trace_body='{"workload":"workload1","policy":"dist-stopgo","simtime_s":0.05,"every":1}'
tpids=""
for i in 1 2 3; do
    curl -sS -N -X POST -H 'Content-Type: application/json' -d "$trace_body" \
        "$url/v1/sim/trace" >"$tmp/trace.$i" 2>"$tmp/trace.$i.err" &
    tpids="$tpids $!"
done
sleep 0.2
kill -TERM "$pid"
for tp in $tpids; do
    wait "$tp" || {
        cat "$tmp"/trace.*.err >&2
        echo "FAIL: in-flight trace stream failed during drain" >&2
        exit 1
    }
done
for i in 1 2 3; do
    [ -s "$tmp/trace.$i" ] || { echo "FAIL: trace stream $i returned no data" >&2; exit 1; }
done
i=0
while kill -0 "$pid" 2>/dev/null; do
    [ $i -lt 100 ] || { echo "FAIL: thermald did not drain within 10s" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
status=0
wait "$pid" || status=$?
[ "$status" -eq 0 ] || {
    cat "$tmp/thermald.log" >&2
    echo "FAIL: thermald exited with status $status after SIGTERM" >&2
    exit 1
}
grep -q "thermald: drained" "$tmp/thermald.log" || {
    cat "$tmp/thermald.log" >&2
    echo "FAIL: thermald exited without reporting a clean drain" >&2
    exit 1
}
echo "servesmoke: ok (drained with in-flight trace streams, exit 0)" >&2
