// Command mtlint is the repository's domain-specific static-analysis
// gate: a multichecker over the internal/analysis suite.
//
//	go run ./cmd/mtlint ./...
//
// Analyzers (see internal/analysis/... for the full contracts):
//
//	determinism  — wall-clock reads, global rand, map iteration, and
//	               unordered goroutine result collection in
//	               //mtlint:deterministic packages
//	floatcmp     — ==/!= and switch on floating-point operands
//	zeroalloc    — heap escapes inside //mtlint:zeroalloc functions
//	               (from `go build -gcflags=-m` output)
//	kernelparity — asm kernels must register a generic twin and a
//	               differential test via //mtlint:generic
//	unitsafety   — raw floats in unit-bearing APIs, cross-dimension
//	               conversions, and unaudited .Raw() escapes in
//	               //mtlint:units packages
//	lockcheck    — lock-ordering cycles, locks held across blocking
//	               calls, and //mtlint:guardedby field accesses
//	               without the lock (CFG must-hold dataflow)
//	cowcheck     — mutations of atomically published maps/slices and
//	               fields mixing sync/atomic with plain access (CFG
//	               may-publish dataflow)
//	lifecycle    — goroutines without a join path and timers without
//	               a stop path in //mtlint:deterministic or
//	               //mtlint:lifecycle packages
//	taintcheck   — request/flag/env-derived values reaching make
//	               sizes, loop bounds, or slice indexing without a
//	               recognized clamp (interprocedural, call-graph
//	               summaries)
//
// Exit status is 2 on findings or type errors, 1 on infrastructure
// failure, 0 when clean. -json emits machine-readable findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"

	"multitherm/internal/analysis/cowcheck"
	"multitherm/internal/analysis/determinism"
	"multitherm/internal/analysis/driver"
	"multitherm/internal/analysis/floatcmp"
	"multitherm/internal/analysis/kernelparity"
	"multitherm/internal/analysis/lifecycle"
	"multitherm/internal/analysis/lockcheck"
	"multitherm/internal/analysis/taintcheck"
	"multitherm/internal/analysis/unitsafety"
	"multitherm/internal/analysis/zeroalloc"
)

var all = []*driver.Analyzer{
	determinism.Analyzer,
	floatcmp.Analyzer,
	zeroalloc.Analyzer,
	kernelparity.Analyzer,
	unitsafety.Analyzer,
	lockcheck.Analyzer,
	cowcheck.Analyzer,
	lifecycle.Analyzer,
	taintcheck.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	run := flag.String("run", "", "only run analyzers matching this regexp")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mtlint [-json] [-run regexp] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := all
	if *run != "" {
		rx, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtlint: bad -run regexp: %v\n", err)
			os.Exit(1)
		}
		analyzers = nil
		for _, a := range all {
			if rx.MatchString(a.Name) {
				analyzers = append(analyzers, a)
			}
		}
	}

	pkgs, err := driver.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtlint: %v\n", err)
		os.Exit(1)
	}
	failed := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "mtlint: %s: type error: %v\n", pkg.ImportPath, terr)
			failed = true
		}
	}

	diags, errs := driver.Run(pkgs, analyzers)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "mtlint: %v\n", e)
		failed = true
	}
	if *jsonOut {
		if diags == nil {
			diags = []driver.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "mtlint: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	switch {
	case failed:
		os.Exit(1)
	case len(diags) > 0:
		os.Exit(2)
	}
}
