// Command thermald serves multitherm simulations over HTTP: sharded
// across a persistent worker pool, coalesced into cross-request GEMM
// batches, and fronted by a content-addressed result cache.
//
// Endpoints:
//
//	POST /v1/sim         one cell -> canonical JSON result
//	POST /v1/sweep       many cells -> {"cells":[...]} in request order
//	POST /v1/sim/trace   one cell -> NDJSON temperature/command stream
//	GET  /v1/stats       admission, cache, and batching counters
//	POST /v1/admin/flush empty the result cache
//	GET  /healthz        liveness
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, open
// requests finish, pending batches flush, the pool joins, then the
// process exits. The lifecycle analyzer enforces that every goroutine
// and timer here has a join or stop path, so the drain terminates.
//
//mtlint:lifecycle
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"multitherm/internal/serve"
)

// Ceilings for the operator-tunable sizes; generous for any real
// deployment, small enough that a mistyped flag fails fast instead of
// allocating gigabytes.
const (
	maxWorkersFlag  = 4096
	maxBatchFlag    = 4096
	maxQueueFlag    = 1 << 20
	maxCacheFlag    = 1 << 20
	maxWindowFlag   = time.Minute
	maxSimTimeFlagS = 3600.0
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7016", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 0, "max lanes per lockstep batch (0 = auto, 1 = disable coalescing)")
	window := flag.Duration("window", 2*time.Millisecond, "batching window a lone cell waits for batchmates (0 disables coalescing)")
	queue := flag.Int("queue", 0, "admission watermark in cells before 429 shedding (0 = 1024)")
	cache := flag.Int("cache", serve.DefaultCacheEntries, "result cache entries (0 disables caching)")
	maxSim := flag.Float64("max-simtime", 0, "per-cell simulated-time cap in seconds (0 = 2)")
	flag.Parse()

	// Operator flags still size pools, queues, and caches; clamp them
	// against named ceilings so a typo cannot allocate the machine away
	// (and so mtlint's taintcheck can prove every size is bounded).
	if *workers < 0 || *workers > maxWorkersFlag {
		fatalf("thermald: -workers %d out of range [0, %d]", *workers, maxWorkersFlag)
	}
	if *batch < 0 || *batch > maxBatchFlag {
		fatalf("thermald: -batch %d out of range [0, %d]", *batch, maxBatchFlag)
	}
	if *window < 0 || *window > maxWindowFlag {
		fatalf("thermald: -window %v out of range [0, %v]", *window, maxWindowFlag)
	}
	if *queue < 0 || *queue > maxQueueFlag {
		fatalf("thermald: -queue %d out of range [0, %d]", *queue, maxQueueFlag)
	}
	if *cache < 0 || *cache > maxCacheFlag {
		fatalf("thermald: -cache %d out of range [0, %d]", *cache, maxCacheFlag)
	}
	if *maxSim < 0 || *maxSim > maxSimTimeFlagS {
		fatalf("thermald: -max-simtime %g out of range [0, %g]", *maxSim, maxSimTimeFlagS)
	}

	srv := serve.New(serve.Config{
		Workers:          *workers,
		BatchWidth:       *batch,
		Window:           *window,
		CacheEntries:     *cache,
		MaxInflightCells: *queue,
		MaxSimTimeS:      *maxSim,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "thermald: %v\n", err)
		os.Exit(1)
	}
	// The resolved address line is the startup contract scripts parse;
	// with port 0 it is the only way to learn the port.
	fmt.Printf("thermald: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Println("thermald: draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "thermald: shutdown: %v\n", err)
		}
		srv.Close()
		fmt.Println("thermald: drained")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "thermald: %v\n", err)
			os.Exit(1)
		}
	}
}
