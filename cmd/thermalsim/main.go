// Command thermalsim runs one DTM policy on one workload mix and
// reports throughput, duty cycle, thermal statistics, and (optionally)
// a per-core timeline.
//
// Usage:
//
//	thermalsim -workload workload7 -policy dist-dvfs
//	thermalsim -workload workload3 -policy dist-stopgo+counter -timeline
//	thermalsim -list
//
//mtlint:units
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multitherm"

	"multitherm/internal/core"
	"multitherm/internal/floorplan"
	"multitherm/internal/sim"
	"multitherm/internal/units"
	"multitherm/internal/workload"
)

type floorplanKind = floorplan.UnitKind

const (
	kindInt = floorplan.KindIntRegFile
	kindFP  = floorplan.KindFPRegFile
)

func main() {
	wl := flag.String("workload", "workload7", "workload mix name (see -list)")
	policy := flag.String("policy", "dist-dvfs", "policy cell (see -list)")
	simtime := flag.Float64("simtime", 0.5, "simulated silicon time, seconds")
	threshold := flag.Float64("threshold", 84.2, "thermal emergency threshold, °C")
	timeline := flag.Bool("timeline", false, "print a per-core timeline every 2 ms")
	unthrottled := flag.Bool("unthrottled", false, "disable DTM (reference run)")
	list := flag.Bool("list", false, "list workloads and policies, then exit")
	showFloorplan := flag.Bool("floorplan", false, "print the die floorplan, then exit")
	flag.Parse()

	if *showFloorplan {
		fmt.Print(floorplan.CMP4().Render(72))
		return
	}

	if *list {
		fmt.Println("workloads:")
		for _, m := range workload.Mixes {
			fmt.Printf("  %-12s %s\n", m.Name, m.Label())
		}
		fmt.Println("policies:")
		for _, n := range multitherm.PolicyNames() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	cfg := multitherm.DefaultConfig()
	cfg.SimTime = units.Seconds(*simtime)
	cfg.Policy.ThresholdC = units.Celsius(*threshold)

	mix, err := workload.MixByName(*wl)
	fatal(err)

	var runner *sim.Runner
	var spec multitherm.Policy
	if *unthrottled {
		runner, err = sim.NewUnthrottled(cfg, mix)
		fatal(err)
	} else {
		spec, err = multitherm.PolicyByName(*policy)
		fatal(err)
		runner, err = sim.New(cfg, mix, spec)
		fatal(err)
	}

	if *timeline {
		period := cfg.Policy.SamplePeriod
		every := int64(2e-3 / period)
		fmt.Printf("%8s  %s\n", "t (ms)", strings.Join(mix.Benchmarks[:], " / "))
		runner.SetProbe(func(now units.Seconds, tick int64, temps units.TempVec, cmds []core.CoreCommand, assign []int) {
			if tick%every != 0 {
				return
			}
			line := fmt.Sprintf("%8.1f", float64(now)*1e3)
			for c := range cmds {
				state := fmt.Sprintf("%.2f", cmds[c].Scale)
				if cmds[c].Stall {
					state = "STALL"
				}
				hot := temps[cfg.Floorplan.FindCoreBlock(c, hottestKind(temps, cfg, c))]
				line += fmt.Sprintf("  | c%d=%-8s %5s %5.1f°C", c, mix.Benchmarks[assign[c]], state, hot)
			}
			fmt.Println(line)
		})
	}

	res, err := runner.Run()
	fatal(err)

	fmt.Printf("\nworkload:      %s\n", mix.Label())
	if *unthrottled {
		fmt.Printf("policy:        unthrottled (no DTM)\n")
	} else {
		fmt.Printf("policy:        %s\n", spec)
	}
	fmt.Printf("sim time:      %.3f s\n", float64(res.SimTime))
	fmt.Printf("throughput:    %.2f BIPS\n", float64(res.BIPS()))
	fmt.Printf("duty cycle:    %.1f %%\n", float64(res.DutyCycle())*100)
	fmt.Printf("max temp:      %.2f °C (threshold %.1f)\n", float64(res.MaxTempC), *threshold)
	fmt.Printf("emergencies:   %.2f ms above threshold\n", float64(res.EmergencySeconds)*1e3)
	fmt.Printf("stall time:    %.1f ms\n", float64(res.StallSeconds)*1e3)
	fmt.Printf("penalty time:  %.2f ms (PLL transitions: %d)\n", float64(res.PenaltySeconds)*1e3, res.Transitions)
	fmt.Printf("migrations:    %d\n", res.Migrations)
}

// hottestKind picks the hotter register file of core c for display.
func hottestKind(temps units.TempVec, cfg sim.Config, c int) (k floorplanKind) {
	irf := cfg.Floorplan.FindCoreBlock(c, kindInt)
	fprf := cfg.Floorplan.FindCoreBlock(c, kindFP)
	if temps[irf] >= temps[fprf] {
		return kindInt
	}
	return kindFP
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
