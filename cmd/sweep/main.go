// Command sweep reproduces the paper's evaluation: every table and
// figure, printed with the published values alongside for comparison.
//
// Usage:
//
//	sweep                 # reproduce everything at full fidelity (0.5 s sims)
//	sweep -only table5    # one artifact
//	sweep -quick          # reduced fidelity (0.1 s sims) for a fast look
//	sweep -list           # list artifacts
//	sweep -simtime 0.25   # custom simulated silicon time
//	sweep -workers 8      # fan (policy, workload) cells across 8 workers
//	sweep -batch 8        # step 8 same-propagator cells in lockstep
//	sweep -floorplan 16x16 -only manycore   # 256-core generated grid
//
//mtlint:units
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"multitherm/internal/experiments"
	"multitherm/internal/floorplan"
	"multitherm/internal/units"
)

func main() {
	only := flag.String("only", "", "reproduce a single artifact (e.g. table5, fig3)")
	quick := flag.Bool("quick", false, "reduced-fidelity simulations")
	list := flag.Bool("list", false, "list reproducible artifacts and exit")
	simtime := flag.Float64("simtime", 0, "simulated silicon time per run in seconds (default 0.5)")
	workersFlag := flag.Int("workers", 0, "worker count for the work-stealing cell scheduler (0 = all CPUs, 1 = sequential; results identical at any count)")
	batch := flag.Int("batch", 0, "lockstep batch width for cells sharing one thermal propagator (0 = auto-size from cache, 1 = no batching; results identical at any width)")
	ablations := flag.Bool("ablations", false, "also run the beyond-the-paper extension/ablation artifacts")
	gridFlag := flag.String("floorplan", "", "generated grid for the manycore artifact, as RxC (e.g. 16x16 for 256 cores)")
	mdPath := flag.String("md", "", "also write the report as markdown to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-18s %s\n", r.Name, r.Desc)
		}
		for _, r := range experiments.ExtensionRegistry() {
			fmt.Printf("%-18s %s (extension)\n", r.Name, r.Desc)
		}
		return
	}

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *simtime > 0 {
		opt.SimTime = units.Seconds(*simtime)
	}
	opt.Parallelism = *workersFlag
	opt.Batch = *batch
	if *gridFlag != "" {
		spec, err := floorplan.ParseGridSpec(*gridFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opt.Grid = spec
		if *only == "" {
			*only = "manycore"
		}
	}

	runners := experiments.Registry()
	if *ablations {
		runners = append(runners, experiments.ExtensionRegistry()...)
	}
	if *only != "" {
		r, err := experiments.Find(*only)
		if err != nil {
			if ext, extErr := experiments.FindExtension(*only); extErr == nil {
				r, err = ext, nil
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}

	var md *os.File
	if *mdPath != "" {
		var err error
		md, err = os.Create(*mdPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer md.Close()
		fmt.Fprintf(md, "# multitherm reproduction report\n\nSimulated silicon time per run: %.2f s.\n\n", float64(opt.SimTime))
	}

	workers := *workersFlag
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := time.Now()
	for _, r := range runners {
		start := time.Now()
		res, err := r.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, err)
			os.Exit(1)
		}
		fmt.Printf("==> %s: %s  (%.1fs)\n\n", r.Name, r.Desc, time.Since(start).Seconds())
		fmt.Println(res.Render())
		if md != nil {
			fmt.Fprintf(md, "## %s — %s\n\n```text\n%s```\n\n", r.Name, r.Desc, res.Render())
		}
	}
	fmt.Printf("total wall clock: %.1fs (%d workers)\n", time.Since(total).Seconds(), workers)
}
