// Command tracegen generates and inspects the per-benchmark activity
// traces that drive the thermal/timing simulator (the Turandot +
// PowerTimer stage of the paper's Figure 2).
//
// Usage:
//
//	tracegen -benchmark gzip -n 3600 -o gzip.trace      # binary trace
//	tracegen -benchmark swim -json -o swim.json          # JSON trace
//	tracegen -benchmark mcf -stats                       # print summary
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"multitherm/internal/floorplan"
	"multitherm/internal/trace"
	"multitherm/internal/uarch"
	"multitherm/internal/workload"
)

func main() {
	bench := flag.String("benchmark", "gzip", "benchmark profile name")
	n := flag.Int("n", 3600, "number of 100K-cycle samples (~100 ms at 3.6 GHz)")
	out := flag.String("o", "", "output file ('-' or empty prints stats)")
	asJSON := flag.Bool("json", false, "write JSON instead of binary")
	stats := flag.Bool("stats", false, "print trace statistics")
	list := flag.Bool("list", false, "list benchmark profiles, then exit")
	flag.Parse()

	if *list {
		cfg := uarch.DefaultConfig()
		for _, name := range workload.Benchmarks() {
			p := workload.MustProfile(name)
			fmt.Printf("%-9s %-7s IPC=%.2f power-factor=%.2f\n",
				name, p.Category, uarch.AnalyticIPC(cfg, p), p.PowerFactor)
		}
		return
	}

	// ~4M samples is over an hour of simulated execution — far past any
	// sensible trace — and keeps a mistyped -n from allocating gigabytes.
	const maxSamples = 1 << 22
	if *n < 1 || *n > maxSamples {
		fatal(fmt.Errorf("tracegen: -n %d out of range [1, %d]", *n, maxSamples))
	}

	prof, err := workload.Profile(*bench)
	fatal(err)
	gen, err := uarch.NewGenerator(uarch.DefaultConfig(), prof)
	fatal(err)
	tr, err := trace.Record(gen, *n)
	fatal(err)

	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		fatal(err)
		defer f.Close()
		if *asJSON {
			fatal(tr.WriteJSON(f))
		} else {
			fatal(tr.WriteBinary(f))
		}
		fmt.Printf("wrote %d samples (%.1f ms of execution) to %s\n",
			tr.Len(), tr.Duration()*1e3, *out)
	}

	if *stats || *out == "" || *out == "-" {
		fmt.Printf("benchmark:      %s (%s)\n", prof.Name, prof.Category)
		fmt.Printf("nominal IPC:    %.2f\n", gen.NominalIPC())
		fmt.Printf("samples:        %d (%.1f ms at full speed)\n", tr.Len(), tr.Duration()*1e3)
		fmt.Printf("mean instr/smp: %.0f\n", tr.MeanInstructionsPerSample())
		s := tr.At(0)
		fmt.Printf("activity[0]:    irf=%.2f fprf=%.2f fxu=%.2f fpu=%.2f l2=%.2f\n",
			s.ActivityFor(floorplan.KindIntRegFile), s.ActivityFor(floorplan.KindFPRegFile),
			s.ActivityFor(floorplan.KindFXU), s.ActivityFor(floorplan.KindFPU),
			s.ActivityFor(floorplan.KindL2))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
