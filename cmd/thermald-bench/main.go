// Command thermald-bench is a closed-loop saturation harness for the
// thermald serving stack. It spins up an in-process server per
// scenario, drives it with 1/8/64 concurrent clients over real HTTP,
// and records requests/sec and p50/p99 latency into BENCH_serve.json:
//
//   - cold:     result cache disabled — every request computes
//   - warm:     cache pre-warmed — every request replays cached bytes
//   - batchon:  cache disabled, cross-request coalescing enabled
//   - batchoff: cache disabled, coalescing disabled
//
// With -smoke it instead fires a mixed sim/sweep burst at an already
// running server (-url) twice in different client orderings and exits
// non-zero unless every response is bit-identical across the runs —
// the CI determinism gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"multitherm/internal/serve"
)

// requestSet is the shared closed-loop workload: every (workload,
// policy) pair below shares one (Template, dt) propagator, so under
// concurrency the batcher can coalesce any of them into one panel.
func requestSet(simtime float64) []string {
	policies := []string{"dist-dvfs", "global-dvfs", "dist-stopgo", "global-stopgo"}
	var reqs []string
	for w := 1; w <= 12; w++ {
		for _, p := range policies {
			reqs = append(reqs, fmt.Sprintf(
				`{"workload":"workload%d","policy":"%s","simtime_s":%g}`, w, p, simtime))
		}
	}
	return reqs
}

type scenarioResult struct {
	Requests int
	Elapsed  time.Duration
	P50, P99 time.Duration
	MeanNS   float64
}

func (r scenarioResult) rps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// drive runs a closed loop: `clients` goroutines issue `total`
// requests round-robin from reqs, each client immediately issuing its
// next request when the previous answers.
func drive(client *http.Client, url string, reqs []string, clients, total int) (scenarioResult, error) {
	lat := make([]time.Duration, total)
	var cursor atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= total {
					return
				}
				body := reqs[i%len(reqs)]
				t0 := time.Now()
				resp, err := client.Post(url+"/v1/sim", "application/json", strings.NewReader(body))
				if err == nil {
					_, err = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %d", resp.StatusCode)
					}
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				lat[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return scenarioResult{}, err
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(total-1))
		return lat[i]
	}
	return scenarioResult{
		Requests: total,
		Elapsed:  elapsed,
		P50:      pct(0.50),
		P99:      pct(0.99),
		MeanNS:   float64(sum.Nanoseconds()) / float64(total),
	}, nil
}

type scenario struct {
	name    string
	cfg     func(clients int) serve.Config
	prewarm bool // replay the request set once before timing
	total   func(clients int) int
}

func runScenarios(simtime float64, out map[string]any) error {
	reqs := requestSet(simtime)
	computeTotal := func(clients int) int {
		// Long enough to integrate over scheduling-noise bursts, bounded
		// so the compute scenarios stay in CI budget on one core.
		n := clients * 24
		if n < 2*len(reqs) {
			n = 2 * len(reqs)
		}
		return n
	}
	warmTotal := func(clients int) int { return clients * 200 }

	// The batching scenario matches width to the closed-loop fan-in
	// (capped at sim.DefaultBatchSize's clamp ceiling of 16) so batches
	// fill and flush immediately instead of always waiting out the
	// window — the setting an operator who knows their concurrency
	// would pick.
	fanWidth := func(clients int) int {
		if clients > 16 {
			return 16
		}
		if clients < 2 {
			// A lone client can never fill a batch; width 2 keeps
			// coalescing (and its window cost) honestly enabled so the
			// c1 row shows what batching costs a client with no peers.
			return 2
		}
		return clients
	}
	scenarios := []scenario{
		{"cold", func(int) serve.Config {
			return serve.Config{Window: 2 * time.Millisecond}
		}, false, computeTotal},
		{"warm", func(int) serve.Config {
			return serve.Config{CacheEntries: 4096, Window: 2 * time.Millisecond}
		}, true, warmTotal},
		{"batchon", func(clients int) serve.Config {
			return serve.Config{BatchWidth: fanWidth(clients), Window: 2 * time.Millisecond}
		}, false, computeTotal},
		{"batchoff", func(int) serve.Config {
			return serve.Config{BatchWidth: 1}
		}, false, computeTotal},
	}
	// Each (scenario, clients) row runs three times with the scenarios
	// interleaved — on,off,on,off… — so slow drift in background load
	// hits every scenario equally, and the best repetition is kept: on
	// a shared 1-CPU box scheduling noise is comparable to the effects
	// under measurement, and paired best-of-N is the standard de-noiser
	// for closed-loop throughput.
	const repeats = 3
	results := map[string]map[int]scenarioResult{}
	for _, sc := range scenarios {
		results[sc.name] = map[int]scenarioResult{}
	}
	for _, clients := range []int{1, 8, 64} {
		for rep := 0; rep < repeats; rep++ {
			for _, sc := range scenarios {
				srv := serve.New(sc.cfg(clients))
				ts := httptest.NewServer(srv.Handler())
				client := ts.Client()
				client.Transport = &http.Transport{MaxIdleConnsPerHost: 128}
				if sc.prewarm {
					if _, err := drive(client, ts.URL, reqs, 1, len(reqs)); err != nil {
						ts.Close()
						srv.Close()
						return fmt.Errorf("%s c%d prewarm: %w", sc.name, clients, err)
					}
				}
				res, err := drive(client, ts.URL, reqs, clients, sc.total(clients))
				ts.Close()
				srv.Close()
				if err != nil {
					return fmt.Errorf("%s c%d: %w", sc.name, clients, err)
				}
				if best, ok := results[sc.name][clients]; !ok || res.rps() > best.rps() {
					results[sc.name][clients] = res
				}
			}
		}
		for _, sc := range scenarios {
			res := results[sc.name][clients]
			fmt.Printf("serve %-8s c%-2d  %8.1f req/s  p50 %8.3f ms  p99 %8.3f ms  (%d reqs)\n",
				sc.name, clients, res.rps(),
				float64(res.P50)/1e6, float64(res.P99)/1e6, res.Requests)
			key := fmt.Sprintf("serve_%s_c%d", sc.name, clients)
			out[key+"_rps"] = round2(res.rps())
			out[key+"_p50_ms"] = round3(float64(res.P50) / 1e6)
			out[key+"_p99_ms"] = round3(float64(res.P99) / 1e6)
		}
	}
	for _, clients := range []int{1, 8, 64} {
		cold, warm := results["cold"][clients], results["warm"][clients]
		on, off := results["batchon"][clients], results["batchoff"][clients]
		if cold.rps() > 0 {
			out[fmt.Sprintf("serve_warm_over_cold_c%d", clients)] = round2(warm.rps() / cold.rps())
		}
		// The coalescing gain is only meaningful under concurrency — a
		// lone client pays the window and gains nothing, by design.
		if clients >= 8 && off.rps() > 0 {
			out[fmt.Sprintf("serve_batch_gain_c%d", clients)] = round2(on.rps() / off.rps())
		}
	}
	out["serve_warm_request_ns"] = round2(results["warm"][1].MeanNS)
	out["serve_simtime_s"] = simtime
	return nil
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }

// smoke fires a mixed sim/sweep burst at url in two orderings and
// verifies per-request bit-identity across the runs.
func smoke(url string) error {
	type req struct{ path, body string }
	reqs := []req{
		{"/v1/sim", `{"workload":"workload1","policy":"dist-dvfs","simtime_s":0.01}`},
		{"/v1/sim", `{"workload":"workload2","policy":"global-stopgo","simtime_s":0.01}`},
		{"/v1/sim", `{"workload":"workload3","policy":"dist-stopgo+counter","simtime_s":0.01}`},
		{"/v1/sweep", `{"simtime_s":0.01,"cells":[{"workload":"workload4","policy":"dist-dvfs"},{"workload":"workload1","policy":"dist-dvfs"}]}`},
		{"/v1/sim/trace", `{"workload":"workload5","policy":"dist-dvfs","simtime_s":0.005,"every":8}`},
	}
	run := func(order []int) (map[int][]byte, error) {
		out := make(map[int][]byte, len(reqs))
		var mu sync.Mutex
		var wg sync.WaitGroup
		var firstErr atomic.Value
		for _, i := range order {
			r := reqs[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(url+r.path, "application/json", strings.NewReader(r.body))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				defer resp.Body.Close()
				b, err := io.ReadAll(resp.Body)
				if err == nil && resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("%s: status %d: %s", r.path, resp.StatusCode, b)
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				mu.Lock()
				out[i] = b
				mu.Unlock()
			}()
		}
		wg.Wait()
		if err, _ := firstErr.Load().(error); err != nil {
			return nil, err
		}
		return out, nil
	}
	first, err := run([]int{0, 1, 2, 3, 4})
	if err != nil {
		return err
	}
	second, err := run([]int{4, 3, 2, 1, 0})
	if err != nil {
		return err
	}
	for i := range reqs {
		if !bytes.Equal(first[i], second[i]) {
			return fmt.Errorf("response %d (%s) diverged between orderings:\n run1: %s\n run2: %s",
				i, reqs[i].path, first[i], second[i])
		}
	}
	fmt.Printf("thermald-bench: smoke ok — %d responses bit-identical across orderings\n", len(reqs))
	return nil
}

func main() {
	outPath := flag.String("o", "BENCH_serve.json", "output JSON path")
	simtime := flag.Float64("simtime", 0.02, "simulated seconds per cell")
	smokeMode := flag.Bool("smoke", false, "determinism smoke against -url instead of benchmarking")
	url := flag.String("url", "", "server URL for -smoke (e.g. http://127.0.0.1:7016)")
	flag.Parse()

	if *smokeMode {
		if *url == "" {
			fmt.Fprintln(os.Stderr, "thermald-bench: -smoke requires -url")
			os.Exit(2)
		}
		if err := smoke(strings.TrimRight(*url, "/")); err != nil {
			fmt.Fprintf(os.Stderr, "thermald-bench: smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// The bench grid multiplies cells by simulated time; clamp the flag
	// so a typo cannot turn the suite into an hours-long run.
	const maxBenchSimTimeS = 2.0
	if *simtime <= 0 || *simtime > maxBenchSimTimeS {
		fmt.Fprintf(os.Stderr, "thermald-bench: -simtime %g out of range (0, %g]\n", *simtime, maxBenchSimTimeS)
		os.Exit(2)
	}

	out := map[string]any{}
	if err := runScenarios(*simtime, out); err != nil {
		fmt.Fprintf(os.Stderr, "thermald-bench: %v\n", err)
		os.Exit(1)
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "thermald-bench: %v\n", err)
		os.Exit(1)
	}
	body = append(body, '\n')
	if err := os.WriteFile(*outPath, body, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "thermald-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("thermald-bench: wrote %s\n", *outPath)
}
