package multitherm

import (
	"strings"
	"testing"
)

func TestPolicyNamesRoundTrip(t *testing.T) {
	names := PolicyNames()
	if len(names) != 12 {
		t.Fatalf("policy names = %d, want 12", len(names))
	}
	for _, n := range names {
		if _, err := PolicyByName(n); err != nil {
			t.Errorf("PolicyByName(%q): %v", n, err)
		}
	}
	if _, err := PolicyByName("overclock-everything"); err == nil {
		t.Error("unknown policy accepted")
	}
	p, err := PolicyByName("  Dist-DVFS+Sensor ")
	if err != nil {
		t.Fatalf("case/space-insensitive lookup failed: %v", err)
	}
	if p.String() != "Dist. DVFS + sensor-based migration" {
		t.Errorf("resolved to %v", p)
	}
}

func TestWorkloadAndBenchmarkLists(t *testing.T) {
	if got := len(Workloads()); got != 12 {
		t.Errorf("workloads = %d, want 12", got)
	}
	if got := len(Benchmarks()); got != 22 {
		t.Errorf("benchmarks = %d, want 22", got)
	}
}

func TestSimulateFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SimTime = 0.02
	p, err := PolicyByName("dist-dvfs")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(cfg, "workload7", p)
	if err != nil {
		t.Fatal(err)
	}
	if res.BIPS() <= 0 {
		t.Error("no throughput recorded")
	}
	if res.DutyCycle() <= 0 || res.DutyCycle() > 1 {
		t.Errorf("duty cycle %v out of range", res.DutyCycle())
	}
	if _, err := Simulate(cfg, "workload99", p); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSimulateUnthrottledFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SimTime = 0.02
	res, err := SimulateUnthrottled(cfg, "workload1")
	if err != nil {
		t.Fatal(err)
	}
	if res.DutyCycle() < 0.999 {
		t.Errorf("unthrottled duty = %v", res.DutyCycle())
	}
}

func TestExperimentRegistry(t *testing.T) {
	reg := Experiments()
	if len(reg) < 14 {
		t.Fatalf("registry has %d entries", len(reg))
	}
	seen := map[string]bool{}
	for _, r := range reg {
		if seen[r.Name] {
			t.Errorf("duplicate artifact %s", r.Name)
		}
		seen[r.Name] = true
	}
	for _, want := range []string{"table1", "table5", "table8", "fig3", "fig5", "fig7", "pi"} {
		if !seen[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestRunExperimentStatic(t *testing.T) {
	for _, id := range []string{"table2", "table3", "table4", "pi"} {
		res, err := RunExperiment(id, QuickExperimentOptions())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID() != id {
			t.Errorf("result id = %s, want %s", res.ID(), id)
		}
		if !strings.Contains(res.Render(), "Table") && id != "pi" {
			t.Errorf("%s render looks empty:\n%s", id, res.Render())
		}
	}
	if _, err := RunExperiment("table99", QuickExperimentOptions()); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestSimulateTimesharedFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SimTime = 0.05
	p, err := PolicyByName("dist-dvfs")
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateTimeshared(cfg, "six", []string{"gzip", "twolf", "ammp", "lucas", "mcf", "sixtrack"}, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BIPS() <= 0 {
		t.Error("no throughput")
	}
	if res.Preemptions == 0 {
		t.Error("no fairness preemptions with 6 procs on 4 cores")
	}
	if _, err := SimulateTimeshared(cfg, "bad", []string{"gzip"}, p, 0); err == nil {
		t.Error("too few processes accepted")
	}
}
