// Quickstart: simulate the paper's example workload (gzip-twolf-ammp-
// lucas) under the baseline policy and under the paper's best design —
// distributed control-theoretic DVFS with sensor-based migration — and
// compare throughput, duty cycle, and thermal behaviour.
package main

import (
	"fmt"
	"log"

	"multitherm"
)

func main() {
	cfg := multitherm.DefaultConfig()
	cfg.SimTime = 0.25 // quarter second of silicon time

	baseline, err := multitherm.Simulate(cfg, "workload7", multitherm.Baseline)
	if err != nil {
		log.Fatal(err)
	}

	best, err := multitherm.PolicyByName("dist-dvfs+sensor")
	if err != nil {
		log.Fatal(err)
	}
	combined, err := multitherm.Simulate(cfg, "workload7", best)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("workload7 = gzip-twolf-ammp-lucas on a 4-core 3.6 GHz chip, 84.2 °C limit")
	fmt.Printf("%-42s %8s %10s %10s %11s\n", "policy", "BIPS", "duty", "max temp", "migrations")
	for _, r := range []*multitherm.Result{baseline, combined} {
		fmt.Printf("%-42s %8.2f %9.1f%% %8.2f°C %11d\n",
			r.Policy, r.BIPS(), r.DutyCycle()*100, r.MaxTempC, r.Migrations)
	}
	fmt.Printf("\nspeedup of the two-loop design over the stop-go baseline: %.2fx\n",
		combined.BIPS()/baseline.BIPS())
	fmt.Println("(the paper reports ~2.6x averaged over its 12 workloads)")
}
