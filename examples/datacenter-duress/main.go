// Datacenter duress: a capacity-planning scenario built on the public
// API. A rack's inlet air warms from 45 °C to 55 °C; for each DTM
// policy, measure how much throughput each workload class retains and
// whether the policy still avoids thermal emergencies — the operational
// question the paper's taxonomy answers.
package main

import (
	"fmt"
	"log"

	"multitherm"

	"multitherm/internal/units"
)

func main() {
	policies := []string{"dist-stopgo", "global-dvfs", "dist-dvfs", "dist-dvfs+sensor"}
	workloads := []string{"workload2", "workload7", "workload12"} // IIII / IIFF / FFFF

	for _, ambient := range []units.Celsius{45, 55} {
		fmt.Printf("\n=== inlet air at %.0f °C ===\n", float64(ambient))
		fmt.Printf("%-20s", "policy")
		for _, w := range workloads {
			fmt.Printf("  %12s", w)
		}
		fmt.Printf("  %10s\n", "worst temp")

		for _, pname := range policies {
			p, err := multitherm.PolicyByName(pname)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-20s", pname)
			worst := units.Celsius(0)
			for _, w := range workloads {
				cfg := multitherm.DefaultConfig()
				cfg.SimTime = 0.15
				cfg.Thermal.Ambient = ambient
				res, err := multitherm.Simulate(cfg, w, p)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %7.2f BIPS", float64(res.BIPS()))
				if res.MaxTempC > worst {
					worst = res.MaxTempC
				}
			}
			fmt.Printf("  %8.2f °C\n", float64(worst))
		}
	}
	fmt.Println("\nNote how the control-theoretic DVFS policies degrade gracefully as the")
	fmt.Println("thermal budget shrinks, while stop-go collapses — the paper's core result")
	fmt.Println("translated into a deployment decision.")
}
