// Hotspot explorer: drive the HotSpot-style thermal substrate directly.
// Inject power into chosen floorplan blocks, solve the steady state,
// and render an ASCII heat map of the 4-core die — then watch the
// transient as the hot block is gated off.
package main

import (
	"fmt"
	"log"
	"strings"

	"multitherm/internal/floorplan"
	"multitherm/internal/thermal"
	"multitherm/internal/units"
)

func main() {
	fp := floorplan.CMP4()
	model, err := thermal.New(fp, thermal.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// Light background load everywhere, a fierce hotspot in core 1's
	// integer register file, and a warm shared L2.
	power := make(units.PowerVec, model.NumBlocks())
	for i := range power {
		power[i] = 0.6
	}
	power[fp.BlockIndex("c1_iregfile")] = 9
	power[fp.BlockIndex("l2")] = 6

	if err := model.InitSteadyState(power); err != nil {
		log.Fatal(err)
	}
	model.SetPower(power)

	fmt.Println("steady state with a 9 W hotspot in c1_iregfile:")
	heatmap(fp, model)

	hot, idx := model.MaxBlockTemp()
	fmt.Printf("\nhottest block: %s at %.2f °C\n", model.NodeName(idx), float64(hot))
	fmt.Printf("local time constant of that block: %.1f ms\n", float64(model.BlockTimeConstant(idx))*1e3)

	// Gate the hotspot and watch it cool through one 30 ms stop-go stall.
	power[fp.BlockIndex("c1_iregfile")] = 0.3
	model.SetPower(power)
	fmt.Println("\ncooling after clock-gating the hotspot:")
	for t := 0.0; t <= 30e-3+1e-9; t += 5e-3 {
		fmt.Printf("  t=%4.0f ms: c1_iregfile = %.2f °C\n",
			t*1e3, float64(model.Temp(fp.BlockIndex("c1_iregfile"))))
		model.Step(5e-3)
	}
}

// heatmap renders block temperatures on a coarse character grid.
func heatmap(fp *floorplan.Floorplan, m *thermal.Model) {
	const cols, rows = 64, 24
	ramp := " .:-=+*#%@"
	min, max := 1e9, -1e9
	for i := 0; i < m.NumBlocks(); i++ {
		t := float64(m.Temp(i))
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	blockAt := func(x, y float64) int {
		for i, b := range fp.Blocks {
			if x >= b.X && x < b.X+b.W && y >= b.Y && y < b.Y+b.H {
				return i
			}
		}
		return -1
	}
	var sb strings.Builder
	for r := rows - 1; r >= 0; r-- {
		for c := 0; c < cols; c++ {
			x := (float64(c) + 0.5) / cols * fp.ChipW
			y := (float64(r) + 0.5) / rows * fp.ChipH
			i := blockAt(x, y)
			if i < 0 {
				sb.WriteByte(' ')
				continue
			}
			frac := (float64(m.Temp(i)) - min) / (max - min + 1e-9)
			sb.WriteByte(ramp[int(frac*float64(len(ramp)-1))])
		}
		sb.WriteByte('\n')
	}
	fmt.Print(sb.String())
	fmt.Printf("scale: '%c' = %.1f °C ... '%c' = %.1f °C\n", ramp[0], min, ramp[len(ramp)-1], max)
}
