// Controller design: walk through the paper's §4 formal-control flow
// using the control substrate — design a PI controller, discretize it
// (reproducing the paper's published difference equation), prove
// closed-loop stability, and exercise the hardware-style runtime with
// clipping and anti-windup against a toy hotspot.
package main

import (
	"fmt"

	"multitherm/internal/control"
	"multitherm/internal/units"
)

func main() {
	// 1. The continuous design: G(s) = Kp + Ki/s with the paper's gains.
	pi := control.PI(control.PaperKp, control.PaperKi)
	fmt.Printf("continuous controller: %v\n", pi)

	// 2. Discretize at the 100K-cycle sample period (the paper's c2d).
	law := control.C2DPI(control.PaperKp, control.PaperKi,
		control.PaperSamplePeriod, control.ForwardEuler)
	fmt.Printf("discrete law: u[n] = u[n-1] %+.4f·e[n] %+.6f·e[n-1]\n", law.B0, law.B1)
	fmt.Println("paper:        u[n] = u[n-1] -0.0107·e[n] +0.003796·e[n-1]")

	// 3. Stability: all closed-loop poles must lie left of the jω axis
	//    (continuous) and inside the unit circle (discrete).
	plant := control.FirstOrderPlant(12, 25e-3) // 12 °C authority, 25 ms hotspot
	loop := pi.Series(plant).Feedback()
	fmt.Printf("\nclosed-loop poles: %v\n", loop.Poles())
	fmt.Printf("stable: %v, stability margin: %.1f rad/s, settling: %.1f ms\n",
		loop.IsStable(), loop.StabilityMargin(), float64(loop.SettlingTime())*1e3)

	pn, pd := control.DiscretizePlantZOH(12, 25e-3, control.PaperSamplePeriod)
	fmt.Printf("discrete loop stable: %v\n", law.ClosedLoopStableZ(pn, pd))

	// 4. Root locus: robustness across two decades of gain.
	fmt.Println("\nroot locus (gain multiplier -> dominant pole real part):")
	for _, pt := range pi.Series(plant).RootLocus([]float64{0.1, 0.3, 1, 3, 10}) {
		worst := 0.0
		for _, p := range pt.Poles {
			if real(p) > worst || worst == 0 { //mtlint:allow floatcmp zero is the unset-sentinel for the dominant pole
				worst = real(p)
			}
		}
		fmt.Printf("  k=%5.1f  re(dominant pole) = %8.1f\n", pt.Gain, worst)
	}

	// 5. The runtime: drive a simulated hotspot to the 81.8 °C setpoint.
	rt := control.NewPaperPIRuntime(81.8)
	temp := 60.0
	fmt.Println("\nruntime against a cubic-power hotspot (target 81.8 °C):")
	for step := 0; step < 150000; step++ {
		u := float64(rt.Step(units.Celsius(temp)))
		eq := 45 + 52*u*u*u // equilibrium for the applied scale
		temp += (eq - temp) * float64(control.PaperSamplePeriod) / 25e-3
		if step%30000 == 0 {
			fmt.Printf("  t=%6.0f ms  temp=%6.2f °C  scale=%.3f\n",
				float64(step)*float64(control.PaperSamplePeriod)*1e3, temp, u)
		}
	}
	fmt.Printf("  settled: temp=%.2f °C, scale=%.3f, trend=%+v\n",
		temp, rt.Output(), rt.Trend())
}
