package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"multitherm/internal/core"
	"multitherm/internal/metrics"
	"multitherm/internal/sim"
	"multitherm/internal/units"
	"multitherm/internal/workload"
)

// CellSpec is the wire form of one simulation cell: a workload mix, a
// DTM policy from the taxonomy, and the simulated silicon time. It is
// the body of POST /v1/sim and the element type of a sweep request's
// cells array. SimTimeS of zero inherits the request (for sweep cells)
// or server default.
type CellSpec struct {
	Workload string  `json:"workload"`
	Policy   string  `json:"policy"`
	SimTimeS float64 `json:"simtime_s,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: many cells answered in
// one response, sharded across the worker pool and coalesced into
// lockstep panels with every other in-flight request.
type SweepRequest struct {
	SimTimeS float64    `json:"simtime_s,omitempty"` // default for cells that leave theirs zero
	Cells    []CellSpec `json:"cells"`
}

// TraceRequest is the body of POST /v1/sim/trace: one cell streamed as
// NDJSON, one line per Every control ticks (default 16).
type TraceRequest struct {
	CellSpec
	Every int `json:"every,omitempty"`
}

// cell is a fully resolved, validated simulation cell. Its canonical
// hash is the content address under which the finished result is
// cached; everything the simulation depends on — workload, policy,
// simulated time, the control period that picks the propagator, and
// the trace length — is folded into the key, so two requests collide
// exactly when their responses must be bit-identical.
type cell struct {
	spec   CellSpec // normalized: canonical policy name, resolved simtime
	cfg    sim.Config
	mix    workload.Mix
	policy core.PolicySpec
	key    [32]byte
}

// resolveCell validates a wire spec against the server limits and
// binds it to the paper's default chip configuration.
func (s *Server) resolveCell(spec CellSpec, defaultSimTime float64) (*cell, error) {
	mix, err := workload.MixByName(strings.TrimSpace(spec.Workload))
	if err != nil {
		return nil, err
	}
	policy, err := core.PolicyByName(spec.Policy)
	if err != nil {
		return nil, err
	}
	simTime := spec.SimTimeS
	if simTime == 0 { //mtlint:allow floatcmp zero is the explicit "inherit the default" sentinel on the wire
		simTime = defaultSimTime
	}
	if simTime == 0 { //mtlint:allow floatcmp same sentinel, one level up
		simTime = s.cfg.defaultSimTime()
	}
	if simTime < 0 || math.IsNaN(simTime) || math.IsInf(simTime, 0) {
		return nil, fmt.Errorf("serve: simtime_s %v is not a positive duration", spec.SimTimeS)
	}
	if max := s.cfg.maxSimTime(); simTime > max {
		return nil, fmt.Errorf("serve: simtime_s %g exceeds the server limit of %g s", simTime, max)
	}
	cfg := sim.DefaultConfig()
	cfg.SimTime = units.Seconds(simTime)
	c := &cell{
		spec: CellSpec{
			Workload: mix.Name,
			Policy:   policy.CLIName(),
			SimTimeS: simTime,
		},
		cfg:    cfg,
		mix:    mix,
		policy: policy,
	}
	c.key = cellKey(c.spec, float64(cfg.Policy.SamplePeriod), cfg.TraceIntervals)
	return c, nil
}

// keyPreimageMax bounds the stack buffer the canonical preimage is
// assembled in: scheme tag, two short names, three 8-byte words, and
// separators all fit with slack.
const keyPreimageMax = 160

// cellKey computes the content address of a cell result: a SHA-256
// over a versioned canonical encoding of everything the response bytes
// depend on. Strings are length-delimited (no separator ambiguity) and
// floats are encoded as their IEEE-754 bit patterns, so distinct specs
// cannot collide by formatting and equal specs hash equally on every
// machine.
//
//mtlint:zeroalloc
func cellKey(spec CellSpec, dt float64, traceIntervals int) [32]byte {
	var arr [keyPreimageMax]byte
	b := arr[:0]
	b = append(b, "mtserve/1\x00"...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(spec.Workload)))
	b = append(b, spec.Workload...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(spec.Policy)))
	b = append(b, spec.Policy...)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(spec.SimTimeS))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(dt))
	b = binary.LittleEndian.AppendUint64(b, uint64(traceIntervals))
	return sha256.Sum256(b)
}

// CellResult is the wire form of one finished cell. Field order is the
// canonical response order; encoding/json marshals struct fields in
// declaration order with deterministic float formatting, so equal
// metrics always produce equal bytes — the property the determinism
// guarantee and the content-addressed cache both rest on.
type CellResult struct {
	Workload     string    `json:"workload"`
	Policy       string    `json:"policy"`
	PolicyLabel  string    `json:"policy_label"`
	SimTimeS     float64   `json:"simtime_s"`
	BIPS         float64   `json:"bips"`
	DutyCycle    float64   `json:"duty_cycle"`
	MaxTempC     float64   `json:"max_temp_c"`
	EmergencyS   float64   `json:"emergency_s"`
	StallS       float64   `json:"stall_s"`
	PenaltyS     float64   `json:"penalty_s"`
	WorkS        float64   `json:"work_s"`
	Instructions float64   `json:"instructions"`
	Migrations   int       `json:"migrations"`
	Preemptions  int       `json:"preemptions"`
	Transitions  int       `json:"transitions"`
	PerCoreInstr []float64 `json:"per_core_instr"`
}

// encodeResult renders the canonical response bytes for one finished
// cell. These exact bytes are what the cache stores and what every
// transport path writes, so hit and miss responses cannot diverge.
func encodeResult(c *cell, m *metrics.Run) ([]byte, error) {
	res := CellResult{
		Workload:     c.spec.Workload,
		Policy:       c.spec.Policy,
		PolicyLabel:  c.policy.String(),
		SimTimeS:     c.spec.SimTimeS,
		BIPS:         float64(m.BIPS()),
		DutyCycle:    float64(m.DutyCycle()),
		MaxTempC:     float64(m.MaxTempC),
		EmergencyS:   float64(m.EmergencySeconds),
		StallS:       float64(m.StallSeconds),
		PenaltyS:     float64(m.PenaltySeconds),
		WorkS:        float64(m.WorkSeconds),
		Instructions: m.Instructions,
		Migrations:   m.Migrations,
		Preemptions:  m.Preemptions,
		Transitions:  m.Transitions,
		PerCoreInstr: m.PerCoreInstr,
	}
	return json.Marshal(res)
}
