package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"multitherm/internal/core"
	"multitherm/internal/floorplan"
	"multitherm/internal/metrics"
	"multitherm/internal/sim"
	"multitherm/internal/thermal"
	"multitherm/internal/units"
	"multitherm/internal/workload"
)

// Request caps: explicit maxima enforced at decode time, before any
// allocation or loop is sized by wire input. Violations answer 400.
// Floorplan dimensions are bounded separately by the floorplan package
// itself (each grid dimension and the cell product are validated before
// any allocation — the clamp taintcheck's fixture suite mutates).
const (
	// MaxSweepCells bounds the cells array of one sweep request.
	MaxSweepCells = 1024
	// MaxTraceEvery bounds a trace request's tick stride. The trace
	// line count is bounded transitively: simulated time is capped by
	// Config.MaxSimTimeS and the control period is fixed server-side.
	MaxTraceEvery = 1 << 20
)

// CellSpec is the wire form of one simulation cell: a workload mix, a
// DTM policy from the taxonomy, and the simulated silicon time. It is
// the body of POST /v1/sim and the element type of a sweep request's
// cells array. SimTimeS of zero inherits the request (for sweep cells)
// or server default.
type CellSpec struct {
	Workload string  `json:"workload"`
	Policy   string  `json:"policy"`
	SimTimeS float64 `json:"simtime_s,omitempty"`
	// Floorplan selects a generated grid chip ("RxC", e.g. "8x8")
	// instead of the paper's default chip. Grid cells timeshare the
	// tiled benchmark pool, so Workload must be empty.
	Floorplan string `json:"floorplan,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: many cells answered in
// one response, sharded across the worker pool and coalesced into
// lockstep panels with every other in-flight request.
type SweepRequest struct {
	SimTimeS float64    `json:"simtime_s,omitempty"` // default for cells that leave theirs zero
	Cells    []CellSpec `json:"cells"`
}

// TraceRequest is the body of POST /v1/sim/trace: one cell streamed as
// NDJSON, one line per Every control ticks (default 16).
type TraceRequest struct {
	CellSpec
	Every int `json:"every,omitempty"`
}

// cell is a fully resolved, validated simulation cell. Its canonical
// hash is the content address under which the finished result is
// cached; everything the simulation depends on — workload, policy,
// simulated time, the control period that picks the propagator, and
// the trace length — is folded into the key, so two requests collide
// exactly when their responses must be bit-identical.
type cell struct {
	spec   CellSpec // normalized: canonical policy name, resolved simtime
	cfg    sim.Config
	mix    workload.Mix
	policy core.PolicySpec
	// Grid cells timeshare the tiled benchmark pool instead of running
	// a named mix; label is the generated floorplan's name.
	benchmarks []string
	label      string
	key        [32]byte
}

// newRunner constructs the simulation for one resolved cell: the
// paper-default chip under a named mix, or a generated grid
// timesharing the tiled benchmark pool.
func (c *cell) newRunner() (*sim.Runner, error) {
	if len(c.benchmarks) > 0 {
		return sim.NewTimeshared(c.cfg, c.label, c.benchmarks, c.policy, 0)
	}
	return sim.New(c.cfg, c.mix, c.policy)
}

// resolveSimTime validates the wire simulated time against the server
// limits, resolving the zero "inherit" sentinel.
func (s *Server) resolveSimTime(reqSimTime, defaultSimTime float64) (float64, error) {
	simTime := reqSimTime
	if simTime == 0 { //mtlint:allow floatcmp zero is the explicit "inherit the default" sentinel on the wire
		simTime = defaultSimTime
	}
	if simTime == 0 { //mtlint:allow floatcmp same sentinel, one level up
		simTime = s.cfg.defaultSimTime()
	}
	if simTime < 0 || math.IsNaN(simTime) || math.IsInf(simTime, 0) {
		return 0, fmt.Errorf("serve: simtime_s %v is not a positive duration", reqSimTime)
	}
	if simTime > s.cfg.maxSimTime() {
		return 0, fmt.Errorf("serve: simtime_s %g exceeds the server limit of %g s", simTime, s.cfg.maxSimTime())
	}
	return simTime, nil
}

// resolveCell validates a wire spec against the server limits and
// binds it to the paper's default chip configuration, or to a
// generated grid when the spec names one.
func (s *Server) resolveCell(spec CellSpec, defaultSimTime float64) (*cell, error) {
	simTime, err := s.resolveSimTime(spec.SimTimeS, defaultSimTime)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(spec.Floorplan) != "" {
		return s.resolveGridCell(spec, simTime)
	}
	mix, err := workload.MixByName(strings.TrimSpace(spec.Workload))
	if err != nil {
		return nil, err
	}
	policy, err := core.PolicyByName(spec.Policy)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	cfg.SimTime = units.Seconds(simTime)
	c := &cell{
		spec: CellSpec{
			Workload: mix.Name,
			Policy:   policy.CLIName(),
			SimTimeS: simTime,
		},
		cfg:    cfg,
		mix:    mix,
		policy: policy,
	}
	c.key = cellKey(c.spec, float64(cfg.Policy.SamplePeriod), cfg.TraceIntervals)
	return c, nil
}

// resolveGridCell binds a spec to a generated grid floorplan, the same
// wiring experiments.RunManycore uses: fitted lumped-RC parameters,
// per-class DVFS ceilings, and a 3:2 oversubscribed timeshared run over
// the cyclically tiled benchmark pool. ParseGridSpec bounds each grid
// dimension (and the cell product) before anything is allocated, so a
// hostile "99999999x99999999" floorplan dies here with a 400.
func (s *Server) resolveGridCell(spec CellSpec, simTime float64) (*cell, error) {
	if strings.TrimSpace(spec.Workload) != "" {
		return nil, fmt.Errorf("serve: floorplan cells run the tiled benchmark pool; workload must be empty, got %q", spec.Workload)
	}
	gs, err := floorplan.ParseGridSpec(strings.TrimSpace(spec.Floorplan))
	if err != nil {
		return nil, err
	}
	policy, err := core.PolicyByName(spec.Policy)
	if err != nil {
		return nil, err
	}
	fp, err := floorplan.Grid(gs)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	cfg.SimTime = units.Seconds(simTime)
	cfg.Floorplan = fp
	cfg.Thermal = thermal.FitParams(fp)
	scales := floorplan.GridCoreScales(gs)
	cfg.CoreMaxScale = make([]units.ScaleFactor, len(scales))
	for i, sc := range scales {
		cfg.CoreMaxScale[i] = units.ScaleFactor(sc)
	}
	// 3:2 process oversubscription over the benchmark pool, tiled
	// cyclically — the RunManycore workload model.
	pool := workload.Benchmarks()
	nCores := fp.NumCores()
	nProcs := nCores + nCores/2
	benchmarks := make([]string, nProcs)
	for i := range benchmarks {
		benchmarks[i] = pool[i%len(pool)]
	}
	c := &cell{
		spec: CellSpec{
			Policy:    policy.CLIName(),
			SimTimeS:  simTime,
			Floorplan: fmt.Sprintf("%dx%d", gs.Rows, gs.Cols),
		},
		cfg:        cfg,
		policy:     policy,
		benchmarks: benchmarks,
		label:      fp.Name,
	}
	c.key = cellKey(c.spec, float64(cfg.Policy.SamplePeriod), cfg.TraceIntervals)
	return c, nil
}

// keyPreimageMax bounds the stack buffer the canonical preimage is
// assembled in: scheme tag, three short names, three 8-byte words, and
// separators all fit with slack (the floorplan string is canonicalized
// "RxC" with both dimensions already validated ≤ 4 digits).
const keyPreimageMax = 192

// cellKey computes the content address of a cell result: a SHA-256
// over a versioned canonical encoding of everything the response bytes
// depend on. Strings are length-delimited (no separator ambiguity) and
// floats are encoded as their IEEE-754 bit patterns, so distinct specs
// cannot collide by formatting and equal specs hash equally on every
// machine.
//
//mtlint:zeroalloc
func cellKey(spec CellSpec, dt float64, traceIntervals int) [32]byte {
	var arr [keyPreimageMax]byte
	b := arr[:0]
	b = append(b, "mtserve/2\x00"...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(spec.Workload)))
	b = append(b, spec.Workload...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(spec.Policy)))
	b = append(b, spec.Policy...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(spec.Floorplan)))
	b = append(b, spec.Floorplan...)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(spec.SimTimeS))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(dt))
	b = binary.LittleEndian.AppendUint64(b, uint64(traceIntervals))
	return sha256.Sum256(b)
}

// CellResult is the wire form of one finished cell. Field order is the
// canonical response order; encoding/json marshals struct fields in
// declaration order with deterministic float formatting, so equal
// metrics always produce equal bytes — the property the determinism
// guarantee and the content-addressed cache both rest on.
type CellResult struct {
	Workload     string    `json:"workload"`
	Floorplan    string    `json:"floorplan,omitempty"` // canonical "RxC" for grid cells
	Policy       string    `json:"policy"`
	PolicyLabel  string    `json:"policy_label"`
	SimTimeS     float64   `json:"simtime_s"`
	BIPS         float64   `json:"bips"`
	DutyCycle    float64   `json:"duty_cycle"`
	MaxTempC     float64   `json:"max_temp_c"`
	EmergencyS   float64   `json:"emergency_s"`
	StallS       float64   `json:"stall_s"`
	PenaltyS     float64   `json:"penalty_s"`
	WorkS        float64   `json:"work_s"`
	Instructions float64   `json:"instructions"`
	Migrations   int       `json:"migrations"`
	Preemptions  int       `json:"preemptions"`
	Transitions  int       `json:"transitions"`
	PerCoreInstr []float64 `json:"per_core_instr"`
}

// encodeResult renders the canonical response bytes for one finished
// cell. These exact bytes are what the cache stores and what every
// transport path writes, so hit and miss responses cannot diverge.
func encodeResult(c *cell, m *metrics.Run) ([]byte, error) {
	res := CellResult{
		Workload:     c.spec.Workload,
		Floorplan:    c.spec.Floorplan,
		Policy:       c.spec.Policy,
		PolicyLabel:  c.policy.String(),
		SimTimeS:     c.spec.SimTimeS,
		BIPS:         float64(m.BIPS()),
		DutyCycle:    float64(m.DutyCycle()),
		MaxTempC:     float64(m.MaxTempC),
		EmergencyS:   float64(m.EmergencySeconds),
		StallS:       float64(m.StallSeconds),
		PenaltyS:     float64(m.PenaltySeconds),
		WorkS:        float64(m.WorkSeconds),
		Instructions: m.Instructions,
		Migrations:   m.Migrations,
		Preemptions:  m.Preemptions,
		Transitions:  m.Transitions,
		PerCoreInstr: m.PerCoreInstr,
	}
	return json.Marshal(res)
}
