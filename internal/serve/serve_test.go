package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer builds a server plus its httptest listener; the
// cleanup drains in listener-then-server order, mirroring production.
//
// The MTSERVE_FORCE_WINDOW environment variable overrides the batch
// window for every server built through this helper: the CI race
// shard sets it to 0 so each join dispatches immediately, turning a
// full test run into maximum flush contention on the batcher and
// pool. Tests whose assertions depend on a specific window (batch
// coalescing) construct their server directly and are unaffected.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if v, ok := os.LookupEnv("MTSERVE_FORCE_WINDOW"); ok {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("MTSERVE_FORCE_WINDOW %q: %v", v, err)
		}
		cfg.Window = d
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, resp.Header, b
}

func mustPost(t *testing.T, url, body string) []byte {
	t.Helper()
	code, _, b := post(t, url, body)
	if code != http.StatusOK {
		t.Fatalf("POST %s: status %d, body %s", url, code, b)
	}
	return b
}

const testSimBody = `{"workload":"workload1","policy":"dist-dvfs","simtime_s":0.01}`

func TestSimEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: 16})
	body := mustPost(t, ts.URL+"/v1/sim", testSimBody)
	for _, want := range []string{`"workload":"workload1"`, `"policy":"dist-dvfs"`, `"bips":`, `"max_temp_c":`} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("response missing %s: %s", want, body)
		}
	}
}

func TestSimRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"unknown workload": `{"workload":"nope","policy":"dist-dvfs"}`,
		"unknown policy":   `{"workload":"workload1","policy":"nope"}`,
		"negative simtime": `{"workload":"workload1","policy":"dist-dvfs","simtime_s":-1}`,
		"huge simtime":     `{"workload":"workload1","policy":"dist-dvfs","simtime_s":1e9}`,
		"bad json":         `{`,
	} {
		code, _, _ := post(t, ts.URL+"/v1/sim", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: got status %d, want 400", name, code)
		}
	}
}

// TestCacheHitReplaysExactBytes proves the content-addressed cache
// stores and replays the canonical response verbatim, and that the
// counters see the traffic.
func TestCacheHitReplaysExactBytes(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: 16})
	cold := mustPost(t, ts.URL+"/v1/sim", testSimBody)
	warm := mustPost(t, ts.URL+"/v1/sim", testSimBody)
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm response diverged from cold:\ncold: %s\nwarm: %s", cold, warm)
	}
	st := s.cache.Stats()
	if st.Hits < 1 || st.Misses < 1 || st.Entries != 1 {
		t.Fatalf("cache stats %+v: want >=1 hit, >=1 miss, exactly 1 entry", st)
	}
}

// TestDeterministicAcrossOrderingsAndCacheState is the acceptance
// criterion: fire a mixed sim/sweep burst in two different client
// orderings, with batching on and off, cold and warm — every
// configuration must yield bit-identical bytes per request.
func TestDeterministicAcrossOrderingsAndCacheState(t *testing.T) {
	sims := []string{
		`{"workload":"workload1","policy":"dist-dvfs","simtime_s":0.008}`,
		`{"workload":"workload2","policy":"global-stopgo","simtime_s":0.008}`,
		`{"workload":"workload3","policy":"dist-stopgo+counter","simtime_s":0.008}`,
	}
	sweep := `{"simtime_s":0.008,"cells":[` +
		`{"workload":"workload4","policy":"dist-dvfs"},` +
		`{"workload":"workload5","policy":"dist-dvfs+sensor"},` +
		`{"workload":"workload1","policy":"dist-dvfs"}]}`

	type reqKey struct {
		path string
		body string
	}
	burst := func(url string, order []int) map[reqKey][]byte {
		reqs := make([]reqKey, 0, len(sims)+1)
		for _, b := range sims {
			reqs = append(reqs, reqKey{"/v1/sim", b})
		}
		reqs = append(reqs, reqKey{"/v1/sweep", sweep})

		out := make(map[reqKey][]byte, len(reqs))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, i := range order {
			r := reqs[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				body := mustPost(t, url+r.path, r.body)
				mu.Lock()
				out[r] = body
				mu.Unlock()
			}()
		}
		wg.Wait()
		return out
	}

	var reference map[reqKey][]byte
	for _, cfg := range []struct {
		name string
		c    Config
	}{
		{"batching-on", Config{Workers: 2, BatchWidth: 8, Window: 2 * time.Millisecond, CacheEntries: 64}},
		{"batching-off", Config{Workers: 2, CacheEntries: 64}},
		{"no-cache", Config{Workers: 2, BatchWidth: 8, Window: 2 * time.Millisecond}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			_, ts := newTestServer(t, cfg.c)
			cold := burst(ts.URL, []int{0, 1, 2, 3})
			warm := burst(ts.URL, []int{3, 2, 1, 0})
			if reference == nil {
				reference = cold
			}
			for k, want := range reference {
				if got, ok := cold[k]; !ok || !bytes.Equal(got, want) {
					t.Errorf("%s cold %s %s: bytes diverged from reference", cfg.name, k.path, k.body)
				}
				if got, ok := warm[k]; !ok || !bytes.Equal(got, want) {
					t.Errorf("%s warm reordered %s %s: bytes diverged from reference", cfg.name, k.path, k.body)
				}
			}
		})
	}
}

// TestBatcherCoalescesSameGroup shows concurrent same-(Template,dt)
// requests actually share panels: with a generous window, a burst of
// distinct cells must form at least one multi-lane batch.
func TestBatcherCoalescesSameGroup(t *testing.T) {
	// Built directly, not via newTestServer: the assertion needs this
	// exact window even when MTSERVE_FORCE_WINDOW=0 disables
	// coalescing everywhere else.
	s := New(Config{
		Workers:    1,
		BatchWidth: 4,
		Window:     50 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	var wg sync.WaitGroup
	for _, body := range []string{
		`{"workload":"workload1","policy":"dist-dvfs","simtime_s":0.005}`,
		`{"workload":"workload2","policy":"dist-dvfs","simtime_s":0.005}`,
		`{"workload":"workload3","policy":"dist-dvfs","simtime_s":0.005}`,
		`{"workload":"workload4","policy":"dist-dvfs","simtime_s":0.005}`,
	} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mustPost(t, ts.URL+"/v1/sim", body)
		}()
	}
	wg.Wait()
	st := s.batcher.stats()
	if st.WidestBatch < 2 {
		t.Fatalf("batcher stats %+v: want at least one multi-lane batch", st)
	}
	if st.Lanes != 4 {
		t.Fatalf("batcher stats %+v: want 4 lanes total", st)
	}
}

// TestSheddingPastWatermark wedges the single worker and checks that
// requests beyond the watermark get 429 + Retry-After while the wedged
// request still completes.
func TestSheddingPastWatermark(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxInflightCells: 1})
	gate := make(chan struct{})
	started := make(chan struct{})
	if err := s.pool.Submit(func() { close(started); <-gate }); err != nil {
		t.Fatalf("wedging worker: %v", err)
	}
	<-started

	// First cell occupies the watermark slot (queued behind the wedge).
	firstDone := make(chan []byte, 1)
	go func() {
		firstDone <- mustPost(t, ts.URL+"/v1/sim", testSimBody)
	}()
	// Wait until the first request has admitted its cell.
	for i := 0; s.inflight.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	code, hdr, _ := post(t, ts.URL+"/v1/sim",
		`{"workload":"workload2","policy":"dist-dvfs","simtime_s":0.01}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-watermark request: got status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if s.shed.Load() == 0 {
		t.Fatal("shed counter did not move")
	}

	close(gate)
	select {
	case body := <-firstDone:
		if len(body) == 0 {
			t.Fatal("admitted request returned empty body")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("admitted request never completed after unwedging")
	}
}

// TestGracefulDrain proves Close waits for accepted work: a request
// in flight when the drain starts still answers with full bytes.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 1, BatchWidth: 4, Window: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// With an hour-long window the cell sits pending until flushAll.
	done := make(chan []byte, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sim", "application/json", strings.NewReader(testSimBody))
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- b
	}()
	for i := 0; s.inflight.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close() // flushAll releases the pending join, pool drains it
	select {
	case b := <-done:
		if !bytes.Contains(b, []byte(`"bips":`)) {
			t.Fatalf("drained request answered %q, want a full result", b)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("request stuck across drain")
	}
}

// TestTraceStreamDeterministic runs the same trace twice and requires
// identical NDJSON bytes, with every line valid JSON and the last line
// carrying the canonical result.
func TestTraceStreamDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"workload":"workload1","policy":"dist-stopgo","simtime_s":0.005,"every":8}`
	first := mustPost(t, ts.URL+"/v1/sim/trace", body)
	second := mustPost(t, ts.URL+"/v1/sim/trace", body)
	if !bytes.Equal(first, second) {
		t.Fatal("trace stream bytes differ between identical requests")
	}
	sc := bufio.NewScanner(bytes.NewReader(first))
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) < 2 {
		t.Fatalf("trace stream has %d lines, want trace lines plus a result", len(lines))
	}
	for i, line := range lines[:len(lines)-1] {
		if !strings.HasPrefix(line, `{"tick":`) {
			t.Fatalf("trace line %d = %q, want a tick record", i, line)
		}
	}
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, `{"result":`) || !strings.Contains(last, `"bips":`) {
		t.Fatalf("final trace line = %q, want the canonical result", last)
	}
}

func TestStatsAndFlush(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: 16})
	mustPost(t, ts.URL+"/v1/sim", testSimBody)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{`"inflight_cells"`, `"cache"`, `"batching"`, `"completed_cells":1`} {
		if !bytes.Contains(b, []byte(want)) {
			t.Errorf("stats missing %s: %s", want, b)
		}
	}

	flushed := mustPost(t, ts.URL+"/v1/admin/flush", "")
	if !bytes.Contains(flushed, []byte(`"flushed":1`)) {
		t.Fatalf("flush response %s, want flushed:1", flushed)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestSweepOrderingStable checks sweep responses assemble in request
// order even when cells complete out of order across cache hits and
// misses.
func TestSweepOrderingStable(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: 64})
	// Warm one middle cell so the second sweep mixes hits and misses.
	mustPost(t, ts.URL+"/v1/sim", `{"workload":"workload2","policy":"dist-dvfs","simtime_s":0.006}`)
	sweep := `{"simtime_s":0.006,"cells":[` +
		`{"workload":"workload1","policy":"dist-dvfs"},` +
		`{"workload":"workload2","policy":"dist-dvfs"},` +
		`{"workload":"workload3","policy":"dist-dvfs"}]}`
	body := mustPost(t, ts.URL+"/v1/sweep", sweep)
	i1 := bytes.Index(body, []byte(`"workload":"workload1"`))
	i2 := bytes.Index(body, []byte(`"workload":"workload2"`))
	i3 := bytes.Index(body, []byte(`"workload":"workload3"`))
	if i1 < 0 || i2 < 0 || i3 < 0 || !(i1 < i2 && i2 < i3) {
		t.Fatalf("sweep cells out of request order (offsets %d %d %d): %s", i1, i2, i3, body)
	}
}

// BenchmarkServeWarm measures the warm-cache request path end to end
// over HTTP — the number benchsmoke gates against BENCH_serve.json.
func BenchmarkServeWarm(b *testing.B) {
	s := New(Config{CacheEntries: 64})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	client := ts.Client()
	warmOnce := func() error {
		resp, err := client.Post(ts.URL+"/v1/sim", "application/json", strings.NewReader(testSimBody))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	if err := warmOnce(); err != nil {
		b.Fatalf("warming cache: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := warmOnce(); err != nil {
			b.Fatalf("warm request: %v", err)
		}
	}
}
