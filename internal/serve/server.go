// Package serve is the long-running simulation service behind
// cmd/thermald: an HTTP/JSON API that accepts simulation and
// sweep-cell requests from many concurrent clients, shards them across
// a persistent internal/parallel pool, coalesces same-(Template, dt)
// cells from different clients into shared GEMM/SpMM panels (see
// batcher.go), and fronts everything with a content-addressed LRU of
// finished results.
//
// The load-bearing property is per-request determinism: the response
// bytes for a cell are a pure function of its canonical spec —
// independent of batching, arrival order, cache state, and worker
// count. The argument has three legs, each separately tested:
//
//  1. Every cell simulation is deterministic (the sweep engine's
//     guarantee since PR 1, enforced by mtlint's determinism analyzer
//     — this package opts in below).
//  2. Lockstep batching is bit-identical to sequential stepping at any
//     width and any packing (PR 3's invariant), so it cannot matter
//     which requests happened to share a panel.
//  3. Responses are rendered by exactly one encoder (encodeResult) and
//     the cache stores those bytes verbatim, so hit and miss paths are
//     byte-equal by construction.
//
// Wall-clock time exists in this package only where the contract
// allows: the batching window (changes when work runs, never what it
// computes) and operational counters. Simulation logic gets time
// exclusively from tick counters.
//
//mtlint:deterministic
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"multitherm/internal/core"
	"multitherm/internal/memo"
	"multitherm/internal/parallel"
	"multitherm/internal/sim"
	"multitherm/internal/units"
)

// Config sizes the server.
type Config struct {
	// Workers is the persistent pool width; 0 selects GOMAXPROCS.
	Workers int
	// BatchWidth caps lanes per lockstep batch; 0 selects
	// sim.DefaultBatchSize(), 1 disables cross-request coalescing.
	BatchWidth int
	// Window is how long a lone cell waits for batchmates; 0 disables
	// cross-request coalescing.
	Window time.Duration
	// CacheEntries bounds the content-addressed result cache; 0
	// disables caching.
	CacheEntries int
	// MaxInflightCells is the admission watermark: once this many cells
	// are queued or running, new work is shed with 429. 0 selects 1024.
	MaxInflightCells int
	// DefaultSimTimeS is the simulated time for requests that omit it;
	// 0 selects 0.05 s.
	DefaultSimTimeS float64
	// MaxSimTimeS caps per-cell simulated time; 0 selects 2 s.
	MaxSimTimeS float64
}

func (c Config) defaultSimTime() float64 {
	if c.DefaultSimTimeS > 0 {
		return c.DefaultSimTimeS
	}
	return 0.05
}

func (c Config) maxSimTime() float64 {
	if c.MaxSimTimeS > 0 {
		return c.MaxSimTimeS
	}
	return 2.0
}

func (c Config) watermark() int64 {
	if c.MaxInflightCells > 0 {
		return int64(c.MaxInflightCells)
	}
	return 1024
}

// DefaultCacheEntries bounds the result cache when the caller does not:
// cached cell results are a few hundred bytes each, so the default
// costs single-digit megabytes at worst.
const DefaultCacheEntries = 4096

// Server owns the pool, the batcher, and the result cache. Create with
// New, expose with Handler, stop with Close (after draining HTTP).
type Server struct {
	cfg     Config
	pool    *parallel.Pool
	batcher *batcher
	cache   *memo.LRU[[32]byte, []byte]
	mux     *http.ServeMux

	inflight  atomic.Int64 // cells queued or running
	shed      atomic.Int64 // requests answered 429
	completed atomic.Int64 // cells finished (any outcome)
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	pool := parallel.NewPool(cfg.Workers)
	width := cfg.BatchWidth
	if width == 0 {
		width = sim.DefaultBatchSize()
	}
	s := &Server{
		cfg:     cfg,
		pool:    pool,
		batcher: newBatcher(pool, width, cfg.Window),
		cache:   memo.NewLRU[[32]byte, []byte](cfg.CacheEntries),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/sim", s.handleSim)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/sim/trace", s.handleTrace)
	s.mux.HandleFunc("POST /v1/admin/flush", s.handleFlush)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the server: pending batches flush immediately, every
// accepted cell runs to completion, then the workers exit. Callers
// must stop the HTTP listener first (http.Server.Shutdown) so no new
// cells arrive during the drain.
func (s *Server) Close() {
	s.batcher.flushAll()
	s.pool.Close()
}

// httpError answers with a JSON error body.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(body)
}

// shedResponse answers 429 with a Retry-After hint — the load-shedding
// contract past the admission watermark.
func (s *Server) shedResponse(w http.ResponseWriter) {
	s.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusTooManyRequests, "server at capacity; retry after the queue drains")
}

// admit reserves n cells against the watermark, or reports shedding.
func (s *Server) admit(n int64) bool {
	if s.inflight.Add(n) > s.cfg.watermark() {
		s.inflight.Add(-n)
		return false
	}
	return true
}

// release returns n admitted cells.
func (s *Server) release(n int64) {
	s.inflight.Add(-n)
	s.completed.Add(n)
}

// writeResult writes canonical cell bytes. The bytes come from
// encodeResult whether they were computed this request or replayed
// from the cache, so equal cells always answer with equal bodies.
func writeResult(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// runCell resolves a cell's bytes: cache probe, then batch join. The
// caller has already admitted the cell.
func (s *Server) runCell(r *http.Request, c *cell) ([]byte, error) {
	j := s.batcher.submit(c)
	select {
	case res := <-j.done:
		if res.err != nil {
			return nil, res.err
		}
		s.cache.Put(c.key, res.bytes)
		return res.bytes, nil
	case <-r.Context().Done():
		// The requester is gone; the batch still runs (done is buffered)
		// and its result is simply dropped — the cache misses the write,
		// nothing blocks.
		return nil, r.Context().Err()
	}
}

// handleSim answers POST /v1/sim: one cell, one canonical JSON body.
func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var spec CellSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	c, err := s.resolveCell(spec, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if body, ok := s.cache.Get(c.key); ok {
		writeResult(w, body)
		return
	}
	if !s.admit(1) {
		s.shedResponse(w)
		return
	}
	defer s.release(1)
	body, err := s.runCell(r, c)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeResult(w, body)
}

// handleSweep answers POST /v1/sweep: every cell resolved up front,
// cache hits answered from stored bytes, misses submitted together so
// they coalesce with each other and with every other in-flight
// request, results assembled in request order.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	if len(req.Cells) == 0 {
		httpError(w, http.StatusBadRequest, "sweep request has no cells")
		return
	}
	if len(req.Cells) > MaxSweepCells {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("sweep request has %d cells; the cap is %d", len(req.Cells), MaxSweepCells))
		return
	}
	cells := make([]*cell, len(req.Cells))
	for i, spec := range req.Cells {
		c, err := s.resolveCell(spec, req.SimTimeS)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("cell %d: %v", i, err))
			return
		}
		cells[i] = c
	}

	bodies := make([][]byte, len(cells))
	missIdx := make([]int, 0, len(cells))
	for i, c := range cells {
		if body, ok := s.cache.Get(c.key); ok {
			bodies[i] = body
		} else {
			missIdx = append(missIdx, i)
		}
	}
	if len(missIdx) > 0 {
		if !s.admit(int64(len(missIdx))) {
			s.shedResponse(w)
			return
		}
		defer s.release(int64(len(missIdx)))
		joins := make([]*join, len(missIdx))
		for k, i := range missIdx {
			joins[k] = s.batcher.submit(cells[i])
		}
		for k, i := range missIdx {
			select {
			case res := <-joins[k].done:
				if res.err != nil {
					httpError(w, http.StatusInternalServerError,
						fmt.Sprintf("cell %d: %v", i, res.err))
					return
				}
				s.cache.Put(cells[i].key, res.bytes)
				bodies[i] = res.bytes
			case <-r.Context().Done():
				return
			}
		}
	}

	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"cells":[`))
	for i, body := range bodies {
		if i > 0 {
			w.Write([]byte{','})
		}
		w.Write(body)
	}
	w.Write([]byte(`]}`))
}

// traceLine is one NDJSON record of the streaming trace: the control
// tick, simulated time, hottest block temperature, and the per-core
// DVFS scales and stall flags the policy commanded.
type traceLine struct {
	Tick   int64     `json:"tick"`
	TimeS  float64   `json:"t_s"`
	MaxC   float64   `json:"max_c"`
	Scales []float64 `json:"scales"`
	Stall  []bool    `json:"stall"`
}

// handleTrace answers POST /v1/sim/trace with an NDJSON stream: one
// trace line per `every` control ticks, then a final line carrying the
// canonical cell result under a "result" key. Traces bypass the result
// cache (the stream is the product) but still count against admission
// and run on the pool, so a flood of trace requests sheds like any
// other load. The stream bytes are deterministic: lines are produced
// by a single probe in tick order and rendered by one encoder.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	var req TraceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	if req.Every < 0 || req.Every > MaxTraceEvery {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("trace every %d out of range [0, %d]", req.Every, MaxTraceEvery))
		return
	}
	c, err := s.resolveCell(req.CellSpec, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	every := int64(req.Every)
	if every == 0 {
		every = 16
	}
	if !s.admit(1) {
		s.shedResponse(w)
		return
	}
	defer s.release(1)

	lines := make(chan traceLine, 64)
	final := make(chan joinResult, 1)
	job := func() {
		defer close(lines)
		runner, err := c.newRunner()
		if err != nil {
			final <- joinResult{err: err}
			return
		}
		runner.SetProbe(func(now units.Seconds, tick int64, blockTemps units.TempVec, cmds []core.CoreCommand, _ []int) {
			if tick%every != 0 {
				return
			}
			maxC, _ := blockTemps.Max()
			line := traceLine{
				Tick:   tick,
				TimeS:  float64(now),
				MaxC:   float64(maxC),
				Scales: make([]float64, len(cmds)),
				Stall:  make([]bool, len(cmds)),
			}
			for i, cmd := range cmds {
				line.Scales[i] = float64(cmd.Scale)
				line.Stall[i] = cmd.Stall
			}
			lines <- line
		})
		m, err := runner.Run()
		if err != nil {
			final <- joinResult{err: err}
			return
		}
		body, err := encodeResult(c, m)
		final <- joinResult{bytes: body, err: err}
	}
	if err := s.pool.Submit(job); err != nil {
		httpError(w, http.StatusServiceUnavailable, "serve: draining")
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// Drain every line even if the client went away: the probe blocks on
	// the lines channel, so abandoning it would wedge a pool worker.
	// Encode errors after a disconnect are deliberately ignored.
	for line := range lines {
		_ = enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	res := <-final
	if res.err != nil {
		_ = enc.Encode(map[string]string{"error": res.err.Error()})
		return
	}
	w.Write([]byte(`{"result":`))
	w.Write(res.bytes)
	w.Write([]byte("}\n"))
}

// Stats is the GET /v1/stats body: admission, cache, and batching
// counters. Operational observability only — nothing here feeds back
// into simulation results.
type Stats struct {
	InflightCells  int64         `json:"inflight_cells"`
	Watermark      int64         `json:"watermark"`
	ShedRequests   int64         `json:"shed_requests"`
	CompletedCells int64         `json:"completed_cells"`
	Workers        int           `json:"workers"`
	Cache          memo.LRUStats `json:"cache"`
	Batching       batchStats    `json:"batching"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{
		InflightCells:  s.inflight.Load(),
		Watermark:      s.cfg.watermark(),
		ShedRequests:   s.shed.Load(),
		CompletedCells: s.completed.Load(),
		Workers:        s.pool.Workers(),
		Cache:          s.cache.Stats(),
		Batching:       s.batcher.stats(),
	}
	body, err := json.Marshal(st)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeResult(w, body)
}

// handleFlush empties the result cache — the cold-start switch the
// bench harness and tests use to measure miss-path cost on a warm
// process.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	n := s.cache.Flush()
	body, _ := json.Marshal(map[string]int{"flushed": n})
	writeResult(w, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeResult(w, []byte(`{"ok":true}`))
}
