package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestHostileWireRejected drives the decode-time caps: every body is
// hostile on exactly one axis and must die with a 400 before the
// server sizes any allocation or loop from it.
func TestHostileWireRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var bigSweep strings.Builder
	bigSweep.WriteString(`{"simtime_s":0.001,"cells":[`)
	for i := 0; i <= MaxSweepCells; i++ {
		if i > 0 {
			bigSweep.WriteByte(',')
		}
		bigSweep.WriteString(`{"workload":"workload1","policy":"dist-dvfs"}`)
	}
	bigSweep.WriteString(`]}`)

	cases := []struct {
		name, path, body string
	}{
		{"sweep over cell cap", "/v1/sweep", bigSweep.String()},
		{"overflow floorplan", "/v1/sim", `{"floorplan":"99999999x99999999","policy":"dist-dvfs","simtime_s":0.001}`},
		{"negative floorplan dim", "/v1/sim", `{"floorplan":"4x-4","policy":"dist-dvfs","simtime_s":0.001}`},
		{"zero floorplan dim", "/v1/sim", `{"floorplan":"0x4","policy":"dist-dvfs","simtime_s":0.001}`},
		{"garbage floorplan", "/v1/sim", `{"floorplan":"axb","policy":"dist-dvfs","simtime_s":0.001}`},
		{"trailing garbage floorplan", "/v1/sim", `{"floorplan":"4x4x4","policy":"dist-dvfs","simtime_s":0.001}`},
		{"floorplan with workload", "/v1/sim", `{"floorplan":"4x4","workload":"workload1","policy":"dist-dvfs","simtime_s":0.001}`},
		{"grid simtime too large", "/v1/sim", `{"floorplan":"4x4","policy":"dist-dvfs","simtime_s":1e9}`},
		{"grid simtime negative", "/v1/sim", `{"floorplan":"4x4","policy":"dist-dvfs","simtime_s":-1}`},
		{"negative trace stride", "/v1/sim/trace", `{"workload":"workload1","policy":"dist-dvfs","every":-1}`},
		{"huge trace stride", "/v1/sim/trace", fmt.Sprintf(`{"workload":"workload1","policy":"dist-dvfs","every":%d}`, MaxTraceEvery+1)},
		{"overflow floorplan in sweep", "/v1/sweep", `{"simtime_s":0.001,"cells":[{"floorplan":"99999999x99999999","policy":"dist-dvfs"}]}`},
	}
	for _, tc := range cases {
		code, _, body := post(t, ts.URL+tc.path, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: got status %d (body %.120s), want 400", tc.name, code, body)
		}
	}
}

// TestGridCellDeterministicAcrossCacheFlush proves a generated-grid
// cell behaves like a named-floorplan cell: the warm response replays
// the cold bytes verbatim, and a full recompute after an admin flush
// reproduces them bit-identically.
func TestGridCellDeterministicAcrossCacheFlush(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: 16})
	const body = `{"floorplan":"2x2","policy":"dist-dvfs","simtime_s":0.004}`
	cold := mustPost(t, ts.URL+"/v1/sim", body)
	if !bytes.Contains(cold, []byte(`"floorplan":"2x2"`)) {
		t.Errorf("response does not echo the canonical grid spec: %s", cold)
	}
	warm := mustPost(t, ts.URL+"/v1/sim", body)
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm grid response diverged from cold:\ncold: %s\nwarm: %s", cold, warm)
	}
	mustPost(t, ts.URL+"/v1/admin/flush", "")
	recomputed := mustPost(t, ts.URL+"/v1/sim", body)
	if !bytes.Equal(cold, recomputed) {
		t.Fatalf("grid recompute after flush diverged:\ncold: %s\nnew:  %s", cold, recomputed)
	}
}
