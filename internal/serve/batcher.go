package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"multitherm/internal/parallel"
	"multitherm/internal/sim"
	"multitherm/internal/thermal"
	"multitherm/internal/units"
)

// The batcher promotes the sweep engine's per-group lockstep batching
// (PR 3's GEMV→GEMM panels, PR 6's cursor-fed batch formation) from
// per-process to cross-request scope: cells arriving from *different*
// clients that share one (Template, dt) propagator are held for a
// short batching window and then stepped together through one shared
// thermal.BatchModel panel. The window trades a bounded, configurable
// latency bump (default single-digit milliseconds) for the ~2× per-lane
// GEMM win measured in BENCH_sweep.json — under concurrent load the
// window barely matters because batches fill to width and flush early.
//
// Batch composition depends on arrival timing and is therefore not
// deterministic; responses still are, because lockstep stepping is
// bit-identical to sequential stepping at any width and any packing
// (sim.BatchRunner's contract, fuzzed and tested since PR 3). The
// batcher only ever changes *when* a cell runs and *whose cache lines
// it shares*, never what it computes.

// joinResult is what a waiting request receives: the canonical
// response bytes for its cell, or the error that stopped them.
type joinResult struct {
	bytes []byte
	err   error
}

// join is one cell waiting to be packed into a batch. done is buffered
// so a completed batch never blocks on an abandoned requester.
type join struct {
	c    *cell
	done chan joinResult
}

func newJoin(c *cell) *join {
	return &join{c: c, done: make(chan joinResult, 1)}
}

// groupKey identifies the shared propagator a cell steps through, the
// same (Template, dt) identity the sweep engine batches by: templates
// are memoized singletons, so pointer identity is exact.
type groupKey struct {
	tmpl *thermal.Template
	dt   units.Seconds
}

// group accumulates joins for one propagator family between flushes.
type group struct {
	b  *batcher
	mu sync.Mutex
	// pending joins in arrival order; the armed timer covers exactly
	// the joins accumulated since the last flush.
	//
	//mtlint:guardedby mu
	pending []*join
	//mtlint:guardedby mu
	timer *time.Timer
}

// batcher coalesces joins into lockstep batches and dispatches them to
// the worker pool.
type batcher struct {
	pool   *parallel.Pool
	width  int           // max lanes per dispatched batch
	window time.Duration // how long a lone join waits for company

	mu sync.Mutex
	//mtlint:guardedby mu
	groups map[groupKey]*group

	// Counters for /v1/stats.
	batches, lanes        atomic.Int64
	fullFlushes, timeouts atomic.Int64
	widest                atomic.Int64
	fallbackSingles       atomic.Int64
}

func newBatcher(pool *parallel.Pool, width int, window time.Duration) *batcher {
	if width <= 0 {
		width = sim.DefaultBatchSize()
	}
	return &batcher{
		pool:   pool,
		width:  width,
		window: window,
		groups: map[groupKey]*group{},
	}
}

// enabled reports whether cross-request coalescing is on; with a zero
// window or single-lane width every join dispatches immediately.
func (b *batcher) enabled() bool { return b.window > 0 && b.width > 1 }

// groupFor returns the group a cell batches under.
func (b *batcher) groupFor(c *cell) (*group, error) {
	tmpl, err := thermal.TemplateFor(c.cfg.Floorplan, c.cfg.Thermal)
	if err != nil {
		return nil, err
	}
	k := groupKey{tmpl: tmpl, dt: c.cfg.Policy.SamplePeriod}
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.groups[k]
	if !ok {
		g = &group{b: b}
		b.groups[k] = g
	}
	return g, nil
}

// submit queues one cell. The returned join's done channel receives
// exactly one result once the cell's batch has run.
func (b *batcher) submit(c *cell) *join {
	j := newJoin(c)
	if !b.enabled() {
		b.dispatch([]*join{j})
		return j
	}
	g, err := b.groupFor(c)
	if err != nil {
		j.done <- joinResult{err: err}
		return j
	}
	g.mu.Lock()
	g.pending = append(g.pending, j)
	if len(g.pending) >= b.width {
		batch := g.take()
		g.mu.Unlock()
		b.fullFlushes.Add(1)
		b.dispatch(batch)
		return j
	}
	if len(g.pending) == 1 {
		// First join since the last flush arms the window timer; the
		// full-width path above disarms it by draining pending.
		g.timer = time.AfterFunc(b.window, g.flush)
	}
	g.mu.Unlock()
	return j
}

// take removes and returns every pending join. Callers hold g.mu.
//
//mtlint:locked mu
func (g *group) take() []*join {
	batch := g.pending
	g.pending = nil
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	return batch
}

// flush dispatches whatever accumulated during the window.
func (g *group) flush() {
	g.mu.Lock()
	batch := g.take()
	g.mu.Unlock()
	if len(batch) > 0 {
		g.b.timeouts.Add(1)
		g.b.dispatch(batch)
	}
}

// flushAll force-flushes every group; the drain path calls it before
// closing the pool so no join is left waiting on a dead timer.
func (b *batcher) flushAll() {
	b.mu.Lock()
	groups := make([]*group, 0, len(b.groups))
	//mtlint:allow maprange collecting groups to flush; flush order is irrelevant, each group drains independently
	for _, g := range b.groups {
		groups = append(groups, g)
	}
	b.mu.Unlock()
	for _, g := range groups {
		g.flush()
	}
}

// dispatch hands one formed batch to the pool. If the pool has begun
// closing, the joins fail rather than hang.
func (b *batcher) dispatch(batch []*join) {
	b.batches.Add(1)
	b.lanes.Add(int64(len(batch)))
	for w := int64(len(batch)); ; {
		old := b.widest.Load()
		if w <= old || b.widest.CompareAndSwap(old, w) {
			break
		}
	}
	if err := b.pool.Submit(func() { runBatch(b, batch) }); err != nil {
		for _, j := range batch {
			j.done <- joinResult{err: fmt.Errorf("serve: draining: %w", err)}
		}
	}
}

// runBatch executes one batch on a pool worker: single joins run the
// plain sequential path, wider batches build fresh runners and step
// them in lockstep through the shared propagator panel. Either path
// produces bit-identical bytes for every lane.
func runBatch(b *batcher, batch []*join) {
	if len(batch) == 1 {
		j := batch[0]
		j.done <- runSingle(j.c)
		return
	}
	runners := make([]*sim.Runner, len(batch))
	for i, j := range batch {
		r, err := j.c.newRunner()
		if err != nil {
			// A lane that cannot even construct fails alone; the rest of
			// the batch proceeds without it.
			j.done <- joinResult{err: err}
			runners[i] = nil
			continue
		}
		runners[i] = r
	}
	live := make([]*sim.Runner, 0, len(batch))
	liveJoins := make([]*join, 0, len(batch))
	for i, r := range runners {
		if r != nil {
			live = append(live, r)
			liveJoins = append(liveJoins, batch[i])
		}
	}
	switch len(live) {
	case 0:
		return
	case 1:
		liveJoins[0].done <- runSingle(liveJoins[0].c)
		return
	}
	br, err := sim.NewBatchRunner(live)
	if err != nil {
		// Lanes that cannot share a propagator (foreign template, odd
		// sample period) fall back to sequential runs — same bytes, no
		// coalescing win.
		b.fallbackSingles.Add(int64(len(liveJoins)))
		for _, j := range liveJoins {
			j.done <- runSingle(j.c)
		}
		return
	}
	ms, err := br.Run()
	if err != nil {
		// A mid-run failure poisons the shared panels for every lane;
		// rerun each cell alone so errors attribute per cell and healthy
		// lanes still answer.
		b.fallbackSingles.Add(int64(len(liveJoins)))
		for _, j := range liveJoins {
			j.done <- runSingle(j.c)
		}
		return
	}
	for i, j := range liveJoins {
		bytes, err := encodeResult(j.c, ms[i])
		j.done <- joinResult{bytes: bytes, err: err}
	}
}

// runSingle executes one cell sequentially and encodes its canonical
// bytes — the reference path every batched lane must match bit for bit.
func runSingle(c *cell) joinResult {
	r, err := c.newRunner()
	if err != nil {
		return joinResult{err: err}
	}
	m, err := r.Run()
	if err != nil {
		return joinResult{err: err}
	}
	bytes, err := encodeResult(c, m)
	return joinResult{bytes: bytes, err: err}
}

// batchStats is the /v1/stats projection of the batcher counters.
type batchStats struct {
	Enabled         bool    `json:"enabled"`
	Width           int     `json:"width"`
	WindowMS        float64 `json:"window_ms"`
	Batches         int64   `json:"batches"`
	Lanes           int64   `json:"lanes"`
	WidestBatch     int64   `json:"widest_batch"`
	FullFlushes     int64   `json:"full_flushes"`
	WindowFlushes   int64   `json:"window_flushes"`
	FallbackSingles int64   `json:"fallback_singles"`
}

func (b *batcher) stats() batchStats {
	return batchStats{
		Enabled:         b.enabled(),
		Width:           b.width,
		WindowMS:        float64(b.window) / float64(time.Millisecond),
		Batches:         b.batches.Load(),
		Lanes:           b.lanes.Load(),
		WidestBatch:     b.widest.Load(),
		FullFlushes:     b.fullFlushes.Load(),
		WindowFlushes:   b.timeouts.Load(),
		FallbackSingles: b.fallbackSingles.Load(),
	}
}
