package osched

import (
	"fmt"
	"math"
)

// DefaultTimeslice is the round-robin quantum used when more processes
// than cores are runnable. The paper's experiments hold one process per
// core, but its §6 notes that "in any system there can easily be a
// greater number of processes than cores"; this extension provides the
// OS mechanics for that case.
const DefaultTimeslice = 20e-3

// NewTimeshared creates a scheduler for len(benchmarks) processes on
// nCores cores with round-robin time slicing. Processes 0..nCores−1
// start on the cores; the rest wait. With len(benchmarks) == nCores the
// scheduler behaves exactly like NewScheduler.
func NewTimeshared(benchmarks []string, nCores int, timeslice float64) (*Scheduler, error) {
	if nCores <= 0 {
		return nil, fmt.Errorf("osched: nCores = %d", nCores)
	}
	if len(benchmarks) < nCores {
		return nil, fmt.Errorf("osched: %d processes for %d cores", len(benchmarks), nCores)
	}
	if timeslice <= 0 {
		timeslice = DefaultTimeslice
	}
	s := &Scheduler{
		epoch:        DefaultMigrationEpoch,
		penalty:      DefaultMigrationPenalty,
		lastDecision: -1e9,
		nCores:       nCores,
		timeslice:    timeslice,
		// The first rotation comes one full timeslice into the run.
		lastRotation: 0,
	}
	for i, b := range benchmarks {
		s.procs = append(s.procs, &Process{ID: i, Benchmark: b, windowHalflife: 20e-3})
		if i < nCores {
			s.onCore = append(s.onCore, i)
			s.coreOf = append(s.coreOf, i)
		} else {
			s.coreOf = append(s.coreOf, Waiting)
			s.waitQueue = append(s.waitQueue, i)
		}
	}
	s.waitingSince = make([]float64, len(benchmarks))
	s.stintStart = make([]float64, len(benchmarks))
	s.cumRun = make([]float64, len(benchmarks))
	s.busyUntil = make([]float64, nCores)
	return s, nil
}

// Waiting marks a process that currently has no core.
const Waiting = -1

// NumProcesses returns the process count (≥ NumCores).
func (s *Scheduler) NumProcesses() int { return len(s.procs) }

// IsWaiting reports whether process p is off-core.
func (s *Scheduler) IsWaiting(p int) bool { return s.coreOf[p] == Waiting }

// NeedsRotation reports whether a fairness preemption is due: at least
// one process is waiting and a full timeslice has elapsed since the
// last rotation.
func (s *Scheduler) NeedsRotation(now float64) bool {
	return len(s.waitQueue) > 0 && s.timeslice > 0 && now-s.lastRotation >= s.timeslice
}

// RotationAssignment computes the fair next placement: the
// longest-waiting processes replace the processes with the most
// accumulated runtime. It does not apply the assignment.
func (s *Scheduler) RotationAssignment(now float64) []int {
	assign := s.Assignment()
	k := len(s.waitQueue)
	if k > s.nCores {
		k = s.nCores
	}
	for i := 0; i < k; i++ {
		incoming := s.waitQueue[i]
		// Victim: running process with the largest total runtime.
		victim, worst := -1, math.Inf(-1)
		for c, p := range assign {
			already := false
			for j := 0; j < i; j++ {
				if assign[c] == s.waitQueue[j] {
					already = true
				}
			}
			if already {
				continue
			}
			if run := s.cumRun[p] + (now - s.stintStart[p]); run > worst {
				victim, worst = c, run
			}
		}
		if victim < 0 {
			break
		}
		assign[victim] = incoming
	}
	return assign
}

// MarkRotation records that a fairness rotation was enacted at now.
func (s *Scheduler) MarkRotation(now float64) { s.lastRotation = now }

// applyTimeshared reconciles waiting-state bookkeeping after Apply has
// placed `assign`; procs displaced from cores join the wait queue, and
// placed procs leave it.
func (s *Scheduler) applyTimeshared(now float64, assign []int) {
	running := make(map[int]bool, len(assign))
	for _, p := range assign {
		running[p] = true
	}
	// Displaced processes accumulate runtime and start waiting.
	for p := range s.procs {
		if s.coreOf[p] != Waiting && !running[p] {
			s.cumRun[p] += now - s.stintStart[p]
			s.coreOf[p] = Waiting
			s.waitingSince[p] = now
			s.waitQueue = append(s.waitQueue, p)
		}
	}
	// Placed processes leave the wait queue.
	var q []int
	for _, p := range s.waitQueue {
		if running[p] {
			s.stintStart[p] = now
		} else {
			q = append(q, p)
		}
	}
	s.waitQueue = q
}
