package osched

import (
	"math"
	"testing"
)

func fourProc() *Scheduler {
	return NewScheduler([]string{"gzip", "twolf", "ammp", "lucas"})
}

func TestInitialAssignmentIdentity(t *testing.T) {
	s := fourProc()
	for core := 0; core < 4; core++ {
		if p := s.ProcessOn(core); p.ID != core {
			t.Errorf("core %d runs process %d initially", core, p.ID)
		}
		if s.CoreOf(core) != core {
			t.Errorf("CoreOf(%d) = %d", core, s.CoreOf(core))
		}
	}
	if s.ProcessOn(2).Benchmark != "ammp" {
		t.Errorf("process 2 benchmark = %s", s.ProcessOn(2).Benchmark)
	}
}

func TestMayDecideEpoch(t *testing.T) {
	s := fourProc()
	if !s.MayDecide(0) {
		t.Fatal("first decision should be allowed")
	}
	if _, err := s.Apply(0, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if s.MayDecide(5e-3) {
		t.Error("decision allowed 5 ms after previous; epoch is 10 ms")
	}
	if !s.MayDecide(10e-3) {
		t.Error("decision blocked at the epoch boundary")
	}
}

func TestApplySwap(t *testing.T) {
	s := fourProc()
	moved, err := s.Apply(0, []int{1, 0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Errorf("moved = %d, want 2", moved)
	}
	if s.ProcessOn(0).Benchmark != "twolf" || s.ProcessOn(1).Benchmark != "gzip" {
		t.Error("swap not applied")
	}
	if s.CoreOf(0) != 1 || s.CoreOf(1) != 0 {
		t.Error("reverse map inconsistent after swap")
	}
	if s.Migrations() != 1 {
		t.Errorf("Migrations = %d", s.Migrations())
	}
}

func TestApplyFourWayRotation(t *testing.T) {
	// "A set of migrations can be as simple as a single swap, or as
	// complex as a four-way rotation" (§6.1).
	s := fourProc()
	moved, err := s.Apply(0, []int{3, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 4 {
		t.Errorf("moved = %d, want 4", moved)
	}
	for core := 0; core < 4; core++ {
		if s.CoreOf(s.ProcessOn(core).ID) != core {
			t.Errorf("maps inconsistent at core %d", core)
		}
	}
}

func TestApplyNoopCountsAsDecisionNotMigration(t *testing.T) {
	s := fourProc()
	moved, err := s.Apply(1.0, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Errorf("moved = %d", moved)
	}
	if s.Migrations() != 0 {
		t.Error("no-op counted as migration")
	}
	if s.MayDecide(1.005) {
		t.Error("no-op decision did not reset the epoch timer")
	}
}

func TestApplyRejectsBadAssignments(t *testing.T) {
	s := fourProc()
	if _, err := s.Apply(0, []int{0, 1, 2}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := s.Apply(0, []int{0, 1, 2, 9}); err == nil {
		t.Error("out-of-range process accepted")
	}
	if _, err := s.Apply(0, []int{0, 1, 2, 2}); err == nil {
		t.Error("duplicate process accepted")
	}
}

func TestMigrationPenaltyWindow(t *testing.T) {
	s := fourProc()
	if _, err := s.Apply(1.0, []int{1, 0, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for _, core := range []int{0, 1} {
		if !s.InPenalty(core, 1.0+50e-6) {
			t.Errorf("core %d should be in 100 µs penalty", core)
		}
		if s.InPenalty(core, 1.0+150e-6) {
			t.Errorf("core %d penalty should have expired", core)
		}
	}
	// Unmoved cores pay nothing.
	if s.InPenalty(2, 1.0+50e-6) || s.InPenalty(3, 1.0+50e-6) {
		t.Error("unmoved core in penalty")
	}
}

func TestCountersIntensity(t *testing.T) {
	c := Counters{AdjCycles: 1000, IntRFAccess: 400, FPRFAccess: 100}
	if got := c.IntIntensity(); got != 0.4 {
		t.Errorf("IntIntensity = %v", got)
	}
	if got := c.FPIntensity(); got != 0.1 {
		t.Errorf("FPIntensity = %v", got)
	}
	var zero Counters
	if zero.IntIntensity() != 0 || zero.FPIntensity() != 0 {
		t.Error("zero counters should yield zero intensity")
	}
}

func TestAccountAccumulatesLifetime(t *testing.T) {
	s := fourProc()
	p := s.Process(0)
	p.Account(1e-3, Counters{AdjCycles: 100, Instructions: 150, IntRFAccess: 80, FPRFAccess: 5})
	p.Account(1e-3, Counters{AdjCycles: 100, Instructions: 130, IntRFAccess: 70, FPRFAccess: 10})
	if p.Lifetime.Instructions != 280 {
		t.Errorf("lifetime instructions = %v", p.Lifetime.Instructions)
	}
	if p.Lifetime.IntRFAccess != 150 {
		t.Errorf("lifetime IRF = %v", p.Lifetime.IntRFAccess)
	}
}

func TestAccountWindowDecays(t *testing.T) {
	s := fourProc()
	p := s.Process(0)
	// Phase 1: heavy integer traffic.
	for i := 0; i < 100; i++ {
		p.Account(1e-3, Counters{AdjCycles: 100, IntRFAccess: 90})
	}
	if ii := p.Window.IntIntensity(); math.Abs(ii-0.9) > 0.01 {
		t.Fatalf("window intensity = %v, want ≈0.9", ii)
	}
	// Phase 2: the program switches to FP; the window must follow well
	// within ~100 ms (window half-life 20 ms) while lifetime lags.
	for i := 0; i < 100; i++ {
		p.Account(1e-3, Counters{AdjCycles: 100, IntRFAccess: 5, FPRFAccess: 85})
	}
	if ii := p.Window.IntIntensity(); ii > 0.15 {
		t.Errorf("window int intensity %v did not track the phase change", ii)
	}
	if fi := p.Window.FPIntensity(); fi < 0.6 {
		t.Errorf("window fp intensity %v did not rise", fi)
	}
	if li := p.Lifetime.IntIntensity(); li < 0.3 {
		t.Errorf("lifetime intensity %v decayed; it should not", li)
	}
}

func TestAssignmentCopyIsolated(t *testing.T) {
	s := fourProc()
	a := s.Assignment()
	a[0] = 3
	if s.ProcessOn(0).ID == 3 {
		t.Error("Assignment returned aliased storage")
	}
}

func TestEpochAndPenaltyOverrides(t *testing.T) {
	s := fourProc()
	s.SetEpoch(1e-3)
	s.SetPenalty(1e-6)
	if s.Epoch() != 1e-3 {
		t.Error("epoch override lost")
	}
	if _, err := s.Apply(0, []int{1, 0, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if s.InPenalty(0, 2e-6) {
		t.Error("penalty override not applied")
	}
	if !s.MayDecide(1.1e-3) {
		t.Error("epoch override not applied")
	}
}

func TestTimesharedSchedulerBasics(t *testing.T) {
	s, err := NewTimeshared([]string{"a", "b", "c", "d", "e", "f"}, 4, 20e-3)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumProcesses() != 6 || s.NumCores() != 4 {
		t.Fatalf("dims %d/%d", s.NumProcesses(), s.NumCores())
	}
	if !s.IsWaiting(4) || !s.IsWaiting(5) {
		t.Error("overflow processes not waiting")
	}
	if s.IsWaiting(0) {
		t.Error("process 0 should be running")
	}
	if s.NeedsRotation(0.001) {
		t.Error("rotation due before a timeslice elapsed... expected after MarkRotation baseline")
	}
	if !s.NeedsRotation(25e-3 + 1e9) {
		t.Error("rotation not due after timeslice with waiters")
	}
}

func TestTimesharedRotationSwapsLongestRunner(t *testing.T) {
	s, err := NewTimeshared([]string{"a", "b", "c", "d", "e"}, 4, 10e-3)
	if err != nil {
		t.Fatal(err)
	}
	// Let procs 0-3 run 30 ms; proc 0 has the longest stint (all equal,
	// the first victim scan picks it deterministically).
	assign := s.RotationAssignment(30e-3)
	found := false
	for _, p := range assign {
		if p == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("waiting process not scheduled: %v", assign)
	}
	if _, err := s.Apply(30e-3, assign); err != nil {
		t.Fatal(err)
	}
	s.MarkRotation(30e-3)
	// Exactly one process must now be waiting, and it accumulated runtime.
	waiting := 0
	for p := 0; p < s.NumProcesses(); p++ {
		if s.IsWaiting(p) {
			waiting++
			if s.cumRun[p] <= 0 {
				t.Errorf("displaced process %d has no accumulated runtime", p)
			}
		}
	}
	if waiting != 1 {
		t.Errorf("waiting = %d, want 1", waiting)
	}
	// The next rotation must bring the displaced process back (FIFO).
	next := s.RotationAssignment(60e-3)
	if _, err := s.Apply(60e-3, next); err != nil {
		t.Fatal(err)
	}
	// After two rotations everyone has run at some point.
	for p := 0; p < s.NumProcesses(); p++ {
		if s.IsWaiting(p) && s.cumRun[p] == 0 {
			t.Errorf("process %d never ran after two rotations", p)
		}
	}
}

func TestTimesharedRejectsBadConfig(t *testing.T) {
	if _, err := NewTimeshared([]string{"a"}, 2, 0); err == nil {
		t.Error("fewer procs than cores accepted")
	}
	if _, err := NewTimeshared([]string{"a", "b"}, 0, 0); err == nil {
		t.Error("zero cores accepted")
	}
}
