// Package osched models the operating-system half of the paper's
// hardware/software collaboration (§2.5, §6): a process table, the
// thread-to-core assignment, timer-interrupt-paced migration epochs
// (no more than once every 10 ms, "the typical timer interrupt setting
// for a Linux kernel"), the 100 µs per-core migration penalty, and the
// per-thread performance-counter accounting that counter-based
// migration consumes (cycle counts, register-file accesses, and
// instructions executed, §6.1).
package osched

import (
	"fmt"
	"math"
)

// Default OS timing parameters from the paper.
const (
	// DefaultMigrationEpoch is the minimum spacing between migration
	// decisions (10 ms).
	DefaultMigrationEpoch = 10e-3
	// DefaultMigrationPenalty is the per-core cost of a migration
	// (100 µs), during which no useful work retires (Table 3).
	DefaultMigrationPenalty = 100e-6
)

// Counters is the per-process performance-counter state the OS
// maintains: "cycle counts, the number of integer register file
// accesses, the number of floating point register accesses, and
// instructions executed" (§6.1).
type Counters struct {
	AdjCycles    float64 // frequency-adjusted cycles accumulated
	Instructions float64
	IntRFAccess  float64
	FPRFAccess   float64
}

// IntIntensity returns integer register file accesses per adjusted
// cycle — the resource-intensity proxy of §6.1.
func (c Counters) IntIntensity() float64 {
	if c.AdjCycles == 0 { //mtlint:allow floatcmp division guard on exactly unaccounted cores
		return 0
	}
	return c.IntRFAccess / c.AdjCycles
}

// FPIntensity returns FP register file accesses per adjusted cycle.
func (c Counters) FPIntensity() float64 {
	if c.AdjCycles == 0 { //mtlint:allow floatcmp division guard on exactly unaccounted cores
		return 0
	}
	return c.FPRFAccess / c.AdjCycles
}

// Process is one schedulable thread.
type Process struct {
	ID        int
	Benchmark string

	// Counters accumulate for the lifetime of the process; the OS also
	// keeps a decaying window so stale phases do not dominate decisions.
	Lifetime Counters
	Window   Counters

	// WindowDecay in [0,1) is applied to the window at each account
	// step scaled by elapsed time; see Account.
	windowHalflife float64
}

// Account records counter deltas for an execution slice of wall-clock
// length dt seconds. The window decays with the configured half-life so
// intensity estimates track the current program phase.
func (p *Process) Account(dt float64, d Counters) {
	p.Lifetime.AdjCycles += d.AdjCycles
	p.Lifetime.Instructions += d.Instructions
	p.Lifetime.IntRFAccess += d.IntRFAccess
	p.Lifetime.FPRFAccess += d.FPRFAccess

	if p.windowHalflife > 0 {
		decay := halflifeDecay(dt, p.windowHalflife)
		p.Window.AdjCycles *= decay
		p.Window.Instructions *= decay
		p.Window.IntRFAccess *= decay
		p.Window.FPRFAccess *= decay
	}
	p.Window.AdjCycles += d.AdjCycles
	p.Window.Instructions += d.Instructions
	p.Window.IntRFAccess += d.IntRFAccess
	p.Window.FPRFAccess += d.FPRFAccess
}

func halflifeDecay(dt, halflife float64) float64 {
	return math.Exp2(-dt / halflife)
}

// Scheduler owns the process table and thread↔core assignment. It
// supports both the paper's one-process-per-core configuration
// (NewScheduler) and time-shared multiprogramming with more processes
// than cores (NewTimeshared).
type Scheduler struct {
	procs  []*Process
	onCore []int // process index running on core i
	coreOf []int // core index running process p, or Waiting

	epoch   float64 // min seconds between migration decisions
	penalty float64 // per-core migration penalty, seconds

	lastDecision float64   // time of last migration decision
	busyUntil    []float64 // per-core: end of migration penalty window
	migrations   int

	// Time-sharing state (NewTimeshared).
	nCores       int
	timeslice    float64
	lastRotation float64
	waitingSince []float64
	stintStart   []float64
	cumRun       []float64
	waitQueue    []int
}

// NewScheduler creates a scheduler with process i initially on core i
// (one process per core, as in the paper's four-program workloads).
func NewScheduler(benchmarks []string) *Scheduler {
	s := &Scheduler{
		epoch:        DefaultMigrationEpoch,
		penalty:      DefaultMigrationPenalty,
		lastDecision: -1e9,
	}
	for i, b := range benchmarks {
		s.procs = append(s.procs, &Process{ID: i, Benchmark: b, windowHalflife: 20e-3})
		s.onCore = append(s.onCore, i)
		s.coreOf = append(s.coreOf, i)
	}
	s.nCores = len(benchmarks)
	s.lastRotation = -1e9
	s.waitingSince = make([]float64, len(benchmarks))
	s.stintStart = make([]float64, len(benchmarks))
	s.cumRun = make([]float64, len(benchmarks))
	s.busyUntil = make([]float64, len(benchmarks))
	return s
}

// SetEpoch overrides the migration epoch (for ablation studies).
func (s *Scheduler) SetEpoch(seconds float64) { s.epoch = seconds }

// SetPenalty overrides the migration penalty.
func (s *Scheduler) SetPenalty(seconds float64) { s.penalty = seconds }

// Epoch returns the configured migration epoch.
func (s *Scheduler) Epoch() float64 { return s.epoch }

// NumCores returns the number of cores managed.
func (s *Scheduler) NumCores() int { return len(s.onCore) }

// ProcessOn returns the process currently assigned to core.
func (s *Scheduler) ProcessOn(core int) *Process { return s.procs[s.onCore[core]] }

// CoreOf returns the core currently running process id p.
func (s *Scheduler) CoreOf(p int) int { return s.coreOf[p] }

// Process returns process id p.
func (s *Scheduler) Process(p int) *Process { return s.procs[p] }

// Processes returns the process table (shared storage).
func (s *Scheduler) Processes() []*Process { return s.procs }

// Assignment returns a copy of the current process→core placement
// indexed by core.
func (s *Scheduler) Assignment() []int {
	return append([]int(nil), s.onCore...)
}

// MayDecide reports whether a migration decision is permitted at the
// given time: at most one per epoch ("if this happens more often than
// 10 milliseconds, extra requests are simply ignored", §6.1).
func (s *Scheduler) MayDecide(now float64) bool {
	return now-s.lastDecision >= s.epoch
}

// Apply enacts a new assignment (process index per core) at the given
// time. Cores whose process changed pay the migration penalty. Returns
// the number of cores that actually changed. The call counts as a
// decision even when nothing moves.
func (s *Scheduler) Apply(now float64, assign []int) (moved int, err error) {
	if len(assign) != len(s.onCore) {
		return 0, fmt.Errorf("osched: assignment length %d, want %d", len(assign), len(s.onCore))
	}
	seen := make([]bool, len(s.procs))
	for _, p := range assign {
		if p < 0 || p >= len(s.procs) {
			return 0, fmt.Errorf("osched: assignment references process %d", p)
		}
		if seen[p] {
			return 0, fmt.Errorf("osched: process %d assigned to two cores", p)
		}
		seen[p] = true
	}
	s.lastDecision = now
	for core, p := range assign {
		if s.onCore[core] == p {
			continue
		}
		moved++
		s.onCore[core] = p
		s.coreOf[p] = core
		s.busyUntil[core] = now + s.penalty
	}
	if moved > 0 {
		s.migrations++
	}
	if len(s.procs) > len(s.onCore) {
		s.applyTimeshared(now, assign)
	}
	return moved, nil
}

// InPenalty reports whether the core is still flushing/restoring
// context after a migration at the given time.
func (s *Scheduler) InPenalty(core int, now float64) bool {
	return now < s.busyUntil[core]
}

// Migrations returns the number of Apply calls that moved at least one
// process.
func (s *Scheduler) Migrations() int { return s.migrations }
