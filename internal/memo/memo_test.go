package memo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLoadOnEmptyMap(t *testing.T) {
	var m Map[string, int]
	if v, ok := m.Load("missing"); ok || v != 0 {
		t.Fatalf("Load on empty map = (%d, %v), want (0, false)", v, ok)
	}
	if n := m.Len(); n != 0 {
		t.Fatalf("Len on empty map = %d", n)
	}
}

func TestLoadOrStoreBuildsOnce(t *testing.T) {
	var m Map[int, string]
	var builds atomic.Int64
	build := func() (string, error) {
		builds.Add(1)
		return "built", nil
	}
	for i := 0; i < 5; i++ {
		v, err := m.LoadOrStore(42, build)
		if err != nil {
			t.Fatal(err)
		}
		if v != "built" {
			t.Fatalf("got %q", v)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
	if n := m.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestLoadOrStoreErrorDoesNotPublish(t *testing.T) {
	var m Map[int, int]
	boom := errors.New("boom")
	if _, err := m.LoadOrStore(1, func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if _, ok := m.Load(1); ok {
		t.Fatal("failed build was published")
	}
	// The key stays open for retry.
	v, err := m.LoadOrStore(1, func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = (%d, %v)", v, err)
	}
}

func TestStoreReplaces(t *testing.T) {
	var m Map[string, int]
	m.Store("k", 1)
	m.Store("k", 2)
	if v, ok := m.Load("k"); !ok || v != 2 {
		t.Fatalf("Load = (%d, %v), want (2, true)", v, ok)
	}
	if n := m.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

// TestFirstStoreWins pins the sync.Map-compatible race semantics the
// thermal template cache relies on: when several goroutines build the
// same key concurrently, every caller must come away holding the one
// value that won the publish, never its own losing build.
func TestFirstStoreWins(t *testing.T) {
	var m Map[int, *int]
	const goroutines = 16
	start := make(chan struct{})
	got := make([]*int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			v, err := m.LoadOrStore(0, func() (*int, error) {
				p := new(int)
				*p = g
				return p, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			got[g] = v
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d holds a different pointer than goroutine 0", g)
		}
	}
}

// TestConcurrentMixedUse hammers readers and writers over disjoint and
// shared keys; run under -race this is the memory-model check for the
// copy-on-write publish.
func TestConcurrentMixedUse(t *testing.T) {
	var m Map[int, int]
	const keys = 32
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (i + w) % keys
				v, err := m.LoadOrStore(k, func() (int, error) { return k * k, nil })
				if err != nil {
					t.Error(err)
					return
				}
				if v != k*k {
					t.Errorf("key %d = %d, want %d", k, v, k*k)
					return
				}
				if v, ok := m.Load(k); !ok || v != k*k {
					t.Errorf("Load(%d) after LoadOrStore = (%d, %v)", k, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := m.Len(); n != keys {
		t.Fatalf("Len = %d, want %d", n, keys)
	}
}

// TestRacingBuildersDiscardLosers forces the build-discard path: a
// barrier inside the builder guarantees every goroutine really builds
// (no early Load hit), so exactly one build may win the publish and
// every loser must throw its own value away and return the winner's.
func TestRacingBuildersDiscardLosers(t *testing.T) {
	var m Map[string, *int]
	const racers = 8
	var builds atomic.Int64
	entered := make(chan struct{}, racers)
	barrier := make(chan struct{})
	got := make([]*int, racers)
	var wg sync.WaitGroup
	for g := 0; g < racers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := m.LoadOrStore("k", func() (*int, error) {
				builds.Add(1)
				entered <- struct{}{}
				<-barrier // hold every racer inside its build
				p := new(int)
				*p = g
				return p, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			got[g] = v
		}(g)
	}
	// Wait until every racer is committed to building, then release.
	for g := 0; g < racers; g++ {
		<-entered
	}
	close(barrier)
	wg.Wait()
	if n := builds.Load(); n != racers {
		t.Fatalf("%d builds ran, want %d concurrent ones", n, racers)
	}
	for g := 1; g < racers; g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d holds a losing build, not the published winner", g)
		}
	}
	if v, ok := m.Load("k"); !ok || v != got[0] {
		t.Fatal("published value differs from what the racers returned")
	}
	if n := m.Len(); n != 1 {
		t.Fatalf("Len = %d after %d racing builds", n, racers)
	}
}

// TestStoreDuringSlowBuild pins the other first-store race: a direct
// Store that lands while a LoadOrStore build is still running must win
// — the slow builder finds the key published when it reaches the lock
// and returns the stored value, discarding its own.
func TestStoreDuringSlowBuild(t *testing.T) {
	var m Map[string, int]
	building := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	var got int
	go func() {
		defer close(done)
		v, err := m.LoadOrStore("k", func() (int, error) {
			close(building)
			<-release
			return 1, nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		got = v
	}()
	<-building
	m.Store("k", 2) // publishes first, while the build is in flight
	close(release)
	<-done
	if got != 2 {
		t.Fatalf("slow builder returned %d, want the already-published 2", got)
	}
	if v, _ := m.Load("k"); v != 2 {
		t.Fatalf("map holds %d, want the first-published 2", v)
	}
}

func BenchmarkLoadHit(b *testing.B) {
	var m Map[string, int]
	for i := 0; i < 64; i++ {
		m.Store(fmt.Sprintf("key-%d", i), i)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := m.Load("key-17"); !ok {
				b.Fatal("miss")
			}
		}
	})
}
