package memo

import (
	"sync"
	"sync/atomic"
)

// LRU is a bounded, approximately least-recently-used cache built on
// the same copy-on-write discipline as Map: lookups are one atomic
// snapshot load plus a plain map read, and never take a lock. Recency
// is tracked per entry with an atomic logical clock bumped on every
// hit, so a read touches only its own entry — the published map is
// never written after publication. Inserts copy the map under a mutex
// and evict the stalest entries while the cache exceeds its bound;
// with the read-mostly result caches this serves (a handful of inserts
// per miss, millions of probe hits) the copies are noise.
//
// Unlike Map, an LRU is sized at construction and keeps hit / miss /
// eviction counters: it fronts content-addressed result stores whose
// working set is open-ended (every distinct request spec is a new
// key), where Map's grow-only snapshot would leak without bound.
//
// Eviction order depends on observed access order and is therefore not
// deterministic under concurrency — which is exactly why an LRU may
// only ever cache values that are pure functions of their key: a probe
// that misses recomputes the same bytes the evicted entry held, so
// cache state is invisible in results and shows up only in latency.
type LRU[K comparable, V any] struct {
	cap   int
	clock atomic.Int64
	//mtlint:guardedby mu writes
	snap atomic.Pointer[map[K]*lruEntry[V]]
	mu   sync.Mutex // serializes writers; readers never take it

	hits, misses, evictions atomic.Int64
}

// lruEntry pairs a cached value with its last-touch tick. Entries are
// shared by pointer across map snapshots, so a hit's touch update is
// visible to the evictor without republishing anything.
type lruEntry[V any] struct {
	v     V
	touch atomic.Int64
}

// NewLRU returns a cache bounded to at most capacity entries.
// capacity <= 0 disables the cache: every Get misses and Put is a
// no-op (the shape the serve layer uses to measure cold paths).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	return &LRU[K, V]{cap: capacity}
}

// Get returns the value cached under k and bumps its recency. The
// miss/hit counters are updated either way.
//
//mtlint:zeroalloc
func (c *LRU[K, V]) Get(k K) (V, bool) {
	if p := c.snap.Load(); p != nil {
		if e, ok := (*p)[k]; ok {
			e.touch.Store(c.clock.Add(1))
			c.hits.Add(1)
			return e.v, true
		}
	}
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Put publishes v under k, replacing any existing entry, and evicts
// the stalest entries while the cache is over capacity. A disabled
// cache (capacity <= 0) ignores the call.
func (c *LRU[K, V]) Put(k K, v V) {
	if c.cap <= 0 {
		return
	}
	e := &lruEntry[V]{v: v}
	e.touch.Store(c.clock.Add(1))
	c.mu.Lock()
	defer c.mu.Unlock()
	var next map[K]*lruEntry[V]
	if p := c.snap.Load(); p != nil {
		next = make(map[K]*lruEntry[V], len(*p)+1)
		//mtlint:allow maprange copy-on-write snapshot clone; insertion order of a map copy is invisible to readers
		for key, val := range *p {
			next[key] = val
		}
	} else {
		next = make(map[K]*lruEntry[V], 1)
	}
	next[k] = e
	for len(next) > c.cap {
		var (
			oldest    K
			oldestAge int64
			found     bool
		)
		//mtlint:allow maprange min-scan over touch ticks; the selected minimum is order-insensitive (ties broken arbitrarily among equally stale entries, which eviction tolerates by contract)
		for key, val := range next {
			age := val.touch.Load()
			if !found || age < oldestAge {
				oldest, oldestAge, found = key, age, true
			}
		}
		delete(next, oldest)
		c.evictions.Add(1)
	}
	c.snap.Store(&next)
}

// Len returns the number of cached entries in the current snapshot.
func (c *LRU[K, V]) Len() int {
	if p := c.snap.Load(); p != nil {
		return len(*p)
	}
	return 0
}

// Flush empties the cache and reports how many entries it dropped.
// Counters are preserved; only entries drop.
func (c *LRU[K, V]) Flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	if p := c.snap.Load(); p != nil {
		n = len(*p)
	}
	empty := map[K]*lruEntry[V]{}
	c.snap.Store(&empty)
	return n
}

// LRUStats is a point-in-time counter snapshot.
type LRUStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats returns the current counter values.
func (c *LRU[K, V]) Stats() LRUStats {
	return LRUStats{
		Entries:   c.Len(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}
