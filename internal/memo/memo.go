// Package memo provides a copy-on-write memoization map for the
// read-mostly caches on the sweep's hot construction paths: thermal
// templates, exact-ZOH discretizations, recorded traces, and warmup
// states. All of them share one access pattern — a brief build phase
// writes a handful of entries, then millions of lookups from every
// worker read them — which is exactly where copy-on-write wins: a
// lookup is one atomic pointer load plus a plain map read on an
// immutable snapshot. No mutex, no sync.Map dirty/read promotion
// bookkeeping, no interface boxing of hot values, and nothing for
// concurrent readers to contend on, because the published map is never
// written again.
//
// Writes pay for that: each store copies the map under a mutex. With
// caches that grow to tens of entries over a whole sweep the copies are
// noise; do not use this type for write-heavy maps.
package memo

import (
	"sync"
	"sync/atomic"
)

// Map is a copy-on-write map from K to V. The zero value is an empty
// map ready for use. All methods are safe for concurrent use.
type Map[K comparable, V any] struct {
	// snap is the published copy-on-write snapshot: lock-free readers
	// Load it, and only publication needs the writer lock.
	//
	//mtlint:guardedby mu writes
	snap atomic.Pointer[map[K]V]
	mu   sync.Mutex // serializes writers; readers never take it
}

// Load returns the value memoized under k, if any.
func (m *Map[K, V]) Load(k K) (V, bool) {
	if p := m.snap.Load(); p != nil {
		v, ok := (*p)[k]
		return v, ok
	}
	var zero V
	return zero, false
}

// LoadOrStore returns the value memoized under k, building and
// publishing it on first use. Racing first callers may build
// concurrently — build must be deterministic or at least yield
// interchangeable values — and exactly one result wins the publish;
// every caller returns the winner. A build error is returned without
// publishing anything, leaving the key open for a later retry.
func (m *Map[K, V]) LoadOrStore(k K, build func() (V, error)) (V, error) {
	if v, ok := m.Load(k); ok {
		return v, nil
	}
	// Build outside the writer lock: builds of distinct keys must not
	// serialize each other (a sweep discretizing several (Template, dt)
	// pairs pays each matrix exponential exactly once, in parallel).
	v, err := build()
	if err != nil {
		var zero V
		return zero, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if p := m.snap.Load(); p != nil {
		if won, ok := (*p)[k]; ok {
			return won, nil // a racing builder published first; discard ours
		}
	}
	m.storeLocked(k, v)
	return v, nil
}

// Store publishes v under k, replacing any existing entry.
func (m *Map[K, V]) Store(k K, v V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.storeLocked(k, v)
}

// storeLocked copies the current snapshot, inserts, and publishes.
// Callers hold mu.
//
//mtlint:locked mu
func (m *Map[K, V]) storeLocked(k K, v V) {
	var next map[K]V
	if p := m.snap.Load(); p != nil {
		next = make(map[K]V, len(*p)+1)
		//mtlint:allow maprange copy-on-write snapshot clone; insertion order of a map copy is invisible to readers
		for key, val := range *p {
			next[key] = val
		}
	} else {
		next = make(map[K]V, 1)
	}
	next[k] = v
	m.snap.Store(&next)
}

// Len returns the number of memoized entries in the current snapshot.
func (m *Map[K, V]) Len() int {
	if p := m.snap.Load(); p != nil {
		return len(*p)
	}
	return 0
}
