package memo

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUGetPut(t *testing.T) {
	c := NewLRU[string, int](4)
	if v, ok := c.Get("a"); ok || v != 0 {
		t.Fatalf("Get on empty = (%d, %v)", v, ok)
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get after Put = (%d, %v)", v, ok)
	}
	c.Put("a", 2) // replace
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("replace: got %d", v)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Evictions != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEvictsStalest(t *testing.T) {
	c := NewLRU[int, int](3)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Put(3, 30)
	// Touch 1 so 2 becomes the stalest entry.
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 missing before eviction")
	}
	c.Put(4, 40)
	if _, ok := c.Get(2); ok {
		t.Fatal("stalest entry 2 survived eviction")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %d evicted, want only 2 gone", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := NewLRU[string, string](0)
	c.Put("k", "v")
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("Len = %d", n)
	}
}

func TestLRUFlush(t *testing.T) {
	c := NewLRU[int, int](8)
	for i := 0; i < 5; i++ {
		c.Put(i, i)
	}
	c.Flush()
	if n := c.Len(); n != 0 {
		t.Fatalf("Len after flush = %d", n)
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("entry survived flush")
	}
}

// TestLRUConcurrent hammers a small cache from many goroutines so the
// race detector can see the snapshot-load / entry-touch / copy-on-write
// interleavings. Every value is a pure function of its key, so any hit
// must return the key's own value regardless of eviction pressure.
func TestLRUConcurrent(t *testing.T) {
	c := NewLRU[int, int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (seed*31 + i) % 64
				if v, ok := c.Get(k); ok && v != k*7 {
					panic(fmt.Sprintf("key %d returned foreign value %d", k, v))
				}
				c.Put(k, k*7)
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 16 {
		t.Fatalf("cache exceeded its bound: %d entries", n)
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatalf("expected evictions under pressure, stats = %+v", s)
	}
}
