// Package sensor models on-chip thermal sensors. Every DTM policy in
// the paper relies on sensors "to make proper decisions at the correct
// times" (§2.5): stop-go trips on them, the PI controllers consume the
// hottest watched sensor (§5.2), and sensor-based migration tracks their
// trends over time. Sensors read the thermal model's block temperatures
// with optional quantization, offset, and deterministic noise — the
// Banias ACPI diode of Table 1, for instance, quantizes to whole
// degrees Celsius.
//
//mtlint:units
package sensor

import (
	"fmt"
	"math"

	"multitherm/internal/floorplan"
	"multitherm/internal/units"
)

// Sensor watches a single floorplan block.
type Sensor struct {
	Name  string
	Block int // die-block index in the floorplan / thermal model
	Core  int // owning core, or floorplan.SharedCore

	// Quantization rounds readings to the nearest multiple (°C).
	// Zero means a continuous reading.
	Quantization units.Celsius
	// NoiseAmplitude adds deterministic pseudo-random error in
	// [−NoiseAmplitude, +NoiseAmplitude] °C, varying per reading index.
	NoiseAmplitude units.Celsius
	// Offset is a fixed calibration error in °C.
	Offset units.Celsius
	// Seed decorrelates noise across sensors.
	Seed uint64
}

// Read returns the sensor value for the given block temperatures at
// reading index n (deterministic in n for reproducibility).
func (s *Sensor) Read(temps units.TempVec, n int64) units.Celsius {
	v := temps[s.Block] + float64(s.Offset)
	if s.NoiseAmplitude > 0 {
		v += float64(s.NoiseAmplitude) * noise(s.Seed, uint64(n))
	}
	if q := float64(s.Quantization); q > 0 {
		v = math.Round(v/q) * q
	}
	return units.Celsius(v)
}

// noise maps (seed, n) deterministically to [−1, 1].
func noise(seed, n uint64) float64 {
	x := seed ^ 0xD1B54A32D192ED03 ^ (n * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x)/float64(math.MaxUint64)*2 - 1
}

// Bank is an ordered set of sensors, typically one core's watched
// hotspots or the whole chip's sensor complement.
type Bank struct {
	Sensors []Sensor
}

// Hottest returns the maximum reading across the bank and the index
// (within the bank) of the sensor that produced it. The PI controller
// "typically selects the hottest of the input temperatures" (§4.1).
func (b *Bank) Hottest(temps units.TempVec, n int64) (units.Celsius, int) {
	if len(b.Sensors) == 0 {
		panic("sensor: Hottest on empty bank")
	}
	max, idx := units.Celsius(math.Inf(-1)), -1
	for i := range b.Sensors {
		if v := b.Sensors[i].Read(temps, n); v > max {
			max, idx = v, i
		}
	}
	return max, idx
}

// ReadAll fills dst with every sensor's reading.
func (b *Bank) ReadAll(dst units.TempVec, temps units.TempVec, n int64) units.TempVec {
	if dst == nil {
		dst = units.MakeTempVec(len(b.Sensors))
	}
	for i := range b.Sensors {
		dst.Set(i, b.Sensors[i].Read(temps, n))
	}
	return dst
}

// ForCore returns the sub-bank of sensors owned by the given core.
// It allocates a fresh bank; per-tick readers should use HottestForCore
// or filter Sensors by Core in place instead.
func (b *Bank) ForCore(core int) *Bank {
	out := &Bank{}
	for _, s := range b.Sensors {
		if s.Core == core {
			out.Sensors = append(out.Sensors, s)
		}
	}
	return out
}

// HottestForCore returns the maximum reading across the sensors owned
// by the given core and the index (within this bank) of the sensor that
// produced it. Readings and scan order match ForCore(core).Hottest
// exactly — sensors keep their declaration order either way, and the
// first maximum wins — but nothing is allocated, so throttlers can call
// it every control tick. Panics if the core owns no sensors, like
// Hottest on an empty bank.
//
//mtlint:zeroalloc
func (b *Bank) HottestForCore(core int, temps units.TempVec, n int64) (units.Celsius, int) {
	max, idx := units.Celsius(math.Inf(-1)), -1
	for i := range b.Sensors {
		if b.Sensors[i].Core != core {
			continue
		}
		if v := b.Sensors[i].Read(temps, n); v > max {
			max, idx = v, i
		}
	}
	if idx < 0 {
		b.noSensorsForCore(core)
	}
	return max, idx
}

// noSensorsForCore lives outside HottestForCore so the formatting
// allocation stays off the hot function's escape analysis.
//
//go:noinline
func (b *Bank) noSensorsForCore(core int) {
	panic(fmt.Sprintf("sensor: HottestForCore on core %d with no sensors (bank size %d)",
		core, len(b.Sensors)))
}

// CoreHotspots builds the paper's per-core sensor complement: one
// sensor at each register-file unit ("thermal sensors at the two
// register file units on each core sense the hotspot temperatures",
// §5.1). Quantization and noise default to an idealized fast sensor;
// callers may adjust fields afterwards.
func CoreHotspots(fp *floorplan.Floorplan) (*Bank, error) {
	b := &Bank{}
	n := fp.NumCores()
	for core := 0; core < n; core++ {
		irf := fp.FindCoreBlock(core, floorplan.KindIntRegFile)
		fprf := fp.FindCoreBlock(core, floorplan.KindFPRegFile)
		if irf < 0 || fprf < 0 {
			return nil, fmt.Errorf("sensor: core %d lacks register-file blocks", core)
		}
		b.Sensors = append(b.Sensors,
			Sensor{
				Name: fmt.Sprintf("c%d_irf", core), Block: irf, Core: core,
				Quantization: 0.1, Seed: uint64(1000 + core*2),
			},
			Sensor{
				Name: fmt.Sprintf("c%d_fprf", core), Block: fprf, Core: core,
				Quantization: 0.1, Seed: uint64(1001 + core*2),
			},
		)
	}
	return b, nil
}

// ACPIDiode builds the single edge-of-die diode of the paper's Banias
// measurements: 1 °C quantization ("all measurements are rounded to the
// nearest degree Celsius").
func ACPIDiode(fp *floorplan.Floorplan) (*Bank, error) {
	idx := fp.BlockIndex("diode_site")
	if idx < 0 {
		return nil, fmt.Errorf("sensor: floorplan %s has no diode_site block", fp.Name)
	}
	return &Bank{Sensors: []Sensor{{
		Name: "acpi_diode", Block: idx, Core: 0, Quantization: 1.0, Seed: 4242,
	}}}, nil
}
