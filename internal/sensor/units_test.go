package sensor

import (
	"math"
	"testing"

	"multitherm/internal/units"
)

// TestNoisySensorCelsiusRoundTrip checks the dimensional contract the
// unitsafety analyzer cannot see at runtime: a noisy, offset, quantized
// sensor takes a units.TempVec in and hands units.Celsius out, and the
// typed value survives a round trip back into a TempVec bit-exactly.
func TestNoisySensorCelsiusRoundTrip(t *testing.T) {
	temps := units.TempVec{71.3, 84.9, 62.0}
	s := Sensor{
		Name:           "irf",
		Block:          1,
		Quantization:   0.5,
		NoiseAmplitude: 2,
		Offset:         -1,
		Seed:           7,
	}

	// The reading is a units.Celsius by type — the compiler enforces the
	// gauge — and numerically stays within offset + noise + half a
	// quantization step of the true block temperature.
	var got units.Celsius = s.Read(temps, 3)
	truth := units.Celsius(temps.At(1))
	bound := float64(s.NoiseAmplitude) + math.Abs(float64(s.Offset)) + float64(s.Quantization)/2
	if diff := math.Abs(float64(got - truth)); diff > bound {
		t.Fatalf("reading %v strays %.3f °C from truth %v, bound %.3f", got, diff, truth, bound)
	}
	if q := float64(s.Quantization); math.Abs(math.Mod(float64(got), q)) > 1e-9 {
		t.Fatalf("reading %v not on the %.2f °C quantization grid", got, q)
	}

	// Round trip: writing the Celsius reading into a TempVec and reading
	// it back is bit-exact — the typed views share float64 storage.
	rt := units.MakeTempVec(1)
	rt.Set(0, got)
	if back := rt.At(0); back != got {
		t.Fatalf("round trip changed the reading: wrote %v, read %v", got, back)
	}
}

// TestBankReadAllStaysTyped checks the whole-bank path: ReadAll fills a
// units.TempVec whose elements are the same typed Celsius readings the
// scalar path produces — no gauge is dropped between the two APIs.
func TestBankReadAllStaysTyped(t *testing.T) {
	temps := units.TempVec{70, 80, 90}
	b := Bank{Sensors: []Sensor{
		{Name: "a", Block: 0, NoiseAmplitude: 1.5, Seed: 1},
		{Name: "b", Block: 2, NoiseAmplitude: 1.5, Seed: 2},
	}}

	var out units.TempVec = b.ReadAll(nil, temps, 11)
	if out.Len() != len(b.Sensors) {
		t.Fatalf("ReadAll produced %d readings for %d sensors", out.Len(), len(b.Sensors))
	}
	for i := range b.Sensors {
		want := b.Sensors[i].Read(temps, 11)
		if got := out.At(i); got != want {
			t.Errorf("sensor %d: ReadAll %v != scalar Read %v", i, got, want)
		}
	}
}
