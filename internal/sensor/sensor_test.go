package sensor

import (
	"math"
	"testing"

	"multitherm/internal/floorplan"
	"multitherm/internal/units"
)

func TestReadIdeal(t *testing.T) {
	s := Sensor{Block: 2}
	temps := units.TempVec{10, 20, 33.37}
	if got := s.Read(temps, 0); got != 33.37 {
		t.Errorf("Read = %v, want exact temperature", got)
	}
}

func TestReadQuantization(t *testing.T) {
	s := Sensor{Block: 0, Quantization: 1.0}
	if got := s.Read(units.TempVec{68.4}, 0); got != 68 {
		t.Errorf("quantized read = %v, want 68", got)
	}
	if got := s.Read(units.TempVec{68.6}, 0); got != 69 {
		t.Errorf("quantized read = %v, want 69", got)
	}
}

func TestReadOffset(t *testing.T) {
	s := Sensor{Block: 0, Offset: -1.5}
	if got := s.Read(units.TempVec{70}, 0); got != 68.5 {
		t.Errorf("offset read = %v, want 68.5", got)
	}
}

func TestReadNoiseBoundedAndDeterministic(t *testing.T) {
	s := Sensor{Block: 0, NoiseAmplitude: 0.5, Seed: 7}
	temps := units.TempVec{80}
	for n := int64(0); n < 500; n++ {
		v := s.Read(temps, n)
		if math.Abs(float64(v)-80) > 0.5 {
			t.Fatalf("noise exceeded amplitude: %v", v)
		}
		if v != s.Read(temps, n) {
			t.Fatal("reading not deterministic")
		}
	}
	// Noise must actually vary.
	if s.Read(temps, 1) == s.Read(temps, 2) && s.Read(temps, 2) == s.Read(temps, 3) {
		t.Error("noise appears constant")
	}
}

func TestBankHottest(t *testing.T) {
	b := Bank{Sensors: []Sensor{{Block: 0}, {Block: 1}, {Block: 2}}}
	temps := units.TempVec{50, 90, 70}
	v, idx := b.Hottest(temps, 0)
	if v != 90 || idx != 1 {
		t.Errorf("Hottest = (%v,%d), want (90,1)", v, idx)
	}
}

// TestHottestForCoreMatchesForCore pins the equivalence the throttlers
// rely on after dropping the allocating ForCore sub-bank from their
// per-tick path: for every core, HottestForCore must report the same
// reading ForCore(...).Hottest does, and it must not allocate.
func TestHottestForCoreMatchesForCore(t *testing.T) {
	b := Bank{Sensors: []Sensor{
		{Block: 0, Core: 0, NoiseAmplitude: 0.5, Seed: 1},
		{Block: 1, Core: 1, NoiseAmplitude: 0.5, Seed: 2},
		{Block: 2, Core: 0, NoiseAmplitude: 0.5, Seed: 3},
		{Block: 3, Core: 1, NoiseAmplitude: 0.5, Seed: 4},
		{Block: 4, Core: 0, NoiseAmplitude: 0.5, Seed: 5},
	}}
	temps := units.TempVec{70, 71, 70, 69, 70} // ties within 0.5 °C of noise
	for core := 0; core <= 1; core++ {
		for n := int64(0); n < 16; n++ {
			want, _ := b.ForCore(core).Hottest(temps, n)
			got, idx := b.HottestForCore(core, temps, n)
			if got != want {
				t.Fatalf("core %d n %d: HottestForCore = %v, ForCore().Hottest = %v",
					core, n, got, want)
			}
			if b.Sensors[idx].Core != core {
				t.Fatalf("core %d: winning sensor %d belongs to core %d",
					core, idx, b.Sensors[idx].Core)
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		b.HottestForCore(0, temps, 7)
	})
	if allocs != 0 {
		t.Errorf("HottestForCore allocates %v times per call", allocs)
	}
}

func TestHottestForCoreUnknownCorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := Bank{Sensors: []Sensor{{Block: 0, Core: 0}}}
	b.HottestForCore(3, units.TempVec{1}, 0)
}

func TestBankHottestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Bank{}).Hottest(units.TempVec{1}, 0)
}

func TestBankReadAll(t *testing.T) {
	b := Bank{Sensors: []Sensor{{Block: 0}, {Block: 2}}}
	got := b.ReadAll(nil, units.TempVec{1, 2, 3}, 0)
	if got[0] != 1 || got[1] != 3 {
		t.Errorf("ReadAll = %v", got)
	}
}

func TestCoreHotspotsCMP4(t *testing.T) {
	fp := floorplan.CMP4()
	b, err := CoreHotspots(fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sensors) != 8 {
		t.Fatalf("sensor count = %d, want 8 (two per core)", len(b.Sensors))
	}
	for core := 0; core < 4; core++ {
		sub := b.ForCore(core)
		if len(sub.Sensors) != 2 {
			t.Errorf("core %d sub-bank has %d sensors", core, len(sub.Sensors))
		}
		kinds := map[floorplan.UnitKind]bool{}
		for _, s := range sub.Sensors {
			kinds[fp.Blocks[s.Block].Kind] = true
			if fp.Blocks[s.Block].Core != core {
				t.Errorf("sensor %s watches a block on core %d", s.Name, fp.Blocks[s.Block].Core)
			}
		}
		if !kinds[floorplan.KindIntRegFile] || !kinds[floorplan.KindFPRegFile] {
			t.Errorf("core %d does not watch both register files", core)
		}
	}
}

func TestCoreHotspotsRequiresRegFiles(t *testing.T) {
	fp := &floorplan.Floorplan{Name: "bare", ChipW: 1e-3, ChipH: 1e-3,
		Blocks: []floorplan.Block{{Name: "a", Core: 0, W: 1e-3, H: 1e-3}}}
	if _, err := CoreHotspots(fp); err == nil {
		t.Error("floorplan without register files accepted")
	}
}

func TestACPIDiode(t *testing.T) {
	fp := floorplan.Banias()
	b, err := ACPIDiode(fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sensors) != 1 {
		t.Fatalf("diode bank size %d", len(b.Sensors))
	}
	if b.Sensors[0].Quantization != 1.0 {
		t.Errorf("ACPI quantization = %v, want 1 °C", b.Sensors[0].Quantization)
	}
	if _, err := ACPIDiode(floorplan.CMP4()); err == nil {
		t.Error("CMP4 has no diode site; expected error")
	}
}
