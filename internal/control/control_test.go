package control

import (
	"math"
	"testing"
	"testing/quick"

	"multitherm/internal/poly"
	"multitherm/internal/units"
)

func TestPaperDiscreteCoefficients(t *testing.T) {
	// §4.2: forward-Euler c2d of G(s) = Kp + Ki/s with the paper's
	// constants must reproduce the published difference equation
	// u[n] = u[n−1] − 0.0107·e[n] + 0.003796·e[n−1].
	d := C2DPI(PaperKp, PaperKi, PaperSamplePeriod, ForwardEuler)
	if math.Abs(d.B0-(-0.0107)) > 1e-9 {
		t.Errorf("B0 = %v, want -0.0107", d.B0)
	}
	if math.Abs(d.B1-0.003796) > 2e-6 {
		t.Errorf("B1 = %v, want 0.003796 (±2e-6)", d.B1)
	}
}

func TestC2DMethodsAgreeAtSmallPeriod(t *testing.T) {
	// All discretization rules converge as T→0.
	const T = 1e-9
	fe := C2DPI(PaperKp, PaperKi, T, ForwardEuler)
	be := C2DPI(PaperKp, PaperKi, T, BackwardEuler)
	tu := C2DPI(PaperKp, PaperKi, T, Tustin)
	if math.Abs(fe.B0-be.B0) > 1e-6 || math.Abs(fe.B0-tu.B0) > 1e-6 {
		t.Errorf("B0 disagree: fe=%v be=%v tu=%v", fe.B0, be.B0, tu.B0)
	}
	if math.Abs(fe.B1-be.B1) > 1e-6 || math.Abs(fe.B1-tu.B1) > 1e-6 {
		t.Errorf("B1 disagree: fe=%v be=%v tu=%v", fe.B1, be.B1, tu.B1)
	}
}

func TestDiscretizeMethodString(t *testing.T) {
	if ForwardEuler.String() != "forward-euler" || Tustin.String() != "tustin" {
		t.Error("method names wrong")
	}
}

func TestPITransferFunction(t *testing.T) {
	g := PI(2, 3) // (2s+3)/s
	if got := g.Num.Eval(1); got != 5 {
		t.Errorf("num(1) = %v, want 5", got)
	}
	poles := g.Poles()
	if len(poles) != 1 || poles[0] != 0 {
		t.Errorf("PI pole = %v, want single pole at origin", poles)
	}
}

func TestClosedLoopStability(t *testing.T) {
	// PI controller on a first-order thermal plant: closed loop is
	// second order and stable for any positive gains — the robustness
	// property the paper leans on ("these constants can deviate
	// significantly").
	plant := FirstOrderPlant(10, 0.005) // 10 °C per unit, 5 ms hotspot
	for _, gains := range [][2]float64{
		{PaperKp, PaperKi},
		{PaperKp * 10, PaperKi * 10},
		{PaperKp / 10, PaperKi / 10},
	} {
		loop := PI(gains[0], gains[1]).Series(plant).Feedback()
		if !loop.IsStable() {
			t.Errorf("closed loop unstable for Kp=%g Ki=%g: poles %v",
				gains[0], gains[1], loop.Poles())
		}
	}
}

func TestClosedLoopStabilityProperty(t *testing.T) {
	// Property: for positive Kp, Ki, gain and τ the PI/first-order loop
	// is always stable (its characteristic polynomial has all-positive
	// coefficients, degree 2).
	f := func(kp, ki, k, tau float64) bool {
		kp = 1e-4 + math.Abs(kp)
		ki = 1e-2 + math.Abs(ki)
		k = 0.1 + math.Abs(k)
		tau = 1e-4 + math.Abs(tau)
		if kp > 1e4 || ki > 1e6 || k > 1e4 || tau > 10 {
			return true // keep magnitudes in a numerically sane band
		}
		return PI(kp, ki).Series(FirstOrderPlant(k, units.Seconds(tau))).Feedback().IsStable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRootLocusMovesPoles(t *testing.T) {
	plant := FirstOrderPlant(10, 0.005)
	open := PI(PaperKp, PaperKi).Series(plant)
	pts := open.RootLocus([]float64{0.1, 1, 10, 100})
	if len(pts) != 4 {
		t.Fatalf("got %d locus points", len(pts))
	}
	for _, pt := range pts {
		for _, p := range pt.Poles {
			if real(p) >= 0 {
				t.Errorf("gain %g: pole %v in right half plane", pt.Gain, p)
			}
		}
	}
}

func TestDiscreteClosedLoopStableZ(t *testing.T) {
	d := C2DPI(PaperKp, PaperKi, PaperSamplePeriod, ForwardEuler)
	// ZOH-discretized hotspot plant: 12 °C per unit scale, 4 ms τ.
	pn, pd := DiscretizePlantZOH(12, 0.004, PaperSamplePeriod)
	if !d.ClosedLoopStableZ(pn, pd) {
		t.Error("paper controller unstable on representative discrete plant")
	}
}

func TestDiscreteInstabilityAtHugeGain(t *testing.T) {
	// Sanity check that the stability predicate can fail: an absurdly
	// hot loop gain must be flagged unstable.
	d := C2DPI(PaperKp*10000, PaperKi*10000, PaperSamplePeriod, ForwardEuler)
	pn, pd := DiscretizePlantZOH(12, 0.004, PaperSamplePeriod)
	if d.ClosedLoopStableZ(pn, pd) {
		t.Error("expected instability at 3000x gains")
	}
}

func TestDCGainAndSettling(t *testing.T) {
	plant := FirstOrderPlant(8, 0.01)
	if g := plant.DCGain(); math.Abs(g-8) > 1e-12 {
		t.Errorf("DC gain = %v, want 8", g)
	}
	if tc := plant.DominantTimeConstant(); math.Abs(float64(tc)-0.01) > 1e-9 {
		t.Errorf("time constant = %v, want 0.01", tc)
	}
	if st := plant.SettlingTime(); math.Abs(float64(st)-0.04) > 1e-9 {
		t.Errorf("settling = %v, want 0.04", st)
	}
	// PI loop has integral action → closed-loop DC gain of 1 (zero
	// steady-state error), the reason the paper prefers PI over P.
	loop := PI(PaperKp, PaperKi).Series(plant).Feedback()
	if g := loop.DCGain(); math.Abs(g-1) > 1e-9 {
		t.Errorf("closed-loop DC gain = %v, want 1", g)
	}
}

func TestUnstablePlantDetected(t *testing.T) {
	unstable := NewTF([]float64{1}, []float64{-1, 1}) // pole at +1
	if unstable.IsStable() {
		t.Error("pole at +1 reported stable")
	}
	if !math.IsInf(float64(unstable.DominantTimeConstant()), 1) {
		t.Error("unstable plant should have infinite time constant")
	}
}

func TestStabilityMargin(t *testing.T) {
	g := NewTF([]float64{1}, []float64{6, 5, 1}) // poles -2, -3
	if m := g.StabilityMargin(); math.Abs(m-2) > 1e-9 {
		t.Errorf("margin = %v, want 2", m)
	}
}

func TestPIRuntimeConvergesToSetpoint(t *testing.T) {
	// Simulate the controller against a first-order hotspot whose
	// equilibrium temperature at full speed far exceeds the setpoint.
	// The loop must settle near the setpoint with no emergency overshoot.
	pi := NewPaperPIRuntime(81.8)
	temp := 45.0
	const (
		tau      = 0.010
		ambient  = 45.0
		hotAtMax = 50.0 // °C rise above ambient at scale 1.0
	)
	dt := float64(PaperSamplePeriod)
	var maxTemp float64
	for i := 0; i < 200000; i++ {
		u := float64(pi.Step(units.Celsius(temp)))
		// Power ~ cubic in scale; first-order settle toward equilibrium.
		eq := ambient + hotAtMax*u*u*u
		temp += (eq - temp) * dt / tau
		if temp > maxTemp {
			maxTemp = temp
		}
	}
	if math.Abs(temp-81.8) > 1.0 {
		t.Errorf("settled at %.2f °C, want ≈81.8", temp)
	}
	if maxTemp > 84.2 {
		t.Errorf("overshoot to %.2f °C exceeded the 84.2 °C emergency threshold", maxTemp)
	}
}

func TestPIRuntimeClipping(t *testing.T) {
	pi := NewPaperPIRuntime(80)
	// Freezing-cold input: output must rail at max, never above.
	for i := 0; i < 100; i++ {
		if u := pi.Step(20); u > 1.0 {
			t.Fatalf("output %v exceeded max", u)
		}
	}
	if pi.Output() != 1.0 {
		t.Errorf("cool core output = %v, want railed at 1.0", pi.Output())
	}
	// Blast furnace: output must rail at min, never below.
	for i := 0; i < 2000; i++ {
		if u := pi.Step(150); u < 0.2 {
			t.Fatalf("output %v under min", u)
		}
	}
	if pi.Output() != 0.2 {
		t.Errorf("hot core output = %v, want railed at 0.2", pi.Output())
	}
}

func TestPIRuntimeAntiWindup(t *testing.T) {
	// After a long saturated-hot period, recovery to full speed must be
	// quick — clipping prevents hidden integral windup (§4.2).
	pi := NewPaperPIRuntime(80)
	for i := 0; i < 50000; i++ {
		pi.Step(120) // 40 °C over target for ~1.4 s
	}
	steps := 0
	for pi.Output() < 1.0 && steps < 5000 {
		pi.Step(60) // now 20 °C below target
		steps++
	}
	// Winding down 0.8 of range at ~0.006904·20 per step ≈ 6 steps; a
	// wound-up integrator would need tens of thousands.
	if steps > 100 {
		t.Errorf("took %d steps to recover from saturation; windup suspected", steps)
	}
}

func TestPIRuntimeMinTransitionDeadband(t *testing.T) {
	law := C2DPI(PaperKp, PaperKi, PaperSamplePeriod, ForwardEuler)
	pi := NewPIRuntime(law, PILimits{Min: 0.2, Max: 1.0, MinTransition: 0.016}, 80)
	// Drive off the max rail, then hold at the setpoint so the internal
	// state goes quiescent.
	pi.Step(90)
	for i := 0; i < 10; i++ {
		pi.Step(80)
	}
	before := pi.Output()
	// A tiny error implies |Δu| far below the deadband → the applied
	// (PLL) output must hold even though the state integrates.
	after := pi.Step(80.01)
	if before != after {
		t.Errorf("deadband did not hold output: %v -> %v", before, after)
	}
	// But a large error must still move the output promptly.
	if moved := pi.Step(110); moved == after {
		t.Error("large error failed to move output through deadband")
	}
}

func TestPIRuntimeTrendRecording(t *testing.T) {
	pi := NewPaperPIRuntime(80)
	pi.Step(70)
	pi.Step(71)
	pi.Step(72)
	tr := pi.Trend()
	if tr.Samples != 3 {
		t.Fatalf("samples = %d, want 3", tr.Samples)
	}
	// Temperature rose 1 °C per sample period for the last two samples.
	period := float64(PaperSamplePeriod)
	wantSlope := (0 + 1/period + 1/period) / 3
	if math.Abs(tr.AvgSlope-wantSlope) > 1e-6*wantSlope {
		t.Errorf("avg slope = %v, want %v", tr.AvgSlope, wantSlope)
	}
	pi.ResetTrend()
	if pi.Trend().Samples != 0 {
		t.Error("ResetTrend did not clear window")
	}
}

func TestPIRuntimeReset(t *testing.T) {
	pi := NewPaperPIRuntime(80)
	for i := 0; i < 1000; i++ {
		pi.Step(100)
	}
	if pi.Output() >= 1.0 {
		t.Fatal("setup failed: output should be depressed")
	}
	pi.Reset()
	if pi.Output() != 1.0 {
		t.Errorf("Reset output = %v, want 1.0", pi.Output())
	}
}

func TestPlantZOHPole(t *testing.T) {
	_, den := DiscretizePlantZOH(5, 0.004, PaperSamplePeriod)
	roots := den.Roots()
	want := math.Exp(float64(-PaperSamplePeriod / 0.004))
	if len(roots) != 1 || math.Abs(real(roots[0])-want) > 1e-12 {
		t.Errorf("ZOH pole = %v, want %v", roots, want)
	}
}

func TestZTransferFunction(t *testing.T) {
	d := C2DPI(PaperKp, PaperKi, PaperSamplePeriod, ForwardEuler)
	num, den := d.ZTransferFunction()
	if den.Degree() != 1 || den.Eval(1) != 0 {
		t.Errorf("denominator %v should be (z-1)", den)
	}
	if num.Degree() != 1 {
		t.Errorf("numerator degree = %d, want 1", num.Degree())
	}
	_ = num.String()
}

func TestNewPIRuntimeBadLimitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted limits")
		}
	}()
	NewPIRuntime(DiscretePI{}, PILimits{Min: 1, Max: 0.2}, 80)
}

var _ = poly.New // keep import used if edits drop direct references
