package control

import (
	"math"

	"multitherm/internal/poly"
	"multitherm/internal/units"
)

// PID returns the three-term controller transfer function
//
//	G(s) = Kp + Ki/s + Kd·s/(τf·s + 1)
//
// with a first-order filter (time constant τf) on the derivative term,
// as any implementable PID requires. The paper considered PID and found
// "the derivative term has little benefit for this type of thermal
// control" (§4.1); this constructor plus CompareThermalControllers make
// that claim testable.
func PID(kp, ki, kd, tauF float64) TF {
	pi := PI(kp, ki)
	if kd == 0 { //mtlint:allow floatcmp exact zero means no derivative term configured
		return pi
	}
	d := TF{Num: poly.New(0, kd), Den: poly.New(1, tauF)}
	return TF{
		Num: pi.Num.Mul(d.Den).Add(d.Num.Mul(pi.Den)),
		Den: pi.Den.Mul(d.Den),
	}
}

// DiscretePID is the difference-equation form of a discretized PID:
//
//	u[n] = u[n−1] + B0·e[n] + B1·e[n−1] + B2·e[n−2]
type DiscretePID struct {
	//mtlint:allow unit B0/B1/B2 are gains in scale per °C, not a units dimension
	B0, B1, B2 float64
	Period     units.Seconds
}

// C2DPID discretizes the PID using backward differences for both the
// integral and the (unfiltered) derivative — the standard "velocity
// form" digital PID. Sign convention matches the thermal loop: positive
// error (too hot) lowers the output.
func C2DPID(kp, ki, kd float64, T units.Seconds) DiscretePID {
	dt := float64(T)
	return DiscretePID{
		B0:     -(kp + ki*dt + kd/dt),
		B1:     kp + 2*kd/dt,
		B2:     -kd / dt,
		Period: T,
	}
}

// PIDRuntime runs a discrete PID with the same clipping rules as the PI
// runtime.
type PIDRuntime struct {
	law      DiscretePID
	limits   PILimits
	setpoint units.Celsius

	u              units.ScaleFactor
	applied        units.ScaleFactor
	prevErr, prev2 float64
	started        bool
}

// NewPIDRuntime builds a clipped PID runtime starting at full output.
func NewPIDRuntime(law DiscretePID, limits PILimits, setpoint units.Celsius) *PIDRuntime {
	return &PIDRuntime{law: law, limits: limits, setpoint: setpoint,
		u: limits.Max, applied: limits.Max}
}

// Output returns the applied actuator value.
func (p *PIDRuntime) Output() units.ScaleFactor { return p.applied }

// Step advances the controller one sample.
func (p *PIDRuntime) Step(measuredTemp units.Celsius) units.ScaleFactor {
	e := float64(measuredTemp - p.setpoint)
	if !p.started {
		p.prevErr, p.prev2 = e, e
		p.started = true
	}
	next := p.u + units.ScaleFactor(p.law.B0*e+p.law.B1*p.prevErr+p.law.B2*p.prev2)
	if next > p.limits.Max {
		next = p.limits.Max
	}
	if next < p.limits.Min {
		next = p.limits.Min
	}
	p.u = next
	if math.Abs(float64(next-p.applied)) >= float64(p.limits.MinTransition) ||
		next == p.limits.Max || next == p.limits.Min { //mtlint:allow floatcmp rail values are assigned verbatim from the limits; both sides units.ScaleFactor, same dimension
		p.applied = next
	}
	p.prev2 = p.prevErr
	p.prevErr = e
	return p.applied
}

// ThermalControlQuality summarizes a controller's behaviour on the
// canonical cubic-power hotspot testbench.
type ThermalControlQuality struct {
	PeakTempC units.Celsius // worst overshoot
	//mtlint:allow unit settle time reported in milliseconds for readability, not units.Seconds
	SettleMS     float64       // time to stay within ±0.5 °C of setpoint
	MeanAbsErrC  units.Celsius // average |T − setpoint| after settling
	FinalScale   units.ScaleFactor
	EverEmergent bool // exceeded setpoint + margin
}

// stepFn is one controller step: temperature in, actuator out.
type stepFn func(temp units.Celsius) units.ScaleFactor

// evaluateThermalController drives a controller against a first-order
// hotspot whose equilibrium follows the cubic power law, from a cold
// start, and scores the closed-loop behaviour.
func evaluateThermalController(step stepFn, setpoint, emergency units.Celsius) ThermalControlQuality {
	const (
		tau      = 25e-3
		ambient  = 45.0
		riseFull = 52.0
		simTime  = 2.0
	)
	dt := float64(PaperSamplePeriod)
	steps := int(simTime / dt)
	temp := ambient
	tgt := float64(setpoint)
	q := ThermalControlQuality{PeakTempC: ambient}
	settled := -1.0
	var errSum float64
	var errN int
	for i := 0; i < steps; i++ {
		u := float64(step(units.Celsius(temp)))
		eq := ambient + riseFull*u*u*u
		temp += (eq - temp) * dt / tau
		t := float64(i) * dt
		if temp > float64(q.PeakTempC) {
			q.PeakTempC = units.Celsius(temp)
		}
		if temp > float64(emergency) {
			q.EverEmergent = true
		}
		if math.Abs(temp-tgt) <= 0.5 {
			if settled < 0 {
				settled = t
			}
		} else if t < simTime/2 {
			settled = -1
		}
		if t > simTime/2 {
			errSum += math.Abs(temp - tgt)
			errN++
		}
		q.FinalScale = units.ScaleFactor(u)
	}
	if settled >= 0 {
		q.SettleMS = settled * 1e3
	} else {
		q.SettleMS = math.Inf(1)
	}
	if errN > 0 {
		q.MeanAbsErrC = units.Celsius(errSum / float64(errN))
	}
	return q
}

// ComparePIvsPID runs the paper-gain PI and a PID with the given
// derivative gain on the same hotspot testbench, returning both
// qualities — the quantitative form of the paper's "derivative term has
// little benefit" observation.
func ComparePIvsPID(kd float64, setpoint, emergency units.Celsius) (pi, pid ThermalControlQuality) {
	piRT := NewPaperPIRuntime(setpoint)
	pi = evaluateThermalController(piRT.Step, setpoint, emergency)
	law := C2DPID(PaperKp, PaperKi, kd, PaperSamplePeriod)
	pidRT := NewPIDRuntime(law, DefaultPILimits(), setpoint)
	pid = evaluateThermalController(pidRT.Step, setpoint, emergency)
	return pi, pid
}
