package control

import (
	"fmt"
	"math"

	"multitherm/internal/poly"
	"multitherm/internal/units"
)

// DiscretizeMethod selects the continuous→discrete conversion rule used
// by C2D, mirroring MATLAB's c2d method argument.
type DiscretizeMethod int

const (
	// ForwardEuler approximates s ≈ (z−1)/T with the integral advanced
	// from the previous error sample. Applied to the paper's PI gains
	// (Kp=0.0107, Ki=248.5, T = 100000 cycles at 3.6 GHz), it yields
	// exactly the published control law
	//
	//	u[n] = u[n−1] − 0.0107·e[n] + 0.003796·e[n−1].
	ForwardEuler DiscretizeMethod = iota
	// BackwardEuler approximates s ≈ (z−1)/(T·z).
	BackwardEuler
	// Tustin is the bilinear (trapezoidal) rule s ≈ (2/T)·(z−1)/(z+1).
	Tustin
)

func (m DiscretizeMethod) String() string {
	switch m {
	case ForwardEuler:
		return "forward-euler"
	case BackwardEuler:
		return "backward-euler"
	case Tustin:
		return "tustin"
	default:
		return fmt.Sprintf("DiscretizeMethod(%d)", int(m))
	}
}

// DiscretePI is the difference-equation form of a discretized PI
// controller:
//
//	u[n] = u[n−1] + B0·e[n] + B1·e[n−1]
//
// For thermal control the error is e = T_measured − T_target, so both
// response coefficients come out negative-leaning: hotter than target
// drives the actuator (frequency scale) down.
type DiscretePI struct {
	//mtlint:allow unit B0/B1 are gains in scale per °C (Rao et al.'s gain-units caveat), not a units dimension
	B0, B1 float64       // coefficients on e[n] and e[n−1]
	Period units.Seconds // sample period
	Method DiscretizeMethod
}

// C2DPI converts the continuous PI controller u = −(Kp·e + Ki·∫e) to a
// discrete difference equation with sample period T seconds. The sign
// convention matches the paper: positive error (too hot) lowers u.
func C2DPI(kp, ki float64, T units.Seconds, method DiscretizeMethod) DiscretePI {
	d := DiscretePI{Period: T, Method: method}
	dt := float64(T)
	switch method {
	case ForwardEuler:
		// I[n] = I[n−1] + T·e[n−1]
		// u[n] − u[n−1] = −Kp(e[n]−e[n−1]) − Ki·T·e[n−1]
		d.B0 = -kp
		d.B1 = kp - ki*dt
	case BackwardEuler:
		// I[n] = I[n−1] + T·e[n]
		d.B0 = -(kp + ki*dt)
		d.B1 = kp
	case Tustin:
		// I[n] = I[n−1] + T/2·(e[n]+e[n−1])
		d.B0 = -(kp + ki*dt/2)
		d.B1 = kp - ki*dt/2
	default:
		panic(fmt.Sprintf("control: unknown discretization method %d", method))
	}
	return d
}

// ZTransferFunction returns the controller's z-domain transfer function
// U(z)/E(z) = (B0·z + B1) / (z − 1), as numerator/denominator
// polynomials in z (lowest degree first).
func (d DiscretePI) ZTransferFunction() (num, den poly.Poly) {
	return poly.New(d.B1, d.B0), poly.New(-1, 1)
}

// ClosedLoopStableZ reports whether the discrete closed loop formed with
// a plant discretized as z-domain polynomials pNum/pDen is stable, i.e.
// all closed-loop poles lie strictly inside the unit circle. This is the
// discrete-time counterpart of the paper's left-half-plane criterion.
func (d DiscretePI) ClosedLoopStableZ(pNum, pDen poly.Poly) bool {
	cNum, cDen := d.ZTransferFunction()
	// Closed loop denominator: cDen·pDen + cNum·pNum. The thermal loop
	// is negative feedback with the sign folded into B0/B1, so the
	// characteristic polynomial uses the raw product (hotter → slower →
	// cooler is already encoded as negative gain).
	char := cDen.Mul(pDen).Sub(cNum.Mul(pNum))
	return maxMagnitude(char.Roots()) < 1
}

// DiscretizePlantZOH converts the first-order plant K/(τs+1) to its
// exact zero-order-hold discrete equivalent
//
//	H(z) = K(1−a) / (z − a),  a = e^(−T/τ)
func DiscretizePlantZOH(gain float64, tau, T units.Seconds) (num, den poly.Poly) {
	a := math.Exp(-float64(T / tau))
	return poly.New(gain * (1 - a)), poly.New(-a, 1)
}
