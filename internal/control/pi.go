package control

import (
	"fmt"
	"math"

	"multitherm/internal/units"
)

// Paper §4 constants: the published controller gains and the sample
// interval of one thermal measurement every 100,000 cycles at 3.6 GHz.
// Kp and Ki are controller gains, not pure numbers: Kp is scale per °C
// and Ki scale per (°C·s) — the gain-units subtlety Rao et al. highlight
// for integral thermal controllers. There is no units type for either,
// so they stay float64 by design.
const (
	PaperKp = 0.0107
	PaperKi = 248.5
	// PaperSamplePeriod is 100000 cycles / 3.6 GHz ≈ 27.78 µs. The paper
	// rounds this to "28 µs" in prose; the discrete coefficients it
	// publishes correspond to the exact value.
	PaperSamplePeriod units.Seconds = 100000.0 / 3.6e9
)

// PILimits describes the actuator constraints of §4.2.
type PILimits struct {
	Min units.ScaleFactor // minimum output (frequency scale floor, paper: 0.2)
	Max units.ScaleFactor // maximum output (paper: 1.0)
	// MinTransition is the smallest |Δu| that is actually applied,
	// expressed in absolute output units. The paper specifies a minimum
	// transition of 2% of the scaling range; smaller moves are held to
	// avoid thrashing the PLL.
	MinTransition units.ScaleFactor
}

// DefaultPILimits returns the paper's actuator limits: output clipped to
// [0.2, 1.0] with a minimum transition of 2% of the range.
func DefaultPILimits() PILimits {
	return PILimits{Min: 0.2, Max: 1.0, MinTransition: 0.02 * (1.0 - 0.2)}
}

// PIRuntime is the online discrete PI controller of §4.2. It is
// deliberately the same shape as the hardware the paper describes: the
// next output depends only on the previous output, previous error, and
// current error, with clipping providing inherent anti-windup.
//
// The runtime additionally records the running statistics the outer
// migration loop consumes (Figure 1: "records temperature average and
// derivatives when stable"): average applied scale factor, and the
// average observed temperature slope, both over a caller-resettable
// window.
type PIRuntime struct {
	law    DiscretePI
	limits PILimits

	setpoint units.Celsius // target temperature

	u        units.ScaleFactor // internal (clipped) controller state
	applied  units.ScaleFactor // last output actually applied to the PLL
	prevErr  float64           // °C error at the previous sample
	prevTemp units.Celsius
	started  bool

	// Trend-recording window state (feeds sensor-based migration).
	sumScale   float64
	sumSlope   float64
	numSamples int
}

// NewPIRuntime builds a runtime from a discrete control law, actuator
// limits, and the temperature setpoint in °C. The output starts at the
// maximum (core at full speed while cool).
func NewPIRuntime(law DiscretePI, limits PILimits, setpoint units.Celsius) *PIRuntime {
	if limits.Min >= limits.Max {
		panic(fmt.Sprintf("control: invalid PI limits [%g,%g]", limits.Min, limits.Max))
	}
	return &PIRuntime{law: law, limits: limits, setpoint: setpoint, u: limits.Max, applied: limits.Max}
}

// NewPaperPIRuntime builds the exact controller used throughout the
// paper's experiments: forward-Euler discretization of Kp=0.0107,
// Ki=248.5 at the 100K-cycle sample period, clipped to [0.2, 1.0].
func NewPaperPIRuntime(setpoint units.Celsius) *PIRuntime {
	law := C2DPI(PaperKp, PaperKi, PaperSamplePeriod, ForwardEuler)
	return NewPIRuntime(law, DefaultPILimits(), setpoint)
}

// Setpoint returns the target temperature.
func (p *PIRuntime) Setpoint() units.Celsius { return p.setpoint }

// SetSetpoint retargets the controller (used by threshold-sensitivity
// experiments).
func (p *PIRuntime) SetSetpoint(t units.Celsius) { p.setpoint = t }

// Output returns the actuator value currently applied to the PLL.
func (p *PIRuntime) Output() units.ScaleFactor { return p.applied }

// Step advances the controller one sample period given the measured
// hotspot temperature (the hottest of the sensors the controller
// watches, per §5.2) and returns the actuator output — the frequency
// scale factor in [limits.Min, limits.Max].
func (p *PIRuntime) Step(measuredTemp units.Celsius) units.ScaleFactor {
	e := float64(measuredTemp - p.setpoint)
	if !p.started {
		// First sample: no previous error; treat history as steady.
		p.prevErr = e
		p.prevTemp = measuredTemp
		p.started = true
	}
	next := p.u + units.ScaleFactor(p.law.B0*e+p.law.B1*p.prevErr)

	// Output clipping (§4.2). Because the integral state *is* the
	// clipped previous output, clipping doubles as anti-windup: no
	// hidden integrator accumulates while saturated.
	if next > p.limits.Max {
		next = p.limits.Max
	}
	if next < p.limits.Min {
		next = p.limits.Min
	}
	p.u = next

	// Minimum-transition deadband (paper: 2% of range): the PLL only
	// retargets when the requested move is large enough. The controller
	// state keeps integrating regardless, so the deadband costs no
	// steady-state accuracy; rail values always pass through so full
	// recovery is never held up.
	if math.Abs(float64(next-p.applied)) >= float64(p.limits.MinTransition) ||
		next == p.limits.Max || next == p.limits.Min { //mtlint:allow floatcmp rail values are assigned verbatim from the limits; both sides units.ScaleFactor, same dimension
		p.applied = next
	}

	// Record trend data for the outer loop before rolling state.
	p.sumScale += float64(p.applied)
	p.sumSlope += float64(measuredTemp-p.prevTemp) / float64(p.law.Period)
	p.numSamples++

	p.prevErr = e
	p.prevTemp = measuredTemp
	return p.applied
}

// TrendReport is the per-window summary the PI hardware dumps to the
// OS-level migration controller (Figure 1's "thread-core thermal trend
// data").
type TrendReport struct {
	AvgScale units.ScaleFactor // mean applied frequency scale factor
	//mtlint:allow unit mean dT/dt at the controlled hotspot is °C/s — a rate, neither Celsius nor Seconds
	AvgSlope float64
	Samples  int
}

// Trend returns the statistics accumulated since the last ResetTrend.
func (p *PIRuntime) Trend() TrendReport {
	if p.numSamples == 0 {
		return TrendReport{AvgScale: p.u}
	}
	return TrendReport{
		AvgScale: units.ScaleFactor(p.sumScale / float64(p.numSamples)),
		AvgSlope: p.sumSlope / float64(p.numSamples),
		Samples:  p.numSamples,
	}
}

// ResetTrend clears the trend-recording window (called by the OS after
// each migration decision).
func (p *PIRuntime) ResetTrend() {
	p.sumScale, p.sumSlope, p.numSamples = 0, 0, 0
}

// Reset returns the controller to its initial full-speed state. Used
// when a thread migrates onto a core and stale integral state should
// not carry across contexts.
func (p *PIRuntime) Reset() {
	p.u = p.limits.Max
	p.applied = p.limits.Max
	p.prevErr = 0
	p.prevTemp = 0
	p.started = false
	p.ResetTrend()
}
