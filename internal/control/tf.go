// Package control implements the formal feedback-control machinery the
// paper builds its DVFS thermal governor on (§4): continuous transfer
// functions, PI controller design, continuous→discrete conversion
// (the role of MATLAB's c2d), closed-loop pole/stability analysis, and
// the discrete PI runtime with the hardware non-idealities the paper
// discusses — output clipping, anti-windup, and a minimum-transition
// deadband.
//
//mtlint:deterministic
//mtlint:units
package control

import (
	"fmt"
	"math"
	"math/cmplx"

	"multitherm/internal/poly"
	"multitherm/internal/units"
)

// TF is a continuous-time transfer function Num(s)/Den(s).
type TF struct {
	Num poly.Poly
	Den poly.Poly
}

// NewTF builds a transfer function from numerator and denominator
// coefficients ordered lowest degree first.
func NewTF(num, den []float64) TF {
	return TF{Num: poly.New(num...), Den: poly.New(den...)}
}

// PI returns the PI controller transfer function of the paper §4.1:
//
//	G(s) = Kp + Ki/s = (Kp·s + Ki) / s
func PI(kp, ki float64) TF {
	return TF{Num: poly.New(ki, kp), Den: poly.New(0, 1)}
}

// FirstOrderPlant returns the canonical first-order thermal plant
//
//	H(s) = K / (τ·s + 1)
//
// which models a hotspot's temperature response to a power step with DC
// gain K (°C per unit actuator) and thermal time constant τ (seconds).
// The paper's stability argument treats each hotspot this way.
func FirstOrderPlant(gain float64, tau units.Seconds) TF {
	return TF{Num: poly.New(gain), Den: poly.New(1, float64(tau))}
}

// Series returns the cascade g·h.
func (g TF) Series(h TF) TF {
	return TF{Num: g.Num.Mul(h.Num), Den: g.Den.Mul(h.Den)}
}

// Feedback returns the unity-negative-feedback closed loop
//
//	g/(1+g) = Num / (Den + Num).
func (g TF) Feedback() TF {
	return TF{Num: g.Num, Den: g.Den.Add(g.Num)}
}

// Poles returns the roots of the denominator.
func (g TF) Poles() []complex128 { return g.Den.Roots() }

// Zeros returns the roots of the numerator.
func (g TF) Zeros() []complex128 { return g.Num.Roots() }

// IsStable reports whether every pole lies strictly in the open left
// half of the s-plane — the criterion the paper verifies with a root
// locus plot ("all the poles must lie to the left of the y-axis").
func (g TF) IsStable() bool {
	for _, p := range g.Poles() {
		if real(p) >= 0 {
			return false
		}
	}
	return true
}

// Eval evaluates the transfer function at complex frequency s.
func (g TF) Eval(s complex128) complex128 {
	return g.Num.EvalC(s) / g.Den.EvalC(s)
}

// DCGain returns the steady-state gain G(0). Returns ±Inf for a pole at
// the origin (e.g. a pure integrator).
func (g TF) DCGain() float64 {
	d := g.Den.Eval(0)
	if d == 0 { //mtlint:allow floatcmp exact zero denominator is the pole-at-origin contract
		return math.Inf(sign(g.Num.Eval(0)))
	}
	return g.Num.Eval(0) / d
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// DominantTimeConstant returns −1/Re(p) for the stable pole closest to
// the imaginary axis — the time scale that dominates settling. Returns
// +Inf if any pole lies on or right of the axis.
func (g TF) DominantTimeConstant() units.Seconds {
	var slowest float64
	for _, p := range g.Poles() {
		if real(p) >= 0 {
			return units.Seconds(math.Inf(1))
		}
		if tc := -1 / real(p); tc > slowest {
			slowest = tc
		}
	}
	return units.Seconds(slowest)
}

// SettlingTime estimates the 2% settling time as 4× the dominant time
// constant, the standard first-order approximation.
func (g TF) SettlingTime() units.Seconds {
	return 4 * g.DominantTimeConstant()
}

// RootLocusPoint is one sample of the root-locus sweep: the closed-loop
// poles at a particular loop-gain multiplier.
type RootLocusPoint struct {
	Gain  float64
	Poles []complex128
}

// RootLocus sweeps the loop gain over the supplied multipliers and
// returns the closed-loop poles of (k·g)/(1+k·g) at each, mirroring the
// paper's MATLAB root-locus verification.
func (g TF) RootLocus(gains []float64) []RootLocusPoint {
	out := make([]RootLocusPoint, 0, len(gains))
	for _, k := range gains {
		scaled := TF{Num: g.Num.Scale(k), Den: g.Den}
		out = append(out, RootLocusPoint{Gain: k, Poles: scaled.Feedback().Poles()})
	}
	return out
}

// StabilityMargin returns the distance of the rightmost pole from the
// imaginary axis (positive = stable by that margin).
//
//mtlint:allow unit pole distance in the s-plane (1/s), not a units dimension
func (g TF) StabilityMargin() float64 {
	margin := math.Inf(1)
	for _, p := range g.Poles() {
		if m := -real(p); m < margin {
			margin = m
		}
	}
	return margin
}

func (g TF) String() string {
	return fmt.Sprintf("(%s) / (%s)", g.Num, g.Den)
}

// MaxPoleMagnitude returns the largest |pole|; for discrete systems a
// value < 1 means stable.
func maxMagnitude(ps []complex128) float64 {
	var m float64
	for _, p := range ps {
		if a := cmplx.Abs(p); a > m {
			m = a
		}
	}
	return m
}
