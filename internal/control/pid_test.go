package control

import (
	"math"
	"testing"
)

func TestPIDReducesToPI(t *testing.T) {
	pi := PI(PaperKp, PaperKi)
	pid := PID(PaperKp, PaperKi, 0, 1e-4)
	for _, s := range []complex128{complex(0.5, 1), complex(-2, 3), complex(10, 0)} {
		a, b := pi.Eval(s), pid.Eval(s)
		if d := real(a-b)*real(a-b) + imag(a-b)*imag(a-b); d > 1e-18 {
			t.Errorf("PID(kd=0) differs from PI at %v: %v vs %v", s, a, b)
		}
	}
}

func TestPIDTransferFunctionShape(t *testing.T) {
	g := PID(1, 2, 0.5, 1e-3)
	// Two poles: s = 0 (integrator) and s = −1/τf (derivative filter).
	poles := g.Poles()
	if len(poles) != 2 {
		t.Fatalf("poles = %v", poles)
	}
	foundOrigin, foundFilter := false, false
	for _, p := range poles {
		if math.Abs(real(p)) < 1e-9 && math.Abs(imag(p)) < 1e-9 {
			foundOrigin = true
		}
		if math.Abs(real(p)+1000) < 1e-6 {
			foundFilter = true
		}
	}
	if !foundOrigin || !foundFilter {
		t.Errorf("expected poles at 0 and -1000, got %v", poles)
	}
}

func TestC2DPIDReducesToPI(t *testing.T) {
	pid := C2DPID(PaperKp, PaperKi, 0, PaperSamplePeriod)
	pi := C2DPI(PaperKp, PaperKi, PaperSamplePeriod, BackwardEuler)
	if math.Abs(pid.B0-pi.B0) > 1e-12 || math.Abs(pid.B1-pi.B1) > 1e-12 || pid.B2 != 0 {
		t.Errorf("kd=0 PID (%v,%v,%v) != backward-Euler PI (%v,%v)",
			pid.B0, pid.B1, pid.B2, pi.B0, pi.B1)
	}
}

func TestPIDRuntimeClipping(t *testing.T) {
	law := C2DPID(PaperKp, PaperKi, 1e-6, PaperSamplePeriod)
	rt := NewPIDRuntime(law, DefaultPILimits(), 80)
	for i := 0; i < 3000; i++ {
		u := rt.Step(140)
		if u < 0.2-1e-12 || u > 1.0+1e-12 {
			t.Fatalf("output %v outside limits", u)
		}
	}
	if rt.Output() != 0.2 {
		t.Errorf("hot input should rail at min, got %v", rt.Output())
	}
}

func TestDerivativeTermHasLittleBenefit(t *testing.T) {
	// Paper §4.1: "we found that the derivative term has little benefit
	// for this type of thermal control". Quantify: a moderate derivative
	// gain must change mean tracking error and peak temperature only
	// marginally, and must not rescue anything the PI misses.
	const setpoint, emergency = 81.8, 84.2
	pi, pid := ComparePIvsPID(1e-5, setpoint, emergency)
	if pi.EverEmergent || pid.EverEmergent {
		t.Fatalf("controllers breached emergency threshold: pi=%+v pid=%+v", pi, pid)
	}
	if math.Abs(float64(pi.MeanAbsErrC-pid.MeanAbsErrC)) > 0.3 {
		t.Errorf("derivative changed tracking error materially: PI %.3f °C vs PID %.3f °C",
			pi.MeanAbsErrC, pid.MeanAbsErrC)
	}
	if math.Abs(float64(pi.PeakTempC-pid.PeakTempC)) > 1.0 {
		t.Errorf("derivative changed peak temperature materially: %.2f vs %.2f",
			pi.PeakTempC, pid.PeakTempC)
	}
}

func TestEvaluateThermalControllerScoresSanely(t *testing.T) {
	q := evaluateThermalController(NewPaperPIRuntime(81.8).Step, 81.8, 84.2)
	if q.PeakTempC < 80 || q.PeakTempC > 84.2 {
		t.Errorf("peak %v implausible", q.PeakTempC)
	}
	if q.MeanAbsErrC > 1.0 {
		t.Errorf("steady tracking error %v too large", q.MeanAbsErrC)
	}
	if math.IsInf(q.SettleMS, 1) {
		t.Error("controller never settled")
	}
	if q.EverEmergent {
		t.Error("PI breached the emergency threshold on the testbench")
	}
}
