package core

import (
	"math"
	"strings"
	"testing"

	"multitherm/internal/floorplan"
	"multitherm/internal/sensor"
	"multitherm/internal/units"
)

func testBank(t testing.TB) (*floorplan.Floorplan, *sensor.Bank) {
	t.Helper()
	fp := floorplan.CMP4()
	bank, err := sensor.CoreHotspots(fp)
	if err != nil {
		t.Fatal(err)
	}
	// Idealize the sensors for deterministic tests.
	for i := range bank.Sensors {
		bank.Sensors[i].Quantization = 0
	}
	return fp, bank
}

// temps returns a uniform block-temperature vector with selected
// overrides keyed by block name.
func temps(fp *floorplan.Floorplan, base float64, override map[string]float64) units.TempVec {
	out := make(units.TempVec, len(fp.Blocks))
	for i := range out {
		out[i] = base
	}
	for name, v := range override {
		idx := fp.BlockIndex(name)
		if idx < 0 {
			panic("unknown block " + name)
		}
		out[idx] = v
	}
	return out
}

func TestTaxonomyHasTwelveUniqueCells(t *testing.T) {
	tax := Taxonomy()
	if len(tax) != 12 {
		t.Fatalf("taxonomy size = %d, want 12", len(tax))
	}
	seen := map[PolicySpec]bool{}
	for _, p := range tax {
		if seen[p] {
			t.Errorf("duplicate cell %v", p)
		}
		seen[p] = true
	}
}

func TestPolicySpecLabels(t *testing.T) {
	cases := map[PolicySpec]string{
		{StopGo, Global, NoMigration}:           "Global stop-go",
		{DVFS, Distributed, NoMigration}:        "Dist. DVFS",
		{DVFS, Distributed, SensorMigration}:    "Dist. DVFS + sensor-based migration",
		{StopGo, Distributed, CounterMigration}: "Dist. stop-go + counter-based migration",
	}
	for spec, want := range cases {
		if got := spec.String(); got != want {
			t.Errorf("label = %q, want %q", got, want)
		}
	}
	if Baseline.String() != "Dist. stop-go" {
		t.Errorf("baseline label = %q", Baseline.String())
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidateCatchesBad(t *testing.T) {
	p := DefaultParams()
	p.StallSeconds = 0
	if err := p.Validate(); err == nil {
		t.Error("zero stall accepted")
	}
	p = DefaultParams()
	p.Limits.Min = 2
	if err := p.Validate(); err == nil {
		t.Error("inverted limits accepted")
	}
}

func TestStopGoDistributedStallsOnlyHotCore(t *testing.T) {
	fp, bank := testBank(t)
	sg, err := NewStopGo(DefaultParams(), Distributed, bank, 4)
	if err != nil {
		t.Fatal(err)
	}
	hot := temps(fp, 70, map[string]float64{"c1_iregfile": 84.1})
	cmds := sg.Decide(0, 0, hot)
	if !cmds[1].Stall {
		t.Error("hot core 1 not stalled")
	}
	for _, c := range []int{0, 2, 3} {
		if cmds[c].Stall {
			t.Errorf("cool core %d stalled under distributed policy", c)
		}
	}
	if sg.Trips() != 1 {
		t.Errorf("trips = %d, want 1", sg.Trips())
	}
}

func TestStopGoStallDuration(t *testing.T) {
	fp, bank := testBank(t)
	params := DefaultParams()
	sg, err := NewStopGo(params, Distributed, bank, 4)
	if err != nil {
		t.Fatal(err)
	}
	hot := temps(fp, 70, map[string]float64{"c0_fpregfile": 84.2})
	cool := temps(fp, 70, nil)
	sg.Decide(0, 0, hot)
	// Still stalled while inside the 30 ms window even though cooled.
	if cmds := sg.Decide(15e-3, 1, cool); !cmds[0].Stall {
		t.Error("core released before 30 ms stall elapsed")
	}
	if cmds := sg.Decide(31e-3, 2, cool); cmds[0].Stall {
		t.Error("core still stalled after the stall interval")
	}
	if sg.Trips() != 1 {
		t.Errorf("trips = %d, want exactly 1", sg.Trips())
	}
}

func TestStopGoGlobalGatesWholeChip(t *testing.T) {
	fp, bank := testBank(t)
	sg, err := NewStopGo(DefaultParams(), Global, bank, 4)
	if err != nil {
		t.Fatal(err)
	}
	hot := temps(fp, 70, map[string]float64{"c3_iregfile": 84.2})
	cmds := sg.Decide(0, 0, hot)
	for c := range cmds {
		if !cmds[c].Stall {
			t.Errorf("core %d not gated under global stop-go", c)
		}
	}
}

func TestStopGoTrendReflectsDuty(t *testing.T) {
	fp, bank := testBank(t)
	sg, err := NewStopGo(DefaultParams(), Distributed, bank, 4)
	if err != nil {
		t.Fatal(err)
	}
	cool := temps(fp, 70, nil)
	hot := temps(fp, 70, map[string]float64{"c2_iregfile": 84.2})
	dt := DefaultParams().SamplePeriod
	// 10 running ticks, then a trip; stalled ticks afterwards.
	now := units.Seconds(0)
	for i := 0; i < 10; i++ {
		sg.Decide(now, int64(i), cool)
		now += dt
	}
	for i := 10; i < 20; i++ {
		sg.Decide(now, int64(i), hot)
		now += dt
	}
	tr := sg.Trend(2)
	if tr.Samples != 20 {
		t.Fatalf("trend samples = %d", tr.Samples)
	}
	// Core 2 ran ~11 of 20 ticks (trip happens on tick 10).
	if tr.AvgScale < 0.45 || tr.AvgScale > 0.6 {
		t.Errorf("avg effective scale = %v, want ≈0.55", tr.AvgScale)
	}
	sg.ResetTrend(2)
	if sg.Trend(2).Samples != 0 {
		t.Error("ResetTrend did not clear")
	}
}

func TestDVFSDistributedIndependentCores(t *testing.T) {
	fp, bank := testBank(t)
	d, err := NewDVFS(DefaultParams(), Distributed, bank, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 far above setpoint, others cool: only core 0 slows.
	hot := temps(fp, 60, map[string]float64{"c0_iregfile": 95})
	var cmds []CoreCommand
	for i := 0; i < 400; i++ {
		cmds = d.Decide(units.Seconds(i)*DefaultParams().SamplePeriod, int64(i), hot)
	}
	if cmds[0].Scale >= 0.9 {
		t.Errorf("hot core scale = %v, want depressed", cmds[0].Scale)
	}
	for _, c := range []int{1, 2, 3} {
		if cmds[c].Scale != 1.0 {
			t.Errorf("cool core %d scale = %v, want 1.0", c, cmds[c].Scale)
		}
	}
	if cmds[0].Stall {
		t.Error("DVFS should never stall")
	}
}

func TestDVFSGlobalFollowsHottest(t *testing.T) {
	fp, bank := testBank(t)
	d, err := NewDVFS(DefaultParams(), Global, bank, 4)
	if err != nil {
		t.Fatal(err)
	}
	hot := temps(fp, 60, map[string]float64{"c3_fpregfile": 95})
	var cmds []CoreCommand
	for i := 0; i < 400; i++ {
		cmds = d.Decide(units.Seconds(i)*DefaultParams().SamplePeriod, int64(i), hot)
	}
	// All cores share the single controller's output.
	for c := 1; c < 4; c++ {
		if cmds[c].Scale != cmds[0].Scale {
			t.Errorf("global DVFS cores diverged: %v vs %v", cmds[c].Scale, cmds[0].Scale)
		}
	}
	if cmds[0].Scale >= 0.9 {
		t.Errorf("global scale = %v, want depressed by the one hotspot", cmds[0].Scale)
	}
}

func TestDVFSRespectsFloor(t *testing.T) {
	fp, bank := testBank(t)
	d, err := NewDVFS(DefaultParams(), Distributed, bank, 4)
	if err != nil {
		t.Fatal(err)
	}
	inferno := temps(fp, 150, nil)
	var cmds []CoreCommand
	for i := 0; i < 5000; i++ {
		cmds = d.Decide(units.Seconds(i)*DefaultParams().SamplePeriod, int64(i), inferno)
	}
	for c := range cmds {
		if cmds[c].Scale < DefaultParams().Limits.Min-1e-12 {
			t.Errorf("core %d scale %v under the 0.2 floor", c, cmds[c].Scale)
		}
	}
}

func TestDVFSTrendScaleTracksOutput(t *testing.T) {
	fp, bank := testBank(t)
	d, err := NewDVFS(DefaultParams(), Distributed, bank, 4)
	if err != nil {
		t.Fatal(err)
	}
	cool := temps(fp, 50, nil)
	for i := 0; i < 50; i++ {
		d.Decide(units.Seconds(i)*DefaultParams().SamplePeriod, int64(i), cool)
	}
	tr := d.Trend(1)
	if math.Abs(float64(tr.AvgScale)-1.0) > 1e-9 {
		t.Errorf("cool core trend scale = %v, want 1.0", tr.AvgScale)
	}
	d.NotifyMigration(1)
	if d.Trend(1).Samples != 0 {
		t.Error("NotifyMigration did not clear trend window")
	}
}

func TestThrottlerNames(t *testing.T) {
	_, bank := testBank(t)
	sg, _ := NewStopGo(DefaultParams(), Global, bank, 4)
	d, _ := NewDVFS(DefaultParams(), Distributed, bank, 4)
	if !strings.Contains(sg.Name(), "stop-go") || !strings.Contains(sg.Name(), "global") {
		t.Errorf("stop-go name = %q", sg.Name())
	}
	if !strings.Contains(d.Name(), "DVFS") || !strings.Contains(d.Name(), "distributed") {
		t.Errorf("dvfs name = %q", d.Name())
	}
}

func TestConstructorsRejectBadArgs(t *testing.T) {
	_, bank := testBank(t)
	if _, err := NewStopGo(DefaultParams(), Global, bank, 0); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := NewDVFS(DefaultParams(), Global, bank, -1); err == nil {
		t.Error("negative cores accepted")
	}
	bad := DefaultParams()
	bad.ThresholdC = -5
	if _, err := NewStopGo(bad, Global, bank, 4); err == nil {
		t.Error("bad params accepted by stop-go")
	}
	if _, err := NewDVFS(bad, Global, bank, 4); err == nil {
		t.Error("bad params accepted by DVFS")
	}
}

func TestAxisStrings(t *testing.T) {
	if StopGo.String() != "stop-go" || DVFS.String() != "DVFS" {
		t.Error("mechanism strings")
	}
	if Global.String() != "global" || Distributed.String() != "distributed" {
		t.Error("scope strings")
	}
	if NoMigration.String() != "no migration" ||
		CounterMigration.String() != "counter-based migration" ||
		SensorMigration.String() != "sensor-based migration" {
		t.Error("migration strings")
	}
}
