// Package core implements the paper's primary contribution: the
// taxonomy of dynamic thermal management (DTM) policies for chip
// multiprocessors (Table 2) and the throttling mechanisms that populate
// it — stop-go clock gating (§2.3, §5.1) and control-theoretic DVFS
// (§4) — each applicable chip-globally or per-core ("distributed",
// §2.4). Migration controllers (the third taxonomy axis) build on these
// throttlers' trend data and live in internal/migration; the two-loop
// composition of Figure 1 is assembled by the simulator.
//
//mtlint:deterministic
//mtlint:units
package core

import (
	"fmt"
	"sort"
	"strings"

	"multitherm/internal/control"
	"multitherm/internal/units"
)

// Mechanism is the low-level throttling mechanism axis of Table 2.
type Mechanism int

const (
	StopGo Mechanism = iota
	DVFS
)

func (m Mechanism) String() string {
	if m == DVFS {
		return "DVFS"
	}
	return "stop-go"
}

// Scope is the global-vs-distributed axis of Table 2.
type Scope int

const (
	Global Scope = iota
	Distributed
)

func (s Scope) String() string {
	if s == Distributed {
		return "distributed"
	}
	return "global"
}

// MigrationKind is the process-migration axis of Table 2.
type MigrationKind int

const (
	NoMigration MigrationKind = iota
	CounterMigration
	SensorMigration
)

func (k MigrationKind) String() string {
	switch k {
	case CounterMigration:
		return "counter-based migration"
	case SensorMigration:
		return "sensor-based migration"
	default:
		return "no migration"
	}
}

// PolicySpec identifies one cell of the paper's 12-policy taxonomy.
type PolicySpec struct {
	Mechanism Mechanism
	Scope     Scope
	Migration MigrationKind
}

// String renders the spec the way the paper labels policies, e.g.
// "Dist. DVFS + sensor-based migration".
func (p PolicySpec) String() string {
	scope := "Global"
	if p.Scope == Distributed {
		scope = "Dist."
	}
	s := fmt.Sprintf("%s %s", scope, p.Mechanism)
	if p.Migration != NoMigration {
		s += " + " + p.Migration.String()
	}
	return s
}

// Baseline is the paper's normalization policy: distributed stop-go
// with no migration.
var Baseline = PolicySpec{Mechanism: StopGo, Scope: Distributed, Migration: NoMigration}

// Taxonomy enumerates all 12 policy combinations of Table 2, ordered
// by migration axis, then scope, then mechanism — matching the paper's
// table layout read left-to-right, top-to-bottom.
func Taxonomy() []PolicySpec {
	var out []PolicySpec
	for _, mig := range []MigrationKind{NoMigration, CounterMigration, SensorMigration} {
		for _, scope := range []Scope{Global, Distributed} {
			for _, mech := range []Mechanism{StopGo, DVFS} {
				out = append(out, PolicySpec{Mechanism: mech, Scope: scope, Migration: mig})
			}
		}
	}
	return out
}

// CLIName returns the short machine-friendly identifier of a taxonomy
// cell — "dist-dvfs", "global-stopgo", "dist-dvfs+sensor" — the form
// accepted by PolicyByName and used by the CLI flags and the serving
// API alike.
func (p PolicySpec) CLIName() string {
	mech := "stopgo"
	if p.Mechanism == DVFS {
		mech = "dvfs"
	}
	scope := "global"
	if p.Scope == Distributed {
		scope = "dist"
	}
	name := scope + "-" + mech
	switch p.Migration {
	case CounterMigration:
		name += "+counter"
	case SensorMigration:
		name += "+sensor"
	}
	return name
}

// PolicyNames lists the accepted PolicyByName identifiers, sorted.
func PolicyNames() []string {
	out := make([]string, 0, 12)
	for _, p := range Taxonomy() {
		out = append(out, p.CLIName())
	}
	sort.Strings(out)
	return out
}

// PolicyByName resolves names like "dist-dvfs", "global-stopgo",
// "dist-stopgo+counter", or "dist-dvfs+sensor" (case-insensitive,
// surrounding whitespace ignored). It is a strict whitelist lookup —
// the result is one of the taxonomy's static specs regardless of
// input — so the taint analysis treats it as a sanitizer.
//
//mtlint:sanitizer
func PolicyByName(name string) (PolicySpec, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, p := range Taxonomy() {
		if p.CLIName() == want {
			return p, nil
		}
	}
	return PolicySpec{}, fmt.Errorf("core: unknown policy %q (known: %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// Params gathers the thermal-control constants shared by all policies.
type Params struct {
	// ThresholdC is the emergency temperature no part of the chip may
	// exceed (paper §3.5: 84.2 °C).
	ThresholdC units.Celsius
	// TripMarginC: stop-go interrupts fire when a sensor reads within
	// this margin below the threshold ("just below the thermal
	// threshold", §5.1).
	TripMarginC units.Celsius
	// SetpointMarginC: the DVFS PI setpoint sits this far below the
	// threshold ("a setpoint slightly below the thermal threshold",
	// §2.3).
	SetpointMarginC units.Celsius
	// StallSeconds is the stop-go freeze interval (30 ms, §2.3).
	StallSeconds units.Seconds
	// SamplePeriod is the control interval (100K cycles ≈ 27.8 µs).
	SamplePeriod units.Seconds
	// PI gains in scale per °C (§4.1) and actuator limits (§4.2).
	//mtlint:allow unit controller gains are scale per °C, not a units dimension
	Kp, Ki float64
	Limits control.PILimits
	// TransitionPenalty is the PLL/voltage retarget cost (10 µs).
	TransitionPenalty units.Seconds
}

// DefaultParams returns the paper's constants.
func DefaultParams() Params {
	return Params{
		ThresholdC:        84.2,
		TripMarginC:       0.3,
		SetpointMarginC:   2.4,
		StallSeconds:      30e-3,
		SamplePeriod:      control.PaperSamplePeriod,
		Kp:                control.PaperKp,
		Ki:                control.PaperKi,
		Limits:            control.DefaultPILimits(),
		TransitionPenalty: 10e-6,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.ThresholdC <= 0 {
		return fmt.Errorf("core: non-positive threshold")
	}
	if p.TripMarginC < 0 || p.SetpointMarginC < 0 {
		return fmt.Errorf("core: negative margins")
	}
	if p.StallSeconds <= 0 || p.SamplePeriod <= 0 {
		return fmt.Errorf("core: non-positive stall or sample interval")
	}
	if p.Limits.Min >= p.Limits.Max {
		return fmt.Errorf("core: inverted PI limits")
	}
	if p.TransitionPenalty < 0 {
		return fmt.Errorf("core: negative transition penalty")
	}
	return nil
}

// CoreCommand is one core's operating point for the next control
// interval.
type CoreCommand struct {
	Scale units.ScaleFactor // frequency scale factor in (0, 1]
	Stall bool              // stop-go gate engaged: no progress, clocks off
}

// Throttler is the inner control loop of Figure 1: it converts sensor
// readings into per-core operating commands every control interval.
type Throttler interface {
	// Name identifies the throttler for reports.
	Name() string
	// Decide consumes the per-block die temperatures (as read through
	// sensors) at absolute time now (tick = sample index) and returns
	// the command for each core. The returned slice is valid until the
	// next call.
	Decide(now units.Seconds, tick int64, blockTemps units.TempVec) []CoreCommand
	// Trend reports the per-core feedback data the outer migration loop
	// consumes (Figure 1: average scale factor and temperature slope).
	Trend(coreID int) control.TrendReport
	// ResetTrend clears a core's trend window (after the OS reads it).
	ResetTrend(coreID int)
	// NotifyMigration tells the throttler a new thread landed on the
	// core so stale controller state does not carry across contexts.
	NotifyMigration(coreID int)
}
