package core

import (
	"multitherm/internal/control"
	"multitherm/internal/units"
)

// Unthrottled is the no-DTM reference: every core always runs at full
// speed. The paper uses unrestricted-temperature runs to validate that
// the duty-cycle metric predicts achieved BIPS (§5.3); it is also the
// natural probe for measuring a workload's unconstrained heat output.
type Unthrottled struct {
	cmds []CoreCommand
}

// NewUnthrottled builds the pass-through throttler.
func NewUnthrottled(nCores int) *Unthrottled {
	u := &Unthrottled{cmds: make([]CoreCommand, nCores)}
	for i := range u.cmds {
		u.cmds[i] = CoreCommand{Scale: 1.0}
	}
	return u
}

// Name implements Throttler.
func (u *Unthrottled) Name() string { return "unthrottled" }

// Decide implements Throttler.
func (u *Unthrottled) Decide(now units.Seconds, tick int64, blockTemps units.TempVec) []CoreCommand {
	return u.cmds
}

// Trend implements Throttler.
func (u *Unthrottled) Trend(int) control.TrendReport {
	return control.TrendReport{AvgScale: 1, Samples: 1}
}

// ResetTrend implements Throttler.
func (u *Unthrottled) ResetTrend(int) {}

// NotifyMigration implements Throttler.
func (u *Unthrottled) NotifyMigration(int) {}
