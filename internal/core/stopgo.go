package core

import (
	"fmt"

	"multitherm/internal/control"
	"multitherm/internal/sensor"
	"multitherm/internal/units"
)

// StopGoThrottler implements the paper's stop-go mechanism (§2.3, §5.1):
// cores run at full speed until a watched sensor reads just below the
// thermal threshold, then freeze for a fixed 30 ms stall. In Global
// scope, any trip freezes every core ("global clock gating"); in
// Distributed scope only the offending core stalls.
type StopGoThrottler struct {
	params Params
	scope  Scope
	bank   *sensor.Bank
	nCores int

	stallUntil []units.Seconds // per core
	cmds       []CoreCommand
	trends     []trendAccum
	hotTemps   []float64 // per-tick scratch, reused across Decide calls
	trips      int
}

// trendAccum approximates the PI hardware's trend recording for
// throttlers without a PI controller: average effective scale (1 when
// running, 0 when stalled) and average hotspot temperature slope.
type trendAccum struct {
	sumScale float64
	sumSlope float64
	n        int
	prevTemp float64
	started  bool
}

func (t *trendAccum) add(scale, temp, period float64) {
	if !t.started {
		t.prevTemp = temp
		t.started = true
	}
	t.sumScale += scale
	t.sumSlope += (temp - t.prevTemp) / period
	t.prevTemp = temp
	t.n++
}

func (t *trendAccum) report() control.TrendReport {
	if t.n == 0 {
		return control.TrendReport{AvgScale: 1}
	}
	return control.TrendReport{
		AvgScale: units.ScaleFactor(t.sumScale / float64(t.n)),
		AvgSlope: t.sumSlope / float64(t.n),
		Samples:  t.n,
	}
}

func (t *trendAccum) reset() {
	t.sumScale, t.sumSlope, t.n = 0, 0, 0
	// keep prevTemp so the slope stream stays continuous
}

// NewStopGo builds a stop-go throttler over the given sensor bank.
func NewStopGo(params Params, scope Scope, bank *sensor.Bank, nCores int) (*StopGoThrottler, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if nCores <= 0 {
		return nil, fmt.Errorf("core: nCores = %d", nCores)
	}
	return &StopGoThrottler{
		params:     params,
		scope:      scope,
		bank:       bank,
		nCores:     nCores,
		stallUntil: make([]units.Seconds, nCores),
		cmds:       make([]CoreCommand, nCores),
		trends:     make([]trendAccum, nCores),
		hotTemps:   make([]float64, nCores),
	}, nil
}

// Name implements Throttler.
func (s *StopGoThrottler) Name() string {
	return fmt.Sprintf("%s stop-go", s.scope)
}

// Trips returns the number of thermal interrupts taken.
func (s *StopGoThrottler) Trips() int { return s.trips }

// Decide implements Throttler.
func (s *StopGoThrottler) Decide(now units.Seconds, tick int64, blockTemps units.TempVec) []CoreCommand {
	trip := s.params.ThresholdC - s.params.TripMarginC
	hotTemps := s.hotTemps
	for c := 0; c < s.nCores; c++ {
		hot, _ := s.bank.HottestForCore(c, blockTemps, tick)
		hotTemps[c] = float64(hot)
		if now >= s.stallUntil[c] && hot >= trip {
			// Thermal interrupt: freeze this core (or, below, the chip)
			// for the stall interval.
			s.stallUntil[c] = now + s.params.StallSeconds
			s.trips++
		}
		s.cmds[c] = CoreCommand{Scale: 1.0, Stall: now < s.stallUntil[c]}
	}
	if s.scope == Global {
		// Any stalled core gates the entire chip.
		any := false
		for c := range s.cmds {
			if s.cmds[c].Stall {
				any = true
				break
			}
		}
		if any {
			for c := range s.cmds {
				s.cmds[c].Stall = true
			}
		}
	}
	// Record trends from the final (post-global-gating) commands so the
	// outer loop sees each core's true effective duty.
	for c := 0; c < s.nCores; c++ {
		scale := 1.0
		if s.cmds[c].Stall {
			scale = 0
		}
		s.trends[c].add(scale, hotTemps[c], float64(s.params.SamplePeriod))
	}
	return s.cmds
}

// Trend implements Throttler.
func (s *StopGoThrottler) Trend(coreID int) control.TrendReport {
	return s.trends[coreID].report()
}

// ResetTrend implements Throttler.
func (s *StopGoThrottler) ResetTrend(coreID int) { s.trends[coreID].reset() }

// NotifyMigration implements Throttler. A pending stall is cleared: the
// OS context switch is itself a thermal response (the hotspot already
// cooled below the trip point when the interrupt fired), and the
// incoming thread is re-protected by the normal trip check on the very
// next control interval — if the hotspot is still at the trip point the
// core re-stalls immediately.
func (s *StopGoThrottler) NotifyMigration(coreID int) {
	s.stallUntil[coreID] = 0
	s.trends[coreID] = trendAccum{}
}
