package core

import (
	"fmt"

	"multitherm/internal/control"
	"multitherm/internal/sensor"
	"multitherm/internal/units"
)

// DVFSThrottler implements the control-theoretic DVFS mechanism of §4:
// a discrete PI controller drives each core's (or, in Global scope, the
// whole chip's) frequency/voltage scale toward a temperature setpoint
// just below the emergency threshold. Each controller consumes the
// hottest of the sensors it watches (§5.2).
type DVFSThrottler struct {
	params Params
	scope  Scope
	bank   *sensor.Bank
	nCores int

	controllers []*control.PIRuntime // per core, or a single shared one
	cmds        []CoreCommand
}

// NewDVFS builds a DVFS throttler. In Distributed scope each core gets
// an independent PI controller; in Global scope a single controller
// watches the hottest sensor across all cores and every core follows
// its output (§5.2: "effectively only a single PI controller which
// calculates based on the hottest of all sensors across all cores").
func NewDVFS(params Params, scope Scope, bank *sensor.Bank, nCores int) (*DVFSThrottler, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if nCores <= 0 {
		return nil, fmt.Errorf("core: nCores = %d", nCores)
	}
	d := &DVFSThrottler{
		params: params,
		scope:  scope,
		bank:   bank,
		nCores: nCores,
		cmds:   make([]CoreCommand, nCores),
	}
	law := control.C2DPI(params.Kp, params.Ki, params.SamplePeriod, control.ForwardEuler)
	setpoint := params.ThresholdC - params.SetpointMarginC
	n := nCores
	if scope == Global {
		n = 1
	}
	for i := 0; i < n; i++ {
		d.controllers = append(d.controllers, control.NewPIRuntime(law, params.Limits, setpoint))
	}
	return d, nil
}

// Name implements Throttler.
func (d *DVFSThrottler) Name() string {
	return fmt.Sprintf("%s DVFS", d.scope)
}

// Setpoint returns the controllers' target temperature.
func (d *DVFSThrottler) Setpoint() units.Celsius {
	return d.controllers[0].Setpoint()
}

// Decide implements Throttler.
func (d *DVFSThrottler) Decide(now units.Seconds, tick int64, blockTemps units.TempVec) []CoreCommand {
	if d.scope == Global {
		hot, _ := d.bank.Hottest(blockTemps, tick)
		u := d.controllers[0].Step(hot)
		for c := range d.cmds {
			d.cmds[c] = CoreCommand{Scale: u}
		}
		return d.cmds
	}
	for c := 0; c < d.nCores; c++ {
		hot, _ := d.bank.HottestForCore(c, blockTemps, tick)
		u := d.controllers[c].Step(hot)
		d.cmds[c] = CoreCommand{Scale: u}
	}
	return d.cmds
}

// controllerFor maps a core to its PI runtime.
func (d *DVFSThrottler) controllerFor(coreID int) *control.PIRuntime {
	if d.scope == Global {
		return d.controllers[0]
	}
	return d.controllers[coreID]
}

// Trend implements Throttler: the data is "dumped from per-core PI
// controllers" exactly as Figure 1 describes.
func (d *DVFSThrottler) Trend(coreID int) control.TrendReport {
	return d.controllerFor(coreID).Trend()
}

// ResetTrend implements Throttler.
func (d *DVFSThrottler) ResetTrend(coreID int) {
	d.controllerFor(coreID).ResetTrend()
}

// NotifyMigration implements Throttler: the incoming thread should not
// inherit the outgoing thread's integral state, but the silicon
// temperature is unchanged, so only the trend window is cleared and the
// controller keeps its output (it will re-converge within a few hundred
// microseconds).
func (d *DVFSThrottler) NotifyMigration(coreID int) {
	d.controllerFor(coreID).ResetTrend()
}
