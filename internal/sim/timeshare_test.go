package sim

import (
	"testing"

	"multitherm/internal/core"
)

func sixBench() []string {
	return []string{"gzip", "twolf", "ammp", "lucas", "mcf", "sixtrack"}
}

func TestTimesharedRejectsBadInputs(t *testing.T) {
	cfg := quickCfg()
	if _, err := NewTimeshared(cfg, "x", []string{"gzip"}, core.Baseline, 0); err == nil {
		t.Error("fewer processes than cores accepted")
	}
	if _, err := NewTimeshared(cfg, "x", []string{"gzip", "doom3", "mcf", "vpr", "art"}, core.Baseline, 0); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestTimesharedFairness(t *testing.T) {
	// Six processes on four cores: every process must make progress and
	// the spread between the most- and least-served process must be
	// bounded (round-robin fairness).
	cfg := quickCfg()
	cfg.SimTime = 0.3
	r, err := NewTimeshared(cfg, "sixmix", sixBench(), core.PolicySpec{
		Mechanism: core.DVFS, Scope: core.Distributed}, 20e-3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Preemptions == 0 {
		t.Fatal("no fairness preemptions with 6 procs on 4 cores")
	}
	var min, max float64 = 1e18, 0
	for _, p := range r.Scheduler().Processes() {
		cy := p.Lifetime.AdjCycles
		if cy <= 0 {
			t.Errorf("process %s starved", p.Benchmark)
		}
		if cy < min {
			min = cy
		}
		if cy > max {
			max = cy
		}
	}
	// With 6 procs on 4 cores each is entitled to ~2/3 of a core;
	// thermal throttling skews shares, but nobody should get less than
	// a quarter of the largest share.
	if min < max/4 {
		t.Errorf("unfair shares: min %.3g vs max %.3g adjusted cycles", min, max)
	}
}

func TestTimesharedWithMigrationSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	cfg := quickCfg()
	cfg.SimTime = 0.2
	for _, kind := range []core.MigrationKind{core.CounterMigration, core.SensorMigration} {
		r, err := NewTimeshared(cfg, "sixmix", sixBench(), core.PolicySpec{
			Mechanism: core.DVFS, Scope: core.Distributed, Migration: kind}, 20e-3)
		if err != nil {
			t.Fatal(err)
		}
		m, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if m.EmergencySeconds > 0.001 {
			t.Errorf("%v: thermal emergencies under multiprogramming", kind)
		}
		if m.BIPS() <= 0 {
			t.Errorf("%v: no throughput", kind)
		}
		// Migration must not break fairness: everyone still runs.
		for _, p := range r.Scheduler().Processes() {
			if p.Lifetime.AdjCycles <= 0 {
				t.Errorf("%v: process %s starved", kind, p.Benchmark)
			}
		}
	}
}

func TestTimesharedMatchesDedicatedWhenSquare(t *testing.T) {
	// With exactly four processes the time-shared runner must behave
	// like the standard one (no waiting set, no preemptions).
	cfg := quickCfg()
	mix := mustMix(t, "workload7")
	r, err := NewTimeshared(cfg, mix.Name, mix.Benchmarks[:], core.Baseline, 20e-3)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mt.Preemptions != 0 {
		t.Errorf("square time-shared run preempted %d times", mt.Preemptions)
	}
	std, err := New(cfg, mix, core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := std.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mt.Instructions != ms.Instructions {
		t.Errorf("square time-shared run diverged: %v vs %v instructions",
			mt.Instructions, ms.Instructions)
	}
}
