package sim

import (
	"math"
	"strconv"
	"strings"

	"multitherm/internal/floorplan"
	"multitherm/internal/memo"
	"multitherm/internal/power"
	"multitherm/internal/thermal"
	"multitherm/internal/trace"
	"multitherm/internal/uarch"
	"multitherm/internal/units"
	"multitherm/internal/workload"
)

// This file holds the construction caches that make runners cheap to
// build in a parallel sweep. Both caches hold values that are
// strictly read-only after insertion — recorded traces (each runner
// walks a shared Trace through its own Cursor) and warmup temperature
// vectors (installed by copy) — so the copy-on-write memo.Map gives
// lock-free, contention-free sharing across concurrently constructed
// runners: every hit is one atomic load on an immutable snapshot.

// traceKey identifies one recorded benchmark trace. uarch.Config is a
// flat comparable struct, so the key works directly as a map key.
type traceKey struct {
	uc    uarch.Config
	bench string
	n     int
}

var traceCache memo.Map[traceKey, *trace.Trace]

// recordedTrace returns the looping activity trace for a benchmark
// under a core configuration, recording it on first use. Traces are
// deterministic functions of (config, benchmark, length) and immutable
// once recorded, so every runner in a sweep shares one copy.
func recordedTrace(uc uarch.Config, bench string, n int) (*trace.Trace, error) {
	return traceCache.LoadOrStore(traceKey{uc: uc, bench: bench, n: n},
		func() (*trace.Trace, error) {
			prof, err := workload.Profile(bench)
			if err != nil {
				return nil, err
			}
			gen, err := uarch.NewGenerator(uc, prof)
			if err != nil {
				return nil, err
			}
			return trace.Record(gen, n)
		})
}

// powerKey is a comparable projection of power.Config: the scalar
// fields verbatim plus the UnitDynamic map spread into a fixed
// per-kind array (blocks only ever carry enum kinds, so the array
// captures every entry the calculator can read). Being a flat value
// type it hashes without formatting anything, unlike the old
// fmt.Sprintf("%+v") fingerprint, and cannot silently collide if a
// field's print format changes.
type powerKey struct {
	vMax, vFloor, sMin                 float64
	leakPerArea, leakBeta, leakT0      float64
	stallDynFraction, globalDynamicScl float64
	unitDynamic                        [floorplan.NumUnitKinds]float64
}

func powerFingerprint(c power.Config) powerKey {
	k := powerKey{
		vMax: c.VMax, vFloor: c.VFloor, sMin: float64(c.SMin),
		leakPerArea: c.LeakagePerArea, leakBeta: c.LeakageBeta, leakT0: float64(c.LeakageT0),
		stallDynFraction: c.StallDynFraction, globalDynamicScl: c.GlobalDynamicScale,
	}
	//mtlint:allow maprange scatter into a fixed array indexed by key; order-insensitive
	for kind, w := range c.UnitDynamic {
		if kind >= 0 && kind < floorplan.NumUnitKinds {
			k.unitDynamic[kind] = float64(w)
		}
	}
	return k
}

// warmupKey identifies one pre-warm steady state. Floorplans are
// memoized singletons, so pointer identity suffices; power.Config is
// projected into the comparable powerKey. caps folds in CoreMaxScale
// (bit-exact, one hex word per core), since heterogeneous frequency
// caps change the average warmup power.
type warmupKey struct {
	fp      *floorplan.Floorplan
	tp      thermal.Params
	uc      uarch.Config
	pw      powerKey
	benches string // the initial core assignment, in order
	caps    string
	nTrace  int
	target  float64 // warmup target temperature, °C
}

var warmupCache memo.Map[warmupKey, units.TempVec] // read-only node temps

func coreCapsFingerprint(caps []units.ScaleFactor) string {
	if len(caps) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, v := range caps {
		sb.WriteString(strconv.FormatUint(math.Float64bits(float64(v)), 16))
		sb.WriteByte('\x1f')
	}
	return sb.String()
}

// initialTemps returns the pre-warmed full-node temperature vector for
// this runner's configuration: the steady state of the mix's average
// power, linearly scaled so the hottest die block starts at the warmup
// target. The two steady-state LU solves behind it dominate runner
// startup, and are identical for every run sharing (floorplan, thermal
// params, power config, core config, initial benchmarks, trace length,
// target) — a sweep over N policies recomputes them once, not N times.
// The returned slice is shared and must not be mutated.
func (r *Runner) initialTemps() (units.TempVec, error) {
	cfg := r.cfg
	nb := len(cfg.Floorplan.Blocks)
	target := cfg.Policy.ThresholdC - cfg.Policy.SetpointMarginC - cfg.WarmupMarginC
	key := warmupKey{
		fp:      cfg.Floorplan,
		tp:      cfg.Thermal,
		uc:      cfg.Uarch,
		pw:      powerFingerprint(cfg.Power),
		benches: strings.Join(r.benchNames[:r.nCores], "\x1f"),
		caps:    coreCapsFingerprint(cfg.CoreMaxScale),
		nTrace:  cfg.TraceIntervals,
		target:  float64(target),
	}
	return warmupCache.LoadOrStore(key, func() (units.TempVec, error) {
		// Linear-scale the average power so the hottest block starts at
		// the target (WarmupMarginC below the PI setpoint).
		avgPower := r.averageTracePower()
		warm, err := r.model.SteadyState(avgPower)
		if err != nil {
			return nil, err
		}
		maxWarm := warm[0]
		for _, v := range warm[:nb] {
			if v > maxWarm {
				maxWarm = v
			}
		}
		amb := float64(cfg.Thermal.Ambient)
		alpha := 1.0
		if maxWarm > amb {
			alpha = (float64(target) - amb) / (maxWarm - amb)
		}
		if alpha < 0 {
			alpha = 0
		}
		if alpha > 1 {
			alpha = 1
		}
		scaled := make(units.PowerVec, nb)
		for i, p := range avgPower {
			scaled[i] = p * alpha
		}
		return r.model.SteadyState(scaled)
	})
}
