package sim

import (
	"testing"

	"multitherm/internal/core"
	"multitherm/internal/units"
)

// TestProbeReceivesTypedState pins the probe callback's dimensional
// contract: the clock arrives as units.Seconds on the sample-period
// grid, and the block temperatures arrive as a units.TempVec sized to
// the thermal model — typed at the signature, plausible in value.
func TestProbeReceivesTypedState(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 0.01
	r, err := New(cfg, mustMix(t, "workload1"), core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	blocks := r.model.NumBlocks()
	var prev units.Seconds = -1
	checked := false
	r.SetProbe(func(now units.Seconds, tick int64, temps units.TempVec, cmds []core.CoreCommand, assign []int) {
		// Compile-time half: the arguments land in typed variables with
		// no conversion, so the probe seam cannot silently regress to
		// raw float64 state.
		var clock units.Seconds = now
		var tv units.TempVec = temps

		if clock <= prev {
			t.Fatalf("tick %d: clock %v did not advance past %v", tick, clock, prev)
		}
		want := units.Seconds(tick) * cfg.Policy.SamplePeriod
		if diff := float64(clock - want); diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("tick %d: clock %v off the sample grid (want %v)", tick, clock, want)
		}
		prev = clock

		if tv.Len() != blocks {
			t.Fatalf("tick %d: probe saw %d block temps, model has %d", tick, tv.Len(), blocks)
		}
		for i := 0; i < tv.Len(); i++ {
			c := tv.At(i)
			if c < cfg.Thermal.Ambient-1 || c > 150 {
				t.Fatalf("tick %d: block %d temperature %v implausible", tick, i, c)
			}
		}
		checked = true
	})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("probe never ran")
	}
}
