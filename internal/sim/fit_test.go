package sim

import (
	"testing"

	"multitherm/internal/power"
	"multitherm/internal/trace"
	"multitherm/internal/uarch"
	"multitherm/internal/workload"
)

// benchTargetTemp maps each benchmark to its target Banias steady-state
// temperature: Table 1 values where published, interpolated analogues
// for the rest of the population.
var benchTargetTemp = map[string]float64{
	"sixtrack": 71, "gzip": 70, "bzip2": 69.5, "facerec": 72, "parser": 67,
	"twolf": 67, "gcc": 67, "vpr": 67, "vortex": 66, "perlbmk": 66,
	"mesa": 67, "crafty": 65, "fma3d": 67, "eon": 64, "lucas": 64,
	"swim": 62, "mgrid": 62, "applu": 62, "wupwise": 61, "ammp": 65,
	"art": 57, "mcf": 59,
}

// corePower computes the mean core-0 dynamic power of a profile.
func corePower(t *testing.T, cfg Config, calc *power.Calculator, prof uarch.Profile) float64 {
	gen, err := uarch.NewGenerator(cfg.Uarch, prof)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := trace.Record(gen, 720)
	var mean uarch.Sample
	for i := 0; i < tr.Len(); i++ {
		s := tr.At(int64(i))
		for k, v := range s.Activity {
			mean.Activity[k] += v
		}
	}
	for k := range mean.Activity {
		mean.Activity[k] /= float64(tr.Len())
	}
	var p float64
	for i, blk := range cfg.Floorplan.Blocks {
		if blk.Core == 0 {
			p += float64(calc.MaxDynamic(i)) * mean.Activity[int(blk.Kind)]
		}
	}
	return p
}

// TestFitPowerFactors solves for the PowerFactor of every benchmark so
// its mean core dynamic power is proportional to (targetTemp - 49),
// normalized to 22 W for the hottest. Run with -v to print the fitted
// table for benchmarks.go.
func TestFitPowerFactors(t *testing.T) {
	if testing.Short() {
		t.Skip("fitting utility")
	}
	cfg := DefaultConfig()
	// Targets are expressed at unit duress; the global multiplier is a
	// separate calibration knob.
	cfg.Power.GlobalDynamicScale = 1.0
	calc, err := power.NewCalculator(cfg.Floorplan, cfg.Power)
	if err != nil {
		t.Fatal(err)
	}
	const (
		tIdle = 48.0
		tHot  = 71.0
		pHot  = 22.0
	)
	for _, b := range workload.Benchmarks() {
		prof := workload.MustProfile(b)
		target := (benchTargetTemp[b] - tIdle) / (tHot - tIdle) * pHot
		// Secant iteration on PF.
		pf := 1.0
		for iter := 0; iter < 20; iter++ {
			prof.PowerFactor = pf
			got := corePower(t, cfg, calc, prof)
			prof.PowerFactor = pf * 1.05
			got2 := corePower(t, cfg, calc, prof)
			slope := (got2 - got) / (0.05 * pf)
			if slope < 1e-6 {
				break
			}
			next := pf + (target-got)/slope
			if next < 0.05 {
				next = 0.05
			}
			if next > 3 {
				next = 3
			}
			if diff := next - pf; diff < 1e-4 && diff > -1e-4 {
				pf = next
				break
			}
			pf = next
		}
		prof.PowerFactor = pf
		got := corePower(t, cfg, calc, prof)
		t.Logf("\"%s\": %.3f, // target %.2f W, got %.2f W", b, pf, target, got)
	}
}
