package sim

import (
	"testing"

	"multitherm/internal/core"
	"multitherm/internal/metrics"
	"multitherm/internal/units"
)

// batchLaneSpec describes one lane of a test batch.
type batchLaneSpec struct {
	mix     string
	spec    core.PolicySpec
	simTime units.Seconds
	caps    []units.ScaleFactor // CoreMaxScale, nil = homogeneous
}

func newLaneRunner(t *testing.T, ls batchLaneSpec) *Runner {
	t.Helper()
	cfg := quickCfg()
	if ls.simTime > 0 {
		cfg.SimTime = ls.simTime
	}
	cfg.CoreMaxScale = ls.caps
	r, err := New(cfg, mustMix(t, ls.mix), ls.spec)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// requireRunsEqual compares every metrics field that the simulation
// produces, bit-exactly — the batched path must not perturb a single
// rounding anywhere.
func requireRunsEqual(t *testing.T, lane int, got, want *metrics.Run) {
	t.Helper()
	if got.Instructions != want.Instructions {
		t.Errorf("lane %d: Instructions %v != %v", lane, got.Instructions, want.Instructions)
	}
	for c := range want.PerCoreInstr {
		if got.PerCoreInstr[c] != want.PerCoreInstr[c] {
			t.Errorf("lane %d: PerCoreInstr[%d] %v != %v", lane, c, got.PerCoreInstr[c], want.PerCoreInstr[c])
		}
	}
	if got.WorkSeconds != want.WorkSeconds {
		t.Errorf("lane %d: WorkSeconds %v != %v", lane, got.WorkSeconds, want.WorkSeconds)
	}
	if got.PenaltySeconds != want.PenaltySeconds {
		t.Errorf("lane %d: PenaltySeconds %v != %v", lane, got.PenaltySeconds, want.PenaltySeconds)
	}
	if got.StallSeconds != want.StallSeconds {
		t.Errorf("lane %d: StallSeconds %v != %v", lane, got.StallSeconds, want.StallSeconds)
	}
	if got.MaxTempC != want.MaxTempC {
		t.Errorf("lane %d: MaxTempC %v != %v", lane, got.MaxTempC, want.MaxTempC)
	}
	if got.EmergencySeconds != want.EmergencySeconds {
		t.Errorf("lane %d: EmergencySeconds %v != %v", lane, got.EmergencySeconds, want.EmergencySeconds)
	}
	if got.Migrations != want.Migrations {
		t.Errorf("lane %d: Migrations %v != %v", lane, got.Migrations, want.Migrations)
	}
	if got.Preemptions != want.Preemptions {
		t.Errorf("lane %d: Preemptions %v != %v", lane, got.Preemptions, want.Preemptions)
	}
	if got.Transitions != want.Transitions {
		t.Errorf("lane %d: Transitions %v != %v", lane, got.Transitions, want.Transitions)
	}
	if got.SimTime != want.SimTime {
		t.Errorf("lane %d: SimTime %v != %v", lane, got.SimTime, want.SimTime)
	}
}

// TestBatchRunnerMatchesSequential is the end-to-end determinism guard
// of the batched sweep: a mixed 8-lane batch — different mechanisms,
// scopes, migration policies, workloads, and one heterogeneous-cap
// lane — must produce metrics bit-identical to eight sequential
// Runner.Run calls.
func TestBatchRunnerMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("eight full simulations twice over")
	}
	lanes := []batchLaneSpec{
		{mix: "workload1", spec: core.Baseline},
		{mix: "workload1", spec: core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed}},
		{mix: "workload7", spec: core.PolicySpec{Mechanism: core.DVFS, Scope: core.Global}},
		{mix: "workload7", spec: core.PolicySpec{Mechanism: core.StopGo, Scope: core.Distributed}},
		{mix: "workload8", spec: core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed, Migration: core.CounterMigration}},
		{mix: "workload8", spec: core.PolicySpec{Mechanism: core.StopGo, Scope: core.Global, Migration: core.SensorMigration}},
		{mix: "workload2", spec: core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed}, caps: []units.ScaleFactor{1, 1, 0.7, 0.7}},
		{mix: "workload3", spec: core.PolicySpec{Mechanism: core.StopGo, Scope: core.Distributed}},
	}

	want := make([]*metrics.Run, len(lanes))
	for i, ls := range lanes {
		m, err := newLaneRunner(t, ls).Run()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m
	}

	runners := make([]*Runner, len(lanes))
	for i, ls := range lanes {
		runners[i] = newLaneRunner(t, ls)
	}
	br, err := NewBatchRunner(runners)
	if err != nil {
		t.Fatal(err)
	}
	got, err := br.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range lanes {
		requireRunsEqual(t, i, got[i], want[i])
	}
}

// TestBatchRunnerRagged runs a 5-lane batch (not a multiple of the
// SIMD pair width) whose lanes finish at different simulated lengths;
// early-finishing lanes must seal their metrics while the rest keep
// stepping, still bit-identical to sequential runs.
func TestBatchRunnerRagged(t *testing.T) {
	lanes := []batchLaneSpec{
		{mix: "workload1", spec: core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed}, simTime: 0.02},
		{mix: "workload7", spec: core.PolicySpec{Mechanism: core.StopGo, Scope: core.Global}, simTime: 0.05},
		{mix: "workload8", spec: core.Baseline, simTime: 0.03},
		{mix: "workload2", spec: core.PolicySpec{Mechanism: core.DVFS, Scope: core.Global}, simTime: 0.05},
		{mix: "workload3", spec: core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed}, simTime: 0.01},
	}
	want := make([]*metrics.Run, len(lanes))
	for i, ls := range lanes {
		m, err := newLaneRunner(t, ls).Run()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m
	}
	runners := make([]*Runner, len(lanes))
	for i, ls := range lanes {
		runners[i] = newLaneRunner(t, ls)
	}
	br, err := NewBatchRunner(runners)
	if err != nil {
		t.Fatal(err)
	}
	got, err := br.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range lanes {
		if got[i].SimTime != want[i].SimTime {
			t.Fatalf("lane %d: SimTime %v != %v", i, got[i].SimTime, want[i].SimTime)
		}
		requireRunsEqual(t, i, got[i], want[i])
	}
}

// TestBatchRunnerRejectsMismatch checks the adoption-time guards.
func TestBatchRunnerRejectsMismatch(t *testing.T) {
	if _, err := NewBatchRunner(nil); err == nil {
		t.Error("empty batch accepted")
	}

	a := newLaneRunner(t, batchLaneSpec{mix: "workload1", spec: core.Baseline})

	cfg := quickCfg()
	cfg.Policy.SamplePeriod *= 2
	b, err := New(cfg, mustMix(t, "workload1"), core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatchRunner([]*Runner{a, b}); err == nil {
		t.Error("mismatched sample periods accepted")
	}

	cfg = quickCfg()
	cfg.Thermal.Ambient += 5 // different template
	c, err := New(cfg, mustMix(t, "workload1"), core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatchRunner([]*Runner{a, c}); err == nil {
		t.Error("mismatched thermal templates accepted")
	}
}

func TestDefaultBatchSizeSane(t *testing.T) {
	if n := DefaultBatchSize(); n < 4 || n > 16 {
		t.Fatalf("DefaultBatchSize() = %d, want within [4,16]", n)
	}
}
