package sim

import (
	"math"
	"testing"

	"multitherm/internal/core"
	"multitherm/internal/units"
	"multitherm/internal/workload"
)

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.SimTime = 0.05
	return cfg
}

func mustMix(t testing.TB, name string) workload.Mix {
	t.Helper()
	m, err := workload.MixByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 0
	if _, err := New(cfg, mustMix(t, "workload1"), core.Baseline); err == nil {
		t.Error("zero sim time accepted")
	}
	cfg = quickCfg()
	cfg.TraceIntervals = 0
	if _, err := New(cfg, mustMix(t, "workload1"), core.Baseline); err == nil {
		t.Error("zero trace length accepted")
	}
	cfg = quickCfg()
	bad := workload.Mix{Name: "bad", Benchmarks: [4]string{"doom3", "gzip", "mcf", "vpr"}}
	if _, err := New(cfg, bad, core.Baseline); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := quickCfg()
	spec := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed, Migration: core.CounterMigration}
	run := func() float64 {
		r, err := New(cfg, mustMix(t, "workload7"), spec)
		if err != nil {
			t.Fatal(err)
		}
		m, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m.Instructions
	}
	if a, b := run(), run(); a != b {
		t.Errorf("simulation not deterministic: %v vs %v", a, b)
	}
}

func TestAllPoliciesRespectThreshold(t *testing.T) {
	// No policy may allow more than trivial time above 84.2 °C — the
	// paper's policies "avoid all thermal emergencies".
	if testing.Short() {
		t.Skip("multi-policy simulation")
	}
	cfg := quickCfg()
	cfg.SimTime = 0.1
	for _, spec := range core.Taxonomy() {
		r, err := New(cfg, mustMix(t, "workload8"), spec)
		if err != nil {
			t.Fatal(err)
		}
		m, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if m.EmergencySeconds > 0.001 {
			t.Errorf("%s: %.2f ms above threshold", spec, float64(m.EmergencySeconds)*1e3)
		}
		if m.MaxTempC > cfg.Policy.ThresholdC+1.0 {
			t.Errorf("%s: max temp %.2f °C far above threshold", spec, float64(m.MaxTempC))
		}
	}
}

func TestUnthrottledExceedsThreshold(t *testing.T) {
	// Sanity: without DTM the chip must actually overheat — otherwise
	// the whole study is unconstrained.
	cfg := quickCfg()
	cfg.SimTime = 0.1
	r, err := NewUnthrottled(cfg, mustMix(t, "workload2"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxTempC <= cfg.Policy.ThresholdC {
		t.Errorf("unthrottled max temp %.2f °C does not exceed the threshold", float64(m.MaxTempC))
	}
	if d := m.DutyCycle(); math.Abs(float64(d)-1) > 1e-9 {
		t.Errorf("unthrottled duty = %v, want 1.0", d)
	}
}

func TestDVFSBeatsStopGo(t *testing.T) {
	// The paper's central quantitative claim at workload granularity.
	cfg := quickCfg()
	cfg.SimTime = 0.15
	mix := mustMix(t, "workload5")
	sg, err := New(cfg, mix, core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := sg.Run()
	if err != nil {
		t.Fatal(err)
	}
	dv, err := New(cfg, mix, core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed})
	if err != nil {
		t.Fatal(err)
	}
	mdv, err := dv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mdv.BIPS() < 1.5*msg.BIPS() {
		t.Errorf("dist DVFS %.2f BIPS not well above dist stop-go %.2f", float64(mdv.BIPS()), float64(msg.BIPS()))
	}
	if mdv.Transitions == 0 {
		t.Error("DVFS run recorded no PLL transitions")
	}
	if msg.StallSeconds == 0 {
		t.Error("stop-go run recorded no stall time")
	}
}

func TestGlobalWorseThanDistributed(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 0.15
	mix := mustMix(t, "workload10") // widest heterogeneity
	for _, mech := range []core.Mechanism{core.StopGo, core.DVFS} {
		g, err := New(cfg, mix, core.PolicySpec{Mechanism: mech, Scope: core.Global})
		if err != nil {
			t.Fatal(err)
		}
		mg, err := g.Run()
		if err != nil {
			t.Fatal(err)
		}
		d, err := New(cfg, mix, core.PolicySpec{Mechanism: mech, Scope: core.Distributed})
		if err != nil {
			t.Fatal(err)
		}
		md, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		if md.BIPS() <= mg.BIPS() {
			t.Errorf("%v: distributed %.2f BIPS not above global %.2f", mech, float64(md.BIPS()), float64(mg.BIPS()))
		}
	}
}

func TestMigrationImprovesStopGo(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	cfg := quickCfg()
	cfg.SimTime = 0.2
	mix := mustMix(t, "workload7")
	base, err := New(cfg, mix, core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []core.MigrationKind{core.CounterMigration, core.SensorMigration} {
		r, err := New(cfg, mix, core.PolicySpec{
			Mechanism: core.StopGo, Scope: core.Distributed, Migration: kind})
		if err != nil {
			t.Fatal(err)
		}
		m, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if m.Migrations == 0 {
			t.Errorf("%v: no migrations occurred", kind)
		}
		if m.BIPS() < mb.BIPS() {
			t.Errorf("%v: migration made stop-go worse: %.2f vs %.2f", kind, float64(m.BIPS()), float64(mb.BIPS()))
		}
	}
}

func TestMigrationPenaltyAccounted(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 0.15
	spec := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed, Migration: core.SensorMigration}
	r, err := New(cfg, mustMix(t, "workload3"), spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Migrations > 0 && m.PenaltySeconds <= 0 {
		t.Error("migrations happened but no penalty time recorded")
	}
}

func TestProbeObservesEveryTick(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 0.01
	r, err := New(cfg, mustMix(t, "workload1"), core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	var ticks int64
	r.SetProbe(func(now units.Seconds, tick int64, temps units.TempVec, cmds []core.CoreCommand, assign []int) {
		ticks++
		if len(cmds) != 4 || len(assign) != 4 {
			t.Fatalf("probe saw %d cmds / %d assignment entries", len(cmds), len(assign))
		}
	})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.SimTime/cfg.Policy.SamplePeriod + 0.5)
	if ticks != want {
		t.Errorf("probe ticks = %d, want %d", ticks, want)
	}
}

func TestDutyCyclePredictsThroughput(t *testing.T) {
	// §5.3 metric validation at a single-workload level: BIPS relative
	// to the unthrottled run matches the adjusted duty cycle within a
	// few points.
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	cfg := quickCfg()
	cfg.SimTime = 0.2
	mix := mustMix(t, "workload9")
	r, err := New(cfg, mix, core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed})
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnthrottled(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := u.Run()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(m.BIPS() / mu.BIPS())
	if math.Abs(ratio-float64(m.DutyCycle())) > 0.08 {
		t.Errorf("BIPS ratio %.3f vs duty %.3f: duty metric not predictive", ratio, float64(m.DutyCycle()))
	}
}

func TestHeterogeneousCoreCaps(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 0.05
	cfg.CoreMaxScale = []units.ScaleFactor{1, 1, 0.5, 0.5}
	mix := mustMix(t, "workload1")
	r, err := New(cfg, mix, core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed})
	if err != nil {
		t.Fatal(err)
	}
	maxSeen := make([]units.ScaleFactor, 4)
	r.SetProbe(func(now units.Seconds, tick int64, temps units.TempVec, cmds []core.CoreCommand, assign []int) {
		for c := range cmds {
			s := cmds[c].Scale
			if len(cfg.CoreMaxScale) == 4 && s > cfg.CoreMaxScale[c] {
				s = cfg.CoreMaxScale[c]
			}
			if s > maxSeen[c] {
				maxSeen[c] = s
			}
		}
	})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// The capped cores never exceed their cap (checked via the clamp the
	// runner applies; the probe mirrors it).
	if maxSeen[2] > 0.5+1e-9 || maxSeen[3] > 0.5+1e-9 {
		t.Errorf("capped cores exceeded cap: %v", maxSeen)
	}
	// Bad cap vectors are rejected.
	cfg.CoreMaxScale = []units.ScaleFactor{1, 1}
	if _, err := New(cfg, mix, core.Baseline); err == nil {
		t.Error("wrong-length cap vector accepted")
	}
	cfg.CoreMaxScale = []units.ScaleFactor{1, 1, 1, 0.05}
	if _, err := New(cfg, mix, core.Baseline); err == nil {
		t.Error("cap below the DVFS floor accepted")
	}
}

func TestVoltageFloorRaisesDVFSPower(t *testing.T) {
	// With a regulator floor, reduced-frequency operation burns more
	// power than the pure cubic, so the DVFS equilibrium is slower.
	cfg := quickCfg()
	cfg.SimTime = 0.08
	mix := mustMix(t, "workload5")
	spec := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed}
	cubic, err := New(cfg, mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := cubic.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Power.VFloor = 0.7
	floored, err := New(cfg, mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := floored.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mf.DutyCycle() >= mc.DutyCycle() {
		t.Errorf("voltage floor should reduce sustainable duty: %.3f vs %.3f",
			float64(mf.DutyCycle()), float64(mc.DutyCycle()))
	}
}
