package sim

import (
	"fmt"
	"testing"

	"multitherm/internal/core"
	"multitherm/internal/metrics"
	"multitherm/internal/workload"
)

// TestTaxonomySweep runs all 12 policy cells at the current calibration
// and prints the Table 8 analogue. Paper targets:
//
//	no-mig:    gStop 0.62, dStop 1.00, gDVFS 2.07, dDVFS 2.51
//	counter:   gStop 1.18, dStop 2.02, gDVFS 2.18, dDVFS 2.57
//	sensor:    gStop 1.20, dStop 2.05, gDVFS 2.13, dDVFS 2.59
func TestTaxonomySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep utility")
	}
	cfg := DefaultConfig()
	cfg.SimTime = 0.25
	var base metrics.Summary
	for _, spec := range core.Taxonomy() {
		var runs []*metrics.Run
		for _, mix := range workload.Mixes {
			r, err := New(cfg, mix, spec)
			if err != nil {
				t.Fatal(err)
			}
			m, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, m)
		}
		s := metrics.Summarize(spec.String(), runs)
		if spec == core.Baseline {
			base = s
		}
		var mig int
		for _, r := range runs {
			mig += r.Migrations
		}
		rel := 0.0
		if base.MeanBIPS > 0 {
			rel = s.Relative(base)
		}
		t.Log(fmt.Sprintf("%-42s duty=%5.1f%% rel=%4.2f mig=%3d worstT=%5.2f",
			s.Policy, s.MeanDuty*100, rel, mig, s.WorstTemp))
	}
}
