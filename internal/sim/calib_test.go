package sim

import (
	"testing"

	"multitherm/internal/core"
	"multitherm/internal/metrics"
	"multitherm/internal/workload"
)

// TestCalibrationProbe prints headline numbers for the four
// non-migration policies across all 12 workloads; run with -v while
// tuning the power/thermal calibration. Paper targets (Table 5):
// stop-go 19.8% duty (0.62x), dist stop-go 32.6% (1.00x), global DVFS
// 66.5% (2.07x), dist DVFS 81.0% (2.51x).
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	cfg := DefaultConfig()
	cfg.SimTime = 0.3
	specs := []core.PolicySpec{
		{Mechanism: core.StopGo, Scope: core.Global},
		{Mechanism: core.StopGo, Scope: core.Distributed},
		{Mechanism: core.DVFS, Scope: core.Global},
		{Mechanism: core.DVFS, Scope: core.Distributed},
	}
	var summaries []metrics.Summary
	for _, spec := range specs {
		var runs []*metrics.Run
		for _, mix := range workload.Mixes {
			r, err := New(cfg, mix, spec)
			if err != nil {
				t.Fatal(err)
			}
			m, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, m)
		}
		summaries = append(summaries, metrics.Summarize(spec.String(), runs))
	}
	base := summaries[1]
	for _, s := range summaries {
		t.Logf("%-16s BIPS=%6.2f duty=%5.1f%% rel=%5.2f worstT=%6.2f emer=%6.2fms",
			s.Policy, float64(s.MeanBIPS), float64(s.MeanDuty)*100, s.Relative(base), float64(s.WorstTemp), float64(s.TotalEmer)*1e3)
	}
	for i, r := range summaries[1].Runs {
		t.Logf("  dist stop-go %-12s duty=%5.1f%%  distDVFS duty=%5.1f%%",
			r.Workload, r.DutyCycle()*100, summaries[3].Runs[i].DutyCycle()*100)
	}
}
