package sim

import (
	"fmt"

	"multitherm/internal/core"
	"multitherm/internal/migration"
	"multitherm/internal/osched"
	"multitherm/internal/power"
	"multitherm/internal/sensor"
	"multitherm/internal/thermal"
	"multitherm/internal/trace"
	"multitherm/internal/units"
)

// NewTimeshared builds a runner for more processes than cores: the OS
// round-robins the process population across the chip with the given
// timeslice (0 = osched.DefaultTimeslice), and the DTM policy operates
// on whatever is running — the multiprogrammed situation the paper's §6
// notes exists in any real system.
func NewTimeshared(cfg Config, label string, benchmarks []string, spec core.PolicySpec, timeslice float64) (*Runner, error) {
	if cfg.SimTime <= 0 {
		return nil, fmt.Errorf("sim: non-positive sim time")
	}
	if cfg.TraceIntervals <= 0 {
		return nil, fmt.Errorf("sim: non-positive trace length")
	}
	model, err := thermal.New(cfg.Floorplan, cfg.Thermal)
	if err != nil {
		return nil, err
	}
	calc, err := power.NewCalculator(cfg.Floorplan, cfg.Power)
	if err != nil {
		return nil, err
	}
	bank, err := sensor.CoreHotspots(cfg.Floorplan)
	if err != nil {
		return nil, err
	}
	nCores := cfg.Floorplan.NumCores()
	r := &Runner{
		cfg: cfg, spec: spec,
		label: label, benchNames: append([]string(nil), benchmarks...),
		timeshared: true,
		model:      model, calc: calc, bank: bank,
		nCores:    nCores,
		prevScale: make([]units.ScaleFactor, nCores),
	}
	for i := range r.prevScale {
		r.prevScale[i] = 1.0
	}
	for _, b := range benchmarks {
		tr, err := recordedTrace(cfg.Uarch, b, cfg.TraceIntervals)
		if err != nil {
			return nil, err
		}
		r.cursors = append(r.cursors, trace.NewCursor(tr))
	}
	r.sched, err = osched.NewTimeshared(benchmarks, nCores, timeslice)
	if err != nil {
		return nil, err
	}
	if cfg.MigrationEpoch > 0 {
		r.sched.SetEpoch(float64(cfg.MigrationEpoch))
	}
	if cfg.MigrationPenalty > 0 {
		r.sched.SetPenalty(float64(cfg.MigrationPenalty))
	}
	switch spec.Mechanism {
	case core.StopGo:
		r.throt, err = core.NewStopGo(cfg.Policy, spec.Scope, bank, nCores)
	case core.DVFS:
		r.throt, err = core.NewDVFS(cfg.Policy, spec.Scope, bank, nCores)
	default:
		err = fmt.Errorf("sim: unknown mechanism %v", spec.Mechanism)
	}
	if err != nil {
		return nil, err
	}
	switch spec.Migration {
	case core.CounterMigration:
		r.migCtl = migration.NewCounterBased()
	case core.SensorMigration:
		r.migCtl = migration.NewSensorBased(r.sched.NumProcesses(), nCores)
	}
	return r, nil
}

// Scheduler exposes the OS model (for fairness inspection in tests and
// experiments).
func (r *Runner) Scheduler() *osched.Scheduler { return r.sched }
