package sim

import (
	"testing"

	"multitherm/internal/core"
	"multitherm/internal/migration"
	"multitherm/internal/workload"
)

// rrController rotates all threads round-robin every epoch regardless
// of temperatures — the pure time-multiplexing mechanism, used as a
// lower bound on what informed migration should achieve.
type rrController struct{}

func (rrController) Name() string { return "round-robin" }
func (rrController) Step(ctx *migration.Context) ([]int, bool) {
	if !ctx.Sched.MayDecide(float64(ctx.Now)) {
		return nil, false
	}
	n := ctx.Sched.NumCores()
	cur := ctx.Sched.Assignment()
	next := make([]int, n)
	for c := 0; c < n; c++ {
		next[c] = cur[(c+1)%n]
	}
	return next, true
}

// TestRotationMechanismHelps verifies the heat-balancing premise of §6:
// under distributed stop-go, rotating threads across cores (even
// blindly) recovers work that single-core sawtoothing wastes.
func TestRotationMechanismHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation")
	}
	cfg := DefaultConfig()
	cfg.SimTime = 0.2
	mix, _ := workload.MixByName("workload3")
	base, err := New(cfg, mix, core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	rr, err := New(cfg, mix, core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	rr.migCtl = rrController{}
	mr, err := rr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mr.BIPS() < mb.BIPS()*1.05 {
		t.Errorf("blind rotation BIPS %.2f not above baseline %.2f",
			float64(mr.BIPS()), float64(mb.BIPS()))
	}
	// And informed (counter-based) migration must beat blind rotation.
	cb, err := New(cfg, mix, core.PolicySpec{
		Mechanism: core.StopGo, Scope: core.Distributed, Migration: core.CounterMigration})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := cb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mc.BIPS() < mr.BIPS()*0.95 {
		t.Errorf("counter-based migration %.2f well below blind rotation %.2f",
			float64(mc.BIPS()), float64(mr.BIPS()))
	}
}
