// Package sim is the thermal/timing simulator of paper §3.3 (the right
// half of Figure 2): it drives per-benchmark activity traces through a
// DTM policy, tracks progress in absolute time (each core may have its
// own cycle length under DVFS), feeds the resulting per-block power —
// dynamic plus temperature-dependent leakage — into the HotSpot-style
// thermal model, and accumulates the paper's metrics.
//
//mtlint:deterministic
//mtlint:units
package sim

import (
	"fmt"

	"multitherm/internal/core"
	"multitherm/internal/floorplan"
	"multitherm/internal/metrics"
	"multitherm/internal/migration"
	"multitherm/internal/osched"
	"multitherm/internal/power"
	"multitherm/internal/sensor"
	"multitherm/internal/thermal"
	"multitherm/internal/trace"
	"multitherm/internal/uarch"
	"multitherm/internal/units"
	"multitherm/internal/workload"
)

// Config assembles every model parameter of a simulation.
type Config struct {
	Floorplan *floorplan.Floorplan
	Thermal   thermal.Params
	Power     power.Config
	Uarch     uarch.Config
	Policy    core.Params

	// SimTime is the simulated silicon time (paper: 0.5 s).
	SimTime units.Seconds
	// TraceIntervals is the recorded trace length in 100K-cycle samples
	// before looping (≈3600 for the paper's 500M-instruction traces).
	TraceIntervals int
	// WarmupMarginC positions the initial thermal state: the package is
	// pre-warmed to the steady state whose hottest block sits this far
	// below the PI setpoint.
	WarmupMarginC units.Celsius

	// MigrationEpoch/MigrationPenalty override the OS defaults when
	// positive (for ablations).
	MigrationEpoch   units.Seconds
	MigrationPenalty units.Seconds

	// CoreMaxScale optionally caps each core's frequency scale,
	// modeling performance-heterogeneous cores (the paper's §9
	// future-work axis): a core capped at 0.7 is a "little" core that
	// tops out at 70% of nominal frequency and correspondingly lower
	// power. Empty means all cores reach full speed.
	CoreMaxScale []units.ScaleFactor
}

// DefaultConfig returns the paper's experimental configuration.
func DefaultConfig() Config {
	return Config{
		Floorplan:      floorplan.CMP4(),
		Thermal:        thermal.DefaultParams(),
		Power:          power.DefaultConfig(),
		Uarch:          uarch.DefaultConfig(),
		Policy:         core.DefaultParams(),
		SimTime:        0.5,
		TraceIntervals: 3600,
		WarmupMarginC:  1.0,
	}
}

// Probe observes simulator state once per control tick; used to extract
// time series such as Figure 5.
type Probe func(now units.Seconds, tick int64, blockTemps units.TempVec, cmds []core.CoreCommand, assignment []int)

// Runner executes one policy × workload simulation.
type Runner struct {
	cfg  Config
	spec core.PolicySpec
	mix  workload.Mix

	// label names the run in metrics; benchNames lists the process
	// population (== mix.Benchmarks for the paper's 4-process runs, a
	// longer list under time-shared multiprogramming).
	label      string
	benchNames []string
	timeshared bool

	model   *thermal.Model
	calc    *power.Calculator
	bank    *sensor.Bank
	sched   *osched.Scheduler
	throt   core.Throttler
	migCtl  migration.Controller
	cursors []*trace.Cursor

	nCores    int
	prevScale []units.ScaleFactor
	probe     Probe
}

// New builds a runner for the given policy cell and workload mix.
func New(cfg Config, mix workload.Mix, spec core.PolicySpec) (*Runner, error) {
	if cfg.SimTime <= 0 {
		return nil, fmt.Errorf("sim: non-positive sim time")
	}
	if cfg.TraceIntervals <= 0 {
		return nil, fmt.Errorf("sim: non-positive trace length")
	}
	model, err := thermal.New(cfg.Floorplan, cfg.Thermal)
	if err != nil {
		return nil, err
	}
	calc, err := power.NewCalculator(cfg.Floorplan, cfg.Power)
	if err != nil {
		return nil, err
	}
	bank, err := sensor.CoreHotspots(cfg.Floorplan)
	if err != nil {
		return nil, err
	}
	nCores := cfg.Floorplan.NumCores()
	if nCores != len(mix.Benchmarks) {
		return nil, fmt.Errorf("sim: %d cores but %d benchmarks", nCores, len(mix.Benchmarks))
	}
	if len(cfg.CoreMaxScale) != 0 && len(cfg.CoreMaxScale) != nCores {
		return nil, fmt.Errorf("sim: CoreMaxScale has %d entries for %d cores", len(cfg.CoreMaxScale), nCores)
	}
	for _, cap := range cfg.CoreMaxScale {
		if cap < cfg.Policy.Limits.Min || cap > 1 {
			return nil, fmt.Errorf("sim: core scale cap %g outside [%g, 1]", cap, cfg.Policy.Limits.Min)
		}
	}

	r := &Runner{
		cfg: cfg, spec: spec, mix: mix,
		label: mix.Name, benchNames: append([]string(nil), mix.Benchmarks[:]...),
		model: model, calc: calc, bank: bank,
		nCores:    nCores,
		prevScale: make([]units.ScaleFactor, nCores),
	}
	for i := range r.prevScale {
		r.prevScale[i] = 1.0
	}

	// One looping trace per benchmark (Figure 2's Turandot + PowerTimer
	// stage), recorded once per (config, benchmark) and shared; each
	// runner walks the shared trace through its own cursor.
	for _, b := range r.benchNames {
		tr, err := recordedTrace(cfg.Uarch, b, cfg.TraceIntervals)
		if err != nil {
			return nil, err
		}
		r.cursors = append(r.cursors, trace.NewCursor(tr))
	}

	r.sched = osched.NewScheduler(r.benchNames)
	if cfg.MigrationEpoch > 0 {
		r.sched.SetEpoch(float64(cfg.MigrationEpoch))
	}
	if cfg.MigrationPenalty > 0 {
		r.sched.SetPenalty(float64(cfg.MigrationPenalty))
	}

	switch spec.Mechanism {
	case core.StopGo:
		r.throt, err = core.NewStopGo(cfg.Policy, spec.Scope, bank, nCores)
	case core.DVFS:
		r.throt, err = core.NewDVFS(cfg.Policy, spec.Scope, bank, nCores)
	default:
		err = fmt.Errorf("sim: unknown mechanism %v", spec.Mechanism)
	}
	if err != nil {
		return nil, err
	}
	switch spec.Migration {
	case core.CounterMigration:
		r.migCtl = migration.NewCounterBased()
	case core.SensorMigration:
		r.migCtl = migration.NewSensorBased(r.sched.NumProcesses(), nCores)
	}
	return r, nil
}

// NewUnthrottled builds a runner with DTM disabled (for metric
// validation and calibration probes).
func NewUnthrottled(cfg Config, mix workload.Mix) (*Runner, error) {
	r, err := New(cfg, mix, core.Baseline)
	if err != nil {
		return nil, err
	}
	r.throt = core.NewUnthrottled(r.nCores)
	r.migCtl = nil
	r.spec = core.PolicySpec{Mechanism: core.StopGo, Scope: core.Distributed, Migration: core.NoMigration}
	return r, nil
}

// SetProbe installs a per-tick observer.
func (r *Runner) SetProbe(p Probe) { r.probe = p }

// Throttler exposes the inner-loop policy (for tests).
func (r *Runner) Throttler() core.Throttler { return r.throt }

// averageTracePower estimates the mean per-block power of the mix on
// the initial assignment, used only for pre-warming the package.
func (r *Runner) averageTracePower() units.PowerVec {
	nb := len(r.cfg.Floorplan.Blocks)
	activity := make([]float64, nb)
	shared := make([]float64, nb)
	for c := 0; c < r.nCores; c++ {
		tr := r.cursors[c].Trace()
		var mean uarch.Sample
		for i := 0; i < tr.Len(); i++ {
			s := tr.At(int64(i))
			for k, v := range s.Activity {
				mean.Activity[k] += v
			}
		}
		for k := range mean.Activity {
			mean.Activity[k] /= float64(tr.Len())
		}
		// The warmup estimate sees each core at the fastest it can
		// actually run: capped cores (heterogeneous chips) issue
		// correspondingly less shared-structure traffic.
		eff := 1.0
		if len(r.cfg.CoreMaxScale) == r.nCores {
			eff = float64(r.cfg.CoreMaxScale[c])
		}
		r.fillCoreActivity(activity, shared, c, &mean, eff)
	}
	r.finalizeShared(activity, shared)
	temps := make(units.TempVec, nb)
	for i := range temps {
		temps[i] = 75
	}
	cores := make([]power.CoreState, r.nCores)
	for i := range cores {
		cores[i] = power.CoreState{Scale: 1}
	}
	return r.calc.BlockPower(nil, activity, cores, temps)
}

// fillCoreActivity writes the activity of the thread on core c into the
// per-block activity vector, weighted by the core's effective scale for
// shared blocks.
func (r *Runner) fillCoreActivity(activity, shared []float64, c int, s *uarch.Sample, effScale float64) {
	for i, b := range r.cfg.Floorplan.Blocks {
		if b.Core == c {
			activity[i] = s.ActivityFor(b.Kind)
		} else if b.Core == floorplan.SharedCore {
			// Shared structures aggregate demand from all cores, scaled
			// by how fast each core actually issues traffic.
			shared[i] += s.ActivityFor(b.Kind) * effScale
		}
	}
}

// finalizeShared converts accumulated shared-block demand into a
// bounded activity factor. The summed per-core shares are lightly
// damped by half the core count — shared structures see interleaved,
// not perfectly additive, traffic — so the factor is floorplan-derived
// rather than assuming the paper's four cores.
func (r *Runner) finalizeShared(activity, shared []float64) {
	damp := float64(r.nCores) / 2
	if damp < 1 {
		damp = 1
	}
	for i, v := range shared {
		if v == 0 { //mtlint:allow floatcmp exact zero marks untouched shared blocks
			continue
		}
		a := v / damp
		if a > 1 {
			a = 1
		}
		activity[i] = a
		shared[i] = 0
	}
}

// Run executes the simulation and returns the collected metrics.
func (r *Runner) Run() (*metrics.Run, error) {
	st, err := r.begin(true)
	if err != nil {
		return nil, err
	}
	for !st.done() {
		if err := st.pre(); err != nil {
			return nil, err
		}
		r.model.Step(st.dt)
		st.post()
	}
	return st.finish()
}

// tickState is the per-run loop state of one simulation, split out of
// Run so the sequential driver above and the lockstep BatchRunner can
// execute the identical per-tick code — controllers, scheduling,
// power, metrics — with only the thermal advance differing between
// them. One tick is pre() (everything up to and including SetPower),
// the thermal step (owned by the driver), then post() (metrics and the
// probe).
type tickState struct {
	r     *Runner
	m     *metrics.Run
	dt    units.Seconds
	ticks int64
	tick  int64
	now   units.Seconds

	temps            units.TempVec
	powerVec         units.PowerVec
	activity, shared []float64

	coreStates []power.CoreState
	assignment []int
	cmds       []core.CoreCommand

	// migCtx is the reusable outer-loop context: everything but Now and
	// Tick is tick-invariant (BlockTemps aliases temps, refreshed in
	// place), so building it per tick would put one Context plus the
	// DynamicScale method-value closure on the heap every 27.5 µs of
	// simulated time.
	migCtx *migration.Context
}

// begin arms the thermal fast path (unless the caller owns it, as the
// batch driver does), installs the memoized warmup state, and returns
// the loop state positioned at tick 0.
func (r *Runner) begin(armExact bool) (*tickState, error) {
	cfg := r.cfg
	dt := cfg.Policy.SamplePeriod
	nb := len(cfg.Floorplan.Blocks)

	// Arm the exact ZOH fast path for the control tick where it beats
	// substepped RK4 on this machine (see thermal.PreferExact). The
	// discretization is memoized per (template, dt) and deterministic,
	// so parallel sweep workers share one build and produce identical
	// trajectories. Off-grid steps still fall back to RK4.
	if armExact && r.model.PreferExact(dt) {
		if err := r.model.UseExact(dt); err != nil {
			return nil, fmt.Errorf("sim: arming exact thermal step: %w", err)
		}
	}

	// Pre-warm the package to the memoized warmup steady state (hottest
	// block WarmupMarginC below the PI setpoint).
	warm, err := r.initialTemps()
	if err != nil {
		return nil, err
	}
	r.model.SetNodeTemps(warm)

	st := &tickState{
		r:          r,
		m:          metrics.NewRun(r.spec.String(), r.label, r.nCores),
		dt:         dt,
		ticks:      int64(cfg.SimTime/dt + 0.5),
		temps:      make(units.TempVec, nb),
		activity:   make([]float64, nb),
		shared:     make([]float64, nb),
		powerVec:   make(units.PowerVec, nb),
		coreStates: make([]power.CoreState, r.nCores),
		assignment: r.sched.Assignment(),
	}
	if r.migCtl != nil {
		// The scaling relation used to normalize observations back to
		// full speed depends on the inner mechanism: cubic for DVFS
		// (§6.1/§6.3), linear for stop-go, whose trend scale is a
		// run/stall duty rather than a frequency.
		dynScale := cfg.Power.DynamicScale
		if r.spec.Mechanism == core.StopGo {
			dynScale = func(s units.ScaleFactor) float64 { return float64(s) }
		}
		st.migCtx = &migration.Context{
			Sched: r.sched, BlockTemps: st.temps,
			Throttler: r.throt, FP: cfg.Floorplan, Bank: r.bank,
			DynScale: dynScale,
		}
	}
	return st, nil
}

// done reports whether the run has completed all its ticks.
func (s *tickState) done() bool { return s.tick >= s.ticks }

// pre executes the control half of one tick: throttling, preemption,
// migration, per-core progress accounting, and the power computation,
// ending with the power vector installed on the thermal model. The
// driver must follow it with exactly one dt-sized thermal advance and
// then post.
func (s *tickState) pre() error {
	r, m, cfg := s.r, s.m, s.r.cfg
	now, tick, dt := s.now, s.tick, s.dt
	temps, activity, shared := s.temps, s.activity, s.shared

	r.model.BlockTemps(temps)

	// Inner loop: throttling decision.
	s.cmds = r.throt.Decide(now, tick, temps)

	// Fairness preemption (time-shared multiprogramming): when more
	// processes than cores are runnable, the longest-waiting process
	// replaces the longest-running one each timeslice.
	if r.timeshared && r.sched.NeedsRotation(float64(now)) {
		before := r.sched.Assignment()
		next := r.sched.RotationAssignment(float64(now))
		if _, err := r.sched.Apply(float64(now), next); err != nil {
			return err
		}
		r.sched.MarkRotation(float64(now))
		m.Preemptions++
		for c := range next {
			if before[c] != next[c] {
				r.throt.NotifyMigration(c)
			}
		}
		s.assignment = r.sched.Assignment()
	}

	// Outer loop: migration decision (Figure 1).
	if r.migCtl != nil {
		ctx := s.migCtx
		ctx.Now, ctx.Tick = now, tick
		if assign, decided := r.migCtl.Step(ctx); decided {
			before := r.sched.Assignment()
			moved, err := r.sched.Apply(float64(now), assign)
			if err != nil {
				return err
			}
			if moved > 0 {
				m.Migrations++
				for c := range assign {
					if before[c] != assign[c] {
						r.throt.NotifyMigration(c)
					}
				}
			}
			s.assignment = r.sched.Assignment()
		}
	}

	// Per-core progress in absolute time.
	for c := 0; c < r.nCores; c++ {
		cmd := s.cmds[c]
		// Heterogeneous cores: a little core cannot exceed its cap
		// regardless of the thermal controller's output.
		if len(cfg.CoreMaxScale) == r.nCores && cmd.Scale > cfg.CoreMaxScale[c] {
			cmd.Scale = cfg.CoreMaxScale[c]
		}
		avail := dt
		if r.sched.InPenalty(c, float64(now)) {
			// Migration penalty consumes the whole tick (100 µs ≈ 3.6
			// ticks); count it as overhead.
			avail = 0
			m.PenaltySeconds += dt
		}
		if cmd.Stall {
			avail = 0
			m.StallSeconds += dt
			s.coreStates[c] = power.CoreState{Scale: 1, Stalled: true}
		} else {
			if cmd.Scale != r.prevScale[c] { //mtlint:allow floatcmp PLL retarget fires only on an exact setpoint change; both sides units.ScaleFactor, same dimension
				// PLL/voltage retarget cost (10 µs, Table 3).
				avail -= cfg.Policy.TransitionPenalty
				if avail < 0 {
					avail = 0
				}
				m.PenaltySeconds += cfg.Policy.TransitionPenalty
				m.Transitions++
				r.prevScale[c] = cmd.Scale
			}
			s.coreStates[c] = power.CoreState{Scale: cmd.Scale}
		}

		proc := r.sched.ProcessOn(c)
		cur := r.cursors[proc.ID]
		sample := cur.Current()
		effScale := 0.0
		if avail > 0 && !cmd.Stall {
			effScale = float64(cmd.Scale) * float64(avail/dt)
			retired := cur.Advance(effScale)
			m.Instructions += retired
			m.PerCoreInstr[c] += retired
			adjCycles := effScale * float64(cfg.Uarch.SampleCycles)
			proc.Account(float64(dt), osched.Counters{
				AdjCycles:    adjCycles,
				Instructions: retired,
				IntRFAccess:  sample.ActivityFor(floorplan.KindIntRegFile) * adjCycles,
				FPRFAccess:   sample.ActivityFor(floorplan.KindFPRegFile) * adjCycles,
			})
		}
		m.WorkSeconds += units.Seconds(effScale) * dt

		// Power inputs reflect the thread state even when stalled
		// (frozen state still leaks and burns residual clock power).
		r.fillCoreActivity(activity, shared, c, sample, effScale)
	}
	r.finalizeShared(activity, shared)

	// Power for the thermal step, with leakage-temperature feedback.
	r.calc.BlockPower(s.powerVec, activity, s.coreStates, temps)
	r.model.SetPower(s.powerVec)
	return nil
}

// post executes the metrics half of one tick, after the thermal
// advance: emergencies measured on true block temperatures, then the
// probe, then the clock.
func (s *tickState) post() {
	r, m := s.r, s.m
	hot, _ := r.model.MaxBlockTemp()
	if hot > m.MaxTempC {
		m.MaxTempC = hot
	}
	if hot > r.cfg.Policy.ThresholdC {
		m.EmergencySeconds += s.dt
	}
	if r.probe != nil {
		r.probe(s.now, s.tick, s.temps, s.cmds, s.assignment)
	}
	s.now += s.dt
	s.tick++
}

// finish seals and validates the collected metrics.
func (s *tickState) finish() (*metrics.Run, error) {
	s.m.SimTime = s.now
	if err := s.m.Validate(); err != nil {
		return nil, err
	}
	return s.m, nil
}
