package sim

import (
	"fmt"

	"multitherm/internal/metrics"
	"multitherm/internal/thermal"
)

// BatchRunner steps K independent runners in lockstep so their thermal
// advances fuse into one shared-propagator panel update (GEMV → GEMM,
// see thermal.BatchModel). Everything per-lane — controllers, sensors,
// schedulers, migration, metrics — runs unchanged through the same
// tickState code as the sequential Runner.Run, so a batched run is
// bit-identical to K sequential runs; only the thermal step is shared.
//
// Lanes may be ragged: runners with shorter SimTime finish early and
// drop out of the control loop while the rest keep stepping.
type BatchRunner struct {
	runners []*Runner
}

// NewBatchRunner validates that the runners can share one propagator —
// same thermal template and same control period — and adopts them.
// Each runner must be fresh (not yet Run).
func NewBatchRunner(runners []*Runner) (*BatchRunner, error) {
	if len(runners) == 0 {
		return nil, fmt.Errorf("sim: empty batch")
	}
	tmpl := runners[0].model.Template
	dt := runners[0].cfg.Policy.SamplePeriod
	for i, r := range runners {
		if r.model.Template != tmpl {
			return nil, fmt.Errorf("sim: batch lane %d (%s) uses a different thermal template", i, r.label)
		}
		if r.cfg.Policy.SamplePeriod != dt { //mtlint:allow floatcmp lanes must share the exact discretization grid; both sides units.Seconds, same dimension
			return nil, fmt.Errorf("sim: batch lane %d (%s) uses sample period %g, batch uses %g",
				i, r.label, r.cfg.Policy.SamplePeriod, dt)
		}
	}
	return &BatchRunner{runners: runners}, nil
}

// Run executes all lanes to completion and returns their metrics in
// lane order.
func (b *BatchRunner) Run() ([]*metrics.Run, error) {
	k := len(b.runners)
	states := make([]*tickState, k)
	for l, r := range b.runners {
		st, err := r.begin(false)
		if err != nil {
			return nil, fmt.Errorf("sim: batch lane %d (%s): %w", l, r.label, err)
		}
		states[l] = st
	}
	dt := states[0].dt

	// Fuse the thermal advance only where the sequential runner would
	// arm the exact path; otherwise each lane substeps RK4 on its own,
	// exactly as Runner.Run would, preserving bit-identity either way.
	// begin() has already installed the warmup state, so the adopted
	// temperatures carry into the panels.
	var batch *thermal.BatchModel
	if b.runners[0].model.PreferExact(dt) {
		models := make([]*thermal.Model, k)
		for l, r := range b.runners {
			models[l] = r.model
		}
		var err error
		if batch, err = thermal.NewBatch(models, dt); err != nil {
			return nil, fmt.Errorf("sim: batching thermal models: %w", err)
		}
	}

	results := make([]*metrics.Run, k)
	done := make([]bool, k)
	active := k
	for active > 0 {
		for l, st := range states {
			if done[l] {
				continue
			}
			if st.done() {
				res, err := st.finish()
				if err != nil {
					return nil, fmt.Errorf("sim: batch lane %d (%s): %w", l, b.runners[l].label, err)
				}
				results[l] = res
				done[l] = true
				active--
				continue
			}
			if err := st.pre(); err != nil {
				return nil, fmt.Errorf("sim: batch lane %d (%s): %w", l, b.runners[l].label, err)
			}
		}
		if active == 0 {
			break
		}
		if batch != nil {
			// Finished lanes ride along (their state keeps evolving, but
			// their metrics are sealed); active lanes advance in lockstep.
			batch.Step()
		} else {
			for l, st := range states {
				if !done[l] {
					b.runners[l].model.Step(st.dt)
				}
			}
		}
		for l, st := range states {
			if !done[l] {
				st.post()
			}
		}
	}
	return results, nil
}

// DefaultBatchSize picks a lane count that keeps the batched working
// set — three padded float64 panels (state in, state out, input term)
// per lane at the packed stride of 64 — inside half of a typical
// 32 KiB L1d, leaving the other half for the streamed propagator
// columns. That lands at 10 lanes; clamp to [4, 16] so the answer
// stays sane if the arithmetic drifts with future panel layouts.
func DefaultBatchSize() int {
	const (
		l1d     = 32 << 10
		perLane = 3 * 64 * 8
	)
	n := (l1d / 2) / perLane
	if n < 4 {
		n = 4
	}
	if n > 16 {
		n = 16
	}
	return n
}
