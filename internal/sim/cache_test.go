package sim

import (
	"fmt"
	"sync"
	"testing"

	"multitherm/internal/core"
	"multitherm/internal/metrics"
)

// snapshot renders every metric field for byte-exact comparison.
func snapshot(m *metrics.Run) string { return fmt.Sprintf("%+v", *m) }

// TestConcurrentConstructionDeterminism builds and runs many runners
// concurrently — hammering the shared trace and warmup caches — and
// checks every result is identical to a sequentially computed
// reference. This is the contract the parallel sweep engine depends on.
func TestConcurrentConstructionDeterminism(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 0.01
	specs := []core.PolicySpec{
		{Mechanism: core.DVFS, Scope: core.Distributed},
		{Mechanism: core.StopGo, Scope: core.Global},
		{Mechanism: core.DVFS, Scope: core.Distributed, Migration: core.CounterMigration},
	}
	mixes := []string{"workload1", "workload7", "workload12"}

	type cell struct{ si, mi int }
	ref := make(map[cell]string)
	for si, spec := range specs {
		for mi, mix := range mixes {
			r, err := New(cfg, mustMix(t, mix), spec)
			if err != nil {
				t.Fatal(err)
			}
			m, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			ref[cell{si, mi}] = snapshot(m)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(specs)*len(mixes))
	for si := range specs {
		for mi := range mixes {
			wg.Add(1)
			go func(si, mi int) {
				defer wg.Done()
				r, err := New(cfg, mustMix(t, mixes[mi]), specs[si])
				if err != nil {
					errs <- err
					return
				}
				m, err := r.Run()
				if err != nil {
					errs <- err
					return
				}
				if got := snapshot(m); got != ref[cell{si, mi}] {
					t.Errorf("cell (%d,%d): concurrent result differs from sequential:\n%s\nvs\n%s",
						si, mi, got, ref[cell{si, mi}])
				}
			}(si, mi)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRecordedTraceShared verifies the trace cache returns one shared
// immutable trace per (config, benchmark, length).
func TestRecordedTraceShared(t *testing.T) {
	cfg := quickCfg()
	a, err := recordedTrace(cfg.Uarch, "gzip", cfg.TraceIntervals)
	if err != nil {
		t.Fatal(err)
	}
	b, err := recordedTrace(cfg.Uarch, "gzip", cfg.TraceIntervals)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (config, benchmark, length) should share one trace")
	}
	c, err := recordedTrace(cfg.Uarch, "gzip", cfg.TraceIntervals+1)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different trace lengths must not share a trace")
	}
}

// TestWarmupCacheMatchesDirectSolve verifies the memoized warmup state
// equals the state a fresh runner computes, and that policy thresholds
// partition the cache (different targets → different states).
func TestWarmupCacheMatchesDirectSolve(t *testing.T) {
	cfg := quickCfg()
	r1, err := New(cfg, mustMix(t, "workload7"), core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := r1.initialTemps()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(cfg, mustMix(t, "workload7"), core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := r2.initialTemps()
	if err != nil {
		t.Fatal(err)
	}
	if &w1[0] != &w2[0] {
		t.Error("identical configurations should share one cached warmup vector")
	}

	cfg2 := cfg
	cfg2.Policy.ThresholdC += 2
	r3, err := New(cfg2, mustMix(t, "workload7"), core.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	w3, err := r3.initialTemps()
	if err != nil {
		t.Fatal(err)
	}
	if &w3[0] == &w1[0] {
		t.Error("different warmup targets must not share a cached state")
	}
}
