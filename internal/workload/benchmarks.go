// Package workload provides the benchmark population of the paper: 22
// profiles standing in for the 11 SPECint + 11 SPECfp CPU2000 programs
// the paper selects from (§3.4), and the 12 four-process workload mixes
// of Table 4. Profile parameters are calibrated so that (a) integer
// programs stress the integer register file and floating-point programs
// the FP register file, (b) memory-bound programs (mcf, art) run cool,
// and (c) the Banias single-core experiment reproduces the steady-state
// temperatures and ranges of paper Table 1.
package workload

import (
	"fmt"
	"sort"

	"multitherm/internal/uarch"
)

// profiles is the benchmark population, keyed by name.
var profiles = map[string]uarch.Profile{
	// ---------------- SPECint ----------------
	"gzip": {
		Name: "gzip", Category: uarch.SPECint,
		IntOps: 0.50, FPOps: 0.00, Loads: 0.22, Stores: 0.10, Branches: 0.18,
		ILP: 3.2, L1MissRate: 0.02, L2MissRate: 0.05, MLP: 2, Mispredict: 0.055,
		PowerFactor:    1.191,
		NoiseAmplitude: 0.04, Seed: 101,
	},
	"gcc": {
		Name: "gcc", Category: uarch.SPECint,
		IntOps: 0.42, FPOps: 0.00, Loads: 0.24, Stores: 0.14, Branches: 0.20,
		ILP: 2.4, L1MissRate: 0.05, L2MissRate: 0.10, MLP: 2, Mispredict: 0.06,
		PowerFactor:    1.503,
		NoiseAmplitude: 0.08, Seed: 102,
	},
	"mcf": {
		Name: "mcf", Category: uarch.SPECint,
		IntOps: 0.38, FPOps: 0.00, Loads: 0.35, Stores: 0.07, Branches: 0.20,
		ILP: 2.0, L1MissRate: 0.25, L2MissRate: 0.40, MLP: 2.2, Mispredict: 0.08,
		PowerFactor:    2.53,
		NoiseAmplitude: 0.05, Seed: 103,
	},
	"vpr": {
		Name: "vpr", Category: uarch.SPECint,
		IntOps: 0.44, FPOps: 0.02, Loads: 0.26, Stores: 0.08, Branches: 0.20,
		ILP: 2.3, L1MissRate: 0.04, L2MissRate: 0.12, MLP: 2, Mispredict: 0.07,
		PowerFactor:    1.523,
		NoiseAmplitude: 0.05, Seed: 104,
	},
	"crafty": {
		Name: "crafty", Category: uarch.SPECint,
		IntOps: 0.50, FPOps: 0.02, Loads: 0.22, Stores: 0.08, Branches: 0.18,
		ILP: 2.9, L1MissRate: 0.015, L2MissRate: 0.05, MLP: 2, Mispredict: 0.065,
		PowerFactor:    0.906,
		NoiseAmplitude: 0.04, Seed: 105,
	},
	"eon": {
		Name: "eon", Category: uarch.SPECint,
		IntOps: 0.40, FPOps: 0.10, Loads: 0.25, Stores: 0.10, Branches: 0.15,
		ILP: 2.9, L1MissRate: 0.01, L2MissRate: 0.05, MLP: 2, Mispredict: 0.04,
		PowerFactor:    0.687,
		NoiseAmplitude: 0.03, Seed: 106,
	},
	"parser": {
		Name: "parser", Category: uarch.SPECint,
		IntOps: 0.45, FPOps: 0.00, Loads: 0.25, Stores: 0.10, Branches: 0.20,
		ILP: 2.6, L1MissRate: 0.04, L2MissRate: 0.12, MLP: 2, Mispredict: 0.07,
		PowerFactor:    1.434,
		NoiseAmplitude: 0.05, Seed: 107,
	},
	"perlbmk": {
		Name: "perlbmk", Category: uarch.SPECint,
		IntOps: 0.45, FPOps: 0.00, Loads: 0.24, Stores: 0.11, Branches: 0.20,
		ILP: 2.7, L1MissRate: 0.03, L2MissRate: 0.08, MLP: 2, Mispredict: 0.06,
		PowerFactor:    1.144,
		NoiseAmplitude: 0.05, Seed: 108,
	},
	"bzip2": {
		// Table 1b: no steady temperature; 67–72 °C on the Banias.
		Name: "bzip2", Category: uarch.SPECint,
		IntOps: 0.48, FPOps: 0.00, Loads: 0.24, Stores: 0.10, Branches: 0.18,
		ILP: 3.0, L1MissRate: 0.025, L2MissRate: 0.08, MLP: 2, Mispredict: 0.055,
		PowerFactor:    1.183,
		PhaseAmplitude: 0.24, PhasePeriod: 70, PhasePhase: 0.3,
		NoiseAmplitude: 0.05, Seed: 109,
	},
	"twolf": {
		Name: "twolf", Category: uarch.SPECint,
		IntOps: 0.46, FPOps: 0.02, Loads: 0.26, Stores: 0.06, Branches: 0.20,
		ILP: 2.6, L1MissRate: 0.035, L2MissRate: 0.10, MLP: 2, Mispredict: 0.065,
		PowerFactor:    1.322,
		NoiseAmplitude: 0.05, Seed: 110,
	},
	"vortex": {
		Name: "vortex", Category: uarch.SPECint,
		IntOps: 0.42, FPOps: 0.00, Loads: 0.26, Stores: 0.14, Branches: 0.18,
		ILP: 2.6, L1MissRate: 0.035, L2MissRate: 0.10, MLP: 2, Mispredict: 0.05,
		PowerFactor:    1.171,
		NoiseAmplitude: 0.04, Seed: 111,
	},

	// ---------------- SPECfp ----------------
	"swim": {
		Name: "swim", Category: uarch.SPECfp,
		IntOps: 0.12, FPOps: 0.40, Loads: 0.30, Stores: 0.12, Branches: 0.06,
		ILP: 3.5, L1MissRate: 0.14, L2MissRate: 0.35, MLP: 4, Mispredict: 0.01,
		PowerFactor:    1.269,
		NoiseAmplitude: 0.03, Seed: 201,
	},
	"mgrid": {
		Name: "mgrid", Category: uarch.SPECfp,
		IntOps: 0.12, FPOps: 0.45, Loads: 0.30, Stores: 0.08, Branches: 0.05,
		ILP: 3.3, L1MissRate: 0.07, L2MissRate: 0.25, MLP: 4, Mispredict: 0.01,
		PowerFactor:    0.704,
		NoiseAmplitude: 0.03, Seed: 202,
	},
	"applu": {
		Name: "applu", Category: uarch.SPECfp,
		IntOps: 0.10, FPOps: 0.45, Loads: 0.30, Stores: 0.10, Branches: 0.05,
		ILP: 3.3, L1MissRate: 0.09, L2MissRate: 0.30, MLP: 3.5, Mispredict: 0.01,
		PowerFactor:    0.918,
		NoiseAmplitude: 0.03, Seed: 203,
	},
	"mesa": {
		Name: "mesa", Category: uarch.SPECfp,
		IntOps: 0.22, FPOps: 0.35, Loads: 0.26, Stores: 0.09, Branches: 0.08,
		ILP: 2.5, L1MissRate: 0.01, L2MissRate: 0.10, MLP: 2, Mispredict: 0.03,
		PowerFactor:    0.882,
		NoiseAmplitude: 0.04, Seed: 204,
	},
	"art": {
		Name: "art", Category: uarch.SPECfp,
		IntOps: 0.15, FPOps: 0.35, Loads: 0.35, Stores: 0.08, Branches: 0.07,
		ILP: 2.5, L1MissRate: 0.20, L2MissRate: 0.45, MLP: 2.5, Mispredict: 0.02,
		PowerFactor:    1.182,
		NoiseAmplitude: 0.04, Seed: 205,
	},
	"facerec": {
		// Table 1b: 65–71 °C range.
		Name: "facerec", Category: uarch.SPECfp,
		IntOps: 0.15, FPOps: 0.40, Loads: 0.28, Stores: 0.09, Branches: 0.08,
		ILP: 3.0, L1MissRate: 0.05, L2MissRate: 0.25, MLP: 3, Mispredict: 0.02,
		PowerFactor:    1.215,
		PhaseAmplitude: 0.28, PhasePeriod: 90, PhasePhase: 1.1,
		NoiseAmplitude: 0.04, Seed: 206,
	},
	"ammp": {
		// Table 1b: 58–64 °C range.
		Name: "ammp", Category: uarch.SPECfp,
		IntOps: 0.12, FPOps: 0.40, Loads: 0.32, Stores: 0.10, Branches: 0.06,
		ILP: 2.4, L1MissRate: 0.11, L2MissRate: 0.35, MLP: 2, Mispredict: 0.02,
		PowerFactor:    1.785,
		PhaseAmplitude: 0.32, PhasePeriod: 110, PhasePhase: 2.0,
		NoiseAmplitude: 0.04, Seed: 207,
	},
	"lucas": {
		Name: "lucas", Category: uarch.SPECfp,
		IntOps: 0.10, FPOps: 0.45, Loads: 0.30, Stores: 0.10, Branches: 0.05,
		ILP: 3.0, L1MissRate: 0.09, L2MissRate: 0.30, MLP: 3, Mispredict: 0.01,
		PowerFactor:    1.25,
		NoiseAmplitude: 0.03, Seed: 208,
	},
	"fma3d": {
		// Table 1b: 61–67 °C range.
		Name: "fma3d", Category: uarch.SPECfp,
		IntOps: 0.15, FPOps: 0.40, Loads: 0.28, Stores: 0.10, Branches: 0.07,
		ILP: 2.7, L1MissRate: 0.07, L2MissRate: 0.25, MLP: 3, Mispredict: 0.02,
		PowerFactor:    1.147,
		PhaseAmplitude: 0.30, PhasePeriod: 60, PhasePhase: 0.7,
		NoiseAmplitude: 0.04, Seed: 209,
	},
	"sixtrack": {
		Name: "sixtrack", Category: uarch.SPECfp,
		IntOps: 0.15, FPOps: 0.50, Loads: 0.22, Stores: 0.08, Branches: 0.05,
		ILP: 3.4, L1MissRate: 0.01, L2MissRate: 0.05, MLP: 2, Mispredict: 0.01,
		PowerFactor:    0.778,
		NoiseAmplitude: 0.03, Seed: 210,
	},
	"wupwise": {
		Name: "wupwise", Category: uarch.SPECfp,
		IntOps: 0.15, FPOps: 0.42, Loads: 0.26, Stores: 0.10, Branches: 0.07,
		ILP: 3.0, L1MissRate: 0.03, L2MissRate: 0.20, MLP: 3, Mispredict: 0.015,
		PowerFactor:    0.492,
		NoiseAmplitude: 0.03, Seed: 211,
	},
}

// Profile returns the named benchmark profile.
func Profile(name string) (uarch.Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return uarch.Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// MustProfile returns the named profile or panics; for tables and tests.
func MustProfile(name string) uarch.Profile {
	p, err := Profile(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Benchmarks returns all benchmark names, sorted.
func Benchmarks() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table1Stable lists the benchmarks with stable steady-state Banias
// temperatures (paper Table 1a) and the published value in °C.
var Table1Stable = []struct {
	Name  string
	TempC float64
}{
	{"gzip", 70}, {"mcf", 59}, {"parser", 67}, {"twolf", 67},
	{"mesa", 65}, {"swim", 62}, {"lucas", 63}, {"sixtrack", 71},
}

// Table1Ranging lists the benchmarks without a steady temperature
// (paper Table 1b) with the published min–max range in °C.
var Table1Ranging = []struct {
	Name     string
	Min, Max float64
}{
	{"bzip2", 67, 72}, {"ammp", 58, 64}, {"facerec", 65, 71}, {"fma3d", 61, 67},
}
