package workload

import (
	"fmt"
	"strings"

	"multitherm/internal/uarch"
)

// Mix is one four-process workload (paper Table 4).
type Mix struct {
	Name       string
	Benchmarks [4]string
}

// Label returns the paper's figure label, e.g.
// "gzip-twolf-ammp-lucas (IIFF)".
func (m Mix) Label() string {
	var kinds []byte
	for _, b := range m.Benchmarks {
		if MustProfile(b).Category == uarch.SPECfp {
			kinds = append(kinds, 'F')
		} else {
			kinds = append(kinds, 'I')
		}
	}
	return fmt.Sprintf("%s (%s)", strings.Join(m.Benchmarks[:], "-"), kinds)
}

// Profiles resolves the mix's four benchmark profiles.
func (m Mix) Profiles() ([4]uarch.Profile, error) {
	var out [4]uarch.Profile
	for i, b := range m.Benchmarks {
		p, err := Profile(b)
		if err != nil {
			return out, err
		}
		out[i] = p
	}
	return out, nil
}

// Mixes is Table 4: the twelve four-process workloads, ordered from
// all-integer to all-floating-point.
var Mixes = []Mix{
	{"workload1", [4]string{"gcc", "gzip", "mcf", "vpr"}},
	{"workload2", [4]string{"crafty", "eon", "parser", "perlbmk"}},
	{"workload3", [4]string{"bzip2", "gzip", "twolf", "swim"}},
	{"workload4", [4]string{"crafty", "perlbmk", "vpr", "mgrid"}},
	{"workload5", [4]string{"gcc", "parser", "applu", "mesa"}},
	{"workload6", [4]string{"bzip2", "eon", "art", "facerec"}},
	{"workload7", [4]string{"gzip", "twolf", "ammp", "lucas"}},
	{"workload8", [4]string{"parser", "vpr", "fma3d", "sixtrack"}},
	{"workload9", [4]string{"gcc", "applu", "mgrid", "swim"}},
	{"workload10", [4]string{"mcf", "ammp", "art", "mesa"}},
	{"workload11", [4]string{"ammp", "facerec", "fma3d", "swim"}},
	{"workload12", [4]string{"art", "lucas", "mgrid", "sixtrack"}},
}

// MixByName returns the named workload mix. It is a strict whitelist
// lookup — the result is one of the static mix tables regardless of
// input — so the taint analysis treats it as a sanitizer.
//
//mtlint:sanitizer
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}
