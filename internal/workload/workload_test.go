package workload

import (
	"strings"
	"testing"

	"multitherm/internal/uarch"
)

func TestPopulationSize(t *testing.T) {
	// Paper §3.4: 22 benchmarks, 11 SPECint and 11 SPECfp.
	names := Benchmarks()
	if len(names) != 22 {
		t.Fatalf("population = %d, want 22", len(names))
	}
	var ints, fps int
	for _, n := range names {
		switch MustProfile(n).Category {
		case uarch.SPECint:
			ints++
		case uarch.SPECfp:
			fps++
		}
	}
	if ints != 11 || fps != 11 {
		t.Errorf("split = %d int / %d fp, want 11/11", ints, fps)
	}
}

func TestAllProfilesValid(t *testing.T) {
	cfg := uarch.DefaultConfig()
	for _, n := range Benchmarks() {
		p := MustProfile(n)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if p.Name != n {
			t.Errorf("profile key %q has Name %q", n, p.Name)
		}
		ipc := uarch.AnalyticIPC(cfg, p)
		if ipc < 0.1 || ipc > 4 {
			t.Errorf("%s: implausible IPC %v", n, ipc)
		}
	}
}

func TestSeedsUnique(t *testing.T) {
	seen := map[uint64]string{}
	for _, n := range Benchmarks() {
		p := MustProfile(n)
		if prev, dup := seen[p.Seed]; dup {
			t.Errorf("seed %d shared by %s and %s", p.Seed, prev, n)
		}
		seen[p.Seed] = n
	}
}

func TestMcfIsSlowest(t *testing.T) {
	// The paper singles out mcf as "by far the coolest due to its
	// memory-bound execution"; its IPC must be the population minimum.
	cfg := uarch.DefaultConfig()
	mcf := uarch.AnalyticIPC(cfg, MustProfile("mcf"))
	for _, n := range Benchmarks() {
		if n == "mcf" {
			continue
		}
		if ipc := uarch.AnalyticIPC(cfg, MustProfile(n)); ipc <= mcf {
			t.Errorf("%s IPC %v not above mcf %v", n, ipc, mcf)
		}
	}
}

func TestTable1BenchmarksHavePhaseStructure(t *testing.T) {
	for _, row := range Table1Ranging {
		p := MustProfile(row.Name)
		if p.PhaseAmplitude < 0.2 {
			t.Errorf("%s listed as non-steady but phase amplitude %v", row.Name, p.PhaseAmplitude)
		}
		if p.PhasePeriod <= 0 {
			t.Errorf("%s missing phase period", row.Name)
		}
	}
	for _, row := range Table1Stable {
		p := MustProfile(row.Name)
		if p.PhaseAmplitude > 0.1 {
			t.Errorf("%s listed as stable but phase amplitude %v", row.Name, p.PhaseAmplitude)
		}
	}
}

func TestProfileUnknown(t *testing.T) {
	if _, err := Profile("doom3"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestMustProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustProfile("doom3")
}

func TestMixesMatchTable4(t *testing.T) {
	if len(Mixes) != 12 {
		t.Fatalf("mix count = %d, want 12", len(Mixes))
	}
	// Spot-check the published compositions and I/F signatures.
	wantSig := []string{
		"IIII", "IIII", "IIIF", "IIIF", "IIFF", "IIFF",
		"IIFF", "IIFF", "IFFF", "IFFF", "FFFF", "FFFF",
	}
	for i, m := range Mixes {
		label := m.Label()
		if !strings.Contains(label, wantSig[i]) {
			t.Errorf("%s label %q missing signature %s", m.Name, label, wantSig[i])
		}
		if _, err := m.Profiles(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	w7, err := MixByName("workload7")
	if err != nil {
		t.Fatal(err)
	}
	if w7.Benchmarks != [4]string{"gzip", "twolf", "ammp", "lucas"} {
		t.Errorf("workload7 = %v", w7.Benchmarks)
	}
}

func TestMixByNameUnknown(t *testing.T) {
	if _, err := MixByName("workload99"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestTable1CoversListedBenchmarks(t *testing.T) {
	if len(Table1Stable) != 8 || len(Table1Ranging) != 4 {
		t.Fatalf("table1 sizes = %d/%d, want 8/4", len(Table1Stable), len(Table1Ranging))
	}
	for _, row := range Table1Stable {
		if _, err := Profile(row.Name); err != nil {
			t.Errorf("stable row %s: %v", row.Name, err)
		}
	}
	for _, row := range Table1Ranging {
		if _, err := Profile(row.Name); err != nil {
			t.Errorf("ranging row %s: %v", row.Name, err)
		}
		if row.Min >= row.Max {
			t.Errorf("%s: degenerate range", row.Name)
		}
	}
}
