package thermal

import (
	"fmt"

	"multitherm/internal/linalg"
	"multitherm/internal/linalg/sparse"
	"multitherm/internal/units"
)

// sparseCrossoverNodes is the node count above which the exact ZOH
// path stops materializing dense Φ/Ψ and switches to the Krylov
// expm·v action on the CSR generator. 64 is the packed kernel's SIMD
// stride: at or below it the dense panels fit one packed tile and the
// fused GEMV is unbeatable; above it the O((2n)³) Expm build and the
// O(n²) per-tick panels lose to O(nnz·m) Arnoldi on these ~7
// nonzeros-per-row RC networks. The mode depends only on the template
// size — never on dt — so a (Template, dt) pair always lands in the
// same cache entry with the same representation.
const sparseCrossoverNodes = 64

// Discretization is the exact zero-order-hold discretization of the RC
// network at a fixed step dt. Writing the continuous model as
//
//	dT/dt = A·T + B·u,   A = −C⁻¹·G,  B = C⁻¹,  u = P + gAmb·T_amb
//
// the solution with u held constant over [t, t+dt] (exactly the
// simulator's contract: power changes only at tick boundaries) is
//
//	T(t+dt) = Φ·T(t) + Ψ·u,   Φ = e^{A·dt},  Ψ = ∫₀^dt e^{A·s}·B ds
//
// with no truncation error and no stability limit — the update is exact
// for any dt, where explicit RK4 must substep past hMax. Both matrices
// come out of one matrix exponential of the Van Loan augmented block
// matrix, avoiding the cancellation-prone A⁻¹(Φ−I)B form:
//
//	exp([[A·dt, B·dt], [0, 0]]) = [[Φ, Ψ], [0, I]]
//
// Ψ is then split into its die-block columns (the live power inputs)
// and its contraction against the constant ambient inflow, so the
// per-tick update touches only what actually changes. A Discretization
// is immutable and shared by every Model stamped from the template; the
// template memoizes one per dt (see Template.Discretization).
type Discretization struct {
	dt  float64
	n   int
	phi *linalg.Matrix // n×n state propagator Φ
	psi *linalg.Matrix // n×nBlocks input propagator: Ψ restricted to power columns

	// psiAmb = Ψ·(gAmb·T_amb): the constant ambient contribution per
	// tick, folded once at build time.
	psiAmb []float64

	// Packed column-major operands for the fused per-tick kernel. Both
	// share the same stride; psiAmbPad is psiAmb zero-padded to it.
	phiPacked *linalg.Packed
	psiPacked *linalg.Packed
	psiAmbPad []float64

	// Sparse mode (templates above sparseCrossoverNodes): prop is the
	// fixed-schedule Krylov propagator for e^{A·dt} acting on the
	// augmented state [T; 1], and every dense field above is nil — Φ/Ψ
	// are never materialized. The two modes expose one stepping
	// contract; Model.stepExact dispatches on Sparse().
	prop *sparse.Propagator
}

// Sparse reports whether this discretization steps through the Krylov
// propagator instead of the dense packed Φ/Ψ panels.
func (d *Discretization) Sparse() bool { return d.prop != nil }

// Mode describes the representation for reports and logs.
func (d *Discretization) Mode() string {
	if d.prop != nil {
		return fmt.Sprintf("sparse-krylov(m=%d,nsub=%d)", d.prop.Dim(), d.prop.Substeps())
	}
	return "dense-packed"
}

// buildDiscretization computes Φ and Ψ via the augmented-matrix
// exponential. Cost is one 2n×2n Expm — milliseconds for the 55-node
// CMP4 network — paid once per (Template, dt).
func (t *Template) buildDiscretization(dt float64) (*Discretization, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: non-positive discretization step %g", dt)
	}
	n := t.n
	g := t.ConductanceMatrix()
	aug := linalg.NewMatrix(2*n, 2*n)
	for i := 0; i < n; i++ {
		ic := t.invCap[i]
		for j := 0; j < n; j++ {
			aug.Set(i, j, -ic*g.At(i, j)*dt) // A·dt
		}
		aug.Set(i, n+i, ic*dt) // B·dt
	}
	e, err := linalg.Expm(aug)
	if err != nil {
		return nil, fmt.Errorf("thermal: discretizing at dt=%g: %w", dt, err)
	}
	d := &Discretization{dt: dt, n: n,
		phi:    linalg.NewMatrix(n, n),
		psi:    linalg.NewMatrix(n, t.nBlocks),
		psiAmb: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.phi.Set(i, j, e.At(i, j))
		}
		for j := 0; j < t.nBlocks; j++ {
			d.psi.Set(i, j, e.At(i, n+j))
		}
		var amb float64
		for j := 0; j < n; j++ {
			amb += e.At(i, n+j) * t.ambFlow[j]
		}
		d.psiAmb[i] = amb
	}
	d.phiPacked = linalg.Pack(d.phi)
	d.psiPacked = linalg.Pack(d.psi)
	d.psiAmbPad = make([]float64, d.phiPacked.Stride())
	copy(d.psiAmbPad, d.psiAmb)
	return d, nil
}

// buildSparseDiscretization constructs the Krylov-propagator form of
// the same exact ZOH update: instead of materializing Φ/Ψ it
// calibrates a fixed (m, nsub) Arnoldi schedule for e^{M·dt} on the
// augmented affine system, where the constant term c = B·u is rebuilt
// per model whenever its power changes. The calibration probe is a
// deterministic warm-gradient state under a representative per-block
// power, so equal (Template, dt) pairs always freeze the identical
// schedule — the property that keeps sparse steps bit-reproducible
// and batch lanes in lockstep.
func (t *Template) buildSparseDiscretization(dt float64) (*Discretization, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: non-positive discretization step %g", dt)
	}
	probeX := make([]float64, t.n)
	probeC := make([]float64, t.n)
	const probeWatts = 2.0 // representative per-block dissipation
	for i := 0; i < t.n; i++ {
		probeX[i] = float64(t.params.Ambient) + 10 + float64(i%7)
		var w float64
		if i < t.nBlocks {
			w = probeWatts
		}
		probeC[i] = (w + t.ambFlow[i]) * t.invCap[i]
	}
	prop, err := sparse.NewPropagator(t.asp, dt, 1e-12, probeX, probeC)
	if err != nil {
		return nil, fmt.Errorf("thermal: sparse discretization at dt=%g: %w", dt, err)
	}
	return &Discretization{dt: dt, n: t.n, prop: prop}, nil
}

// Discretization returns the memoized exact ZOH discretization of this
// template at step dt, building it on first use. The representation is
// picked automatically per template size — dense packed Φ/Ψ at or
// below sparseCrossoverNodes, the Krylov propagator above — and the
// cache key is (Template, dt): templates are themselves memoized per
// (floorplan, params), so a parallel sweep pays the build once per
// configuration, not once per run. Concurrent first callers may race
// to build; the construction is deterministic, so whichever instance
// wins the store is identical to the losers.
func (t *Template) Discretization(dt units.Seconds) (*Discretization, error) {
	key := float64(dt)
	return t.discCache.LoadOrStore(key, func() (*Discretization, error) {
		if t.n > sparseCrossoverNodes {
			return t.buildSparseDiscretization(key)
		}
		return t.buildDiscretization(key)
	})
}

// Dt returns the step size the discretization was built for.
func (d *Discretization) Dt() units.Seconds { return units.Seconds(d.dt) }

// SIMDAccelerated reports whether the per-tick update runs the
// vectorized packed kernel on this machine. Sparse discretizations
// step through the generic Krylov kernels, so they report false.
func (d *Discretization) SIMDAccelerated() bool {
	return d.prop == nil && d.phiPacked.SIMDAccelerated()
}

// Phi returns Φ[i][j], the exact dt-step response of node i to a unit
// initial temperature on node j. Exposed for validation tests; only
// the dense representation materializes Φ.
//
//mtlint:allow unit propagator entries are dimensionless °C-per-°C responses
func (d *Discretization) Phi(i, j int) float64 { return d.phi.At(i, j) }

// PreferExact reports whether the exact discretized step is expected to
// beat substepped RK4 at step dt on this machine. Three regimes
// qualify: the template is above the sparse crossover (one Krylov
// substep costs about the same as one RK4 substep but is exact at any
// dt and — unlike RK4 — batches across lanes through the SpMM kernel),
// the dense Φ kernel is SIMD-accelerated (a single fused pass beats
// even one sparse RK4 substep), or dt is far enough past the stability
// bound that RK4 must substep repeatedly while the exact update stays a
// single application regardless of dt.
func (t *Template) PreferExact(dt units.Seconds) bool {
	if t.n > sparseCrossoverNodes {
		return true
	}
	if float64(dt) > 2*t.hMax {
		return true
	}
	return linalg.SIMDCapableRows(t.n)
}

// UseExact switches the model's Step(dt) onto the exact discretized
// update for exactly this dt; Step at any other size still runs RK4 on
// the same state, so off-grid steps (warmup, odd remainders) fall back
// transparently. The discretization comes from the template's memoized
// cache and may be dense or sparse per the template size. Calling
// UseExact again re-targets the fast path to the new dt.
func (m *Model) UseExact(dt units.Seconds) error {
	d, err := m.Template.Discretization(dt)
	if err != nil {
		return err
	}
	m.armDisc(d)
	return nil
}

// armDisc points the model's exact path at d, moving the live state
// into whichever buffer that representation steps. The alias check
// (&temps[0] against the target buffer) handles every re-arm
// combination — dense→sparse, sparse→dense, repeated arms — without
// copying when the state is already in place.
func (m *Model) armDisc(d *Discretization) {
	if d.prop != nil {
		if len(m.zaug) != m.n+1 {
			m.zaug = make([]float64, m.n+1)
			m.cvec = make([]float64, m.n)
		}
		if &m.temps[0] != &m.zaug[0] {
			copy(m.zaug[:m.n], m.temps)
			m.temps = m.zaug[:m.n]
		}
		m.zaug[m.n] = 1
		if m.kws == nil || m.kwsProp != d.prop {
			m.kws = sparse.NewWorkspace(d.prop, 1)
			m.kwsProp = d.prop
		}
	} else {
		stride := d.phiPacked.Stride()
		if len(m.xbuf) != stride {
			// Double-buffered state: temps aliases the live buffer, the
			// kernel writes the other, and the two swap each tick — no
			// per-tick copy.
			m.xbuf = make([]float64, stride)
			m.ybuf = make([]float64, stride)
			m.uCache = make([]float64, stride)
		}
		if &m.temps[0] != &m.xbuf[0] {
			copy(m.xbuf[:m.n], m.temps)
			m.temps = m.xbuf[:m.n]
		}
	}
	m.disc = d
	m.powerDirty = true
}

// stepExact advances one exact tick, dispatching on the
// discretization's representation. Dense: T ← Φ·T + (Ψ·P + ψ_amb)
// through the packed kernels, with the input term memoized in uCache
// and recomputed only when SetPower has run since the last tick, so
// constant-power stretches pay only the Φ pass. Zero allocations;
// buffer padding rows stay zero because the packed operands' padding
// rows are zero.
//
//mtlint:zeroalloc
func (m *Model) stepExact(d *Discretization) {
	if d.prop != nil {
		m.stepSparse(d)
		return
	}
	if m.powerDirty {
		d.psiPacked.MulAddInto(m.uCache, d.psiAmbPad, m.power[:m.nBlocks])
		m.powerDirty = false
	}
	d.phiPacked.MulAddInto(m.ybuf, m.uCache, m.temps)
	m.xbuf, m.ybuf = m.ybuf, m.xbuf
	m.temps = m.xbuf[:m.n]
}

// stepSparse advances one exact tick through the Krylov propagator on
// the augmented state z = [T; 1]. The substep-scaled constant term
// c = τ·B·u plays uCache's role: rebuilt only when SetPower has run
// since the last tick. temps aliases zaug[:n] throughout, so the
// in-place advance leaves the public view current with no swap.
//
//mtlint:zeroalloc
func (m *Model) stepSparse(d *Discretization) {
	if m.powerDirty {
		tau := d.prop.Tau()
		for i := 0; i < m.n; i++ {
			m.cvec[i] = (m.power[i] + m.ambFlow[i]) * m.invCap[i] * tau
		}
		m.powerDirty = false
	}
	d.prop.Advance(m.kws, m.zaug, m.cvec)
}
