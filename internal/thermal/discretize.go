package thermal

import (
	"fmt"

	"multitherm/internal/linalg"
	"multitherm/internal/units"
)

// Discretization is the exact zero-order-hold discretization of the RC
// network at a fixed step dt. Writing the continuous model as
//
//	dT/dt = A·T + B·u,   A = −C⁻¹·G,  B = C⁻¹,  u = P + gAmb·T_amb
//
// the solution with u held constant over [t, t+dt] (exactly the
// simulator's contract: power changes only at tick boundaries) is
//
//	T(t+dt) = Φ·T(t) + Ψ·u,   Φ = e^{A·dt},  Ψ = ∫₀^dt e^{A·s}·B ds
//
// with no truncation error and no stability limit — the update is exact
// for any dt, where explicit RK4 must substep past hMax. Both matrices
// come out of one matrix exponential of the Van Loan augmented block
// matrix, avoiding the cancellation-prone A⁻¹(Φ−I)B form:
//
//	exp([[A·dt, B·dt], [0, 0]]) = [[Φ, Ψ], [0, I]]
//
// Ψ is then split into its die-block columns (the live power inputs)
// and its contraction against the constant ambient inflow, so the
// per-tick update touches only what actually changes. A Discretization
// is immutable and shared by every Model stamped from the template; the
// template memoizes one per dt (see Template.Discretization).
type Discretization struct {
	dt  float64
	n   int
	phi *linalg.Matrix // n×n state propagator Φ
	psi *linalg.Matrix // n×nBlocks input propagator: Ψ restricted to power columns

	// psiAmb = Ψ·(gAmb·T_amb): the constant ambient contribution per
	// tick, folded once at build time.
	psiAmb []float64

	// Packed column-major operands for the fused per-tick kernel. Both
	// share the same stride; psiAmbPad is psiAmb zero-padded to it.
	phiPacked *linalg.Packed
	psiPacked *linalg.Packed
	psiAmbPad []float64
}

// buildDiscretization computes Φ and Ψ via the augmented-matrix
// exponential. Cost is one 2n×2n Expm — milliseconds for the 55-node
// CMP4 network — paid once per (Template, dt).
func (t *Template) buildDiscretization(dt float64) (*Discretization, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: non-positive discretization step %g", dt)
	}
	n := t.n
	g := t.ConductanceMatrix()
	aug := linalg.NewMatrix(2*n, 2*n)
	for i := 0; i < n; i++ {
		ic := t.invCap[i]
		for j := 0; j < n; j++ {
			aug.Set(i, j, -ic*g.At(i, j)*dt) // A·dt
		}
		aug.Set(i, n+i, ic*dt) // B·dt
	}
	e, err := linalg.Expm(aug)
	if err != nil {
		return nil, fmt.Errorf("thermal: discretizing at dt=%g: %w", dt, err)
	}
	d := &Discretization{dt: dt, n: n,
		phi:    linalg.NewMatrix(n, n),
		psi:    linalg.NewMatrix(n, t.nBlocks),
		psiAmb: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.phi.Set(i, j, e.At(i, j))
		}
		for j := 0; j < t.nBlocks; j++ {
			d.psi.Set(i, j, e.At(i, n+j))
		}
		var amb float64
		for j := 0; j < n; j++ {
			amb += e.At(i, n+j) * t.ambFlow[j]
		}
		d.psiAmb[i] = amb
	}
	d.phiPacked = linalg.Pack(d.phi)
	d.psiPacked = linalg.Pack(d.psi)
	d.psiAmbPad = make([]float64, d.phiPacked.Stride())
	copy(d.psiAmbPad, d.psiAmb)
	return d, nil
}

// Discretization returns the memoized exact ZOH discretization of this
// template at step dt, building it on first use. The cache key is
// (Template, dt): templates are themselves memoized per (floorplan,
// params), so a parallel sweep pays the matrix exponential once per
// configuration, not once per run. Concurrent first callers may race to
// build; the construction is deterministic, so whichever instance wins
// the store is identical to the losers.
func (t *Template) Discretization(dt units.Seconds) (*Discretization, error) {
	key := float64(dt)
	return t.discCache.LoadOrStore(key, func() (*Discretization, error) {
		return t.buildDiscretization(key)
	})
}

// Dt returns the step size the discretization was built for.
func (d *Discretization) Dt() units.Seconds { return units.Seconds(d.dt) }

// SIMDAccelerated reports whether the per-tick update runs the
// vectorized packed kernel on this machine.
func (d *Discretization) SIMDAccelerated() bool { return d.phiPacked.SIMDAccelerated() }

// Phi returns Φ[i][j], the exact dt-step response of node i to a unit
// initial temperature on node j. Exposed for validation tests.
//
//mtlint:allow unit propagator entries are dimensionless °C-per-°C responses
func (d *Discretization) Phi(i, j int) float64 { return d.phi.At(i, j) }

// PreferExact reports whether the exact discretized step is expected to
// beat substepped RK4 at step dt on this machine. Two regimes qualify:
// the dense Φ kernel is SIMD-accelerated (a single fused pass beats
// even one sparse RK4 substep), or dt is far enough past the stability
// bound that RK4 must substep repeatedly while the exact update stays a
// single application regardless of dt.
func (t *Template) PreferExact(dt units.Seconds) bool {
	if float64(dt) > 2*t.hMax {
		return true
	}
	return linalg.SIMDCapableRows(t.n)
}

// UseExact switches the model's Step(dt) onto the exact discretized
// update for exactly this dt; Step at any other size still runs RK4 on
// the same state, so off-grid steps (warmup, odd remainders) fall back
// transparently. The discretization comes from the template's memoized
// cache. Calling UseExact again re-targets the fast path to the new dt.
func (m *Model) UseExact(dt units.Seconds) error {
	d, err := m.Template.Discretization(dt)
	if err != nil {
		return err
	}
	stride := d.phiPacked.Stride()
	if len(m.xbuf) != stride {
		// Double-buffered state: temps aliases the live buffer, the kernel
		// writes the other, and the two swap each tick — no per-tick copy.
		m.xbuf = make([]float64, stride)
		m.ybuf = make([]float64, stride)
		m.uCache = make([]float64, stride)
		copy(m.xbuf[:m.n], m.temps)
		m.temps = m.xbuf[:m.n]
	}
	m.disc = d
	m.powerDirty = true
	return nil
}

// stepExact advances one exact tick: T ← Φ·T + (Ψ·P + ψ_amb). The
// input term is memoized in uCache and recomputed only when SetPower
// has run since the last tick, so constant-power stretches pay only the
// Φ pass. Zero allocations; buffer padding rows stay zero because the
// packed operands' padding rows are zero.
//
//mtlint:zeroalloc
func (m *Model) stepExact(d *Discretization) {
	if m.powerDirty {
		d.psiPacked.MulAddInto(m.uCache, d.psiAmbPad, m.power[:m.nBlocks])
		m.powerDirty = false
	}
	d.phiPacked.MulAddInto(m.ybuf, m.uCache, m.temps)
	m.xbuf, m.ybuf = m.ybuf, m.xbuf
	m.temps = m.xbuf[:m.n]
}
