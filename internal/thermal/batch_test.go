package thermal

import (
	"math/rand"
	"testing"

	"multitherm/internal/floorplan"
)

const batchTestDt = 28e-6

// newBatchLanes stamps k models from the shared CMP4 template with
// distinct initial power vectors.
func newBatchLanes(t *testing.T, k int) []*Model {
	t.Helper()
	models := make([]*Model, k)
	for l := range models {
		m, err := New(floorplan.CMP4(), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		p := make([]float64, m.NumBlocks())
		for i := range p {
			p[i] = 0.5 + 0.25*float64(l) + 0.1*float64(i)
		}
		m.SetPower(p)
		models[l] = m
	}
	return models
}

// TestBatchMatchesSequentialExact is the core bit-identity guard: a
// lockstep batch must reproduce K independent exact-stepping models to
// the last bit, through a schedule that mixes constant-power ticks,
// per-lane power changes (exercising the dirty-lane input recompute),
// and ticks where every lane changes at once (the fused Ψ panel pass).
func TestBatchMatchesSequentialExact(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8} {
		ref := newBatchLanes(t, k)
		bat := newBatchLanes(t, k)
		for _, m := range ref {
			if err := m.UseExact(batchTestDt); err != nil {
				t.Fatal(err)
			}
		}
		batch, err := NewBatch(bat, batchTestDt)
		if err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(int64(100 + k)))
		p := make([]float64, ref[0].NumBlocks())
		for tick := 0; tick < 400; tick++ {
			switch tick % 4 {
			case 1: // one lane changes power: mixed dirty pattern
				l := rng.Intn(k)
				for i := range p {
					p[i] = 2 * rng.Float64()
				}
				ref[l].SetPower(p)
				bat[l].SetPower(p)
			case 3: // every lane changes: the fused all-dirty pass
				for l := 0; l < k; l++ {
					for i := range p {
						p[i] = 2 * rng.Float64()
					}
					ref[l].SetPower(p)
					bat[l].SetPower(p)
				}
			}
			for _, m := range ref {
				m.Step(batchTestDt)
			}
			batch.Step()
			for l := 0; l < k; l++ {
				for i := 0; i < ref[l].NumNodes(); i++ {
					if ref[l].temps[i] != bat[l].temps[i] {
						t.Fatalf("k=%d tick %d lane %d node %d: batch %v != sequential %v",
							k, tick, l, i, bat[l].temps[i], ref[l].temps[i])
					}
				}
			}
		}
	}
}

// TestBatchStepZeroAllocs asserts the batched tick is allocation-free
// in steady state, for both the constant-power and the all-lanes-dirty
// calling patterns.
func TestBatchStepZeroAllocs(t *testing.T) {
	models := newBatchLanes(t, 8)
	batch, err := NewBatch(models, batchTestDt)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, models[0].NumBlocks())
	for i := range p {
		p[i] = 1.5
	}
	if allocs := testing.AllocsPerRun(100, func() { batch.Step() }); allocs != 0 {
		t.Fatalf("constant-power batched tick allocates %.0f objects, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for _, m := range models {
			m.SetPower(p)
		}
		batch.Step()
	}); allocs != 0 {
		t.Fatalf("dirty batched tick allocates %.0f objects, want 0", allocs)
	}
}

// TestBatchAdoptedModelViewsAliasPanels checks that adopted models keep
// behaving as plain Models: SetPower marks only that lane dirty,
// BlockTemps/MaxBlockTemp read the live panel, and the views survive
// buffer swaps.
func TestBatchAdoptedModelViewsAliasPanels(t *testing.T) {
	models := newBatchLanes(t, 3)
	batch, err := NewBatch(models, batchTestDt)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 5; tick++ {
		batch.Step()
	}
	for l, m := range models {
		hot, idx := m.MaxBlockTemp()
		if idx < 0 || hot <= 0 {
			t.Fatalf("lane %d: view lost after swaps: hot=%v idx=%d", l, hot, idx)
		}
		if got := m.Temp(idx); got != hot {
			t.Fatalf("lane %d: Temp(%d) = %v, MaxBlockTemp = %v", l, idx, got, hot)
		}
	}
	// Lanes must heat differently (distinct powers) — a panel-indexing
	// bug that cross-wires lanes would make them identical.
	a, _ := models[0].MaxBlockTemp()
	b, _ := models[2].MaxBlockTemp()
	if a == b {
		t.Fatalf("lanes 0 and 2 identical (%v) despite distinct power inputs", a)
	}
}

// TestBatchRejectsMixedTemplates checks the adoption-time guard.
func TestBatchRejectsMixedTemplates(t *testing.T) {
	a, err := New(floorplan.CMP4(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.Ambient = 40 // different params → different template
	b, err := New(floorplan.CMP4(), params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatch([]*Model{a, b}, batchTestDt); err == nil {
		t.Fatal("batch accepted models from different templates")
	}
	if _, err := NewBatch(nil, batchTestDt); err == nil {
		t.Fatal("batch accepted zero lanes")
	}
}
