package thermal

import (
	"math"
	"sync"
	"testing"

	"multitherm/internal/floorplan"
	"multitherm/internal/units"
)

// TestTemplateMemoized verifies that TemplateFor returns the same
// shared template for identical (floorplan, params) and distinct
// templates otherwise.
func TestTemplateMemoized(t *testing.T) {
	fp := floorplan.CMP4()
	p := DefaultParams()
	a, err := TemplateFor(fp, p)
	if err != nil {
		t.Fatalf("TemplateFor: %v", err)
	}
	b, err := TemplateFor(fp, p)
	if err != nil {
		t.Fatalf("TemplateFor: %v", err)
	}
	if a != b {
		t.Fatal("same (floorplan, params) should share one template")
	}
	p2 := p
	p2.Ambient += 5
	c, err := TemplateFor(fp, p2)
	if err != nil {
		t.Fatalf("TemplateFor: %v", err)
	}
	if c == a {
		t.Fatal("different params must not share a template")
	}
}

// TestTemplateForConcurrent hammers the template cache from many
// goroutines; every caller must get a usable (and identical) template.
func TestTemplateForConcurrent(t *testing.T) {
	fp := floorplan.CMP4()
	p := DefaultParams()
	p.Ambient += 0.125 // private key so this test exercises the build race
	const workers = 16
	got := make([]*Template, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tpl, err := TemplateFor(fp, p)
			if err != nil {
				t.Errorf("TemplateFor: %v", err)
				return
			}
			got[w] = tpl
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Fatal("concurrent TemplateFor callers must converge on one template")
		}
	}
}

// TestModelsShareTemplateNotState stamps two models from one template
// and drives only one of them; the sibling and the template arrays must
// be untouched.
func TestModelsShareTemplateNotState(t *testing.T) {
	tpl, err := TemplateFor(floorplan.CMP4(), DefaultParams())
	if err != nil {
		t.Fatalf("TemplateFor: %v", err)
	}
	hot, cold := tpl.NewModel(), tpl.NewModel()
	if hot.Template != cold.Template {
		t.Fatal("models from one template must share it")
	}
	g0 := append([]float64(nil), tpl.colG...)
	p := make(units.PowerVec, hot.NumBlocks())
	for i := range p {
		p[i] = 8
	}
	hot.SetPower(p)
	for s := 0; s < 200; s++ {
		hot.Step(1e-3)
	}
	amb := tpl.params.Ambient
	for i := 0; i < cold.NumNodes(); i++ {
		if cold.Temp(i) != amb {
			t.Fatalf("sibling model node %d drifted to %g", i, float64(cold.Temp(i)))
		}
	}
	for k := range g0 {
		if tpl.colG[k] != g0[k] {
			t.Fatalf("template conductance %d mutated by stepping a model", k)
		}
	}
	if hi, _ := hot.MaxBlockTemp(); hi <= amb+1 {
		t.Fatalf("driven model should have heated, got max %g", float64(hi))
	}
}

// TestDerivsMatchesConductanceMatrix checks the CSR kernel against an
// independent dense evaluation C·dT/dt = P + gAmb·T_amb − G·T built
// from the edge list.
func TestDerivsMatchesConductanceMatrix(t *testing.T) {
	m := newCMP4Model(t)
	p := make(units.PowerVec, m.NumBlocks())
	temps := make(units.TempVec, m.NumNodes())
	for i := range p {
		p[i] = 0.5 + 0.25*float64(i%5)
	}
	for i := range temps {
		temps[i] = 45 + 3*math.Sin(float64(i))
	}
	m.SetPower(p)
	m.SetNodeTemps(temps)

	g := m.ConductanceMatrix()
	amb := float64(m.Params().Ambient)
	got := make([]float64, m.NumNodes())
	m.derivs(m.temps, got)
	for i := 0; i < m.NumNodes(); i++ {
		var sum float64
		for j := 0; j < m.NumNodes(); j++ {
			sum += g.At(i, j) * temps[j]
		}
		rhs := m.Template.gAmbient[i] * amb
		if i < m.NumBlocks() {
			rhs += p[i]
		}
		want := (rhs - sum) / m.Template.cap[i]
		if diff := math.Abs(got[i] - want); diff > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("node %d: derivs=%g dense=%g (diff %g)", i, got[i], want, diff)
		}
	}
}

// TestStepMatchesTextbookRK4 locks the fused kernel to the classical
// k1/k2/k3/k4 formulation evaluated with the same derivative function.
func TestStepMatchesTextbookRK4(t *testing.T) {
	fused := newCMP4Model(t)
	ref := newCMP4Model(t)
	p := make(units.PowerVec, fused.NumBlocks())
	for i := range p {
		p[i] = 2 + float64(i%3)
	}
	fused.SetPower(p)
	ref.SetPower(p)

	n := ref.NumNodes()
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)
	const h = 20e-6
	for step := 0; step < 500; step++ {
		fused.Step(h)

		tv := ref.temps
		ref.derivs(tv, k1)
		for i := range tmp {
			tmp[i] = tv[i] + 0.5*h*k1[i]
		}
		ref.derivs(tmp, k2)
		for i := range tmp {
			tmp[i] = tv[i] + 0.5*h*k2[i]
		}
		ref.derivs(tmp, k3)
		for i := range tmp {
			tmp[i] = tv[i] + h*k3[i]
		}
		ref.derivs(tmp, k4)
		for i := range tv {
			tv[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
	}
	for i := 0; i < n; i++ {
		if diff := math.Abs(fused.temps[i] - ref.temps[i]); diff > 1e-9 {
			t.Fatalf("node %d: fused=%v textbook=%v (diff %g)", i, fused.temps[i], ref.temps[i], diff)
		}
	}
}

// TestStepSubstepsAcrossStabilityBound is the regression test for
// hoisting the stability bound to build time: a step larger than hMax
// must substep and land exactly where manual substepping lands.
func TestStepSubstepsAcrossStabilityBound(t *testing.T) {
	a := newCMP4Model(t)
	b := newCMP4Model(t)
	if got, want := float64(a.MaxStableStep()), a.computeMaxStableStep(); got != want {
		t.Fatalf("hoisted bound %g != freshly computed %g", got, want)
	}
	p := make(units.PowerVec, a.NumBlocks())
	for i := range p {
		p[i] = 4
	}
	a.SetPower(p)
	b.SetPower(p)

	dt := 2.5 * float64(a.MaxStableStep()) // forces ceil(2.5) = 3 substeps
	a.Step(units.Seconds(dt))
	steps := int(math.Ceil(dt / float64(b.MaxStableStep())))
	h := dt / float64(steps)
	for s := 0; s < steps; s++ {
		b.rk4(h)
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.temps[i] != b.temps[i] {
			t.Fatalf("node %d: Step=%v manual=%v", i, a.temps[i], b.temps[i])
		}
	}
	// And the result must be finite/sane: a 4 W/block pulse for ~40 ms
	// warms the die but cannot exceed a loose physical ceiling.
	hi, _ := a.MaxBlockTemp()
	if math.IsNaN(float64(hi)) || hi > 200 {
		t.Fatalf("substepped solution diverged: max %g", float64(hi))
	}
}

// TestStepZeroAllocs pins the zero-allocation contract of the fused
// transient kernel.
func TestStepZeroAllocs(t *testing.T) {
	m := newCMP4Model(t)
	p := make(units.PowerVec, m.NumBlocks())
	for i := range p {
		p[i] = 3
	}
	m.SetPower(p)
	const dt = 27.8e-6
	if allocs := testing.AllocsPerRun(200, func() { m.Step(dt) }); allocs != 0 {
		t.Fatalf("Step allocates %v times per call, want 0", allocs)
	}
}

// TestSetNodeTemps verifies the warmup-cache fast path installs state
// verbatim and rejects wrong lengths.
func TestSetNodeTemps(t *testing.T) {
	m := newCMP4Model(t)
	want := make(units.TempVec, m.NumNodes())
	for i := range want {
		want[i] = 50 + float64(i)
	}
	m.SetNodeTemps(want)
	for i := range want {
		if float64(m.Temp(i)) != want[i] {
			t.Fatalf("node %d: got %g want %g", i, float64(m.Temp(i)), want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short vector should panic")
		}
	}()
	m.SetNodeTemps(make(units.TempVec, 3))
}
