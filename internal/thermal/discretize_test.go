package thermal

import (
	"math"
	"math/rand"
	"testing"

	"multitherm/internal/floorplan"
	"multitherm/internal/units"
)

// paperTick is the 28 µs control period the simulator steps at
// (100k cycles at 3.6 GHz), duplicated here to keep the package free of
// an import cycle with control.
const paperTick units.Seconds = 100000.0 / 3.6e9

func newExactModel(t *testing.T, dt units.Seconds) *Model {
	t.Helper()
	m, err := New(floorplan.CMP4(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.UseExact(dt); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestExactMatchesRK4RandomSchedule is the headline property test: over
// a randomized multi-tick power schedule, the exact ZOH path and the
// RK4 reference must track each other far inside the sweep's 0.01 °C
// equivalence budget. At 28 µs the local truncation error of RK4 is
// O((dt/τ)⁵) ≈ 1e-13, so the two integrators are expected to agree to
// sub-µK per tick; any systematic drift indicates a wrong Φ or Ψ.
func TestExactMatchesRK4RandomSchedule(t *testing.T) {
	const dt = paperTick
	exact := newExactModel(t, dt)
	ref, err := New(floorplan.CMP4(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	nb := exact.NumBlocks()
	watts := make(units.PowerVec, nb)
	warm := make(units.PowerVec, nb)
	for i := range warm {
		warm[i] = 2
	}
	if err := exact.InitSteadyState(warm); err != nil {
		t.Fatal(err)
	}
	ref.SetNodeTemps(exact.NodeTemps())

	const ticks = 2000
	var worst float64
	for s := 0; s < ticks; s++ {
		// Piecewise-constant schedule with occasional bursts, changing
		// every few ticks like a real activity trace.
		if s%3 == 0 {
			for i := range watts {
				watts[i] = 6 * rng.Float64()
				if rng.Intn(8) == 0 {
					watts[i] += 20 // hotspot burst
				}
			}
		}
		exact.SetPower(watts)
		ref.SetPower(watts)
		exact.Step(dt)
		ref.Step(dt)
		for i := 0; i < exact.NumNodes(); i++ {
			if d := math.Abs(exact.temps[i] - ref.temps[i]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-6 {
		t.Fatalf("exact vs RK4 diverged: worst node error %g °C over %d ticks", worst, ticks)
	}
	t.Logf("worst node error %.3g °C over %d ticks", worst, ticks)
}

// TestExactSteadyStateEnergyConservation drives the exact path with a
// step size far beyond the RK4 stability bound — where the ZOH update
// is unconditionally stable — until equilibrium, and checks the heat
// flowing into the ambient equals the input power.
func TestExactSteadyStateEnergyConservation(t *testing.T) {
	const dt = 1.0 // ≈ 60× hMax: pure RK4 would need dozens of substeps
	m := newExactModel(t, dt)
	if dt < 2*m.MaxStableStep() {
		t.Fatalf("test premise broken: dt %g not past stability bound %g", dt, m.MaxStableStep())
	}
	watts := make(units.PowerVec, m.NumBlocks())
	var total float64
	for i := range watts {
		watts[i] = 1.5 + 0.1*float64(i%7)
		total += watts[i]
	}
	m.SetPower(watts)
	for s := 0; s < 2400; s++ { // 40 minutes simulated: ≫ sink time constant (~72 s)
		m.Step(dt)
	}
	out := m.HeatFlowToAmbient()
	if rel := math.Abs(float64(out)-total) / total; rel > 1e-6 {
		t.Fatalf("ambient outflow %g W vs input %g W (rel %g)", out, total, rel)
	}
	// Cross-check the state against the direct linear solve.
	ss, err := m.SteadyState(watts)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range ss {
		if math.Abs(m.temps[i]-want) > 1e-6 {
			t.Fatalf("node %d: exact steady state %g, solver %g", i, m.temps[i], want)
		}
	}
}

// TestExactOffGridFallsBackToRK4 checks that a Step at a dt other than
// the armed one runs the RK4 path bit-identically to a model that never
// armed the exact path.
func TestExactOffGridFallsBackToRK4(t *testing.T) {
	exact := newExactModel(t, paperTick)
	plain, err := New(floorplan.CMP4(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	watts := make(units.PowerVec, exact.NumBlocks())
	for i := range watts {
		watts[i] = 4
	}
	exact.SetPower(watts)
	plain.SetPower(watts)
	off := units.Seconds(3.1e-5) // not the armed dt
	for s := 0; s < 50; s++ {
		exact.Step(off)
		plain.Step(off)
	}
	for i := range plain.temps {
		if exact.temps[i] != plain.temps[i] {
			t.Fatalf("off-grid step diverged at node %d: %g vs %g",
				i, exact.temps[i], plain.temps[i])
		}
	}
}

// TestExactMixedGridSteps interleaves on-grid exact ticks with off-grid
// RK4 remainders on shared state; the pair must land within the RK4
// reference's own error of an all-RK4 model.
func TestExactMixedGridSteps(t *testing.T) {
	exact := newExactModel(t, paperTick)
	plain, err := New(floorplan.CMP4(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	watts := make(units.PowerVec, exact.NumBlocks())
	for i := range watts {
		watts[i] = 5
	}
	exact.SetPower(watts)
	plain.SetPower(watts)
	for s := 0; s < 200; s++ {
		exact.Step(paperTick)
		plain.Step(paperTick)
		if s%10 == 0 {
			exact.Step(paperTick / 3)
			plain.Step(paperTick / 3)
		}
	}
	for i := range plain.temps {
		if d := math.Abs(exact.temps[i] - plain.temps[i]); d > 1e-7 {
			t.Fatalf("mixed-grid state off at node %d by %g °C", i, d)
		}
	}
}

// TestDiscretizationMemoized verifies the (Template, dt) cache returns
// the identical instance and that distinct dts get distinct ones.
func TestDiscretizationMemoized(t *testing.T) {
	tpl, err := TemplateFor(floorplan.CMP4(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	d1, err := tpl.Discretization(paperTick)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := tpl.Discretization(paperTick)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("same (template, dt) built two discretizations")
	}
	d3, err := tpl.Discretization(2 * paperTick)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 || d3.Dt() != 2*paperTick {
		t.Fatal("distinct dt should build a distinct discretization")
	}
}

// TestDiscretizationRejectsBadStep covers the error path.
func TestDiscretizationRejectsBadStep(t *testing.T) {
	tpl, err := TemplateFor(floorplan.CMP4(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []units.Seconds{0, -1e-6} {
		if _, err := tpl.Discretization(dt); err == nil {
			t.Fatalf("dt=%g accepted", dt)
		}
	}
}

// TestExactStepZeroAllocs pins the fast path at zero allocations per
// tick, including ticks that invalidate the memoized input term.
func TestExactStepZeroAllocs(t *testing.T) {
	m := newExactModel(t, paperTick)
	watts := make(units.PowerVec, m.NumBlocks())
	for i := range watts {
		watts[i] = 3
	}
	m.SetPower(watts)
	allocs := testing.AllocsPerRun(200, func() {
		m.SetPower(watts) // dirties uCache: both kernel passes run
		m.Step(paperTick)
		m.Step(paperTick) // clean path
	})
	if allocs != 0 {
		t.Fatalf("exact step allocated %.1f times per tick pair", allocs)
	}
}

// TestExactPhiRowsSumBelowOne checks a physical invariant of the
// propagator: with the ambient as heat sink, Φ is substochastic-like —
// a uniform temperature field decays toward ambient, so each row of Φ
// sums to at most 1, and strictly below 1 for nodes coupled to ambient.
func TestExactPhiRowsSumBelowOne(t *testing.T) {
	tpl, err := TemplateFor(floorplan.CMP4(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	d, err := tpl.Discretization(paperTick)
	if err != nil {
		t.Fatal(err)
	}
	n := tpl.NumNodes()
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += d.Phi(i, j)
		}
		if s > 1+1e-12 {
			t.Fatalf("row %d of Φ sums to %g > 1: spurious heat creation", i, s)
		}
		if s < 0.9 {
			t.Fatalf("row %d of Φ sums to %g: implausible decay in one 28 µs tick", i, s)
		}
	}
}

// TestExactDeterministicAcrossModels stamps two exact models from the
// shared template and verifies bit-identical trajectories — the
// property the parallel sweep's byte-identical output relies on.
func TestExactDeterministicAcrossModels(t *testing.T) {
	a := newExactModel(t, paperTick)
	b := newExactModel(t, paperTick)
	rng := rand.New(rand.NewSource(7))
	watts := make(units.PowerVec, a.NumBlocks())
	for s := 0; s < 500; s++ {
		for i := range watts {
			watts[i] = 8 * rng.Float64()
		}
		a.SetPower(watts)
		b.SetPower(watts)
		a.Step(paperTick)
		b.Step(paperTick)
	}
	for i := range a.temps {
		if a.temps[i] != b.temps[i] {
			t.Fatalf("node %d diverged across identical models: %g vs %g",
				i, a.temps[i], b.temps[i])
		}
	}
}
