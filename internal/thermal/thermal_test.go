package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"multitherm/internal/floorplan"
	"multitherm/internal/linalg"
	"multitherm/internal/units"
)

func newCMP4Model(t testing.TB) *Model {
	t.Helper()
	m, err := New(floorplan.CMP4(), DefaultParams())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidateCatchesBadValues(t *testing.T) {
	p := DefaultParams()
	p.KSilicon = 0
	if err := p.Validate(); err == nil {
		t.Error("zero conductivity accepted")
	}
	p = DefaultParams()
	p.SinkSide = p.SpreaderSide / 2
	if err := p.Validate(); err == nil {
		t.Error("sink smaller than spreader accepted")
	}
}

func TestNewRejectsOversizeChip(t *testing.T) {
	p := DefaultParams()
	p.SpreaderSide = 5e-3 // smaller than the 16 mm chip
	p.SinkSide = 10e-3
	if _, err := New(floorplan.CMP4(), p); err == nil {
		t.Error("chip larger than spreader accepted")
	}
}

func TestConductanceMatrixSymmetricAndDominant(t *testing.T) {
	m := newCMP4Model(t)
	g := m.ConductanceMatrix()
	if !g.IsSymmetric(1e-12) {
		t.Error("conductance matrix not symmetric")
	}
	// Diagonal dominance: G[i][i] ≥ Σ|G[i][j]| with equality only for
	// nodes with no ambient path.
	for i := 0; i < g.Rows(); i++ {
		var off float64
		for j := 0; j < g.Cols(); j++ {
			if i != j {
				off += math.Abs(g.At(i, j))
			}
		}
		if g.At(i, i) < off-1e-9 {
			t.Errorf("row %d (%s) not diagonally dominant: %g < %g",
				i, m.NodeName(i), g.At(i, i), off)
		}
	}
}

func TestZeroPowerSteadyStateIsAmbient(t *testing.T) {
	m := newCMP4Model(t)
	temps, err := m.SteadyState(make(units.PowerVec, m.NumBlocks()))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range temps {
		if math.Abs(v-float64(m.Params().Ambient)) > 1e-6 {
			t.Errorf("node %s: steady temp %v, want ambient", m.NodeName(i), v)
		}
	}
}

func TestSteadyStateEnergyConservation(t *testing.T) {
	// At steady state, all injected power must exit through convection:
	// Σ gAmb_i·(T_i − T_amb) == Σ P_i.
	m := newCMP4Model(t)
	power := make(units.PowerVec, m.NumBlocks())
	var total float64
	rng := rand.New(rand.NewSource(7))
	for i := range power {
		power[i] = rng.Float64() * 3
		total += power[i]
	}
	if err := m.InitSteadyState(power); err != nil {
		t.Fatal(err)
	}
	if out := m.HeatFlowToAmbient(); math.Abs(float64(out)-total) > 1e-6*total {
		t.Errorf("ambient heat flow %v, want %v", out, total)
	}
}

func TestSteadyStateMonotoneInPower(t *testing.T) {
	// Superposition/monotonicity: adding power anywhere cannot cool any
	// node (the conductance matrix is an M-matrix).
	m := newCMP4Model(t)
	base := make(units.PowerVec, m.NumBlocks())
	for i := range base {
		base[i] = 1
	}
	t0, err := m.SteadyState(base)
	if err != nil {
		t.Fatal(err)
	}
	bumped := append(units.PowerVec(nil), base...)
	bumped[3] += 5
	t1, err := m.SteadyState(bumped)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t0 {
		if t1[i] < t0[i]-1e-9 {
			t.Errorf("node %s cooled when power was added: %v -> %v",
				m.NodeName(i), t0[i], t1[i])
		}
	}
	// And the block receiving the extra power heats the most among die
	// blocks.
	maxRise, maxIdx := 0.0, -1
	for i := 0; i < m.NumBlocks(); i++ {
		if r := t1[i] - t0[i]; r > maxRise {
			maxRise, maxIdx = r, i
		}
	}
	if maxIdx != 3 {
		t.Errorf("hottest rise at block %d (%s), want 3", maxIdx, m.NodeName(maxIdx))
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	m := newCMP4Model(t)
	power := make(units.PowerVec, m.NumBlocks())
	for i := range power {
		power[i] = 1.5
	}
	want, err := m.SteadyState(power)
	if err != nil {
		t.Fatal(err)
	}
	// Start from the steady state itself: transient must hold it.
	if err := m.InitSteadyState(power); err != nil {
		t.Fatal(err)
	}
	m.SetPower(power)
	for i := 0; i < 1000; i++ {
		m.Step(100e-6)
	}
	got := m.NodeTemps()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.01 {
			t.Errorf("node %s drifted from steady state: %v vs %v",
				m.NodeName(i), got[i], want[i])
		}
	}
}

func TestTransientApproachesNewSteadyState(t *testing.T) {
	m := newCMP4Model(t)
	power := make(units.PowerVec, m.NumBlocks())
	power[m.fp.BlockIndex("c1_iregfile")] = 4
	want, err := m.SteadyState(power)
	if err != nil {
		t.Fatal(err)
	}
	m.SetUniform(m.Params().Ambient)
	m.SetPower(power)
	// Die-level transients settle in tens of ms, but the heat sink's
	// time constant is minutes, so run ~1000 s of sim time with coarse
	// external steps; internal substepping handles stability.
	for i := 0; i < 50000; i++ {
		m.Step(20e-3)
	}
	for i := 0; i < m.NumBlocks(); i++ {
		if math.Abs(float64(m.Temp(i))-want[i]) > 0.1 {
			t.Errorf("block %s: %v, want %v", m.NodeName(i), float64(m.Temp(i)), want[i])
		}
	}
}

func TestHotspotIsPoweredBlock(t *testing.T) {
	m := newCMP4Model(t)
	idx := m.fp.BlockIndex("c2_fpregfile")
	power := make(units.PowerVec, m.NumBlocks())
	for i := range power {
		power[i] = 0.3
	}
	power[idx] = 5
	if err := m.InitSteadyState(power); err != nil {
		t.Fatal(err)
	}
	_, hot := m.MaxBlockTemp()
	if hot != idx {
		t.Errorf("hotspot at %s, want c2_fpregfile", m.NodeName(hot))
	}
}

func TestDieTimeConstantsAreMilliseconds(t *testing.T) {
	// Paper §2.3: thermal variations have "slow heating and cooling time
	// constants (milliseconds)". Validate every die block's local τ is
	// in the 0.5 ms – 80 ms band under default parameters.
	m := newCMP4Model(t)
	for i := 0; i < m.NumBlocks(); i++ {
		tc := m.BlockTimeConstant(i)
		if tc < 0.5e-3 || tc > 80e-3 {
			t.Errorf("block %s: time constant %v s outside [0.5ms, 80ms]",
				m.NodeName(i), tc)
		}
	}
}

func TestStepCoolsWithoutPower(t *testing.T) {
	m := newCMP4Model(t)
	power := make(units.PowerVec, m.NumBlocks())
	for i := range power {
		power[i] = 2
	}
	if err := m.InitSteadyState(power); err != nil {
		t.Fatal(err)
	}
	start, _ := m.MaxBlockTemp()
	m.SetPower(make(units.PowerVec, m.NumBlocks()))
	m.Step(30e-3) // one stop-go stall interval
	after, _ := m.MaxBlockTemp()
	if after >= start {
		t.Errorf("chip did not cool during 30ms idle: %v -> %v", start, after)
	}
	// Cooling must be a few degrees in 30 ms (the stop-go premise:
	// "after lowering the temperature a few degrees through stalling").
	if start-after < 1 {
		t.Errorf("cooled only %.3f °C in 30 ms; stop-go premise broken", float64(start-after))
	}
}

func TestMaxStableStepPositive(t *testing.T) {
	m := newCMP4Model(t)
	h := m.MaxStableStep()
	if h <= 0 || math.IsInf(float64(h), 1) {
		t.Fatalf("MaxStableStep = %v", h)
	}
	// The 28 µs control period should not require absurd substepping.
	if h < 1e-6 {
		t.Errorf("stability bound %v s makes simulation impractical", h)
	}
}

func TestStepEnergyBalance(t *testing.T) {
	// Over any interval: ΔstoredEnergy = ∫(P_in − P_out)dt. Check with a
	// coarse trapezoid over small steps.
	m := newCMP4Model(t)
	power := make(units.PowerVec, m.NumBlocks())
	for i := range power {
		power[i] = 1
	}
	m.SetPower(power)
	m.SetUniform(m.Params().Ambient)
	var pin, pout float64
	const dt = 1e-3
	for i := 0; i < 500; i++ {
		outBefore := float64(m.HeatFlowToAmbient())
		m.Step(dt)
		outAfter := float64(m.HeatFlowToAmbient())
		pin += float64(m.NumBlocks()) * 1 * dt
		pout += (outBefore + outAfter) / 2 * dt
	}
	stored := float64(m.StoredEnergy())
	if rel := math.Abs(stored-(pin-pout)) / pin; rel > 0.01 {
		t.Errorf("energy balance off by %.2f%%: stored %v, net in %v", rel*100, stored, pin-pout)
	}
}

func TestSteadyStateLinearityProperty(t *testing.T) {
	// The RC network is linear: steadyState(a·P1 + b·P2) ==
	// a·steadyState(P1) + b·steadyState(P2) − (a+b−1)·ambient.
	m := newCMP4Model(t)
	amb := float64(m.Params().Ambient)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p1 := make(units.PowerVec, m.NumBlocks())
		p2 := make(units.PowerVec, m.NumBlocks())
		for i := range p1 {
			p1[i] = rng.Float64() * 2
			p2[i] = rng.Float64() * 2
		}
		a, b := rng.Float64()*2, rng.Float64()*2
		comb := make(units.PowerVec, len(p1))
		for i := range comb {
			comb[i] = a*p1[i] + b*p2[i]
		}
		t1, err1 := m.SteadyState(p1)
		t2, err2 := m.SteadyState(p2)
		tc, err3 := m.SteadyState(comb)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range tc {
			want := a*(t1[i]-amb) + b*(t2[i]-amb) + amb
			if math.Abs(tc[i]-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBaniasModelBuilds(t *testing.T) {
	m, err := New(floorplan.Banias(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBlocks() != 13 {
		t.Errorf("banias blocks = %d, want 13", m.NumBlocks())
	}
}

func TestSetPowerLengthPanics(t *testing.T) {
	m := newCMP4Model(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.SetPower(units.PowerVec{1})
}

func TestSteadyStateLengthError(t *testing.T) {
	m := newCMP4Model(t)
	if _, err := m.SteadyState(units.PowerVec{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestBlockTempsCopy(t *testing.T) {
	m := newCMP4Model(t)
	temps := m.BlockTemps(nil)
	temps[0] = -1000
	if m.Temp(0) == -1000 {
		t.Error("BlockTemps returned aliased storage")
	}
	buf := make(units.TempVec, m.NumBlocks())
	if got := m.BlockTemps(buf); &got[0] != &buf[0] {
		t.Error("BlockTemps ignored provided buffer")
	}
}

func TestConductanceResidual(t *testing.T) {
	// Steady-state solve must satisfy G·T = rhs tightly.
	m := newCMP4Model(t)
	power := make(units.PowerVec, m.NumBlocks())
	power[0] = 10
	temps, err := m.SteadyState(power)
	if err != nil {
		t.Fatal(err)
	}
	g := m.ConductanceMatrix()
	rhs := make([]float64, m.NumNodes())
	rhs[0] = 10
	for i := 0; i < m.NumNodes(); i++ {
		rhs[i] += m.gAmbient[i] * float64(m.Params().Ambient)
	}
	if r := linalg.Residual(g, temps.Raw(), rhs); r > 1e-8 {
		t.Errorf("residual %g", r)
	}
}
