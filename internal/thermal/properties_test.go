package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"multitherm/internal/floorplan"
	"multitherm/internal/units"
)

// TestTransientLinearityProperty: the RC network is linear and
// time-invariant, so scaling the input power scales the temperature
// *rise* at every instant: T(t; a·P) − amb = a·(T(t; P) − amb).
func TestTransientLinearityProperty(t *testing.T) {
	fp := floorplan.CMP4()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.5 + rng.Float64()*2
		p1 := make(units.PowerVec, len(fp.Blocks))
		p2 := make(units.PowerVec, len(fp.Blocks))
		for i := range p1 {
			p1[i] = rng.Float64() * 3
			p2[i] = a * p1[i]
		}
		m1, err := New(fp, DefaultParams())
		if err != nil {
			return false
		}
		m2, err := New(fp, DefaultParams())
		if err != nil {
			return false
		}
		m1.SetPower(p1)
		m2.SetPower(p2)
		amb := float64(DefaultParams().Ambient)
		for step := 0; step < 40; step++ {
			m1.Step(2e-3)
			m2.Step(2e-3)
		}
		for i := 0; i < m1.NumBlocks(); i++ {
			want := a * (float64(m1.Temp(i)) - amb)
			got := float64(m2.Temp(i)) - amb
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestCoolingIsMonotoneProperty: with power removed, every node decays
// toward ambient without oscillation (the network is passive: all
// eigenvalues real and negative).
func TestCoolingIsMonotoneProperty(t *testing.T) {
	m := newCMP4Model(t)
	power := make(units.PowerVec, m.NumBlocks())
	rng := rand.New(rand.NewSource(5))
	for i := range power {
		power[i] = rng.Float64() * 4
	}
	if err := m.InitSteadyState(power); err != nil {
		t.Fatal(err)
	}
	m.SetPower(make(units.PowerVec, m.NumBlocks()))
	prev := m.NodeTemps()
	for step := 0; step < 50; step++ {
		m.Step(5e-3)
		cur := m.NodeTemps()
		for i := range cur {
			if cur[i] > prev[i]+1e-9 {
				// A node may transiently warm if a hotter neighbour
				// drains into it, but never above that neighbour's
				// previous temperature (maximum principle).
				maxPrev := prev[i]
				for j := range prev {
					if prev[j] > maxPrev {
						maxPrev = prev[j]
					}
				}
				if cur[i] > maxPrev+1e-9 {
					t.Fatalf("node %s exceeded the previous maximum while cooling", m.NodeName(i))
				}
			}
		}
		prev = cur
	}
	// After 250 ms unpowered the fast die-level component has decayed;
	// the slow package (heat-sink time constant is minutes) still holds
	// heat, so compare against the starting hotspot, not ambient.
	hot, _ := m.MaxBlockTemp()
	if hot > 84 {
		t.Errorf("max die temp %.2f barely cooled in 250 ms", hot)
	}
}

// TestEquilibriumIsAttractorProperty: from random initial temperature
// fields, the transient converges to the same steady state.
func TestEquilibriumIsAttractorProperty(t *testing.T) {
	m := newCMP4Model(t)
	power := make(units.PowerVec, m.NumBlocks())
	for i := range power {
		power[i] = 1.2
	}
	want, err := m.SteadyState(power)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3; trial++ {
		m.SetUniform(units.Celsius(30 + rng.Float64()*70))
		m.SetPower(power)
		for step := 0; step < 60000; step++ {
			m.Step(20e-3)
		}
		for i := 0; i < m.NumBlocks(); i++ {
			if math.Abs(float64(m.Temp(i))-want[i]) > 0.2 {
				t.Fatalf("trial %d: block %s at %.2f, steady state %.2f",
					trial, m.NodeName(i), m.Temp(i), want[i])
			}
		}
	}
}

// TestHotspotLocality: power injected into one register file must heat
// that block more than any block on another core — the premise of
// per-core sensing and distributed control.
func TestHotspotLocality(t *testing.T) {
	m := newCMP4Model(t)
	fp := m.Floorplan()
	src := fp.BlockIndex("c1_iregfile")
	power := make(units.PowerVec, m.NumBlocks())
	power[src] = 5
	ss, err := m.SteadyState(power)
	if err != nil {
		t.Fatal(err)
	}
	amb := float64(m.Params().Ambient)
	for i, b := range fp.Blocks {
		if b.Core != 1 && b.Core != floorplan.SharedCore {
			if ss[i]-amb > (ss[src]-amb)*0.5 {
				t.Errorf("block %s on core %d received %.0f%% of the source rise",
					b.Name, b.Core, (ss[i]-amb)/(ss[src]-amb)*100)
			}
		}
	}
}

// TestStepSizeInvariance: integrating 10 ms as one call or as forty
// 0.25 ms calls must agree (the integrator substeps internally).
func TestStepSizeInvariance(t *testing.T) {
	p := make(units.PowerVec, 45)
	for i := range p {
		p[i] = 2
	}
	a := newCMP4Model(t)
	b := newCMP4Model(t)
	a.SetPower(p)
	b.SetPower(p)
	a.Step(10e-3)
	for i := 0; i < 40; i++ {
		b.Step(0.25e-3)
	}
	for i := 0; i < a.NumNodes(); i++ {
		ta, tb := a.NodeTemps()[i], b.NodeTemps()[i]
		if math.Abs(ta-tb) > 2e-2 {
			t.Errorf("node %s: coarse %.6f vs fine %.6f", a.NodeName(i), ta, tb)
		}
	}
}
