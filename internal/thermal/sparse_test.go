package thermal

import (
	"math"
	"testing"

	"multitherm/internal/floorplan"
	"multitherm/internal/linalg"
	"multitherm/internal/units"
)

const testDt = units.Seconds(100000.0 / 3.6e9) // the paper's sample period

// gridTemplate builds a generated-floorplan template sized past the
// sparse crossover, with the package scaled to fit.
func gridTemplate(t *testing.T, rows, cols int) *Template {
	t.Helper()
	fp, err := floorplan.Grid(floorplan.GridSpec{
		Rows: rows, Cols: cols,
		Pattern: floorplan.PatternMixedRows,
		Cooling: floorplan.CoolingEdgeBoost,
	})
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := TemplateFor(fp, FitParams(fp))
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

// testPower fills a deterministic, spatially varying power pattern.
func testPower(n int, phase int) units.PowerVec {
	p := units.MakePowerVec(n)
	for i := range p {
		p[i] = 1.0 + 0.5*float64((i+phase)%5)
	}
	return p
}

// TestSparseMatchesDenseOnCMP4 is the sparse-vs-dense parity property
// test on the paper's 4-core grid: the CMP4 template sits below the
// crossover, so its memoized discretization is dense — but the sparse
// builder works on any template, and both represent the same exact ZOH
// update. Two models stepped side by side through 300 ticks of
// time-varying power must agree to the Krylov tolerance, not merely to
// integrator truncation error.
func TestSparseMatchesDenseOnCMP4(t *testing.T) {
	tmpl, err := TemplateFor(floorplan.CMP4(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	dDense, err := tmpl.Discretization(testDt)
	if err != nil {
		t.Fatal(err)
	}
	if dDense.Sparse() {
		t.Fatalf("CMP4 (%d nodes) memoized a sparse discretization; want dense below the crossover", tmpl.n)
	}
	dSparse, err := tmpl.buildSparseDiscretization(float64(testDt))
	if err != nil {
		t.Fatal(err)
	}
	mD := tmpl.NewModel()
	mS := tmpl.NewModel()
	mD.armDisc(dDense)
	mS.armDisc(dSparse)
	nb := tmpl.NumBlocks()
	for tick := 0; tick < 300; tick++ {
		if tick%10 == 0 {
			pw := testPower(nb, tick/10)
			mD.SetPower(pw)
			mS.SetPower(pw)
		}
		mD.Step(testDt)
		mS.Step(testDt)
		for i := 0; i < tmpl.NumNodes(); i++ {
			diff := math.Abs(mD.temps[i] - mS.temps[i])
			if diff > 1e-6 {
				t.Fatalf("tick %d node %d: dense %.12g sparse %.12g (diff %g)",
					tick, i, mD.temps[i], mS.temps[i], diff)
			}
		}
	}
}

// TestGridPicksSparseAutomatically pins the crossover: generated grids
// above 64 nodes must memoize the Krylov representation, and stepping
// it must relax toward the CG steady state.
func TestGridPicksSparseAutomatically(t *testing.T) {
	tmpl := gridTemplate(t, 4, 4) // 64 blocks + 10 package nodes
	if tmpl.NumNodes() <= sparseCrossoverNodes {
		t.Fatalf("grid template has %d nodes; want > %d for this test", tmpl.NumNodes(), sparseCrossoverNodes)
	}
	d, err := tmpl.Discretization(testDt)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Sparse() {
		t.Fatalf("grid discretization mode %q; want sparse above the crossover", d.Mode())
	}
	if !tmpl.PreferExact(testDt) {
		t.Error("PreferExact = false for a sparse template; the batch path would fall back to RK4")
	}
	// The CG steady state must be a fixed point of the Krylov stepper:
	// start a model at equilibrium and verify stepping holds it there.
	pw := testPower(tmpl.NumBlocks(), 0)
	want, err := tmpl.SteadyState(pw)
	if err != nil {
		t.Fatal(err)
	}
	m := tmpl.NewModel()
	if err := m.InitSteadyState(pw); err != nil {
		t.Fatal(err)
	}
	if err := m.UseExact(testDt); err != nil {
		t.Fatal(err)
	}
	m.SetPower(pw)
	for tick := 0; tick < 3600; tick++ {
		m.Step(testDt)
	}
	for i := 0; i < tmpl.NumNodes(); i++ {
		if diff := math.Abs(m.temps[i] - float64(want[i])); diff > 1e-3 {
			t.Errorf("node %d: drifted to %.6f from steady %.6f over 0.1s", i, m.temps[i], float64(want[i]))
		}
	}
}

// TestSparseStepBitReproducible runs the same sparse trajectory twice
// and demands bitwise equality — the determinism contract behind
// //mtlint:deterministic.
func TestSparseStepBitReproducible(t *testing.T) {
	tmpl := gridTemplate(t, 4, 4)
	run := func() []float64 {
		m := tmpl.NewModel()
		if err := m.UseExact(testDt); err != nil {
			t.Fatal(err)
		}
		for tick := 0; tick < 50; tick++ {
			if tick%7 == 0 {
				m.SetPower(testPower(tmpl.NumBlocks(), tick))
			}
			m.Step(testDt)
		}
		out := make([]float64, tmpl.NumNodes())
		copy(out, m.temps)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("node %d: %x vs %x across identical runs", i, math.Float64bits(a[i]), math.Float64bits(b[i]))
		}
	}
}

// TestSparseBatchBitIdenticalToSequential is the lockstep contract at
// the thermal layer: NewBatch over sparse lanes must reproduce
// sequential UseExact stepping bit for bit, per lane, including lanes
// with divergent power histories.
func TestSparseBatchBitIdenticalToSequential(t *testing.T) {
	tmpl := gridTemplate(t, 4, 4)
	const k = 3
	seq := make([][]float64, k)
	for l := 0; l < k; l++ {
		m := tmpl.NewModel()
		if err := m.UseExact(testDt); err != nil {
			t.Fatal(err)
		}
		for tick := 0; tick < 40; tick++ {
			if (tick+l)%5 == 0 {
				m.SetPower(testPower(tmpl.NumBlocks(), tick*7+l))
			}
			m.Step(testDt)
		}
		seq[l] = make([]float64, tmpl.NumNodes())
		copy(seq[l], m.temps)
	}
	models := make([]*Model, k)
	for l := range models {
		models[l] = tmpl.NewModel()
	}
	b, err := NewBatch(models, testDt)
	if err != nil {
		t.Fatal(err)
	}
	if b.SIMDAccelerated() {
		t.Error("sparse batch claims SIMD acceleration")
	}
	for tick := 0; tick < 40; tick++ {
		for l, m := range models {
			if (tick+l)%5 == 0 {
				m.SetPower(testPower(tmpl.NumBlocks(), tick*7+l))
			}
		}
		b.Step()
	}
	for l, m := range models {
		for i := 0; i < tmpl.NumNodes(); i++ {
			if math.Float64bits(m.temps[i]) != math.Float64bits(seq[l][i]) {
				t.Fatalf("lane %d node %d: batch %x sequential %x",
					l, i, math.Float64bits(m.temps[i]), math.Float64bits(seq[l][i]))
			}
		}
	}
}

// TestSparseSteadyStateMatchesDense cross-checks the CG solve — the
// SteadyState path above the crossover — against a dense LU reference
// assembled from the same conductance matrix.
func TestSparseSteadyStateMatchesDense(t *testing.T) {
	tmpl := gridTemplate(t, 4, 4) // above crossover: SteadyState goes through CG
	pw := testPower(tmpl.NumBlocks(), 2)
	viaCG, err := tmpl.SteadyState(pw)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, tmpl.n)
	copy(rhs, pw)
	for i, ga := range tmpl.gAmbient {
		rhs[i] += ga * float64(tmpl.params.Ambient)
	}
	viaLU, err := linalg.Solve(tmpl.ConductanceMatrix(), rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaLU {
		if diff := math.Abs(viaLU[i] - float64(viaCG[i])); diff > 1e-6 {
			t.Errorf("node %d: LU %.9f CG %.9f", i, viaLU[i], float64(viaCG[i]))
		}
	}
}

// TestCoolingBoostLowersTemps checks that per-position cooling reaches
// the thermal model: the edge-boosted grid must run cooler than the
// identical grid with uniform cooling under the same power.
func TestCoolingBoostLowersTemps(t *testing.T) {
	build := func(cooling floorplan.CoolingPolicy) units.TempVec {
		fp, err := floorplan.Grid(floorplan.GridSpec{
			Rows: 2, Cols: 2, Pattern: floorplan.PatternHomogeneous, Cooling: cooling,
		})
		if err != nil {
			t.Fatal(err)
		}
		tmpl, err := TemplateFor(fp, FitParams(fp))
		if err != nil {
			t.Fatal(err)
		}
		ss, err := tmpl.SteadyState(testPower(tmpl.NumBlocks(), 0))
		if err != nil {
			t.Fatal(err)
		}
		return ss
	}
	uniform := build(floorplan.CoolingUniform)
	boosted := build(floorplan.CoolingEdgeBoost)
	// On a 2x2 grid every tile is an edge tile, so every die node must
	// be strictly cooler with the boost.
	cooler := 0
	for i := range boosted {
		if float64(boosted[i]) < float64(uniform[i]) {
			cooler++
		}
	}
	if cooler == 0 {
		t.Errorf("edge boost left no node cooler (uniform hottest %.2f, boosted hottest %.2f)",
			maxTemp(uniform), maxTemp(boosted))
	}
}

func maxTemp(v units.TempVec) float64 {
	max := math.Inf(-1)
	for _, t := range v {
		if float64(t) > max {
			max = float64(t)
		}
	}
	return max
}

// TestFitParamsKeepsDefaultsForCMP4 pins that the paper's grid is
// untouched while oversized grids get a fitted package.
func TestFitParamsKeepsDefaultsForCMP4(t *testing.T) {
	if got, want := FitParams(floorplan.CMP4()), DefaultParams(); got != want {
		t.Errorf("FitParams(CMP4) = %+v, want DefaultParams", got)
	}
	fp, err := floorplan.Grid(floorplan.GridSpec{Rows: 16, Cols: 16, Pattern: floorplan.PatternMixedRows})
	if err != nil {
		t.Fatal(err)
	}
	p := FitParams(fp)
	if p.SpreaderSide < fp.ChipW {
		t.Errorf("fitted spreader %.3f smaller than chip %.3f", p.SpreaderSide, fp.ChipW)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("fitted params invalid: %v", err)
	}
	if _, err := TemplateFor(fp, p); err != nil {
		t.Errorf("16x16 grid template: %v", err)
	}
}

// TestSparseStepAllocationFree backs the zero-alloc annotations on the
// sparse tick paths at the thermal layer.
func TestSparseStepAllocationFree(t *testing.T) {
	tmpl := gridTemplate(t, 4, 4)
	m := tmpl.NewModel()
	if err := m.UseExact(testDt); err != nil {
		t.Fatal(err)
	}
	pw := testPower(tmpl.NumBlocks(), 0)
	if got := testing.AllocsPerRun(20, func() {
		m.SetPower(pw)
		m.Step(testDt)
	}); got != 0 {
		t.Errorf("sparse Model.Step allocates %v per run", got)
	}
	models := []*Model{tmpl.NewModel(), tmpl.NewModel(), tmpl.NewModel(), tmpl.NewModel()}
	b, err := NewBatch(models, testDt)
	if err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(20, func() {
		for _, m := range models {
			m.SetPower(pw)
		}
		b.Step()
	}); got != 0 {
		t.Errorf("sparse BatchModel.Step allocates %v per run", got)
	}
}
