package thermal

import (
	"fmt"
	"math"
)

// derivs computes dT/dt into out given node temperatures t:
//
//	C_i·dT_i/dt = P_i + Σ_j g_ij·(T_j − T_i) + gAmb_i·(T_amb − T_i)
func (m *Model) derivs(t []float64, out []float64) {
	amb := m.params.Ambient
	for i := 0; i < m.n; i++ {
		flow := -m.gTotal[i] * t[i]
		idx := m.nbrIdx[i]
		gs := m.nbrG[i]
		for k, j := range idx {
			flow += gs[k] * t[j]
		}
		flow += m.gAmbient[i] * amb
		if i < m.nBlocks {
			flow += m.power[i]
		}
		out[i] = flow / m.cap[i]
	}
}

// MaxStableStep returns a conservative upper bound on the explicit
// integration step: the classical RK4 stability limit is ~2.78/λ for
// the fastest eigenvalue λ; we bound λ by max_i (ΣG_i/C_i) and keep a
// 2× margin.
func (m *Model) MaxStableStep() float64 {
	maxRate := 0.0
	for i := 0; i < m.n; i++ {
		if r := m.gTotal[i] / m.cap[i]; r > maxRate {
			maxRate = r
		}
	}
	if maxRate == 0 {
		return math.Inf(1)
	}
	return 1.39 / maxRate
}

// Step advances the transient solution by dt seconds using classical
// RK4, internally substepping if dt exceeds the stability bound. Power
// inputs are held constant across the step (the simulator changes them
// only at trace-sample boundaries, every 28 µs).
func (m *Model) Step(dt float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("thermal: non-positive step %g", dt))
	}
	hMax := m.MaxStableStep()
	steps := 1
	if dt > hMax {
		steps = int(math.Ceil(dt / hMax))
	}
	h := dt / float64(steps)
	for s := 0; s < steps; s++ {
		m.rk4(h)
	}
}

func (m *Model) rk4(h float64) {
	t := m.temps
	m.derivs(t, m.k1)
	for i := range m.tmp {
		m.tmp[i] = t[i] + 0.5*h*m.k1[i]
	}
	m.derivs(m.tmp, m.k2)
	for i := range m.tmp {
		m.tmp[i] = t[i] + 0.5*h*m.k2[i]
	}
	m.derivs(m.tmp, m.k3)
	for i := range m.tmp {
		m.tmp[i] = t[i] + h*m.k3[i]
	}
	m.derivs(m.tmp, m.k4)
	for i := range t {
		t[i] += h / 6 * (m.k1[i] + 2*m.k2[i] + 2*m.k3[i] + m.k4[i])
	}
}

// HeatFlowToAmbient returns the instantaneous total heat flow from the
// model into the ambient, in watts. At steady state this equals the
// total input power (energy conservation).
func (m *Model) HeatFlowToAmbient() float64 {
	var w float64
	for i, ga := range m.gAmbient {
		w += ga * (m.temps[i] - m.params.Ambient)
	}
	return w
}

// StoredEnergy returns Σ C_i·(T_i − ambient): the thermal energy stored
// in the network relative to the ambient reference, in joules.
func (m *Model) StoredEnergy() float64 {
	var e float64
	for i, c := range m.cap {
		e += c * (m.temps[i] - m.params.Ambient)
	}
	return e
}

// BlockTimeConstant estimates block i's local thermal time constant
// C_i/ΣG_i in seconds — the scale on which its hotspot heats and cools.
// The paper relies on these being milliseconds to justify its 30 ms
// stop-go interval and 28 µs control sampling.
func (m *Model) BlockTimeConstant(i int) float64 {
	if i < 0 || i >= m.nBlocks {
		panic(fmt.Sprintf("thermal: block index %d out of range", i))
	}
	return m.cap[i] / m.gTotal[i]
}
