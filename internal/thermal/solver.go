package thermal

import (
	"fmt"
	"math"

	"multitherm/internal/units"
)

// derivs computes dT/dt into out given node temperatures t:
//
//	C_i·dT_i/dt = P_i + Σ_j g_ij·(T_j − T_i) + gAmb_i·(T_amb − T_i)
//
// It uses the same CSR walk and summation order as the fused RK4
// stages below, so it can serve as their reference in tests.
func (m *Model) derivs(t []float64, out []float64) {
	for i := 0; i < m.n; i++ {
		flow := m.power[i] + m.ambFlow[i] - m.gTotal[i]*t[i]
		idx := m.nbrIdx[i]
		gs := m.nbrG[i]
		for k, j := range idx {
			flow += gs[k] * t[j]
		}
		out[i] = flow * m.invCap[i]
	}
}

// computeMaxStableStep derives a conservative upper bound on the
// explicit integration step: the classical RK4 stability limit is
// ~2.78/λ for the fastest eigenvalue λ; we bound λ by max_i (ΣG_i/C_i)
// and keep a 2× margin. The bound depends only on the network, so the
// template computes it once at build time.
func (t *Template) computeMaxStableStep() float64 {
	maxRate := 0.0
	for i := 0; i < t.n; i++ {
		if r := t.gTotal[i] / t.cap[i]; r > maxRate {
			maxRate = r
		}
	}
	if maxRate == 0 { //mtlint:allow floatcmp exact zero rate means an unconnected network
		return math.Inf(1)
	}
	return 1.39 / maxRate
}

// MaxStableStep returns the precomputed RK4 stability bound.
func (t *Template) MaxStableStep() units.Seconds { return units.Seconds(t.hMax) }

// Step advances the transient solution by dt seconds. If UseExact has
// armed the exact ZOH discretization for this dt, the step is a single
// application of T ← Φ·T + Ψ·u with no truncation error; any other dt
// falls back to classical RK4, internally substepping if dt exceeds the
// stability bound. Power inputs are held constant across the step (the
// simulator changes them only at trace-sample boundaries, every 28 µs).
//
//mtlint:zeroalloc
func (m *Model) Step(dt units.Seconds) {
	h := float64(dt)
	if h <= 0 {
		badStepSize(h)
	}
	if d := m.disc; d != nil && d.dt == h { //mtlint:allow floatcmp the exact path is armed for bit-exactly this dt (both sides the same raw seconds value)
		m.stepExact(d)
		return
	}
	steps := 1
	if h > m.hMax {
		steps = int(math.Ceil(h / m.hMax))
	}
	h /= float64(steps)
	for s := 0; s < steps; s++ {
		m.rk4(h)
	}
}

// badStepSize formats the Step argument panic off the hot path:
// fmt.Sprintf's interface conversion is a heap allocation that must not
// appear inside the zeroalloc-marked step body.
//
//go:noinline
func badStepSize(dt float64) {
	panic(fmt.Sprintf("thermal: non-positive step %g", dt))
}

// rk4 performs one classical RK4 step of size h with each derivative
// evaluation fused into its state update: every stage walks the
// adjacency once, accumulating the weighted k-sum and producing the
// next stage input in the same pass.
//
//mtlint:zeroalloc
func (m *Model) rk4(h float64) {
	t := m.temps
	acc, ta, tb := m.acc, m.tmpA, m.tmpB
	m.firstStage(t, ta, acc, 0.5*h) // k1
	m.stage(ta, tb, acc, 0.5*h, 2)  // k2
	m.stage(tb, ta, acc, h, 2)      // k3
	m.finalStage(ta, acc, h)        // k4 + state update
}

// firstStage computes k1 = f(src), seeds acc = k1, and writes
// dst = temps + hk·k1, saving the separate zeroing pass.
//
//mtlint:zeroalloc
func (m *Model) firstStage(src, dst, acc []float64, hk float64) {
	t := m.temps
	for i := 0; i < m.n; i++ {
		flow := m.power[i] + m.ambFlow[i] - m.gTotal[i]*src[i]
		idx := m.nbrIdx[i]
		gs := m.nbrG[i]
		for k, j := range idx {
			flow += gs[k] * src[j]
		}
		kv := flow * m.invCap[i]
		acc[i] = kv
		dst[i] = t[i] + hk*kv
	}
}

// stage computes k = f(src), accumulates accW·k into acc, and writes
// dst = temps + hk·k in one pass.
//
//mtlint:zeroalloc
func (m *Model) stage(src, dst, acc []float64, hk, accW float64) {
	t := m.temps
	for i := 0; i < m.n; i++ {
		flow := m.power[i] + m.ambFlow[i] - m.gTotal[i]*src[i]
		idx := m.nbrIdx[i]
		gs := m.nbrG[i]
		for k, j := range idx {
			flow += gs[k] * src[j]
		}
		kv := flow * m.invCap[i]
		acc[i] += accW * kv
		dst[i] = t[i] + hk*kv
	}
}

// finalStage computes k4 = f(src) and applies the combined update
// temps += h/6·(acc + k4) in the same pass.
//
//mtlint:zeroalloc
func (m *Model) finalStage(src, acc []float64, h float64) {
	t := m.temps
	w := h / 6
	for i := 0; i < m.n; i++ {
		flow := m.power[i] + m.ambFlow[i] - m.gTotal[i]*src[i]
		idx := m.nbrIdx[i]
		gs := m.nbrG[i]
		for k, j := range idx {
			flow += gs[k] * src[j]
		}
		kv := flow * m.invCap[i]
		t[i] += w * (acc[i] + kv)
	}
}

// HeatFlowToAmbient returns the instantaneous total heat flow from the
// model into the ambient. At steady state this equals the total input
// power (energy conservation).
func (m *Model) HeatFlowToAmbient() units.Watts {
	var w float64
	amb := float64(m.params.Ambient)
	for i, ga := range m.gAmbient {
		w += ga * (m.temps[i] - amb)
	}
	return units.Watts(w)
}

// StoredEnergy returns Σ C_i·(T_i − ambient): the thermal energy stored
// in the network relative to the ambient reference.
func (m *Model) StoredEnergy() units.Joules {
	var e float64
	amb := float64(m.params.Ambient)
	for i, c := range m.cap {
		e += c * (m.temps[i] - amb)
	}
	return units.Joules(e)
}

// BlockTimeConstant estimates block i's local thermal time constant
// C_i/ΣG_i — the scale on which its hotspot heats and cools. The paper
// relies on these being milliseconds to justify its 30 ms stop-go
// interval and 28 µs control sampling.
func (t *Template) BlockTimeConstant(i int) units.Seconds {
	if i < 0 || i >= t.nBlocks {
		panic(fmt.Sprintf("thermal: block index %d out of range", i))
	}
	return units.Seconds(t.cap[i] / t.gTotal[i])
}
