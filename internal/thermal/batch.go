package thermal

import (
	"fmt"

	"multitherm/internal/linalg"
	"multitherm/internal/linalg/sparse"
	"multitherm/internal/units"
)

// BatchModel advances K models stamped from one Template through the
// shared exact-ZOH propagator in lockstep: the per-tick update becomes
// Φ·T + Ψ·U with T an n×K state panel instead of K separate
// matrix-vector products, so the propagator's memory traffic and the
// per-call dispatch overhead amortize across the whole batch
// (GEMV → GEMM). Adopted models keep working as plain Models — their
// SetPower/Temp/BlockTemps/MaxBlockTemp views alias lanes of the
// shared panels — so per-lane controllers, sensors, and metrics code
// runs unchanged; only the thermal advance is fused.
//
// Lane layout: lane l of the double-buffered state panels (and of the
// input-term panel) is the padded column [l·stride, (l+1)·stride);
// each adopted model's temps/xbuf/ybuf/uCache slice headers are
// rewired onto its lane, and Step swaps the panel roles plus every
// lane's headers in lockstep.
//
// Per lane the arithmetic is exactly Model.stepExact's — same input
// memoization, same kernel operation order — so a batched run is
// bit-identical to K sequential runs. A BatchModel must not be shared
// across goroutines.
type BatchModel struct {
	d      *Discretization
	lanes  []*Model
	stride int

	// Double-buffered K×stride state panels: x holds the live state
	// (each lane model's temps aliases its x lane), the tick writes y,
	// and the two swap.
	x, y []float64

	// u is the K×stride panel of per-lane memoized input terms
	// Ψ·P + ψ_amb; lane l aliases that model's uCache. Lanes recompute
	// their term only while their powerDirty flag is set.
	u []float64

	// pw is the K×n power panel; lane l aliases that model's power
	// vector, so SetPower writes land in panel position and the fused
	// all-lanes-dirty input recompute reads the panel directly with no
	// gather. biasAmb replicates ψ_amb across lanes, built once.
	pw      []float64
	biasAmb []float64

	// Sparse mode (d.Sparse()): z is the K×(n+1) augmented state panel
	// (lane l's temps alias z[l*(n+1):l*(n+1)+n]), c the K×n panel of
	// substep-scaled constant terms, and kws the shared K-lane Arnoldi
	// workspace. The dense panels above stay nil; the Krylov advance is
	// in place, so there is no buffer swap.
	z, c []float64
	kws  *sparse.Workspace
}

// NewBatch adopts the given models — all stamped from one Template —
// into a lockstep batch at step dt, rewiring their mutable state onto
// shared panels. Current temperatures carry over; each lane's input
// term is marked dirty so the first Step rebuilds it. The models'
// own Step(dt) reverts to RK4 (their exact path is disarmed): while
// adopted, only BatchModel.Step may advance thermal state on the
// exact grid, since it owns the panel double-buffering.
func NewBatch(models []*Model, dt units.Seconds) (*BatchModel, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("thermal: empty batch")
	}
	t := models[0].Template
	for i, m := range models {
		if m.Template != t {
			return nil, fmt.Errorf("thermal: batch lane %d stamped from a different template", i)
		}
	}
	d, err := t.Discretization(dt)
	if err != nil {
		return nil, err
	}
	k := len(models)
	if d.Sparse() {
		n1 := t.n + 1
		b := &BatchModel{
			d: d, lanes: models, stride: n1,
			z:   make([]float64, k*n1),
			c:   make([]float64, k*t.n),
			kws: sparse.NewWorkspace(d.prop, k),
		}
		for l, m := range models {
			lz := b.z[l*n1 : (l+1)*n1 : (l+1)*n1]
			copy(lz[:m.n], m.temps)
			lz[m.n] = 1
			m.temps = lz[:m.n]
			m.powerDirty = true
			m.disc = nil
		}
		return b, nil
	}
	stride := d.phiPacked.Stride()
	b := &BatchModel{
		d: d, lanes: models, stride: stride,
		x:       linalg.NewAligned(k * stride),
		y:       linalg.NewAligned(k * stride),
		u:       linalg.NewAligned(k * stride),
		pw:      linalg.NewAligned(k * t.n),
		biasAmb: linalg.NewAligned(k * stride),
	}
	for l, m := range models {
		lx := b.x[l*stride : (l+1)*stride : (l+1)*stride]
		copy(lx[:m.n], m.temps)
		m.xbuf = lx
		m.ybuf = b.y[l*stride : (l+1)*stride : (l+1)*stride]
		m.uCache = b.u[l*stride : (l+1)*stride : (l+1)*stride]
		m.temps = lx[:m.n]
		lp := b.pw[l*t.n : (l+1)*t.n : (l+1)*t.n]
		copy(lp, m.power)
		m.power = lp
		m.powerDirty = true
		m.disc = nil
		copy(b.biasAmb[l*stride:(l+1)*stride], d.psiAmbPad)
	}
	return b, nil
}

// Lanes returns the batch width K.
func (b *BatchModel) Lanes() int { return len(b.lanes) }

// Dt returns the step size the batch advances per tick.
func (b *BatchModel) Dt() units.Seconds { return units.Seconds(b.d.dt) }

// SIMDAccelerated reports whether the batched tick runs the vectorized
// panel kernel on this machine.
func (b *BatchModel) SIMDAccelerated() bool { return b.d.SIMDAccelerated() }

// Step advances every lane by one exact tick: T ← Φ·T + (Ψ·P + ψ_amb),
// with T the n×K panel. Input terms are memoized per lane and
// recomputed only for lanes whose power changed since the last tick;
// when every lane is dirty — the simulator's steady pattern under
// leakage-temperature feedback — the recompute itself runs as one
// fused Ψ panel pass reading the power panel directly. Both panel
// passes keep their operand matrix L1-resident across the lane pairs,
// which is why the update runs as two sweeps rather than one fused
// [Ψ|Φ] pass: the concatenated operand would exceed L1 and re-stream
// from L2 for every pair. Zero allocations.
//
//mtlint:zeroalloc
func (b *BatchModel) Step() {
	d, k := b.d, len(b.lanes)
	if d.prop != nil {
		b.stepSparse()
		return
	}
	dirty := 0
	for _, m := range b.lanes {
		if m.powerDirty {
			dirty++
		}
	}
	if dirty == k && k > 1 {
		for _, m := range b.lanes {
			m.powerDirty = false
		}
		d.psiPacked.MulBatchInto(b.u, b.biasAmb, k, b.pw, b.lanes[0].n)
	} else if dirty > 0 {
		for _, m := range b.lanes {
			if m.powerDirty {
				d.psiPacked.MulAddInto(m.uCache, d.psiAmbPad, m.power[:m.nBlocks])
				m.powerDirty = false
			}
		}
	}
	d.phiPacked.MulBatchInto(b.y, b.u, k, b.x, b.stride)
	b.x, b.y = b.y, b.x
	for _, m := range b.lanes {
		m.xbuf, m.ybuf = m.ybuf, m.xbuf
		m.temps = m.xbuf[:m.n]
	}
}

// stepSparse advances every lane one exact tick through the shared
// Krylov propagator: the m Arnoldi mat-vecs per substep run as one
// batched SpMM over the lane panel, and each lane's constant term is
// rebuilt only when its power changed — the same memoization contract
// as the dense input panel. The per-lane constant-term loop is
// Model.stepSparse's loop verbatim, and the propagator's per-lane
// arithmetic is independent of the batch width, so a batched run is
// bit-identical to K sequential runs. Zero allocations.
//
//mtlint:zeroalloc
func (b *BatchModel) stepSparse() {
	d, k := b.d, len(b.lanes)
	n := b.lanes[0].n
	tau := d.prop.Tau()
	for l, m := range b.lanes {
		if !m.powerDirty {
			continue
		}
		m.powerDirty = false
		cl := b.c[l*n : (l+1)*n]
		for i := 0; i < n; i++ {
			cl[i] = (m.power[i] + m.ambFlow[i]) * m.invCap[i] * tau
		}
	}
	d.prop.AdvanceBatch(b.kws, b.z, b.c, k)
}
