// Package thermal implements a HotSpot-style compact thermal model
// (paper §3.2): the die floorplan becomes a network of thermal
// resistances and capacitances — "a method analogous to calculating
// voltages in a circuit made up of resistors and capacitors" — including
// the thermal interface material, heat spreader, heat sink, and fan
// convection. The model supports both transient integration (required
// for the paper's adaptive-control experiments) and steady-state solves.
package thermal

import (
	"fmt"
	"math"

	"multitherm/internal/floorplan"
	"multitherm/internal/linalg"
)

// Params holds the physical package parameters of the thermal model.
// Defaults correspond to a 90 nm-class part with a copper spreader,
// aluminum finned sink, and forced-air convection, in the ranges HotSpot
// 2.0 ships with.
type Params struct {
	// Die
	DieThickness float64 // m
	KSilicon     float64 // W/(m·K)
	CSilicon     float64 // volumetric heat capacity, J/(m³·K)

	// Thermal interface material between die and spreader. Modeled as
	// pure resistance (negligible heat capacity).
	TIMThickness float64 // m
	KTIM         float64 // W/(m·K)

	// Heat spreader (copper plate)
	SpreaderSide      float64 // m, square side
	SpreaderThickness float64 // m
	KSpreader         float64 // W/(m·K)
	CSpreader         float64 // J/(m³·K)

	// Heat sink base (aluminum)
	SinkSide      float64 // m, square side
	SinkThickness float64 // m
	KSink         float64 // W/(m·K)
	CSink         float64 // J/(m³·K)
	// SinkMassFactor multiplies the sink base capacitance to account for
	// fin mass lumped into the base nodes.
	SinkMassFactor float64

	// Convection from sink to ambient (fan + fins), total for the sink.
	ConvectionResistance float64 // K/W
	Ambient              float64 // °C
}

// DefaultParams returns the package configuration used for the paper's
// 4-core experiments.
func DefaultParams() Params {
	return Params{
		DieThickness: 1.0e-3,
		KSilicon:     50,
		CSilicon:     1.75e6,

		TIMThickness: 40e-6,
		KTIM:         2,

		SpreaderSide:      30e-3,
		SpreaderThickness: 1e-3,
		KSpreader:         400,
		CSpreader:         3.55e6,

		SinkSide:       60e-3,
		SinkThickness:  7e-3,
		KSink:          240,
		CSink:          2.4e6,
		SinkMassFactor: 4,

		ConvectionResistance: 0.30,
		Ambient:              45,
	}
}

// Validate checks the parameters for physical plausibility.
func (p Params) Validate() error {
	pos := map[string]float64{
		"DieThickness": p.DieThickness, "KSilicon": p.KSilicon, "CSilicon": p.CSilicon,
		"TIMThickness": p.TIMThickness, "KTIM": p.KTIM,
		"SpreaderSide": p.SpreaderSide, "SpreaderThickness": p.SpreaderThickness,
		"KSpreader": p.KSpreader, "CSpreader": p.CSpreader,
		"SinkSide": p.SinkSide, "SinkThickness": p.SinkThickness,
		"KSink": p.KSink, "CSink": p.CSink, "SinkMassFactor": p.SinkMassFactor,
		"ConvectionResistance": p.ConvectionResistance,
	}
	for name, v := range pos {
		if v <= 0 {
			return fmt.Errorf("thermal: parameter %s must be positive, got %g", name, v)
		}
	}
	if p.SpreaderSide < 1e-3 || p.SinkSide < p.SpreaderSide {
		return fmt.Errorf("thermal: sink (%g) must be at least spreader (%g) size",
			p.SinkSide, p.SpreaderSide)
	}
	return nil
}

// edge is one thermal conductance between two internal nodes.
type edge struct {
	a, b int
	g    float64 // W/K
}

// Model is the assembled RC network. Node order: die blocks first (same
// indices as the floorplan), then spreader center, spreader N/E/S/W
// periphery, sink center, sink N/E/S/W periphery.
type Model struct {
	fp     *floorplan.Floorplan
	params Params

	n        int // total internal nodes
	nBlocks  int
	names    []string
	cap      []float64 // J/K per node
	edges    []edge
	gAmbient []float64 // conductance from node straight to ambient, W/K

	// adjacency in CSR-ish form for fast transient evaluation
	nbrIdx [][]int32
	nbrG   [][]float64
	gTotal []float64 // Σ_j G_ij + gAmbient_i per node

	temps []float64 // current state, °C
	power []float64 // current die-block power, W (len nBlocks)

	// scratch buffers for RK4
	k1, k2, k3, k4, tmp []float64
}

// Node index helpers (offsets after the die blocks).
const (
	nodeSpreaderCenter = iota
	nodeSpreaderN
	nodeSpreaderE
	nodeSpreaderS
	nodeSpreaderW
	nodeSinkCenter
	nodeSinkN
	nodeSinkE
	nodeSinkS
	nodeSinkW
	numPackageNodes
)

// New assembles the thermal model for the floorplan.
func New(fp *floorplan.Floorplan, p Params) (*Model, error) {
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if fp.ChipW > p.SpreaderSide || fp.ChipH > p.SpreaderSide {
		return nil, fmt.Errorf("thermal: chip (%g×%g) larger than spreader (%g)",
			fp.ChipW, fp.ChipH, p.SpreaderSide)
	}
	nb := len(fp.Blocks)
	m := &Model{
		fp:      fp,
		params:  p,
		nBlocks: nb,
		n:       nb + numPackageNodes,
	}
	m.names = make([]string, m.n)
	m.cap = make([]float64, m.n)
	m.gAmbient = make([]float64, m.n)
	m.power = make([]float64, nb)
	for i, b := range fp.Blocks {
		m.names[i] = b.Name
		m.cap[i] = p.CSilicon * b.Area() * p.DieThickness
	}
	pkgNames := []string{"spreader_c", "spreader_n", "spreader_e", "spreader_s",
		"spreader_w", "sink_c", "sink_n", "sink_e", "sink_s", "sink_w"}
	for i, s := range pkgNames {
		m.names[nb+i] = s
	}

	m.buildDieLateral()
	m.buildVerticalPath()
	m.buildSpreader()
	m.buildSink()

	m.indexEdges()
	m.temps = make([]float64, m.n)
	for i := range m.temps {
		m.temps[i] = p.Ambient
	}
	m.k1 = make([]float64, m.n)
	m.k2 = make([]float64, m.n)
	m.k3 = make([]float64, m.n)
	m.k4 = make([]float64, m.n)
	m.tmp = make([]float64, m.n)
	return m, nil
}

// buildDieLateral adds conductances between adjacent die blocks:
// G = k_si · t_die · sharedEdge / centerDistance.
func (m *Model) buildDieLateral() {
	p := m.params
	for _, a := range m.fp.Adjacencies() {
		g := p.KSilicon * p.DieThickness * a.Length / a.Dist
		m.edges = append(m.edges, edge{a: a.I, b: a.J, g: g})
	}
}

// buildVerticalPath connects each die block to the spreader center
// through half the die thickness, the TIM, and a 45° spreading term into
// the copper.
func (m *Model) buildVerticalPath() {
	p := m.params
	spc := m.nBlocks + nodeSpreaderCenter
	for i, b := range m.fp.Blocks {
		area := b.Area()
		rDie := p.DieThickness / (2 * p.KSilicon * area)
		rTIM := p.TIMThickness / (p.KTIM * area)
		// Heat spreads at ~45° through the spreader plate: the effective
		// conduction area grows by the plate thickness on each side.
		spreadArea := (b.W + p.SpreaderThickness) * (b.H + p.SpreaderThickness)
		rSpread := p.SpreaderThickness / (2 * p.KSpreader * spreadArea)
		g := 1 / (rDie + rTIM + rSpread)
		m.edges = append(m.edges, edge{a: i, b: spc, g: g})
	}
	// Spreader center capacitance covers the chip-shadow volume.
	m.cap[spc] = p.CSpreader * m.fp.ChipW * m.fp.ChipH * p.SpreaderThickness
}

// buildSpreader wires the spreader center to its four peripheral slabs
// and down to the sink center.
func (m *Model) buildSpreader() {
	p := m.params
	nb := m.nBlocks
	spc := nb + nodeSpreaderCenter
	chipSide := math.Sqrt(m.fp.ChipW * m.fp.ChipH)
	slabW := (p.SpreaderSide - chipSide) / 2 // radial extent of each peripheral slab
	if slabW <= 0 {
		slabW = p.SpreaderSide * 0.05
	}
	for k, node := range []int{nodeSpreaderN, nodeSpreaderE, nodeSpreaderS, nodeSpreaderW} {
		_ = k
		idx := nb + node
		// Lateral conduction from the chip-shadow region into the slab:
		// cross-section = plate thickness × chip side; path length from
		// shadow edge to slab centroid.
		dist := chipSide/4 + slabW/2
		g := p.KSpreader * p.SpreaderThickness * chipSide / dist
		m.edges = append(m.edges, edge{a: spc, b: idx, g: g})
		// Peripheral slab volume: slabW × spreaderSide × thickness / the
		// four slabs overlap corners — divide the non-shadow area evenly.
		nonShadow := p.SpreaderSide*p.SpreaderSide - chipSide*chipSide
		m.cap[idx] = p.CSpreader * nonShadow / 4 * p.SpreaderThickness
		// Each peripheral spreader slab also conducts down into the sink
		// base above it.
		slabArea := nonShadow / 4
		rv := p.SpreaderThickness/(2*p.KSpreader*slabArea) +
			p.SinkThickness/(2*p.KSink*slabArea)
		m.edges = append(m.edges, edge{a: idx, b: nb + nodeSinkCenter, g: 1 / rv})
	}
	// Vertical: spreader center → sink center across the chip shadow,
	// with 45° spreading into the sink base.
	sinkSpreadArea := (chipSide + p.SinkThickness) * (chipSide + p.SinkThickness)
	rv := p.SpreaderThickness/(2*p.KSpreader*chipSide*chipSide) +
		p.SinkThickness/(2*p.KSink*sinkSpreadArea)
	m.edges = append(m.edges, edge{a: spc, b: nb + nodeSinkCenter, g: 1 / rv})
}

// buildSink wires the sink center to its peripheral slabs and attaches
// convection to ambient across all sink nodes in proportion to area.
func (m *Model) buildSink() {
	p := m.params
	nb := m.nBlocks
	skc := nb + nodeSinkCenter
	centerSide := p.SpreaderSide // sink center region shadows the spreader
	m.cap[skc] = p.CSink * centerSide * centerSide * p.SinkThickness * p.SinkMassFactor

	nonShadow := p.SinkSide*p.SinkSide - centerSide*centerSide
	slabArea := nonShadow / 4
	slabW := (p.SinkSide - centerSide) / 2
	if slabW <= 0 {
		slabW = p.SinkSide * 0.05
	}
	totalArea := p.SinkSide * p.SinkSide
	// Convection: split the total sink-to-air conductance across nodes
	// by their plan area (fins assumed uniformly distributed).
	gConvTotal := 1 / p.ConvectionResistance
	m.gAmbient[skc] = gConvTotal * (centerSide * centerSide) / totalArea
	for _, node := range []int{nodeSinkN, nodeSinkE, nodeSinkS, nodeSinkW} {
		idx := nb + node
		dist := centerSide/4 + slabW/2
		g := p.KSink * p.SinkThickness * centerSide / dist
		m.edges = append(m.edges, edge{a: skc, b: idx, g: g})
		m.cap[idx] = p.CSink * slabArea * p.SinkThickness * p.SinkMassFactor
		m.gAmbient[idx] = gConvTotal * slabArea / totalArea
	}
}

// indexEdges builds the per-node adjacency arrays used by the transient
// integrator, and validates conductance positivity.
func (m *Model) indexEdges() {
	m.nbrIdx = make([][]int32, m.n)
	m.nbrG = make([][]float64, m.n)
	m.gTotal = make([]float64, m.n)
	for _, e := range m.edges {
		if e.g <= 0 || math.IsNaN(e.g) || math.IsInf(e.g, 0) {
			panic(fmt.Sprintf("thermal: bad conductance %g between %s and %s",
				e.g, m.names[e.a], m.names[e.b]))
		}
		m.nbrIdx[e.a] = append(m.nbrIdx[e.a], int32(e.b))
		m.nbrG[e.a] = append(m.nbrG[e.a], e.g)
		m.nbrIdx[e.b] = append(m.nbrIdx[e.b], int32(e.a))
		m.nbrG[e.b] = append(m.nbrG[e.b], e.g)
		m.gTotal[e.a] += e.g
		m.gTotal[e.b] += e.g
	}
	for i := range m.gAmbient {
		m.gTotal[i] += m.gAmbient[i]
	}
}

// NumBlocks returns the number of die blocks (power inputs).
func (m *Model) NumBlocks() int { return m.nBlocks }

// NumNodes returns the total node count including package nodes.
func (m *Model) NumNodes() int { return m.n }

// NodeName returns the debug name of node i.
func (m *Model) NodeName(i int) string { return m.names[i] }

// Floorplan returns the floorplan the model was built from.
func (m *Model) Floorplan() *floorplan.Floorplan { return m.fp }

// Params returns the package parameters.
func (m *Model) Params() Params { return m.params }

// SetPower assigns the per-die-block power vector in watts. The slice
// must have length NumBlocks. Values persist until changed.
func (m *Model) SetPower(watts []float64) {
	if len(watts) != m.nBlocks {
		panic(fmt.Sprintf("thermal: power vector length %d, want %d", len(watts), m.nBlocks))
	}
	copy(m.power, watts)
}

// Power returns the current power vector (shared storage; do not mutate).
func (m *Model) Power() []float64 { return m.power }

// Temp returns the temperature of die block i in °C.
func (m *Model) Temp(i int) float64 { return m.temps[i] }

// BlockTemps copies the die-block temperatures into dst (allocating if
// nil) and returns it.
func (m *Model) BlockTemps(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.nBlocks)
	}
	copy(dst, m.temps[:m.nBlocks])
	return dst
}

// NodeTemps returns a copy of all node temperatures (die + package).
func (m *Model) NodeTemps() []float64 {
	out := make([]float64, m.n)
	copy(out, m.temps)
	return out
}

// MaxBlockTemp returns the hottest die-block temperature and its index.
func (m *Model) MaxBlockTemp() (float64, int) {
	max, idx := math.Inf(-1), -1
	for i := 0; i < m.nBlocks; i++ {
		if m.temps[i] > max {
			max, idx = m.temps[i], i
		}
	}
	return max, idx
}

// SetUniform resets every node to temperature t.
func (m *Model) SetUniform(t float64) {
	for i := range m.temps {
		m.temps[i] = t
	}
}

// TotalCapacitance returns Σ C_i, used by energy-conservation tests.
func (m *Model) TotalCapacitance() float64 {
	var s float64
	for _, c := range m.cap {
		s += c
	}
	return s
}

// ConductanceMatrix assembles the dense symmetric conductance matrix G
// where G[i][i] = Σ_j g_ij + gAmbient_i and G[i][j] = −g_ij. It is the
// left-hand side of the steady-state system G·T = P + gAmb·T_amb.
func (m *Model) ConductanceMatrix() *linalg.Matrix {
	g := linalg.NewMatrix(m.n, m.n)
	for _, e := range m.edges {
		g.Add(e.a, e.a, e.g)
		g.Add(e.b, e.b, e.g)
		g.Add(e.a, e.b, -e.g)
		g.Add(e.b, e.a, -e.g)
	}
	for i, ga := range m.gAmbient {
		g.Add(i, i, ga)
	}
	return g
}

// SteadyState solves for the equilibrium temperatures under the given
// die-block power vector without disturbing the transient state. The
// returned slice covers all nodes; die blocks come first.
func (m *Model) SteadyState(watts []float64) ([]float64, error) {
	if len(watts) != m.nBlocks {
		return nil, fmt.Errorf("thermal: power vector length %d, want %d", len(watts), m.nBlocks)
	}
	g := m.ConductanceMatrix()
	rhs := make([]float64, m.n)
	for i, w := range watts {
		rhs[i] = w
	}
	for i, ga := range m.gAmbient {
		rhs[i] += ga * m.params.Ambient
	}
	return linalg.Solve(g, rhs)
}

// InitSteadyState sets the transient state to the equilibrium for the
// given power vector — the standard way to start a simulation from a
// thermally warmed package rather than a cold chip.
func (m *Model) InitSteadyState(watts []float64) error {
	t, err := m.SteadyState(watts)
	if err != nil {
		return err
	}
	copy(m.temps, t)
	return nil
}
