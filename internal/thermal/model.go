// Package thermal implements a HotSpot-style compact thermal model
// (paper §3.2): the die floorplan becomes a network of thermal
// resistances and capacitances — "a method analogous to calculating
// voltages in a circuit made up of resistors and capacitors" — including
// the thermal interface material, heat spreader, heat sink, and fan
// convection. The model supports both transient integration (required
// for the paper's adaptive-control experiments) and steady-state solves.
//
// Construction is split in two: an immutable Template holds everything
// derived from (floorplan, Params) — node capacitances, the conductance
// network in CSR form, and the explicit-integration stability bound —
// and stamps out lightweight Models that add only mutable state
// (temperatures, power inputs, integrator scratch). Templates are safe
// to share across goroutines, so a parallel sweep builds the RC network
// once per configuration instead of once per run.
//
//mtlint:deterministic
//mtlint:units
package thermal

import (
	"fmt"
	"math"

	"multitherm/internal/floorplan"
	"multitherm/internal/linalg"
	"multitherm/internal/linalg/sparse"
	"multitherm/internal/memo"
	"multitherm/internal/units"
)

// Params holds the physical package parameters of the thermal model.
// Defaults correspond to a 90 nm-class part with a copper spreader,
// aluminum finned sink, and forced-air convection, in the ranges HotSpot
// 2.0 ships with.
type Params struct {
	// Die
	DieThickness float64 // m
	KSilicon     float64 // W/(m·K)
	CSilicon     float64 // volumetric heat capacity, J/(m³·K)

	// Thermal interface material between die and spreader. Modeled as
	// pure resistance (negligible heat capacity).
	TIMThickness float64 // m
	KTIM         float64 // W/(m·K)

	// Heat spreader (copper plate)
	SpreaderSide      float64 // m, square side
	SpreaderThickness float64 // m
	KSpreader         float64 // W/(m·K)
	CSpreader         float64 // J/(m³·K)

	// Heat sink base (aluminum)
	SinkSide      float64 // m, square side
	SinkThickness float64 // m
	KSink         float64 // W/(m·K)
	CSink         float64 // J/(m³·K)
	// SinkMassFactor multiplies the sink base capacitance to account for
	// fin mass lumped into the base nodes.
	SinkMassFactor float64

	// Convection from sink to ambient (fan + fins), total for the sink.
	//mtlint:allow unit thermal resistance is K/W, not one of the scalar gauges
	ConvectionResistance float64 // K/W
	Ambient              units.Celsius
}

// DefaultParams returns the package configuration used for the paper's
// 4-core experiments.
func DefaultParams() Params {
	return Params{
		DieThickness: 1.0e-3,
		KSilicon:     50,
		CSilicon:     1.75e6,

		TIMThickness: 40e-6,
		KTIM:         2,

		SpreaderSide:      30e-3,
		SpreaderThickness: 1e-3,
		KSpreader:         400,
		CSpreader:         3.55e6,

		SinkSide:       60e-3,
		SinkThickness:  7e-3,
		KSink:          240,
		CSink:          2.4e6,
		SinkMassFactor: 4,

		ConvectionResistance: 0.30,
		Ambient:              45,
	}
}

// Validate checks the parameters for physical plausibility.
func (p Params) Validate() error {
	// Checked in declaration order (not a map) so the reported parameter
	// is deterministic when several are invalid.
	pos := []struct {
		name string
		v    float64
	}{
		{"DieThickness", p.DieThickness}, {"KSilicon", p.KSilicon}, {"CSilicon", p.CSilicon},
		{"TIMThickness", p.TIMThickness}, {"KTIM", p.KTIM},
		{"SpreaderSide", p.SpreaderSide}, {"SpreaderThickness", p.SpreaderThickness},
		{"KSpreader", p.KSpreader}, {"CSpreader", p.CSpreader},
		{"SinkSide", p.SinkSide}, {"SinkThickness", p.SinkThickness},
		{"KSink", p.KSink}, {"CSink", p.CSink}, {"SinkMassFactor", p.SinkMassFactor},
		{"ConvectionResistance", p.ConvectionResistance},
	}
	for _, c := range pos {
		if c.v <= 0 {
			return fmt.Errorf("thermal: parameter %s must be positive, got %g", c.name, c.v)
		}
	}
	if p.SpreaderSide < 1e-3 || p.SinkSide < p.SpreaderSide {
		return fmt.Errorf("thermal: sink (%g) must be at least spreader (%g) size",
			p.SinkSide, p.SpreaderSide)
	}
	return nil
}

// edge is one thermal conductance between two internal nodes.
type edge struct {
	a, b int
	g    float64 // W/K
}

// Template is the immutable part of an assembled RC network: node
// capacitances, the conductance graph (both as an edge list for dense
// steady-state assembly and in CSR form for the transient kernel), and
// the precomputed explicit-integration stability bound. A Template is
// read-only after construction and may be shared freely across
// goroutines; call NewModel to stamp out integrable instances.
//
// Node order: die blocks first (same indices as the floorplan), then
// spreader center, spreader N/E/S/W periphery, sink center, sink
// N/E/S/W periphery.
type Template struct {
	fp     *floorplan.Floorplan
	params Params

	n        int // total internal nodes
	nBlocks  int
	names    []string
	cap      []float64 // J/K per node
	edges    []edge
	gAmbient []float64 // conductance from node straight to ambient, W/K

	// adjacency in CSR form for the transient kernel: neighbors of node
	// i are colIdx[rowPtr[i]:rowPtr[i+1]] with conductances at the same
	// positions in colG.
	rowPtr  []int32
	colIdx  []int32
	colG    []float64
	nbrIdx  [][]int32   // per-row views into colIdx
	nbrG    [][]float64 // per-row views into colG
	gTotal  []float64   // Σ_j G_ij + gAmbient_i per node
	invCap  []float64   // 1/C_i, precomputed so the kernel multiplies instead of divides
	ambFlow []float64   // gAmbient_i·T_amb, the constant inflow from the ambient

	// The same network in the sparse package's CSR form: gsp is the
	// conductance matrix G (for the CG steady-state solve) and asp is
	// the transient generator A = −C⁻¹G (for the Krylov propagator).
	// Built eagerly — assembly is O(nnz) — so sharing the template
	// across goroutines never races on lazy construction.
	gsp *sparse.CSR
	asp *sparse.CSR

	// hMax is the RK4 stability bound, invariant for the network and
	// hoisted here at build time so Step need not rescan the graph.
	hMax float64

	// discCache memoizes exact ZOH discretizations keyed by dt; see
	// Template.Discretization. Copy-on-write: a lookup on the sweep's
	// hot construction path is one atomic load, with no contention
	// against concurrent first-builds of other step sizes.
	discCache memo.Map[float64, *Discretization]
}

// Model is one integrable instance of a Template: the shared immutable
// network plus per-run mutable state (temperatures, power inputs, and
// RK4 scratch buffers). Models are cheap to create and must not be
// shared across goroutines; stamp one per concurrent simulation.
type Model struct {
	*Template

	// Hot template fields mirrored into the model (slice headers only —
	// the backing arrays stay shared and immutable). The RK4 kernel runs
	// millions of iterations per simulated second; reaching these through
	// the embedded pointer would re-load the indirection in every loop
	// the compiler cannot prove alias-free, so the stamp copies the
	// headers and the kernel indexes them one dereference away, exactly
	// as when they lived on the model itself.
	n       int
	nbrIdx  [][]int32   // per-row views into colIdx
	nbrG    [][]float64 // per-row views into colG
	gTotal  []float64
	invCap  []float64
	ambFlow []float64

	temps []float64 // current state, °C
	power []float64 // current die-block power, W (len nBlocks)

	// scratch buffers for the fused RK4 kernel
	acc, tmpA, tmpB []float64

	// Exact-discretization fast path (nil disc = RK4 only). When armed
	// via UseExact, temps aliases xbuf[:n] and each exact tick writes
	// ybuf and swaps the two; uCache memoizes Ψ·P + ψ_amb until
	// SetPower invalidates it.
	disc       *Discretization
	xbuf, ybuf []float64
	uCache     []float64
	powerDirty bool

	// Sparse exact path (armed when disc.Sparse()): temps aliases
	// zaug[:n] with the augmented entry zaug[n] pinned to 1; cvec
	// memoizes the substep-scaled constant term the way uCache
	// memoizes Ψ·P; kws is the Arnoldi workspace sized for kwsProp.
	zaug, cvec []float64
	kws        *sparse.Workspace
	kwsProp    *sparse.Propagator
}

// Node index helpers (offsets after the die blocks).
const (
	nodeSpreaderCenter = iota
	nodeSpreaderN
	nodeSpreaderE
	nodeSpreaderS
	nodeSpreaderW
	nodeSinkCenter
	nodeSinkN
	nodeSinkE
	nodeSinkS
	nodeSinkW
	numPackageNodes
)

// NewTemplate assembles the immutable RC network for the floorplan.
func NewTemplate(fp *floorplan.Floorplan, p Params) (*Template, error) {
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if fp.ChipW > p.SpreaderSide || fp.ChipH > p.SpreaderSide {
		return nil, fmt.Errorf("thermal: chip (%g×%g) larger than spreader (%g)",
			fp.ChipW, fp.ChipH, p.SpreaderSide)
	}
	nb := len(fp.Blocks)
	t := &Template{
		fp:      fp,
		params:  p,
		nBlocks: nb,
		n:       nb + numPackageNodes,
	}
	t.names = make([]string, t.n)
	t.cap = make([]float64, t.n)
	t.gAmbient = make([]float64, t.n)
	for i, b := range fp.Blocks {
		t.names[i] = b.Name
		t.cap[i] = p.CSilicon * b.Area() * p.DieThickness
	}
	pkgNames := []string{"spreader_c", "spreader_n", "spreader_e", "spreader_s",
		"spreader_w", "sink_c", "sink_n", "sink_e", "sink_s", "sink_w"}
	for i, s := range pkgNames {
		t.names[nb+i] = s
	}

	t.buildDieLateral()
	t.buildVerticalPath()
	t.buildSpreader()
	t.buildSink()
	// Per-position cooling from the floorplan: extra conductance
	// straight to ambient on individual die blocks (e.g. the edge
	// tiles of a generated many-core grid sitting under stronger
	// airflow). Applied before indexEdges so gTotal, ambFlow, and the
	// stability bound all see the boosted path.
	for i, b := range fp.Blocks {
		t.gAmbient[i] += b.CoolingBoost
	}

	t.indexEdges()
	t.invCap = make([]float64, t.n)
	t.ambFlow = make([]float64, t.n)
	for i, c := range t.cap {
		t.invCap[i] = 1 / c
		t.ambFlow[i] = t.gAmbient[i] * float64(p.Ambient)
	}
	t.buildSparse()
	t.hMax = t.computeMaxStableStep()
	return t, nil
}

// buildSparse assembles the CSR forms of the conductance matrix and
// the transient generator from the indexed adjacency. Row neighbor
// order comes out column-sorted, which the structure probes rely on;
// the kernels only need consistency.
func (t *Template) buildSparse() {
	gb := sparse.NewBuilder(t.n, t.n)
	ab := sparse.NewBuilder(t.n, t.n)
	for i := 0; i < t.n; i++ {
		gb.Add(i, i, t.gTotal[i])
		ab.Add(i, i, -t.gTotal[i]*t.invCap[i])
		for k, j := range t.nbrIdx[i] {
			g := t.nbrG[i][k]
			gb.Add(i, int(j), -g)
			ab.Add(i, int(j), g*t.invCap[i])
		}
	}
	t.gsp = gb.Build()
	t.asp = ab.Build()
}

// templateKey identifies a memoized template. Floorplans are treated as
// immutable, so pointer identity suffices; Params is a comparable value.
type templateKey struct {
	fp *floorplan.Floorplan
	p  Params
}

var templates memo.Map[templateKey, *Template]

// TemplateFor returns the memoized template for (floorplan, params),
// building it on first use. Concurrent callers may race to build the
// same template; exactly one wins and is shared thereafter. The cache
// is copy-on-write, so the per-cell lookup every simulation makes is a
// single atomic load with nothing to contend on.
func TemplateFor(fp *floorplan.Floorplan, p Params) (*Template, error) {
	return templates.LoadOrStore(templateKey{fp: fp, p: p}, func() (*Template, error) {
		return NewTemplate(fp, p)
	})
}

// NewModel stamps out an integrable instance sharing this template's
// immutable arrays, initialized to a uniform ambient temperature.
func (t *Template) NewModel() *Model {
	m := &Model{
		Template: t,
		n:        t.n,
		nbrIdx:   t.nbrIdx,
		nbrG:     t.nbrG,
		gTotal:   t.gTotal,
		invCap:   t.invCap,
		ambFlow:  t.ambFlow,
		temps:    make([]float64, t.n),
		// power spans all nodes (package entries stay zero) so the RK4
		// stages add it unconditionally in one branch-free loop.
		power: make([]float64, t.n),
		acc:   make([]float64, t.n),
		tmpA:  make([]float64, t.n),
		tmpB:  make([]float64, t.n),
	}
	for i := range m.temps {
		m.temps[i] = float64(t.params.Ambient)
	}
	return m
}

// New assembles the thermal model for the floorplan through the
// template cache, so repeated construction for the same configuration
// reuses the precomputed network.
func New(fp *floorplan.Floorplan, p Params) (*Model, error) {
	t, err := TemplateFor(fp, p)
	if err != nil {
		return nil, err
	}
	return t.NewModel(), nil
}

// buildDieLateral adds conductances between adjacent die blocks:
// G = k_si · t_die · sharedEdge / centerDistance.
func (t *Template) buildDieLateral() {
	p := t.params
	for _, a := range t.fp.Adjacencies() {
		g := p.KSilicon * p.DieThickness * a.Length / a.Dist
		t.edges = append(t.edges, edge{a: a.I, b: a.J, g: g})
	}
}

// buildVerticalPath connects each die block to the spreader center
// through half the die thickness, the TIM, and a 45° spreading term into
// the copper.
func (t *Template) buildVerticalPath() {
	p := t.params
	spc := t.nBlocks + nodeSpreaderCenter
	for i, b := range t.fp.Blocks {
		area := b.Area()
		rDie := p.DieThickness / (2 * p.KSilicon * area)
		rTIM := p.TIMThickness / (p.KTIM * area)
		// Heat spreads at ~45° through the spreader plate: the effective
		// conduction area grows by the plate thickness on each side.
		spreadArea := (b.W + p.SpreaderThickness) * (b.H + p.SpreaderThickness)
		rSpread := p.SpreaderThickness / (2 * p.KSpreader * spreadArea)
		g := 1 / (rDie + rTIM + rSpread)
		t.edges = append(t.edges, edge{a: i, b: spc, g: g})
	}
	// Spreader center capacitance covers the chip-shadow volume.
	t.cap[spc] = p.CSpreader * t.fp.ChipW * t.fp.ChipH * p.SpreaderThickness
}

// buildSpreader wires the spreader center to its four peripheral slabs
// and down to the sink center.
func (t *Template) buildSpreader() {
	p := t.params
	nb := t.nBlocks
	spc := nb + nodeSpreaderCenter
	chipSide := math.Sqrt(t.fp.ChipW * t.fp.ChipH)
	slabW := (p.SpreaderSide - chipSide) / 2 // radial extent of each peripheral slab
	if slabW <= 0 {
		slabW = p.SpreaderSide * 0.05
	}
	for k, node := range []int{nodeSpreaderN, nodeSpreaderE, nodeSpreaderS, nodeSpreaderW} {
		_ = k
		idx := nb + node
		// Lateral conduction from the chip-shadow region into the slab:
		// cross-section = plate thickness × chip side; path length from
		// shadow edge to slab centroid.
		dist := chipSide/4 + slabW/2
		g := p.KSpreader * p.SpreaderThickness * chipSide / dist
		t.edges = append(t.edges, edge{a: spc, b: idx, g: g})
		// Peripheral slab volume: slabW × spreaderSide × thickness / the
		// four slabs overlap corners — divide the non-shadow area evenly.
		nonShadow := p.SpreaderSide*p.SpreaderSide - chipSide*chipSide
		t.cap[idx] = p.CSpreader * nonShadow / 4 * p.SpreaderThickness
		// Each peripheral spreader slab also conducts down into the sink
		// base above it.
		slabArea := nonShadow / 4
		rv := p.SpreaderThickness/(2*p.KSpreader*slabArea) +
			p.SinkThickness/(2*p.KSink*slabArea)
		t.edges = append(t.edges, edge{a: idx, b: nb + nodeSinkCenter, g: 1 / rv})
	}
	// Vertical: spreader center → sink center across the chip shadow,
	// with 45° spreading into the sink base.
	sinkSpreadArea := (chipSide + p.SinkThickness) * (chipSide + p.SinkThickness)
	rv := p.SpreaderThickness/(2*p.KSpreader*chipSide*chipSide) +
		p.SinkThickness/(2*p.KSink*sinkSpreadArea)
	t.edges = append(t.edges, edge{a: spc, b: nb + nodeSinkCenter, g: 1 / rv})
}

// buildSink wires the sink center to its peripheral slabs and attaches
// convection to ambient across all sink nodes in proportion to area.
func (t *Template) buildSink() {
	p := t.params
	nb := t.nBlocks
	skc := nb + nodeSinkCenter
	centerSide := p.SpreaderSide // sink center region shadows the spreader
	t.cap[skc] = p.CSink * centerSide * centerSide * p.SinkThickness * p.SinkMassFactor

	nonShadow := p.SinkSide*p.SinkSide - centerSide*centerSide
	slabArea := nonShadow / 4
	slabW := (p.SinkSide - centerSide) / 2
	if slabW <= 0 {
		slabW = p.SinkSide * 0.05
	}
	totalArea := p.SinkSide * p.SinkSide
	// Convection: split the total sink-to-air conductance across nodes
	// by their plan area (fins assumed uniformly distributed).
	gConvTotal := 1 / p.ConvectionResistance
	t.gAmbient[skc] = gConvTotal * (centerSide * centerSide) / totalArea
	for _, node := range []int{nodeSinkN, nodeSinkE, nodeSinkS, nodeSinkW} {
		idx := nb + node
		dist := centerSide/4 + slabW/2
		g := p.KSink * p.SinkThickness * centerSide / dist
		t.edges = append(t.edges, edge{a: skc, b: idx, g: g})
		t.cap[idx] = p.CSink * slabArea * p.SinkThickness * p.SinkMassFactor
		t.gAmbient[idx] = gConvTotal * slabArea / totalArea
	}
}

// indexEdges flattens the edge list into the CSR adjacency used by the
// transient kernel, and validates conductance positivity. Neighbor
// order within a row matches edge-list order, keeping the floating
// point summation order of the kernel stable across builds.
func (t *Template) indexEdges() {
	t.gTotal = make([]float64, t.n)
	counts := make([]int32, t.n)
	for _, e := range t.edges {
		if e.g <= 0 || math.IsNaN(e.g) || math.IsInf(e.g, 0) {
			panic(fmt.Sprintf("thermal: bad conductance %g between %s and %s",
				e.g, t.names[e.a], t.names[e.b]))
		}
		counts[e.a]++
		counts[e.b]++
		t.gTotal[e.a] += e.g
		t.gTotal[e.b] += e.g
	}
	t.rowPtr = make([]int32, t.n+1)
	for i := 0; i < t.n; i++ {
		t.rowPtr[i+1] = t.rowPtr[i] + counts[i]
	}
	nnz := t.rowPtr[t.n]
	t.colIdx = make([]int32, nnz)
	t.colG = make([]float64, nnz)
	next := make([]int32, t.n)
	copy(next, t.rowPtr[:t.n])
	put := func(row, col int, g float64) {
		k := next[row]
		t.colIdx[k] = int32(col)
		t.colG[k] = g
		next[row] = k + 1
	}
	for _, e := range t.edges {
		put(e.a, e.b, e.g)
		put(e.b, e.a, e.g)
	}
	t.nbrIdx = make([][]int32, t.n)
	t.nbrG = make([][]float64, t.n)
	for i := 0; i < t.n; i++ {
		t.nbrIdx[i] = t.colIdx[t.rowPtr[i]:t.rowPtr[i+1]]
		t.nbrG[i] = t.colG[t.rowPtr[i]:t.rowPtr[i+1]]
	}
	for i := range t.gAmbient {
		t.gTotal[i] += t.gAmbient[i]
	}
}

// NumBlocks returns the number of die blocks (power inputs).
func (t *Template) NumBlocks() int { return t.nBlocks }

// NumNodes returns the total node count including package nodes.
func (t *Template) NumNodes() int { return t.n }

// NodeName returns the debug name of node i.
func (t *Template) NodeName(i int) string { return t.names[i] }

// Floorplan returns the floorplan the template was built from.
func (t *Template) Floorplan() *floorplan.Floorplan { return t.fp }

// Params returns the package parameters.
func (t *Template) Params() Params { return t.params }

// SetPower assigns the per-die-block power vector. The slice must have
// length NumBlocks. Values persist until changed.
func (m *Model) SetPower(watts units.PowerVec) {
	if len(watts) != m.nBlocks {
		panic(fmt.Sprintf("thermal: power vector length %d, want %d", len(watts), m.nBlocks))
	}
	copy(m.power[:m.nBlocks], watts)
	m.powerDirty = true
}

// Power returns the current power vector (shared storage; do not mutate).
func (m *Model) Power() units.PowerVec { return units.PowerVec(m.power[:m.nBlocks]) }

// Temp returns the temperature of die block i.
func (m *Model) Temp(i int) units.Celsius { return units.Celsius(m.temps[i]) }

// BlockTemps copies the die-block temperatures into dst (allocating if
// nil) and returns it.
func (m *Model) BlockTemps(dst units.TempVec) units.TempVec {
	if dst == nil {
		dst = units.MakeTempVec(m.nBlocks)
	}
	copy(dst, m.temps[:m.nBlocks])
	return dst
}

// NodeTemps returns a copy of all node temperatures (die + package).
func (m *Model) NodeTemps() units.TempVec {
	out := units.MakeTempVec(m.n)
	copy(out, m.temps)
	return out
}

// SetNodeTemps overwrites the full transient state (die + package) —
// the fast path for installing a cached warmup state.
func (m *Model) SetNodeTemps(t units.TempVec) {
	if len(t) != m.n {
		panic(fmt.Sprintf("thermal: node temps length %d, want %d", len(t), m.n))
	}
	copy(m.temps, t)
}

// MaxBlockTemp returns the hottest die-block temperature and its index.
func (m *Model) MaxBlockTemp() (units.Celsius, int) {
	max, idx := math.Inf(-1), -1
	for i := 0; i < m.nBlocks; i++ {
		if m.temps[i] > max {
			max, idx = m.temps[i], i
		}
	}
	return units.Celsius(max), idx
}

// SetUniform resets every node to temperature t.
func (m *Model) SetUniform(t units.Celsius) {
	for i := range m.temps {
		m.temps[i] = float64(t)
	}
}

// TotalCapacitance returns Σ C_i, used by energy-conservation tests.
//
//mtlint:allow unit thermal capacitance is J/K, not plain Joules
func (t *Template) TotalCapacitance() float64 {
	var s float64
	for _, c := range t.cap {
		s += c
	}
	return s
}

// ConductanceMatrix assembles the dense symmetric conductance matrix G
// where G[i][i] = Σ_j g_ij + gAmbient_i and G[i][j] = −g_ij. It is the
// left-hand side of the steady-state system G·T = P + gAmb·T_amb.
func (t *Template) ConductanceMatrix() *linalg.Matrix {
	g := linalg.NewMatrix(t.n, t.n)
	for _, e := range t.edges {
		g.Add(e.a, e.a, e.g)
		g.Add(e.b, e.b, e.g)
		g.Add(e.a, e.b, -e.g)
		g.Add(e.b, e.a, -e.g)
	}
	for i, ga := range t.gAmbient {
		g.Add(i, i, ga)
	}
	return g
}

// SteadyState solves for the equilibrium temperatures under the given
// die-block power vector without disturbing any transient state. The
// returned slice covers all nodes; die blocks come first. Below the
// sparse crossover it solves densely by LU; above it, by
// Jacobi-preconditioned CG on the CSR conductance matrix — G is a
// graph Laplacian plus a positive convection diagonal, so it is
// symmetric positive definite and CG converges without ever forming
// the O(n²) dense matrix.
func (t *Template) SteadyState(watts units.PowerVec) (units.TempVec, error) {
	if len(watts) != t.nBlocks {
		return nil, fmt.Errorf("thermal: power vector length %d, want %d", len(watts), t.nBlocks)
	}
	rhs := make([]float64, t.n)
	for i, w := range watts {
		rhs[i] = w
	}
	for i, ga := range t.gAmbient {
		rhs[i] += ga * float64(t.params.Ambient)
	}
	if t.n > sparseCrossoverNodes {
		sol, err := sparse.SolveCG(t.gsp, rhs, 1e-13, 0)
		return units.TempVec(sol), err
	}
	g := t.ConductanceMatrix()
	sol, err := linalg.Solve(g, rhs)
	return units.TempVec(sol), err
}

// FitParams returns DefaultParams scaled so the package physically
// fits the floorplan: the spreader plate must cover the die with a
// margin, the sink tracks the spreader at the default 2:1 ratio, and
// the convection resistance shrinks with sink area (a bigger sink
// carries proportionally more fin surface under the same airflow).
// For floorplans that already fit the paper's 30 mm spreader — the
// CMP4 among them — it returns DefaultParams unchanged, so existing
// results are untouched; generated many-core grids above ~14x14 mm get
// a proportionally larger package.
func FitParams(fp *floorplan.Floorplan) Params {
	p := DefaultParams()
	side := math.Max(fp.ChipW, fp.ChipH)
	const margin = 10e-3 // spreader overhang around the die, total
	if side+margin > p.SpreaderSide {
		defaultSinkArea := p.SinkSide * p.SinkSide
		p.SpreaderSide = side + margin
		p.SinkSide = 2 * p.SpreaderSide
		p.ConvectionResistance *= defaultSinkArea / (p.SinkSide * p.SinkSide)
	}
	return p
}

// InitSteadyState sets the transient state to the equilibrium for the
// given power vector — the standard way to start a simulation from a
// thermally warmed package rather than a cold chip.
func (m *Model) InitSteadyState(watts units.PowerVec) error {
	t, err := m.SteadyState(watts)
	if err != nil {
		return err
	}
	copy(m.temps, t)
	return nil
}
