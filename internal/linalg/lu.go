package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a matrix is numerically singular and
// cannot be factored or solved.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial pivoting: P·A = L·U.
// It can be reused to solve against many right-hand sides, which the
// thermal model exploits when computing steady states for several power
// inputs over the same conductance matrix.
type LU struct {
	n    int
	lu   []float64 // packed L (unit diagonal, below) and U (on/above diagonal)
	piv  []int     // row permutation
	sign int       // permutation parity, for determinant
}

// Factor computes the LU factorization of the square matrix a.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: cannot factor %dx%d non-square matrix", a.Rows(), a.Cols())
	}
	n := a.Rows()
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, a.data)
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: pick the largest magnitude in column k at or
		// below the diagonal.
		p, maxAbs := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(f.lu[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 { //mtlint:allow floatcmp exact zero pivot column is the singularity contract
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[p*n+j], f.lu[k*n+j] = f.lu[k*n+j], f.lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = m
			if m == 0 { //mtlint:allow floatcmp exact-zero multiplier skip is bit-effect-free
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= m * f.lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve returns x such that A·x = b for the factored matrix A.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("linalg: rhs length %d does not match matrix order %d", len(b), f.n)
	}
	n := f.n
	x := make([]float64, n)
	// Apply permutation, then forward-substitute through L.
	for i := 0; i < n; i++ {
		s := b[f.piv[i]]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back-substitute through U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		d := f.lu[i*n+i]
		if d == 0 { //mtlint:allow floatcmp exact zero pivot is the singularity contract
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveMatrix solves A·X = B column by column for the factored matrix
// A, returning X. Expm uses it to apply the inverted Padé denominator.
func (f *LU) SolveMatrix(b *Matrix) (*Matrix, error) {
	if b.rows != f.n {
		return nil, fmt.Errorf("linalg: rhs has %d rows, matrix order %d", b.rows, f.n)
	}
	x := NewMatrix(b.rows, b.cols)
	col := make([]float64, b.rows)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < b.rows; i++ {
			col[i] = b.At(i, j)
		}
		sol, err := f.Solve(col)
		if err != nil {
			return nil, err
		}
		for i, v := range sol {
			x.Set(i, j, v)
		}
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// Solve solves A·x = b directly (factor + solve in one call).
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Residual returns the max-norm of A·x − b, used by tests and by the
// thermal model's self-checks.
func Residual(a *Matrix, x, b []float64) float64 {
	ax := a.MulVec(x)
	var max float64
	for i := range ax {
		if r := math.Abs(ax[i] - b[i]); r > max {
			max = r
		}
	}
	return max
}
