package sparse

import (
	"math"
	"math/rand"
	"testing"

	"multitherm/internal/linalg"
)

// stableSystem builds a random diagonally dominant Hurwitz generator
// (the shape of the thermal model's A = -C⁻¹G) plus a constant term.
func stableSystem(rng *rand.Rand, n int) (*CSR, *linalg.Matrix, []float64) {
	b := NewBuilder(n, n)
	d := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var off float64
		for _, j := range []int{i - 1, i + 1, i - 4, i + 4} {
			if j < 0 || j >= n {
				continue
			}
			v := 0.5 + rng.Float64()
			b.Add(i, j, v)
			d.Set(i, j, v)
			off += v
		}
		diag := -(off + 0.1 + rng.Float64())
		b.Add(i, i, diag)
		d.Set(i, i, diag)
	}
	c := make([]float64, n)
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	return b.Build(), d, c
}

// denseAugmentedStep computes the exact step via the dense augmented
// exponential: e^{[[A·h, h·c],[0,0]]} applied to [x; 1].
func denseAugmentedStep(t *testing.T, d *linalg.Matrix, c, x []float64, h float64) []float64 {
	t.Helper()
	n := d.Rows()
	aug := linalg.NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aug.Set(i, j, d.At(i, j)*h)
		}
		aug.Set(i, n, c[i]*h)
	}
	phi, err := linalg.Expm(aug)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, n+1)
	copy(z, x)
	z[n] = 1
	return phi.MulVec(z)
}

func TestPropagatorMatchesDenseExpm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		n int
		h float64
	}{
		{n: 10, h: 0.05},  // mild step
		{n: 24, h: 0.6},   // ||A·h|| >> 1 forces substeps
		{n: 40, h: 0.002}, // thermal-like tiny step
	} {
		a, d, c := stableSystem(rng, tc.n)
		x := make([]float64, tc.n)
		for i := range x {
			x[i] = 40 + 10*rng.Float64()
		}
		p, err := NewPropagator(a, tc.h, 1e-12, x, c)
		if err != nil {
			t.Fatalf("n=%d h=%g: %v", tc.n, tc.h, err)
		}
		ws := NewWorkspace(p, 1)
		z := make([]float64, tc.n+1)
		copy(z, x)
		z[tc.n] = 1
		csub := make([]float64, tc.n)
		for i := range csub {
			csub[i] = c[i] * p.Tau()
		}
		p.Advance(ws, z, csub)
		want := denseAugmentedStep(t, d, c, x, tc.h)
		for i := 0; i < tc.n; i++ {
			if math.Abs(z[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Errorf("n=%d h=%g: z[%d] = %.12g, dense %.12g", tc.n, tc.h, i, z[i], want[i])
			}
		}
		if z[tc.n] != 1 {
			t.Errorf("augmented entry = %g, want exactly 1", z[tc.n])
		}
	}
}

// TestPropagatorMultiStepAccuracy drives 200 consecutive steps and
// checks the trajectory against the dense propagator applied
// repeatedly: errors must stay near the per-step tolerance rather
// than compounding.
func TestPropagatorMultiStepAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, h := 20, 0.01
	a, d, c := stableSystem(rng, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = 45
	}
	p, err := NewPropagator(a, h, 1e-12, x, c)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(p, 1)
	z := make([]float64, n+1)
	copy(z, x)
	z[n] = 1
	csub := make([]float64, n)
	for i := range csub {
		csub[i] = c[i] * p.Tau()
	}
	// Dense reference propagator for the same step.
	aug := linalg.NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aug.Set(i, j, d.At(i, j)*h)
		}
		aug.Set(i, n, c[i]*h)
	}
	phi, err := linalg.Expm(aug)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, n+1)
	copy(ref, x)
	ref[n] = 1
	next := make([]float64, n+1)
	for step := 0; step < 200; step++ {
		p.Advance(ws, z, csub)
		phi.MulVecInto(next, ref)
		copy(ref, next)
		ref[n] = 1
	}
	for i := 0; i < n; i++ {
		if math.Abs(z[i]-ref[i]) > 1e-7*(1+math.Abs(ref[i])) {
			t.Errorf("after 200 steps: z[%d] = %.12g, dense %.12g", i, z[i], ref[i])
		}
	}
}

// TestAdvanceBatchBitIdenticalToSequential is the lockstep contract
// the batched thermal stepper depends on: k lanes through
// AdvanceBatch equal k separate Advance calls bit for bit.
func TestAdvanceBatchBitIdenticalToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, h := 30, 0.02
	a, _, c0 := stableSystem(rng, n)
	probe := make([]float64, n)
	for i := range probe {
		probe[i] = 50
	}
	p, err := NewPropagator(a, h, 1e-12, probe, c0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 5, 8} {
		n1 := n + 1
		z := make([]float64, k*n1)
		c := make([]float64, k*n)
		for l := 0; l < k; l++ {
			for i := 0; i < n; i++ {
				z[l*n1+i] = 40 + rng.Float64()*20
				c[l*n+i] = rng.NormFloat64() * p.Tau()
			}
			z[l*n1+n] = 1
		}
		// Sequential copies first.
		seq := make([]float64, len(z))
		copy(seq, z)
		ws1 := NewWorkspace(p, 1)
		for l := 0; l < k; l++ {
			for step := 0; step < 5; step++ {
				p.Advance(ws1, seq[l*n1:(l+1)*n1], c[l*n:(l+1)*n])
			}
		}
		wsk := NewWorkspace(p, k)
		for step := 0; step < 5; step++ {
			p.AdvanceBatch(wsk, z, c, k)
		}
		for i := range z {
			if math.Float64bits(z[i]) != math.Float64bits(seq[i]) {
				t.Fatalf("k=%d: index %d batch %x sequential %x",
					k, i, math.Float64bits(z[i]), math.Float64bits(seq[i]))
			}
		}
	}
}

// TestPropagatorHappyBreakdown feeds a state inside a tiny invariant
// subspace: the Krylov space exhausts after two vectors and the step
// must stay finite and exact.
func TestPropagatorHappyBreakdown(t *testing.T) {
	n := 12
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, -2.0) // pure decay: A = -2I
	}
	a := b.Build()
	probe := make([]float64, n)
	czero := make([]float64, n)
	for i := range probe {
		probe[i] = 1 + float64(i%3)
	}
	p, err := NewPropagator(a, 0.1, 1e-12, probe, czero)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(p, 1)
	z := make([]float64, n+1)
	copy(z, probe)
	z[n] = 1
	csub := make([]float64, n)
	p.Advance(ws, z, csub)
	// With c = 0 the exact answer decouples: x_i(h) = x_i(0)·e^{-2h}
	// ... but the augmented entry keeps the basis 2-dimensional, so
	// this exercises breakdown at j = 2.
	decay := math.Exp(-0.2)
	for i := 0; i < n; i++ {
		want := probe[i] * decay
		if math.IsNaN(z[i]) || math.Abs(z[i]-want) > 1e-10*(1+want) {
			t.Errorf("z[%d] = %g, want %g", i, z[i], want)
		}
	}
}

func TestAdvanceAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 25
	a, _, c0 := stableSystem(rng, n)
	probe := make([]float64, n)
	for i := range probe {
		probe[i] = 50
	}
	p, err := NewPropagator(a, 0.01, 1e-12, probe, c0)
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	ws := NewWorkspace(p, k)
	z := make([]float64, k*(n+1))
	c := make([]float64, k*n)
	for l := 0; l < k; l++ {
		copy(z[l*(n+1):], probe)
		z[l*(n+1)+n] = 1
		copy(c[l*n:], c0)
	}
	if got := testing.AllocsPerRun(20, func() { p.AdvanceBatch(ws, z, c, k) }); got != 0 {
		t.Errorf("AdvanceBatch allocates %v per run", got)
	}
}
