// Package sparse provides compressed-sparse-row matrices with
// banded/blocked structure detection, zero-allocation SpMV/SpMM
// kernels mirroring the packed dense API in internal/linalg, a
// Jacobi-preconditioned conjugate-gradient solver, and a Krylov
// (Arnoldi) matrix-exponential action. Together these let the thermal
// model's exact-ZOH step cost scale with the nonzero count of the RC
// conduction network instead of N², which is what makes 256-1024-node
// generated floorplans tractable.
//
// Like internal/linalg, this package is deliberately unit-agnostic: it
// operates on raw float64 slices and the callers own the unit
// discipline at the boundary. The kernels are deterministic by
// construction — fixed iteration orders, no maps, no wall-clock — and
// every per-lane arithmetic sequence in the batch kernels is identical
// to the single-vector kernels, so batched and sequential stepping are
// bit-identical.
//
//mtlint:deterministic
//mtlint:units
package sparse

import (
	"fmt"
	"sort"
)

// CSR is an immutable rows x cols matrix in compressed-sparse-row
// form: row i's entries live in vals[rowPtr[i]:rowPtr[i+1]] with
// column indices colIdx, sorted ascending within each row. Build one
// with a Builder; the kernels assume the invariants it establishes.
type CSR struct {
	rows, cols int
	rowPtr     []int32
	colIdx     []int32
	vals       []float64
}

// Rows returns the row count.
func (a *CSR) Rows() int { return a.rows }

// Cols returns the column count.
func (a *CSR) Cols() int { return a.cols }

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.vals) }

// At returns the entry at (i, j), zero if not stored. It is a
// convenience for tests and structure probes, not a kernel.
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.rowPtr[i], a.rowPtr[i+1]
	for k := lo; k < hi; k++ {
		if int(a.colIdx[k]) == j {
			return a.vals[k]
		}
	}
	return 0
}

// Norm1 returns the maximum absolute column sum. Allocates a scratch
// column accumulator; call during assembly, not per tick.
func (a *CSR) Norm1() float64 {
	colSum := make([]float64, a.cols)
	for k, v := range a.vals {
		if v < 0 {
			v = -v
		}
		colSum[a.colIdx[k]] += v
	}
	var max float64
	for _, s := range colSum {
		if s > max {
			max = s
		}
	}
	return max
}

// Scaled returns a new CSR with every entry multiplied by s; the
// structure slices are shared with the receiver (they are immutable).
func (a *CSR) Scaled(s float64) *CSR {
	vals := make([]float64, len(a.vals))
	for i, v := range a.vals {
		vals[i] = v * s
	}
	return &CSR{rows: a.rows, cols: a.cols, rowPtr: a.rowPtr, colIdx: a.colIdx, vals: vals}
}

// Builder accumulates (row, col, value) triplets and assembles a CSR.
// Duplicate coordinates are summed. The assembly order is a stable
// sort by (row, col), so the built matrix is a pure function of the
// Add sequence's multiset of triplets.
type Builder struct {
	rows, cols int
	entries    []triplet
}

type triplet struct {
	r, c int32
	v    float64
}

// NewBuilder returns a builder for a rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sparse: NewBuilder(%d, %d): non-positive shape", rows, cols))
	}
	return &Builder{rows: rows, cols: cols}
}

// Add records a triplet. Zero values are kept: an explicitly stored
// zero keeps its slot in the pattern, which matters for structure
// detection on matrices whose values change but whose pattern must not.
func (b *Builder) Add(r, c int, v float64) {
	if r < 0 || r >= b.rows || c < 0 || c >= b.cols {
		panic(fmt.Sprintf("sparse: Add(%d, %d) outside %dx%d", r, c, b.rows, b.cols))
	}
	b.entries = append(b.entries, triplet{r: int32(r), c: int32(c), v: v})
}

// Build assembles the CSR, summing duplicates. The builder may be
// reused afterwards; the returned matrix owns its slices.
func (b *Builder) Build() *CSR {
	sort.SliceStable(b.entries, func(i, j int) bool {
		if b.entries[i].r != b.entries[j].r {
			return b.entries[i].r < b.entries[j].r
		}
		return b.entries[i].c < b.entries[j].c
	})
	a := &CSR{
		rows:   b.rows,
		cols:   b.cols,
		rowPtr: make([]int32, b.rows+1),
	}
	for i := 0; i < len(b.entries); {
		t := b.entries[i]
		v := t.v
		j := i + 1
		for ; j < len(b.entries) && b.entries[j].r == t.r && b.entries[j].c == t.c; j++ {
			v += b.entries[j].v
		}
		a.colIdx = append(a.colIdx, t.c)
		a.vals = append(a.vals, v)
		a.rowPtr[t.r+1]++
		i = j
	}
	for i := 0; i < b.rows; i++ {
		a.rowPtr[i+1] += a.rowPtr[i]
	}
	return a
}

// MulVecInto computes y = A·x. len(y) >= rows and len(x) >= cols.
// The per-row accumulation order is the stored (ascending column)
// order; MulBatchInto uses the identical order per lane, which is the
// bit-identity contract the batched thermal stepper relies on.
//
//mtlint:zeroalloc
func (a *CSR) MulVecInto(y, x []float64) {
	if len(y) < a.rows || len(x) < a.cols {
		badVecArgs(len(y), len(x), a.rows, a.cols)
	}
	rowPtr, colIdx, vals := a.rowPtr, a.colIdx, a.vals
	for i := 0; i < a.rows; i++ {
		var acc float64
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			acc += vals[k] * x[colIdx[k]]
		}
		y[i] = acc
	}
}

// MulAddInto computes y = bias + A·x, the sparse analogue of
// Packed.MulAddInto. bias may alias y.
//
//mtlint:zeroalloc
func (a *CSR) MulAddInto(y, bias, x []float64) {
	if len(y) < a.rows || len(x) < a.cols || len(bias) < a.rows {
		badAddArgs(len(y), len(bias), len(x), a.rows, a.cols)
	}
	rowPtr, colIdx, vals := a.rowPtr, a.colIdx, a.vals
	for i := 0; i < a.rows; i++ {
		acc := bias[i]
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			acc += vals[k] * x[colIdx[k]]
		}
		y[i] = acc
	}
}

// MulBatchInto computes y_l = bias_l + A·x_l for k lanes. Lane l's
// input starts at x[l*xStride] and its output at y[l*yStride]; bias is
// laid out at yStride and may be nil for a pure product. Strides are
// explicit (where Packed bakes its padded stride into the layout)
// because CSR panels are caller-owned; both must be at least the
// matrix dimension. Lanes are blocked by four so the column index and
// value streams are read once per block, and the per-(row, lane)
// accumulation order equals MulVecInto's, keeping batched results
// bit-identical to k separate single-vector products.
//
//mtlint:zeroalloc
func (a *CSR) MulBatchInto(y, bias []float64, k int, x []float64, xStride, yStride int) {
	if k <= 0 || xStride < a.cols || yStride < a.rows ||
		len(x) < (k-1)*xStride+a.cols || len(y) < (k-1)*yStride+a.rows ||
		(bias != nil && len(bias) < (k-1)*yStride+a.rows) {
		badBatchArgs(len(y), len(bias), k, len(x), xStride, yStride, a.rows, a.cols)
	}
	rowPtr, colIdx, vals := a.rowPtr, a.colIdx, a.vals
	for i := 0; i < a.rows; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		l := 0
		for ; l+4 <= k; l += 4 {
			x0 := x[(l+0)*xStride:]
			x1 := x[(l+1)*xStride:]
			x2 := x[(l+2)*xStride:]
			x3 := x[(l+3)*xStride:]
			// The bias seeds the accumulator (not a trailing add) so
			// the rounding sequence equals MulAddInto's exactly.
			var a0, a1, a2, a3 float64
			if bias != nil {
				a0 = bias[(l+0)*yStride+i]
				a1 = bias[(l+1)*yStride+i]
				a2 = bias[(l+2)*yStride+i]
				a3 = bias[(l+3)*yStride+i]
			}
			for p := lo; p < hi; p++ {
				v, c := vals[p], colIdx[p]
				a0 += v * x0[c]
				a1 += v * x1[c]
				a2 += v * x2[c]
				a3 += v * x3[c]
			}
			y[(l+0)*yStride+i] = a0
			y[(l+1)*yStride+i] = a1
			y[(l+2)*yStride+i] = a2
			y[(l+3)*yStride+i] = a3
		}
		for ; l < k; l++ {
			xl := x[l*xStride:]
			var acc float64
			if bias != nil {
				acc = bias[l*yStride+i]
			}
			for p := lo; p < hi; p++ {
				acc += vals[p] * xl[colIdx[p]]
			}
			y[l*yStride+i] = acc
		}
	}
}

// Cold-path argument panics, kept out of the zero-alloc kernel bodies
// so their formatting buffers never show up in the escape analysis of
// the hot code (same idiom as internal/linalg).

//go:noinline
func badVecArgs(ly, lx, rows, cols int) {
	panic(fmt.Sprintf("sparse: MulVecInto: len(y)=%d len(x)=%d for %dx%d", ly, lx, rows, cols))
}

//go:noinline
func badAddArgs(ly, lb, lx, rows, cols int) {
	panic(fmt.Sprintf("sparse: MulAddInto: len(y)=%d len(bias)=%d len(x)=%d for %dx%d", ly, lb, lx, rows, cols))
}

//go:noinline
func badBatchArgs(ly, lb, k, lx, xs, ys, rows, cols int) {
	panic(fmt.Sprintf("sparse: MulBatchInto: len(y)=%d len(bias)=%d k=%d len(x)=%d xStride=%d yStride=%d for %dx%d",
		ly, lb, k, lx, xs, ys, rows, cols))
}
