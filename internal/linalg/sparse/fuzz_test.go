package sparse

import (
	"math"
	"math/rand"
	"testing"

	"multitherm/internal/linalg"
)

// FuzzSpMV is the differential target for the CSR kernels against the
// dense packed kernel in internal/linalg: a seeded PRNG expands
// (seed, rows, cols, fill) into a matrix realized both ways, and the
// sparse MulAddInto must agree with Packed.MulAddInto to a rounding
// tolerance (the two kernels accumulate in different orders: CSR walks
// each row's nonzeros, Packed fans out columns). The batch kernel is
// then checked bit-identical to the single-vector kernel, which is an
// exact contract, not a tolerance.
func FuzzSpMV(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(4), uint8(128))
	f.Add(int64(2), uint8(1), uint8(7), uint8(30))
	f.Add(int64(3), uint8(40), uint8(40), uint8(10))
	f.Add(int64(4), uint8(13), uint8(9), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, r8, c8, fill8 uint8) {
		rows := 1 + int(r8)%48
		cols := 1 + int(c8)%48
		fill := float64(fill8) / 255
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(rows, cols)
		d := linalg.NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if rng.Float64() < fill {
					v := rng.NormFloat64()
					b.Add(i, j, v)
					d.Set(i, j, v)
				}
			}
		}
		a := b.Build()
		p := linalg.Pack(d)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		bias := make([]float64, p.Stride())
		for i := 0; i < rows; i++ {
			bias[i] = rng.NormFloat64()
		}
		ySparse := make([]float64, rows)
		a.MulAddInto(ySparse, bias, x)
		yDense := make([]float64, p.Stride())
		p.MulAddInto(yDense, bias, x)
		for i := 0; i < rows; i++ {
			// Scale-aware tolerance: both kernels round once per
			// product, so disagreement is bounded by the absolute
			// mass flowing through the row.
			var mass float64
			for j := 0; j < cols; j++ {
				mass += math.Abs(d.At(i, j) * x[j])
			}
			mass += math.Abs(bias[i])
			if diff := math.Abs(ySparse[i] - yDense[i]); diff > 1e-12*(1+mass) {
				t.Fatalf("row %d: sparse %.17g dense %.17g (mass %g)", i, ySparse[i], yDense[i], mass)
			}
		}
		// Batch kernel vs single-vector kernel: exact.
		k := 1 + int(seed&3)
		xb := make([]float64, k*cols)
		bb := make([]float64, k*rows)
		for i := range xb {
			xb[i] = rng.NormFloat64()
		}
		for i := range bb {
			bb[i] = rng.NormFloat64()
		}
		yb := make([]float64, k*rows)
		a.MulBatchInto(yb, bb, k, xb, cols, rows)
		yl := make([]float64, rows)
		for l := 0; l < k; l++ {
			a.MulAddInto(yl, bb[l*rows:(l+1)*rows], xb[l*cols:(l+1)*cols])
			for i := 0; i < rows; i++ {
				if math.Float64bits(yb[l*rows+i]) != math.Float64bits(yl[i]) {
					t.Fatalf("batch lane %d row %d: %x vs %x", l, i,
						math.Float64bits(yb[l*rows+i]), math.Float64bits(yl[i]))
				}
			}
		}
	})
}
