package sparse

import "fmt"

// Structure detection. The RC networks the thermal model assembles are
// not random sparsity: grid floorplans index blocks tile by tile, so
// the conduction matrix is nearly banded (neighbors within a tile and
// along a row are a few indices apart; the row-to-row couplings sit at
// +-4*Cols) and the per-tile couplings form dense blocks. The probes
// here quantify that so callers can pick a banded kernel when the band
// is tight, and so tests can pin the generated matrices' shape.

// Structure summarizes the sparsity pattern of a CSR matrix.
type Structure struct {
	Rows, Cols int
	NNZ        int
	// Lower and Upper are the furthest stored entry below and above
	// the main diagonal; the bandwidth is Lower+Upper+1.
	Lower, Upper int
	// BandOccupancy is NNZ divided by the in-band slot count: 1 means
	// the band is completely full, small values mean band storage
	// would waste memory.
	BandOccupancy float64
	// BlockSize is the largest b in {8, 6, 4, 3, 2} for which the
	// pattern, grouped into b x b tiles, fills at least three
	// quarters of the touched tiles' slots on average (i.e. the
	// pattern is mostly dense b x b blocks); 1 if no blocking helps.
	BlockSize int
}

// Structure scans the pattern once and returns its summary.
func (a *CSR) Structure() Structure {
	s := Structure{Rows: a.rows, Cols: a.cols, NNZ: len(a.vals), BlockSize: 1}
	for i := 0; i < a.rows; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			d := int(a.colIdx[k]) - i
			if -d > s.Lower {
				s.Lower = -d
			}
			if d > s.Upper {
				s.Upper = d
			}
		}
	}
	slots := bandSlots(a.rows, a.cols, s.Lower, s.Upper)
	if slots > 0 {
		s.BandOccupancy = float64(s.NNZ) / float64(slots)
	}
	for _, b := range [...]int{8, 6, 4, 3, 2} {
		if a.rows%b != 0 || a.cols%b != 0 {
			continue
		}
		if a.blockFill(b) >= 0.75 {
			s.BlockSize = b
			break
		}
	}
	return s
}

// bandSlots counts the stored slots of a band with the given lower and
// upper half-widths over a rows x cols matrix.
func bandSlots(rows, cols, lower, upper int) int {
	slots := 0
	for i := 0; i < rows; i++ {
		lo := i - lower
		if lo < 0 {
			lo = 0
		}
		hi := i + upper
		if hi > cols-1 {
			hi = cols - 1
		}
		if hi >= lo {
			slots += hi - lo + 1
		}
	}
	return slots
}

// blockFill returns the average fill of the b x b tiles that contain
// at least one stored entry.
func (a *CSR) blockFill(b int) float64 {
	tiles := map[int64]int{}
	for i := 0; i < a.rows; i++ {
		ti := int64(i / b)
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			tiles[ti*int64(a.cols/b)+int64(int(a.colIdx[k])/b)]++
		}
	}
	if len(tiles) == 0 {
		return 0
	}
	return float64(len(a.vals)) / float64(len(tiles)*b*b)
}

// Banded stores a matrix by diagonals: row i's entries for columns
// i-lower..i+upper live contiguously at data[i*width:], width =
// lower+upper+1, with out-of-range slots zero. The row-major layout
// makes the SpMV a strided dot product with no index stream at all.
type Banded struct {
	n            int
	lower, upper int
	data         []float64
}

// ToBanded converts a square CSR matrix to banded storage when the
// band is economical: it returns ok=false if the matrix is not square
// or if band storage would exceed twice the nonzero count (the memory
// bound at which the index-free kernel stops paying for itself).
func (a *CSR) ToBanded() (*Banded, bool) {
	if a.rows != a.cols {
		return nil, false
	}
	s := a.Structure()
	width := s.Lower + s.Upper + 1
	if a.rows*width > 2*len(a.vals) {
		return nil, false
	}
	b := &Banded{n: a.rows, lower: s.Lower, upper: s.Upper,
		data: make([]float64, a.rows*width)}
	for i := 0; i < a.rows; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			b.data[i*width+(int(a.colIdx[k])-i+s.Lower)] = a.vals[k]
		}
	}
	return b, true
}

// Bandwidth returns the lower and upper half-widths.
func (b *Banded) Bandwidth() (lower, upper int) { return b.lower, b.upper }

// MulVecInto computes y = B·x over the band.
//
//mtlint:zeroalloc
func (b *Banded) MulVecInto(y, x []float64) {
	if len(y) < b.n || len(x) < b.n {
		badBandArgs(len(y), len(x), b.n)
	}
	width := b.lower + b.upper + 1
	for i := 0; i < b.n; i++ {
		lo := i - b.lower
		if lo < 0 {
			lo = 0
		}
		hi := i + b.upper
		if hi > b.n-1 {
			hi = b.n - 1
		}
		row := b.data[i*width:]
		var acc float64
		for j := lo; j <= hi; j++ {
			acc += row[j-i+b.lower] * x[j]
		}
		y[i] = acc
	}
}

//go:noinline
func badBandArgs(ly, lx, n int) {
	panic(fmt.Sprintf("sparse: Banded.MulVecInto: len(y)=%d len(x)=%d for n=%d", ly, lx, n))
}
