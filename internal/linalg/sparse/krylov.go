package sparse

import (
	"fmt"
	"math"
)

// Krylov action of the matrix exponential. The thermal model's exact
// ZOH update is
//
//	x(t+h) = e^{A·h}·x(t) + (integral of e^{A·s} ds)·c
//
// which the dense path materializes as the packed Φ/Ψ pair — an
// O((2n)³) build and an O(n²) step. Above the crossover size we never
// form e^{A·h}: following the standard augmented-matrix trick, the
// affine ODE x' = A·x + c is embedded as the linear ODE z' = M·z on
// z = [x; 1] with
//
//	M = [[A·τ, τ·c], [0, 0]]
//
// so one exact substep is z ← e^M·z, computed by an m-step Arnoldi
// projection: e^M·z ≈ β·V_m·e^{H_m}·e₁ with β = ||z||₂. Cost per
// substep is m sparse mat-vecs plus O(m·n) orthogonalization plus one
// m×m exponential — linear in NNZ, not N².
//
// Restart policy: there are no adaptive restarts. The Krylov dimension
// m and the substep count nsub are fixed once at construction by
// probing a representative state with the standard a-posteriori
// estimate β·h_{m+1,m}·|e^{H_m}|[m-1][0], and every subsequent step
// runs the identical (m, nsub) schedule. A fixed schedule costs a
// little accuracy headroom but buys the two properties the simulator
// is built around: steps are bit-reproducible (the arithmetic sequence
// depends only on the inputs, never on convergence history) and
// batched lanes stay in lockstep (all lanes share one schedule, so the
// SpMM fan-out never diverges).
type Propagator struct {
	a    *CSR // the generator scaled by tau, so one Arnoldi pass spans one substep
	n    int
	tau  float64
	m    int
	nsub int
}

// mCap bounds the Krylov dimension; if the probe cannot reach the
// tolerance at mCap the builder doubles nsub instead (a shorter
// substep shrinks ||M·τ|| and with it the required m).
const mCap = 48

// breakdownTiny is the happy-breakdown threshold on the next-basis
// norm h_{j+1,j}: below it the Krylov space is (numerically) invariant
// and the remaining basis vectors are set to zero rather than divided
// into noise. Zero columns propagate zeros through the SpMM and the
// small exponential, so sequential and batched runs agree bitwise even
// through a breakdown.
const breakdownTiny = 1e-290

// NewPropagator builds a fixed-schedule propagator for the generator a
// over one step of width stepSize. probeX (length n) and probeC
// (length n, the unscaled constant rate b in x' = A·x + b) supply the
// representative state used to calibrate (m, nsub) against tol; the
// calibration is deterministic, so equal inputs yield an equal
// schedule.
func NewPropagator(a *CSR, stepSize, tol float64, probeX, probeC []float64) (*Propagator, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("sparse: NewPropagator: matrix is %dx%d, not square", a.rows, a.cols)
	}
	if len(probeX) != n || len(probeC) != n {
		return nil, fmt.Errorf("sparse: NewPropagator: probe lengths %d, %d for n=%d", len(probeX), len(probeC), n)
	}
	if stepSize <= 0 {
		return nil, fmt.Errorf("sparse: NewPropagator: non-positive step %g", stepSize)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	// Initial substep count from the generator's magnitude: keep
	// ||A·τ||₁ near unity so the Taylor series inside the small
	// exponential and the Arnoldi projection both converge fast.
	norm := a.Norm1() * stepSize
	nsub := 1 + int(norm/2.0)
	for attempt := 0; attempt < 6; attempt++ {
		tau := stepSize / float64(nsub)
		p := &Propagator{a: a.Scaled(tau), n: n, tau: tau, nsub: nsub}
		if m, ok := p.calibrate(tol, probeX, probeC); ok {
			p.m = m
			return p, nil
		}
		nsub *= 2
	}
	return nil, fmt.Errorf("sparse: NewPropagator: no Krylov dimension <= %d reaches tol %g even with shortened substeps", mCap, tol)
}

// calibrate runs one Arnoldi pass to mCap on the probe state and
// returns the smallest dimension whose a-posteriori error estimate
// meets tol (relative to β), plus one dimension of margin.
func (p *Propagator) calibrate(tol float64, probeX, probeC []float64) (int, bool) {
	ws := newWorkspace(mCap, p.n, 1)
	z := make([]float64, p.n+1)
	copy(z, probeX)
	z[p.n] = 1
	c := make([]float64, p.n)
	for i := range c {
		c[i] = probeC[i] * p.tau // constant rate scaled to one substep
	}
	beta := p.arnoldi(ws, z, c, 1, mCap)
	hm := mCap + 1
	for m := 2; m <= mCap; m++ {
		h := ws.H[m*hm+(m-1)] // h_{m+1,m} in the (mCap+1)-stride panel
		// e^{H_m} for the candidate dimension.
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				ws.t1[i*m+j] = ws.H[i*hm+j]
			}
		}
		expmSmall(ws, m)
		est := beta * math.Abs(h) * math.Abs(ws.F[(m-1)*m])
		if est <= tol*beta {
			m++ // one dimension of margin over the probe
			if m > mCap {
				m = mCap
			}
			return m, true
		}
	}
	return 0, false
}

// Tau returns the substep width the fixed schedule applies.
func (p *Propagator) Tau() float64 { return p.tau }

// Substeps returns the number of equal substeps per step.
func (p *Propagator) Substeps() int { return p.nsub }

// Dim returns the fixed Krylov dimension m.
func (p *Propagator) Dim() int { return p.m }

// N returns the state dimension (excluding the augmented entry).
func (p *Propagator) N() int { return p.n }

// Workspace holds every buffer Advance and AdvanceBatch touch, sized
// for a fixed (propagator, lane count) pair, so the per-tick path
// allocates nothing.
type Workspace struct {
	m, n, k int
	V       []float64 // (m+1) basis panels, each k lanes of length n+1
	H       []float64 // k Hessenberg panels, (m+1) x (m+1) row-major
	beta    []float64 // per-lane ||z||₂
	F       []float64 // m x m small-exponential result (per-lane scratch)
	t1, t2  []float64 // m x m small-exponential work buffers
}

// NewWorkspace allocates a workspace for stepping k lanes through p.
func NewWorkspace(p *Propagator, k int) *Workspace {
	if k <= 0 {
		panic(fmt.Sprintf("sparse: NewWorkspace: k=%d", k))
	}
	return newWorkspace(p.m, p.n, k)
}

func newWorkspace(m, n, k int) *Workspace {
	hm := m + 1
	return &Workspace{
		m: m, n: n, k: k,
		V:    make([]float64, (m+1)*k*(n+1)),
		H:    make([]float64, k*hm*hm),
		beta: make([]float64, k),
		F:    make([]float64, m*m),
		t1:   make([]float64, m*m),
		t2:   make([]float64, m*m),
	}
}

// Advance steps a single lane: z (length n+1, with z[n] == 1) is
// replaced by its state one full step later under x' = A·x + c, where
// c (length n) is the constant term scaled to one substep τ. It is
// exactly AdvanceBatch with k = 1.
func (p *Propagator) Advance(ws *Workspace, z, c []float64) {
	p.AdvanceBatch(ws, z, c, 1)
}

// AdvanceBatch steps k lanes in lockstep. Lane l's augmented state is
// z[l*(n+1):(l+1)*(n+1)] and its substep-scaled constant term is
// c[l*n:(l+1)*n]. All lanes share the generator, so the m sparse
// mat-vecs per substep run as one batched SpMM; every per-lane
// arithmetic sequence (accumulation order in the SpMM, the MGS
// orthogonalization, the basis combination) is identical to the k = 1
// path, so batched stepping is bit-identical to sequential stepping.
//
//mtlint:zeroalloc
func (p *Propagator) AdvanceBatch(ws *Workspace, z, c []float64, k int) {
	n1 := p.n + 1
	if ws.m != p.m || ws.n != p.n || k <= 0 || k > ws.k ||
		len(z) < k*n1 || len(c) < k*p.n {
		badAdvanceArgs(ws.m, ws.n, ws.k, p.m, p.n, k, len(z), len(c))
	}
	for s := 0; s < p.nsub; s++ {
		p.arnoldi(ws, z, c, k, p.m)
		p.combine(ws, z, k)
	}
}

// arnoldi builds the m-step Krylov basis of the augmented operator for
// lanes [0, k), leaving the basis in ws.V, the Hessenberg panels in
// ws.H, and the lane norms in ws.beta. It returns lane 0's β for the
// calibration path. Called with the workspace's own m-capacity from
// calibrate, and with the fixed p.m from AdvanceBatch.
//
//mtlint:zeroalloc
func (p *Propagator) arnoldi(ws *Workspace, z, c []float64, k, m int) float64 {
	n1 := p.n + 1
	hm := ws.m + 1
	for i := range ws.H[:k*hm*hm] {
		ws.H[i] = 0
	}
	for l := 0; l < k; l++ {
		zl := z[l*n1 : l*n1+n1]
		b := nrm2(zl)
		ws.beta[l] = b
		inv := 1 / b // β >= 1 always: the augmented entry is pinned to 1
		v0 := ws.V[l*n1 : l*n1+n1]
		for i, zv := range zl {
			v0[i] = zv * inv
		}
	}
	for j := 0; j < m; j++ {
		vj := ws.V[j*ws.k*n1:]
		w := ws.V[(j+1)*ws.k*n1:]
		// Top block of the augmented operator: w = (A·τ)·v across all
		// lanes in one SpMM. The augmented column then adds v[n]·τ·c
		// per lane, and the augmented row is zero.
		p.a.MulBatchInto(w, nil, k, vj, n1, n1)
		for l := 0; l < k; l++ {
			wl := w[l*n1 : l*n1+n1]
			zn := vj[l*n1+p.n]
			cl := c[l*p.n : l*p.n+p.n]
			for i, cv := range cl {
				wl[i] += zn * cv
			}
			wl[p.n] = 0
		}
		// Modified Gram-Schmidt per lane, identical order at any k.
		for l := 0; l < k; l++ {
			wl := w[l*n1 : l*n1+n1]
			Hl := ws.H[l*hm*hm:]
			for i := 0; i <= j; i++ {
				vi := ws.V[i*ws.k*n1+l*n1:]
				vi = vi[:n1]
				hij := dot(vi, wl)
				for t, vv := range vi {
					wl[t] -= hij * vv
				}
				Hl[i*hm+j] = hij
			}
			hn := nrm2(wl)
			if hn > breakdownTiny {
				Hl[(j+1)*hm+j] = hn
				inv := 1 / hn
				for t := range wl {
					wl[t] *= inv
				}
			} else {
				// Happy breakdown: the space is invariant; keep the
				// zero vector so later columns stay exactly zero.
				for t := range wl {
					wl[t] = 0
				}
			}
		}
	}
	return ws.beta[0]
}

// combine forms z ← β·V·(e^{H} e₁) per lane and re-pins the augmented
// entry to exactly 1 (its mathematical value under the zero bottom row
// of M; re-pinning stops roundoff from drifting the affine embedding).
//
//mtlint:zeroalloc
func (p *Propagator) combine(ws *Workspace, z []float64, k int) {
	n1 := p.n + 1
	hm := ws.m + 1
	m := p.m
	for l := 0; l < k; l++ {
		for i := 0; i < m; i++ {
			Hrow := ws.H[l*hm*hm+i*hm:]
			copy(ws.t1[i*m:i*m+m], Hrow[:m])
		}
		expmSmall(ws, m)
		zl := z[l*n1 : l*n1+n1]
		for i := range zl {
			zl[i] = 0
		}
		for j := 0; j < m; j++ {
			fj := ws.F[j*m] * ws.beta[l]
			vj := ws.V[j*ws.k*n1+l*n1:]
			vj = vj[:n1]
			for i, vv := range vj {
				zl[i] += fj * vv
			}
		}
		zl[p.n] = 1
	}
}

//go:noinline
func badAdvanceArgs(wsM, wsN, wsK, pm, pn, k, lz, lc int) {
	panic(fmt.Sprintf("sparse: AdvanceBatch: workspace (m=%d n=%d k=%d) vs propagator (m=%d n=%d) k=%d len(z)=%d len(c)=%d",
		wsM, wsN, wsK, pm, pn, k, lz, lc))
}

// expmSmall computes e^{T} of the m x m matrix in ws.t1 into ws.F by
// scaling-and-squaring over a truncated Taylor series, entirely on the
// workspace buffers. The iteration counts depend only on the input
// values, so the routine is deterministic; m is Krylov-sized (<= 48),
// so the O(m³) multiplies are noise next to the SpMM work.
//
//mtlint:zeroalloc
func expmSmall(ws *Workspace, m int) {
	a := ws.t1
	// Scale T by 2^-s until its 1-norm is at most 1/2.
	var nrm float64
	for j := 0; j < m; j++ {
		var colSum float64
		for i := 0; i < m; i++ {
			colSum += math.Abs(a[i*m+j])
		}
		if colSum > nrm {
			nrm = colSum
		}
	}
	s := 0
	for sc := nrm; sc > 0.5; sc /= 2 {
		s++
	}
	if s > 0 {
		scale := math.Ldexp(1, -s)
		for i := range a[:m*m] {
			a[i] *= scale
		}
	}
	// F = I + T + T²/2! + ... with the running term in t2 and a
	// fixed-size stack row as the matmul staging buffer (m <= mCap).
	f := ws.F
	term := ws.t2
	for i := range f[:m*m] {
		f[i] = a[i]
		term[i] = a[i]
	}
	for i := 0; i < m; i++ {
		f[i*m+i] += 1
	}
	var row [mCap]float64
	for kk := 2; kk <= 32; kk++ {
		inv := 1 / float64(kk)
		var tmax float64
		for i := 0; i < m; i++ {
			trow := term[i*m : i*m+m]
			for j := 0; j < m; j++ {
				var acc float64
				for t := 0; t < m; t++ {
					acc += trow[t] * a[t*m+j]
				}
				row[j] = acc * inv
			}
			for j := 0; j < m; j++ {
				v := row[j]
				trow[j] = v
				f[i*m+j] += v
				if math.Abs(v) > tmax {
					tmax = math.Abs(v)
				}
			}
		}
		// With ||T||₁ <= 1/2 the terms shrink geometrically; stop
		// once they are far below double precision. The cutoff
		// depends only on the input values, so equal inputs take
		// equal iteration counts.
		if tmax <= 1e-20 {
			break
		}
	}
	// Undo the scaling: F ← F^(2^s), staging each product in t2.
	for r := 0; r < s; r++ {
		for i := 0; i < m; i++ {
			frow := f[i*m : i*m+m]
			for j := 0; j < m; j++ {
				var acc float64
				for t := 0; t < m; t++ {
					acc += frow[t] * f[t*m+j]
				}
				row[j] = acc
			}
			copy(term[i*m:i*m+m], row[:m])
		}
		copy(f[:m*m], term[:m*m])
	}
}
