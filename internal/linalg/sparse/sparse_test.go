package sparse

import (
	"math"
	"math/rand"
	"testing"

	"multitherm/internal/linalg"
)

// randCSR builds a random rows x cols matrix at the given fill
// fraction, returning both the CSR and the equivalent dense matrix.
func randCSR(rng *rand.Rand, rows, cols int, fill float64) (*CSR, *linalg.Matrix) {
	b := NewBuilder(rows, cols)
	d := linalg.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < fill {
				v := rng.NormFloat64()
				b.Add(i, j, v)
				d.Set(i, j, v)
			}
		}
	}
	return b.Build(), d
}

func TestBuilderSortsAndSumsDuplicates(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(2, 1, 1.5)
	b.Add(0, 2, 3.0)
	b.Add(2, 1, 0.5)
	b.Add(0, 0, -1.0)
	a := b.Build()
	if got := a.NNZ(); got != 3 {
		t.Fatalf("NNZ = %d, want 3 (duplicates summed)", got)
	}
	if got := a.At(2, 1); got != 2.0 {
		t.Errorf("At(2,1) = %g, want 2 (1.5 + 0.5)", got)
	}
	if got := a.At(0, 2); got != 3.0 {
		t.Errorf("At(0,2) = %g, want 3", got)
	}
	if got := a.At(1, 1); got != 0.0 {
		t.Errorf("At(1,1) = %g, want 0 (absent)", got)
	}
	// Columns sorted within each row.
	for i := 0; i < a.rows; i++ {
		for k := a.rowPtr[i] + 1; k < a.rowPtr[i+1]; k++ {
			if a.colIdx[k] <= a.colIdx[k-1] {
				t.Fatalf("row %d columns not strictly ascending", i)
			}
		}
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{1, 1}, {5, 5}, {13, 7}, {40, 40}} {
		a, d := randCSR(rng, shape[0], shape[1], 0.3)
		x := make([]float64, shape[1])
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, shape[0])
		a.MulVecInto(y, x)
		want := d.MulVec(x)
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Errorf("%dx%d: y[%d] = %g, dense %g", shape[0], shape[1], i, y[i], want[i])
			}
		}
	}
}

func TestMulAddInto(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, d := randCSR(rng, 9, 9, 0.4)
	x := make([]float64, 9)
	bias := make([]float64, 9)
	for i := range x {
		x[i] = rng.NormFloat64()
		bias[i] = rng.NormFloat64()
	}
	y := make([]float64, 9)
	a.MulAddInto(y, bias, x)
	want := d.MulVec(x)
	for i := range y {
		if math.Abs(y[i]-(want[i]+bias[i])) > 1e-12 {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i]+bias[i])
		}
	}
}

// TestMulBatchBitIdenticalToMulVec is the batch contract: k lanes
// through MulBatchInto must equal k separate MulVecInto calls bitwise,
// at every lane position within the 4-wide blocking.
func TestMulBatchBitIdenticalToMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, _ := randCSR(rng, 17, 17, 0.25)
	for _, k := range []int{1, 2, 3, 4, 5, 8, 11} {
		xs, ys := 19, 23 // strides deliberately larger than the dimension
		x := make([]float64, k*xs)
		bias := make([]float64, k*ys)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		y := make([]float64, k*ys)
		a.MulBatchInto(y, bias, k, x, xs, ys)
		single := make([]float64, 17)
		for l := 0; l < k; l++ {
			a.MulAddInto(single, bias[l*ys:l*ys+17], x[l*xs:l*xs+17])
			for i := 0; i < 17; i++ {
				if math.Float64bits(y[l*ys+i]) != math.Float64bits(single[i]) {
					t.Fatalf("k=%d lane %d row %d: batch %x, single %x",
						k, l, i, math.Float64bits(y[l*ys+i]), math.Float64bits(single[i]))
				}
			}
		}
	}
	// And without bias.
	k := 6
	x := make([]float64, k*17)
	y := make([]float64, k*17)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	a.MulBatchInto(y, nil, k, x, 17, 17)
	single := make([]float64, 17)
	for l := 0; l < k; l++ {
		a.MulVecInto(single, x[l*17:(l+1)*17])
		for i := 0; i < 17; i++ {
			if math.Float64bits(y[l*17+i]) != math.Float64bits(single[i]) {
				t.Fatalf("nil bias: lane %d row %d differ", l, i)
			}
		}
	}
}

func TestNorm1MatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, d := randCSR(rng, 12, 12, 0.3)
	if got, want := a.Norm1(), d.Norm1(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Norm1 = %g, dense %g", got, want)
	}
}

func TestStructureOnTridiagonal(t *testing.T) {
	n := 16
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i > 0 {
			b.Add(i, i-1, -1)
		}
		if i < n-1 {
			b.Add(i, i+1, -1)
		}
	}
	a := b.Build()
	s := a.Structure()
	if s.Lower != 1 || s.Upper != 1 {
		t.Fatalf("band = (%d, %d), want (1, 1)", s.Lower, s.Upper)
	}
	if s.BandOccupancy < 0.99 {
		t.Errorf("occupancy = %g, want ~1 for a full tridiagonal", s.BandOccupancy)
	}
	bd, ok := a.ToBanded()
	if !ok {
		t.Fatal("ToBanded refused a tridiagonal matrix")
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	y1 := make([]float64, n)
	y2 := make([]float64, n)
	a.MulVecInto(y1, x)
	bd.MulVecInto(y2, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-14 {
			t.Errorf("banded y[%d] = %g, csr %g", i, y2[i], y1[i])
		}
	}
}

func TestStructureDetectsBlocks(t *testing.T) {
	// 4x4 dense blocks on a 16x16 block-diagonal matrix.
	b := NewBuilder(16, 16)
	for blk := 0; blk < 4; blk++ {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				b.Add(blk*4+i, blk*4+j, 1)
			}
		}
	}
	s := b.Build().Structure()
	if s.BlockSize != 4 {
		t.Errorf("BlockSize = %d, want 4", s.BlockSize)
	}
	// A scattered wide matrix should refuse banded conversion.
	w := NewBuilder(32, 32)
	w.Add(0, 31, 1)
	w.Add(31, 0, 1)
	for i := 0; i < 32; i++ {
		w.Add(i, i, 1)
	}
	if _, ok := w.Build().ToBanded(); ok {
		t.Error("ToBanded accepted a matrix with two full-width outliers")
	}
}

func TestSolveCGMatchesDenseLU(t *testing.T) {
	// SPD Laplacian-plus-diagonal system, the thermal G shape.
	n := 30
	b := NewBuilder(n, n)
	d := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		diag := 0.5 + 0.01*float64(i%7)
		if i > 0 {
			b.Add(i, i-1, -1)
			d.Set(i, i-1, -1)
			diag++
		}
		if i < n-1 {
			b.Add(i, i+1, -1)
			d.Set(i, i+1, -1)
			diag++
		}
		b.Add(i, i, diag)
		d.Set(i, i, diag)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1 + 0.3*float64(i%4)
	}
	got, err := SolveCG(b.Build(), rhs, 1e-13, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := linalg.Solve(d, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
			t.Errorf("x[%d] = %g, LU %g", i, got[i], want[i])
		}
	}
}

func TestSolveCGRejectsIndefinite(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, -1)
	if _, err := SolveCG(b.Build(), []float64{1, 1}, 1e-10, 0); err == nil {
		t.Fatal("no error for an indefinite matrix")
	}
}

// TestKernelsAllocationFree backs the //mtlint:zeroalloc annotations
// with a runtime check.
func TestKernelsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, _ := randCSR(rng, 20, 20, 0.3)
	x := make([]float64, 4*20)
	y := make([]float64, 4*20)
	bias := make([]float64, 4*20)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if n := testing.AllocsPerRun(50, func() { a.MulVecInto(y, x) }); n != 0 {
		t.Errorf("MulVecInto allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(50, func() { a.MulAddInto(y, bias, x) }); n != 0 {
		t.Errorf("MulAddInto allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(50, func() { a.MulBatchInto(y, bias, 4, x, 20, 20) }); n != 0 {
		t.Errorf("MulBatchInto allocates %v per run", n)
	}
}
