package sparse

import (
	"fmt"
	"math"
)

// SolveCG solves a·x = b for a symmetric positive-definite matrix with
// Jacobi-preconditioned conjugate gradients, returning a freshly
// allocated solution. It iterates until the residual 2-norm falls to
// tol relative to ||b|| or maxIter iterations elapse (maxIter <= 0
// selects 40·n). The iteration is a fixed arithmetic sequence — no
// pivoting, no randomized starts — so results are deterministic.
//
// The thermal model's conductance matrix G is exactly this shape (a
// weighted graph Laplacian plus a positive diagonal from the package
// path), and CG over CSR replaces the O(n³) dense LU steady-state
// solve above the sparse crossover.
func SolveCG(a *CSR, b []float64, tol float64, maxIter int) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("sparse: SolveCG: matrix is %dx%d, not square", a.rows, a.cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("sparse: SolveCG: len(b)=%d for n=%d", len(b), n)
	}
	if maxIter <= 0 {
		maxIter = 40 * n
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		d := a.At(i, i)
		if d <= 0 {
			return nil, fmt.Errorf("sparse: SolveCG: non-positive diagonal %g at row %d", d, i)
		}
		diag[i] = d
	}
	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b) // x0 = 0, so r0 = b
	z := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)
	normB := nrm2(b)
	if normB <= 0 {
		return x, nil // b = 0: the unique SPD solution is x = 0
	}
	for i := 0; i < n; i++ {
		z[i] = r[i] / diag[i]
	}
	copy(p, z)
	rz := dot(r, z)
	for iter := 0; iter < maxIter; iter++ {
		a.MulVecInto(q, p)
		pq := dot(p, q)
		if pq <= 0 {
			return nil, fmt.Errorf("sparse: SolveCG: curvature %g <= 0 at iteration %d (matrix not SPD?)", pq, iter)
		}
		alpha := rz / pq
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		if nrm2(r) <= tol*normB {
			return x, nil
		}
		for i := 0; i < n; i++ {
			z[i] = r[i] / diag[i]
		}
		rzNext := dot(r, z)
		beta := rzNext / rz
		rz = rzNext
		for i := 0; i < n; i++ {
			p[i] = z[i] + beta*p[i]
		}
	}
	return nil, fmt.Errorf("sparse: SolveCG: no convergence to %g in %d iterations", tol, maxIter)
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func nrm2(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}
