package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// Differential fuzz targets for the asm-backed kernels: every input is
// run through both the dispatching entry point (SIMD when available)
// and the registered pure-Go twin, and the results compared. These are
// the tested-by targets named in the //mtlint:generic directives in
// simd_amd64.go, and they double as the noasm leg's property tests —
// on a noasm build both paths collapse to the generic kernel and the
// comparisons must be exact.
//
// Inputs arrive as (seed, size, ...) primitives rather than raw bytes:
// a seeded PRNG expands them into operands, so every corpus entry is
// reproducible and minimization stays meaningful.

// fuzzTol is the relative tolerance for asm-vs-generic comparisons.
// The SIMD kernels contract mul+add into FMA, so individual results
// may differ from the generic two-rounding path by a few ULP; 1e-12
// is ~4 decimal digits of slack over unit roundoff while still
// catching any indexing or masking bug outright.
const fuzzTol = 1e-12

// relClose reports whether a and b agree to fuzzTol relative to the
// larger magnitude (absolute near zero).
func relClose(a, b float64) bool {
	d := math.Abs(a - b)
	if d <= fuzzTol {
		return true
	}
	return d <= fuzzTol*math.Max(math.Abs(a), math.Abs(b))
}

// randPacked builds a rows×cols matrix of standard normals and packs
// it, along with a random input vector and bias panel.
func randPacked(rng *rand.Rand, rows, cols int) (p *Packed, x, bias []float64) {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	p = Pack(m)
	x = make([]float64, cols)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	bias = make([]float64, p.Stride())
	for i := 0; i < rows; i++ {
		bias[i] = rng.NormFloat64()
	}
	return p, x, bias
}

// FuzzMulAddInto is the differential target for fusedTick64: MulAddInto
// (SIMD when available) against the registered generic twin
// mulAddGeneric, within FMA tolerance.
func FuzzMulAddInto(f *testing.F) {
	f.Add(int64(1), int64(8), int64(6))
	f.Add(int64(2), int64(64), int64(64)) // full-stride operand
	f.Add(int64(3), int64(56), int64(55)) // CMP4-sized network
	f.Add(int64(4), int64(1), int64(1))
	f.Add(int64(5), int64(63), int64(7)) // odd row count below stride
	f.Fuzz(func(t *testing.T, seed, rowsIn, colsIn int64) {
		rows := int((uint64(rowsIn)-1)%64) + 1 // 1..64: packed fast-path shapes
		cols := int((uint64(colsIn)-1)%80) + 1
		rng := rand.New(rand.NewSource(seed))
		p, x, bias := randPacked(rng, rows, cols)

		got := make([]float64, p.Stride())
		want := make([]float64, p.Stride())
		p.MulAddInto(got, bias, x)
		p.mulAddGeneric(want, bias, x)
		for i := 0; i < rows; i++ {
			if !relClose(got[i], want[i]) {
				t.Fatalf("rows=%d cols=%d row %d: MulAddInto=%g mulAddGeneric=%g (diff %g)",
					rows, cols, i, got[i], want[i], got[i]-want[i])
			}
		}
	})
}

// FuzzMulBatchInto is the differential target for fusedTickBatch64,
// fusedTickBatch56, and fusedTickBatch56x4 (lane counts reach 8, so
// quad groups plus every remainder width are exercised). Three oracles:
// per lane, the batched kernel must be bit-identical to sequential
// MulAddInto calls (documented contract — same operation kind and
// column order) and must match the generic twin mulAddGeneric within
// FMA tolerance; and the blocked generic twin mulBatchGeneric must be
// bit-identical to per-lane mulAddGeneric, since on noasm builds it IS
// the batch path and the bit-identity contract has to survive there
// too. Ragged widths are exercised by varying xStride between tight
// (cols) and padded (stride).
func FuzzMulBatchInto(f *testing.F) {
	f.Add(int64(1), int64(8), int64(6), int64(3), false)
	f.Add(int64(2), int64(64), int64(64), int64(4), true) // 64-row kernel
	f.Add(int64(3), int64(56), int64(55), int64(7), true) // 56-row kernel, odd lane count
	f.Add(int64(4), int64(56), int64(55), int64(1), false)
	f.Add(int64(5), int64(40), int64(3), int64(2), false) // ragged: narrow operand, tight x
	f.Fuzz(func(t *testing.T, seed, rowsIn, colsIn, lanesIn int64, padX bool) {
		rows := int((uint64(rowsIn)-1)%64) + 1
		cols := int((uint64(colsIn)-1)%64) + 1 // ≤ stride so tight and padded xStride both stay legal
		k := int((uint64(lanesIn)-1)%8) + 1
		rng := rand.New(rand.NewSource(seed))
		p, _, _ := randPacked(rng, rows, cols)
		stride := p.Stride()

		xStride := cols
		if padX {
			xStride = stride
		}
		x := make([]float64, k*xStride)
		bias := make([]float64, k*stride)
		for l := 0; l < k; l++ {
			for j := 0; j < cols; j++ {
				x[l*xStride+j] = rng.NormFloat64()
			}
			for i := 0; i < rows; i++ {
				bias[l*stride+i] = rng.NormFloat64()
			}
		}

		got := make([]float64, k*stride)
		p.MulBatchInto(got, bias, k, x, xStride)

		blocked := make([]float64, k*stride)
		p.mulBatchGeneric(blocked, bias, k, x, xStride)

		seq := make([]float64, stride)
		gen := make([]float64, stride)
		for l := 0; l < k; l++ {
			lx := x[l*xStride : l*xStride+cols]
			lb := bias[l*stride : (l+1)*stride]
			p.MulAddInto(seq, lb, lx)
			p.mulAddGeneric(gen, lb, lx)
			for i := 0; i < rows; i++ {
				if got[l*stride+i] != seq[i] {
					t.Fatalf("rows=%d cols=%d k=%d xStride=%d lane %d row %d: batch=%g sequential=%g — batched tick must be bit-identical",
						rows, cols, k, xStride, l, i, got[l*stride+i], seq[i])
				}
				if !relClose(got[l*stride+i], gen[i]) {
					t.Fatalf("rows=%d cols=%d k=%d xStride=%d lane %d row %d: batch=%g mulAddGeneric=%g (diff %g)",
						rows, cols, k, xStride, l, i, got[l*stride+i], gen[i], got[l*stride+i]-gen[i])
				}
				if blocked[l*stride+i] != gen[i] {
					t.Fatalf("rows=%d cols=%d k=%d xStride=%d lane %d row %d: mulBatchGeneric=%g mulAddGeneric=%g — blocked generic must be bit-identical per lane",
						rows, cols, k, xStride, l, i, blocked[l*stride+i], gen[i])
				}
			}
		}
	})
}

// FuzzExpm checks the scaling identity e^A = (e^{A/2})² across the
// Padé degree boundaries. The two sides take different code paths for
// almost every norm — different degrees, different scaling exponents —
// so any branch mishandling (like the e^(2A) regression, where norms
// in (θ₉, θ₁₃/2] produced a negative scaling exponent and the result
// was squared once too often) breaks the identity by orders of
// magnitude, far outside the tolerance.
func FuzzExpm(f *testing.F) {
	f.Add(int64(1), int64(4), 2.5)                // the e^(2A) regression band (θ₉, θ₁₃/2]
	f.Add(int64(2), int64(6), 2.097847961257068)  // exactly θ₉
	f.Add(int64(3), int64(6), 2.0978479612570685) // one ULP above θ₉
	f.Add(int64(4), int64(5), 5.371920351148152)  // exactly θ₁₃
	f.Add(int64(5), int64(5), 5.5)                // just past θ₁₃: first scaled branch
	f.Add(int64(6), int64(3), 0.014)              // θ₃ boundary
	f.Add(int64(7), int64(8), 12.0)               // multiple squarings
	f.Fuzz(func(t *testing.T, seed, sizeIn int64, norm float64) {
		n := int((uint64(sizeIn)-1)%10) + 1
		if math.IsNaN(norm) || math.IsInf(norm, 0) {
			t.Skip("non-finite target norm")
		}
		norm = math.Abs(norm)
		if norm < 1e-6 || norm > 16 {
			t.Skip("target norm outside the exercised range")
		}
		rng := rand.New(rand.NewSource(seed))
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		if cur := a.Norm1(); cur > 0 {
			a = a.scaled(norm / cur)
		}

		whole, err := Expm(a)
		if err != nil {
			t.Fatalf("Expm(A): %v", err)
		}
		half, err := Expm(a.scaled(0.5))
		if err != nil {
			t.Fatalf("Expm(A/2): %v", err)
		}
		squared := half.Mul(half)

		// Relative to the result magnitude: e^A entries grow like e^norm,
		// and the squaring step loses a few digits, so scale the bound.
		tol := 1e-9 * math.Max(1, whole.MaxAbs())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := math.Abs(whole.At(i, j) - squared.At(i, j)); d > tol {
					t.Fatalf("n=%d norm=%g: e^A[%d,%d]=%g but (e^(A/2))²=%g (diff %g, tol %g)",
						n, norm, i, j, whole.At(i, j), squared.At(i, j), d, tol)
				}
			}
		}
	})
}
