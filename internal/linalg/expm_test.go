package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestExpmZeroIsIdentity(t *testing.T) {
	e, err := Expm(NewMatrix(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(e.At(i, j)-want) > 1e-15 {
				t.Errorf("e^0[%d][%d] = %g", i, j, e.At(i, j))
			}
		}
	}
}

func TestExpmDiagonal(t *testing.T) {
	// Diagonal entries spanning the low-degree and the scaling branches.
	for _, d := range [][]float64{
		{1e-3, -2e-3, 5e-4},
		{0.5, -1.5, 2.0},
		{10, -30, 3}, // forces scaling-and-squaring
	} {
		a := NewMatrix(len(d), len(d))
		for i, v := range d {
			a.Set(i, i, v)
		}
		e, err := Expm(a)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range d {
			want := math.Exp(v)
			if rel := math.Abs(e.At(i, i)-want) / want; rel > 1e-13 {
				t.Errorf("e^diag(%g) = %g, want %g (rel %g)", v, e.At(i, i), want, rel)
			}
			for j := range d {
				if i != j && math.Abs(e.At(i, j)) > 1e-13 {
					t.Errorf("off-diagonal fill e[%d][%d] = %g", i, j, e.At(i, j))
				}
			}
		}
	}
}

func TestExpmNilpotent(t *testing.T) {
	// A = [[0,1],[0,0]] is nilpotent: e^A = I + A exactly.
	a := NewMatrix(2, 2)
	a.Set(0, 1, 1)
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 1}, {0, 1}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(e.At(i, j)-want[i][j]) > 1e-14 {
				t.Errorf("e[%d][%d] = %g, want %g", i, j, e.At(i, j), want[i][j])
			}
		}
	}
}

func TestExpmRotation(t *testing.T) {
	// A = θ·[[0,−1],[1,0]] exponentiates to the rotation by θ.
	for _, theta := range []float64{0.01, 1.0, 6.0} {
		a := NewMatrix(2, 2)
		a.Set(0, 1, -theta)
		a.Set(1, 0, theta)
		e, err := Expm(a)
		if err != nil {
			t.Fatal(err)
		}
		c, s := math.Cos(theta), math.Sin(theta)
		for _, chk := range []struct {
			i, j int
			want float64
		}{
			{0, 0, c}, {0, 1, -s}, {1, 0, s}, {1, 1, c},
		} {
			if math.Abs(e.At(chk.i, chk.j)-chk.want) > 1e-12 {
				t.Errorf("θ=%g: e[%d][%d] = %g, want %g", theta, chk.i, chk.j, e.At(chk.i, chk.j), chk.want)
			}
		}
	}
}

func TestExpmNormBetweenTheta9AndHalfTheta13(t *testing.T) {
	// Regression: for ‖A‖₁ ∈ (θ₉, θ₁₃/2] ≈ (2.098, 2.686] the scaling
	// exponent ceil(log2(norm/θ₁₃)) is negative; without clamping to
	// zero the matrix was scaled UP by 2 and never squared, returning
	// e^(2A). diag(2.5, −2.5) and the θ=2.5 rotation both land there.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2.5)
	a.Set(1, 1, -2.5)
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range []float64{2.5, -2.5} {
		want := math.Exp(d)
		if rel := math.Abs(e.At(i, i)-want) / want; rel > 1e-13 {
			t.Errorf("e^diag(%g) = %g, want %g (rel %g)", d, e.At(i, i), want, rel)
		}
	}

	rot := NewMatrix(2, 2)
	rot.Set(0, 1, -2.5)
	rot.Set(1, 0, 2.5)
	er, err := Expm(rot)
	if err != nil {
		t.Fatal(err)
	}
	c, s := math.Cos(2.5), math.Sin(2.5)
	for _, chk := range []struct {
		i, j int
		want float64
	}{
		{0, 0, c}, {0, 1, -s}, {1, 0, s}, {1, 1, c},
	} {
		if math.Abs(er.At(chk.i, chk.j)-chk.want) > 1e-12 {
			t.Errorf("θ=2.5: e[%d][%d] = %g, want %g", chk.i, chk.j, er.At(chk.i, chk.j), chk.want)
		}
	}
}

func TestExpmSemigroupProperty(t *testing.T) {
	// e^{A}·e^{A} = e^{2A} for any A (A commutes with itself).
	rng := rand.New(rand.NewSource(3))
	n := 8
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, (rng.Float64()-0.5)*0.8)
		}
	}
	e1, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Expm(a.scaled(2))
	if err != nil {
		t.Fatal(err)
	}
	sq := e1.Mul(e1)
	scale := e2.MaxAbs()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(sq.At(i, j)-e2.At(i, j)) > 1e-12*scale {
				t.Fatalf("semigroup violated at [%d][%d]: %g vs %g", i, j, sq.At(i, j), e2.At(i, j))
			}
		}
	}
}

func TestExpmInverse(t *testing.T) {
	// e^{A}·e^{−A} = I.
	rng := rand.New(rand.NewSource(9))
	n := 6
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, (rng.Float64()-0.5)*3)
		}
	}
	ep, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	em, err := Expm(a.scaled(-1))
	if err != nil {
		t.Fatal(err)
	}
	prod := ep.Mul(em)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-10 {
				t.Fatalf("e^A·e^−A [%d][%d] = %g", i, j, prod.At(i, j))
			}
		}
	}
}

func TestExpmRejectsNonSquare(t *testing.T) {
	if _, err := Expm(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

func TestExpmRejectsNonFinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, math.NaN())
	if _, err := Expm(a); err == nil {
		t.Fatal("NaN entry accepted")
	}
	a.Set(0, 0, math.Inf(1))
	if _, err := Expm(a); err == nil {
		t.Fatal("Inf entry accepted")
	}
}

func TestNorm1(t *testing.T) {
	m, err := NewMatrixFrom([][]float64{{1, -2}, {-3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Norm1(); got != 6 {
		t.Fatalf("Norm1 = %g, want 6 (max column sum)", got)
	}
}

func TestMulVecInto(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {55, 45}, {7, 64}} {
		r, c := dims[0], dims[1]
		m := NewMatrix(r, c)
		x := make([]float64, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		want := m.MulVec(x)
		got := m.MulVecInto(make([]float64, r), x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("%dx%d row %d: MulVecInto %g vs MulVec %g", r, c, i, got[i], want[i])
			}
		}
	}
}

func TestMulVecIntoPanics(t *testing.T) {
	m := NewMatrix(2, 3)
	for _, f := range []func(){
		func() { m.MulVecInto(make([]float64, 2), make([]float64, 2)) },
		func() { m.MulVecInto(make([]float64, 3), make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("dimension mismatch accepted")
				}
			}()
			f()
		}()
	}
}
