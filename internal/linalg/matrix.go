// Package linalg provides the small dense linear-algebra kernel used by
// the thermal model: matrices, vectors, and LU-based linear solves.
//
// The thermal steady-state computation solves G·T = P where G is the
// thermal conductance matrix assembled from the floorplan RC network.
// G is small (tens of nodes), dense enough after package coupling, and
// diagonally dominant, so LU with partial pivoting is both simple and
// robust here.
//
//mtlint:deterministic
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a rows×cols zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of rows. All rows must have
// equal length.
func NewMatrixFrom(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: empty matrix literal")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("linalg: ragged row %d: got %d values, want %d", i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add increments the element at row i, column j by v.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// MulVec computes y = m·x. x must have length Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %d cols vs %d vector", m.cols, len(x)))
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecInto computes dst = m·x without allocating. dst must have
// length Rows and must not alias x. The inner product is split across
// four accumulators so the floating-point adds pipeline instead of
// forming one long dependency chain; the summation order is fixed, so
// results are deterministic.
//
//mtlint:zeroalloc
func (m *Matrix) MulVecInto(dst, x []float64) []float64 {
	if len(x) != m.cols || len(dst) != m.rows {
		m.badMulVecIntoArgs(len(x), len(dst))
	}
	n := m.cols
	for i := 0; i < m.rows; i++ {
		row := m.data[i*n : i*n+n]
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= n; j += 4 {
			s0 += row[j] * x[j]
			s1 += row[j+1] * x[j+1]
			s2 += row[j+2] * x[j+2]
			s3 += row[j+3] * x[j+3]
		}
		for ; j < n; j++ {
			s0 += row[j] * x[j]
		}
		dst[i] = (s0 + s1) + (s2 + s3)
	}
	return dst
}

// badMulVecIntoArgs formats the MulVecInto argument panics off the hot
// path: fmt.Sprintf's interface conversions are heap allocations that
// must not appear inside the zeroalloc-marked kernel body.
//
//go:noinline
func (m *Matrix) badMulVecIntoArgs(nx, ndst int) {
	if nx != m.cols {
		panic(fmt.Sprintf("linalg: MulVecInto dimension mismatch: %d cols vs %d vector", m.cols, nx))
	}
	panic(fmt.Sprintf("linalg: MulVecInto dst length %d, want %d rows", ndst, m.rows))
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch: %dx%d times %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 { //mtlint:allow floatcmp exact-zero skip adds no rounding (x+0 == x)
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.Add(i, j, a*b.At(k, j))
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// IsSymmetric reports whether the matrix is square and symmetric within
// the given absolute tolerance.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			s += fmt.Sprintf("%10.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
