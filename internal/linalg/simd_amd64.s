#include "textflag.h"

// func fusedTick64(m *float64, cols int, x *float64, bias *float64, y *float64)
//
// y[0:64] = bias[0:64] + Σ_j x[j] · m[j·64 : j·64+64]
//
// The eight ZMM accumulators Z0–Z7 hold the 64-entry output for the
// whole loop; each column costs one VBROADCASTSD plus eight
// memory-operand VFMADD231PD, i.e. the matrix streams through the FMA
// units once with no horizontal reductions. Columns are 64-byte
// aligned (Pack aligns the backing array), so every load is a whole
// cache line.
TEXT ·fusedTick64(SB), NOSPLIT, $0-40
	MOVQ m+0(FP), SI
	MOVQ cols+8(FP), CX
	MOVQ x+16(FP), DX
	MOVQ bias+24(FP), BX
	MOVQ y+32(FP), DI

	VMOVUPD (BX), Z0
	VMOVUPD 64(BX), Z1
	VMOVUPD 128(BX), Z2
	VMOVUPD 192(BX), Z3
	VMOVUPD 256(BX), Z4
	VMOVUPD 320(BX), Z5
	VMOVUPD 384(BX), Z6
	VMOVUPD 448(BX), Z7

	TESTQ CX, CX
	JZ    done

	// Main loop: two columns per iteration so the broadcast loads of
	// one column overlap the FMAs of the other.
	MOVQ CX, AX
	SHRQ $1, AX
	JZ   tail

pair:
	VBROADCASTSD (DX), Z8
	VBROADCASTSD 8(DX), Z9
	VFMADD231PD  (SI), Z8, Z0
	VFMADD231PD  64(SI), Z8, Z1
	VFMADD231PD  128(SI), Z8, Z2
	VFMADD231PD  192(SI), Z8, Z3
	VFMADD231PD  256(SI), Z8, Z4
	VFMADD231PD  320(SI), Z8, Z5
	VFMADD231PD  384(SI), Z8, Z6
	VFMADD231PD  448(SI), Z8, Z7
	VFMADD231PD  512(SI), Z9, Z0
	VFMADD231PD  576(SI), Z9, Z1
	VFMADD231PD  640(SI), Z9, Z2
	VFMADD231PD  704(SI), Z9, Z3
	VFMADD231PD  768(SI), Z9, Z4
	VFMADD231PD  832(SI), Z9, Z5
	VFMADD231PD  896(SI), Z9, Z6
	VFMADD231PD  960(SI), Z9, Z7
	ADDQ $1024, SI
	ADDQ $16, DX
	DECQ AX
	JNZ  pair

tail:
	ANDQ $1, CX
	JZ   done
	VBROADCASTSD (DX), Z8
	VFMADD231PD  (SI), Z8, Z0
	VFMADD231PD  64(SI), Z8, Z1
	VFMADD231PD  128(SI), Z8, Z2
	VFMADD231PD  192(SI), Z8, Z3
	VFMADD231PD  256(SI), Z8, Z4
	VFMADD231PD  320(SI), Z8, Z5
	VFMADD231PD  384(SI), Z8, Z6
	VFMADD231PD  448(SI), Z8, Z7

done:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, 256(DI)
	VMOVUPD Z5, 320(DI)
	VMOVUPD Z6, 384(DI)
	VMOVUPD Z7, 448(DI)
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
