//go:build amd64 && !noasm

#include "textflag.h"

// func fusedTick64(m *float64, cols int, x *float64, bias *float64, y *float64)
//
// y[0:64] = bias[0:64] + Σ_j x[j] · m[j·64 : j·64+64]
//
// The eight ZMM accumulators Z0–Z7 hold the 64-entry output for the
// whole loop; each column costs one VBROADCASTSD plus eight
// memory-operand VFMADD231PD, i.e. the matrix streams through the FMA
// units once with no horizontal reductions. Columns are 64-byte
// aligned (Pack aligns the backing array), so every load is a whole
// cache line.
TEXT ·fusedTick64(SB), NOSPLIT, $0-40
	MOVQ m+0(FP), SI
	MOVQ cols+8(FP), CX
	MOVQ x+16(FP), DX
	MOVQ bias+24(FP), BX
	MOVQ y+32(FP), DI

	VMOVUPD (BX), Z0
	VMOVUPD 64(BX), Z1
	VMOVUPD 128(BX), Z2
	VMOVUPD 192(BX), Z3
	VMOVUPD 256(BX), Z4
	VMOVUPD 320(BX), Z5
	VMOVUPD 384(BX), Z6
	VMOVUPD 448(BX), Z7

	TESTQ CX, CX
	JZ    done

	// Main loop: two columns per iteration so the broadcast loads of
	// one column overlap the FMAs of the other.
	MOVQ CX, AX
	SHRQ $1, AX
	JZ   tail

pair:
	VBROADCASTSD (DX), Z8
	VBROADCASTSD 8(DX), Z9
	VFMADD231PD  (SI), Z8, Z0
	VFMADD231PD  64(SI), Z8, Z1
	VFMADD231PD  128(SI), Z8, Z2
	VFMADD231PD  192(SI), Z8, Z3
	VFMADD231PD  256(SI), Z8, Z4
	VFMADD231PD  320(SI), Z8, Z5
	VFMADD231PD  384(SI), Z8, Z6
	VFMADD231PD  448(SI), Z8, Z7
	VFMADD231PD  512(SI), Z9, Z0
	VFMADD231PD  576(SI), Z9, Z1
	VFMADD231PD  640(SI), Z9, Z2
	VFMADD231PD  704(SI), Z9, Z3
	VFMADD231PD  768(SI), Z9, Z4
	VFMADD231PD  832(SI), Z9, Z5
	VFMADD231PD  896(SI), Z9, Z6
	VFMADD231PD  960(SI), Z9, Z7
	ADDQ $1024, SI
	ADDQ $16, DX
	DECQ AX
	JNZ  pair

tail:
	ANDQ $1, CX
	JZ   done
	VBROADCASTSD (DX), Z8
	VFMADD231PD  (SI), Z8, Z0
	VFMADD231PD  64(SI), Z8, Z1
	VFMADD231PD  128(SI), Z8, Z2
	VFMADD231PD  192(SI), Z8, Z3
	VFMADD231PD  256(SI), Z8, Z4
	VFMADD231PD  320(SI), Z8, Z5
	VFMADD231PD  384(SI), Z8, Z6
	VFMADD231PD  448(SI), Z8, Z7

done:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, 256(DI)
	VMOVUPD Z5, 320(DI)
	VMOVUPD Z6, 384(DI)
	VMOVUPD Z7, 448(DI)
	VZEROUPPER
	RET

// func fusedTickBatch64(m *float64, cols int, x *float64, xStride int, bias *float64, y *float64, k int)
//
// For each lane l in [0,k):
//
//	y[l·64 : l·64+64] = bias[l·64 : l·64+64] + Σ_j x[l·xStride+j] · m[j·64 : j·64+64]
//
// The GEMM form of fusedTick64: lanes are processed in pairs, with the
// eight ZMM chunks of each propagator column loaded into Z16–Z23 once
// and feeding both lanes' FMA chains (Z0–Z7 accumulate lane A, Z8–Z15
// lane B), so the matrix streams through the load ports half as often
// as two independent fusedTick64 passes. An odd trailing lane runs the
// single-lane loop. Per lane the FMA sequence — column order, operand
// rounding — is exactly fusedTick64's, which keeps batched ticks
// bit-identical to sequential ones. cols must be > 0 (the Go wrapper
// routes cols == 0 to the generic copy path).
TEXT ·fusedTickBatch64(SB), NOSPLIT, $0-56
	MOVQ m+0(FP), SI
	MOVQ cols+8(FP), CX
	MOVQ x+16(FP), DX
	MOVQ xStride+24(FP), R9
	MOVQ bias+32(FP), BX
	MOVQ y+40(FP), DI
	MOVQ k+48(FP), R8

	SHLQ $3, R9              // x lane stride, bytes

pairloop:
	CMPQ R8, $2
	JLT  lanetail

	// Seed both lanes' accumulators from their bias columns.
	VMOVUPD (BX), Z0
	VMOVUPD 64(BX), Z1
	VMOVUPD 128(BX), Z2
	VMOVUPD 192(BX), Z3
	VMOVUPD 256(BX), Z4
	VMOVUPD 320(BX), Z5
	VMOVUPD 384(BX), Z6
	VMOVUPD 448(BX), Z7
	VMOVUPD 512(BX), Z8
	VMOVUPD 576(BX), Z9
	VMOVUPD 640(BX), Z10
	VMOVUPD 704(BX), Z11
	VMOVUPD 768(BX), Z12
	VMOVUPD 832(BX), Z13
	VMOVUPD 896(BX), Z14
	VMOVUPD 960(BX), Z15

	MOVQ SI, R10             // propagator column cursor
	MOVQ DX, R11             // lane A input cursor
	LEAQ (DX)(R9*1), R12     // lane B input cursor
	MOVQ CX, AX

paircol:
	VMOVUPD      (R10), Z16
	VMOVUPD      64(R10), Z17
	VMOVUPD      128(R10), Z18
	VMOVUPD      192(R10), Z19
	VMOVUPD      256(R10), Z20
	VMOVUPD      320(R10), Z21
	VMOVUPD      384(R10), Z22
	VMOVUPD      448(R10), Z23
	VBROADCASTSD (R11), Z24
	VBROADCASTSD (R12), Z25
	VFMADD231PD  Z16, Z24, Z0
	VFMADD231PD  Z17, Z24, Z1
	VFMADD231PD  Z18, Z24, Z2
	VFMADD231PD  Z19, Z24, Z3
	VFMADD231PD  Z20, Z24, Z4
	VFMADD231PD  Z21, Z24, Z5
	VFMADD231PD  Z22, Z24, Z6
	VFMADD231PD  Z23, Z24, Z7
	VFMADD231PD  Z16, Z25, Z8
	VFMADD231PD  Z17, Z25, Z9
	VFMADD231PD  Z18, Z25, Z10
	VFMADD231PD  Z19, Z25, Z11
	VFMADD231PD  Z20, Z25, Z12
	VFMADD231PD  Z21, Z25, Z13
	VFMADD231PD  Z22, Z25, Z14
	VFMADD231PD  Z23, Z25, Z15
	ADDQ         $512, R10
	ADDQ         $8, R11
	ADDQ         $8, R12
	DECQ         AX
	JNZ          paircol

	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, 256(DI)
	VMOVUPD Z5, 320(DI)
	VMOVUPD Z6, 384(DI)
	VMOVUPD Z7, 448(DI)
	VMOVUPD Z8, 512(DI)
	VMOVUPD Z9, 576(DI)
	VMOVUPD Z10, 640(DI)
	VMOVUPD Z11, 704(DI)
	VMOVUPD Z12, 768(DI)
	VMOVUPD Z13, 832(DI)
	VMOVUPD Z14, 896(DI)
	VMOVUPD Z15, 960(DI)

	ADDQ $1024, BX
	ADDQ $1024, DI
	LEAQ (DX)(R9*2), DX
	SUBQ $2, R8
	JMP  pairloop

lanetail:
	TESTQ R8, R8
	JZ    batchdone

	// Single trailing lane: fusedTick64's memory-operand loop.
	VMOVUPD (BX), Z0
	VMOVUPD 64(BX), Z1
	VMOVUPD 128(BX), Z2
	VMOVUPD 192(BX), Z3
	VMOVUPD 256(BX), Z4
	VMOVUPD 320(BX), Z5
	VMOVUPD 384(BX), Z6
	VMOVUPD 448(BX), Z7

	MOVQ SI, R10
	MOVQ DX, R11
	MOVQ CX, AX

tailcol:
	VBROADCASTSD (R11), Z8
	VFMADD231PD  (R10), Z8, Z0
	VFMADD231PD  64(R10), Z8, Z1
	VFMADD231PD  128(R10), Z8, Z2
	VFMADD231PD  192(R10), Z8, Z3
	VFMADD231PD  256(R10), Z8, Z4
	VFMADD231PD  320(R10), Z8, Z5
	VFMADD231PD  384(R10), Z8, Z6
	VFMADD231PD  448(R10), Z8, Z7
	ADDQ         $512, R10
	ADDQ         $8, R11
	DECQ         AX
	JNZ          tailcol

	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, 256(DI)
	VMOVUPD Z5, 320(DI)
	VMOVUPD Z6, 384(DI)
	VMOVUPD Z7, 448(DI)

batchdone:
	VZEROUPPER
	RET

// func fusedTickBatch56(m *float64, cols int, x *float64, xStride int, bias *float64, y *float64, k int)
//
// fusedTickBatch64 specialized for operands with at most 56 live rows:
// the top chunk of every 64-entry column is zero padding, so the
// kernel runs seven ZMM chunks per column instead of eight and never
// touches rows 56–63 of bias or y (their contents are unspecified on
// return — callers must not read a lane's padding). For the live rows
// the per-lane FMA sequence is exactly fusedTick64's, so bit-identity
// with the sequential kernel is preserved; only work that provably
// produces zeros is skipped (~12% of the FMA stream).
TEXT ·fusedTickBatch56(SB), NOSPLIT, $0-56
	MOVQ m+0(FP), SI
	MOVQ cols+8(FP), CX
	MOVQ x+16(FP), DX
	MOVQ xStride+24(FP), R9
	MOVQ bias+32(FP), BX
	MOVQ y+40(FP), DI
	MOVQ k+48(FP), R8

	SHLQ $3, R9              // x lane stride, bytes

pairloop56:
	CMPQ R8, $2
	JLT  lanetail56

	// Seed both lanes' seven accumulator chunks from their bias columns.
	VMOVUPD (BX), Z0
	VMOVUPD 64(BX), Z1
	VMOVUPD 128(BX), Z2
	VMOVUPD 192(BX), Z3
	VMOVUPD 256(BX), Z4
	VMOVUPD 320(BX), Z5
	VMOVUPD 384(BX), Z6
	VMOVUPD 512(BX), Z8
	VMOVUPD 576(BX), Z9
	VMOVUPD 640(BX), Z10
	VMOVUPD 704(BX), Z11
	VMOVUPD 768(BX), Z12
	VMOVUPD 832(BX), Z13
	VMOVUPD 896(BX), Z14

	MOVQ SI, R10             // propagator column cursor
	MOVQ DX, R11             // lane A input cursor
	LEAQ (DX)(R9*1), R12     // lane B input cursor

	// Two columns per iteration: the second column's loads issue while
	// the first column's FMA chains drain, and the loop overhead halves.
	MOVQ CX, AX
	SHRQ $1, AX
	JZ   pairodd56

paircol56:
	VMOVUPD      (R10), Z16
	VMOVUPD      64(R10), Z17
	VMOVUPD      128(R10), Z18
	VMOVUPD      192(R10), Z19
	VMOVUPD      256(R10), Z20
	VMOVUPD      320(R10), Z21
	VMOVUPD      384(R10), Z22
	VBROADCASTSD (R11), Z24
	VBROADCASTSD (R12), Z25
	VFMADD231PD  Z16, Z24, Z0
	VFMADD231PD  Z17, Z24, Z1
	VFMADD231PD  Z18, Z24, Z2
	VFMADD231PD  Z19, Z24, Z3
	VFMADD231PD  Z20, Z24, Z4
	VFMADD231PD  Z21, Z24, Z5
	VFMADD231PD  Z22, Z24, Z6
	VFMADD231PD  Z16, Z25, Z8
	VFMADD231PD  Z17, Z25, Z9
	VFMADD231PD  Z18, Z25, Z10
	VFMADD231PD  Z19, Z25, Z11
	VFMADD231PD  Z20, Z25, Z12
	VFMADD231PD  Z21, Z25, Z13
	VFMADD231PD  Z22, Z25, Z14
	VMOVUPD      512(R10), Z16
	VMOVUPD      576(R10), Z17
	VMOVUPD      640(R10), Z18
	VMOVUPD      704(R10), Z19
	VMOVUPD      768(R10), Z20
	VMOVUPD      832(R10), Z21
	VMOVUPD      896(R10), Z22
	VBROADCASTSD 8(R11), Z26
	VBROADCASTSD 8(R12), Z27
	VFMADD231PD  Z16, Z26, Z0
	VFMADD231PD  Z17, Z26, Z1
	VFMADD231PD  Z18, Z26, Z2
	VFMADD231PD  Z19, Z26, Z3
	VFMADD231PD  Z20, Z26, Z4
	VFMADD231PD  Z21, Z26, Z5
	VFMADD231PD  Z22, Z26, Z6
	VFMADD231PD  Z16, Z27, Z8
	VFMADD231PD  Z17, Z27, Z9
	VFMADD231PD  Z18, Z27, Z10
	VFMADD231PD  Z19, Z27, Z11
	VFMADD231PD  Z20, Z27, Z12
	VFMADD231PD  Z21, Z27, Z13
	VFMADD231PD  Z22, Z27, Z14
	ADDQ         $1024, R10
	ADDQ         $16, R11
	ADDQ         $16, R12
	DECQ         AX
	JNZ          paircol56

pairodd56:
	TESTQ $1, CX
	JZ    pairstore56
	VMOVUPD      (R10), Z16
	VMOVUPD      64(R10), Z17
	VMOVUPD      128(R10), Z18
	VMOVUPD      192(R10), Z19
	VMOVUPD      256(R10), Z20
	VMOVUPD      320(R10), Z21
	VMOVUPD      384(R10), Z22
	VBROADCASTSD (R11), Z24
	VBROADCASTSD (R12), Z25
	VFMADD231PD  Z16, Z24, Z0
	VFMADD231PD  Z17, Z24, Z1
	VFMADD231PD  Z18, Z24, Z2
	VFMADD231PD  Z19, Z24, Z3
	VFMADD231PD  Z20, Z24, Z4
	VFMADD231PD  Z21, Z24, Z5
	VFMADD231PD  Z22, Z24, Z6
	VFMADD231PD  Z16, Z25, Z8
	VFMADD231PD  Z17, Z25, Z9
	VFMADD231PD  Z18, Z25, Z10
	VFMADD231PD  Z19, Z25, Z11
	VFMADD231PD  Z20, Z25, Z12
	VFMADD231PD  Z21, Z25, Z13
	VFMADD231PD  Z22, Z25, Z14

pairstore56:

	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, 256(DI)
	VMOVUPD Z5, 320(DI)
	VMOVUPD Z6, 384(DI)
	VMOVUPD Z8, 512(DI)
	VMOVUPD Z9, 576(DI)
	VMOVUPD Z10, 640(DI)
	VMOVUPD Z11, 704(DI)
	VMOVUPD Z12, 768(DI)
	VMOVUPD Z13, 832(DI)
	VMOVUPD Z14, 896(DI)

	ADDQ $1024, BX
	ADDQ $1024, DI
	LEAQ (DX)(R9*2), DX
	SUBQ $2, R8
	JMP  pairloop56

lanetail56:
	TESTQ R8, R8
	JZ    batchdone56

	// Single trailing lane, seven chunks.
	VMOVUPD (BX), Z0
	VMOVUPD 64(BX), Z1
	VMOVUPD 128(BX), Z2
	VMOVUPD 192(BX), Z3
	VMOVUPD 256(BX), Z4
	VMOVUPD 320(BX), Z5
	VMOVUPD 384(BX), Z6

	MOVQ SI, R10
	MOVQ DX, R11
	MOVQ CX, AX

tailcol56:
	VBROADCASTSD (R11), Z8
	VFMADD231PD  (R10), Z8, Z0
	VFMADD231PD  64(R10), Z8, Z1
	VFMADD231PD  128(R10), Z8, Z2
	VFMADD231PD  192(R10), Z8, Z3
	VFMADD231PD  256(R10), Z8, Z4
	VFMADD231PD  320(R10), Z8, Z5
	VFMADD231PD  384(R10), Z8, Z6
	ADDQ         $512, R10
	ADDQ         $8, R11
	DECQ         AX
	JNZ          tailcol56

	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, 256(DI)
	VMOVUPD Z5, 320(DI)
	VMOVUPD Z6, 384(DI)

batchdone56:
	VZEROUPPER
	RET

// func fusedTickBatch56x4(m *float64, cols int, x *float64, xStride int, bias *float64, y *float64, k int)
//
// Quad-lane form of fusedTickBatch56: k is a positive multiple of four
// (the Go wrapper routes remainders to the pair kernel) and each group
// of four lanes streams the propagator once. 4 lanes × 7 live chunks
// would need 28 accumulators, so the rows are register-blocked into two
// passes over the columns:
//
//	pass 1, chunks 0–3 (rows 0–31): Z0–Z15 accumulate (4 chunks × 4
//	  lanes), Z16–Z19 hold the column's chunks, Z20–Z23 the broadcasts;
//	pass 2, chunks 4–6 (rows 32–55): Z0–Z11 accumulate, the column
//	  cursor starts 256 bytes in.
//
// Each pass re-walks x (64 columns × 4 broadcasts — trivially hot) but
// touches a disjoint 2 KB row block of the propagator per column, which
// stays L1-resident while all four lanes consume it. Per lane and per
// row the FMA order over columns is unchanged, so lanes remain
// bit-identical to fusedTick64. Lane C and D input cursors are derived
// by indexed addressing off lanes A and B ((R11)(R9*2), (R12)(R9*2)),
// keeping R13–R15 untouched.
TEXT ·fusedTickBatch56x4(SB), NOSPLIT, $0-56
	MOVQ m+0(FP), SI
	MOVQ cols+8(FP), CX
	MOVQ x+16(FP), DX
	MOVQ xStride+24(FP), R9
	MOVQ bias+32(FP), BX
	MOVQ y+40(FP), DI
	MOVQ k+48(FP), R8

	SHLQ $3, R9              // x lane stride, bytes

quadloop:
	CMPQ R8, $4
	JLT  quaddone

	// -------- pass 1: chunks 0–3 (rows 0–31) --------
	// Accumulators: lane A Z0–Z3, B Z4–Z7, C Z8–Z11, D Z12–Z15, seeded
	// from each lane's bias column (lane L chunk c at L·512 + c·64).
	VMOVUPD (BX), Z0
	VMOVUPD 64(BX), Z1
	VMOVUPD 128(BX), Z2
	VMOVUPD 192(BX), Z3
	VMOVUPD 512(BX), Z4
	VMOVUPD 576(BX), Z5
	VMOVUPD 640(BX), Z6
	VMOVUPD 704(BX), Z7
	VMOVUPD 1024(BX), Z8
	VMOVUPD 1088(BX), Z9
	VMOVUPD 1152(BX), Z10
	VMOVUPD 1216(BX), Z11
	VMOVUPD 1536(BX), Z12
	VMOVUPD 1600(BX), Z13
	VMOVUPD 1664(BX), Z14
	VMOVUPD 1728(BX), Z15

	MOVQ SI, R10             // column cursor, chunk 0 of column 0
	MOVQ DX, R11             // lane A input cursor
	LEAQ (DX)(R9*1), R12     // lane B input cursor
	MOVQ CX, AX

pass1col:
	VMOVUPD      (R10), Z16
	VMOVUPD      64(R10), Z17
	VMOVUPD      128(R10), Z18
	VMOVUPD      192(R10), Z19
	VBROADCASTSD (R11), Z20
	VBROADCASTSD (R12), Z21
	VBROADCASTSD (R11)(R9*2), Z22
	VBROADCASTSD (R12)(R9*2), Z23
	VFMADD231PD  Z16, Z20, Z0
	VFMADD231PD  Z17, Z20, Z1
	VFMADD231PD  Z18, Z20, Z2
	VFMADD231PD  Z19, Z20, Z3
	VFMADD231PD  Z16, Z21, Z4
	VFMADD231PD  Z17, Z21, Z5
	VFMADD231PD  Z18, Z21, Z6
	VFMADD231PD  Z19, Z21, Z7
	VFMADD231PD  Z16, Z22, Z8
	VFMADD231PD  Z17, Z22, Z9
	VFMADD231PD  Z18, Z22, Z10
	VFMADD231PD  Z19, Z22, Z11
	VFMADD231PD  Z16, Z23, Z12
	VFMADD231PD  Z17, Z23, Z13
	VFMADD231PD  Z18, Z23, Z14
	VFMADD231PD  Z19, Z23, Z15
	ADDQ         $512, R10
	ADDQ         $8, R11
	ADDQ         $8, R12
	DECQ         AX
	JNZ          pass1col

	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, 512(DI)
	VMOVUPD Z5, 576(DI)
	VMOVUPD Z6, 640(DI)
	VMOVUPD Z7, 704(DI)
	VMOVUPD Z8, 1024(DI)
	VMOVUPD Z9, 1088(DI)
	VMOVUPD Z10, 1152(DI)
	VMOVUPD Z11, 1216(DI)
	VMOVUPD Z12, 1536(DI)
	VMOVUPD Z13, 1600(DI)
	VMOVUPD Z14, 1664(DI)
	VMOVUPD Z15, 1728(DI)

	// -------- pass 2: chunks 4–6 (rows 32–55) --------
	// Accumulators: lane A Z0–Z2, B Z3–Z5, C Z6–Z8, D Z9–Z11.
	VMOVUPD 256(BX), Z0
	VMOVUPD 320(BX), Z1
	VMOVUPD 384(BX), Z2
	VMOVUPD 768(BX), Z3
	VMOVUPD 832(BX), Z4
	VMOVUPD 896(BX), Z5
	VMOVUPD 1280(BX), Z6
	VMOVUPD 1344(BX), Z7
	VMOVUPD 1408(BX), Z8
	VMOVUPD 1792(BX), Z9
	VMOVUPD 1856(BX), Z10
	VMOVUPD 1920(BX), Z11

	LEAQ 256(SI), R10        // column cursor, chunk 4 of column 0
	MOVQ DX, R11
	LEAQ (DX)(R9*1), R12
	MOVQ CX, AX

pass2col:
	VMOVUPD      (R10), Z16
	VMOVUPD      64(R10), Z17
	VMOVUPD      128(R10), Z18
	VBROADCASTSD (R11), Z20
	VBROADCASTSD (R12), Z21
	VBROADCASTSD (R11)(R9*2), Z22
	VBROADCASTSD (R12)(R9*2), Z23
	VFMADD231PD  Z16, Z20, Z0
	VFMADD231PD  Z17, Z20, Z1
	VFMADD231PD  Z18, Z20, Z2
	VFMADD231PD  Z16, Z21, Z3
	VFMADD231PD  Z17, Z21, Z4
	VFMADD231PD  Z18, Z21, Z5
	VFMADD231PD  Z16, Z22, Z6
	VFMADD231PD  Z17, Z22, Z7
	VFMADD231PD  Z18, Z22, Z8
	VFMADD231PD  Z16, Z23, Z9
	VFMADD231PD  Z17, Z23, Z10
	VFMADD231PD  Z18, Z23, Z11
	ADDQ         $512, R10
	ADDQ         $8, R11
	ADDQ         $8, R12
	DECQ         AX
	JNZ          pass2col

	VMOVUPD Z0, 256(DI)
	VMOVUPD Z1, 320(DI)
	VMOVUPD Z2, 384(DI)
	VMOVUPD Z3, 768(DI)
	VMOVUPD Z4, 832(DI)
	VMOVUPD Z5, 896(DI)
	VMOVUPD Z6, 1280(DI)
	VMOVUPD Z7, 1344(DI)
	VMOVUPD Z8, 1408(DI)
	VMOVUPD Z9, 1792(DI)
	VMOVUPD Z10, 1856(DI)
	VMOVUPD Z11, 1920(DI)

	ADDQ $2048, BX
	ADDQ $2048, DI
	LEAQ (DX)(R9*4), DX
	SUBQ $4, R8
	JMP  quadloop

quaddone:
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
