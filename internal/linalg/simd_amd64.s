//go:build amd64 && !noasm

#include "textflag.h"

// func fusedTick64(m *float64, cols int, x *float64, bias *float64, y *float64)
//
// y[0:64] = bias[0:64] + Σ_j x[j] · m[j·64 : j·64+64]
//
// The eight ZMM accumulators Z0–Z7 hold the 64-entry output for the
// whole loop; each column costs one VBROADCASTSD plus eight
// memory-operand VFMADD231PD, i.e. the matrix streams through the FMA
// units once with no horizontal reductions. Columns are 64-byte
// aligned (Pack aligns the backing array), so every load is a whole
// cache line.
TEXT ·fusedTick64(SB), NOSPLIT, $0-40
	MOVQ m+0(FP), SI
	MOVQ cols+8(FP), CX
	MOVQ x+16(FP), DX
	MOVQ bias+24(FP), BX
	MOVQ y+32(FP), DI

	VMOVUPD (BX), Z0
	VMOVUPD 64(BX), Z1
	VMOVUPD 128(BX), Z2
	VMOVUPD 192(BX), Z3
	VMOVUPD 256(BX), Z4
	VMOVUPD 320(BX), Z5
	VMOVUPD 384(BX), Z6
	VMOVUPD 448(BX), Z7

	TESTQ CX, CX
	JZ    done

	// Main loop: two columns per iteration so the broadcast loads of
	// one column overlap the FMAs of the other.
	MOVQ CX, AX
	SHRQ $1, AX
	JZ   tail

pair:
	VBROADCASTSD (DX), Z8
	VBROADCASTSD 8(DX), Z9
	VFMADD231PD  (SI), Z8, Z0
	VFMADD231PD  64(SI), Z8, Z1
	VFMADD231PD  128(SI), Z8, Z2
	VFMADD231PD  192(SI), Z8, Z3
	VFMADD231PD  256(SI), Z8, Z4
	VFMADD231PD  320(SI), Z8, Z5
	VFMADD231PD  384(SI), Z8, Z6
	VFMADD231PD  448(SI), Z8, Z7
	VFMADD231PD  512(SI), Z9, Z0
	VFMADD231PD  576(SI), Z9, Z1
	VFMADD231PD  640(SI), Z9, Z2
	VFMADD231PD  704(SI), Z9, Z3
	VFMADD231PD  768(SI), Z9, Z4
	VFMADD231PD  832(SI), Z9, Z5
	VFMADD231PD  896(SI), Z9, Z6
	VFMADD231PD  960(SI), Z9, Z7
	ADDQ $1024, SI
	ADDQ $16, DX
	DECQ AX
	JNZ  pair

tail:
	ANDQ $1, CX
	JZ   done
	VBROADCASTSD (DX), Z8
	VFMADD231PD  (SI), Z8, Z0
	VFMADD231PD  64(SI), Z8, Z1
	VFMADD231PD  128(SI), Z8, Z2
	VFMADD231PD  192(SI), Z8, Z3
	VFMADD231PD  256(SI), Z8, Z4
	VFMADD231PD  320(SI), Z8, Z5
	VFMADD231PD  384(SI), Z8, Z6
	VFMADD231PD  448(SI), Z8, Z7

done:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, 256(DI)
	VMOVUPD Z5, 320(DI)
	VMOVUPD Z6, 384(DI)
	VMOVUPD Z7, 448(DI)
	VZEROUPPER
	RET

// func fusedTickBatch64(m *float64, cols int, x *float64, xStride int, bias *float64, y *float64, k int)
//
// For each lane l in [0,k):
//
//	y[l·64 : l·64+64] = bias[l·64 : l·64+64] + Σ_j x[l·xStride+j] · m[j·64 : j·64+64]
//
// The GEMM form of fusedTick64: lanes are processed in pairs, with the
// eight ZMM chunks of each propagator column loaded into Z16–Z23 once
// and feeding both lanes' FMA chains (Z0–Z7 accumulate lane A, Z8–Z15
// lane B), so the matrix streams through the load ports half as often
// as two independent fusedTick64 passes. An odd trailing lane runs the
// single-lane loop. Per lane the FMA sequence — column order, operand
// rounding — is exactly fusedTick64's, which keeps batched ticks
// bit-identical to sequential ones. cols must be > 0 (the Go wrapper
// routes cols == 0 to the generic copy path).
TEXT ·fusedTickBatch64(SB), NOSPLIT, $0-56
	MOVQ m+0(FP), SI
	MOVQ cols+8(FP), CX
	MOVQ x+16(FP), DX
	MOVQ xStride+24(FP), R9
	MOVQ bias+32(FP), BX
	MOVQ y+40(FP), DI
	MOVQ k+48(FP), R8

	SHLQ $3, R9              // x lane stride, bytes

pairloop:
	CMPQ R8, $2
	JLT  lanetail

	// Seed both lanes' accumulators from their bias columns.
	VMOVUPD (BX), Z0
	VMOVUPD 64(BX), Z1
	VMOVUPD 128(BX), Z2
	VMOVUPD 192(BX), Z3
	VMOVUPD 256(BX), Z4
	VMOVUPD 320(BX), Z5
	VMOVUPD 384(BX), Z6
	VMOVUPD 448(BX), Z7
	VMOVUPD 512(BX), Z8
	VMOVUPD 576(BX), Z9
	VMOVUPD 640(BX), Z10
	VMOVUPD 704(BX), Z11
	VMOVUPD 768(BX), Z12
	VMOVUPD 832(BX), Z13
	VMOVUPD 896(BX), Z14
	VMOVUPD 960(BX), Z15

	MOVQ SI, R10             // propagator column cursor
	MOVQ DX, R11             // lane A input cursor
	LEAQ (DX)(R9*1), R12     // lane B input cursor
	MOVQ CX, AX

paircol:
	VMOVUPD      (R10), Z16
	VMOVUPD      64(R10), Z17
	VMOVUPD      128(R10), Z18
	VMOVUPD      192(R10), Z19
	VMOVUPD      256(R10), Z20
	VMOVUPD      320(R10), Z21
	VMOVUPD      384(R10), Z22
	VMOVUPD      448(R10), Z23
	VBROADCASTSD (R11), Z24
	VBROADCASTSD (R12), Z25
	VFMADD231PD  Z16, Z24, Z0
	VFMADD231PD  Z17, Z24, Z1
	VFMADD231PD  Z18, Z24, Z2
	VFMADD231PD  Z19, Z24, Z3
	VFMADD231PD  Z20, Z24, Z4
	VFMADD231PD  Z21, Z24, Z5
	VFMADD231PD  Z22, Z24, Z6
	VFMADD231PD  Z23, Z24, Z7
	VFMADD231PD  Z16, Z25, Z8
	VFMADD231PD  Z17, Z25, Z9
	VFMADD231PD  Z18, Z25, Z10
	VFMADD231PD  Z19, Z25, Z11
	VFMADD231PD  Z20, Z25, Z12
	VFMADD231PD  Z21, Z25, Z13
	VFMADD231PD  Z22, Z25, Z14
	VFMADD231PD  Z23, Z25, Z15
	ADDQ         $512, R10
	ADDQ         $8, R11
	ADDQ         $8, R12
	DECQ         AX
	JNZ          paircol

	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, 256(DI)
	VMOVUPD Z5, 320(DI)
	VMOVUPD Z6, 384(DI)
	VMOVUPD Z7, 448(DI)
	VMOVUPD Z8, 512(DI)
	VMOVUPD Z9, 576(DI)
	VMOVUPD Z10, 640(DI)
	VMOVUPD Z11, 704(DI)
	VMOVUPD Z12, 768(DI)
	VMOVUPD Z13, 832(DI)
	VMOVUPD Z14, 896(DI)
	VMOVUPD Z15, 960(DI)

	ADDQ $1024, BX
	ADDQ $1024, DI
	LEAQ (DX)(R9*2), DX
	SUBQ $2, R8
	JMP  pairloop

lanetail:
	TESTQ R8, R8
	JZ    batchdone

	// Single trailing lane: fusedTick64's memory-operand loop.
	VMOVUPD (BX), Z0
	VMOVUPD 64(BX), Z1
	VMOVUPD 128(BX), Z2
	VMOVUPD 192(BX), Z3
	VMOVUPD 256(BX), Z4
	VMOVUPD 320(BX), Z5
	VMOVUPD 384(BX), Z6
	VMOVUPD 448(BX), Z7

	MOVQ SI, R10
	MOVQ DX, R11
	MOVQ CX, AX

tailcol:
	VBROADCASTSD (R11), Z8
	VFMADD231PD  (R10), Z8, Z0
	VFMADD231PD  64(R10), Z8, Z1
	VFMADD231PD  128(R10), Z8, Z2
	VFMADD231PD  192(R10), Z8, Z3
	VFMADD231PD  256(R10), Z8, Z4
	VFMADD231PD  320(R10), Z8, Z5
	VFMADD231PD  384(R10), Z8, Z6
	VFMADD231PD  448(R10), Z8, Z7
	ADDQ         $512, R10
	ADDQ         $8, R11
	DECQ         AX
	JNZ          tailcol

	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, 256(DI)
	VMOVUPD Z5, 320(DI)
	VMOVUPD Z6, 384(DI)
	VMOVUPD Z7, 448(DI)

batchdone:
	VZEROUPPER
	RET

// func fusedTickBatch56(m *float64, cols int, x *float64, xStride int, bias *float64, y *float64, k int)
//
// fusedTickBatch64 specialized for operands with at most 56 live rows:
// the top chunk of every 64-entry column is zero padding, so the
// kernel runs seven ZMM chunks per column instead of eight and never
// touches rows 56–63 of bias or y (their contents are unspecified on
// return — callers must not read a lane's padding). For the live rows
// the per-lane FMA sequence is exactly fusedTick64's, so bit-identity
// with the sequential kernel is preserved; only work that provably
// produces zeros is skipped (~12% of the FMA stream).
TEXT ·fusedTickBatch56(SB), NOSPLIT, $0-56
	MOVQ m+0(FP), SI
	MOVQ cols+8(FP), CX
	MOVQ x+16(FP), DX
	MOVQ xStride+24(FP), R9
	MOVQ bias+32(FP), BX
	MOVQ y+40(FP), DI
	MOVQ k+48(FP), R8

	SHLQ $3, R9              // x lane stride, bytes

pairloop56:
	CMPQ R8, $2
	JLT  lanetail56

	// Seed both lanes' seven accumulator chunks from their bias columns.
	VMOVUPD (BX), Z0
	VMOVUPD 64(BX), Z1
	VMOVUPD 128(BX), Z2
	VMOVUPD 192(BX), Z3
	VMOVUPD 256(BX), Z4
	VMOVUPD 320(BX), Z5
	VMOVUPD 384(BX), Z6
	VMOVUPD 512(BX), Z8
	VMOVUPD 576(BX), Z9
	VMOVUPD 640(BX), Z10
	VMOVUPD 704(BX), Z11
	VMOVUPD 768(BX), Z12
	VMOVUPD 832(BX), Z13
	VMOVUPD 896(BX), Z14

	MOVQ SI, R10             // propagator column cursor
	MOVQ DX, R11             // lane A input cursor
	LEAQ (DX)(R9*1), R12     // lane B input cursor

	// Two columns per iteration: the second column's loads issue while
	// the first column's FMA chains drain, and the loop overhead halves.
	MOVQ CX, AX
	SHRQ $1, AX
	JZ   pairodd56

paircol56:
	VMOVUPD      (R10), Z16
	VMOVUPD      64(R10), Z17
	VMOVUPD      128(R10), Z18
	VMOVUPD      192(R10), Z19
	VMOVUPD      256(R10), Z20
	VMOVUPD      320(R10), Z21
	VMOVUPD      384(R10), Z22
	VBROADCASTSD (R11), Z24
	VBROADCASTSD (R12), Z25
	VFMADD231PD  Z16, Z24, Z0
	VFMADD231PD  Z17, Z24, Z1
	VFMADD231PD  Z18, Z24, Z2
	VFMADD231PD  Z19, Z24, Z3
	VFMADD231PD  Z20, Z24, Z4
	VFMADD231PD  Z21, Z24, Z5
	VFMADD231PD  Z22, Z24, Z6
	VFMADD231PD  Z16, Z25, Z8
	VFMADD231PD  Z17, Z25, Z9
	VFMADD231PD  Z18, Z25, Z10
	VFMADD231PD  Z19, Z25, Z11
	VFMADD231PD  Z20, Z25, Z12
	VFMADD231PD  Z21, Z25, Z13
	VFMADD231PD  Z22, Z25, Z14
	VMOVUPD      512(R10), Z16
	VMOVUPD      576(R10), Z17
	VMOVUPD      640(R10), Z18
	VMOVUPD      704(R10), Z19
	VMOVUPD      768(R10), Z20
	VMOVUPD      832(R10), Z21
	VMOVUPD      896(R10), Z22
	VBROADCASTSD 8(R11), Z26
	VBROADCASTSD 8(R12), Z27
	VFMADD231PD  Z16, Z26, Z0
	VFMADD231PD  Z17, Z26, Z1
	VFMADD231PD  Z18, Z26, Z2
	VFMADD231PD  Z19, Z26, Z3
	VFMADD231PD  Z20, Z26, Z4
	VFMADD231PD  Z21, Z26, Z5
	VFMADD231PD  Z22, Z26, Z6
	VFMADD231PD  Z16, Z27, Z8
	VFMADD231PD  Z17, Z27, Z9
	VFMADD231PD  Z18, Z27, Z10
	VFMADD231PD  Z19, Z27, Z11
	VFMADD231PD  Z20, Z27, Z12
	VFMADD231PD  Z21, Z27, Z13
	VFMADD231PD  Z22, Z27, Z14
	ADDQ         $1024, R10
	ADDQ         $16, R11
	ADDQ         $16, R12
	DECQ         AX
	JNZ          paircol56

pairodd56:
	TESTQ $1, CX
	JZ    pairstore56
	VMOVUPD      (R10), Z16
	VMOVUPD      64(R10), Z17
	VMOVUPD      128(R10), Z18
	VMOVUPD      192(R10), Z19
	VMOVUPD      256(R10), Z20
	VMOVUPD      320(R10), Z21
	VMOVUPD      384(R10), Z22
	VBROADCASTSD (R11), Z24
	VBROADCASTSD (R12), Z25
	VFMADD231PD  Z16, Z24, Z0
	VFMADD231PD  Z17, Z24, Z1
	VFMADD231PD  Z18, Z24, Z2
	VFMADD231PD  Z19, Z24, Z3
	VFMADD231PD  Z20, Z24, Z4
	VFMADD231PD  Z21, Z24, Z5
	VFMADD231PD  Z22, Z24, Z6
	VFMADD231PD  Z16, Z25, Z8
	VFMADD231PD  Z17, Z25, Z9
	VFMADD231PD  Z18, Z25, Z10
	VFMADD231PD  Z19, Z25, Z11
	VFMADD231PD  Z20, Z25, Z12
	VFMADD231PD  Z21, Z25, Z13
	VFMADD231PD  Z22, Z25, Z14

pairstore56:

	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, 256(DI)
	VMOVUPD Z5, 320(DI)
	VMOVUPD Z6, 384(DI)
	VMOVUPD Z8, 512(DI)
	VMOVUPD Z9, 576(DI)
	VMOVUPD Z10, 640(DI)
	VMOVUPD Z11, 704(DI)
	VMOVUPD Z12, 768(DI)
	VMOVUPD Z13, 832(DI)
	VMOVUPD Z14, 896(DI)

	ADDQ $1024, BX
	ADDQ $1024, DI
	LEAQ (DX)(R9*2), DX
	SUBQ $2, R8
	JMP  pairloop56

lanetail56:
	TESTQ R8, R8
	JZ    batchdone56

	// Single trailing lane, seven chunks.
	VMOVUPD (BX), Z0
	VMOVUPD 64(BX), Z1
	VMOVUPD 128(BX), Z2
	VMOVUPD 192(BX), Z3
	VMOVUPD 256(BX), Z4
	VMOVUPD 320(BX), Z5
	VMOVUPD 384(BX), Z6

	MOVQ SI, R10
	MOVQ DX, R11
	MOVQ CX, AX

tailcol56:
	VBROADCASTSD (R11), Z8
	VFMADD231PD  (R10), Z8, Z0
	VFMADD231PD  64(R10), Z8, Z1
	VFMADD231PD  128(R10), Z8, Z2
	VFMADD231PD  192(R10), Z8, Z3
	VFMADD231PD  256(R10), Z8, Z4
	VFMADD231PD  320(R10), Z8, Z5
	VFMADD231PD  384(R10), Z8, Z6
	ADDQ         $512, R10
	ADDQ         $8, R11
	DECQ         AX
	JNZ          tailcol56

	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, 256(DI)
	VMOVUPD Z5, 320(DI)
	VMOVUPD Z6, 384(DI)

batchdone56:
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
