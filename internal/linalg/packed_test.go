package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"unsafe"
)

// randomPacked builds a rows×(c1+c2) packed pair plus the row-major
// originals for reference.
func randomPacked(rng *rand.Rand, rows, c1, c2 int) (*Packed, *Matrix, *Matrix) {
	m1 := NewMatrix(rows, c1)
	m2 := NewMatrix(rows, c2)
	for i := 0; i < rows; i++ {
		for j := 0; j < c1; j++ {
			m1.Set(i, j, rng.NormFloat64())
		}
		for j := 0; j < c2; j++ {
			m2.Set(i, j, rng.NormFloat64())
		}
	}
	return Pack(m1, m2), m1, m2
}

// mulAddGeneric forces the generic path regardless of SIMD support.
func mulAddGeneric(p *Packed, y, bias, x []float64) {
	copy(y, bias)
	for j := 0; j < p.cols; j++ {
		xj := x[j]
		col := p.data[j*p.stride : j*p.stride+p.rows]
		for i, v := range col {
			y[i] += v * xj
		}
	}
}

func TestPackedMulAddMatchesRowMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, dims := range [][3]int{{55, 55, 45}, {1, 1, 1}, {64, 10, 3}, {23, 23, 13}, {70, 20, 5}} {
		rows, c1, c2 := dims[0], dims[1], dims[2]
		p, m1, m2 := randomPacked(rng, rows, c1, c2)
		x := make([]float64, c1+c2)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		bias := make([]float64, p.Stride())
		for i := 0; i < rows; i++ {
			bias[i] = rng.NormFloat64()
		}
		y := make([]float64, p.Stride())
		p.MulAddInto(y, bias, x)

		w1 := m1.MulVec(x[:c1])
		w2 := m2.MulVec(x[c1:])
		for i := 0; i < rows; i++ {
			want := bias[i] + w1[i] + w2[i]
			if math.Abs(y[i]-want) > 1e-11*(1+math.Abs(want)) {
				t.Fatalf("rows=%d: y[%d] = %g, want %g", rows, i, y[i], want)
			}
		}
	}
}

func TestPackedSIMDMatchesGeneric(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("no SIMD on this machine; generic path is the only path")
	}
	rng := rand.New(rand.NewSource(33))
	p, _, _ := randomPacked(rng, 55, 55, 45)
	if !p.SIMDAccelerated() {
		t.Fatal("55-row packed operand should take the SIMD path")
	}
	x := make([]float64, p.Cols())
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	bias := make([]float64, p.Stride())
	for i := 0; i < p.Rows(); i++ {
		bias[i] = rng.NormFloat64()
	}
	simd := make([]float64, p.Stride())
	gen := make([]float64, p.Stride())
	p.MulAddInto(simd, bias, x)
	mulAddGeneric(p, gen, bias, x)
	// FMA contracts the multiply-add, so the two paths agree to a few
	// ulps, not bit-exactly.
	for i := 0; i < p.Rows(); i++ {
		if math.Abs(simd[i]-gen[i]) > 1e-12*(1+math.Abs(gen[i])) {
			t.Fatalf("row %d: simd %g vs generic %g", i, simd[i], gen[i])
		}
	}
}

func TestPackedAlignment(t *testing.T) {
	p, _, _ := randomPacked(rand.New(rand.NewSource(1)), 55, 55, 45)
	if addr := uintptr(unsafe.Pointer(&p.data[0])); addr%64 != 0 {
		t.Fatalf("packed data misaligned: %#x", addr)
	}
	if p.Stride() != packedStride {
		t.Fatalf("stride %d, want %d", p.Stride(), packedStride)
	}
	// Padding rows must be zero so the SIMD lanes beyond Rows stay inert.
	for j := 0; j < p.Cols(); j++ {
		for i := p.Rows(); i < p.Stride(); i++ {
			if v := p.data[j*p.Stride()+i]; v != 0 {
				t.Fatalf("padding row %d of column %d holds %g", i, j, v)
			}
		}
	}
}

func TestPackedWideFallsBackToGeneric(t *testing.T) {
	// More than 64 rows cannot use the 8-accumulator kernel.
	p, m1, m2 := randomPacked(rand.New(rand.NewSource(2)), 70, 20, 5)
	if p.SIMDAccelerated() {
		t.Fatal("70-row operand claimed SIMD acceleration")
	}
	if p.Stride() != 70 {
		t.Fatalf("wide stride %d, want natural 70", p.Stride())
	}
	x := make([]float64, 25)
	for j := range x {
		x[j] = 1
	}
	y := make([]float64, 70)
	p.MulAddInto(y, make([]float64, 70), x)
	w1 := m1.MulVec(x[:20])
	w2 := m2.MulVec(x[20:])
	for i := range y {
		want := w1[i] + w2[i]
		if math.Abs(y[i]-want) > 1e-11*(1+math.Abs(want)) {
			t.Fatalf("row %d: %g vs %g", i, y[i], want)
		}
	}
}

func TestPackedPanics(t *testing.T) {
	p, _, _ := randomPacked(rand.New(rand.NewSource(4)), 8, 4, 4)
	cases := []func(){
		func() { Pack() },
		func() { Pack(NewMatrix(2, 2), NewMatrix(3, 2)) },
		func() { p.MulAddInto(make([]float64, p.Stride()), make([]float64, p.Stride()), make([]float64, 3)) },
		func() { p.MulAddInto(make([]float64, 8), make([]float64, p.Stride()), make([]float64, 8)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: bad dimensions accepted", i)
				}
			}()
			f()
		}()
	}
}

// TestMulBatchIntoMatchesSequential is the bit-identity guard of the
// batched tick: every lane of a MulBatchInto panel must equal the
// corresponding MulAddInto result exactly — not to tolerance — for odd
// and even lane counts (the kernel pairs lanes, so odd k exercises the
// trailing single-lane path) and for both padded and tight x strides.
func TestMulBatchIntoMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, rows := range []int{55, 8, 70} {
		p, _, _ := randomPacked(rng, rows, rows, 13)
		stride := p.Stride()
		for _, k := range []int{1, 2, 3, 5, 8} {
			for _, xStride := range []int{p.Cols(), p.Cols() + 9} {
				x := make([]float64, (k-1)*xStride+p.Cols())
				for j := range x {
					x[j] = rng.NormFloat64()
				}
				bias := make([]float64, k*stride)
				for l := 0; l < k; l++ {
					for i := 0; i < rows; i++ {
						bias[l*stride+i] = rng.NormFloat64()
					}
				}
				y := make([]float64, k*stride)
				p.MulBatchInto(y, bias, k, x, xStride)

				ref := make([]float64, stride)
				for l := 0; l < k; l++ {
					p.MulAddInto(ref, bias[l*stride:(l+1)*stride], x[l*xStride:l*xStride+p.Cols()])
					for i := 0; i < rows; i++ {
						if got := y[l*stride+i]; got != ref[i] {
							t.Fatalf("rows=%d k=%d xStride=%d: lane %d row %d: batch %g != sequential %g",
								rows, k, xStride, l, i, got, ref[i])
						}
					}
				}
			}
		}
	}
}

func TestMulBatchIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	p, _, _ := randomPacked(rng, 55, 42, 13) // 55 cols ≤ the 64-entry stride
	k := 8
	x := make([]float64, k*p.Stride())
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	y := make([]float64, k*p.Stride())
	bias := make([]float64, k*p.Stride())
	if allocs := testing.AllocsPerRun(100, func() {
		p.MulBatchInto(y, bias, k, x, p.Stride())
	}); allocs != 0 {
		t.Fatalf("MulBatchInto allocates %.0f objects per call, want 0", allocs)
	}
}

func TestMulBatchIntoPanics(t *testing.T) {
	p, _, _ := randomPacked(rand.New(rand.NewSource(57)), 8, 4, 4)
	st := p.Stride()
	cases := []func(){
		func() { p.MulBatchInto(make([]float64, st), make([]float64, st), -1, make([]float64, 8), 8) },
		func() { p.MulBatchInto(make([]float64, st), make([]float64, st), 1, make([]float64, 8), 4) },
		func() { p.MulBatchInto(make([]float64, st), make([]float64, 2*st), 2, make([]float64, 16), 8) },
		func() { p.MulBatchInto(make([]float64, 2*st), make([]float64, 2*st), 2, make([]float64, 10), 8) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: bad batch dimensions accepted", i)
				}
			}()
			f()
		}()
	}
	// k == 0 is a no-op, not a panic.
	p.MulBatchInto(nil, nil, 0, nil, 8)
}

// BenchmarkPackedMulBatch55 measures the raw batched kernel at the
// CMP4 operand shape (55 rows — the ≤56 quad/pair path — by 55
// columns) across lane counts, isolated from the simulator's per-tick
// bookkeeping. ns/lane is the number to watch: it should fall as k
// grows while the propagator stream amortizes over more lanes, and
// flatten once the FMA ports saturate.
func BenchmarkPackedMulBatch55(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(8))
			p, _, _ := randomPacked(rng, 55, 50, 5)
			stride := p.Stride()
			x := make([]float64, k*stride)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			bias := make([]float64, k*stride)
			y := make([]float64, k*stride)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.MulBatchInto(y, bias, k, x, stride)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/lane")
		})
	}
}

func BenchmarkPackedMulAdd55(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	p, _, _ := randomPacked(rng, 55, 55, 45)
	x := make([]float64, p.Cols())
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	bias := make([]float64, p.Stride())
	y := make([]float64, p.Stride())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MulAddInto(y, bias, x)
	}
}
