//go:build amd64

package linalg

// fusedTick64 computes y = bias + M·x for the packed column-major
// operand at the fixed 64-row stride: eight ZMM accumulators hold the
// whole output vector, and each column contributes one broadcast plus
// eight fused multiply-adds. Implemented in simd_amd64.s; only called
// when detectAVX512 reported support.
//
//go:noescape
func fusedTick64(m *float64, cols int, x *float64, bias *float64, y *float64)

// cpuid executes the CPUID instruction for the given leaf/subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

var simdAvailable = detectAVX512()

// detectAVX512 reports whether the CPU and OS support the AVX-512F
// instructions the packed kernel uses: XSAVE/OSXSAVE enabled, XCR0
// advertising XMM+YMM+opmask+ZMM state saving, and the AVX-512
// Foundation feature bit set.
func detectAVX512() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const xsave, osxsave, avx = 1 << 26, 1 << 27, 1 << 28
	if c1&xsave == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// XCR0: SSE (1), AVX (2), opmask (5), ZMM0-15 upper (6), ZMM16-31 (7).
	const zmmState = 1<<1 | 1<<2 | 1<<5 | 1<<6 | 1<<7
	if lo, _ := xgetbv(); lo&zmmState != zmmState {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx512f = 1 << 16
	return b7&avx512f != 0
}
