//go:build amd64 && !noasm

package linalg

// fusedTick64 computes y = bias + M·x for the packed column-major
// operand at the fixed 64-row stride: eight ZMM accumulators hold the
// whole output vector, and each column contributes one broadcast plus
// eight fused multiply-adds. Implemented in simd_amd64.s; only called
// when detectAVX512 reported support.
//
//mtlint:generic mulAddGeneric tested-by FuzzMulAddInto
//go:noescape
func fusedTick64(m *float64, cols int, x *float64, bias *float64, y *float64)

// fusedTickBatch64 is the multi-lane (GEMM) form of fusedTick64: for
// each lane l in [0,k) it computes y[l·64:] = bias[l·64:] + M·x[l·xStride:].
// Lanes are walked in pairs so each 512-byte propagator column is
// loaded into registers once and feeds two lanes' FMA chains; per lane
// the operation sequence is identical to fusedTick64's, so batched and
// sequential ticks are bit-identical. Implemented in simd_amd64.s.
//
//mtlint:generic mulAddGeneric tested-by FuzzMulBatchInto
//go:noescape
func fusedTickBatch64(m *float64, cols int, x *float64, xStride int, bias *float64, y *float64, k int)

// fusedTickBatch56 is fusedTickBatch64 specialized for operands whose
// live rows fit in seven ZMM chunks (Rows ≤ 56): the top padding chunk
// of every column is provably zero, so the kernel skips ~12% of the
// FMA stream and leaves rows 56–63 of each y lane unwritten. Live rows
// keep fusedTick64's exact operation sequence. Implemented in
// simd_amd64.s.
//
//mtlint:generic mulAddGeneric tested-by FuzzMulBatchInto
//go:noescape
func fusedTickBatch56(m *float64, cols int, x *float64, xStride int, bias *float64, y *float64, k int)

// fusedTickBatch56x4 is the quad-lane widening of fusedTickBatch56: k
// must be a positive multiple of four, and each group of four lanes
// shares every 512-byte propagator column read. The seven row chunks
// are register-blocked into two passes over the columns — chunks 0–3
// (16 accumulators) then chunks 4–6 (12 accumulators) — so 4×7 = 28
// accumulators never have to coexist in the 32 ZMM registers; the
// operand row-block touched by a pass stays resident across all four
// lanes. Per lane and per row the FMA sequence is still ascending
// column order, exactly fusedTick64's, so bit-identity with the
// sequential kernel is preserved. Like fusedTickBatch56, rows 56–63 of
// every y lane are unspecified on return. Implemented in simd_amd64.s.
//
//mtlint:generic mulBatchGeneric tested-by FuzzMulBatchInto
//go:noescape
func fusedTickBatch56x4(m *float64, cols int, x *float64, xStride int, bias *float64, y *float64, k int)

// cpuid executes the CPUID instruction for the given leaf/subleaf.
//
//mtlint:nogeneric feature-detection primitive, no arithmetic to mirror
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
//
//mtlint:nogeneric feature-detection primitive, no arithmetic to mirror
func xgetbv() (eax, edx uint32)

var simdAvailable = detectAVX512()

// detectAVX512 reports whether the CPU and OS support the AVX-512F
// instructions the packed kernel uses: XSAVE/OSXSAVE enabled, XCR0
// advertising XMM+YMM+opmask+ZMM state saving, and the AVX-512
// Foundation feature bit set.
func detectAVX512() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const xsave, osxsave, avx = 1 << 26, 1 << 27, 1 << 28
	if c1&xsave == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// XCR0: SSE (1), AVX (2), opmask (5), ZMM0-15 upper (6), ZMM16-31 (7).
	const zmmState = 1<<1 | 1<<2 | 1<<5 | 1<<6 | 1<<7
	if lo, _ := xgetbv(); lo&zmmState != zmmState {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx512f = 1 << 16
	return b7&avx512f != 0
}
