package linalg

import (
	"fmt"
	"unsafe"
)

// packedStride is the fixed column stride (in float64s) of the SIMD
// kernel: eight ZMM accumulators of eight lanes each cover up to 64
// rows, so every column occupies one 512-byte panel and the assembly
// needs no masking or tail handling. Matrices with more rows fall back
// to the generic path at their natural stride.
const packedStride = 64

// Packed is a column-major, zero-padded packing of one or more
// equal-row matrices laid side by side, built for the fused update
// y = bias + M₁·x₁ + M₂·x₂ + … that the thermal model's exact
// discretization performs once per control tick. Column j is stored
// contiguously at offset j·Stride, so a matrix-vector product streams
// the data linearly and vectorizes across rows (axpy form) instead of
// reducing along them. A Packed is read-only after construction and
// safe to share across goroutines.
type Packed struct {
	rows, cols, stride int
	data               []float64
}

// Pack concatenates the given matrices column-wise into one packed
// operand. All matrices must have the same number of rows.
func Pack(ms ...*Matrix) *Packed {
	if len(ms) == 0 {
		panic("linalg: Pack needs at least one matrix")
	}
	rows := ms[0].rows
	cols := 0
	for _, m := range ms {
		if m.rows != rows {
			panic(fmt.Sprintf("linalg: Pack row mismatch: %d vs %d", m.rows, rows))
		}
		cols += m.cols
	}
	stride := rows
	if rows <= packedStride {
		stride = packedStride
	}
	p := &Packed{rows: rows, cols: cols, stride: stride,
		data: alignedSlice(cols * stride)}
	j0 := 0
	for _, m := range ms {
		for j := 0; j < m.cols; j++ {
			col := p.data[(j0+j)*stride:]
			for i := 0; i < rows; i++ {
				col[i] = m.At(i, j)
			}
		}
		j0 += m.cols
	}
	return p
}

// Rows returns the logical (unpadded) row count.
func (p *Packed) Rows() int { return p.rows }

// Cols returns the total column count across the packed matrices.
func (p *Packed) Cols() int { return p.cols }

// Stride returns the padded column stride; callers of MulAddInto must
// size y and bias to it.
func (p *Packed) Stride() int { return p.stride }

// SIMDAccelerated reports whether MulAddInto on this operand runs the
// vectorized kernel rather than the generic loop.
func (p *Packed) SIMDAccelerated() bool {
	return simdAvailable && p.stride == packedStride
}

// MulAddInto computes y = bias + P·x. x must have length Cols; y and
// bias must have length Stride (entries past Rows are padding — the
// kernel writes them, so y[Rows:Stride] is scratch, and bias padding
// should be zero). y must not alias x or bias.
//
//mtlint:zeroalloc
func (p *Packed) MulAddInto(y, bias, x []float64) {
	if len(x) != p.cols || len(y) != p.stride || len(bias) != p.stride {
		p.badMulAddArgs(len(x), len(y), len(bias))
	}
	if p.SIMDAccelerated() && p.cols > 0 {
		fusedTick64(&p.data[0], p.cols, &x[0], &bias[0], &y[0])
		return
	}
	p.mulAddGeneric(y, bias, x)
}

// badMulAddArgs formats the MulAddInto argument panic off the hot
// path: the fmt.Sprintf interface conversions are heap allocations
// that must not appear inside the zeroalloc-marked kernel body.
//
//go:noinline
func (p *Packed) badMulAddArgs(nx, ny, nbias int) {
	if nx != p.cols {
		panic(fmt.Sprintf("linalg: MulAddInto x length %d, want %d cols", nx, p.cols))
	}
	panic(fmt.Sprintf("linalg: MulAddInto y/bias lengths %d/%d, want stride %d",
		ny, nbias, p.stride))
}

// mulAddGeneric is the portable axpy-form y = bias + P·x for one lane.
// Both MulAddInto and MulBatchInto fall back to it, so the two paths
// produce bit-identical results on machines without the SIMD kernel.
//
//mtlint:zeroalloc
func (p *Packed) mulAddGeneric(y, bias, x []float64) {
	copy(y, bias)
	for j := 0; j < p.cols; j++ {
		xj := x[j]
		if xj == 0 { //mtlint:allow floatcmp exact-zero skip adds no rounding (x+0 == x)
			continue
		}
		col := p.data[j*p.stride : j*p.stride+p.rows]
		for i, v := range col {
			y[i] += v * xj
		}
	}
}

// MulBatchInto is the multi-RHS (GEMM) form of MulAddInto: for each
// lane l in [0, k) it computes
//
//	y[l·Stride : (l+1)·Stride] = bias[l·Stride : (l+1)·Stride] + P·x[l·xStride : l·xStride+Cols]
//
// amortizing the propagator stream across all lanes of the panel. Lane
// l of y and bias occupies one full padded column at offset l·Stride;
// lane l of x starts at l·xStride and spans Cols entries, so xStride ≥
// Cols lets callers hand over padded state panels directly (xStride ==
// Stride for a state panel, xStride == Cols for a tightly packed input
// panel). Per lane the arithmetic — operation kind and column order —
// is exactly MulAddInto's, so a batched tick is bit-identical to k
// sequential ticks. Zero allocations; y must not alias x or bias.
//
// Unlike MulAddInto, entries past Rows in each y lane are unspecified
// on return: when the live rows fit in seven of the eight ZMM chunks
// (Rows ≤ 56) the kernel skips the all-zero padding chunk entirely
// and never writes it.
//
//mtlint:zeroalloc
func (p *Packed) MulBatchInto(y, bias []float64, k int, x []float64, xStride int) {
	if k == 0 {
		return
	}
	if k < 0 || xStride < p.cols || len(y) != k*p.stride || len(bias) != k*p.stride ||
		len(x) < (k-1)*xStride+p.cols {
		p.badMulBatchArgs(len(y), len(bias), k, len(x), xStride)
	}
	if p.SIMDAccelerated() && p.cols > 0 {
		if p.rows <= 56 {
			// Quad-lane kernel for whole groups of four: each 512-byte
			// propagator column read from memory feeds four lanes' FMA
			// chains, halving the operand traffic of the pair kernel.
			// The remainder (1–3 lanes) runs the pair kernel, offset past
			// the quads' panels.
			q := k &^ 3
			if q > 0 {
				fusedTickBatch56x4(&p.data[0], p.cols, &x[0], xStride, &bias[0], &y[0], q)
			}
			if rem := k - q; rem > 0 {
				if q == 0 {
					fusedTickBatch56(&p.data[0], p.cols, &x[0], xStride, &bias[0], &y[0], k)
				} else {
					fusedTickBatch56(&p.data[0], p.cols, &x[q*xStride], xStride,
						&bias[q*p.stride], &y[q*p.stride], rem)
				}
			}
		} else {
			fusedTickBatch64(&p.data[0], p.cols, &x[0], xStride, &bias[0], &y[0], k)
		}
		return
	}
	p.mulBatchGeneric(y, bias, k, x, xStride)
}

// mulBatchGeneric is the portable multi-lane twin of the batched SIMD
// kernels and the MulBatchInto fallback on machines without them. Lanes
// are walked in blocks of four so each packed column is read from
// memory once per block instead of once per lane — the same register
// blocking the quad asm kernel performs, expressed as four concurrent
// axpy updates the compiler can keep in registers. Per lane the
// operation kind and column order are exactly mulAddGeneric's (bias
// copy, then ascending-column axpy with exact-zero skip), so every lane
// is bit-identical to the sequential path regardless of how the lanes
// are grouped.
//
//mtlint:zeroalloc
func (p *Packed) mulBatchGeneric(y, bias []float64, k int, x []float64, xStride int) {
	copy(y[:k*p.stride], bias[:k*p.stride])
	l := 0
	for ; l+4 <= k; l += 4 {
		yA := y[(l+0)*p.stride : (l+0)*p.stride+p.rows]
		yB := y[(l+1)*p.stride : (l+1)*p.stride+p.rows]
		yC := y[(l+2)*p.stride : (l+2)*p.stride+p.rows]
		yD := y[(l+3)*p.stride : (l+3)*p.stride+p.rows]
		xA := x[(l+0)*xStride:]
		xB := x[(l+1)*xStride:]
		xC := x[(l+2)*xStride:]
		xD := x[(l+3)*xStride:]
		for j := 0; j < p.cols; j++ {
			col := p.data[j*p.stride : j*p.stride+p.rows]
			a, b, c, d := xA[j], xB[j], xC[j], xD[j]
			if a != 0 && b != 0 && c != 0 && d != 0 { //mtlint:allow floatcmp exact-zero skip adds no rounding (x+0 == x)
				for i, v := range col {
					yA[i] += v * a
					yB[i] += v * b
					yC[i] += v * c
					yD[i] += v * d
				}
				continue
			}
			// A lane with a zero input skips the column, exactly as
			// mulAddGeneric would; the others still share this read of it.
			if a != 0 { //mtlint:allow floatcmp exact-zero skip adds no rounding (x+0 == x)
				for i, v := range col {
					yA[i] += v * a
				}
			}
			if b != 0 { //mtlint:allow floatcmp exact-zero skip adds no rounding (x+0 == x)
				for i, v := range col {
					yB[i] += v * b
				}
			}
			if c != 0 { //mtlint:allow floatcmp exact-zero skip adds no rounding (x+0 == x)
				for i, v := range col {
					yC[i] += v * c
				}
			}
			if d != 0 { //mtlint:allow floatcmp exact-zero skip adds no rounding (x+0 == x)
				for i, v := range col {
					yD[i] += v * d
				}
			}
		}
	}
	for ; l < k; l++ {
		p.mulAddGeneric(y[l*p.stride:(l+1)*p.stride],
			bias[l*p.stride:(l+1)*p.stride],
			x[l*xStride:l*xStride+p.cols])
	}
}

// badMulBatchArgs formats the MulBatchInto argument panics off the hot
// path (see badMulAddArgs).
//
//go:noinline
func (p *Packed) badMulBatchArgs(ny, nbias, k, nx, xStride int) {
	if k < 0 {
		panic(fmt.Sprintf("linalg: MulBatchInto negative lane count %d", k))
	}
	if xStride < p.cols {
		panic(fmt.Sprintf("linalg: MulBatchInto xStride %d below %d cols", xStride, p.cols))
	}
	if ny != k*p.stride || nbias != k*p.stride {
		panic(fmt.Sprintf("linalg: MulBatchInto y/bias lengths %d/%d, want %d lanes x stride %d",
			ny, nbias, k, p.stride))
	}
	panic(fmt.Sprintf("linalg: MulBatchInto x length %d, want at least %d",
		nx, (k-1)*xStride+p.cols))
}

// SIMDEnabled reports whether this binary runs the vectorized packed
// kernel on this machine (AVX-512F detected at startup). The thermal
// model consults it when deciding whether the exact-discretization step
// beats the sparse RK4 kernel at small step sizes.
func SIMDEnabled() bool { return simdAvailable }

// SIMDCapableRows reports whether a packed operand with the given row
// count would run the vectorized kernel on this machine.
func SIMDCapableRows(rows int) bool { return simdAvailable && rows <= packedStride }

// NewAligned returns a zeroed []float64 whose backing array starts on
// a 64-byte boundary — the allocation helper for the state panels fed
// to MulBatchInto, so every padded lane maps to whole cache lines.
func NewAligned(n int) []float64 { return alignedSlice(n) }

// alignedSlice returns a zeroed slice of n float64s whose backing array
// starts on a 64-byte boundary, so every 512-byte packed column maps to
// whole cache lines (and aligned ZMM loads).
func alignedSlice(n int) []float64 {
	buf := make([]float64, n+7)
	addr := uintptr(unsafe.Pointer(&buf[0]))
	off := 0
	if r := addr % 64; r != 0 {
		off = int((64 - r) / 8)
	}
	return buf[off : off+n : off+n]
}
