package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixFrom(t *testing.T) {
	m, err := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("NewMatrixFrom: %v", err)
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("got %dx%d, want 2x2", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestNewMatrixFromRagged(t *testing.T) {
	if _, err := NewMatrixFrom([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	if _, err := NewMatrixFrom(nil); err == nil {
		t.Fatal("expected error for empty literal")
	}
}

func TestIdentityMulVec(t *testing.T) {
	id := Identity(4)
	x := []float64{1, -2, 3.5, 0}
	y := id.MulVec(x)
	for i := range x {
		if y[i] != x[i] {
			t.Errorf("identity MulVec changed element %d: %v -> %v", i, x[i], y[i])
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul At(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d, want 3x2", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", at.At(2, 1))
	}
}

func TestIsSymmetric(t *testing.T) {
	s, _ := NewMatrixFrom([][]float64{{2, -1}, {-1, 2}})
	if !s.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	ns, _ := NewMatrixFrom([][]float64{{2, -1}, {0, 2}})
	if ns.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
	rect, _ := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	if rect.IsSymmetric(0) {
		t.Error("rectangular matrix reported symmetric")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{
		{4, -1, 0},
		{-1, 4, -1},
		{0, -1, 4},
	})
	b := []float64{3, 2, 3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if r := Residual(a, x, b); r > 1e-12 {
		t.Errorf("residual %g too large", r)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveWrongRHSLength(t *testing.T) {
	a := Identity(3)
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestFactorNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Factor(a); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestDet(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{2, 0}, {0, 3}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Det(), 6, 1e-12) {
		t.Errorf("det = %v, want 6", f.Det())
	}
	// Pivoting flips sign bookkeeping; determinant must still be right.
	b, _ := NewMatrixFrom([][]float64{{0, 1}, {1, 0}})
	fb, err := Factor(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fb.Det(), -1, 1e-12) {
		t.Errorf("det = %v, want -1", fb.Det())
	}
}

// randomDiagDominant builds a random strictly diagonally dominant matrix,
// which is always nonsingular — the same structural class as thermal
// conductance matrices.
func randomDiagDominant(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.Float64()*2 - 1
			m.Set(i, j, v)
			rowSum += math.Abs(v)
		}
		m.Set(i, i, rowSum+1+rng.Float64())
	}
	return m
}

func TestSolveRandomDiagDominantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		a := randomDiagDominant(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.Float64()*10 - 5
		}
		b := a.MulVec(want)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(x[i], want[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLUReuseMultipleRHS(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{
		{10, 1, 0, 0},
		{1, 10, 1, 0},
		{0, 1, 10, 1},
		{0, 0, 1, 10},
	})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		b := []float64{float64(k), 1, -1, float64(-k)}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatalf("solve %d: %v", k, err)
		}
		if r := Residual(a, x, b); r > 1e-10 {
			t.Errorf("rhs %d: residual %g", k, r)
		}
	}
}

func TestMulVecDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Identity(3).MulVec([]float64{1, 2})
}

func TestMaxAbs(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, -7}, {3, 4}})
	if a.MaxAbs() != 7 {
		t.Errorf("MaxAbs = %v, want 7", a.MaxAbs())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Identity(2)
	c := a.Clone()
	c.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}
