//go:build !amd64 || noasm

package linalg

var simdAvailable = false

// fusedTick64 is never reached on non-amd64 or noasm builds:
// SIMDAccelerated is false everywhere, so MulAddInto always takes the
// generic path.
func fusedTick64(m *float64, cols int, x *float64, bias *float64, y *float64) {
	panic("linalg: fusedTick64 called without SIMD support")
}

// fusedTickBatch64 is never reached on non-amd64 or noasm builds:
// MulBatchInto always takes the generic per-lane path.
func fusedTickBatch64(m *float64, cols int, x *float64, xStride int, bias *float64, y *float64, k int) {
	panic("linalg: fusedTickBatch64 called without SIMD support")
}

// fusedTickBatch56 is never reached on non-amd64 or noasm builds either.
func fusedTickBatch56(m *float64, cols int, x *float64, xStride int, bias *float64, y *float64, k int) {
	panic("linalg: fusedTickBatch56 called without SIMD support")
}

// fusedTickBatch56x4 is never reached on non-amd64 or noasm builds either.
func fusedTickBatch56x4(m *float64, cols int, x *float64, xStride int, bias *float64, y *float64, k int) {
	panic("linalg: fusedTickBatch56x4 called without SIMD support")
}
