package linalg

import (
	"fmt"
	"math"
)

// Expm computes the matrix exponential e^A by scaling and squaring with
// diagonal Padé approximants (Higham, "The Scaling and Squaring Method
// for the Matrix Exponential Revisited", 2005). The degree is chosen
// from the 1-norm of A so the backward error stays at unit-roundoff
// level: degrees 3/5/7/9 for small norms, otherwise A is scaled by 2^-s
// until ‖A‖₁ ≤ θ₁₃, approximated at degree 13, and squared s times.
//
// The thermal model uses Expm to build the exact zero-order-hold
// discretization of its RC network; there ‖A·dt‖₁ is tiny at the 28 µs
// control period (the low-degree branch) and grows past θ₁₃ only for
// multi-second steps (the scaling branch).
func Expm(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("linalg: Expm needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	for _, v := range a.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("linalg: Expm input has non-finite entry %g", v)
		}
	}
	norm := a.Norm1()
	// θ_m bounds from Higham 2005, Table 2.3.
	const (
		theta3  = 1.495585217958292e-2
		theta5  = 2.539398330063230e-1
		theta7  = 9.504178996162932e-1
		theta9  = 2.097847961257068e0
		theta13 = 5.371920351148152e0
	)
	switch {
	case norm <= theta3:
		return padeExp(a, 3)
	case norm <= theta5:
		return padeExp(a, 5)
	case norm <= theta7:
		return padeExp(a, 7)
	case norm <= theta9:
		return padeExp(a, 9)
	}
	s := int(math.Ceil(math.Log2(norm / theta13)))
	if s < 0 {
		// norm ∈ (θ₉, θ₁₃/2] makes the exponent negative; scaling up
		// would compute e^(2^-s·A), so evaluate at degree 13 unscaled.
		s = 0
	}
	scaled := a.scaled(math.Ldexp(1, -s))
	f, err := padeExp(scaled, 13)
	if err != nil {
		return nil, err
	}
	for i := 0; i < s; i++ {
		f = f.Mul(f)
	}
	return f, nil
}

// padeCoeffs[m] are the numerator coefficients b₀…b_m of the [m/m]
// diagonal Padé approximant to e^x; the denominator uses the same
// coefficients with alternating signs on the odd terms.
var padeCoeffs = map[int][]float64{
	3: {120, 60, 12, 1},
	5: {30240, 15120, 3360, 420, 30, 1},
	7: {17297280, 8648640, 1995840, 277200, 25200, 1512, 56, 1},
	9: {17643225600, 8821612800, 2075673600, 302702400, 30270240,
		2162160, 110880, 3960, 90, 1},
	13: {64764752532480000, 32382376266240000, 7771770303897600,
		1187353796428800, 129060195264000, 10559470521600,
		670442572800, 33522128640, 1323241920, 40840800,
		960960, 16380, 182, 1},
}

// padeExp evaluates the [m/m] Padé approximant r_m(A) = q_m(A)⁻¹·p_m(A)
// where p_m = V+U and q_m = V−U split into the odd part U (a multiple
// of A) and even part V.
func padeExp(a *Matrix, m int) (*Matrix, error) {
	b := padeCoeffs[m]
	n := a.rows
	a2 := a.Mul(a)
	var u, v *Matrix
	if m == 13 {
		// Higham's factored form: only A², A⁴, A⁶ are needed.
		a4 := a2.Mul(a2)
		a6 := a4.Mul(a2)
		w := combine(n, a6, b[13], a4, b[11], a2, b[9])
		u = a.Mul(a6.Mul(w).addInPlace(combine(n, a6, b[7], a4, b[5], a2, b[3]).addDiag(b[1])))
		z := combine(n, a6, b[12], a4, b[10], a2, b[8])
		v = a6.Mul(z).addInPlace(combine(n, a6, b[6], a4, b[4], a2, b[2]).addDiag(b[0]))
	} else {
		// Powers A², A⁴, … up to A^(m-1), combined term by term.
		pows := []*Matrix{a2}
		for k := 4; k <= m-1; k += 2 {
			pows = append(pows, pows[len(pows)-1].Mul(a2))
		}
		uSum := NewMatrix(n, n).addDiag(b[1])
		vSum := NewMatrix(n, n).addDiag(b[0])
		for i, p := range pows {
			k := 2 * (i + 1)
			uSum.addScaled(p, b[k+1])
			vSum.addScaled(p, b[k])
		}
		u = a.Mul(uSum)
		v = vSum
	}
	num := v.Clone().addScaled(u, 1)  // V + U
	den := v.Clone().addScaled(u, -1) // V − U
	f, err := Factor(den)
	if err != nil {
		return nil, fmt.Errorf("linalg: Expm Padé denominator: %w", err)
	}
	return f.SolveMatrix(num)
}

// combine returns c1·m1 + c2·m2 + c3·m3 as a fresh n×n matrix.
func combine(n int, m1 *Matrix, c1 float64, m2 *Matrix, c2 float64, m3 *Matrix, c3 float64) *Matrix {
	out := NewMatrix(n, n)
	for i, v := range m1.data {
		out.data[i] = c1*v + c2*m2.data[i] + c3*m3.data[i]
	}
	return out
}

// addScaled adds c·b element-wise into m and returns m.
func (m *Matrix) addScaled(b *Matrix, c float64) *Matrix {
	for i, v := range b.data {
		m.data[i] += c * v
	}
	return m
}

// addInPlace adds b element-wise into m and returns m.
func (m *Matrix) addInPlace(b *Matrix) *Matrix {
	for i, v := range b.data {
		m.data[i] += v
	}
	return m
}

// addDiag adds c to every diagonal element and returns m.
func (m *Matrix) addDiag(c float64) *Matrix {
	for i := 0; i < m.rows && i < m.cols; i++ {
		m.data[i*m.cols+i] += c
	}
	return m
}

// scaled returns c·m as a new matrix.
func (m *Matrix) scaled(c float64) *Matrix {
	out := NewMatrix(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = c * v
	}
	return out
}

// Norm1 returns the 1-norm ‖m‖₁ (maximum absolute column sum).
func (m *Matrix) Norm1() float64 {
	var max float64
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			s += math.Abs(m.data[i*m.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}
