package power

import (
	"math"
	"testing"
	"testing/quick"

	"multitherm/internal/floorplan"
	"multitherm/internal/units"
)

func newCalc(t testing.TB) *Calculator {
	t.Helper()
	c, err := NewCalculator(floorplan.CMP4(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bads := []func(*Config){
		func(c *Config) { c.VMax = 0 },
		func(c *Config) { c.SMin = 0 },
		func(c *Config) { c.SMin = 1.5 },
		func(c *Config) { c.VFloor = 2 },
		func(c *Config) { c.UnitDynamic = nil },
		func(c *Config) { c.LeakageBeta = 0 },
		func(c *Config) { c.StallDynFraction = -0.1 },
	}
	for i, mutate := range bads {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCubicDynamicScaling(t *testing.T) {
	// With the default proportional voltage curve, dynamic power must
	// follow the paper's cubic relation exactly.
	c := DefaultConfig()
	for _, s := range []units.ScaleFactor{0.2, 0.5, 0.72, 1.0} {
		want := float64(s * s * s)
		if got := c.DynamicScale(s); math.Abs(got-want) > 1e-12 {
			t.Errorf("DynamicScale(%v) = %v, want %v (cubic)", s, got, want)
		}
	}
}

func TestVoltageFloorCurve(t *testing.T) {
	c := DefaultConfig()
	c.VFloor = 0.7
	if v := c.VoltageAt(1); v != 1.0 {
		t.Errorf("V(1) = %v, want VMax", v)
	}
	if v := c.VoltageAt(0.2); v != 0.7 {
		t.Errorf("V(SMin) = %v, want VFloor", v)
	}
	mid := c.VoltageAt(0.6)
	if mid <= 0.7 || mid >= 1.0 {
		t.Errorf("V(0.6) = %v, want interior value", mid)
	}
	// Dynamic scale with a floor decays slower than the pure cubic.
	if c.DynamicScale(0.5) <= 0.125 {
		t.Errorf("floored DynamicScale(0.5) = %v, want > cubic 0.125", c.DynamicScale(0.5))
	}
}

func TestVoltageClampsOutOfRange(t *testing.T) {
	c := DefaultConfig()
	if c.VoltageAt(0.05) != c.VoltageAt(c.SMin) {
		t.Error("voltage below SMin not clamped")
	}
	if c.VoltageAt(1.5) != c.VMax {
		t.Error("voltage above 1 not clamped")
	}
}

func TestLeakageDoublesOverBetaBand(t *testing.T) {
	c := DefaultConfig()
	t0 := c.LeakageT0
	dT := math.Ln2 / c.LeakageBeta
	r := c.LeakageScale(t0+units.Celsius(dT), 1) / c.LeakageScale(t0, 1)
	if math.Abs(r-2) > 1e-9 {
		t.Errorf("leakage ratio over doubling band = %v, want 2", r)
	}
}

func TestLeakageScalesWithVoltage(t *testing.T) {
	c := DefaultConfig()
	full := c.LeakageScale(85, 1.0)
	slow := c.LeakageScale(85, 0.5)
	if slow >= full {
		t.Error("leakage should drop with voltage")
	}
	if math.Abs(slow/full-0.5) > 1e-9 {
		t.Errorf("leakage voltage factor = %v, want 0.5 for proportional curve", slow/full)
	}
}

func TestBlockPowerFullSpeed(t *testing.T) {
	calc := newCalc(t)
	fp := floorplan.CMP4()
	nb := len(fp.Blocks)
	activity := make([]float64, nb)
	temps := make([]float64, nb)
	for i := range activity {
		activity[i] = 1
		temps[i] = float64(calc.Config().LeakageT0)
	}
	cores := []CoreState{{Scale: 1}, {Scale: 1}, {Scale: 1}, {Scale: 1}}
	p := calc.BlockPower(nil, activity, cores, temps)
	var total float64
	for i, w := range p {
		want := float64(calc.MaxDynamic(i) + calc.BaseLeakage(i))
		if math.Abs(w-want) > 1e-9 {
			t.Errorf("block %d power %v, want %v", i, w, want)
		}
		total += w
	}
	wantTotal := float64(calc.MaxChipDynamic() + calc.ChipLeakageAt(calc.Config().LeakageT0, 1))
	if math.Abs(total-wantTotal) > 1e-6 {
		t.Errorf("total %v, want %v", total, wantTotal)
	}
}

func TestBlockPowerStalledCore(t *testing.T) {
	calc := newCalc(t)
	fp := floorplan.CMP4()
	nb := len(fp.Blocks)
	activity := make([]float64, nb)
	temps := make([]float64, nb)
	for i := range activity {
		activity[i] = 1
		temps[i] = 85
	}
	cores := []CoreState{{Scale: 1, Stalled: true}, {Scale: 1}, {Scale: 1}, {Scale: 1}}
	p := calc.BlockPower(nil, activity, cores, temps)
	for i, b := range fp.Blocks {
		if b.Core == 0 {
			want := float64(calc.MaxDynamic(i))*calc.Config().StallDynFraction + float64(calc.BaseLeakage(i))
			if math.Abs(p[i]-want) > 1e-9 {
				t.Errorf("stalled block %s power %v, want %v", b.Name, p[i], want)
			}
		}
	}
	// Shared L2 keeps running while any core is live.
	l2 := fp.BlockIndex("l2")
	if p[l2] <= float64(calc.BaseLeakage(l2)) {
		t.Error("L2 dynamic power gated although cores are live")
	}
}

func TestBlockPowerAllStalledGatesShared(t *testing.T) {
	calc := newCalc(t)
	fp := floorplan.CMP4()
	nb := len(fp.Blocks)
	activity := make([]float64, nb)
	temps := make([]float64, nb)
	for i := range activity {
		activity[i] = 1
		temps[i] = 85
	}
	cores := []CoreState{
		{Scale: 1, Stalled: true}, {Scale: 1, Stalled: true},
		{Scale: 1, Stalled: true}, {Scale: 1, Stalled: true},
	}
	p := calc.BlockPower(nil, activity, cores, temps)
	l2 := fp.BlockIndex("l2")
	want := float64(calc.MaxDynamic(l2))*calc.Config().StallDynFraction + float64(calc.BaseLeakage(l2))
	if math.Abs(p[l2]-want) > 1e-9 {
		t.Errorf("all-stalled L2 power %v, want gated %v", p[l2], want)
	}
}

func TestBlockPowerScalesWithDVFS(t *testing.T) {
	calc := newCalc(t)
	fp := floorplan.CMP4()
	nb := len(fp.Blocks)
	activity := make([]float64, nb)
	temps := make([]float64, nb)
	for i := range activity {
		activity[i] = 0.8
		temps[i] = 85
	}
	full := calc.BlockPower(nil, activity, []CoreState{{Scale: 1}, {Scale: 1}, {Scale: 1}, {Scale: 1}}, temps)
	half := calc.BlockPower(nil, activity, []CoreState{{Scale: 0.5}, {Scale: 1}, {Scale: 1}, {Scale: 1}}, temps)
	for i, b := range fp.Blocks {
		if b.Core == 0 {
			wantDyn := (full[i] - float64(calc.BaseLeakage(i))) * 0.125
			wantLeak := float64(calc.BaseLeakage(i)) * 0.5 // voltage factor
			if math.Abs(half[i]-(wantDyn+wantLeak)) > 1e-9 {
				t.Errorf("block %s at half speed: %v, want %v", b.Name, half[i], wantDyn+wantLeak)
			}
		} else if half[i] != full[i] {
			t.Errorf("block %s changed power though its core did not scale", b.Name)
		}
	}
}

func TestBlockPowerMonotoneInScaleProperty(t *testing.T) {
	calc := newCalc(t)
	fp := floorplan.CMP4()
	nb := len(fp.Blocks)
	activity := make([]float64, nb)
	temps := make([]float64, nb)
	for i := range activity {
		activity[i] = 0.5
		temps[i] = 80
	}
	f := func(s1, s2 float64) bool {
		a := units.ScaleFactor(0.2 + math.Mod(math.Abs(s1), 0.8))
		b := units.ScaleFactor(0.2 + math.Mod(math.Abs(s2), 0.8))
		if a > b {
			a, b = b, a
		}
		pa := calc.BlockPower(nil, activity, []CoreState{{Scale: a}, {Scale: a}, {Scale: a}, {Scale: a}}, temps)
		pb := calc.BlockPower(nil, activity, []CoreState{{Scale: b}, {Scale: b}, {Scale: b}, {Scale: b}}, temps)
		for i := range pa {
			if pa[i] > pb[i]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewCalculatorRejectsUnknownKind(t *testing.T) {
	cfg := DefaultConfig()
	delete(cfg.UnitDynamic, floorplan.KindL2)
	if _, err := NewCalculator(floorplan.CMP4(), cfg); err == nil {
		t.Error("missing unit kind accepted")
	}
}

func TestCalibrationEnvelope(t *testing.T) {
	// The chip must be under genuine thermal duress: full-tilt power
	// high enough that unthrottled operation is unsustainable. Guard the
	// calibration: max dynamic (at activity 1.0 everywhere, including the
	// global duress multiplier — realistic workloads reach well under
	// half of this) 200–380 W, leakage at 85 °C 10–35 W.
	calc := newCalc(t)
	dyn := calc.MaxChipDynamic()
	if dyn < 200 || dyn > 380 {
		t.Errorf("max chip dynamic %v W outside calibration envelope", dyn)
	}
	leak := calc.ChipLeakageAt(85, 1)
	if leak < 10 || leak > 35 {
		t.Errorf("chip leakage at 85°C = %v W outside calibration envelope", leak)
	}
}

func TestGlobalDynamicScale(t *testing.T) {
	base := DefaultConfig()
	base.GlobalDynamicScale = 1.0
	scaled := DefaultConfig()
	scaled.GlobalDynamicScale = 2.0
	cb, err := NewCalculator(floorplan.CMP4(), base)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCalculator(floorplan.CMP4(), scaled)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(float64(cs.MaxDynamic(i)-2*cb.MaxDynamic(i))) > 1e-12 {
			t.Errorf("block %d: scale not applied: %v vs %v", i, cs.MaxDynamic(i), cb.MaxDynamic(i))
		}
	}
	// Leakage is not affected by the dynamic multiplier.
	if cs.BaseLeakage(0) != cb.BaseLeakage(0) {
		t.Error("GlobalDynamicScale leaked into leakage")
	}
	bad := DefaultConfig()
	bad.GlobalDynamicScale = 9
	if err := bad.Validate(); err == nil {
		t.Error("absurd global scale accepted")
	}
}
