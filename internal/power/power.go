// Package power models per-block processor power (the PowerTimer role
// in the paper's toolflow, §3.1): dynamic power scaled by activity and
// by the DVFS operating point, plus temperature-dependent leakage power
// computed from the empirical exponential form the paper adopts from
// Heo, Barr & Asanović (§3.3). The paper's controllers assume the cubic
// relation P_dyn ∝ f·V² with V tracking f; that is this package's
// default voltage curve, with an optional realistic voltage floor for
// ablation studies.
//
//mtlint:units
package power

import (
	"fmt"
	"math"

	"multitherm/internal/floorplan"
	"multitherm/internal/units"
)

// Config holds the electrical parameters of the power model.
type Config struct {
	// VMax is the nominal supply voltage (paper Table 3: 1.0 V).
	VMax float64
	// VFloor, if positive, is the lowest voltage the regulator can
	// reach; the voltage curve becomes linear from VFloor at SMin up to
	// VMax at scale 1. If zero, voltage tracks frequency proportionally
	// (V = VMax·s), which yields the paper's pure-cubic dynamic scaling.
	//mtlint:allow unit volts; supply voltage is outside the modeled unit gauges
	VFloor float64
	// SMin is the minimum frequency scale factor (paper: 0.2).
	SMin units.ScaleFactor

	// UnitDynamic maps unit kind to the block's maximum dynamic power
	// at full activity and nominal V/f.
	UnitDynamic map[floorplan.UnitKind]units.Watts

	// Leakage: P_leak = LeakagePerArea·area·(V/VMax)·e^{Beta·(T−T0)}.
	//mtlint:allow unit leakage density is W/m², not plain Watts
	LeakagePerArea float64 // at T0 and VMax
	LeakageBeta    float64 // 1/°C
	LeakageT0      units.Celsius

	// StallDynFraction is the fraction of dynamic power still burned
	// while a core is clock-gated by stop-go (§2.3: state is maintained,
	// "much less dynamic power is wasted" — but not zero).
	//mtlint:allow unit dimensionless fraction of the dynamic power, not Watts
	StallDynFraction float64

	// GlobalDynamicScale multiplies every unit's dynamic power — the
	// overall thermal-duress calibration knob. Zero means 1.0.
	//mtlint:allow unit dimensionless calibration multiplier, not a frequency ScaleFactor
	GlobalDynamicScale float64
}

// globalScale returns the effective global multiplier (zero value → 1).
func (c Config) globalScale() float64 {
	if c.GlobalDynamicScale == 0 { //mtlint:allow floatcmp exact zero is the unset-config sentinel
		return 1
	}
	return c.GlobalDynamicScale
}

// DefaultConfig returns the calibrated power model for the paper's
// 90 nm, 1.0 V, 3.6 GHz four-core part.
func DefaultConfig() Config {
	return Config{
		VMax: 1.0,
		SMin: 0.2,
		UnitDynamic: map[floorplan.UnitKind]units.Watts{
			floorplan.KindFXU:        5.5,
			floorplan.KindIntRegFile: 6.5,
			floorplan.KindFPU:        5.5,
			floorplan.KindFPRegFile:  6.5,
			floorplan.KindLSU:        4.0,
			floorplan.KindBXU:        1.5,
			floorplan.KindBPred:      2.0,
			floorplan.KindL1I:        2.5,
			floorplan.KindL1D:        3.0,
			floorplan.KindRename:     2.5,
			floorplan.KindIssueQ:     3.0,
			floorplan.KindL2:         8.0,
			floorplan.KindOther:      0.5,
		},
		GlobalDynamicScale: 1.65,
		LeakagePerArea:     9.0e4,
		LeakageBeta:        0.017,
		LeakageT0:          85,
		StallDynFraction:   0.08,
	}
}

// Validate checks config consistency.
func (c Config) Validate() error {
	if c.VMax <= 0 {
		return fmt.Errorf("power: VMax must be positive")
	}
	if c.SMin <= 0 || c.SMin >= 1 {
		return fmt.Errorf("power: SMin %g outside (0,1)", c.SMin)
	}
	if c.VFloor < 0 || c.VFloor > c.VMax {
		return fmt.Errorf("power: VFloor %g outside [0, VMax]", c.VFloor)
	}
	if len(c.UnitDynamic) == 0 {
		return fmt.Errorf("power: no unit dynamic powers configured")
	}
	if c.LeakagePerArea < 0 || c.LeakageBeta <= 0 {
		return fmt.Errorf("power: bad leakage parameters")
	}
	if c.StallDynFraction < 0 || c.StallDynFraction > 1 {
		return fmt.Errorf("power: StallDynFraction %g outside [0,1]", c.StallDynFraction)
	}
	if c.GlobalDynamicScale < 0 || c.GlobalDynamicScale > 5 {
		return fmt.Errorf("power: GlobalDynamicScale %g outside [0,5]", c.GlobalDynamicScale)
	}
	return nil
}

// VoltageAt returns the supply voltage at frequency scale s ∈ [SMin, 1].
//
//mtlint:allow unit volts; supply voltage is outside the modeled unit gauges
func (c Config) VoltageAt(s units.ScaleFactor) float64 {
	if s < c.SMin {
		s = c.SMin
	}
	if s > 1 {
		s = 1
	}
	if c.VFloor <= 0 {
		return c.VMax * float64(s)
	}
	// Linear from VFloor at SMin to VMax at 1.
	frac := float64((s - c.SMin) / (1 - c.SMin))
	return c.VFloor + (c.VMax-c.VFloor)*frac
}

// DynamicScale returns the dynamic-power multiplier at frequency scale
// s relative to full speed: f·V² normalized. With the default
// proportional voltage curve this is exactly s³ — the cubic relation the
// paper's migration controllers use to rescale counter and sensor data.
// The result is a dimensionless power multiplier, not a ScaleFactor.
//
//mtlint:allow unit dimensionless f·V² power multiplier
func (c Config) DynamicScale(s units.ScaleFactor) float64 {
	v := c.VoltageAt(s) / c.VMax
	return float64(s) * v * v
}

// LeakageScale returns the leakage multiplier at temperature tempC and
// frequency scale s, relative to (T0, VMax). The result is a
// dimensionless power multiplier.
//
//mtlint:allow unit dimensionless leakage multiplier
func (c Config) LeakageScale(tempC units.Celsius, s units.ScaleFactor) float64 {
	v := c.VoltageAt(s) / c.VMax
	return v * math.Exp(c.LeakageBeta*float64(tempC-c.LeakageT0))
}

// Calculator converts per-block activity factors into watts for a
// specific floorplan, applying DVFS scaling, stop-go gating, and
// temperature-dependent leakage.
type Calculator struct {
	cfg     Config
	fp      *floorplan.Floorplan
	maxDyn  []float64 // W at activity 1, full V/f, per block
	leak0   []float64 // W at T0, VMax, per block
	leakSum float64
}

// NewCalculator builds a Calculator for the floorplan.
func NewCalculator(fp *floorplan.Floorplan, cfg Config) (*Calculator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Calculator{cfg: cfg, fp: fp}
	c.maxDyn = make([]float64, len(fp.Blocks))
	c.leak0 = make([]float64, len(fp.Blocks))
	for i, b := range fp.Blocks {
		w, ok := cfg.UnitDynamic[b.Kind]
		if !ok {
			return nil, fmt.Errorf("power: no dynamic power configured for unit kind %v (block %s)", b.Kind, b.Name)
		}
		c.maxDyn[i] = float64(w) * cfg.globalScale()
		c.leak0[i] = cfg.LeakagePerArea * b.Area()
		c.leakSum += c.leak0[i]
	}
	return c, nil
}

// Config returns the calculator's configuration.
func (c *Calculator) Config() Config { return c.cfg }

// MaxDynamic returns block i's dynamic power at full activity and
// nominal V/f.
func (c *Calculator) MaxDynamic(i int) units.Watts { return units.Watts(c.maxDyn[i]) }

// BaseLeakage returns block i's leakage at T0 and VMax.
func (c *Calculator) BaseLeakage(i int) units.Watts { return units.Watts(c.leak0[i]) }

// CoreState describes one core's operating point for power assembly.
type CoreState struct {
	Scale   units.ScaleFactor // frequency scale factor in [SMin, 1]
	Stalled bool              // stop-go clock gate engaged
}

// BlockPower fills dst with per-block watts given:
//   - activity: per-block dynamic activity factor in [0,1] at full speed
//     (nominal power fraction, from the trace / µarch model),
//   - cores: operating state per core (indexed by core id; blocks owned
//     by SharedCore use full speed unless every core is stalled),
//   - temps: per-block temperatures for leakage feedback.
//
// dst may be nil. The returned slice has one entry per block.
func (c *Calculator) BlockPower(dst units.PowerVec, activity []float64, cores []CoreState, temps units.TempVec) units.PowerVec {
	nb := len(c.fp.Blocks)
	if len(activity) != nb || len(temps) != nb {
		panic(fmt.Sprintf("power: activity/temps length %d/%d, want %d", len(activity), len(temps), nb))
	}
	if dst == nil {
		dst = units.MakePowerVec(nb)
	}
	allStalled := true
	for _, cs := range cores {
		if !cs.Stalled {
			allStalled = false
			break
		}
	}
	for i, b := range c.fp.Blocks {
		scale, stalled := units.ScaleFactor(1), allStalled
		if b.Core != floorplan.SharedCore && b.Core < len(cores) {
			scale = cores[b.Core].Scale
			stalled = cores[b.Core].Stalled
		}
		dyn := c.maxDyn[i] * activity[i] * c.cfg.DynamicScale(scale)
		if stalled {
			// Clock-gated: voltage stays up, clocks stop.
			dyn = c.maxDyn[i] * activity[i] * c.cfg.StallDynFraction
			scale = 1 // leakage at full voltage while gated
		}
		leak := c.leak0[i] * c.cfg.LeakageScale(units.Celsius(temps[i]), scale)
		dst[i] = dyn + leak
	}
	return dst
}

// ChipLeakageAt returns total chip leakage if every block sat at the
// given temperature and scale — a calibration aid.
func (c *Calculator) ChipLeakageAt(tempC units.Celsius, s units.ScaleFactor) units.Watts {
	return units.Watts(c.leakSum * c.cfg.LeakageScale(tempC, s))
}

// MaxChipDynamic returns total chip dynamic power at activity 1
// everywhere and full V/f — an upper bound used in calibration.
func (c *Calculator) MaxChipDynamic() units.Watts {
	var sum float64
	for _, w := range c.maxDyn {
		sum += w
	}
	return units.Watts(sum)
}
