package parallel

import (
	"errors"
	"sync"
)

// Pool is the long-running counterpart of RunTasks: a fixed set of
// workers draining a shared job queue for the lifetime of a server
// rather than of one sweep. RunTasks's stealing deques earn their keep
// when a sweep scatters thousands of fine-grained, raggedly-sized cells
// across workers; a serving pool's unit of work is the opposite shape —
// one already-formed lockstep batch, milliseconds of GEMM panels per
// job — so a single FIFO under one mutex is touched orders of magnitude
// less often than it is worked and a per-worker deque would only add
// steal traffic. Fairness falls out of FIFO order: requests run in
// arrival order, which also keeps tail latency under saturation an
// honest function of queue depth.
//
// ErrPoolClosed aside, Submit never blocks and never sheds — admission
// control belongs to the caller (the serve layer bounds in-flight work
// and answers 429 beyond its watermark) so the pool cannot silently
// drop a job someone is waiting on.
type Pool struct {
	workers int
	mu      sync.Mutex
	cond    *sync.Cond
	//mtlint:guardedby mu
	queue []func()
	//mtlint:guardedby mu
	closed bool
	wg     sync.WaitGroup
}

// ErrPoolClosed is returned by Submit after Close has begun.
var ErrPoolClosed = errors.New("parallel: pool closed")

// NewPool starts a pool with the given number of workers (at least 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		job := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		job()
	}
}

// Submit enqueues a job. It returns ErrPoolClosed once Close has begun;
// otherwise the job is guaranteed to run before Close returns.
func (p *Pool) Submit(job func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	p.queue = append(p.queue, job)
	p.mu.Unlock()
	p.cond.Signal()
	return nil
}

// Workers returns the pool's fixed worker count.
func (p *Pool) Workers() int { return p.workers }

// Pending returns the number of jobs queued but not yet started.
func (p *Pool) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Close drains the pool: no new jobs are accepted, every job already
// accepted runs to completion, and the workers exit. It is the
// graceful-shutdown half of the serve layer's SIGTERM handling and is
// safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
