// Package parallel provides the bounded worker pool behind the
// experiment sweep engine. Every (policy, workload) cell of a study is
// an independent simulation, so a sweep is embarrassingly parallel; the
// helpers here fan cells out across a fixed number of workers while
// keeping results deterministic: work is identified by index, results
// are slotted by index (never by arrival order), and the first error —
// by index, not by time — cancels the remaining work and is the one
// reported.
package parallel

import (
	"context"
	"runtime"
)

// ForEach runs fn(ctx, i) for every i in [0, n) across at most
// `workers` goroutines. workers <= 0 selects GOMAXPROCS. The call
// returns after all started work has finished. Scheduling rides on the
// work-stealing pool (see RunTasks): every index costs the same, so
// seeding deals indices round-robin and idle workers steal the
// leftovers instead of queueing on one shared channel.
//
// On failure, the error of the lowest-index failing call is returned —
// a deterministic choice regardless of scheduling — and the shared
// context is cancelled so still-running calls can abort early. Indices
// after a failure may or may not run; callers must treat their slots as
// undefined on error. If the parent context is cancelled, its error is
// returned.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential fast path: no goroutines, no task list, same
		// semantics.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i].Index = i
	}
	return RunTasks(ctx, workers, tasks, fn)
}

// Chunks splits n consecutive items into spans of at most size,
// returned as [start, end) index pairs in order. size <= 0 yields one
// span covering everything; n <= 0 yields none. Work schedulers use it
// to turn an item list into batch-sized work units while preserving
// item order inside each unit.
func Chunks(n, size int) [][2]int {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		return [][2]int{{0, n}}
	}
	out := make([][2]int, 0, (n+size-1)/size)
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		out = append(out, [2]int{start, end})
	}
	return out
}

// RunGrid runs fn(ctx, r, c) for every cell of an rows×cols grid using
// ForEach's worker pool and error semantics. Cells are indexed
// row-major, so the "first" error is the one in the lowest (row, col)
// position.
func RunGrid(ctx context.Context, workers, rows, cols int, fn func(ctx context.Context, r, c int) error) error {
	if rows <= 0 || cols <= 0 {
		return ctx.Err()
	}
	return ForEach(ctx, workers, rows*cols, func(ctx context.Context, i int) error {
		return fn(ctx, i/cols, i%cols)
	})
}
