package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryJob(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int64
	const jobs = 200
	for i := 0; i < jobs; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if n := ran.Load(); n != jobs {
		t.Fatalf("%d of %d jobs ran", n, jobs)
	}
}

func TestPoolCloseDrainsAcceptedJobs(t *testing.T) {
	// One worker, a slow head job, then a tail of quick jobs: Close must
	// not return until the whole accepted queue has drained.
	p := NewPool(1)
	var ran atomic.Int64
	gate := make(chan struct{})
	if err := p.Submit(func() { <-gate; ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	go close(gate)
	p.Close()
	if n := ran.Load(); n != 11 {
		t.Fatalf("Close returned with %d of 11 jobs run", n)
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(1)
	p.Close()
	if err := p.Submit(func() {}); err != ErrPoolClosed {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolConcurrentSubmitters(t *testing.T) {
	p := NewPool(3)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := p.Submit(func() { ran.Add(1) }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	p.Close()
	if n := ran.Load(); n != 400 {
		t.Fatalf("%d of 400 jobs ran", n)
	}
}
