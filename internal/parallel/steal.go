// Package parallel schedules simulation work across worker
// goroutines: RunTasks/ForEach for bounded sweeps, Pool for the
// serving stack. Every goroutine it spawns joins through a WaitGroup
// on an explicit drain path — enforced by the lifecycle analyzer.
//
//mtlint:lifecycle
package parallel

import (
	"context"
	"runtime"
	"sort"
	"sync"
)

// This file holds the work-stealing, size-aware scheduler behind
// ForEach and the experiment sweep. The static round-robin pool it
// replaces fed every worker from one channel, which serializes all
// workers on a single queue and — worse — starts tasks in index order
// regardless of size, so one expensive straggler scheduled last could
// hold the whole sweep open on an otherwise idle machine.
//
// The stealing scheduler fixes both:
//
//   - Tasks carry a cost estimate. Seeding sorts them by descending
//     cost and deals them LPT-style (longest processing time first,
//     each task to the currently least-loaded worker), so the
//     long-running work starts first everywhere and the classic
//     straggler tail shrinks to at most one task's length.
//   - Each worker owns a deque seeded in ascending-cost order: the
//     owner pops from the top (LIFO — its costliest remaining task),
//     while idle workers steal from the bottom (FIFO — the victim's
//     cheapest task). Stealing the small items keeps the owner's big
//     items local and makes steal conflicts short; either way every
//     queue operation touches only that deque's lock, never a global
//     one.
//
// Determinism is unchanged from the channel pool: tasks are identified
// by index, results must be slotted by index, and the reported error is
// the lowest-index failure regardless of steal interleaving. No
// scheduling decision consults wall-clock time or random state, so the
// set of tasks run (absent errors) is always exactly the input set.

// Task is one schedulable unit of work: an index to hand to the work
// function plus a nonnegative cost estimate in arbitrary consistent
// units (simulated seconds, cell counts — only ratios matter). Unknown
// costs may be zero; equal costs fall back to index order.
type Task struct {
	Index int
	Cost  float64
}

// deque is one worker's task queue. The owner pops from the top
// (newest end), thieves steal from the bottom (oldest end); a mutex
// per deque suffices because tasks here are milliseconds long, so the
// queue is touched orders of magnitude less often than it is worked.
type deque struct {
	mu sync.Mutex
	//mtlint:guardedby mu
	tasks []Task // ascending cost: bottom holds the cheapest
}

// popTop removes and returns the owner-end task.
func (d *deque) popTop() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return Task{}, false
	}
	t := d.tasks[n-1]
	d.tasks = d.tasks[:n-1]
	return t, true
}

// stealBottom removes and returns the thief-end task.
func (d *deque) stealBottom() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return Task{}, false
	}
	t := d.tasks[0]
	d.tasks = d.tasks[1:]
	return t, true
}

// RunTasks executes fn(ctx, t.Index) for every task across at most
// `workers` goroutines using the work-stealing scheduler described
// above. workers <= 0 selects GOMAXPROCS. The call returns after all
// started work has finished.
//
// Error semantics match ForEach: the failure with the lowest task
// index is returned — a deterministic choice regardless of steal
// interleaving — and the shared context is cancelled so still-running
// calls can abort early. Tasks not yet started when a failure is
// recorded may never run; on error, callers must treat every slot as
// undefined. If the parent context is cancelled, its error is
// returned.
func RunTasks(ctx context.Context, workers int, tasks []Task, fn func(ctx context.Context, i int) error) error {
	n := len(tasks)
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// Schedule order: descending cost, ties broken by ascending index
	// so the order is total and deterministic.
	order := make([]Task, n)
	copy(order, tasks)
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].Cost != order[b].Cost { //mtlint:allow floatcmp ordering comparison only; equal costs fall through to the index tie-break
			return order[a].Cost > order[b].Cost
		}
		return order[a].Index < order[b].Index
	})

	if workers == 1 {
		// Sequential fast path: no goroutines, same cost-major order.
		for _, t := range order {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, t.Index); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = -1
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel() // one failing task aborts the run
	}

	// LPT seeding: deal the cost-major order onto the least-loaded
	// seed list, reverse each into ascending-cost order so the owner's
	// LIFO pop starts with its costliest task, and only then construct
	// the deques — the queues are fully formed before any worker can
	// see them, so no seed write ever races a steal.
	seeds := make([][]Task, workers)
	loads := make([]float64, workers)
	for _, t := range order {
		w := 0
		for v := 1; v < workers; v++ {
			if loads[v] < loads[w] {
				w = v
			}
		}
		seeds[w] = append(seeds[w], t)
		// Zero-cost tasks still occupy a slot: bias the load by a hair
		// so unknown-cost work deals round-robin instead of piling onto
		// worker 0.
		loads[w] += t.Cost + 1e-9
	}
	deques := make([]*deque, workers)
	for w, s := range seeds {
		for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
			s[i], s[j] = s[j], s[i]
		}
		deques[w] = &deque{tasks: s}
	}

	// Tasks never spawn tasks, so a full scan finding every deque empty
	// means no work remains and the worker can exit.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				t, ok := deques[self].popTop()
				if !ok {
					// Deterministic victim scan from the next worker up.
					for off := 1; off < workers && !ok; off++ {
						t, ok = deques[(self+off)%workers].stealBottom()
					}
					if !ok {
						return
					}
				}
				if err := fn(ctx, t.Index); err != nil {
					fail(t.Index, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	// Workers only cancel after recording an error, so a cancelled
	// context with no recorded error means the parent was cancelled.
	return ctx.Err()
}
