package parallel

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunTasksRunsAll checks every task runs exactly once at several
// worker counts, including workers exceeding the task count.
func TestRunTasksRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = Task{Index: i, Cost: float64((i * 37) % 11)}
		}
		var hits [n]atomic.Int64
		err := RunTasks(context.Background(), workers, tasks, func(_ context.Context, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestRunTasksSkewedSeeding pins the seed-then-publish construction:
// deques are built from fully-formed seed lists, so worker counts that
// leave some deques empty (workers == n with one giant task hogging
// the LPT deal) and all-zero-cost round-robin deals must still run
// every task exactly once. Guards the refactor that moved seeding off
// the live deques.
func TestRunTasksSkewedSeeding(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		costs   func(i int) float64
	}{
		{"one-giant-rest-zero", 16, func(i int) float64 {
			if i == 0 {
				return 1e6
			}
			return 0
		}},
		{"all-zero-round-robin", 5, func(int) float64 { return 0 }},
		{"workers-equal-tasks", 16, func(i int) float64 { return float64(i) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const n = 16
			tasks := make([]Task, n)
			for i := range tasks {
				tasks[i] = Task{Index: i, Cost: tc.costs(i)}
			}
			var hits [n]atomic.Int64
			err := RunTasks(context.Background(), tc.workers, tasks, func(_ context.Context, i int) error {
				hits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("task %d ran %d times", i, c)
				}
			}
		})
	}
}

// TestRunTasksDeterministicResults is the determinism-order guard for
// the stealing scheduler: with per-task durations chosen to force heavy
// steal traffic, index-slotted results must be identical at every
// worker count and across repetitions — steal interleaving may change
// who runs a task and when, never what the task computes or where its
// result lands.
func TestRunTasksDeterministicResults(t *testing.T) {
	const n = 64
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Index: i, Cost: float64((i * 13) % 7)}
	}
	run := func(workers, rep int) [n]int {
		var out [n]int
		err := RunTasks(context.Background(), workers, tasks, func(_ context.Context, i int) error {
			// Durations vary with the repetition so every run interleaves
			// differently; the slotted output must not.
			time.Sleep(time.Duration((i*rep+rep)%5) * 100 * time.Microsecond)
			out[i] = i*i + 1
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d rep=%d: %v", workers, rep, err)
		}
		return out
	}
	want := run(1, 0)
	for _, workers := range []int{2, 4, 8} {
		for rep := 1; rep <= 3; rep++ {
			if got := run(workers, rep); got != want {
				t.Fatalf("workers=%d rep=%d: results differ from sequential", workers, rep)
			}
		}
	}
}

// TestRunTasksSequentialOrderIsCostMajor pins the sequential fast
// path's schedule: descending cost, ties broken by ascending index —
// the same total order the parallel seeding uses.
func TestRunTasksSequentialOrderIsCostMajor(t *testing.T) {
	tasks := []Task{
		{Index: 0, Cost: 1},
		{Index: 1, Cost: 5},
		{Index: 2, Cost: 5},
		{Index: 3, Cost: 0},
		{Index: 4, Cost: 9},
	}
	var order []int
	err := RunTasks(context.Background(), 1, tasks, func(_ context.Context, i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 1, 2, 0, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("sequential order %v, want %v", order, want)
		}
	}
}

// TestRunTasksLowestIndexError mirrors the ForEach error contract on
// the weighted entry point.
func TestRunTasksLowestIndexError(t *testing.T) {
	const n = 50
	tasks := make([]Task, n)
	for i := range tasks {
		// Identical costs: the schedule is index order, so index 7 fails
		// before 23 and 41 under one worker.
		tasks[i] = Task{Index: i}
	}
	for _, workers := range []int{1, 4} {
		err := RunTasks(context.Background(), workers, tasks, func(_ context.Context, i int) error {
			if i == 7 || i == 23 || i == 41 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
		got := err.Error()
		if workers == 1 && got != "cell 7 failed" {
			t.Fatalf("sequential: got %q, want cell 7", got)
		}
		if got != "cell 7 failed" && got != "cell 23 failed" && got != "cell 41 failed" {
			t.Fatalf("workers=%d: unexpected error %q", workers, got)
		}
	}
}

// TestRunTasksStealsFromBlockedWorker is the starvation guard: a worker
// holding one long-running task must not strand the rest of its deque.
// The long task is seeded first (highest cost) and blocks until every
// small task has finished; LPT tie-breaking parks some small tasks
// behind it on the same deque, so the run can only complete if idle
// workers steal them out.
func TestRunTasksStealsFromBlockedWorker(t *testing.T) {
	const smalls = 20
	var done sync.WaitGroup
	done.Add(smalls)
	release := make(chan struct{})
	go func() {
		done.Wait()
		close(release)
	}()

	tasks := make([]Task, smalls+1)
	tasks[0] = Task{Index: 0, Cost: 10} // the blocker: seeded first onto worker 0
	for i := 1; i <= smalls; i++ {
		tasks[i] = Task{Index: i, Cost: 1}
	}
	err := RunTasks(context.Background(), 2, tasks, func(_ context.Context, i int) error {
		if i == 0 {
			select {
			case <-release:
				return nil
			case <-time.After(20 * time.Second):
				return fmt.Errorf("starvation: blocked worker's queued tasks were never stolen")
			}
		}
		done.Done()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunTasksZeroAndParentCancel covers the empty input and
// pre-cancelled parent edges.
func TestRunTasksZeroAndParentCancel(t *testing.T) {
	if err := RunTasks(context.Background(), 4, nil, func(context.Context, int) error {
		t.Fatal("fn called for empty task list")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunTasks(ctx, 4, []Task{{Index: 0}}, func(context.Context, int) error { return nil })
	if err == nil {
		t.Fatal("pre-cancelled parent not reported")
	}
}
