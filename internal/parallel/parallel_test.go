package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var mu sync.Mutex
		seen := make(map[int]int)
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != n {
			t.Fatalf("workers=%d: ran %d of %d indices", workers, len(seen), n)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachSlotsAreDeterministic(t *testing.T) {
	const n = 64
	out := make([]int, n)
	err := ForEach(context.Background(), 8, n, func(_ context.Context, i int) error {
		out[i] = i * i // each worker writes only its own slot
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d holds %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("cell %d failed", i) }
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 50, func(_ context.Context, i int) error {
			if i == 7 || i == 23 || i == 41 {
				return boom(i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
		// With one worker, index 7 fails first and nothing later runs.
		// With several, any of the failing cells may run, but the
		// reported error must be the lowest-indexed one that failed.
		if got := err.Error(); got != "cell 7 failed" && workers > 1 &&
			got != "cell 23 failed" && got != "cell 41 failed" {
			t.Fatalf("workers=%d: unexpected error %q", workers, got)
		}
		if workers == 1 && err.Error() != "cell 7 failed" {
			t.Fatalf("sequential: got %q, want cell 7", err.Error())
		}
	}
}

func TestForEachErrorCancelsRemaining(t *testing.T) {
	var started atomic.Int64
	sentinel := errors.New("boom")
	err := ForEach(context.Background(), 2, 1000, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return sentinel
		}
		// Yield so every worker interleaves instead of draining its
		// whole deque in one scheduler quantum; the cancellation check
		// runs between tasks, so interleaved workers observe it early.
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if n := started.Load(); n > 100 {
		t.Fatalf("cancellation ineffective: %d cells started after failure", n)
	}
}

func TestForEachParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 2, 100000, func(ctx context.Context, i int) error {
			ran.Add(1)
			time.Sleep(100 * time.Microsecond)
			return nil
		})
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not stop after parent cancellation")
	}
	if ran.Load() == 100000 {
		t.Fatal("cancellation had no effect")
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(context.Context, int) error {
		t.Fatal("fn called for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGridCoversEveryCell(t *testing.T) {
	const rows, cols = 9, 13
	var hits [rows][cols]atomic.Int64
	err := RunGrid(context.Background(), 8, rows, cols, func(_ context.Context, r, c int) error {
		hits[r][c].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if n := hits[r][c].Load(); n != 1 {
				t.Fatalf("cell (%d,%d) ran %d times", r, c, n)
			}
		}
	}
}

func TestRunGridRowMajorIndexing(t *testing.T) {
	var cells sync.Map
	err := RunGrid(context.Background(), 1, 3, 4, func(_ context.Context, r, c int) error {
		cells.Store([2]int{r, c}, true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if _, ok := cells.Load([2]int{r, c}); !ok {
				t.Fatalf("cell (%d,%d) never ran", r, c)
			}
		}
	}
}

func TestChunks(t *testing.T) {
	cases := []struct {
		n, size int
		want    [][2]int
	}{
		{0, 4, nil},
		{-3, 4, nil},
		{10, 0, [][2]int{{0, 10}}},
		{10, -1, [][2]int{{0, 10}}},
		{10, 4, [][2]int{{0, 4}, {4, 8}, {8, 10}}},
		{8, 4, [][2]int{{0, 4}, {4, 8}}},
		{3, 4, [][2]int{{0, 3}}},
		{1, 1, [][2]int{{0, 1}}},
	}
	for _, tc := range cases {
		got := Chunks(tc.n, tc.size)
		if len(got) != len(tc.want) {
			t.Fatalf("Chunks(%d, %d) = %v, want %v", tc.n, tc.size, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("Chunks(%d, %d) = %v, want %v", tc.n, tc.size, got, tc.want)
			}
		}
	}
	// Spans must tile [0, n) exactly, in order.
	for _, span := range Chunks(23, 5) {
		if span[1] <= span[0] {
			t.Fatalf("empty span %v", span)
		}
	}
}
