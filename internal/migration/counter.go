package migration

import "multitherm/internal/floorplan"

// CounterBased is the performance-counter migration policy of §6.1:
// the OS tracks every thread's register-file accesses per adjusted
// cycle (cycle counts are frequency-adjusted, and the power estimate is
// rescaled by the cubic frequency relation when DVFS is active) and,
// when at least two cores report changed critical hotspots, runs the
// Figure 4 matching: cores in order of hotspot imbalance each receive
// the least-intense remaining thread for their critical resource.
type CounterBased struct {
	crit      criticalTracker
	decisions int
}

// counterIntensityScale converts a register-file access rate (0..1)
// into an equivalent steady local temperature rise in °C.
const counterIntensityScale = 12.0

// NewCounterBased constructs the controller.
func NewCounterBased() *CounterBased { return &CounterBased{} }

// Name implements Controller.
func (cb *CounterBased) Name() string { return "counter-based migration" }

// Decisions returns how many migration decisions were actuated.
func (cb *CounterBased) Decisions() int { return cb.decisions }

// Step implements Controller.
func (cb *CounterBased) Step(ctx *Context) ([]int, bool) {
	if !ctx.Sched.MayDecide(float64(ctx.Now)) {
		return nil, false
	}
	hs := readHotspots(ctx)
	decide, throttled := shouldDecide(ctx, &cb.crit, hs)
	if !decide {
		return nil, false
	}
	cb.crit.ack(hs)
	cb.decisions++

	// Thread intensity from windowed performance counters: accesses per
	// adjusted cycle for the resource in question. The adjusted-cycle
	// normalization already folds out the current frequency; the cubic
	// DynScale relation applies when converting an intensity observed at
	// reduced speed into a full-speed heating estimate — for ranking
	// threads the monotone transform preserves order, so the raw
	// intensity is the ranking key, exactly as access-per-adjusted-cycle
	// ratios are in the paper.
	intensity := func(proc int, kind floorplan.UnitKind) float64 {
		w := ctx.Sched.Process(proc).Window
		if kind == floorplan.KindFPRegFile {
			return w.FPIntensity()
		}
		return w.IntIntensity()
	}
	// Counter intensities are accesses per adjusted cycle in [0,1];
	// intensityScale converts them to the ~degrees-Celsius scale of the
	// hotspot readings (the local thermal resistance of a register file
	// times its full-activity power).
	return decideAssignment(ctx, hs, intensity, counterIntensityScale, throttled), true
}
