// Package migration implements the outer control loop of Figure 1: the
// OS-level thread-migration policies that balance heat production
// across cores (§2.5, §6). Two mechanisms are provided, matching the
// paper's third taxonomy axis: counter-based migration, which estimates
// per-thread resource heat intensity from hardware performance counters
// (§6.1, Figure 4), and sensor-based migration, which profiles threads
// through the on-chip thermal sensors and the inner PI loop's recorded
// scaling factors, maintaining an OS-managed thread×core thermal-trend
// table (§6.3, Figure 6).
//
//mtlint:deterministic
package migration

import (
	"math"
	"sort"

	"multitherm/internal/core"
	"multitherm/internal/floorplan"
	"multitherm/internal/osched"
	"multitherm/internal/sensor"
	"multitherm/internal/units"
)

// Context is the OS-visible system state a migration controller acts
// on. The simulator assembles one per control tick.
type Context struct {
	Now  units.Seconds // absolute time on the simulation clock
	Tick int64         // control interval index

	Sched      *osched.Scheduler
	BlockTemps units.TempVec // die-block temperatures
	Throttler  core.Throttler
	FP         *floorplan.Floorplan
	Bank       *sensor.Bank // chip hotspot sensor bank

	// DynScale is the dynamic-power scaling relation (cubic in the
	// paper) used to rescale observations taken at reduced frequency
	// back to full-speed intensity (§6.1, §6.3). The result is a
	// dimensionless power multiplier, not another frequency scale.
	DynScale func(s units.ScaleFactor) float64
}

// Controller decides thread placements. Step is called every control
// interval; it returns a new core→process assignment and true when the
// controller wants a migration decision enacted.
type Controller interface {
	Name() string
	Step(ctx *Context) (assign []int, decided bool)
}

// coreHotspot summarizes one core's watched hotspots for the decision
// algorithm.
type coreHotspot struct {
	core      int
	critical  floorplan.UnitKind // hotter of the two register files
	imbalance float64            // T(critical) − T(secondary)
	critTemp  float64
	tInt, tFP float64 // sensor temperatures of the two register files
}

// readHotspots extracts per-core hotspot state from the sensor bank.
func readHotspots(ctx *Context) []coreHotspot {
	n := ctx.Sched.NumCores()
	out := make([]coreHotspot, n)
	for c := 0; c < n; c++ {
		tInt, tFP := readCoreRegFiles(ctx, c)
		h := coreHotspot{core: c, tInt: tInt, tFP: tFP}
		if tInt >= tFP {
			h.critical, h.critTemp, h.imbalance = floorplan.KindIntRegFile, tInt, tInt-tFP
		} else {
			h.critical, h.critTemp, h.imbalance = floorplan.KindFPRegFile, tFP, tFP-tInt
		}
		out[c] = h
	}
	return out
}

// readCoreRegFiles reads the two register-file sensors of a core
// straight off the shared bank — the per-tick path filters in place
// rather than allocating a ForCore sub-bank.
func readCoreRegFiles(ctx *Context, core int) (tInt, tFP float64) {
	for i := range ctx.Bank.Sensors {
		s := &ctx.Bank.Sensors[i]
		if s.Core != core {
			continue
		}
		v := float64(s.Read(ctx.BlockTemps, ctx.Tick))
		switch ctx.FP.Blocks[s.Block].Kind {
		case floorplan.KindIntRegFile:
			tInt = v
		case floorplan.KindFPRegFile:
			tFP = v
		}
	}
	return tInt, tFP
}

// decideAssignment implements the matching algorithm of Figure 4:
// cores in order of thermal urgency each take the remaining process
// least able to heat their constrained hotspots, and a migration is
// only done where the assignment differs. Two refinements over the bare
// pseudocode (both discussed in DESIGN.md):
//
//   - The candidate cost considers both watched hotspots — cost(c,p) =
//     max over RF of (T_rf(c) + α·intensity(p, rf)) — which reduces to
//     "least intense for the critical hotspot" when one hotspot
//     dominates, but avoids placing a chip-wide-hot thread on a core
//     whose two hotspots happen to be balanced.
//
// A migration clears any in-progress stop-go stall on the receiving
// core (core.StopGoThrottler.NotifyMigration): the context switch is a
// thermal response in its own right, and the trip check re-protects the
// silicon on the next control interval.
//
// intensity(proc, kind) returns the estimated full-speed heat intensity
// of the process on the given register file; intensityScale (α)
// converts it to the temperature scale of the sensor readings.
// throttled marks cores whose inner-loop control was active in the last
// window: their incumbent thread pays an eviction bias so heat sources
// rotate off the silicon they just heated instead of camping on it.
func decideAssignment(ctx *Context, hs []coreHotspot, intensity func(proc int, kind floorplan.UnitKind) float64, intensityScale float64, throttled []bool) []int {
	order := append([]coreHotspot(nil), hs...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].critTemp > order[j].critTemp })

	// evictionBiasC is the cost handicap (in °C-equivalent) applied to
	// keeping a thread on a core whose thermal control was recently
	// engaged. It converts the matching from a purely static placement
	// into the rotating heat-balancing behaviour the paper observes
	// (Figure 5: threads cycle through a core every few epochs).
	const evictionBiasC = 2.0

	n := ctx.Sched.NumCores()
	// The candidate pool is the currently running set: with time-shared
	// multiprogramming (more processes than cores) the fairness rotation
	// owns which processes run; migration only re-places them.
	pool := ctx.Sched.Assignment()
	remaining := make(map[int]bool, len(pool))
	for _, p := range pool {
		remaining[p] = true
	}
	assign := make([]int, n)
	match := func(h coreHotspot) {
		best, bestVal := -1, math.Inf(1)
		// Deterministic iteration over the remaining set.
		for _, p := range pool {
			if !remaining[p] {
				continue
			}
			v := h.tInt + intensityScale*intensity(p, floorplan.KindIntRegFile)
			if f := h.tFP + intensityScale*intensity(p, floorplan.KindFPRegFile); f > v {
				v = f
			}
			if ctx.Sched.ProcessOn(h.core).ID == p {
				if len(throttled) == n && throttled[h.core] {
					v += evictionBiasC
				} else {
					// Tie-break in favour of the incumbent to avoid
					// gratuitous migrations ("the best candidate ... will
					// be itself, in which case a migration is not done").
					v -= 1e-9
				}
			}
			if v < bestVal {
				best, bestVal = p, v
			}
		}
		assign[h.core] = best
		delete(remaining, best)
	}
	for _, h := range order {
		match(h)
	}
	return assign
}

// shouldDecide implements the decision trigger of §6.1: migration
// decisions are actuated when the local thermal control of at least two
// individual cores signals — either because their critical hotspot
// changed identity, or because their controllers are actively
// throttling (the thermal trap that accompanies every stop-go stall and
// every depressed DVFS operating point). Requests within the 10 ms
// epoch are ignored (the scheduler enforces the epoch).
func shouldDecide(ctx *Context, ct *criticalTracker, hs []coreHotspot) (bool, []bool) {
	throttled := make([]bool, ctx.Sched.NumCores())
	active := 0
	for c := range throttled {
		if ctx.Throttler.Trend(c).AvgScale < 0.98 {
			throttled[c] = true
			active++
		}
	}
	return ct.changedCores(hs) >= 2 || active >= 2, throttled
}

// criticalTracker tracks each core's critical-hotspot identity between
// decisions.
type criticalTracker struct {
	last    []floorplan.UnitKind
	started bool
}

// changedCores returns how many cores' critical hotspot differs from
// the last acknowledged state; Ack records the current state.
func (ct *criticalTracker) changedCores(hs []coreHotspot) int {
	if !ct.started {
		return len(hs) // first observation: everything is news
	}
	n := 0
	for i, h := range hs {
		if ct.last[i] != h.critical {
			n++
		}
	}
	return n
}

func (ct *criticalTracker) ack(hs []coreHotspot) {
	if ct.last == nil {
		ct.last = make([]floorplan.UnitKind, len(hs))
	}
	for i, h := range hs {
		ct.last[i] = h.critical
	}
	ct.started = true
}
