package migration

import (
	"multitherm/internal/floorplan"
)

// tableEntry is one cell of the OS-managed thread×core thermal table of
// Figure 6: the thread's observed full-speed-equivalent thermal
// pressure on each watched resource while running on that core.
type tableEntry struct {
	pInt, pFP float64
	valid     bool
}

// SensorBased is the thermal-sensor migration policy of §6.3: instead
// of counter proxies it profiles threads through sensor readings over
// time, scaled by the frequency factors recorded by the inner PI loop
// (the feedback path of Figure 1). Because a thread shows different
// apparent intensity on different cores (edge effects, neighbours), the
// OS keeps a thread×core grid; until the grid supports estimating all
// thread-core combinations, migration targets are chosen to profile
// more (Figure 6), after which decisions use the Figure 4 matching on
// sensor-estimated intensities.
type SensorBased struct {
	table  [][]tableEntry // [process][core]
	nCores int
	crit   criticalTracker

	decisions int
	profiles  int

	// blend weights new observations against the existing table entry.
	blend float64
}

// NewSensorBased constructs the controller for nProcs processes on
// nCores cores (nProcs ≥ nCores; equal in the paper's configuration).
func NewSensorBased(nProcs, nCores int) *SensorBased {
	sb := &SensorBased{blend: 0.5, nCores: nCores}
	sb.table = make([][]tableEntry, nProcs)
	for i := range sb.table {
		sb.table[i] = make([]tableEntry, nCores)
	}
	return sb
}

// Name implements Controller.
func (sb *SensorBased) Name() string { return "sensor-based migration" }

// Decisions returns the number of algorithmic migration decisions made
// (excluding profiling moves).
func (sb *SensorBased) Decisions() int { return sb.decisions }

// ProfilingMoves returns the number of profiling rotations issued while
// filling the thermal table.
func (sb *SensorBased) ProfilingMoves() int { return sb.profiles }

// record captures sensor gradient and frequency-scaling data for every
// running (thread, core) pair — the "obtain sensor gradient and
// frequency scaling data from cores / record in OS-managed thread-core
// thermal table" steps of Figure 6.
func (sb *SensorBased) record(ctx *Context) {
	n := ctx.Sched.NumCores()
	// Chip-mean die temperature as the reference against which a
	// thread's local pressure is measured.
	var mean float64
	for _, t := range ctx.BlockTemps {
		mean += t
	}
	mean /= float64(len(ctx.BlockTemps))

	for c := 0; c < n; c++ {
		proc := ctx.Sched.ProcessOn(c).ID
		trend := ctx.Throttler.Trend(c)
		scale := trend.AvgScale
		if scale <= 0 {
			scale = 0.01 // core never ran this window; pressure data is weak
		}
		dyn := ctx.DynScale(scale)
		if dyn < 1e-3 {
			dyn = 1e-3
		}
		tInt, tFP := readCoreRegFiles(ctx, c)
		// Pressure: hotspot elevation over the chip mean, rescaled by
		// the cubic relation to full-speed equivalent (§6.3: "each
		// recorded temperature trend must be scaled down by a cubic
		// relation according to the recorded frequency scaling factor" —
		// here scaled *up* because we normalize to full speed).
		obs := tableEntry{pInt: (tInt - mean) / dyn, pFP: (tFP - mean) / dyn, valid: true}
		cur := &sb.table[proc][c]
		if cur.valid {
			cur.pInt = (1-sb.blend)*cur.pInt + sb.blend*obs.pInt
			cur.pFP = (1-sb.blend)*cur.pFP + sb.blend*obs.pFP
		} else {
			*cur = obs
		}
		ctx.Throttler.ResetTrend(c)
	}
}

// covered reports whether the table supports estimating all thread-core
// combinations: every thread profiled on at least one core and every
// core tested with at least two threads (§6.3).
func (sb *SensorBased) covered() bool {
	nProcs, nCores := len(sb.table), sb.nCores
	for p := 0; p < nProcs; p++ {
		any := false
		for c := 0; c < nCores; c++ {
			if sb.table[p][c].valid {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	for c := 0; c < nCores; c++ {
		count := 0
		for p := 0; p < nProcs; p++ {
			if sb.table[p][c].valid {
				count++
			}
		}
		if count < 2 {
			return false
		}
	}
	return true
}

// estimate computes per-thread resource intensities from the table
// using an additive thread+core decomposition: first pass takes each
// thread's mean observed pressure, second pass removes per-core bias
// (a core next to the cache reads cooler, §6.3).
func (sb *SensorBased) estimate() (intensInt, intensFP []float64) {
	n := len(sb.table)
	nc := sb.nCores
	intensInt = make([]float64, n)
	intensFP = make([]float64, n)
	rowMean := func(p int, fp bool) (float64, int) {
		var s float64
		var k int
		for c := 0; c < nc; c++ {
			if e := sb.table[p][c]; e.valid {
				if fp {
					s += e.pFP
				} else {
					s += e.pInt
				}
				k++
			}
		}
		return s, k
	}
	// First pass: raw thread means.
	for p := 0; p < n; p++ {
		if s, k := rowMean(p, false); k > 0 {
			intensInt[p] = s / float64(k)
		}
		if s, k := rowMean(p, true); k > 0 {
			intensFP[p] = s / float64(k)
		}
	}
	// Second pass: estimate per-core bias as the mean residual of
	// observations on that core, then re-average residual-corrected
	// observations per thread.
	biasInt := make([]float64, nc)
	biasFP := make([]float64, nc)
	for c := 0; c < nc; c++ {
		var sI, sF float64
		var k int
		for p := 0; p < n; p++ {
			if e := sb.table[p][c]; e.valid {
				sI += e.pInt - intensInt[p]
				sF += e.pFP - intensFP[p]
				k++
			}
		}
		if k > 0 {
			biasInt[c] = sI / float64(k)
			biasFP[c] = sF / float64(k)
		}
	}
	for p := 0; p < n; p++ {
		var sI, sF float64
		var k int
		for c := 0; c < nc; c++ {
			if e := sb.table[p][c]; e.valid {
				sI += e.pInt - biasInt[c]
				sF += e.pFP - biasFP[c]
				k++
			}
		}
		if k > 0 {
			intensInt[p] = sI / float64(k)
			intensFP[p] = sF / float64(k)
		}
	}
	return intensInt, intensFP
}

// Step implements Controller, following the Figure 6 flow: on each
// kernel-trap opportunity record sensor data; if the table is not yet
// sufficient, set migration targets to profile more; otherwise compute
// estimated intensities and run the decision algorithm.
func (sb *SensorBased) Step(ctx *Context) ([]int, bool) {
	if !ctx.Sched.MayDecide(float64(ctx.Now)) {
		return nil, false
	}
	// Evaluate the trigger before recording: record() consumes (and
	// resets) the inner loop's trend windows.
	hs := readHotspots(ctx)
	decide, throttled := shouldDecide(ctx, &sb.crit, hs)
	sb.record(ctx)

	n := ctx.Sched.NumCores()
	if !sb.covered() {
		// Profiling rotation: shift every thread to the next core so the
		// grid fills at one new diagonal per epoch.
		cur := ctx.Sched.Assignment()
		next := make([]int, n)
		for c := 0; c < n; c++ {
			next[c] = cur[(c+1)%n]
		}
		sb.profiles++
		return next, true
	}

	if !decide {
		return nil, false
	}
	sb.crit.ack(hs)
	sb.decisions++

	intensInt, intensFP := sb.estimate()
	intensity := func(proc int, kind floorplan.UnitKind) float64 {
		if kind == floorplan.KindFPRegFile {
			return intensFP[proc]
		}
		return intensInt[proc]
	}
	// Sensor-based intensities are already in full-speed-equivalent
	// degrees of hotspot pressure, so they combine with the readings at
	// unit scale.
	return decideAssignment(ctx, hs, intensity, 1.0, throttled), true
}
