package migration

import (
	"testing"

	"multitherm/internal/control"
	"multitherm/internal/core"
	"multitherm/internal/floorplan"
	"multitherm/internal/osched"
	"multitherm/internal/sensor"
	"multitherm/internal/units"
)

// stubThrottler provides settable trend data.
type stubThrottler struct {
	scales []units.ScaleFactor
	resets int
}

var _ core.Throttler = (*stubThrottler)(nil)

func (s *stubThrottler) Name() string { return "stub" }
func (s *stubThrottler) Decide(units.Seconds, int64, units.TempVec) []core.CoreCommand {
	return nil
}
func (s *stubThrottler) Trend(coreID int) control.TrendReport {
	return control.TrendReport{AvgScale: s.scales[coreID], Samples: 10}
}
func (s *stubThrottler) ResetTrend(int)      { s.resets++ }
func (s *stubThrottler) NotifyMigration(int) {}

type fixture struct {
	fp    *floorplan.Floorplan
	bank  *sensor.Bank
	sched *osched.Scheduler
	th    *stubThrottler
	temps units.TempVec
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	fp := floorplan.CMP4()
	bank, err := sensor.CoreHotspots(fp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bank.Sensors {
		bank.Sensors[i].Quantization = 0
	}
	f := &fixture{
		fp:    fp,
		bank:  bank,
		sched: osched.NewScheduler([]string{"gzip", "twolf", "ammp", "lucas"}),
		th:    &stubThrottler{scales: []units.ScaleFactor{1, 1, 1, 1}},
		temps: make(units.TempVec, len(fp.Blocks)),
	}
	for i := range f.temps {
		f.temps[i] = 70
	}
	return f
}

func (f *fixture) setBlock(name string, temp float64) {
	idx := f.fp.BlockIndex(name)
	if idx < 0 {
		panic("unknown block " + name)
	}
	f.temps[idx] = temp
}

func (f *fixture) ctx(now float64, tick int64) *Context {
	return &Context{
		Now: units.Seconds(now), Tick: tick,
		Sched: f.sched, BlockTemps: f.temps,
		Throttler: f.th, FP: f.fp, Bank: f.bank,
		DynScale: func(s units.ScaleFactor) float64 { return float64(s * s * s) },
	}
}

// setCounters gives process p a counter window with the given register
// intensities.
func (f *fixture) setCounters(p int, intI, intF float64) {
	proc := f.sched.Process(p)
	proc.Window = osched.Counters{}
	proc.Account(1e-3, osched.Counters{
		AdjCycles:   1000,
		IntRFAccess: intI * 1000,
		FPRFAccess:  intF * 1000,
	})
}

func TestReadHotspotsIdentifiesCritical(t *testing.T) {
	f := newFixture(t)
	f.setBlock("c0_iregfile", 83)
	f.setBlock("c0_fpregfile", 76)
	f.setBlock("c1_fpregfile", 82)
	f.setBlock("c1_iregfile", 78)
	hs := readHotspots(f.ctx(0, 0))
	if hs[0].critical != floorplan.KindIntRegFile {
		t.Errorf("core 0 critical = %v, want int regfile", hs[0].critical)
	}
	if hs[0].imbalance != 7 {
		t.Errorf("core 0 imbalance = %v, want 7", hs[0].imbalance)
	}
	if hs[1].critical != floorplan.KindFPRegFile {
		t.Errorf("core 1 critical = %v, want fp regfile", hs[1].critical)
	}
}

func TestCounterBasedSwapsComplementaryThreads(t *testing.T) {
	f := newFixture(t)
	// Core 0 runs proc 0 (int-hot), core 2 runs proc 2 (fp-hot); their
	// counters say proc 0 is int-intense and proc 2 fp-intense. The
	// matching should send the fp-intense thread to the int-hot core
	// and vice versa.
	f.setBlock("c0_iregfile", 84)
	f.setBlock("c0_fpregfile", 74)
	f.setBlock("c2_fpregfile", 84)
	f.setBlock("c2_iregfile", 74)
	f.setCounters(0, 0.9, 0.05) // gzip: integer monster
	f.setCounters(1, 0.5, 0.10)
	f.setCounters(2, 0.1, 0.85) // ammp: fp monster
	f.setCounters(3, 0.3, 0.60)

	cb := NewCounterBased()
	assign, decided := cb.Step(f.ctx(0, 0))
	if !decided {
		t.Fatal("no decision on first eligible step")
	}
	// Core 0 (int-hot, imbalance 10) must get the least int-intense
	// thread: proc 2. Core 2 (fp-hot) must get the least fp-intense
	// remaining: proc 0.
	if assign[0] != 2 {
		t.Errorf("core 0 assigned proc %d, want 2 (least int-intense)", assign[0])
	}
	if assign[2] != 0 {
		t.Errorf("core 2 assigned proc %d, want 0 (least fp-intense)", assign[2])
	}
	if cb.Decisions() != 1 {
		t.Errorf("decisions = %d", cb.Decisions())
	}
}

func TestCounterBasedRespectsEpoch(t *testing.T) {
	f := newFixture(t)
	cb := NewCounterBased()
	if _, decided := cb.Step(f.ctx(0, 0)); !decided {
		t.Fatal("first decision blocked")
	}
	if _, err := f.sched.Apply(0, f.sched.Assignment()); err != nil {
		t.Fatal(err)
	}
	if _, decided := cb.Step(f.ctx(5e-3, 180)); decided {
		t.Error("decision inside the 10 ms epoch")
	}
}

func TestCounterBasedTriggerNeedsTwoChangedCriticals(t *testing.T) {
	f := newFixture(t)
	cb := NewCounterBased()
	// Prime the tracker.
	f.setBlock("c0_iregfile", 80)
	f.setBlock("c1_iregfile", 80)
	if _, decided := cb.Step(f.ctx(0, 0)); !decided {
		t.Fatal("priming decision blocked")
	}
	// One core flips critical hotspot: not enough.
	f.setBlock("c0_iregfile", 70)
	f.setBlock("c0_fpregfile", 82)
	if _, decided := cb.Step(f.ctx(20e-3, 720)); decided {
		t.Error("decision with only one changed critical")
	}
	// Second core flips: now it fires.
	f.setBlock("c1_iregfile", 70)
	f.setBlock("c1_fpregfile", 82)
	if _, decided := cb.Step(f.ctx(40e-3, 1440)); !decided {
		t.Error("decision missing with two changed criticals")
	}
}

func TestDecideAssignmentIsPermutation(t *testing.T) {
	f := newFixture(t)
	f.setCounters(0, 0.9, 0.1)
	f.setCounters(1, 0.8, 0.2)
	f.setCounters(2, 0.2, 0.8)
	f.setCounters(3, 0.1, 0.9)
	ctx := f.ctx(0, 0)
	hs := readHotspots(ctx)
	assign := decideAssignment(ctx, hs, func(p int, k floorplan.UnitKind) float64 {
		w := f.sched.Process(p).Window
		if k == floorplan.KindFPRegFile {
			return w.FPIntensity()
		}
		return w.IntIntensity()
	}, counterIntensityScale, nil)
	seen := map[int]bool{}
	for _, p := range assign {
		if seen[p] {
			t.Fatalf("assignment %v is not a permutation", assign)
		}
		seen[p] = true
	}
}

func TestDecideAssignmentPrefersIncumbentOnTies(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx(0, 0)
	hs := readHotspots(ctx)
	assign := decideAssignment(ctx, hs, func(int, floorplan.UnitKind) float64 { return 0.5 }, counterIntensityScale, nil)
	for c, p := range assign {
		if p != c {
			t.Errorf("tie produced gratuitous migration: core %d -> proc %d", c, p)
		}
	}
}

func TestSensorBasedProfilesUntilCovered(t *testing.T) {
	f := newFixture(t)
	sb := NewSensorBased(4, 4)
	now := 0.0
	rotations := 0
	for i := 0; i < 10 && !sb.covered(); i++ {
		assign, decided := sb.Step(f.ctx(now, int64(i)))
		if decided {
			if _, err := f.sched.Apply(now, assign); err != nil {
				t.Fatal(err)
			}
			rotations++
		}
		now += osched.DefaultMigrationEpoch
	}
	if !sb.covered() {
		t.Fatal("table never covered after 10 epochs")
	}
	// A single rotation gives every core a second profiled thread (two
	// grid diagonals), so only 1–3 profiling moves are needed; any
	// further decided steps come from the post-coverage decision path.
	if sb.ProfilingMoves() < 1 || sb.ProfilingMoves() > 3 {
		t.Errorf("profiling moves = %d, want 1..3", sb.ProfilingMoves())
	}
	if rotations < sb.ProfilingMoves() {
		t.Errorf("applied decisions %d fewer than profiling moves %d", rotations, sb.ProfilingMoves())
	}
}

func TestSensorBasedEstimatesComplementaryIntensities(t *testing.T) {
	f := newFixture(t)
	sb := NewSensorBased(4, 4)
	// Proc p heats IRF when p∈{0,1}, FPRF when p∈{2,3}, with magnitude
	// differences. Simulate epochs with the thread placements rotating,
	// setting block temps according to which thread runs where.
	heatInt := []float64{8, 5, 1, 2}
	heatFP := []float64{1, 2, 8, 5}
	now := 0.0
	for epoch := 0; epoch < 8; epoch++ {
		for c := 0; c < 4; c++ {
			p := f.sched.ProcessOn(c).ID
			f.setBlock(f.fp.Blocks[f.fp.FindCoreBlock(c, floorplan.KindIntRegFile)].Name, 70+heatInt[p])
			f.setBlock(f.fp.Blocks[f.fp.FindCoreBlock(c, floorplan.KindFPRegFile)].Name, 70+heatFP[p])
		}
		assign, decided := sb.Step(f.ctx(now, int64(epoch)))
		if decided {
			if _, err := f.sched.Apply(now, assign); err != nil {
				t.Fatal(err)
			}
		}
		now += osched.DefaultMigrationEpoch
	}
	intI, intF := sb.estimate()
	// Ordering must match the injected heats.
	if !(intI[0] > intI[1] && intI[1] > intI[3] && intI[3] > intI[2]) {
		t.Errorf("int intensity ordering wrong: %v (heat %v)", intI, heatInt)
	}
	if !(intF[2] > intF[3] && intF[3] > intF[1] && intF[1] > intF[0]) {
		t.Errorf("fp intensity ordering wrong: %v (heat %v)", intF, heatFP)
	}
}

func TestSensorBasedScalesByRecordedFrequency(t *testing.T) {
	// A thread observed at half speed must be credited with ~8× the
	// apparent pressure (cubic rescale to full-speed equivalent).
	f := newFixture(t)
	sb := NewSensorBased(4, 4)
	f.th.scales = []units.ScaleFactor{0.5, 1, 1, 1}
	f.setBlock("c0_iregfile", 74) // +4 over the 70 mean-ish
	sb.record(f.ctx(0, 0))
	e00 := sb.table[0][0]
	if !e00.valid {
		t.Fatal("no entry recorded")
	}
	f2 := newFixture(t)
	sb2 := NewSensorBased(4, 4)
	f2.setBlock("c0_iregfile", 74)
	sb2.record(f2.ctx(0, 0))
	full := sb2.table[0][0]
	ratio := e00.pInt / full.pInt
	if ratio < 6 || ratio > 10 {
		t.Errorf("half-speed pressure rescale ratio = %v, want ≈8 (cubic)", ratio)
	}
}

func TestSensorBasedStepEpochGate(t *testing.T) {
	f := newFixture(t)
	sb := NewSensorBased(4, 4)
	if _, decided := sb.Step(f.ctx(0, 0)); !decided {
		t.Fatal("first profiling step blocked")
	}
	if _, err := f.sched.Apply(0, f.sched.Assignment()); err != nil {
		t.Fatal(err)
	}
	if _, decided := sb.Step(f.ctx(1e-3, 36)); decided {
		t.Error("step inside epoch not gated")
	}
}

func TestControllerNames(t *testing.T) {
	if NewCounterBased().Name() != "counter-based migration" {
		t.Error("counter name")
	}
	if NewSensorBased(4, 4).Name() != "sensor-based migration" {
		t.Error("sensor name")
	}
}
