package floorplan

import (
	"fmt"
	"strings"
)

// Render draws the floorplan as ASCII art, `cols` characters wide, with
// each block filled by a letter keyed in the legend. Useful for
// inspecting layouts from the command line and in documentation.
func (f *Floorplan) Render(cols int) string {
	if cols < 16 {
		cols = 16
	}
	rows := int(float64(cols) * f.ChipH / f.ChipW / 2) // terminal cells are ~2:1
	if rows < 8 {
		rows = 8
	}
	glyphs := "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	glyphOf := func(i int) byte { return glyphs[i%len(glyphs)] }

	blockAt := func(x, y float64) int {
		for i, b := range f.Blocks {
			if x >= b.X && x < b.X+b.W && y >= b.Y && y < b.Y+b.H {
				return i
			}
		}
		return -1
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%.1f x %.1f mm, %d blocks, %d cores)\n",
		f.Name, f.ChipW*1e3, f.ChipH*1e3, len(f.Blocks), f.NumCores())
	for r := rows - 1; r >= 0; r-- {
		for c := 0; c < cols; c++ {
			x := (float64(c) + 0.5) / float64(cols) * f.ChipW
			y := (float64(r) + 0.5) / float64(rows) * f.ChipH
			if i := blockAt(x, y); i >= 0 {
				sb.WriteByte(glyphOf(i))
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("legend: ")
	for i, b := range f.Blocks {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%c=%s", glyphOf(i), b.Name)
	}
	sb.WriteByte('\n')
	return sb.String()
}
