package floorplan

import (
	"fmt"
	"sync"
)

// mm converts millimeters to meters for layout literals.
const mm = 1e-3

// coreTemplate is the per-core unit layout in a 4 mm × 10 mm tile,
// expressed in core-local millimeter coordinates. It mirrors the
// out-of-order PowerPC core of paper Table 3: two FXUs' worth of integer
// execution, two FPUs, two LSUs, one BXU, separate integer and floating
// point register files (the two watched hotspots), L1 caches, branch
// predictor tables, and rename/issue front-end logic.
var coreTemplate = []Block{
	{Name: "l1d", Kind: KindL1D, X: 0, Y: 0, W: 2, H: 2},
	{Name: "l1i", Kind: KindL1I, X: 2, Y: 0, W: 2, H: 2},
	{Name: "lsu", Kind: KindLSU, X: 0, Y: 2, W: 2, H: 1.5},
	{Name: "bxu", Kind: KindBXU, X: 2, Y: 2, W: 1, H: 1.5},
	{Name: "bpred", Kind: KindBPred, X: 3, Y: 2, W: 1, H: 1.5},
	{Name: "fxu", Kind: KindFXU, X: 0, Y: 3.5, W: 2.8, H: 2},
	{Name: "iregfile", Kind: KindIntRegFile, X: 2.8, Y: 3.5, W: 1.2, H: 2},
	{Name: "fpu", Kind: KindFPU, X: 0, Y: 5.5, W: 2.8, H: 2},
	{Name: "fpregfile", Kind: KindFPRegFile, X: 2.8, Y: 5.5, W: 1.2, H: 2},
	{Name: "rename", Kind: KindRename, X: 0, Y: 7.5, W: 2, H: 2.5},
	{Name: "issueq", Kind: KindIssueQ, X: 2, Y: 7.5, W: 2, H: 2.5},
}

const (
	coreTileW = 4.0  // mm
	coreTileH = 10.0 // mm
)

// CMP4 builds the 4-core chip of paper §3.1–3.2: four identical
// out-of-order cores in a row across the top of the die, connected
// through a shared L2 cache strip along the bottom ("we have extended
// our layout for 4 cores and reduced the core size accordingly"). The
// chip is 16 mm × 16 mm in a 90 nm-class technology.
//
// The layout is built once and shared: floorplans are immutable after
// construction, and returning a stable pointer lets downstream caches
// (thermal templates, warmup states) key on floorplan identity.
var CMP4 = sync.OnceValue(buildCMP4)

func buildCMP4() *Floorplan {
	const (
		chipW = 16.0 // mm
		chipH = 16.0 // mm
		l2H   = 6.0  // mm
	)
	f := &Floorplan{Name: "cmp4", ChipW: chipW * mm, ChipH: chipH * mm}
	f.Blocks = append(f.Blocks, Block{
		Name: "l2", Kind: KindL2, Core: SharedCore,
		X: 0, Y: 0, W: chipW * mm, H: l2H * mm,
	})
	for core := 0; core < 4; core++ {
		xOff := float64(core) * coreTileW
		for _, t := range coreTemplate {
			f.Blocks = append(f.Blocks, Block{
				Name: fmt.Sprintf("c%d_%s", core, t.Name),
				Kind: t.Kind,
				Core: core,
				X:    (xOff + t.X) * mm,
				Y:    (l2H + t.Y) * mm,
				W:    t.W * mm,
				H:    t.H * mm,
			})
		}
	}
	return f
}

// Banias builds a single-core layout standing in for the Pentium M
// Banias processor used for the paper's real-hardware measurements
// (Table 1): one core with the same unit complement plus an on-die 1 MB
// L2, and a thermal diode position at the edge of the die (the paper
// reads "a single thermal diode at the edge of the processor" via ACPI).
// The diode is represented by the block named "diode_site": callers
// place the virtual sensor there.
//
// Like CMP4, the layout is built once and shared.
var Banias = sync.OnceValue(buildBanias)

func buildBanias() *Floorplan {
	const (
		chipW = 10.0
		chipH = 10.0
		l2H   = 3.6
	)
	f := &Floorplan{Name: "banias", ChipW: chipW * mm, ChipH: chipH * mm}
	f.Blocks = append(f.Blocks, Block{
		Name: "l2", Kind: KindL2, Core: SharedCore,
		X: 0, Y: 0, W: chipW * mm, H: l2H * mm,
	})
	// Scale the 4×10 core template onto a 9×6.4 region, leaving a 1 mm
	// × 6.4 mm edge strip for the diode site at the die edge.
	const (
		coreW = 9.0
		coreH = chipH - l2H
		sx    = coreW / coreTileW
		sy    = coreH / coreTileH
	)
	for _, t := range coreTemplate {
		f.Blocks = append(f.Blocks, Block{
			Name: t.Name,
			Kind: t.Kind,
			Core: 0,
			X:    t.X * sx * mm,
			Y:    (l2H + t.Y*sy) * mm,
			W:    t.W * sx * mm,
			H:    t.H * sy * mm,
		})
	}
	f.Blocks = append(f.Blocks, Block{
		Name: "diode_site", Kind: KindOther, Core: 0,
		X: coreW * mm, Y: l2H * mm, W: (chipW - coreW) * mm, H: coreH * mm,
	})
	return f
}
