package floorplan

import (
	"fmt"
	"strconv"
	"strings"

	"multitherm/internal/memo"
)

// Parametric many-core grid generator. The paper's own floorplan is the
// fixed 4-core PowerPC CMP; scaling its thermal-management questions to
// 16-1024 cores needs families of layouts that exist only by
// construction. The generator builds Rows x Cols grids of square core
// tiles in three heterogeneity patterns (echoing the mixed
// K6-III/K6-2/PowerPC grid of the ATMI exemplar) with optional
// per-position cooling, and memoizes the result so repeated calls with
// the same spec return the same *Floorplan pointer — which is what the
// thermal template and warmup caches key on.

// GridPattern selects how core classes are assigned to grid positions.
type GridPattern int

const (
	// PatternHomogeneous makes every tile a perf-class core.
	PatternHomogeneous GridPattern = iota
	// PatternCheckerboard alternates perf and eco cores by parity.
	PatternCheckerboard
	// PatternMixedRows cycles perf/mid/eco classes row by row, the
	// closest analogue of the exemplar's three-processor-type grid.
	PatternMixedRows
)

func (p GridPattern) String() string {
	switch p {
	case PatternHomogeneous:
		return "homogeneous"
	case PatternCheckerboard:
		return "checkerboard"
	case PatternMixedRows:
		return "mixedrows"
	}
	return fmt.Sprintf("GridPattern(%d)", int(p))
}

// CoolingPolicy selects how per-position cooling boost is distributed.
type CoolingPolicy int

const (
	// CoolingUniform applies no per-position boost.
	CoolingUniform CoolingPolicy = iota
	// CoolingEdgeBoost gives tiles on the grid rim extra conductance
	// to ambient (airflow reaches the periphery of the sink first).
	CoolingEdgeBoost
	// CoolingCenterBoost gives interior tiles the extra conductance
	// (e.g. a spot cooler over the die center).
	CoolingCenterBoost
)

func (c CoolingPolicy) String() string {
	switch c {
	case CoolingUniform:
		return "uniform"
	case CoolingEdgeBoost:
		return "edgeboost"
	case CoolingCenterBoost:
		return "centerboost"
	}
	return fmt.Sprintf("CoolingPolicy(%d)", int(c))
}

// GridSpec parameterizes a generated floorplan. The zero value is not
// valid; Rows and Cols must be at least 1. The struct is comparable and
// used as a memoization key, so equal specs yield identical pointers.
type GridSpec struct {
	Rows, Cols int
	Pattern    GridPattern
	Cooling    CoolingPolicy
	// BoostWK is the per-tile cooling boost in W/K applied by the
	// cooling policy; 0 selects a default of 0.5 W/K per boosted tile.
	BoostWK float64
}

// DefaultGridBoost is the per-tile cooling boost, in W/K, used when a
// spec selects a non-uniform cooling policy but leaves BoostWK zero.
const DefaultGridBoost = 0.5

// MaxGridCores bounds generated grids; 32x32 covers the 16-1024-core
// range the sparse solver targets.
const MaxGridCores = 1024

// gridTileSide is the edge length of one square core tile.
const gridTileSide = 2 * mm

// gridClass is one heterogeneous core flavor. All classes fill the
// tile exactly; they differ in how area is split between the execution
// strip and the cache/register blocks, and in the DVFS frequency cap
// the experiments apply per class.
type gridClass struct {
	name     string
	execH    float64 // height of the bottom fxu strip
	cacheW   float64 // width of the l1d block in the top region
	maxScale float64 // per-class DVFS cap, fraction of nominal
}

var gridClasses = [3]gridClass{
	{name: "perf", execH: 1.2 * mm, cacheW: 0.8 * mm, maxScale: 1.0},
	{name: "mid", execH: 1.0 * mm, cacheW: 1.0 * mm, maxScale: 0.85},
	{name: "eco", execH: 0.8 * mm, cacheW: 1.2 * mm, maxScale: 0.7},
}

// classAt maps a grid position to its core class index.
func classAt(spec GridSpec, r, c int) int {
	switch spec.Pattern {
	case PatternCheckerboard:
		if (r+c)%2 == 1 {
			return 2 // eco
		}
		return 0 // perf
	case PatternMixedRows:
		return r % 3
	default:
		return 0
	}
}

// boosted reports whether the tile at (r, c) receives the cooling
// boost under the spec's policy.
func boosted(spec GridSpec, r, c int) bool {
	onEdge := r == 0 || c == 0 || r == spec.Rows-1 || c == spec.Cols-1
	switch spec.Cooling {
	case CoolingEdgeBoost:
		return onEdge
	case CoolingCenterBoost:
		return !onEdge
	default:
		return false
	}
}

var gridCache memo.Map[GridSpec, *Floorplan]

// Grid returns the generated floorplan for spec, building and
// validating it on first use. Equal specs return the same pointer, so
// downstream pointer-keyed caches (thermal templates, warmup states)
// coalesce across callers.
func Grid(spec GridSpec) (*Floorplan, error) {
	return gridCache.LoadOrStore(spec, func() (*Floorplan, error) {
		return buildGrid(spec)
	})
}

func buildGrid(spec GridSpec) (*Floorplan, error) {
	if spec.Rows < 1 || spec.Cols < 1 {
		return nil, fmt.Errorf("floorplan: grid spec %dx%d: dimensions must be >= 1", spec.Rows, spec.Cols)
	}
	// Bound each dimension before multiplying: Rows*Cols on two large
	// ints can wrap negative (or small positive) and slip past the
	// product check into a multi-gigabyte build.
	if spec.Rows > MaxGridCores || spec.Cols > MaxGridCores || spec.Rows*spec.Cols > MaxGridCores {
		return nil, fmt.Errorf("floorplan: grid spec %dx%d exceeds the %d-core limit",
			spec.Rows, spec.Cols, MaxGridCores)
	}
	boost := spec.BoostWK
	if boost < 0 {
		return nil, fmt.Errorf("floorplan: grid spec %dx%d: negative cooling boost", spec.Rows, spec.Cols)
	}
	if boost == 0 { //mtlint:allow floatcmp zero is the explicit "use the default" sentinel, not a computed value
		boost = DefaultGridBoost
	}
	fp := &Floorplan{
		Name:  fmt.Sprintf("grid%dx%d-%s-%s", spec.Rows, spec.Cols, spec.Pattern, spec.Cooling),
		ChipW: float64(spec.Cols) * gridTileSide,
		ChipH: float64(spec.Rows) * gridTileSide,
	}
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			core := r*spec.Cols + c
			cls := gridClasses[classAt(spec, r, c)]
			x0 := float64(c) * gridTileSide
			y0 := float64(r) * gridTileSide
			var b float64
			if boosted(spec, r, c) {
				b = boost
			}
			fp.Blocks = append(fp.Blocks, tileBlocks(core, cls, x0, y0, b)...)
		}
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	return fp, nil
}

// tileBlocks lays out one core tile: an execution strip across the
// bottom, the L1D in the upper-left, and the two register files (the
// sensor-bearing hot spots, paper §5.1) stacked in the upper-right.
// The four rectangles tile the square exactly, so generated chips have
// coverage 1 and a connected conduction network.
func tileBlocks(core int, cls gridClass, x0, y0, boost float64) []Block {
	topH := gridTileSide - cls.execH
	regW := gridTileSide - cls.cacheW
	// The tile's cooling boost is split across its blocks by area so
	// the boost density is uniform over the tile.
	perArea := boost / (gridTileSide * gridTileSide)
	mk := func(suffix string, kind UnitKind, x, y, w, h float64) Block {
		return Block{
			Name: fmt.Sprintf("c%d_%s", core, suffix),
			Kind: kind, Core: core,
			X: x, Y: y, W: w, H: h,
			CoolingBoost: perArea * w * h,
		}
	}
	return []Block{
		mk("fxu", KindFXU, x0, y0, gridTileSide, cls.execH),
		mk("l1d", KindL1D, x0, y0+cls.execH, cls.cacheW, topH),
		mk("iregfile", KindIntRegFile, x0+cls.cacheW, y0+cls.execH, regW, topH/2),
		mk("fpregfile", KindFPRegFile, x0+cls.cacheW, y0+cls.execH+topH/2, regW, topH/2),
	}
}

// GridCoreScales returns the per-core DVFS frequency cap (fraction of
// nominal) implied by the spec's heterogeneity pattern, indexed by core
// number. Experiments convert these to their typed scale factors when
// wiring a simulation config.
func GridCoreScales(spec GridSpec) []float64 {
	out := make([]float64, spec.Rows*spec.Cols)
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			out[r*spec.Cols+c] = gridClasses[classAt(spec, r, c)].maxScale
		}
	}
	return out
}

// ParseGridSpec parses a "RxC" string (e.g. "16x16") into a GridSpec
// with the mixed-rows pattern and edge-boost cooling defaults the
// many-core experiment sweeps.
func ParseGridSpec(s string) (GridSpec, error) {
	// Strict split + Atoi rather than Sscanf: Sscanf's "%dx%d" silently
	// accepts trailing garbage ("4x8x2", "4x8 ") and panics on nothing,
	// but reporting those as success builds the wrong grid.
	rs, cs, ok := strings.Cut(s, "x")
	if !ok {
		return GridSpec{}, fmt.Errorf("floorplan: cannot parse grid %q (want RxC, e.g. 16x16)", s)
	}
	rows, err := strconv.Atoi(rs)
	if err != nil {
		return GridSpec{}, fmt.Errorf("floorplan: cannot parse grid %q (want RxC, e.g. 16x16): %v", s, err)
	}
	cols, err := strconv.Atoi(cs)
	if err != nil {
		return GridSpec{}, fmt.Errorf("floorplan: cannot parse grid %q (want RxC, e.g. 16x16): %v", s, err)
	}
	spec := GridSpec{Rows: rows, Cols: cols, Pattern: PatternMixedRows, Cooling: CoolingEdgeBoost}
	if _, err := Grid(spec); err != nil {
		return GridSpec{}, err
	}
	return spec, nil
}
