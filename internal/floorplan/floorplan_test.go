package floorplan

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCMP4Valid(t *testing.T) {
	f := CMP4()
	if err := f.Validate(); err != nil {
		t.Fatalf("CMP4 invalid: %v", err)
	}
	if got := f.NumCores(); got != 4 {
		t.Errorf("NumCores = %d, want 4", got)
	}
	if got := len(f.Blocks); got != 4*11+1 {
		t.Errorf("block count = %d, want 45", got)
	}
	if c := f.Coverage(); math.Abs(c-1) > 1e-6 {
		t.Errorf("coverage = %v, want 1.0", c)
	}
}

func TestBaniasValid(t *testing.T) {
	f := Banias()
	if err := f.Validate(); err != nil {
		t.Fatalf("Banias invalid: %v", err)
	}
	if f.NumCores() != 1 {
		t.Errorf("NumCores = %d, want 1", f.NumCores())
	}
	if f.BlockIndex("diode_site") < 0 {
		t.Error("missing diode_site block")
	}
	if c := f.Coverage(); math.Abs(c-1) > 1e-6 {
		t.Errorf("coverage = %v, want 1.0", c)
	}
}

func TestEveryCoreHasWatchedHotspots(t *testing.T) {
	// §5.1: thermal sensors sit at the two register file units on each
	// core; the floorplan must provide both for every core.
	f := CMP4()
	for core := 0; core < 4; core++ {
		if f.FindCoreBlock(core, KindIntRegFile) < 0 {
			t.Errorf("core %d missing integer register file", core)
		}
		if f.FindCoreBlock(core, KindFPRegFile) < 0 {
			t.Errorf("core %d missing fp register file", core)
		}
	}
}

func TestFindCoreBlockMissing(t *testing.T) {
	f := CMP4()
	if got := f.FindCoreBlock(0, KindOther); got != -1 {
		t.Errorf("FindCoreBlock for absent kind = %d, want -1", got)
	}
	if got := f.FindCoreBlock(9, KindFXU); got != -1 {
		t.Errorf("FindCoreBlock for absent core = %d, want -1", got)
	}
}

func TestCoreBlocksCount(t *testing.T) {
	f := CMP4()
	for core := 0; core < 4; core++ {
		if got := len(f.CoreBlocks(core)); got != 11 {
			t.Errorf("core %d has %d blocks, want 11", core, got)
		}
	}
	// Shared L2 belongs to no core.
	for core := 0; core < 4; core++ {
		for _, i := range f.CoreBlocks(core) {
			if f.Blocks[i].Kind == KindL2 {
				t.Error("L2 attributed to a core")
			}
		}
	}
}

func TestSharedEdgeVertical(t *testing.T) {
	f := &Floorplan{Name: "t", ChipW: 4 * mm, ChipH: 2 * mm, Blocks: []Block{
		{Name: "a", X: 0, Y: 0, W: 2 * mm, H: 2 * mm},
		{Name: "b", X: 2 * mm, Y: 0.5 * mm, W: 2 * mm, H: 1 * mm},
	}}
	l, d := f.SharedEdge(0, 1)
	if math.Abs(l-1*mm) > 1e-12 {
		t.Errorf("shared length = %v, want 1mm", l)
	}
	if math.Abs(d-2*mm) > 1e-12 {
		t.Errorf("normal distance = %v, want 2mm", d)
	}
}

func TestSharedEdgeNone(t *testing.T) {
	f := &Floorplan{Name: "t", ChipW: 10 * mm, ChipH: 10 * mm, Blocks: []Block{
		{Name: "a", X: 0, Y: 0, W: 1 * mm, H: 1 * mm},
		{Name: "b", X: 5 * mm, Y: 5 * mm, W: 1 * mm, H: 1 * mm},
	}}
	if l, _ := f.SharedEdge(0, 1); l != 0 {
		t.Errorf("disjoint blocks report shared edge %v", l)
	}
}

func TestSharedEdgeCornerTouchIsNotAdjacent(t *testing.T) {
	f := &Floorplan{Name: "t", ChipW: 2 * mm, ChipH: 2 * mm, Blocks: []Block{
		{Name: "a", X: 0, Y: 0, W: 1 * mm, H: 1 * mm},
		{Name: "b", X: 1 * mm, Y: 1 * mm, W: 1 * mm, H: 1 * mm},
	}}
	if l, _ := f.SharedEdge(0, 1); l != 0 {
		t.Errorf("corner-touching blocks report shared edge %v", l)
	}
}

func TestAdjacencySymmetricAndComplete(t *testing.T) {
	f := CMP4()
	adj := f.Adjacencies()
	if len(adj) == 0 {
		t.Fatal("no adjacencies found")
	}
	// Each core's blocks must form a connected cluster with the L2 strip
	// reachable from every core (heat flows core→L2 laterally).
	l2 := f.BlockIndex("l2")
	reach := map[int]bool{l2: true}
	frontier := []int{l2}
	neighbors := map[int][]int{}
	for _, a := range adj {
		neighbors[a.I] = append(neighbors[a.I], a.J)
		neighbors[a.J] = append(neighbors[a.J], a.I)
	}
	for len(frontier) > 0 {
		n := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, m := range neighbors[n] {
			if !reach[m] {
				reach[m] = true
				frontier = append(frontier, m)
			}
		}
	}
	for i := range f.Blocks {
		if !reach[i] {
			t.Errorf("block %q not laterally connected to the rest of the die", f.Blocks[i].Name)
		}
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	f := &Floorplan{Name: "bad", ChipW: 2 * mm, ChipH: 2 * mm, Blocks: []Block{
		{Name: "a", X: 0, Y: 0, W: 1.5 * mm, H: 1 * mm},
		{Name: "b", X: 1 * mm, Y: 0, W: 1 * mm, H: 1 * mm},
	}}
	if err := f.Validate(); err == nil {
		t.Error("overlap not detected")
	}
}

func TestValidateCatchesOutOfBounds(t *testing.T) {
	f := &Floorplan{Name: "bad", ChipW: 1 * mm, ChipH: 1 * mm, Blocks: []Block{
		{Name: "a", X: 0.5 * mm, Y: 0, W: 1 * mm, H: 1 * mm},
	}}
	if err := f.Validate(); err == nil {
		t.Error("out-of-bounds block not detected")
	}
}

func TestValidateCatchesDuplicateNames(t *testing.T) {
	f := &Floorplan{Name: "bad", ChipW: 4 * mm, ChipH: 1 * mm, Blocks: []Block{
		{Name: "a", X: 0, Y: 0, W: 1 * mm, H: 1 * mm},
		{Name: "a", X: 2 * mm, Y: 0, W: 1 * mm, H: 1 * mm},
	}}
	if err := f.Validate(); err == nil {
		t.Error("duplicate names not detected")
	}
}

func TestValidateCatchesEmptyAndBadDims(t *testing.T) {
	if err := (&Floorplan{Name: "e", ChipW: 1, ChipH: 1}).Validate(); err == nil {
		t.Error("empty floorplan not detected")
	}
	f := &Floorplan{Name: "z", ChipW: 0, ChipH: 1, Blocks: []Block{{Name: "a", W: 1, H: 1}}}
	if err := f.Validate(); err == nil {
		t.Error("zero chip width not detected")
	}
	g := &Floorplan{Name: "n", ChipW: 1, ChipH: 1, Blocks: []Block{{Name: "a", W: 0, H: 1}}}
	if err := g.Validate(); err == nil {
		t.Error("zero block width not detected")
	}
}

func TestBlockGeometryAccessors(t *testing.T) {
	b := Block{X: 1, Y: 2, W: 3, H: 4}
	if b.Area() != 12 {
		t.Errorf("Area = %v", b.Area())
	}
	if b.CenterX() != 2.5 || b.CenterY() != 4 {
		t.Errorf("center = (%v,%v)", b.CenterX(), b.CenterY())
	}
}

func TestUnitKindString(t *testing.T) {
	if KindIntRegFile.String() != "iregfile" {
		t.Errorf("got %q", KindIntRegFile.String())
	}
	if UnitKind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

// Property: shared-edge computation is symmetric in its arguments.
func TestSharedEdgeSymmetryProperty(t *testing.T) {
	f := CMP4()
	n := len(f.Blocks)
	check := func(i, j uint8) bool {
		a, b := int(i)%n, int(j)%n
		if a == b {
			return true
		}
		l1, d1 := f.SharedEdge(a, b)
		l2, d2 := f.SharedEdge(b, a)
		return l1 == l2 && d1 == d2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRenderFloorplan(t *testing.T) {
	out := CMP4().Render(64)
	if !strings.Contains(out, "cmp4") || !strings.Contains(out, "legend:") {
		t.Errorf("render missing header/legend:\n%s", out)
	}
	// Every block must appear in the legend.
	for _, b := range CMP4().Blocks {
		if !strings.Contains(out, b.Name) {
			t.Errorf("legend missing block %s", b.Name)
		}
	}
	// Tiny width clamps rather than panicking.
	if small := Banias().Render(1); small == "" {
		t.Error("small render empty")
	}
}
