// Package floorplan describes the physical layout of processor dies:
// rectangular functional blocks with positions, sizes, core ownership,
// and adjacency. A floorplan is the required geometric input to the
// thermal model (paper §3.2), which needs "the locations and adjacencies
// of various processor components".
package floorplan

import (
	"fmt"
	"math"
	"sort"
)

// UnitKind classifies a block by microarchitectural function. The DTM
// policies care about this classification: integer benchmarks stress
// KindIntRegFile, floating-point benchmarks stress KindFPRegFile
// (paper §3.4), and those two units carry the per-core thermal sensors
// (§5.1).
type UnitKind int

const (
	KindOther      UnitKind = iota
	KindFXU                 // fixed-point (integer) execution units
	KindFPU                 // floating-point execution units
	KindLSU                 // load/store units
	KindBXU                 // branch execution unit
	KindIntRegFile          // integer register file + associated logic
	KindFPRegFile           // floating-point register file + associated logic
	KindL1I                 // L1 instruction cache
	KindL1D                 // L1 data cache
	KindBPred               // branch predictor tables
	KindRename              // rename/dispatch logic
	KindIssueQ              // issue queues / reservation stations
	KindL2                  // shared L2 cache

	// NumUnitKinds is the number of distinct unit kinds; useful for
	// fixed-size per-kind arrays.
	NumUnitKinds
)

var kindNames = map[UnitKind]string{
	KindOther: "other", KindFXU: "fxu", KindFPU: "fpu", KindLSU: "lsu",
	KindBXU: "bxu", KindIntRegFile: "iregfile", KindFPRegFile: "fpregfile",
	KindL1I: "l1i", KindL1D: "l1d", KindBPred: "bpred",
	KindRename: "rename", KindIssueQ: "issueq", KindL2: "l2",
}

func (k UnitKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("UnitKind(%d)", int(k))
}

// SharedCore marks blocks (such as the L2) not owned by any single core.
const SharedCore = -1

// Block is one rectangular floorplan unit. Coordinates are in meters
// with the origin at the chip's lower-left corner.
type Block struct {
	Name string
	Kind UnitKind
	Core int // owning core index, or SharedCore
	X, Y float64
	W, H float64

	// CoolingBoost is extra thermal conductance from this block
	// straight to ambient, in W/K, on top of the package path the
	// thermal model derives from geometry. Zero for ordinary blocks;
	// generated many-core floorplans use it to model per-position
	// cooling (e.g. stronger heat-sink airflow over edge tiles).
	CoolingBoost float64
}

// Area returns the block area in m².
func (b Block) Area() float64 { return b.W * b.H }

// CenterX returns the x coordinate of the block center.
func (b Block) CenterX() float64 { return b.X + b.W/2 }

// CenterY returns the y coordinate of the block center.
func (b Block) CenterY() float64 { return b.Y + b.H/2 }

// Floorplan is a complete die layout.
type Floorplan struct {
	Name   string
	ChipW  float64 // chip extent in x, meters
	ChipH  float64 // chip extent in y, meters
	Blocks []Block
}

// NumCores returns the number of distinct owning cores (excluding
// shared blocks).
func (f *Floorplan) NumCores() int {
	seen := map[int]bool{}
	for _, b := range f.Blocks {
		if b.Core != SharedCore {
			seen[b.Core] = true
		}
	}
	return len(seen)
}

// BlockIndex returns the index of the named block, or -1.
func (f *Floorplan) BlockIndex(name string) int {
	for i, b := range f.Blocks {
		if b.Name == name {
			return i
		}
	}
	return -1
}

// CoreBlocks returns the indices of all blocks owned by the given core,
// sorted by name for determinism.
func (f *Floorplan) CoreBlocks(core int) []int {
	var out []int
	for i, b := range f.Blocks {
		if b.Core == core {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(i, j int) bool { return f.Blocks[out[i]].Name < f.Blocks[out[j]].Name })
	return out
}

// FindCoreBlock returns the index of core's block of the given kind, or
// -1 if the core has none.
func (f *Floorplan) FindCoreBlock(core int, kind UnitKind) int {
	for i, b := range f.Blocks {
		if b.Core == core && b.Kind == kind {
			return i
		}
	}
	return -1
}

// ChipArea returns the total chip area in m².
func (f *Floorplan) ChipArea() float64 { return f.ChipW * f.ChipH }

const geomEps = 1e-9 // meters; ~1 nm slop for float layout arithmetic

// SharedEdge returns the length of the boundary shared by blocks i and
// j, and the center-to-center distance along the normal of that edge.
// Returns (0, 0) if the blocks are not adjacent.
func (f *Floorplan) SharedEdge(i, j int) (length, dist float64) {
	a, b := f.Blocks[i], f.Blocks[j]
	// Vertical shared edge: a's right == b's left or vice versa.
	if math.Abs(a.X+a.W-b.X) < geomEps || math.Abs(b.X+b.W-a.X) < geomEps {
		lo := math.Max(a.Y, b.Y)
		hi := math.Min(a.Y+a.H, b.Y+b.H)
		if hi-lo > geomEps {
			return hi - lo, a.W/2 + b.W/2
		}
	}
	// Horizontal shared edge: a's top == b's bottom or vice versa.
	if math.Abs(a.Y+a.H-b.Y) < geomEps || math.Abs(b.Y+b.H-a.Y) < geomEps {
		lo := math.Max(a.X, b.X)
		hi := math.Min(a.X+a.W, b.X+b.W)
		if hi-lo > geomEps {
			return hi - lo, a.H/2 + b.H/2
		}
	}
	return 0, 0
}

// Adjacency lists every adjacent block pair with its shared edge data.
type Adjacency struct {
	I, J   int
	Length float64 // shared edge length, m
	Dist   float64 // center-to-center distance normal to the edge, m
}

// Adjacencies computes all adjacent pairs (i < j).
func (f *Floorplan) Adjacencies() []Adjacency {
	var out []Adjacency
	for i := range f.Blocks {
		for j := i + 1; j < len(f.Blocks); j++ {
			if l, d := f.SharedEdge(i, j); l > 0 {
				out = append(out, Adjacency{I: i, J: j, Length: l, Dist: d})
			}
		}
	}
	return out
}

// Validate checks structural soundness: non-empty, positive dimensions,
// unique names, blocks within chip bounds, and no overlapping blocks.
func (f *Floorplan) Validate() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("floorplan %q: no blocks", f.Name)
	}
	if f.ChipW <= 0 || f.ChipH <= 0 {
		return fmt.Errorf("floorplan %q: non-positive chip dimensions", f.Name)
	}
	names := map[string]bool{}
	for _, b := range f.Blocks {
		if b.Name == "" {
			return fmt.Errorf("floorplan %q: block with empty name", f.Name)
		}
		if names[b.Name] {
			return fmt.Errorf("floorplan %q: duplicate block name %q", f.Name, b.Name)
		}
		names[b.Name] = true
		if b.W <= 0 || b.H <= 0 {
			return fmt.Errorf("floorplan %q: block %q has non-positive size", f.Name, b.Name)
		}
		if b.CoolingBoost < 0 {
			return fmt.Errorf("floorplan %q: block %q has negative cooling boost", f.Name, b.Name)
		}
		if b.X < -geomEps || b.Y < -geomEps ||
			b.X+b.W > f.ChipW+geomEps || b.Y+b.H > f.ChipH+geomEps {
			return fmt.Errorf("floorplan %q: block %q exceeds chip bounds", f.Name, b.Name)
		}
	}
	for i := range f.Blocks {
		for j := i + 1; j < len(f.Blocks); j++ {
			if overlaps(f.Blocks[i], f.Blocks[j]) {
				return fmt.Errorf("floorplan %q: blocks %q and %q overlap",
					f.Name, f.Blocks[i].Name, f.Blocks[j].Name)
			}
		}
	}
	return nil
}

func overlaps(a, b Block) bool {
	return a.X+a.W > b.X+geomEps && b.X+b.W > a.X+geomEps &&
		a.Y+a.H > b.Y+geomEps && b.Y+b.H > a.Y+geomEps
}

// Coverage returns the fraction of the chip area covered by blocks.
// A well-formed layout for the thermal model should cover ~100%.
func (f *Floorplan) Coverage() float64 {
	var sum float64
	for _, b := range f.Blocks {
		sum += b.Area()
	}
	return sum / f.ChipArea()
}
