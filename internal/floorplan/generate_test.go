package floorplan

import (
	"math"
	"testing"
)

func TestGridValidatesAndCovers(t *testing.T) {
	for _, tc := range []GridSpec{
		{Rows: 1, Cols: 1},
		{Rows: 2, Cols: 2, Pattern: PatternCheckerboard},
		{Rows: 4, Cols: 4, Pattern: PatternMixedRows, Cooling: CoolingEdgeBoost},
		{Rows: 3, Cols: 7, Pattern: PatternMixedRows, Cooling: CoolingCenterBoost},
		{Rows: 16, Cols: 16, Pattern: PatternMixedRows, Cooling: CoolingEdgeBoost},
		{Rows: 32, Cols: 32},
	} {
		fp, err := Grid(tc)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if got, want := fp.NumCores(), tc.Rows*tc.Cols; got != want {
			t.Errorf("%s: NumCores = %d, want %d", fp.Name, got, want)
		}
		if got, want := len(fp.Blocks), 4*tc.Rows*tc.Cols; got != want {
			t.Errorf("%s: %d blocks, want %d", fp.Name, got, want)
		}
		if cov := fp.Coverage(); math.Abs(cov-1) > 1e-9 {
			t.Errorf("%s: coverage %.12f, want 1", fp.Name, cov)
		}
	}
}

func TestGridMemoizesPointer(t *testing.T) {
	spec := GridSpec{Rows: 4, Cols: 4, Pattern: PatternMixedRows, Cooling: CoolingEdgeBoost}
	a, err := Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("equal specs returned distinct pointers; template caches will not coalesce")
	}
	// An explicit boost equal to the default is a different key and may
	// build a separate (but physically identical) instance.
	c, err := Grid(GridSpec{Rows: 4, Cols: 4, Pattern: PatternMixedRows, Cooling: CoolingEdgeBoost, BoostWK: DefaultGridBoost})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Blocks) != len(a.Blocks) {
		t.Error("explicit default boost changed the layout")
	}
}

func TestGridRejectsBadSpecs(t *testing.T) {
	for _, tc := range []GridSpec{
		{Rows: 0, Cols: 4},
		{Rows: 4, Cols: 0},
		{Rows: 33, Cols: 32}, // 1056 > MaxGridCores
		{Rows: 2, Cols: 2, BoostWK: -1},
	} {
		if _, err := Grid(tc); err == nil {
			t.Errorf("%+v: want error", tc)
		}
	}
}

// TestGridHasSensorBlocks pins the contract sensor.CoreHotspots relies
// on: every core carries both register-file hot-spot blocks.
func TestGridHasSensorBlocks(t *testing.T) {
	fp, err := Grid(GridSpec{Rows: 3, Cols: 3, Pattern: PatternMixedRows})
	if err != nil {
		t.Fatal(err)
	}
	for core := 0; core < fp.NumCores(); core++ {
		for _, kind := range []UnitKind{KindIntRegFile, KindFPRegFile, KindFXU, KindL1D} {
			if fp.FindCoreBlock(core, kind) < 0 {
				t.Errorf("core %d: missing %v block", core, kind)
			}
		}
	}
}

func TestGridCoolingPolicies(t *testing.T) {
	edge, err := Grid(GridSpec{Rows: 3, Cols: 3, Cooling: CoolingEdgeBoost})
	if err != nil {
		t.Fatal(err)
	}
	center, err := Grid(GridSpec{Rows: 3, Cols: 3, Cooling: CoolingCenterBoost})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Grid(GridSpec{Rows: 3, Cols: 3})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(fp *Floorplan, core int) float64 {
		var s float64
		for _, bi := range fp.CoreBlocks(core) {
			s += fp.Blocks[bi].CoolingBoost
		}
		return s
	}
	// Core 4 is the single interior tile of a 3x3 grid.
	if got := sum(edge, 4); got != 0 {
		t.Errorf("edge boost on interior tile: %g", got)
	}
	if got := sum(edge, 0); math.Abs(got-DefaultGridBoost) > 1e-12 {
		t.Errorf("edge boost on corner tile = %g, want %g", got, DefaultGridBoost)
	}
	if got := sum(center, 4); math.Abs(got-DefaultGridBoost) > 1e-12 {
		t.Errorf("center boost on interior tile = %g, want %g", got, DefaultGridBoost)
	}
	if got := sum(center, 0); got != 0 {
		t.Errorf("center boost on corner tile: %g", got)
	}
	for core := 0; core < 9; core++ {
		if got := sum(uniform, core); got != 0 {
			t.Errorf("uniform policy boosted core %d: %g", core, got)
		}
	}
}

func TestGridCoreScales(t *testing.T) {
	spec := GridSpec{Rows: 3, Cols: 2, Pattern: PatternMixedRows}
	scales := GridCoreScales(spec)
	if len(scales) != 6 {
		t.Fatalf("len = %d", len(scales))
	}
	// Rows cycle perf (1.0), mid (0.85), eco (0.7).
	want := []float64{1.0, 1.0, 0.85, 0.85, 0.7, 0.7}
	for i := range want {
		if scales[i] != want[i] {
			t.Errorf("core %d: scale %g, want %g", i, scales[i], want[i])
		}
	}
	hom := GridCoreScales(GridSpec{Rows: 2, Cols: 2})
	for i, s := range hom {
		if s != 1.0 {
			t.Errorf("homogeneous core %d: scale %g", i, s)
		}
	}
}

func TestParseGridSpec(t *testing.T) {
	spec, err := ParseGridSpec("4x8")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Rows != 4 || spec.Cols != 8 {
		t.Errorf("parsed %+v", spec)
	}
	if spec.Pattern != PatternMixedRows || spec.Cooling != CoolingEdgeBoost {
		t.Errorf("defaults not applied: %+v", spec)
	}
	for _, bad := range []string{
		"", "x", "4x", "x8", "0x4", "64x64", "abc",
		// Negative dimensions in either position (and both).
		"-1x4", "4x-2", "-2x-2",
		// Integer overflow: wider than any int, and a pair that is
		// individually representable but whose product overflows.
		"99999999999999999999x2", "2x99999999999999999999",
		"3037000500x3037000500",
		// Trailing garbage after a well-formed prefix.
		"4x8x2", "4x8 ",
	} {
		if _, err := ParseGridSpec(bad); err == nil {
			t.Errorf("%q: want error", bad)
		}
	}
}

func TestGridNames(t *testing.T) {
	fp, err := Grid(GridSpec{Rows: 2, Cols: 3, Pattern: PatternCheckerboard, Cooling: CoolingCenterBoost})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Name != "grid2x3-checkerboard-centerboost" {
		t.Errorf("name %q", fp.Name)
	}
	if fp.BlockIndex("c5_fpregfile") < 0 {
		t.Error("expected c5_fpregfile block")
	}
}
