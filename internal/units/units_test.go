package units

import (
	"testing"
	"unsafe"
)

// The vector views must be zero-cost: identical representation to
// []float64 so conversions are free and kernels see the same memory.
func TestViewsShareRepresentation(t *testing.T) {
	if unsafe.Sizeof(TempVec{}) != unsafe.Sizeof([]float64{}) {
		t.Fatalf("TempVec header size %d != []float64 header size %d",
			unsafe.Sizeof(TempVec{}), unsafe.Sizeof([]float64{}))
	}
	tv := MakeTempVec(4)
	raw := tv.Raw()
	raw[2] = 85.5
	if got := tv.At(2); got != 85.5 {
		t.Fatalf("Raw() does not alias backing storage: At(2) = %v", got)
	}
	tv.Set(2, 61.2)
	if raw[2] != 61.2 {
		t.Fatalf("Set not visible through Raw(): %v", raw[2])
	}
}

func TestTempVecMax(t *testing.T) {
	if _, i := (TempVec{}).Max(); i != -1 {
		t.Fatalf("empty Max index = %d, want -1", i)
	}
	tv := TempVec{45, 84.2, 61, 84.2}
	hot, i := tv.Max()
	if hot != 84.2 || i != 1 {
		t.Fatalf("Max = (%v, %d), want (84.2, 1): ties break to the first index", hot, i)
	}
}

func TestPowerVecSum(t *testing.T) {
	pv := PowerVec{1.5, 2.5, 0, 4}
	if got := pv.Sum(); got != 8 {
		t.Fatalf("Sum = %v, want 8", got)
	}
	if pv.Len() != 4 {
		t.Fatalf("Len = %d", pv.Len())
	}
	pv.Set(2, 3)
	if pv.At(2) != 3 {
		t.Fatalf("At(2) = %v after Set", pv.At(2))
	}
}

// Conversions between scalar unit types and float64 must round-trip
// bit-exactly: the types are gauges, not transformations.
func TestScalarRoundTrip(t *testing.T) {
	const x = 84.19999999999999
	if float64(Celsius(x)) != x || float64(Watts(x)) != x ||
		float64(Seconds(x)) != x || float64(Joules(x)) != x ||
		float64(ScaleFactor(x)) != x || float64(BIPS(x)) != x {
		t.Fatal("scalar unit conversion is not the identity")
	}
}
