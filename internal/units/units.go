// Package units defines the distinct physical-quantity types threaded
// through the simulator's public APIs. The paper's pipeline chains
// quantities in different dimensions — die-block power (W) → RC thermal
// state (°C) → PI/DVFS frequency scale (dimensionless in (0,1]) →
// throughput (BIPS) — and with bare float64 everywhere a watts-for-temps
// slice swap compiles silently. Each type below is a defined type over
// float64 (or []float64 for the vector views), so conversions are
// zero-cost no-ops at runtime while cross-dimension assignments become
// compile errors.
//
// The slice views TempVec and PowerVec deliberately keep float64
// elements: indexing tv[i] yields a plain float64, so inner loops are
// byte-for-byte the code they were before. The typed boundary is the
// slice header, not the element. Raw() is the audited escape hatch for
// handing the backing storage to the unit-agnostic linalg kernels; the
// unitsafety analyzer verifies every Raw() call site sits inside a
// //mtlint:zeroalloc or //mtlint:unitboundary function.
//
//mtlint:units
package units

// Seconds is a duration or instant on the simulation clock.
type Seconds float64

// Celsius is an absolute temperature in degrees Celsius. Temperature
// differences (K) share the type: the model never leaves the °C gauge.
type Celsius float64

// Watts is a power flow.
type Watts float64

// Joules is a stored or dissipated energy.
type Joules float64

// ScaleFactor is the dimensionless DVFS frequency scale in (0, 1]
// (1 = full speed, paper's s_i), also used for duty-cycle ratios.
type ScaleFactor float64

// BIPS is throughput in billions of instructions per second.
type BIPS float64

// TempVec is a vector of block or node temperatures in °C. It is a
// defined type over []float64: elements are plain float64 so hot loops
// index it without conversions, but the slice itself cannot be confused
// with a PowerVec (or any raw []float64 API) without an explicit
// conversion that unitsafety audits.
type TempVec []float64

// MakeTempVec allocates an n-element temperature vector.
func MakeTempVec(n int) TempVec { return make(TempVec, n) }

// Raw exposes the backing storage for unit-agnostic kernels (linalg
// GEMV/GEMM, escape-free solver internals). Call sites are restricted
// by the unitsafety analyzer to //mtlint:zeroalloc or
// //mtlint:unitboundary functions.
func (v TempVec) Raw() []float64 { return v }

// Len returns the number of elements.
func (v TempVec) Len() int { return len(v) }

// At returns element i as a typed temperature.
func (v TempVec) At(i int) Celsius { return Celsius(v[i]) }

// Set stores a typed temperature into element i.
func (v TempVec) Set(i int, t Celsius) { v[i] = float64(t) }

// Max returns the hottest element and its index, or (0, -1) for an
// empty vector.
func (v TempVec) Max() (Celsius, int) {
	if len(v) == 0 {
		return 0, -1
	}
	hi := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[hi] {
			hi = i
		}
	}
	return Celsius(v[hi]), hi
}

// PowerVec is a vector of per-block power inputs in watts, mirroring
// TempVec's representation (float64 elements, typed slice header).
type PowerVec []float64

// MakePowerVec allocates an n-element power vector.
func MakePowerVec(n int) PowerVec { return make(PowerVec, n) }

// Raw exposes the backing storage for unit-agnostic kernels; the same
// unitsafety audit as TempVec.Raw applies.
func (v PowerVec) Raw() []float64 { return v }

// Len returns the number of elements.
func (v PowerVec) Len() int { return len(v) }

// At returns element i as a typed power.
func (v PowerVec) At(i int) Watts { return Watts(v[i]) }

// Set stores a typed power into element i.
func (v PowerVec) Set(i int, w Watts) { v[i] = float64(w) }

// Sum returns the total power across the vector.
func (v PowerVec) Sum() Watts {
	var s float64
	for _, w := range v {
		s += w
	}
	return Watts(s)
}
