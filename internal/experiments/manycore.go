package experiments

import (
	"fmt"

	"multitherm/internal/core"
	"multitherm/internal/floorplan"
	"multitherm/internal/sim"
	"multitherm/internal/thermal"
	"multitherm/internal/units"
	"multitherm/internal/workload"
)

// The many-core extension scales the paper's taxonomy from the fixed
// 4-core CMP to generated Rows x Cols grids (16-1024 cores), the range
// the sparse Krylov thermal path exists for. Processes oversubscribe the
// cores 3:2 through the time-shared scheduler, the package is refitted
// to the die, and the per-class DVFS caps from the heterogeneity pattern
// apply — so one run exercises floorplan generation, the sparse solve,
// and the policy stack end-to-end.

// ManycoreResult reports the taxonomy's headline policies on one
// generated many-core grid.
type ManycoreResult struct {
	Spec  floorplan.GridSpec
	Name  string // generated floorplan name
	Nodes int    // thermal nodes (die blocks + package)
	Mode  string // discretization the template picked for the control period

	Specs       []core.PolicySpec
	BIPS        []units.BIPS
	Duty        []units.ScaleFactor
	Migrations  []int
	Preemptions []int
	Worst       []units.Celsius
}

// ID implements Result.
func (m *ManycoreResult) ID() string { return "manycore" }

// manycoreSpec resolves the grid under study: the -floorplan flag's
// spec when set, else the 4x4 mixed-rows default that sits just past
// the sparse crossover.
func (o Options) manycoreSpec() floorplan.GridSpec {
	if o.Grid.Rows > 0 && o.Grid.Cols > 0 {
		return o.Grid
	}
	return floorplan.GridSpec{
		Rows: 4, Cols: 4,
		Pattern: floorplan.PatternMixedRows,
		Cooling: floorplan.CoolingEdgeBoost,
	}
}

// RunManycore evaluates the headline policies on a generated grid.
func RunManycore(o Options) (*ManycoreResult, error) {
	spec := o.manycoreSpec()
	fp, err := floorplan.Grid(spec)
	if err != nil {
		return nil, err
	}
	cfg := o.simConfig()
	cfg.Floorplan = fp
	cfg.Thermal = thermal.FitParams(fp)
	scales := floorplan.GridCoreScales(spec)
	cfg.CoreMaxScale = make([]units.ScaleFactor, len(scales))
	for i, s := range scales {
		cfg.CoreMaxScale[i] = units.ScaleFactor(s)
	}

	tmpl, err := thermal.TemplateFor(fp, cfg.Thermal)
	if err != nil {
		return nil, err
	}
	d, err := tmpl.Discretization(cfg.Policy.SamplePeriod)
	if err != nil {
		return nil, err
	}

	// 3:2 process oversubscription, tiling the benchmark pool
	// cyclically so every core class sees every behavior over time.
	pool := workload.Benchmarks()
	nCores := fp.NumCores()
	nProcs := nCores + nCores/2
	if nProcs < nCores {
		nProcs = nCores
	}
	benchmarks := make([]string, nProcs)
	for i := range benchmarks {
		benchmarks[i] = pool[i%len(pool)]
	}

	out := &ManycoreResult{
		Spec: spec, Name: fp.Name,
		Nodes: tmpl.NumNodes(), Mode: d.Mode(),
		Specs: []core.PolicySpec{
			core.Baseline,
			{Mechanism: core.DVFS, Scope: core.Distributed},
			{Mechanism: core.DVFS, Scope: core.Distributed, Migration: core.SensorMigration},
		},
	}
	for _, ps := range out.Specs {
		r, err := sim.NewTimeshared(cfg, fp.Name, benchmarks, ps, 0)
		if err != nil {
			return nil, err
		}
		m, err := r.Run()
		if err != nil {
			return nil, err
		}
		out.BIPS = append(out.BIPS, m.BIPS())
		out.Duty = append(out.Duty, m.DutyCycle())
		out.Migrations = append(out.Migrations, m.Migrations)
		out.Preemptions = append(out.Preemptions, m.Preemptions)
		out.Worst = append(out.Worst, m.MaxTempC)
	}
	return out, nil
}

// Render implements Result.
func (m *ManycoreResult) Render() string {
	t := newTable(
		fmt.Sprintf("Extension: %d-core generated grid %s (%d thermal nodes, %s)",
			m.Spec.Rows*m.Spec.Cols, m.Name, m.Nodes, m.Mode),
		"policy", "BIPS", "duty", "migrations", "preemptions", "worst temp")
	for i, spec := range m.Specs {
		t.add(spec.String(),
			fmt.Sprintf("%.2f", m.BIPS[i]),
			fmt.Sprintf("%.1f%%", m.Duty[i]*100),
			fmt.Sprintf("%d", m.Migrations[i]),
			fmt.Sprintf("%d", m.Preemptions[i]),
			fmt.Sprintf("%.2f °C", m.Worst[i]))
	}
	return t.String() + "The taxonomy's ordering survives the scale-up: distributed DVFS beats\n" +
		"stop-go on aggregate throughput, and sensor migration adds headroom by\n" +
		"steering work toward the boosted-cooling rim tiles.\n"
}
