package experiments

import (
	"fmt"
	"math"

	"multitherm/internal/floorplan"
	"multitherm/internal/power"
	"multitherm/internal/sensor"
	"multitherm/internal/thermal"
	"multitherm/internal/trace"
	"multitherm/internal/uarch"
	"multitherm/internal/units"
	"multitherm/internal/workload"
)

// baniasRig is the single-core notebook system of the paper's
// real-hardware measurements (§2.1): a Pentium M Banias-class die with
// an on-die 1 MB L2, a small notebook cooling solution, and a 1 °C
// quantized ACPI thermal diode at the die edge.
type baniasRig struct {
	fp    *floorplan.Floorplan
	tp    thermal.Params
	pc    power.Config
	uc    uarch.Config
	diode *sensor.Bank
}

func newBaniasRig() (*baniasRig, error) {
	fp := floorplan.Banias()
	tp := thermal.DefaultParams()
	// Notebook package: small spreader/heatpipe sink, weak fan.
	tp.SpreaderSide = 20e-3
	tp.SinkSide = 30e-3
	tp.SinkThickness = 3e-3
	tp.SinkMassFactor = 2
	tp.ConvectionResistance = 1.2
	tp.Ambient = 40 // inside a running notebook chassis

	pc := power.DefaultConfig()
	pc.GlobalDynamicScale = 0.55 // 1.5 GHz low-voltage part

	uc := uarch.DefaultConfig()
	uc.ClockHz = 1.5e9

	diode, err := sensor.ACPIDiode(fp)
	if err != nil {
		return nil, err
	}
	return &baniasRig{fp: fp, tp: tp, pc: pc, uc: uc, diode: diode}, nil
}

// meanActivity returns the benchmark's mean per-block activity vector
// on the Banias floorplan.
func (b *baniasRig) meanActivity(name string) ([]float64, error) {
	prof, err := workload.Profile(name)
	if err != nil {
		return nil, err
	}
	prof.PhaseAmplitude = 0 // means only; phases handled separately
	gen, err := uarch.NewGenerator(b.uc, prof)
	if err != nil {
		return nil, err
	}
	tr, err := trace.Record(gen, 720)
	if err != nil {
		return nil, err
	}
	var mean uarch.Sample
	for i := 0; i < tr.Len(); i++ {
		s := tr.At(int64(i))
		for k, v := range s.Activity {
			mean.Activity[k] += v
		}
	}
	for k := range mean.Activity {
		mean.Activity[k] /= float64(tr.Len())
	}
	act := make([]float64, len(b.fp.Blocks))
	for i, blk := range b.fp.Blocks {
		act[i] = mean.ActivityFor(blk.Kind)
	}
	return act, nil
}

// steadyDiode computes the steady-state diode reading for a power
// vector derived from the given activity, iterating the
// temperature-dependent leakage to a fixed point.
func (b *baniasRig) steadyDiode(m *thermal.Model, calc *power.Calculator, act []float64) (float64, units.TempVec, error) {
	temps := make(units.TempVec, len(b.fp.Blocks))
	for i := range temps {
		temps[i] = 60
	}
	cores := []power.CoreState{{Scale: 1}}
	var ss units.TempVec
	for iter := 0; iter < 4; iter++ {
		p := calc.BlockPower(nil, act, cores, temps)
		var err error
		ss, err = m.SteadyState(p)
		if err != nil {
			return 0, nil, err
		}
		copy(temps, ss[:len(temps)])
	}
	return float64(b.diode.Sensors[0].Read(temps, 0)), temps, nil
}

// calibrate tunes the rig's dynamic scale and ambient so that the model
// reproduces the two anchor measurements of paper Table 1a: gzip at
// 70 °C and mcf at 59 °C. Everything else is then prediction.
func (b *baniasRig) calibrate() (*thermal.Model, *power.Calculator, error) {
	actG, err := b.meanActivity("gzip")
	if err != nil {
		return nil, nil, err
	}
	actM, err := b.meanActivity("mcf")
	if err != nil {
		return nil, nil, err
	}
	const wantSpread, wantMcf = 11.0, 59.0
	for iter := 0; iter < 6; iter++ {
		m, err := thermal.New(b.fp, b.tp)
		if err != nil {
			return nil, nil, err
		}
		calc, err := power.NewCalculator(b.fp, b.pc)
		if err != nil {
			return nil, nil, err
		}
		// Use unquantized readings for calibration arithmetic.
		q := b.diode.Sensors[0].Quantization
		b.diode.Sensors[0].Quantization = 0
		tg, _, err := b.steadyDiode(m, calc, actG)
		if err != nil {
			return nil, nil, err
		}
		tm, _, err := b.steadyDiode(m, calc, actM)
		b.diode.Sensors[0].Quantization = q
		if err != nil {
			return nil, nil, err
		}
		spread := tg - tm
		if math.Abs(spread-wantSpread) < 0.05 && math.Abs(tm-wantMcf) < 0.05 {
			return m, calc, nil
		}
		// The diode response is linear in dynamic power, so scale the
		// dynamic knob by the spread ratio and shift ambient to anchor
		// mcf.
		if spread > 0.1 {
			b.pc.GlobalDynamicScale *= wantSpread / spread
		}
		b.tp.Ambient += units.Celsius(wantMcf - tm)
	}
	m, err := thermal.New(b.fp, b.tp)
	if err != nil {
		return nil, nil, err
	}
	calc, err := power.NewCalculator(b.fp, b.pc)
	return m, calc, err
}

// Table1Row is one stable-benchmark measurement.
type Table1Row struct {
	Name      string
	Category  string
	MeasuredC float64
	PaperC    float64
}

// Table1Range is one non-steady-benchmark measurement.
type Table1Range struct {
	Name               string
	Category           string
	MinC, MaxC         float64
	PaperMin, PaperMax float64
}

// Table1Result reproduces paper Table 1.
type Table1Result struct {
	Stable  []Table1Row
	Ranging []Table1Range
}

// ID implements Result.
func (t *Table1Result) ID() string { return "table1" }

// RunTable1 measures the Banias model the way the paper measures the
// notebook: launch the benchmark, wait for thermal settling, and poll
// the ACPI diode (1 °C resolution). Stable benchmarks report their
// steady temperature; phase-structured benchmarks are simulated through
// several phase periods and report their observed range.
func RunTable1(o Options) (*Table1Result, error) {
	rig, err := newBaniasRig()
	if err != nil {
		return nil, err
	}
	model, calc, err := rig.calibrate()
	if err != nil {
		return nil, err
	}
	out := &Table1Result{}
	for _, row := range workload.Table1Stable {
		act, err := rig.meanActivity(row.Name)
		if err != nil {
			return nil, err
		}
		diode, _, err := rig.steadyDiode(model, calc, act)
		if err != nil {
			return nil, err
		}
		out.Stable = append(out.Stable, Table1Row{
			Name:      row.Name,
			Category:  workload.MustProfile(row.Name).Category.String(),
			MeasuredC: diode,
			PaperC:    row.TempC,
		})
	}
	for _, row := range workload.Table1Ranging {
		min, max, err := rig.rangeOf(model, calc, row.Name)
		if err != nil {
			return nil, err
		}
		out.Ranging = append(out.Ranging, Table1Range{
			Name:     row.Name,
			Category: workload.MustProfile(row.Name).Category.String(),
			MinC:     min, MaxC: max,
			PaperMin: row.Min, PaperMax: row.Max,
		})
	}
	return out, nil
}

// rangeOf simulates a phase-structured benchmark through its phases and
// returns the min/max diode readings observed, mirroring the paper's
// repeated ACPI polling.
func (b *baniasRig) rangeOf(m *thermal.Model, calc *power.Calculator, name string) (float64, float64, error) {
	prof, err := workload.Profile(name)
	if err != nil {
		return 0, 0, err
	}
	gen, err := uarch.NewGenerator(b.uc, prof)
	if err != nil {
		return 0, 0, err
	}
	// Initialize at the mean-power steady state (the paper waits a
	// minute after launch before polling).
	meanAct, err := b.meanActivity(name)
	if err != nil {
		return 0, 0, err
	}
	_, warm, err := b.steadyDiode(m, calc, meanAct)
	if err != nil {
		return 0, 0, err
	}
	temps := make(units.TempVec, len(b.fp.Blocks))
	cores := []power.CoreState{{Scale: 1}}
	p := calc.BlockPower(nil, meanAct, cores, warm)
	if err := m.InitSteadyState(p); err != nil {
		return 0, 0, err
	}

	// Walk the phase structure quasi-statically: 10 ms steps over two
	// full phase periods, polling the diode four times a second.
	const dt = 10e-3
	total := 2 * prof.PhasePeriod
	steps := int(total / dt)
	act := make([]float64, len(b.fp.Blocks))
	min, max := math.Inf(1), math.Inf(-1)
	intervalPerStep := dt / b.uc.SampleSeconds()
	pollEvery := int(0.25 / dt)
	for i := 0; i < steps; i++ {
		s := gen.Sample(int64(float64(i) * intervalPerStep))
		for j, blk := range b.fp.Blocks {
			act[j] = s.ActivityFor(blk.Kind)
		}
		calc.BlockPower(p, act, cores, m.BlockTemps(temps))
		m.SetPower(p)
		m.Step(dt)
		if i%pollEvery == 0 && i > steps/8 {
			v := float64(b.diode.Sensors[0].Read(m.BlockTemps(temps), int64(i)))
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
	}
	return min, max, nil
}

// Render implements Result.
func (t *Table1Result) Render() string {
	a := newTable("Table 1(a): steady-state Banias temperatures",
		"benchmark", "category", "measured (°C)", "paper (°C)")
	for _, r := range t.Stable {
		a.add(r.Name, r.Category, fmt.Sprintf("%.0f", r.MeasuredC), fmt.Sprintf("%.0f", r.PaperC))
	}
	b := newTable("Table 1(b): temperature ranges of non-steady benchmarks",
		"benchmark", "category", "measured (°C)", "paper (°C)")
	for _, r := range t.Ranging {
		b.add(r.Name, r.Category,
			fmt.Sprintf("%.0f-%.0f", r.MinC, r.MaxC),
			fmt.Sprintf("%.0f-%.0f", r.PaperMin, r.PaperMax))
	}
	return a.String() + "\n" + b.String()
}

// MaxStableError returns the largest |measured − paper| over Table 1a.
func (t *Table1Result) MaxStableError() float64 {
	var worst float64
	for _, r := range t.Stable {
		if e := math.Abs(r.MeasuredC - r.PaperC); e > worst {
			worst = e
		}
	}
	return worst
}
