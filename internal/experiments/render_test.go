package experiments

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := newTable("Title", "col1", "column-two")
	tab.add("a", "1")
	tab.add("longer-cell", "2")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "col1") || !strings.Contains(lines[1], "column-two") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator line = %q", lines[2])
	}
	// Columns align: "1" and "2" start at the same offset.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "2") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableAddf(t *testing.T) {
	tab := newTable("", "a", "b", "c")
	tab.addf("%d|%s|%.1f", 7, "x", 2.5)
	out := tab.String()
	for _, want := range []string{"7", "x", "2.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableTolerant(t *testing.T) {
	// Rows with more cells than headers must not panic.
	tab := newTable("t", "only")
	tab.add("a", "b", "c")
	if out := tab.String(); !strings.Contains(out, "a") {
		t.Errorf("render = %q", out)
	}
}
