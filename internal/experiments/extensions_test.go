package experiments

import (
	"math"
	"strings"
	"testing"

	"multitherm/internal/core"
)

func TestExtensionRegistry(t *testing.T) {
	reg := ExtensionRegistry()
	if len(reg) != 7 {
		t.Fatalf("extension registry size %d", len(reg))
	}
	if _, err := FindExtension("hetero"); err != nil {
		t.Error(err)
	}
	if _, err := FindExtension("manycore"); err != nil {
		t.Error(err)
	}
	if _, err := FindExtension("nope"); err == nil {
		t.Error("unknown extension accepted")
	}
	// Extension names must not collide with paper artifacts.
	for _, e := range reg {
		if _, err := Find(e.Name); err == nil {
			t.Errorf("extension %s shadows a paper artifact", e.Name)
		}
	}
}

func TestPIDAblation(t *testing.T) {
	r, err := RunPIDAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PIDs) != len(r.Kds) {
		t.Fatal("result arity mismatch")
	}
	for i := range r.Kds {
		// Core of the §4.1 claim: the derivative term must not change
		// the peak temperature (emergency avoidance) materially.
		if d := math.Abs(float64(r.PIDs[i].PeakTempC - r.PI[i].PeakTempC)); d > 1.0 {
			t.Errorf("kd=%g changed peak by %.2f °C", r.Kds[i], d)
		}
		if r.PIDs[i].EverEmergent {
			t.Errorf("kd=%g breached the emergency threshold", r.Kds[i])
		}
	}
	if !strings.Contains(r.Render(), "derivative term") {
		t.Error("render missing claim context")
	}
}

func TestHeteroQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	r, err := RunHetero(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	dd := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed}
	ho, he := r.Homo[dd], r.Het[dd]
	// Capping two cores at 0.7 on a thermally saturated chip must not
	// collapse DVFS throughput: the controllers already run near or
	// below the cap.
	if he.MeanBIPS < 0.85*ho.MeanBIPS {
		t.Errorf("hetero dist DVFS lost too much: %.2f vs %.2f", he.MeanBIPS, ho.MeanBIPS)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestStallAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	r, err := RunStallAblation(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.BIPS) != 3 {
		t.Fatalf("sweep arity %d", len(r.BIPS))
	}
	// Longer stalls must not raise the duty cycle.
	if r.Duty[2] > r.Duty[0]+0.02 {
		t.Errorf("60 ms stall duty %.3f above 10 ms stall %.3f", r.Duty[2], r.Duty[0])
	}
}

func TestSetpointAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	r, err := RunSetpointAblation(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	// A wider margin must reduce throughput (wasted headroom) and lower
	// the worst temperature.
	if r.BIPS[2] >= r.BIPS[0] {
		t.Errorf("5 °C margin BIPS %.2f not below 1 °C margin %.2f", r.BIPS[2], r.BIPS[0])
	}
	if r.Worst[2] >= r.Worst[0] {
		t.Errorf("5 °C margin worst temp %.2f not below 1 °C margin %.2f", r.Worst[2], r.Worst[0])
	}
}

func TestManycoreQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	o := quick(t)
	o.SimTime = 0.01
	r, err := RunManycore(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Spec.Rows != 4 || r.Spec.Cols != 4 {
		t.Errorf("default grid %+v, want 4x4", r.Spec)
	}
	if !strings.Contains(r.Mode, "sparse-krylov") {
		t.Errorf("16-core grid ran in mode %q; want the sparse path", r.Mode)
	}
	if len(r.BIPS) != len(r.Specs) {
		t.Fatalf("result arity mismatch")
	}
	for i, b := range r.BIPS {
		if b <= 0 {
			t.Errorf("policy %s produced zero throughput", r.Specs[i])
		}
	}
	// The taxonomy's headline ordering must survive the scale-up.
	if r.BIPS[1] <= r.BIPS[0] {
		t.Errorf("dist DVFS %.2f did not beat stop-go %.2f on the grid", r.BIPS[1], r.BIPS[0])
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestEpochAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	r, err := RunEpochAblation(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range r.BIPS {
		if b <= 0 {
			t.Errorf("epoch %s produced zero throughput", r.Labels[i])
		}
	}
}
