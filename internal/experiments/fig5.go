package experiments

import (
	"fmt"
	"strings"

	"multitherm/internal/core"
	"multitherm/internal/floorplan"
	"multitherm/internal/sim"
	"multitherm/internal/units"
	"multitherm/internal/workload"
)

// Fig5Point is one sample of the Figure 5 time series for the observed
// core: both register-file hotspot temperatures, the DVFS scale factor,
// and the resident benchmark.
type Fig5Point struct {
	//mtlint:allow unit milliseconds on the figure's axis, not the Seconds gauge
	TimeMS    float64
	IntRF     units.Celsius
	FPRF      units.Celsius
	Scale     units.ScaleFactor
	Benchmark string
	Migrated  bool // a migration landed on this core at this sample
}

// Fig5Result reproduces Figure 5: temperatures and DVFS control across
// several migration intervals on a single core, for the paper's example
// workload gzip-twolf-ammp-lucas under distributed DVFS with
// counter-based migration.
type Fig5Result struct {
	Core     int
	Workload string
	Points   []Fig5Point
}

// ID implements Result.
func (f *Fig5Result) ID() string { return "fig5" }

// RunFig5 extracts the Figure 5 time series.
func RunFig5(o Options) (*Fig5Result, error) {
	cfg := o.simConfig()
	if cfg.SimTime < 0.12 {
		cfg.SimTime = 0.12
	}
	mix, err := workload.MixByName("workload7") // gzip-twolf-ammp-lucas
	if err != nil {
		return nil, err
	}
	spec := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed, Migration: core.CounterMigration}
	r, err := sim.New(cfg, mix, spec)
	if err != nil {
		return nil, err
	}
	const observed = 0
	fp := cfg.Floorplan
	irf := fp.FindCoreBlock(observed, floorplan.KindIntRegFile)
	fprf := fp.FindCoreBlock(observed, floorplan.KindFPRegFile)

	out := &Fig5Result{Core: observed, Workload: mix.Label()}
	// Sample every ~0.55 ms (the paper's figure resolution), skipping a
	// short warm-in so the controllers have locked.
	const sampleEvery = 20 // ticks of 27.8 µs
	warmTicks := int64(0.02 / core.DefaultParams().SamplePeriod)
	lastProc := -1
	r.SetProbe(func(now units.Seconds, tick int64, temps units.TempVec, cmds []core.CoreCommand, assign []int) {
		if tick < warmTicks || tick%sampleEvery != 0 {
			return
		}
		proc := assign[observed]
		p := Fig5Point{
			TimeMS:    float64(now-units.Seconds(warmTicks)*core.DefaultParams().SamplePeriod) * 1e3,
			IntRF:     temps.At(irf),
			FPRF:      temps.At(fprf),
			Scale:     cmds[observed].Scale,
			Benchmark: mix.Benchmarks[proc],
			Migrated:  lastProc >= 0 && proc != lastProc,
		}
		lastProc = proc
		out.Points = append(out.Points, p)
	})
	if _, err := r.Run(); err != nil {
		return nil, err
	}
	return out, nil
}

// Migrations returns how many thread changes the observed core saw.
func (f *Fig5Result) Migrations() int {
	n := 0
	for _, p := range f.Points {
		if p.Migrated {
			n++
		}
	}
	return n
}

// Render implements Result: an ASCII rendition of the two panels.
func (f *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: core %d of %s under Dist. DVFS + counter-based migration\n", f.Core, f.Workload)
	fmt.Fprintf(&b, "(a) hotspot temperatures  (b) frequency scale factor\n")
	fmt.Fprintf(&b, "%8s  %8s  %8s  %6s  %-8s\n", "t (ms)", "IRF °C", "FPRF °C", "scale", "thread")
	step := len(f.Points)/48 + 1
	for i := 0; i < len(f.Points); i += step {
		p := f.Points[i]
		marker := ""
		// Surface any migration within the printed stride.
		for j := i; j < i+step && j < len(f.Points); j++ {
			if f.Points[j].Migrated {
				marker = "  <- migration: " + f.Points[j].Benchmark + " in"
				break
			}
		}
		fmt.Fprintf(&b, "%8.2f  %8.2f  %8.2f  %6.2f  %-8s%s\n",
			p.TimeMS, p.IntRF, p.FPRF, p.Scale, p.Benchmark, marker)
	}
	fmt.Fprintf(&b, "migrations observed on this core: %d\n", f.Migrations())
	return b.String()
}
