package experiments

import (
	"context"
	"fmt"
	"math"

	"multitherm/internal/core"
	"multitherm/internal/metrics"
	"multitherm/internal/parallel"
	"multitherm/internal/sim"
	"multitherm/internal/units"
)

// Paper reference values (Tables 5–8), used in reports and asserted
// loosely by tests.
var (
	paperTable5 = map[string][2]float64{ // duty %, relative throughput
		"Global stop-go": {19.77, 0.62},
		"Dist. stop-go":  {32.57, 1.00},
		"Global DVFS":    {66.49, 2.07},
		"Dist. DVFS":     {81.02, 2.51},
	}
	paperTable6 = map[string][2]float64{
		"Global stop-go + counter-based migration": {37.93, 1.18},
		"Dist. stop-go + counter-based migration":  {65.12, 2.02},
		"Global DVFS + counter-based migration":    {70.05, 2.18},
		"Dist. DVFS + counter-based migration":     {82.42, 2.57},
	}
	paperTable7 = map[string][2]float64{
		"Global stop-go + sensor-based migration": {38.64, 1.20},
		"Dist. stop-go + sensor-based migration":  {66.61, 2.05},
		"Global DVFS + sensor-based migration":    {68.37, 2.13},
		"Dist. DVFS + sensor-based migration":     {82.64, 2.59},
	}
)

// paperRelative returns the paper's relative-throughput figure for a
// policy cell, or NaN when the paper does not tabulate it.
func paperRelative(spec core.PolicySpec) float64 {
	for _, m := range []map[string][2]float64{paperTable5, paperTable6, paperTable7} {
		if v, ok := m[spec.String()]; ok {
			return v[1]
		}
	}
	return math.NaN()
}

// PolicyStudy holds the measured results of a set of policies over the
// workload suite, all normalized against the distributed stop-go
// baseline.
type PolicyStudy struct {
	id       string
	Specs    []core.PolicySpec
	Runs     map[core.PolicySpec][]*metrics.Run
	Summary  map[core.PolicySpec]metrics.Summary
	Baseline metrics.Summary
}

// runStudy executes the given policy set (always including the
// baseline) over the workload suite. The full specs × workloads grid
// goes through the batched cell engine at once — a study is the unit
// with the most exposed parallelism (Table 8: 13 specs × 12 workloads
// = 156 independent cells), and since every cell shares one thermal
// template, the engine cuts the whole grid into lockstep batches —
// and every result lands in its (spec, workload) slot, so the
// assembled study is identical at any parallelism and batch width.
func runStudy(o Options, id string, specs []core.PolicySpec, cfg sim.Config) (*PolicyStudy, error) {
	s := &PolicyStudy{
		id:      id,
		Specs:   specs,
		Runs:    map[core.PolicySpec][]*metrics.Run{},
		Summary: map[core.PolicySpec]metrics.Summary{},
	}
	haveBase := false
	for _, spec := range specs {
		if spec == core.Baseline {
			haveBase = true
		}
	}
	if !haveBase {
		specs = append([]core.PolicySpec{core.Baseline}, specs...)
	}
	mixes := o.workloads()
	cells := make([]cell, 0, len(specs)*len(mixes))
	for _, spec := range specs {
		for _, mix := range mixes {
			cells = append(cells, cell{cfg: cfg, mix: mix, spec: spec})
		}
	}
	runs, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	for si, spec := range specs {
		row := runs[si*len(mixes) : (si+1)*len(mixes)]
		s.Runs[spec] = row
		s.Summary[spec] = metrics.Summarize(spec.String(), row)
	}
	s.Baseline = s.Summary[core.Baseline]
	return s, nil
}

// ID implements Result.
func (s *PolicyStudy) ID() string { return s.id }

// Relative returns the policy's mean throughput over the baseline's.
//
//mtlint:allow unit relative throughput is a dimensionless ratio, not BIPS
func (s *PolicyStudy) Relative(spec core.PolicySpec) float64 {
	return s.Summary[spec].Relative(s.Baseline)
}

// Emergencies returns total time any block spent above the threshold,
// across all runs of all policies (the paper's designs avoid all
// thermal emergencies).
func (s *PolicyStudy) Emergencies() units.Seconds {
	var total units.Seconds
	for _, spec := range s.Specs {
		for _, r := range s.Runs[spec] {
			total += r.EmergencySeconds
		}
	}
	return total
}

// renderSummary prints one row per policy with the paper's reference.
func (s *PolicyStudy) renderSummary(title string, paperRef bool) string {
	t := newTable(title, "policy", "BIPS", "duty cycle", "rel. throughput", "paper duty", "paper rel.")
	for _, spec := range s.Specs {
		sum := s.Summary[spec]
		pd, pr := "-", "-"
		if ref := paperRelative(spec); paperRef && !math.IsNaN(ref) {
			for _, m := range []map[string][2]float64{paperTable5, paperTable6, paperTable7} {
				if v, ok := m[spec.String()]; ok {
					pd = fmt.Sprintf("%.1f%%", v[0])
				}
			}
			pr = fmt.Sprintf("%.2f", ref)
		}
		t.add(spec.String(),
			fmt.Sprintf("%.2f", sum.MeanBIPS),
			fmt.Sprintf("%.1f%%", sum.MeanDuty*100),
			fmt.Sprintf("%.2f", s.Relative(spec)),
			pd, pr)
	}
	return t.String()
}

// nonMigrationSpecs are the four base policy cells.
func nonMigrationSpecs() []core.PolicySpec {
	return []core.PolicySpec{
		{Mechanism: core.StopGo, Scope: core.Global},
		{Mechanism: core.StopGo, Scope: core.Distributed},
		{Mechanism: core.DVFS, Scope: core.Global},
		{Mechanism: core.DVFS, Scope: core.Distributed},
	}
}

func withMigration(kind core.MigrationKind) []core.PolicySpec {
	out := nonMigrationSpecs()
	for i := range out {
		out[i].Migration = kind
	}
	return out
}

// ---------------------------------------------------------------- fig3

// Fig3Result is the per-workload normalized-throughput study of the
// three non-baseline, non-migration policies (paper Figure 3).
type Fig3Result struct {
	*PolicyStudy
	Workloads []string
	// Series maps policy → per-workload throughput relative to the
	// distributed stop-go baseline on the same workload.
	Series map[core.PolicySpec][]float64
}

// RunFig3 reproduces Figure 3.
func RunFig3(o Options) (*Fig3Result, error) {
	study, err := runStudy(o, "fig3", nonMigrationSpecs(), o.simConfig())
	if err != nil {
		return nil, err
	}
	out := &Fig3Result{PolicyStudy: study, Series: map[core.PolicySpec][]float64{}}
	for _, m := range o.workloads() {
		out.Workloads = append(out.Workloads, m.Label())
	}
	base := study.Runs[core.Baseline]
	for _, spec := range study.Specs {
		if spec == core.Baseline {
			continue
		}
		rel, err := metrics.PerWorkloadRelative(study.Runs[spec], base)
		if err != nil {
			return nil, err
		}
		out.Series[spec] = rel
	}
	return out, nil
}

// Render implements Result.
func (f *Fig3Result) Render() string {
	t := newTable("Figure 3: per-workload instruction throughput relative to dist. stop-go",
		"workload", "Global stop-go", "Global DVFS", "Dist. DVFS")
	gs := core.PolicySpec{Mechanism: core.StopGo, Scope: core.Global}
	gd := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Global}
	dd := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed}
	for i, w := range f.Workloads {
		t.add(w,
			fmt.Sprintf("%.2f", f.Series[gs][i]),
			fmt.Sprintf("%.2f", f.Series[gd][i]),
			fmt.Sprintf("%.2f", f.Series[dd][i]))
	}
	return t.String()
}

// -------------------------------------------------------------- table5

// Table5Result is the average-throughput study of the four base
// policies (paper Table 5).
type Table5Result struct{ *PolicyStudy }

// RunTable5 reproduces Table 5.
func RunTable5(o Options) (*Table5Result, error) {
	study, err := runStudy(o, "table5", nonMigrationSpecs(), o.simConfig())
	if err != nil {
		return nil, err
	}
	return &Table5Result{study}, nil
}

// Render implements Result.
func (t *Table5Result) Render() string {
	return t.renderSummary("Table 5: average throughput and duty cycle, non-migration policies", true)
}

// ---------------------------------------------------------- tables 6, 7

// MigrationTableResult covers Tables 6 and 7: the four base policies
// with one migration mechanism layered on, including the speedup over
// the corresponding non-migration policy.
type MigrationTableResult struct {
	*PolicyStudy
	Kind core.MigrationKind
	// SpeedupOverBase maps each migrating policy to its throughput gain
	// over the same policy without migration.
	SpeedupOverBase map[core.PolicySpec]float64
}

func runMigrationTable(o Options, id string, kind core.MigrationKind) (*MigrationTableResult, error) {
	specs := append(nonMigrationSpecs(), withMigration(kind)...)
	study, err := runStudy(o, id, specs, o.simConfig())
	if err != nil {
		return nil, err
	}
	out := &MigrationTableResult{PolicyStudy: study, Kind: kind,
		SpeedupOverBase: map[core.PolicySpec]float64{}}
	for _, spec := range withMigration(kind) {
		plain := spec
		plain.Migration = core.NoMigration
		if b := study.Summary[plain].MeanBIPS; b > 0 {
			out.SpeedupOverBase[spec] = float64(study.Summary[spec].MeanBIPS / b)
		}
	}
	// Report only migration rows.
	out.Specs = withMigration(kind)
	return out, nil
}

// RunTable6 reproduces Table 6 (counter-based migration).
func RunTable6(o Options) (*MigrationTableResult, error) {
	r, err := runMigrationTable(o, "table6", core.CounterMigration)
	return r, err
}

// RunTable7 reproduces Table 7 (sensor-based migration).
func RunTable7(o Options) (*MigrationTableResult, error) {
	r, err := runMigrationTable(o, "table7", core.SensorMigration)
	return r, err
}

// Render implements Result.
func (t *MigrationTableResult) Render() string {
	n := "6"
	if t.Kind == core.SensorMigration {
		n = "7"
	}
	tab := newTable(fmt.Sprintf("Table %s: %s results", n, t.Kind),
		"policy", "BIPS", "duty cycle", "rel. throughput", "speedup vs non-mig.", "paper duty", "paper rel.")
	for _, spec := range t.Specs {
		sum := t.Summary[spec]
		pd, pr := "-", "-"
		for _, m := range []map[string][2]float64{paperTable6, paperTable7} {
			if v, ok := m[spec.String()]; ok {
				pd = fmt.Sprintf("%.1f%%", v[0])
				pr = fmt.Sprintf("%.2f", v[1])
			}
		}
		tab.add(spec.String(),
			fmt.Sprintf("%.2f", sum.MeanBIPS),
			fmt.Sprintf("%.1f%%", sum.MeanDuty*100),
			fmt.Sprintf("%.2f", t.Relative(spec)),
			fmt.Sprintf("%.2f", t.SpeedupOverBase[spec]),
			pd, pr)
	}
	return tab.String()
}

// ---------------------------------------------------------------- fig7

// Fig7Result is the per-workload gain/loss of the two migration
// mechanisms layered on distributed DVFS (paper Figure 7).
type Fig7Result struct {
	id        string
	Workloads []string
	Counter   []float64 // percentage delta vs non-migration dist. DVFS
	Sensor    []float64
}

// ID implements Result.
func (f *Fig7Result) ID() string { return f.id }

// RunFig7 reproduces Figure 7.
func RunFig7(o Options) (*Fig7Result, error) {
	cfg := o.simConfig()
	dd := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed}
	ddC := dd
	ddC.Migration = core.CounterMigration
	ddS := dd
	ddS.Migration = core.SensorMigration

	base, err := runPolicy(o, cfg, dd)
	if err != nil {
		return nil, err
	}
	counter, err := runPolicy(o, cfg, ddC)
	if err != nil {
		return nil, err
	}
	sens, err := runPolicy(o, cfg, ddS)
	if err != nil {
		return nil, err
	}
	relC, err := metrics.PerWorkloadRelative(counter, base)
	if err != nil {
		return nil, err
	}
	relS, err := metrics.PerWorkloadRelative(sens, base)
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{id: "fig7"}
	for i, m := range o.workloads() {
		out.Workloads = append(out.Workloads, m.Label())
		out.Counter = append(out.Counter, (relC[i]-1)*100)
		out.Sensor = append(out.Sensor, (relS[i]-1)*100)
	}
	return out, nil
}

// Render implements Result.
func (f *Fig7Result) Render() string {
	t := newTable("Figure 7: performance delta of migration vs non-migration under dist. DVFS",
		"workload", "counter-based", "sensor-based")
	for i, w := range f.Workloads {
		t.add(w,
			fmt.Sprintf("%+.1f%%", f.Counter[i]),
			fmt.Sprintf("%+.1f%%", f.Sensor[i]))
	}
	return t.String()
}

// -------------------------------------------------------------- table8

// Table8Result is the full 12-cell policy matrix (paper Table 8).
type Table8Result struct{ *PolicyStudy }

// RunTable8 reproduces Table 8.
func RunTable8(o Options) (*Table8Result, error) {
	study, err := runStudy(o, "table8", core.Taxonomy(), o.simConfig())
	if err != nil {
		return nil, err
	}
	return &Table8Result{study}, nil
}

// Render implements Result.
func (t *Table8Result) Render() string {
	tab := newTable("Table 8: relative instruction throughput of all 12 policy combinations",
		"policy", "rel. throughput", "paper")
	paper8 := map[string]string{
		"Global stop-go": "0.62", "Global DVFS": "2.1",
		"Dist. stop-go": "baseline", "Dist. DVFS": "2.5",
		"Global stop-go + counter-based migration": "1.2",
		"Global DVFS + counter-based migration":    "2.2",
		"Dist. stop-go + counter-based migration":  "2",
		"Dist. DVFS + counter-based migration":     "2.6",
		"Global stop-go + sensor-based migration":  "1.2",
		"Global DVFS + sensor-based migration":     "2.1",
		"Dist. stop-go + sensor-based migration":   "2.1",
		"Dist. DVFS + sensor-based migration":      "2.6",
	}
	for _, spec := range t.Specs {
		rel := fmt.Sprintf("%.2f", t.Relative(spec))
		if spec == core.Baseline {
			rel = "baseline"
		}
		tab.add(spec.String(), rel, paper8[spec.String()])
	}
	return tab.String()
}

// --------------------------------------------------------- sensitivity

// SensitivityResult is the §5.3 threshold study: raising the limit to
// 100 °C raises all duty cycles by roughly 10–15 points while
// preserving the relative ordering of policies.
type SensitivityResult struct {
	id        string
	Specs     []core.PolicySpec
	DutyAt84  map[core.PolicySpec]units.ScaleFactor
	DutyAt100 map[core.PolicySpec]units.ScaleFactor
}

// ID implements Result.
func (s *SensitivityResult) ID() string { return s.id }

// RunSensitivity reproduces the paper's 100 °C observation.
func RunSensitivity(o Options) (*SensitivityResult, error) {
	specs := nonMigrationSpecs()
	out := &SensitivityResult{
		id: "sensitivity", Specs: specs,
		DutyAt84:  map[core.PolicySpec]units.ScaleFactor{},
		DutyAt100: map[core.PolicySpec]units.ScaleFactor{},
	}
	base, err := runStudy(o, "sens84", specs, o.simConfig())
	if err != nil {
		return nil, err
	}
	cfg := o.simConfig()
	cfg.Policy.ThresholdC = 100
	hot, err := runStudy(o, "sens100", specs, cfg)
	if err != nil {
		return nil, err
	}
	for _, spec := range specs {
		out.DutyAt84[spec] = base.Summary[spec].MeanDuty
		out.DutyAt100[spec] = hot.Summary[spec].MeanDuty
	}
	return out, nil
}

// Render implements Result.
func (s *SensitivityResult) Render() string {
	t := newTable("§5.3: duty cycles at an elevated 100 °C threshold",
		"policy", "duty @ 84.2 °C", "duty @ 100 °C", "delta")
	for _, spec := range s.Specs {
		d0, d1 := s.DutyAt84[spec], s.DutyAt100[spec]
		t.add(spec.String(),
			fmt.Sprintf("%.1f%%", d0*100),
			fmt.Sprintf("%.1f%%", d1*100),
			fmt.Sprintf("%+.1f pts", (d1-d0)*100))
	}
	return t.String() + "paper: thresholds of 100 °C raise duty cycles by 10 to 15 points;\nthe relative performance tradeoffs remain as presented.\n"
}

// OrderingPreserved reports whether the policy ordering is the same at
// both thresholds.
func (s *SensitivityResult) OrderingPreserved() bool {
	for i := 0; i < len(s.Specs); i++ {
		for j := i + 1; j < len(s.Specs); j++ {
			a, b := s.Specs[i], s.Specs[j]
			if (s.DutyAt84[a] < s.DutyAt84[b]) != (s.DutyAt100[a] < s.DutyAt100[b]) {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------- dutyvalid

// DutyValidityResult is the §5.3 metric validation: the achieved BIPS
// relative to an unconstrained run is predicted by the measured duty
// cycle.
type DutyValidityResult struct {
	id        string
	Workloads []string
	Predicted []units.ScaleFactor // duty cycle of the constrained run
	Achieved  []units.ScaleFactor // throughput ratio constrained / unconstrained
}

// ID implements Result.
func (d *DutyValidityResult) ID() string { return d.id }

// RunDutyValidity reproduces the §5.3 check using distributed DVFS.
func RunDutyValidity(o Options) (*DutyValidityResult, error) {
	cfg := o.simConfig()
	mixes := o.workloads()
	out := &DutyValidityResult{
		id:        "dutyvalid",
		Workloads: make([]string, len(mixes)),
		Predicted: make([]units.ScaleFactor, len(mixes)),
		Achieved:  make([]units.ScaleFactor, len(mixes)),
	}
	spec := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed}
	err := parallel.ForEach(context.Background(), o.Parallelism, len(mixes),
		func(_ context.Context, i int) error {
			mix := mixes[i]
			r, err := sim.New(cfg, mix, spec)
			if err != nil {
				return err
			}
			constrained, err := r.Run()
			if err != nil {
				return err
			}
			u, err := sim.NewUnthrottled(cfg, mix)
			if err != nil {
				return err
			}
			free, err := u.Run()
			if err != nil {
				return err
			}
			out.Workloads[i] = mix.Name
			out.Predicted[i] = constrained.DutyCycle()
			out.Achieved[i] = units.ScaleFactor(float64(constrained.BIPS()) / float64(free.BIPS()))
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Render implements Result.
func (d *DutyValidityResult) Render() string {
	t := newTable("§5.3: duty cycle as a predictor of throughput vs the unconstrained run",
		"workload", "duty cycle", "BIPS ratio", "error")
	for i := range d.Workloads {
		t.add(d.Workloads[i],
			fmt.Sprintf("%.1f%%", d.Predicted[i]*100),
			fmt.Sprintf("%.1f%%", d.Achieved[i]*100),
			fmt.Sprintf("%+.1f pts", (d.Achieved[i]-d.Predicted[i])*100))
	}
	return t.String()
}

// WorstError returns the largest |achieved − predicted| in points.
func (d *DutyValidityResult) WorstError() float64 {
	var worst float64
	for i := range d.Predicted {
		if e := math.Abs(float64(d.Achieved[i] - d.Predicted[i])); e > worst {
			worst = e
		}
	}
	return worst * 100
}
