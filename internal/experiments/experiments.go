// Package experiments reproduces every table and figure of the paper's
// evaluation: the Banias measurements (Table 1), the taxonomy and
// configuration tables (Tables 2–4), the policy studies (Figure 3,
// Tables 5–8, Figures 5 and 7), the PI-design analysis of §4, and the
// sensitivity/validation studies of §5.3. Each experiment returns a
// result value with a Render method that prints the table or series in
// the paper's format next to the published values.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"multitherm/internal/core"
	"multitherm/internal/metrics"
	"multitherm/internal/parallel"
	"multitherm/internal/sim"
	"multitherm/internal/workload"
)

// Options controls experiment fidelity.
type Options struct {
	// SimTime is the simulated silicon time per run. The paper uses
	// 0.5 s; shorter times trade precision for speed.
	SimTime float64
	// Workloads restricts the workload set (nil = all 12).
	Workloads []workload.Mix
	// Parallelism bounds the worker pool that fans independent
	// (policy, workload) cells out across CPUs: 0 uses GOMAXPROCS,
	// 1 runs sequentially. Results are deterministic — identical at
	// any parallelism level — because every cell is independent and
	// results are slotted by index, not arrival order.
	Parallelism int
}

// DefaultOptions runs the full paper configuration.
func DefaultOptions() Options {
	return Options{SimTime: 0.5}
}

// QuickOptions runs shortened simulations for smoke tests.
func QuickOptions() Options {
	return Options{SimTime: 0.1}
}

func (o Options) workloads() []workload.Mix {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return workload.Mixes
}

func (o Options) simConfig() sim.Config {
	cfg := sim.DefaultConfig()
	if o.SimTime > 0 {
		cfg.SimTime = o.SimTime
	}
	return cfg
}

// runCell executes one (policy, workload) cell.
func runCell(cfg sim.Config, mix workload.Mix, spec core.PolicySpec) (*metrics.Run, error) {
	r, err := sim.New(cfg, mix, spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", spec, mix.Name, err)
	}
	m, err := r.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", spec, mix.Name, err)
	}
	return m, nil
}

// runPolicy executes one policy over the option's workload set,
// fanning workloads across the worker pool. Result order matches the
// workload order regardless of completion order.
func runPolicy(o Options, cfg sim.Config, spec core.PolicySpec) ([]*metrics.Run, error) {
	mixes := o.workloads()
	runs := make([]*metrics.Run, len(mixes))
	err := parallel.ForEach(context.Background(), o.Parallelism, len(mixes),
		func(_ context.Context, i int) error {
			m, err := runCell(cfg, mixes[i], spec)
			if err != nil {
				return err
			}
			runs[i] = m
			return nil
		})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// Result is the common interface of all experiment outputs.
type Result interface {
	// ID returns the paper artifact identifier, e.g. "table5".
	ID() string
	// Render returns the human-readable reproduction report.
	Render() string
}

// Runner executes one experiment.
type Runner struct {
	Name string // artifact id: table1, fig3, ...
	Desc string
	Run  func(Options) (Result, error)
}

// Registry lists every reproducible artifact in paper order.
func Registry() []Runner {
	return []Runner{
		{"table1", "Pentium M Banias steady temperatures and ranges", func(o Options) (Result, error) { return RunTable1(o) }},
		{"table2", "thermal control taxonomy", func(Options) (Result, error) { return Table2(), nil }},
		{"table3", "modeled CPU design parameters", func(Options) (Result, error) { return Table3(), nil }},
		{"table4", "four-process workloads", func(Options) (Result, error) { return Table4(), nil }},
		{"pi", "PI controller design, discretization and stability (§4)", func(Options) (Result, error) { return RunPIAnalysis() }},
		{"fig3", "per-workload throughput of non-migration policies", func(o Options) (Result, error) { return RunFig3(o) }},
		{"table5", "average throughput/duty of non-migration policies", func(o Options) (Result, error) { return RunTable5(o) }},
		{"fig5", "hotspot temperatures and DVFS output across migrations", func(o Options) (Result, error) { return RunFig5(o) }},
		{"table6", "counter-based migration results", func(o Options) (Result, error) { return RunTable6(o) }},
		{"table7", "sensor-based migration results", func(o Options) (Result, error) { return RunTable7(o) }},
		{"fig7", "per-workload migration deltas under dist. DVFS", func(o Options) (Result, error) { return RunFig7(o) }},
		{"table8", "all 12 policy combinations", func(o Options) (Result, error) { return RunTable8(o) }},
		{"sensitivity", "100 °C threshold sensitivity (§5.3)", func(o Options) (Result, error) { return RunSensitivity(o) }},
		{"dutyvalid", "duty-cycle metric validation (§5.3)", func(o Options) (Result, error) { return RunDutyValidity(o) }},
	}
}

// Find returns the named runner.
func Find(name string) (Runner, error) {
	for _, r := range Registry() {
		if r.Name == name {
			return r, nil
		}
	}
	var known []string
	for _, r := range Registry() {
		known = append(known, r.Name)
	}
	sort.Strings(known)
	return Runner{}, fmt.Errorf("experiments: unknown artifact %q (known: %s)",
		name, strings.Join(known, ", "))
}
