// Package experiments reproduces every table and figure of the paper's
// evaluation: the Banias measurements (Table 1), the taxonomy and
// configuration tables (Tables 2–4), the policy studies (Figure 3,
// Tables 5–8, Figures 5 and 7), the PI-design analysis of §4, and the
// sensitivity/validation studies of §5.3. Each experiment returns a
// result value with a Render method that prints the table or series in
// the paper's format next to the published values.
//
//mtlint:deterministic
//mtlint:units
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"multitherm/internal/core"
	"multitherm/internal/floorplan"
	"multitherm/internal/metrics"
	"multitherm/internal/parallel"
	"multitherm/internal/sim"
	"multitherm/internal/thermal"
	"multitherm/internal/units"
	"multitherm/internal/workload"
)

// Options controls experiment fidelity.
type Options struct {
	// SimTime is the simulated silicon time per run. The paper uses
	// 0.5 s; shorter times trade precision for speed.
	SimTime units.Seconds
	// Workloads restricts the workload set (nil = all 12).
	Workloads []workload.Mix
	// Parallelism bounds the worker pool that fans independent
	// (policy, workload) cells out across CPUs: 0 uses GOMAXPROCS,
	// 1 runs sequentially. Results are deterministic — identical at
	// any parallelism level — because every cell is independent and
	// results are slotted by index, not arrival order.
	Parallelism int
	// Batch is the lockstep batch width: cells sharing one thermal
	// propagator — same template and control period — are stepped
	// together through a fused panel update (sim.BatchRunner), which is
	// bit-identical to running them one by one. 0 picks the cache-sized
	// default (sim.DefaultBatchSize); 1 disables batching.
	Batch int
	// Grid selects the generated floorplan the many-core extension
	// runs on (cmd/sweep -floorplan). The zero value picks the
	// experiment's 4x4 mixed-rows default.
	Grid floorplan.GridSpec
}

// DefaultOptions runs the full paper configuration.
func DefaultOptions() Options {
	return Options{SimTime: 0.5}
}

// QuickOptions runs shortened simulations for smoke tests.
func QuickOptions() Options {
	return Options{SimTime: 0.1}
}

func (o Options) workloads() []workload.Mix {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return workload.Mixes
}

func (o Options) simConfig() sim.Config {
	cfg := sim.DefaultConfig()
	if o.SimTime > 0 {
		cfg.SimTime = o.SimTime
	}
	return cfg
}

func (o Options) batchSize() int {
	if o.Batch > 0 {
		return o.Batch
	}
	return sim.DefaultBatchSize()
}

// runCell executes one (policy, workload) cell.
func runCell(cfg sim.Config, mix workload.Mix, spec core.PolicySpec) (*metrics.Run, error) {
	r, err := sim.New(cfg, mix, spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", spec, mix.Name, err)
	}
	m, err := r.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", spec, mix.Name, err)
	}
	return m, nil
}

// cell is one (config, workload, policy) simulation of a study.
type cell struct {
	cfg  sim.Config
	mix  workload.Mix
	spec core.PolicySpec
}

// batchKey identifies the shared propagator a cell steps through:
// templates are memoized singletons, so pointer identity plus the
// control period decides whether two cells can run in lockstep.
type batchKey struct {
	tmpl *thermal.Template
	dt   units.Seconds
}

// cellGroup is one shared-propagator family of cells. Workers claim
// cells off the group one at a time through the atomic cursor, so a
// batch is whatever a worker gathered when it was ready to run — lanes
// join as cells arrive instead of waiting behind a precut chunk
// boundary, and two workers can drain one big group concurrently, each
// forming its own lockstep unit. Batch composition therefore depends
// on scheduling, but the results never do: batched stepping is
// bit-identical to sequential stepping (sim.BatchRunner's contract)
// at any width and any partition.
type cellGroup struct {
	idx []int // cell indices sharing (Template, dt)
	cur atomic.Int64
}

// claim removes up to max cell indices from the group's head.
func (g *cellGroup) claim(max int, dst []int) []int {
	for len(dst) < max {
		i := g.cur.Add(1) - 1
		if i >= int64(len(g.idx)) {
			break
		}
		dst = append(dst, g.idx[i])
	}
	return dst
}

// runCells executes the given cells and slots each result at its input
// index. Cells are grouped by shared propagator in first-seen order and
// the work-stealing pool schedules batch-forming tasks, weighted by the
// simulated time they cover, so the biggest (Template, dt) families
// start first and a straggler group cannot hold the sweep open alone.
// Every task claims up to one batch width of cells from its group's
// cursor and runs them as one lockstep unit; results are independent of
// parallelism, batch width, and claim interleaving alike.
func runCells(o Options, cells []cell) ([]*metrics.Run, error) {
	groups := map[batchKey]*cellGroup{}
	var order []*cellGroup
	for i, c := range cells {
		tmpl, err := thermal.TemplateFor(c.cfg.Floorplan, c.cfg.Thermal)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on %s: %w", c.spec, c.mix.Name, err)
		}
		k := batchKey{tmpl: tmpl, dt: c.cfg.Policy.SamplePeriod}
		g, seen := groups[k]
		if !seen {
			g = &cellGroup{}
			groups[k] = g
			order = append(order, g)
		}
		g.idx = append(g.idx, i)
	}
	size := o.batchSize()

	// One task per prospective batch. Tasks of one group are
	// interchangeable — each claims whatever cells remain — so their
	// count only guarantees enough claimers to drain the group; a task
	// arriving after its group is empty is a no-op. Cost estimates
	// weight each claim by the simulated seconds it will advance.
	var tasks []parallel.Task
	taskGroup := make([]*cellGroup, 0, len(cells))
	for _, g := range order {
		simTime := float64(cells[g.idx[0]].cfg.SimTime)
		for _, span := range parallel.Chunks(len(g.idx), size) {
			tasks = append(tasks, parallel.Task{
				Index: len(tasks),
				Cost:  float64(span[1]-span[0]) * simTime,
			})
			taskGroup = append(taskGroup, g)
		}
	}

	runs := make([]*metrics.Run, len(cells))
	err := parallel.RunTasks(context.Background(), o.Parallelism, tasks,
		func(_ context.Context, ti int) error {
			idx := taskGroup[ti].claim(size, make([]int, 0, size))
			switch len(idx) {
			case 0:
				return nil // group drained by earlier claimers
			case 1:
				c := cells[idx[0]]
				m, err := runCell(c.cfg, c.mix, c.spec)
				if err != nil {
					return err
				}
				runs[idx[0]] = m
				return nil
			}
			runners := make([]*sim.Runner, len(idx))
			for j, ci := range idx {
				c := cells[ci]
				r, err := sim.New(c.cfg, c.mix, c.spec)
				if err != nil {
					return fmt.Errorf("experiments: %s on %s: %w", c.spec, c.mix.Name, err)
				}
				runners[j] = r
			}
			br, err := sim.NewBatchRunner(runners)
			if err != nil {
				return err
			}
			ms, err := br.Run()
			if err != nil {
				return err
			}
			for j, ci := range idx {
				runs[ci] = ms[j]
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// runPolicy executes one policy over the option's workload set through
// the batched cell engine. Result order matches the workload order.
func runPolicy(o Options, cfg sim.Config, spec core.PolicySpec) ([]*metrics.Run, error) {
	mixes := o.workloads()
	cells := make([]cell, len(mixes))
	for i, mix := range mixes {
		cells[i] = cell{cfg: cfg, mix: mix, spec: spec}
	}
	return runCells(o, cells)
}

// Result is the common interface of all experiment outputs.
type Result interface {
	// ID returns the paper artifact identifier, e.g. "table5".
	ID() string
	// Render returns the human-readable reproduction report.
	Render() string
}

// Runner executes one experiment.
type Runner struct {
	Name string // artifact id: table1, fig3, ...
	Desc string
	Run  func(Options) (Result, error)
}

// Registry lists every reproducible artifact in paper order.
func Registry() []Runner {
	return []Runner{
		{"table1", "Pentium M Banias steady temperatures and ranges", func(o Options) (Result, error) { return RunTable1(o) }},
		{"table2", "thermal control taxonomy", func(Options) (Result, error) { return Table2(), nil }},
		{"table3", "modeled CPU design parameters", func(Options) (Result, error) { return Table3(), nil }},
		{"table4", "four-process workloads", func(Options) (Result, error) { return Table4(), nil }},
		{"pi", "PI controller design, discretization and stability (§4)", func(Options) (Result, error) { return RunPIAnalysis() }},
		{"fig3", "per-workload throughput of non-migration policies", func(o Options) (Result, error) { return RunFig3(o) }},
		{"table5", "average throughput/duty of non-migration policies", func(o Options) (Result, error) { return RunTable5(o) }},
		{"fig5", "hotspot temperatures and DVFS output across migrations", func(o Options) (Result, error) { return RunFig5(o) }},
		{"table6", "counter-based migration results", func(o Options) (Result, error) { return RunTable6(o) }},
		{"table7", "sensor-based migration results", func(o Options) (Result, error) { return RunTable7(o) }},
		{"fig7", "per-workload migration deltas under dist. DVFS", func(o Options) (Result, error) { return RunFig7(o) }},
		{"table8", "all 12 policy combinations", func(o Options) (Result, error) { return RunTable8(o) }},
		{"sensitivity", "100 °C threshold sensitivity (§5.3)", func(o Options) (Result, error) { return RunSensitivity(o) }},
		{"dutyvalid", "duty-cycle metric validation (§5.3)", func(o Options) (Result, error) { return RunDutyValidity(o) }},
	}
}

// Find returns the named runner.
func Find(name string) (Runner, error) {
	for _, r := range Registry() {
		if r.Name == name {
			return r, nil
		}
	}
	var known []string
	for _, r := range Registry() {
		known = append(known, r.Name)
	}
	sort.Strings(known)
	return Runner{}, fmt.Errorf("experiments: unknown artifact %q (known: %s)",
		name, strings.Join(known, ", "))
}
