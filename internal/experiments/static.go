package experiments

import (
	"fmt"
	"math"
	"strings"

	"multitherm/internal/control"
	"multitherm/internal/core"
	"multitherm/internal/uarch"
	"multitherm/internal/workload"
)

// StaticResult wraps artifacts that are structural rather than
// simulated.
type StaticResult struct {
	id   string
	text string
}

// ID implements Result.
func (s *StaticResult) ID() string { return s.id }

// Render implements Result.
func (s *StaticResult) Render() string { return s.text }

// Table2 reproduces the thermal control taxonomy (paper Table 2).
func Table2() *StaticResult {
	t := newTable("Table 2: thermal control taxonomy (12 policy combinations)",
		"scope", "no migration", "counter-based migration", "sensor-based migration")
	cells := map[core.Scope]map[core.MigrationKind][]string{}
	for _, spec := range core.Taxonomy() {
		if cells[spec.Scope] == nil {
			cells[spec.Scope] = map[core.MigrationKind][]string{}
		}
		cells[spec.Scope][spec.Migration] = append(cells[spec.Scope][spec.Migration], spec.Mechanism.String())
	}
	for _, scope := range []core.Scope{core.Global, core.Distributed} {
		t.add(scope.String(),
			strings.Join(cells[scope][core.NoMigration], " / "),
			strings.Join(cells[scope][core.CounterMigration], " / "),
			strings.Join(cells[scope][core.SensorMigration], " / "))
	}
	return &StaticResult{id: "table2", text: t.String()}
}

// Table3 reproduces the modeled CPU design parameters (paper Table 3).
func Table3() *StaticResult {
	c := uarch.DefaultConfig()
	p := core.DefaultParams()
	t := newTable("Table 3: design parameters for the modeled CPU", "parameter", "value")
	t.add("Process technology", "90 nm")
	t.add("Supply voltage", "1.0 V")
	t.add("Clock rate", fmt.Sprintf("%.1f GHz", c.ClockHz/1e9))
	t.add("Organization", "4-core + shared L2 cache")
	t.add("Reservation stations", fmt.Sprintf("mem/int queue (2x%d), fp queue (2x%d)", c.MemIntQueue/2, c.FPQueue/2))
	t.add("Functional units", fmt.Sprintf("%d FXU, %d FPU, %d LSU, %d BXU", c.NumFXU, c.NumFPU, c.NumLSU, c.NumBXU))
	t.add("Physical registers", fmt.Sprintf("%d GPR, %d FPR, %d SPR", c.GPR, c.FPR, c.SPR))
	t.add("L1 dcache latency", fmt.Sprintf("%d cycle", c.L1DLatency))
	t.add("L2 latency", fmt.Sprintf("%d cycles", c.L2Latency))
	t.add("Main memory latency", fmt.Sprintf("%d cycles", c.MemLatency))
	t.add("DVFS transition penalty", fmt.Sprintf("%.0f µs", p.TransitionPenalty*1e6))
	t.add("Minimum freq scale", fmt.Sprintf("%.0f%% (%.0f MHz)", p.Limits.Min*100, float64(p.Limits.Min)*c.ClockHz/1e6))
	t.add("Minimum transition", fmt.Sprintf("%.0f%% of range", p.Limits.MinTransition/(p.Limits.Max-p.Limits.Min)*100))
	t.add("Migration penalty", "100 µs")
	return &StaticResult{id: "table3", text: t.String()}
}

// Table4 reproduces the workload mixes (paper Table 4).
func Table4() *StaticResult {
	t := newTable("Table 4: four-process workloads", "workload", "benchmarks", "mix")
	for _, m := range workload.Mixes {
		label := m.Label()
		open := strings.LastIndex(label, "(")
		t.add(m.Name, strings.Join(m.Benchmarks[:], ", "), strings.Trim(label[open:], "()"))
	}
	return &StaticResult{id: "table4", text: t.String()}
}

// PIAnalysis reproduces the formal-control content of §4: the published
// discrete control law, and the stability analysis the paper performs
// with MATLAB (root locus / pole placement).
type PIAnalysis struct {
	B0, B1       float64 // reproduced discrete coefficients
	PaperB0      float64
	PaperB1      float64
	ContinuousOK bool // closed-loop poles in left half plane
	DiscreteOK   bool // closed-loop poles inside unit circle
	RobustnessOK bool // stability preserved at 0.1x and 10x gains
	//mtlint:allow unit settling time reported in milliseconds for readability, not units.Seconds
	SettlingTimeMS float64
}

// ID implements Result.
func (p *PIAnalysis) ID() string { return "pi" }

// RunPIAnalysis performs the §4 control design study against a
// representative first-order hotspot plant.
func RunPIAnalysis() (*PIAnalysis, error) {
	out := &PIAnalysis{PaperB0: -0.0107, PaperB1: 0.003796}
	law := control.C2DPI(control.PaperKp, control.PaperKi, control.PaperSamplePeriod, control.ForwardEuler)
	out.B0, out.B1 = law.B0, law.B1

	// Representative hotspot plant: ~12 °C of authority over the local
	// temperature with a ~25 ms thermal time constant (the measured
	// register-file constants of the CMP4 model).
	const gain, tau = 12.0, 25e-3
	plant := control.FirstOrderPlant(gain, tau)
	loop := control.PI(control.PaperKp, control.PaperKi).Series(plant).Feedback()
	out.ContinuousOK = loop.IsStable()
	out.SettlingTimeMS = float64(loop.SettlingTime()) * 1e3

	pn, pd := control.DiscretizePlantZOH(gain, tau, control.PaperSamplePeriod)
	out.DiscreteOK = law.ClosedLoopStableZ(pn, pd)

	out.RobustnessOK = true
	for _, k := range []float64{0.1, 10} {
		l := control.PI(control.PaperKp*k, control.PaperKi*k).Series(plant).Feedback()
		if !l.IsStable() {
			out.RobustnessOK = false
		}
	}
	return out, nil
}

// Render implements Result.
func (p *PIAnalysis) Render() string {
	t := newTable("§4: PI controller design and stability", "quantity", "reproduced", "paper")
	t.add("u[n] coefficient on e[n]", fmt.Sprintf("%+.6f", p.B0), fmt.Sprintf("%+.6f", p.PaperB0))
	t.add("u[n] coefficient on e[n-1]", fmt.Sprintf("%+.6f", p.B1), fmt.Sprintf("%+.6f", p.PaperB1))
	t.add("continuous closed loop stable", yesNo(p.ContinuousOK), "yes (root locus)")
	t.add("discrete closed loop stable", yesNo(p.DiscreteOK), "yes")
	t.add("stable at 0.1x..10x gains", yesNo(p.RobustnessOK), "yes (constants can deviate)")
	t.add("2% settling time", fmt.Sprintf("%.1f ms", p.SettlingTimeMS), "-")
	return t.String()
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// CoefficientError returns the worst relative deviation of the
// reproduced discrete coefficients from the published ones.
func (p *PIAnalysis) CoefficientError() float64 {
	e0 := math.Abs(p.B0-p.PaperB0) / math.Abs(p.PaperB0)
	e1 := math.Abs(p.B1-p.PaperB1) / math.Abs(p.PaperB1)
	return math.Max(e0, e1)
}
