package experiments

import (
	"testing"

	"multitherm/internal/workload"
)

// TestParallelismDoesNotChangeResults is the determinism guard for the
// sweep engine: the same study run sequentially and with a saturated
// worker pool must render byte-identical reports. Any drift here means
// shared mutable state leaked between cells (a template mutated, a
// cache returned a non-deterministic value, a result slotted by arrival
// order) and would silently corrupt every parallel reproduction.
// TestBatchingDoesNotChangeResults is the determinism guard for the
// lockstep batch engine: the same study at -batch 1 (every cell runs
// its own thermal model) and at -batch 8 (cells fused through the
// shared-propagator panel kernel) must render byte-identical reports.
// Any drift means the batched tick perturbed a rounding somewhere —
// the panel kernel reordered an FMA, a lane read a neighbour's state —
// and would silently change every batched reproduction.
func TestBatchingDoesNotChangeResults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full studies twice")
	}
	cases := []struct {
		name string
		opt  Options
		run  func(Options) (Result, error)
	}{
		{
			name: "fig3",
			opt:  Options{SimTime: 0.02, Workloads: workload.Mixes[:3]},
			run:  func(o Options) (Result, error) { return RunFig3(o) },
		},
		{
			name: "table8",
			opt:  Options{SimTime: 0.01, Workloads: workload.Mixes[:2]},
			run:  func(o Options) (Result, error) { return RunTable8(o) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			unbatched := tc.opt
			unbatched.Batch = 1
			a, err := tc.run(unbatched)
			if err != nil {
				t.Fatal(err)
			}
			batched := tc.opt
			batched.Batch = 8
			b, err := tc.run(batched)
			if err != nil {
				t.Fatal(err)
			}
			if a.Render() != b.Render() {
				t.Errorf("%s renders differently at Batch=1 vs 8:\n--- unbatched ---\n%s\n--- batched ---\n%s",
					tc.name, a.Render(), b.Render())
			}
		})
	}
}

// TestRaggedBatchesUnderStealingDoNotChangeResults crosses the two
// axes the work-stealing engine mixes at runtime: odd batch widths that
// never divide the (Template, dt) group sizes evenly (so every group
// ends in a ragged tail), and several worker counts (so concurrent
// claimers split groups at scheduling-dependent boundaries). Whatever
// partition the claim interleaving produces, the rendered study must be
// byte-identical to the sequential unbatched run — the PR 3 bit-equality
// guarantee, now load-bearing for dynamic batch formation.
func TestRaggedBatchesUnderStealingDoNotChangeResults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full studies repeatedly")
	}
	opt := Options{SimTime: 0.01, Workloads: workload.Mixes[:3]}
	base := opt
	base.Parallelism, base.Batch = 1, 1
	want, err := RunTable8(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		for _, width := range []int{3, 5, 7} {
			o := opt
			o.Parallelism, o.Batch = workers, width
			got, err := RunTable8(o)
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, width, err)
			}
			if got.Render() != want.Render() {
				t.Errorf("workers=%d batch=%d renders differently from sequential unbatched:\n--- want ---\n%s\n--- got ---\n%s",
					workers, width, want.Render(), got.Render())
			}
		}
	}
}

func TestParallelismDoesNotChangeResults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full studies twice")
	}
	cases := []struct {
		name string
		opt  Options
		run  func(Options) (Result, error)
	}{
		{
			name: "fig3",
			opt:  Options{SimTime: 0.02, Workloads: workload.Mixes[:3]},
			run:  func(o Options) (Result, error) { return RunFig3(o) },
		},
		{
			name: "table8",
			opt:  Options{SimTime: 0.01, Workloads: workload.Mixes[:2]},
			run:  func(o Options) (Result, error) { return RunTable8(o) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := tc.opt
			seq.Parallelism = 1
			a, err := tc.run(seq)
			if err != nil {
				t.Fatal(err)
			}
			par := tc.opt
			par.Parallelism = 8
			b, err := tc.run(par)
			if err != nil {
				t.Fatal(err)
			}
			if a.Render() != b.Render() {
				t.Errorf("%s renders differently at Parallelism=1 vs 8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					tc.name, a.Render(), b.Render())
			}
		})
	}
}
