package experiments

import (
	"fmt"
	"strings"
)

// table is a minimal text-table builder for experiment reports.
type table struct {
	title   string
	headers []string
	rows    [][]string
}

func newTable(title string, headers ...string) *table {
	return &table{title: title, headers: headers}
}

func (t *table) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteString("\n")
	}
	line(t.headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
