package experiments

import (
	"strings"
	"testing"

	"multitherm/internal/core"
	"multitherm/internal/workload"
)

// quick returns fast options over a reduced workload subset that still
// spans the mix spectrum (IIII, IIFF, IFFF).
func quick(t testing.TB) Options {
	t.Helper()
	o := QuickOptions()
	for _, n := range []string{"workload1", "workload7", "workload10"} {
		m, err := workload.MixByName(n)
		if err != nil {
			t.Fatal(err)
		}
		o.Workloads = append(o.Workloads, m)
	}
	return o
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4", "pi", "fig3",
		"table5", "fig5", "table6", "table7", "fig7", "table8",
		"sensitivity", "dutyvalid"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry size %d, want %d", len(reg), len(want))
	}
	for i, w := range want {
		if reg[i].Name != w {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].Name, w)
		}
	}
	if _, err := Find("table5"); err != nil {
		t.Error(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestStaticTables(t *testing.T) {
	if s := Table2().Render(); !strings.Contains(s, "stop-go / DVFS") {
		t.Errorf("table2 malformed:\n%s", s)
	}
	if s := Table3().Render(); !strings.Contains(s, "3.6 GHz") || !strings.Contains(s, "720 MHz") {
		t.Errorf("table3 missing clock data:\n%s", s)
	}
	s := Table4().Render()
	if !strings.Contains(s, "gzip, twolf, ammp, lucas") || !strings.Contains(s, "IIFF") {
		t.Errorf("table4 missing workload7:\n%s", s)
	}
}

func TestPIAnalysisReproducesPaper(t *testing.T) {
	r, err := RunPIAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if e := r.CoefficientError(); e > 0.002 {
		t.Errorf("discrete coefficient error %.4f%% too large", e*100)
	}
	if !r.ContinuousOK || !r.DiscreteOK || !r.RobustnessOK {
		t.Errorf("stability flags: continuous=%v discrete=%v robust=%v",
			r.ContinuousOK, r.DiscreteOK, r.RobustnessOK)
	}
	if !strings.Contains(r.Render(), "-0.0107") {
		t.Error("render missing published coefficient")
	}
}

func TestTable1ShapeQuick(t *testing.T) {
	r, err := RunTable1(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stable) != 8 || len(r.Ranging) != 4 {
		t.Fatalf("rows = %d/%d", len(r.Stable), len(r.Ranging))
	}
	if e := r.MaxStableError(); e > 2.0 {
		t.Errorf("worst stable-temperature error %.1f °C > 2 °C", e)
	}
	for _, row := range r.Ranging {
		if row.MaxC-row.MinC < 2 {
			t.Errorf("%s: measured range %.0f-%.0f too narrow for a non-steady benchmark",
				row.Name, row.MinC, row.MaxC)
		}
	}
	// mcf must be the coolest stable benchmark, sixtrack the hottest.
	var min, max Table1Row
	min.MeasuredC, max.MeasuredC = 1e9, -1e9
	for _, row := range r.Stable {
		if row.MeasuredC < min.MeasuredC {
			min = row
		}
		if row.MeasuredC > max.MeasuredC {
			max = row
		}
	}
	if min.Name != "mcf" {
		t.Errorf("coolest = %s, want mcf", min.Name)
	}
	if max.Name != "sixtrack" && max.Name != "gzip" {
		t.Errorf("hottest = %s, want sixtrack or gzip", max.Name)
	}
}

func TestTable5OrderingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	r, err := RunTable5(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	gs := core.PolicySpec{Mechanism: core.StopGo, Scope: core.Global}
	gd := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Global}
	dd := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed}
	// Paper ordering: global stop-go < dist stop-go < global DVFS < dist DVFS.
	if !(r.Relative(gs) < 1 && 1 < r.Relative(gd) && r.Relative(gd) < r.Relative(dd)) {
		t.Errorf("ordering broken: gStop=%.2f base=1.00 gDVFS=%.2f dDVFS=%.2f",
			r.Relative(gs), r.Relative(gd), r.Relative(dd))
	}
	if r.Emergencies() > 0.01 {
		t.Errorf("thermal emergencies: %.1f ms", r.Emergencies()*1e3)
	}
	if !strings.Contains(r.Render(), "paper rel.") {
		t.Error("render missing paper reference column")
	}
}

func TestFig3SeriesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	r, err := RunFig3(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	dd := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed}
	if len(r.Series[dd]) != 3 {
		t.Fatalf("series length %d", len(r.Series[dd]))
	}
	for i, v := range r.Series[dd] {
		if v < 1 {
			t.Errorf("workload %d: dist DVFS rel %.2f below baseline", i, v)
		}
	}
}

func TestTable6SpeedupsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	r, err := RunTable6(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	for spec, s := range r.SpeedupOverBase {
		if spec.Mechanism == core.StopGo && s < 1.0 {
			t.Errorf("%s: migration speedup %.2f < 1 over stop-go", spec, s)
		}
		if spec.Mechanism == core.DVFS && s < 0.93 {
			t.Errorf("%s: migration speedup %.2f catastrophically low", spec, s)
		}
	}
	if !strings.Contains(r.Render(), "Table 6") {
		t.Error("render missing table header")
	}
}

func TestFig5SeriesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	r, err := RunFig5(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 50 {
		t.Fatalf("only %d points", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Scale < 0.2 || p.Scale > 1.0 {
			t.Errorf("scale %v outside actuator limits", p.Scale)
		}
		if p.IntRF > 84.5 || p.FPRF > 84.5 {
			t.Errorf("hotspot exceeded threshold: %v/%v", p.IntRF, p.FPRF)
		}
	}
	if r.Migrations() == 0 {
		t.Error("no migrations observed on the core (Figure 5 shows several)")
	}
	if !strings.Contains(r.Render(), "migration") {
		t.Error("render missing migration markers")
	}
}

func TestSensitivityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	r, err := RunSensitivity(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range r.Specs {
		if r.DutyAt100[spec] <= r.DutyAt84[spec] {
			t.Errorf("%s: duty did not rise at 100 °C (%.3f vs %.3f)",
				spec, r.DutyAt100[spec], r.DutyAt84[spec])
		}
	}
	if !r.OrderingPreserved() {
		t.Error("policy ordering changed at the relaxed threshold")
	}
}

func TestDutyValidityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite")
	}
	r, err := RunDutyValidity(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if e := r.WorstError(); e > 10 {
		t.Errorf("duty metric error %.1f points; paper reports accurate prediction", e)
	}
}
