package experiments

import (
	"fmt"
	"math"

	"multitherm/internal/control"
	"multitherm/internal/core"
	"multitherm/internal/metrics"
	"multitherm/internal/sim"
	"multitherm/internal/units"
)

// The artifacts in this file go beyond the paper's evaluation, covering
// the extension axes its §9 names (heterogeneous cores) and the design
// ablations DESIGN.md calls out. They are reached through
// ExtensionRegistry / cmd/sweep -ablations.

// ExtensionRegistry lists the beyond-the-paper artifacts.
func ExtensionRegistry() []Runner {
	return []Runner{
		{"hetero", "policies on a performance-heterogeneous (big.LITTLE-style) chip (§9 extension)",
			func(o Options) (Result, error) { return RunHetero(o) }},
		{"ablation-stall", "stop-go stall-interval sweep (10/30/60 ms)",
			func(o Options) (Result, error) { return RunStallAblation(o) }},
		{"ablation-setpoint", "DVFS setpoint-margin sweep (1/2.4/5 °C)",
			func(o Options) (Result, error) { return RunSetpointAblation(o) }},
		{"ablation-epoch", "migration epoch sweep (2/10/50 ms)",
			func(o Options) (Result, error) { return RunEpochAblation(o) }},
		{"ablation-pid", "PI vs PID derivative-term study (§4.1 remark)",
			func(o Options) (Result, error) { return RunPIDAblation() }},
		{"multiproc", "time-shared multiprogramming: 6 processes on 4 cores (§6 extension)",
			func(o Options) (Result, error) { return RunMultiproc(o) }},
		{"manycore", "taxonomy on generated 16-1024-core grids via the sparse Krylov solve",
			func(o Options) (Result, error) { return RunManycore(o) }},
	}
}

// FindExtension returns the named extension runner.
func FindExtension(name string) (Runner, error) {
	for _, r := range ExtensionRegistry() {
		if r.Name == name {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown extension artifact %q", name)
}

// --------------------------------------------------------------- hetero

// HeteroResult compares the main taxonomy cells on a homogeneous chip
// versus one where two of the four cores are capped at 70 % frequency.
type HeteroResult struct {
	Specs []core.PolicySpec
	Homo  map[core.PolicySpec]metrics.Summary
	Het   map[core.PolicySpec]metrics.Summary
}

// ID implements Result.
func (h *HeteroResult) ID() string { return "hetero" }

// RunHetero evaluates the §9 heterogeneous-cores extension.
func RunHetero(o Options) (*HeteroResult, error) {
	specs := []core.PolicySpec{
		core.Baseline,
		{Mechanism: core.DVFS, Scope: core.Global},
		{Mechanism: core.DVFS, Scope: core.Distributed},
		{Mechanism: core.DVFS, Scope: core.Distributed, Migration: core.SensorMigration},
	}
	out := &HeteroResult{
		Specs: specs,
		Homo:  map[core.PolicySpec]metrics.Summary{},
		Het:   map[core.PolicySpec]metrics.Summary{},
	}
	for _, spec := range specs {
		runs, err := runPolicy(o, o.simConfig(), spec)
		if err != nil {
			return nil, err
		}
		out.Homo[spec] = metrics.Summarize(spec.String(), runs)

		cfg := o.simConfig()
		cfg.CoreMaxScale = []units.ScaleFactor{1, 1, 0.7, 0.7}
		runs, err = runPolicy(o, cfg, spec)
		if err != nil {
			return nil, err
		}
		out.Het[spec] = metrics.Summarize(spec.String(), runs)
	}
	return out, nil
}

// Render implements Result.
func (h *HeteroResult) Render() string {
	t := newTable("Extension (§9): performance-heterogeneous chip (cores 2,3 capped at 0.7)",
		"policy", "homogeneous BIPS", "hetero BIPS", "hetero retains")
	for _, spec := range h.Specs {
		ho, he := h.Homo[spec], h.Het[spec]
		ratio := 0.0
		if ho.MeanBIPS > 0 {
			ratio = float64(he.MeanBIPS / ho.MeanBIPS)
		}
		t.add(spec.String(),
			fmt.Sprintf("%.2f", ho.MeanBIPS),
			fmt.Sprintf("%.2f", he.MeanBIPS),
			fmt.Sprintf("%.0f%%", ratio*100))
	}
	return t.String() + "Under thermal duress, capping half the cores costs the DVFS policies\n" +
		"almost nothing (their controllers already operate below the cap) and can\n" +
		"even help naive stop-go, for which the cap acts as a built-in static\n" +
		"throttle that avoids 30 ms stalls — heterogeneity changes the operating\n" +
		"points, not the taxonomy's ordering.\n"
}

// ------------------------------------------------------------ ablations

// SweepResult is a generic one-knob ablation over a policy.
type SweepResult struct {
	id     string
	Knob   string
	Policy core.PolicySpec
	Labels []string
	BIPS   []units.BIPS
	Duty   []units.ScaleFactor
	Worst  []units.Celsius
}

// ID implements Result.
func (s *SweepResult) ID() string { return s.id }

// Render implements Result.
func (s *SweepResult) Render() string {
	t := newTable(fmt.Sprintf("Ablation: %s under %s", s.Knob, s.Policy),
		s.Knob, "BIPS", "duty cycle", "worst temp")
	for i, l := range s.Labels {
		t.add(l,
			fmt.Sprintf("%.2f", s.BIPS[i]),
			fmt.Sprintf("%.1f%%", s.Duty[i]*100),
			fmt.Sprintf("%.2f °C", s.Worst[i]))
	}
	return t.String()
}

func runSweep(o Options, id, knob string, spec core.PolicySpec,
	labels []string, mutate func(idx int, cfg *sim.Config)) (*SweepResult, error) {
	out := &SweepResult{id: id, Knob: knob, Policy: spec, Labels: labels}
	for i := range labels {
		cfg := o.simConfig()
		mutate(i, &cfg)
		runs, err := runPolicy(o, cfg, spec)
		if err != nil {
			return nil, err
		}
		sum := metrics.Summarize(spec.String(), runs)
		out.BIPS = append(out.BIPS, sum.MeanBIPS)
		out.Duty = append(out.Duty, sum.MeanDuty)
		out.Worst = append(out.Worst, sum.WorstTemp)
	}
	return out, nil
}

// RunStallAblation sweeps the stop-go stall interval. The paper chose
// 30 ms to match millisecond thermal time constants; the sweep shows
// the cost of both shorter (thrashing trips) and longer (wasted idle)
// intervals.
func RunStallAblation(o Options) (*SweepResult, error) {
	stalls := []units.Seconds{10e-3, 30e-3, 60e-3}
	return runSweep(o, "ablation-stall", "stall interval", core.Baseline,
		[]string{"10 ms", "30 ms (paper)", "60 ms"},
		func(i int, cfg *sim.Config) { cfg.Policy.StallSeconds = stalls[i] })
}

// RunSetpointAblation sweeps the PI setpoint margin below the 84.2 °C
// threshold: small margins risk emergencies, large ones waste headroom.
func RunSetpointAblation(o Options) (*SweepResult, error) {
	margins := []units.Celsius{1.0, 2.4, 5.0}
	spec := core.PolicySpec{Mechanism: core.DVFS, Scope: core.Distributed}
	return runSweep(o, "ablation-setpoint", "setpoint margin", spec,
		[]string{"1.0 °C", "2.4 °C (paper)", "5.0 °C"},
		func(i int, cfg *sim.Config) { cfg.Policy.SetpointMarginC = margins[i] })
}

// RunEpochAblation sweeps the OS migration epoch around the paper's
// 10 ms timer-interrupt spacing.
func RunEpochAblation(o Options) (*SweepResult, error) {
	epochs := []units.Seconds{2e-3, 10e-3, 50e-3}
	spec := core.PolicySpec{Mechanism: core.StopGo, Scope: core.Distributed, Migration: core.CounterMigration}
	return runSweep(o, "ablation-epoch", "migration epoch", spec,
		[]string{"2 ms", "10 ms (paper)", "50 ms"},
		func(i int, cfg *sim.Config) { cfg.MigrationEpoch = epochs[i] })
}

// PIDAblationResult quantifies the paper's §4.1 remark that the
// derivative term adds little.
type PIDAblationResult struct {
	Kds      []float64
	PI, PIDs []control.ThermalControlQuality
}

// ID implements Result.
func (p *PIDAblationResult) ID() string { return "ablation-pid" }

// RunPIDAblation compares PI against PIDs of increasing derivative gain
// on the canonical hotspot testbench.
func RunPIDAblation() (*PIDAblationResult, error) {
	out := &PIDAblationResult{Kds: []float64{1e-6, 1e-5, 1e-4}}
	for _, kd := range out.Kds {
		pi, pid := control.ComparePIvsPID(kd, 81.8, 84.2)
		out.PI = append(out.PI, pi)
		out.PIDs = append(out.PIDs, pid)
	}
	return out, nil
}

// Render implements Result.
func (p *PIDAblationResult) Render() string {
	t := newTable("Ablation (§4.1): derivative term benefit on the hotspot testbench",
		"controller", "peak °C", "settle", "mean |err| °C")
	q := p.PI[0]
	t.add("PI (paper)", fmt.Sprintf("%.2f", q.PeakTempC), fmtSettle(q.SettleMS), fmt.Sprintf("%.3f", q.MeanAbsErrC))
	for i, kd := range p.Kds {
		q := p.PIDs[i]
		t.add(fmt.Sprintf("PID kd=%g", kd), fmt.Sprintf("%.2f", q.PeakTempC),
			fmtSettle(q.SettleMS), fmt.Sprintf("%.3f", q.MeanAbsErrC))
	}
	return t.String() + "paper §4.1: \"the derivative term has little benefit for this type of thermal control\"\n"
}

func fmtSettle(ms float64) string {
	if math.IsInf(ms, 1) {
		return "never"
	}
	return fmt.Sprintf("%.0f ms", ms)
}

// -------------------------------------------------------- multiproc

// MultiprocResult exercises the §6 observation that real systems run
// more processes than cores: six processes time-share the four cores
// under round-robin fairness while the DTM policies operate normally.
type MultiprocResult struct {
	Specs       []core.PolicySpec
	BIPS        []units.BIPS
	Duty        []units.ScaleFactor
	Preemptions []int
	Migrations  []int
	FairnessMin []float64 // smallest process share of the largest
	Worst       []units.Celsius
}

// ID implements Result.
func (m *MultiprocResult) ID() string { return "multiproc" }

// RunMultiproc evaluates DTM policies under time-shared
// multiprogramming.
func RunMultiproc(o Options) (*MultiprocResult, error) {
	benchmarks := []string{"gzip", "twolf", "ammp", "lucas", "mcf", "sixtrack"}
	specs := []core.PolicySpec{
		core.Baseline,
		{Mechanism: core.DVFS, Scope: core.Distributed},
		{Mechanism: core.DVFS, Scope: core.Distributed, Migration: core.SensorMigration},
	}
	out := &MultiprocResult{Specs: specs}
	for _, spec := range specs {
		cfg := o.simConfig()
		r, err := sim.NewTimeshared(cfg, "sixmix", benchmarks, spec, 0)
		if err != nil {
			return nil, err
		}
		m, err := r.Run()
		if err != nil {
			return nil, err
		}
		var min, max float64 = math.Inf(1), 0
		for _, p := range r.Scheduler().Processes() {
			cy := p.Lifetime.AdjCycles
			if cy < min {
				min = cy
			}
			if cy > max {
				max = cy
			}
		}
		fair := 0.0
		if max > 0 {
			fair = min / max
		}
		out.BIPS = append(out.BIPS, m.BIPS())
		out.Duty = append(out.Duty, m.DutyCycle())
		out.Preemptions = append(out.Preemptions, m.Preemptions)
		out.Migrations = append(out.Migrations, m.Migrations)
		out.FairnessMin = append(out.FairnessMin, fair)
		out.Worst = append(out.Worst, m.MaxTempC)
	}
	return out, nil
}

// Render implements Result.
func (m *MultiprocResult) Render() string {
	t := newTable("Extension (§6): six processes time-sharing four cores",
		"policy", "BIPS", "duty", "preemptions", "migrations", "fairness (min/max share)", "worst temp")
	for i, spec := range m.Specs {
		t.add(spec.String(),
			fmt.Sprintf("%.2f", m.BIPS[i]),
			fmt.Sprintf("%.1f%%", m.Duty[i]*100),
			fmt.Sprintf("%d", m.Preemptions[i]),
			fmt.Sprintf("%d", m.Migrations[i]),
			fmt.Sprintf("%.2f", m.FairnessMin[i]),
			fmt.Sprintf("%.2f °C", m.Worst[i]))
	}
	return t.String() + "The round-robin fairness rotation and the thermal policies compose:\nno starvation, no emergencies, and DVFS keeps its advantage.\n"
}
