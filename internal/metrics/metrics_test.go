package metrics

import (
	"math"
	"testing"

	"multitherm/internal/units"
)

func runWith(policy, wl string, simTime, instr, work float64) *Run {
	r := NewRun(policy, wl, 4)
	r.SimTime = units.Seconds(simTime)
	r.Instructions = instr
	r.WorkSeconds = units.Seconds(work)
	return r
}

func TestBIPS(t *testing.T) {
	r := runWith("p", "w", 0.5, 5e9, 1)
	if got := r.BIPS(); math.Abs(float64(got)-10) > 1e-12 {
		t.Errorf("BIPS = %v, want 10", got)
	}
	empty := NewRun("p", "w", 4)
	if empty.BIPS() != 0 {
		t.Error("zero-time BIPS should be 0")
	}
}

func TestDutyCycle(t *testing.T) {
	// 4 cores × 0.5 s = 2 core-seconds possible; 1 work-second = 50%.
	r := runWith("p", "w", 0.5, 0, 1.0)
	if got := r.DutyCycle(); math.Abs(float64(got)-0.5) > 1e-12 {
		t.Errorf("duty = %v, want 0.5", got)
	}
}

func TestValidate(t *testing.T) {
	r := runWith("p", "w", 0.5, 1e9, 1.0)
	if err := r.Validate(); err != nil {
		t.Errorf("valid run rejected: %v", err)
	}
	if err := runWith("p", "w", 0, 0, 0).Validate(); err == nil {
		t.Error("zero sim time accepted")
	}
	over := runWith("p", "w", 0.5, 0, 3.0) // duty > 1
	if err := over.Validate(); err == nil {
		t.Error("duty > 1 accepted")
	}
	neg := runWith("p", "w", 0.5, -1, 1)
	if err := neg.Validate(); err == nil {
		t.Error("negative instructions accepted")
	}
}

func TestSummarize(t *testing.T) {
	a := runWith("p", "w1", 0.5, 4e9, 0.8)
	a.MaxTempC = 83
	b := runWith("p", "w2", 0.5, 6e9, 1.2)
	b.MaxTempC = 84
	b.EmergencySeconds = 0.01
	s := Summarize("p", []*Run{a, b})
	if math.Abs(float64(s.MeanBIPS)-10) > 1e-12 { // (8+12)/2
		t.Errorf("mean BIPS = %v, want 10", s.MeanBIPS)
	}
	if math.Abs(float64(s.MeanDuty)-0.5) > 1e-12 { // (0.4+0.6)/2
		t.Errorf("mean duty = %v, want 0.5", s.MeanDuty)
	}
	if s.WorstTemp != 84 {
		t.Errorf("worst temp = %v", s.WorstTemp)
	}
	if s.TotalEmer != 0.01 {
		t.Errorf("emergencies = %v", s.TotalEmer)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize("p", nil)
	if s.MeanBIPS != 0 || s.MeanDuty != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestRelative(t *testing.T) {
	base := Summarize("base", []*Run{runWith("base", "w", 0.5, 2e9, 1)})
	fast := Summarize("fast", []*Run{runWith("fast", "w", 0.5, 5e9, 1)})
	if got := fast.Relative(base); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("relative = %v, want 2.5", got)
	}
	var zero Summary
	if fast.Relative(zero) != 0 {
		t.Error("relative to zero baseline should be 0")
	}
}

func TestPerWorkloadRelative(t *testing.T) {
	base := []*Run{
		runWith("b", "w1", 0.5, 2e9, 1),
		runWith("b", "w2", 0.5, 4e9, 1),
	}
	pol := []*Run{
		runWith("p", "w1", 0.5, 4e9, 1),
		runWith("p", "w2", 0.5, 4e9, 1),
	}
	rel, err := PerWorkloadRelative(pol, base)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel[0]-2) > 1e-12 || math.Abs(rel[1]-1) > 1e-12 {
		t.Errorf("rel = %v, want [2 1]", rel)
	}
}

func TestPerWorkloadRelativeMismatch(t *testing.T) {
	a := []*Run{runWith("p", "w1", 0.5, 1, 1)}
	b := []*Run{runWith("b", "w2", 0.5, 1, 1)}
	if _, err := PerWorkloadRelative(a, b); err == nil {
		t.Error("workload mismatch accepted")
	}
	if _, err := PerWorkloadRelative(a, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}
