package metrics

import (
	"math"
	"testing"

	"multitherm/internal/units"
)

// TestThroughputAndDutyKeepSeparateGauges pins the dimensional split
// the refactor introduced: absolute throughput is units.BIPS, the duty
// cycle is units.ScaleFactor, and the only place the two meet — the
// relative-throughput comparison — is an explicitly dimensionless
// float64 ratio, never a BIPS or a ScaleFactor.
func TestThroughputAndDutyKeepSeparateGauges(t *testing.T) {
	mk := func(instr float64) *Run {
		r := NewRun("pi-dvfs", "workload1", 4)
		r.Instructions = instr
		r.SimTime = 2
		r.WorkSeconds = 6 // of 4 cores × 2 s = 8 core-seconds
		return r
	}
	run := mk(12e9)

	// Each quantity carries its own gauge; the assignments are the
	// compile-time half of the test.
	var bips units.BIPS = run.BIPS()
	var duty units.ScaleFactor = run.DutyCycle()
	if bips != 6 {
		t.Fatalf("BIPS = %v, want 6 (12e9 instructions / 2 s / 1e9)", bips)
	}
	if duty != 0.75 {
		t.Fatalf("duty = %v, want 0.75 (6 of 8 core-seconds)", duty)
	}

	// Summaries keep the gauges apart too, and the cross-summary ratio
	// comes back as a raw float64 — dimensionless by construction.
	policy := Summarize("pi-dvfs", []*Run{mk(12e9), mk(9e9)})
	base := Summarize("none", []*Run{mk(16e9), mk(12e9)})
	var rel float64 = policy.Relative(base)
	if want := float64(policy.MeanBIPS) / float64(base.MeanBIPS); math.Abs(rel-want) > 1e-15 {
		t.Fatalf("Relative = %v, want %v", rel, want)
	}
	if rel <= 0.7 || rel >= 0.8 {
		t.Fatalf("Relative = %v, want 0.75 for the constructed runs", rel)
	}

	// A duty cycle numerically equal to the ratio still lives in a
	// different gauge: converting it toward BIPS must go through a
	// deliberate float64 step, and the values agree only by arithmetic.
	if float64(policy.MeanDuty) != 0.75 {
		t.Fatalf("MeanDuty = %v, want 0.75", policy.MeanDuty)
	}
}
