// Package metrics implements the paper's evaluation metrics (§3.5):
// raw instruction throughput (BIPS) and the adjusted duty cycle — the
// ratio of work done to the work possible at full speed, with DVFS
// contributions weighted by the dynamic frequency and overheads (PLL
// retargeting, migration context switches) counted as non-work.
//
//mtlint:units
package metrics

import (
	"fmt"
	"math"

	"multitherm/internal/units"
)

// Run accumulates measurements over one simulation.
type Run struct {
	Policy   string
	Workload string

	SimTime units.Seconds // simulated time
	NCores  int

	Instructions float64 // total retired across cores
	PerCoreInstr []float64

	// WorkSeconds is Σ over cores and ticks of effectiveScale·dt: the
	// frequency-weighted productive time.
	WorkSeconds units.Seconds
	// PenaltySeconds is time lost to DVFS transitions and migration
	// context switches.
	PenaltySeconds units.Seconds
	// StallSeconds is time cores spent frozen by stop-go.
	StallSeconds units.Seconds

	MaxTempC units.Celsius
	// EmergencySeconds is time during which any die block exceeded the
	// thermal threshold.
	EmergencySeconds units.Seconds

	Migrations  int
	Preemptions int // fairness timeslice rotations (time-shared mode)
	Transitions int // DVFS retarget events
}

// NewRun initializes a run record.
func NewRun(policy, wl string, nCores int) *Run {
	return &Run{
		Policy: policy, Workload: wl, NCores: nCores,
		PerCoreInstr: make([]float64, nCores),
		MaxTempC:     units.Celsius(math.Inf(-1)),
	}
}

// BIPS returns billions of instructions per second across the chip.
func (r *Run) BIPS() units.BIPS {
	if r.SimTime <= 0 {
		return 0
	}
	return units.BIPS(r.Instructions / float64(r.SimTime) / 1e9)
}

// DutyCycle returns the adjusted duty cycle in [0,1]: achieved
// frequency-weighted work over the total possible core-seconds.
func (r *Run) DutyCycle() units.ScaleFactor {
	total := float64(r.SimTime) * float64(r.NCores)
	if total <= 0 {
		return 0
	}
	return units.ScaleFactor(float64(r.WorkSeconds) / total)
}

// Validate sanity-checks the accumulated record.
func (r *Run) Validate() error {
	if r.SimTime <= 0 {
		return fmt.Errorf("metrics: run %s/%s has non-positive sim time", r.Policy, r.Workload)
	}
	if d := r.DutyCycle(); d < 0 || d > 1+1e-9 {
		return fmt.Errorf("metrics: duty cycle %v outside [0,1]", d)
	}
	if r.Instructions < 0 {
		return fmt.Errorf("metrics: negative instruction count")
	}
	return nil
}

// Summary aggregates several runs of the same policy over different
// workloads, as the paper's Tables 5–8 do.
type Summary struct {
	Policy    string
	Runs      []*Run
	MeanBIPS  units.BIPS
	MeanDuty  units.ScaleFactor
	WorstTemp units.Celsius
	TotalEmer units.Seconds
}

// Summarize computes cross-workload averages.
func Summarize(policy string, runs []*Run) Summary {
	s := Summary{Policy: policy, Runs: runs, WorstTemp: units.Celsius(math.Inf(-1))}
	if len(runs) == 0 {
		return s
	}
	for _, r := range runs {
		s.MeanBIPS += r.BIPS()
		s.MeanDuty += r.DutyCycle()
		if r.MaxTempC > s.WorstTemp {
			s.WorstTemp = r.MaxTempC
		}
		s.TotalEmer += r.EmergencySeconds
	}
	s.MeanBIPS /= units.BIPS(len(runs))
	s.MeanDuty /= units.ScaleFactor(len(runs))
	return s
}

// Relative returns this summary's mean throughput normalized to a
// baseline summary (the paper's "relative throughput" column). The
// result is a dimensionless BIPS/BIPS ratio, deliberately not a units
// type.
//
//mtlint:allow unit relative throughput is a dimensionless ratio, not BIPS
func (s Summary) Relative(baseline Summary) float64 {
	if baseline.MeanBIPS == 0 { //mtlint:allow floatcmp division guard; both sides units.BIPS, an exactly zero baseline is degenerate
		return 0
	}
	return float64(s.MeanBIPS / baseline.MeanBIPS)
}

// PerWorkloadRelative returns, per workload, this policy's BIPS over
// the baseline's for the same workload (Figure 3's bars). Both run
// slices must be ordered identically.
//
//mtlint:allow unit per-workload relative throughput is a dimensionless ratio
func PerWorkloadRelative(policy, baseline []*Run) ([]float64, error) {
	if len(policy) != len(baseline) {
		return nil, fmt.Errorf("metrics: run count mismatch %d vs %d", len(policy), len(baseline))
	}
	out := make([]float64, len(policy))
	for i := range policy {
		if policy[i].Workload != baseline[i].Workload {
			return nil, fmt.Errorf("metrics: workload order mismatch at %d: %s vs %s",
				i, policy[i].Workload, baseline[i].Workload)
		}
		if b := baseline[i].BIPS(); b > 0 {
			out[i] = float64(policy[i].BIPS() / b)
		}
	}
	return out, nil
}
