package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"multitherm/internal/uarch"
)

// Binary format:
//
//	magic "MTTR" | version u32 | nameLen u32 | name | sampleSeconds f64 |
//	count u32 | count × (instructions f64, NumUnitKinds × activity f64)
const (
	binaryMagic   = "MTTR"
	binaryVersion = 1
	// maxDecodedSamples bounds the sample count either decoder will
	// allocate for — ~64M samples is hours of simulated execution, far
	// past any real trace, and keeps a hostile or corrupt count field
	// from sizing a multi-GB make.
	maxDecodedSamples = 1 << 26
)

// WriteBinary serializes the trace in the compact binary format.
func (t *Trace) WriteBinary(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	writeU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	writeF64 := func(v float64) error {
		return binary.Write(bw, binary.LittleEndian, math.Float64bits(v))
	}
	if err := writeU32(binaryVersion); err != nil {
		return err
	}
	if err := writeU32(uint32(len(t.Benchmark))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Benchmark); err != nil {
		return err
	}
	if err := writeF64(t.SampleSeconds); err != nil {
		return err
	}
	if err := writeU32(uint32(len(t.Samples))); err != nil {
		return err
	}
	for i := range t.Samples {
		s := &t.Samples[i]
		if err := writeF64(s.Instructions); err != nil {
			return err
		}
		for _, a := range s.Activity {
			if err := writeF64(a); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readF64 := func() (float64, error) {
		var v uint64
		err := binary.Read(br, binary.LittleEndian, &v)
		return math.Float64frombits(v), err
	}
	ver, err := readU32()
	if err != nil {
		return nil, err
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := readU32()
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	t := &Trace{Benchmark: string(name)}
	if t.SampleSeconds, err = readF64(); err != nil {
		return nil, err
	}
	count, err := readU32()
	if err != nil {
		return nil, err
	}
	if count > maxDecodedSamples {
		return nil, fmt.Errorf("trace: implausible sample count %d", count)
	}
	t.Samples = make([]uarch.Sample, count)
	for i := range t.Samples {
		s := &t.Samples[i]
		if s.Instructions, err = readF64(); err != nil {
			return nil, err
		}
		for k := range s.Activity {
			if s.Activity[k], err = readF64(); err != nil {
				return nil, err
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// jsonTrace is the stable JSON wire form.
type jsonTrace struct {
	Benchmark     string       `json:"benchmark"`
	SampleSeconds float64      `json:"sample_seconds"`
	Samples       []jsonSample `json:"samples"`
	Version       int          `json:"version"`
}

type jsonSample struct {
	Instructions float64   `json:"instructions"`
	Activity     []float64 `json:"activity"`
}

// WriteJSON serializes the trace as JSON (for inspection/tooling).
func (t *Trace) WriteJSON(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	jt := jsonTrace{Benchmark: t.Benchmark, SampleSeconds: t.SampleSeconds, Version: binaryVersion}
	jt.Samples = make([]jsonSample, len(t.Samples))
	for i := range t.Samples {
		s := &t.Samples[i]
		jt.Samples[i] = jsonSample{
			Instructions: s.Instructions,
			Activity:     append([]float64(nil), s.Activity[:]...),
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jt)
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: decoding json: %w", err)
	}
	if len(jt.Samples) > maxDecodedSamples {
		return nil, fmt.Errorf("trace: json carries %d samples; the decoder cap is %d", len(jt.Samples), maxDecodedSamples)
	}
	t := &Trace{Benchmark: jt.Benchmark, SampleSeconds: jt.SampleSeconds}
	t.Samples = make([]uarch.Sample, len(jt.Samples))
	for i, js := range jt.Samples {
		if len(js.Activity) != uarch.NumUnitKinds {
			return nil, fmt.Errorf("trace: sample %d has %d activities, want %d",
				i, len(js.Activity), uarch.NumUnitKinds)
		}
		t.Samples[i].Instructions = js.Instructions
		copy(t.Samples[i].Activity[:], js.Activity)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
