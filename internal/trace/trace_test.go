package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"multitherm/internal/uarch"
)

func testGenerator(t testing.TB) *uarch.Generator {
	t.Helper()
	prof := uarch.Profile{
		Name: "tracegen", Category: uarch.SPECint,
		IntOps: 0.45, Loads: 0.22, Stores: 0.12, Branches: 0.18, FPOps: 0.03,
		ILP: 2.5, L1MissRate: 0.03, L2MissRate: 0.1, MLP: 2, Mispredict: 0.05,
		PhaseAmplitude: 0.2, PhasePeriod: 0.02, NoiseAmplitude: 0.05, Seed: 99,
	}
	g, err := uarch.NewGenerator(uarch.DefaultConfig(), prof)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testTrace(t testing.TB, n int) *Trace {
	t.Helper()
	tr, err := Record(testGenerator(t), n)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRecordAndValidate(t *testing.T) {
	tr := testTrace(t, 100)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 100 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Benchmark != "tracegen" {
		t.Errorf("Benchmark = %q", tr.Benchmark)
	}
	wantDur := 100 * uarch.DefaultConfig().SampleSeconds()
	if math.Abs(tr.Duration()-wantDur) > 1e-12 {
		t.Errorf("Duration = %v, want %v", tr.Duration(), wantDur)
	}
}

func TestRecordRejectsBadCount(t *testing.T) {
	if _, err := Record(testGenerator(t), 0); err == nil {
		t.Error("zero-length record accepted")
	}
}

func TestAtWraparound(t *testing.T) {
	tr := testTrace(t, 10)
	if tr.At(0) != tr.At(10) || tr.At(3) != tr.At(23) {
		t.Error("At does not wrap around")
	}
	if tr.At(-1) != tr.At(9) {
		t.Error("negative index does not wrap")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := testTrace(t, 5)
	tr.Samples[2].Activity[1] = 1.5
	if err := tr.Validate(); err == nil {
		t.Error("out-of-range activity accepted")
	}
	tr = testTrace(t, 5)
	tr.Samples[0].Instructions = math.NaN()
	if err := tr.Validate(); err == nil {
		t.Error("NaN instructions accepted")
	}
	tr = testTrace(t, 5)
	tr.Benchmark = ""
	if err := tr.Validate(); err == nil {
		t.Error("empty benchmark accepted")
	}
	empty := &Trace{Benchmark: "x", SampleSeconds: 1}
	if err := empty.Validate(); err == nil {
		t.Error("empty sample list accepted")
	}
}

func TestCursorFullSpeedAdvance(t *testing.T) {
	tr := testTrace(t, 50)
	c := NewCursor(tr)
	var retired float64
	for i := 0; i < 50; i++ {
		retired += c.Advance(1.0)
	}
	// At scale 1.0, one full pass retires exactly the sum of the trace.
	var want float64
	for i := range tr.Samples {
		want += tr.Samples[i].Instructions
	}
	if math.Abs(retired-want) > 1e-6*want {
		t.Errorf("retired %v, want %v", retired, want)
	}
	if math.Abs(c.Position()-50) > 1e-9 {
		t.Errorf("position %v, want 50", c.Position())
	}
}

func TestCursorScaledAdvance(t *testing.T) {
	// Advancing at scale s for n steps covers s·n sample-widths and
	// retires proportionally fewer instructions — the DVFS slowdown.
	tr := testTrace(t, 40)
	full := NewCursor(tr)
	half := NewCursor(tr)
	var rFull, rHalf float64
	for i := 0; i < 40; i++ {
		rFull += full.Advance(1.0)
		rHalf += half.Advance(0.5)
	}
	if math.Abs(half.Position()-20) > 1e-9 {
		t.Errorf("half-speed position %v, want 20", half.Position())
	}
	if rHalf >= rFull {
		t.Error("half speed retired at least as much as full speed")
	}
}

func TestCursorAdvanceSplitsAcrossSamples(t *testing.T) {
	tr := testTrace(t, 4)
	// Force distinct instruction counts.
	for i := range tr.Samples {
		tr.Samples[i].Instructions = float64((i + 1) * 1000)
	}
	c := NewCursor(tr)
	got := c.Advance(2.5) // crosses samples 0,1 fully and half of 2
	want := 1000.0 + 2000 + 0.5*3000
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("retired %v, want %v", got, want)
	}
}

func TestCursorAdvanceZero(t *testing.T) {
	tr := testTrace(t, 5)
	c := NewCursor(tr)
	if r := c.Advance(0); r != 0 {
		t.Errorf("zero advance retired %v", r)
	}
}

func TestCursorNegativePanics(t *testing.T) {
	tr := testTrace(t, 5)
	c := NewCursor(tr)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Advance(-0.1)
}

func TestCursorConservationProperty(t *testing.T) {
	// Total retired instructions depend only on total distance covered,
	// not on the step pattern.
	tr := testTrace(t, 30)
	f := func(steps []uint8) bool {
		if len(steps) == 0 {
			return true
		}
		c1 := NewCursor(tr)
		c2 := NewCursor(tr)
		var total, r1 float64
		for _, s := range steps {
			step := float64(s%100) / 50.0 // 0..2 sample widths
			total += step
			r1 += c1.Advance(step)
		}
		r2 := c2.Advance(total)
		return math.Abs(r1-r2) < 1e-6*(1+r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := testTrace(t, 64)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != tr.Benchmark || got.SampleSeconds != tr.SampleSeconds {
		t.Error("header mismatch after round trip")
	}
	if len(got.Samples) != len(tr.Samples) {
		t.Fatalf("sample count %d, want %d", len(got.Samples), len(tr.Samples))
	}
	for i := range tr.Samples {
		if got.Samples[i] != tr.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a trace at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated valid prefix.
	tr := testTrace(t, 8)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := testTrace(t, 16)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Samples {
		if got.Samples[i] != tr.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestJSONRejectsWrongActivityCount(t *testing.T) {
	in := `{"benchmark":"x","sample_seconds":1e-5,"samples":[{"instructions":1,"activity":[0.5]}],"version":1}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Error("wrong activity arity accepted")
	}
}

func TestMeanInstructions(t *testing.T) {
	tr := testTrace(t, 3)
	for i := range tr.Samples {
		tr.Samples[i].Instructions = float64(i * 100) // 0,100,200
	}
	if got := tr.MeanInstructionsPerSample(); got != 100 {
		t.Errorf("mean = %v, want 100", got)
	}
}
