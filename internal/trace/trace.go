// Package trace stores and replays per-benchmark activity traces — the
// "long (hundreds of milliseconds) output traces of power behavior
// containing data samples every 100,000 cycles (28 µs)" of paper §3.1.
// Traces are recorded once from the µarch model (the Turandot +
// PowerTimer stage of Figure 2) and then looped by the thermal/timing
// simulator until the full simulated interval has elapsed (§3.3).
package trace

import (
	"fmt"
	"math"

	"multitherm/internal/uarch"
)

// Trace is a recorded activity trace for one benchmark.
type Trace struct {
	Benchmark     string
	SampleSeconds float64 // wall-clock duration of one sample at full speed
	Samples       []uarch.Sample
}

// Record materializes n samples from the generator, mirroring the
// paper's SimPoint-selected 500M-instruction traces (≈3600 intervals at
// IPC ≈ 1.4).
func Record(g *uarch.Generator, n int) (*Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: sample count %d must be positive", n)
	}
	t := &Trace{
		Benchmark:     g.Profile().Name,
		SampleSeconds: g.Config().SampleSeconds(),
		Samples:       make([]uarch.Sample, n),
	}
	for i := range t.Samples {
		t.Samples[i] = g.Sample(int64(i))
	}
	return t, nil
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Samples) }

// Duration returns the trace length in seconds at full speed.
func (t *Trace) Duration() float64 { return float64(len(t.Samples)) * t.SampleSeconds }

// At returns the sample at index i with wraparound: when a trace "is
// completed before the end of the simulation, that trace is restarted
// at the beginning" (§3.3).
func (t *Trace) At(i int64) *uarch.Sample {
	n := int64(len(t.Samples))
	i %= n
	if i < 0 {
		i += n
	}
	return &t.Samples[i]
}

// MeanInstructionsPerSample returns the average instruction count per
// interval, used by calibration and metrics code.
func (t *Trace) MeanInstructionsPerSample() float64 {
	var s float64
	for i := range t.Samples {
		s += t.Samples[i].Instructions
	}
	return s / float64(len(t.Samples))
}

// Validate checks structural invariants.
func (t *Trace) Validate() error {
	if t.Benchmark == "" {
		return fmt.Errorf("trace: empty benchmark name")
	}
	if t.SampleSeconds <= 0 {
		return fmt.Errorf("trace %s: non-positive sample period", t.Benchmark)
	}
	if len(t.Samples) == 0 {
		return fmt.Errorf("trace %s: no samples", t.Benchmark)
	}
	for i := range t.Samples {
		s := &t.Samples[i]
		if s.Instructions < 0 || math.IsNaN(s.Instructions) {
			return fmt.Errorf("trace %s: bad instruction count at %d", t.Benchmark, i)
		}
		for k, v := range s.Activity {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return fmt.Errorf("trace %s: activity[%d] = %g out of range at sample %d",
					t.Benchmark, k, v, i)
			}
		}
	}
	return nil
}

// Cursor tracks a thread's position within a (looped) trace in units of
// trace samples. Because DVFS changes the cycle length, a core running
// at frequency scale s advances the cursor by s sample-widths per
// wall-clock sample period — the "absolute time" progression of §3.3.
type Cursor struct {
	tr  *Trace
	pos float64 // fractional sample index, monotonically increasing
}

// NewCursor starts a cursor at the beginning of the trace.
func NewCursor(t *Trace) *Cursor { return &Cursor{tr: t} }

// Trace returns the underlying trace.
func (c *Cursor) Trace() *Trace { return c.tr }

// Position returns the cursor's absolute fractional position (not
// wrapped), a measure of total work completed in trace-sample units.
func (c *Cursor) Position() float64 { return c.pos }

// Current returns the sample under the cursor.
func (c *Cursor) Current() *uarch.Sample {
	return c.tr.At(int64(c.pos))
}

// Advance moves the cursor forward by `scale` sample-widths (the core's
// current frequency scale factor for one wall-clock sample period) and
// returns the number of instructions retired during the move, which is
// the traversed fraction of each underlying sample's instruction count.
func (c *Cursor) Advance(scale float64) float64 {
	if scale < 0 {
		panic(fmt.Sprintf("trace: negative advance %g", scale))
	}
	var retired float64
	remaining := scale
	for remaining > 0 {
		idx := int64(c.pos)
		frac := c.pos - float64(idx)
		room := 1 - frac // fraction of current sample left
		step := remaining
		if step > room {
			step = room
		}
		retired += c.tr.At(idx).Instructions * step
		c.pos += step
		remaining -= step
	}
	return retired
}
