// Package determinism flags constructs that make simulation results
// depend on anything but their inputs. The paper's headline numbers
// (relative throughput, zero thermal emergencies) are closed-loop
// trajectories; if two runs of the same configuration can diverge, no
// reported figure is trustworthy and the batched-vs-sequential
// bit-equality guarantees of PR 3 become unfalsifiable. Packages opt
// in with a //mtlint:deterministic marker next to their package
// clause.
//
// Flagged constructs:
//
//   - time.Now / time.Since / time.Until: wall-clock reads feeding
//     simulation logic. Simulated time must come from tick counters.
//   - package-level math/rand (and math/rand/v2) functions: globally
//     seeded generators give run-order-dependent streams. Use an
//     explicitly seeded *rand.Rand.
//   - range over a map: iteration order is randomized per run; any
//     value, ordering, or floating-point summation derived from it is
//     nondeterministic. Loops whose bodies are genuinely
//     order-insensitive can be suppressed with //mtlint:allow maprange
//     and a reason.
//   - append to a captured variable inside a goroutine: result
//     collection must use index-addressed writes (results[i] = ...) so
//     completion order cannot reorder — or race on — the output.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"multitherm/internal/analysis/driver"
)

// Analyzer is the determinism check.
var Analyzer = &driver.Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock reads, global rand, map iteration, and unordered goroutine result collection in //mtlint:deterministic packages",
	Run:  run,
}

// Marker is the package-level opt-in directive.
const Marker = "deterministic"

// seededConstructors are math/rand functions that build explicitly
// seeded generators rather than reading the global stream.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *driver.Pass) error {
	pkg := pass.Pkg
	if !driver.PackageMarked(pkg, Marker) {
		return nil
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, info, n)
			case *ast.RangeStmt:
				checkRange(pass, info, n)
			case *ast.GoStmt:
				checkGoStmt(pass, info, n)
			}
			return true
		})
	}
	return nil
}

// pkgFunc resolves sel to (package path, function name) when it is a
// direct reference to a package-level function of another package.
func pkgFunc(info *types.Info, sel *ast.SelectorExpr) (path, name string, ok bool) {
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Type().(*types.Signature).Recv() != nil {
		return "", "", false
	}
	// Only count qualified references (pkg.Fn), not method values.
	if _, isIdent := sel.X.(*ast.Ident); !isIdent {
		return "", "", false
	}
	if _, isPkg := info.Uses[sel.X.(*ast.Ident)].(*types.PkgName); !isPkg {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

func checkSelector(pass *driver.Pass, info *types.Info, sel *ast.SelectorExpr) {
	path, name, ok := pkgFunc(info, sel)
	if !ok {
		return
	}
	switch path {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			if !driver.Allowed(pass.Pkg, sel.Pos(), "time") {
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a deterministic package; derive time from tick counters", name)
			}
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[name] {
			if !driver.Allowed(pass.Pkg, sel.Pos(), "rand") {
				pass.Reportf(sel.Pos(), "%s.%s uses the globally seeded generator; use an explicitly seeded *rand.Rand", path, name)
			}
		}
	}
}

func checkRange(pass *driver.Pass, info *types.Info, rng *ast.RangeStmt) {
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if driver.Allowed(pass.Pkg, rng.Pos(), "maprange") {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order is randomized; sort the keys or annotate //mtlint:allow maprange with why the body is order-insensitive")
}

// checkGoStmt flags `x = append(x, ...)` on variables captured from an
// enclosing scope inside a goroutine body: goroutine completion order
// then determines element order (and the append itself races).
func checkGoStmt(pass *driver.Pass, info *types.Info, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok || fun.Name != "append" {
				continue
			}
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); !isBuiltin {
				continue
			}
			target, ok := call.Args[0].(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[target]
			if obj == nil || obj.Pos() == token.NoPos {
				continue
			}
			// Captured iff declared before the literal begins (the
			// literal's own declarations sit inside its body span).
			if obj.Pos() < lit.Pos() && !driver.Allowed(pass.Pkg, as.Pos(), "goappend") {
				pass.Reportf(as.Pos(), "append to captured %q inside goroutine makes element order depend on scheduling; write results[i] by index instead", target.Name)
			}
		}
		return true
	})
}
