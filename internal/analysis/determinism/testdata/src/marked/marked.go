// Package marked opts into the determinism contract; every flagged
// construct below carries a want annotation, every compliant variant
// stays silent.
//
//mtlint:deterministic
package marked

import (
	"math/rand"
	randv2 "math/rand/v2"
	"sync"
	"time"
)

func Clock() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func AllowedClock() time.Time {
	//mtlint:allow time startup banner only, never feeds simulation state
	return time.Now()
}

func GlobalRand() float64 {
	a := rand.Float64()   // want `math/rand\.Float64 uses the globally seeded generator`
	b := randv2.Float64() // want `math/rand/v2\.Float64 uses the globally seeded generator`
	return a + b
}

func SeededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // seeded constructors are compliant
	return rng.Float64()
}

func SumMap(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `map iteration order is randomized`
		s += v
	}
	return s
}

func CountMap(m map[string]float64) int {
	n := 0
	//mtlint:allow maprange counting is order-insensitive
	for range m {
		n++
	}
	return n
}

func CollectAppend(n int) []int {
	var results []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			results = append(results, i) // want `append to captured .results. inside goroutine`
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return results
}

func CollectIndexed(n int) []int {
	results := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = i // index-addressed: order independent of scheduling
		}(i)
	}
	wg.Wait()
	return results
}
