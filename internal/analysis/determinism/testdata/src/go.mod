module fixture.example/determinism

go 1.22
