// Package unmarked carries no //mtlint:deterministic directive, so the
// analyzer must stay silent on constructs it would flag elsewhere.
package unmarked

import (
	"math/rand"
	"time"
)

func Clock() time.Time { return time.Now() }

func GlobalRand() float64 { return rand.Float64() }

func SumMap(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
