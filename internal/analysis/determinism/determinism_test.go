package determinism_test

import (
	"testing"

	"multitherm/internal/analysis/analysistest"
	"multitherm/internal/analysis/determinism"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", determinism.Analyzer)
}
