package zeroalloc

import (
	"bufio"
	"io"
	"path"
	"strconv"
	"strings"
)

// Escape is one heap allocation reported by the compiler's escape
// analysis (`go build -gcflags=-m`).
type Escape struct {
	File string // base name of the source file
	Line int
	Col  int
	Msg  string // the compiler's message, e.g. "make([]float64, n) escapes to heap"
}

// ParseEscapes extracts heap-allocation events from -gcflags=-m
// output. Only messages that imply a per-call or per-variable heap
// allocation are returned:
//
//	foo.go:12:9: make([]float64, n) escapes to heap
//	foo.go:7:2: moved to heap: buf
//
// Inlining notes, "does not escape" lines, "leaking param" notes (a
// pointer outliving the call is not an allocation), and "# pkg"
// headers are ignored.
func ParseEscapes(r io.Reader) []Escape {
	var out []Escape
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		file, ln, col, msg, ok := splitPos(line)
		if !ok {
			continue
		}
		if !isAllocation(msg) {
			continue
		}
		out = append(out, Escape{File: path.Base(file), Line: ln, Col: col, Msg: msg})
	}
	return out
}

// isAllocation reports whether a -m message describes a heap
// allocation, as opposed to inlining chatter or pointer-flow notes.
func isAllocation(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	if strings.HasPrefix(msg, "leaking param") {
		return false
	}
	return strings.HasSuffix(msg, "escapes to heap") ||
		strings.Contains(msg, "escapes to heap:") ||
		strings.HasPrefix(msg, "moved to heap:")
}

// splitPos parses "file.go:line:col: message". The compiler may print
// the file with a relative directory prefix; it is preserved here and
// reduced to a base name by the caller.
func splitPos(line string) (file string, ln, col int, msg string, ok bool) {
	// message = text after the third colon-space.
	i := strings.Index(line, ": ")
	if i < 0 {
		return "", 0, 0, "", false
	}
	pos, msg := line[:i], line[i+2:]
	parts := strings.Split(pos, ":")
	if len(parts) < 3 {
		return "", 0, 0, "", false
	}
	colStr, lineStr := parts[len(parts)-1], parts[len(parts)-2]
	file = strings.Join(parts[:len(parts)-2], ":")
	ln, err1 := strconv.Atoi(lineStr)
	col, err2 := strconv.Atoi(colStr)
	if err1 != nil || err2 != nil || !strings.HasSuffix(file, ".go") {
		return "", 0, 0, "", false
	}
	return file, ln, col, msg, true
}
