module fixture.example/zeroalloc

go 1.22
