// Package hot exercises the zero-allocation gate: escapes inside
// marked functions are flagged, everything else is ignored.
package hot

// Sum is marked and clean: it only reads its arguments.
//
//mtlint:zeroalloc
func Sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// Scale is marked and clean: it writes through a caller-owned buffer.
//
//mtlint:zeroalloc
func Scale(dst, src []float64, c float64) {
	for i, v := range src {
		dst[i] = c * v
	}
}

// Grow is marked and allocates: the make escapes through the return.
//
//mtlint:zeroalloc
func Grow(n int) []float64 {
	out := make([]float64, n) // want `heap allocation in zeroalloc function Grow`
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// Box is marked and moves its local to the heap.
//
//mtlint:zeroalloc
func Box() *float64 {
	v := 1.0 // want `heap allocation in zeroalloc function Box`
	return &v
}

// Fine allocates but is unmarked, so it is not the analyzer's business.
func Fine(n int) []float64 {
	return make([]float64, n)
}
