package zeroalloc_test

import (
	"testing"

	"multitherm/internal/analysis/analysistest"
	"multitherm/internal/analysis/zeroalloc"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", zeroalloc.Analyzer)
}
