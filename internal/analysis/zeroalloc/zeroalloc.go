// Package zeroalloc turns the repository's zero-allocation hot-path
// contracts into a compile-time gate. Functions marked
// //mtlint:zeroalloc — the fused RK4 stages, the packed GEMV/GEMM
// kernels, the exact-ZOH tick, the batched lockstep tick — run
// millions of times per simulated second; a single stray append or
// escaping closure turns a 28 µs tick into a GC treadmill, and the
// existing testing.AllocsPerRun spot checks only catch the paths a
// test happens to drive. This analyzer instead asks the compiler: it
// runs `go build -gcflags=-m` on the package (the build cache replays
// the diagnostics, so this is cheap), parses the escape-analysis
// output, and fails on any heap allocation whose position falls inside
// a marked function's body.
//
// Cold panic guards must hoist their fmt.Sprintf formatting into
// unmarked helpers: interface conversions for format arguments are
// heap allocations and are flagged like any other.
package zeroalloc

import (
	"go/ast"
	"go/token"
	"os"
	"path"
	"path/filepath"
	"strings"

	"multitherm/internal/analysis/driver"
)

// Analyzer is the zero-allocation check.
var Analyzer = &driver.Analyzer{
	Name: "zeroalloc",
	Doc:  "fail on heap escapes inside //mtlint:zeroalloc-marked functions, from -gcflags=-m output",
	Run:  run,
}

// Marker is the function-level opt-in directive.
const Marker = "zeroalloc"

// markedFunc is one annotated function and the source span of its
// body.
type markedFunc struct {
	name      string
	file      string // base name
	from, to  int    // body line range, inclusive
	declPos   token.Pos
	fileIndex int
}

func run(pass *driver.Pass) error {
	pkg := pass.Pkg
	marked := collectMarked(pkg)
	if len(marked) == 0 {
		return nil
	}
	// Build to a scratch file so analyzing a main package never drops
	// an executable into the tree; for non-main packages the archive
	// lands there instead (-o must name a file, not a directory — with
	// a directory the go tool fails "no main packages to build" for
	// library packages and no diagnostics are emitted at all). The
	// build cache replays -m diagnostics on hits.
	scratch, err := os.MkdirTemp("", "mtlint-zeroalloc-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	out, err := pkg.GoTool("build", "-o", filepath.Join(scratch, "out"), "-gcflags=-m", ".")
	if err != nil {
		return err
	}
	escapes := ParseEscapes(strings.NewReader(out))
	for _, esc := range escapes {
		for _, fn := range marked {
			if esc.File != fn.file || esc.Line < fn.from || esc.Line > fn.to {
				continue
			}
			pass.Reportf(posFor(pkg, fn, esc.Line, esc.Col),
				"heap allocation in zeroalloc function %s: %s", fn.name, esc.Msg)
		}
	}
	return nil
}

func collectMarked(pkg *driver.Package) []markedFunc {
	var out []markedFunc
	for i, file := range pkg.Files {
		base := path.Base(pkg.GoFiles[i])
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !driver.FuncMarked(fn, Marker) {
				continue
			}
			out = append(out, markedFunc{
				name:      fn.Name.Name,
				file:      base,
				from:      pkg.Fset.Position(fn.Body.Pos()).Line,
				to:        pkg.Fset.Position(fn.Body.End()).Line,
				declPos:   fn.Pos(),
				fileIndex: i,
			})
		}
	}
	return out
}

// posFor converts a (line, col) escape position back into a token.Pos
// inside the function's file so diagnostics anchor on the allocation,
// falling back to the declaration when the line cannot be resolved.
func posFor(pkg *driver.Package, fn markedFunc, line, col int) token.Pos {
	tf := pkg.Fset.File(fn.declPos)
	if tf == nil || line < 1 || line > tf.LineCount() {
		return fn.declPos
	}
	p := tf.LineStart(line)
	return p + token.Pos(col-1)
}
