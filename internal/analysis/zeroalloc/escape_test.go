package zeroalloc

import (
	"reflect"
	"strings"
	"testing"
)

// pinnedEscapeOutput is a verbatim `go build -gcflags=-m` transcript
// (go1.22, linux/amd64) of a small package exercising every diagnostic
// shape the parser must classify: inlining notes, non-escaping params,
// leaking params, argument-box escapes, and heap moves. Pinning the
// text keeps the parser honest even if the local toolchain later
// changes its phrasing — such a change should fail here first, not
// silently blind the analyzer.
const pinnedEscapeOutput = `# esc.example/sample
./sample.go:5:6: can inline Sum
./sample.go:13:6: can inline Grow
./sample.go:21:6: can inline Boxed
./sample.go:25:6: can inline Moved
./sample.go:30:6: can inline Keep
./sample.go:5:10: xs does not escape
./sample.go:14:13: make([]float64, n) escapes to heap
./sample.go:22:19: fmt.Sprintf("bad value %g", ... argument...) escapes to heap
./sample.go:22:19: ... argument does not escape
./sample.go:22:36: x escapes to heap
./sample.go:26:2: moved to heap: v
./sample.go:30:11: leaking param: p to result ~r0 level=0
`

func TestParseEscapesPinned(t *testing.T) {
	got := ParseEscapes(strings.NewReader(pinnedEscapeOutput))
	want := []Escape{
		{File: "sample.go", Line: 14, Col: 13, Msg: "make([]float64, n) escapes to heap"},
		{File: "sample.go", Line: 22, Col: 19, Msg: `fmt.Sprintf("bad value %g", ... argument...) escapes to heap`},
		{File: "sample.go", Line: 22, Col: 36, Msg: "x escapes to heap"},
		{File: "sample.go", Line: 26, Col: 2, Msg: "moved to heap: v"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseEscapes:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseEscapesNonAllocationLinesIgnored(t *testing.T) {
	// Every line here is compiler chatter, not an allocation: package
	// headers, inlining decisions, parameters that merely leak (the
	// allocation, if any, happens at the caller), and explicit
	// non-escapes.
	const chatter = `# pkg/path
./a.go:5:6: can inline Sum
./a.go:7:10: inlining call to Sum
./a.go:5:10: xs does not escape
./a.go:30:11: leaking param: p to result ~r0 level=0
./a.go:31:12: leaking param content: q
not a diagnostic line at all
`
	if got := ParseEscapes(strings.NewReader(chatter)); len(got) != 0 {
		t.Fatalf("expected no escapes from chatter, got %+v", got)
	}
}
