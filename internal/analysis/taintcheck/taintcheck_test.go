package taintcheck_test

import (
	"testing"

	"multitherm/internal/analysis/analysistest"
	"multitherm/internal/analysis/taintcheck"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", taintcheck.Analyzer)
}
