// Package helper provides allocation helpers the interproc fixture
// calls across a package boundary, so sinks and validation both have
// to travel through summaries.
package helper

// MaxN bounds every checked allocation in this package.
const MaxN = 4096

// Alloc allocates without validating: callers own the clamp.
func Alloc(n int) []float64 {
	return make([]float64, n)
}

// AllocChecked validates its argument against the package cap, so a
// caller's argument is clean after the call returns.
func AllocChecked(n int) []float64 {
	if n < 0 || n > MaxN {
		return nil
	}
	return make([]float64, n)
}

// Echo returns its argument untouched: result taint follows argument
// taint through the summary.
func Echo(n int) int { return n }
