module fixture.example/taintcheck

go 1.22
