// Package interproc proves sinks, result taint, and validation all
// resolve through call-graph summaries, including across packages.
package interproc

import (
	"flag"
	"os"
	"strconv"

	"fixture.example/taintcheck/helper"
)

var laneFlag = flag.Int("lanes", 4, "lane count")

// FlagAlloc hands a raw flag to a cross-package allocator: the sink is
// inside helper.Alloc, the finding lands on the call site here.
func FlagAlloc() []float64 {
	return helper.Alloc(*laneFlag) // want `unvalidated flag input reaches make size via Alloc`
}

// FlagAllocChecked flows through the validating twin: clean.
func FlagAllocChecked() []float64 {
	return helper.AllocChecked(*laneFlag)
}

// EchoAlloc proves result taint survives a pass-through callee.
func EchoAlloc() []float64 {
	n := helper.Echo(*laneFlag)
	return make([]float64, n) // want `unvalidated flag input reaches make size`
}

// spin reaches a loop bound with its parameter.
func spin(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// spinTwice only forwards, so the chain is two calls deep.
func spinTwice(n int) int { return spin(n) + spin(n) }

// EnvSpin reaches a loop bound two calls deep; the finding names the
// whole chain.
func EnvSpin() int {
	n, _ := strconv.Atoi(os.Getenv("SPIN"))
	return spinTwice(n) // want `unvalidated env input reaches loop bound via spinTwice → spin`
}
