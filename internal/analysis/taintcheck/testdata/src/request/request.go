// Package request exercises the source lexicon (JSON decode, request
// reads, env) and every sanitizer idiom taintcheck recognizes.
package request

import (
	"encoding/json"
	"net/http"
	"os"
	"strconv"
)

const maxLanes = 256

type sweep struct {
	Lanes  int   `json:"lanes"`
	Pick   int   `json:"pick"`
	Points []int `json:"points"`
}

// Handler allocates and indexes straight off the wire.
func Handler(w http.ResponseWriter, r *http.Request) {
	var req sweep
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return
	}
	lanes := make([]int, req.Lanes) // want `unvalidated request input reaches make size`
	_ = lanes
	got := req.Points[req.Pick] // want `unvalidated request input reaches slice index`
	_ = got
}

// Clamped kills the taint with a named-cap comparison before use.
func Clamped(w http.ResponseWriter, r *http.Request) {
	var req sweep
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return
	}
	if req.Lanes < 0 || req.Lanes > maxLanes {
		http.Error(w, "lanes out of range", http.StatusBadRequest)
		return
	}
	lanes := make([]int, req.Lanes)
	_ = lanes
}

// MinCapped bounds the size through the min builtin.
func MinCapped(r *http.Request) []int {
	var req sweep
	_ = json.NewDecoder(r.Body).Decode(&req)
	return make([]int, min(req.Lanes, maxLanes))
}

// IndexChecked validates the index against the slice's own length.
func IndexChecked(r *http.Request) int {
	var req sweep
	_ = json.NewDecoder(r.Body).Decode(&req)
	if req.Pick < 0 || req.Pick >= len(req.Points) {
		return 0
	}
	return req.Points[req.Pick]
}

// QuerySized parses a size straight off the URL query.
func QuerySized(r *http.Request) []int {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	return make([]int, n) // want `unvalidated request input reaches make size`
}

// EnvSized reads a size from the environment without a clamp.
func EnvSized() []byte {
	n, _ := strconv.Atoi(os.Getenv("REQUEST_BUF"))
	return make([]byte, n) // want `unvalidated env input reaches make size`
}

// clampLanes is trusted to bound its argument.
//
//mtlint:sanitizer
func clampLanes(n int) int {
	if n < 0 {
		return 0
	}
	if n > maxLanes {
		return maxLanes
	}
	return n
}

// Sanitized flows through the marked helper: clean.
func Sanitized(r *http.Request) []int {
	var req sweep
	_ = json.NewDecoder(r.Body).Decode(&req)
	return make([]int, clampLanes(req.Lanes))
}

// Allowed carries a reviewed suppression.
func Allowed(r *http.Request) []int {
	var req sweep
	_ = json.NewDecoder(r.Body).Decode(&req)
	//mtlint:allow taint fixture: deliberately unclamped to prove the escape hatch
	return make([]int, req.Lanes)
}
