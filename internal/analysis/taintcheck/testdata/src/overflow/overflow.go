// Package overflow reproduces the ParseGridSpec Rows×Cols shape: a
// decoded pair of dimensions whose product is checked only after the
// multiply, where it may already have wrapped past the cap.
package overflow

import (
	"encoding/json"
	"errors"
	"io"
)

const (
	MaxCells = 1024
	MaxDim   = 64
)

var errTooBig = errors.New("grid too big")

type dims struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
}

// InlineProduct checks nothing at all before allocating.
func InlineProduct(r io.Reader) ([]float64, error) {
	var d dims
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, err
	}
	return make([]float64, d.Rows*d.Cols), nil // want `product of unvalidated request input reaches make size`
}

// ProductChecked caps the product after multiplying — too late: the
// multiply can wrap negative-to-small and slip under MaxCells.
func ProductChecked(r io.Reader) ([]float64, error) {
	var d dims
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, err
	}
	n := d.Rows * d.Cols
	if n > MaxCells {
		return nil, errTooBig
	}
	return make([]float64, n), nil // want `product of unvalidated request input reaches make size`
}

// FactorsChecked bounds each factor before multiplying: clean.
func FactorsChecked(r io.Reader) ([]float64, error) {
	var d dims
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, err
	}
	if d.Rows <= 0 || d.Rows > MaxDim || d.Cols <= 0 || d.Cols > MaxDim {
		return nil, errTooBig
	}
	return make([]float64, d.Rows*d.Cols), nil
}

// RawLoop trips a loop on a raw decoded count.
func RawLoop(r io.Reader) []float64 {
	var d dims
	_ = json.NewDecoder(r).Decode(&d)
	var out []float64
	for i := 0; i < d.Rows; i++ { // want `unvalidated request input reaches loop bound`
		out = append(out, float64(i))
	}
	return out
}

// BoundedLoop iterates to the container's own length: exempt.
func BoundedLoop(r io.Reader) float64 {
	var d dims
	_ = json.NewDecoder(r).Decode(&d)
	xs := []float64{1, 2, 3}
	total := 0.0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}
