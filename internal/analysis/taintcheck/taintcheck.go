// Package taintcheck flags untrusted input reaching allocation-shaped
// sinks. thermald accepts arbitrary wire input; PR 8 shipped a real
// instance of the dangerous class (ParseGridSpec's Rows×Cols product
// overflowing int past the MaxGridCores check into a multi-GB build),
// and this analyzer exists so that class cannot come back.
//
// Sources: HTTP/JSON request decoding (json.Decode/Unmarshal, reads
// through *http.Request), command-line flag parsing (package flag),
// and environment reads (os.Getenv/LookupEnv). Sinks: make sizes,
// for-loop trip counts, and slice/array/string indexing. Integer
// multiplication of two tainted values sets a sticky overflow mark
// that survives later cap comparisons — checking `r*c > Max` after the
// multiply proves nothing once the product has wrapped, so only
// bounding each factor first clears a finding.
//
// Sanitizers: comparison against a named cap (constant, integer
// literal ≥ 2, len/cap, or a call whose name contains max/cap/limit/
// bound/budget), min/max with a cap argument, %, functions marked
// //mtlint:sanitizer, and — interprocedurally — callees whose taint
// summary proves they validate a parameter (the strict-parse-helper
// idiom: floorplan.ParseGridSpec validates, so its result is clean in
// every caller). Suppress deliberate flows with
// //mtlint:allow taint <reason>.
//
// The analysis is interprocedural through driver.Program summaries:
// a tainted argument to a function whose parameter reaches a sink is
// reported at the call site with the call chain. Soundness limits are
// the Program's (function values and interface calls are opaque,
// recursion degrades to argument propagation, package-variable state
// does not flow) plus taint's own: channel receives and range-over-
// channel values are treated clean.
package taintcheck

import (
	"go/ast"
	"go/types"

	"multitherm/internal/analysis/driver"
)

// Analyzer is the untrusted-input flow check.
var Analyzer = &driver.Analyzer{
	Name: "taintcheck",
	Doc:  "flag request/flag/env-derived values reaching make sizes, loop bounds, and slice indexing without a recognized clamp",
	Run:  run,
}

// AllowTaint is the suppression check name.
const AllowTaint = "taint"

func run(pass *driver.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			pass.Prog.CheckTaint(fn, func(tf driver.TaintFinding) {
				if driver.Allowed(pass.Pkg, tf.Pos, AllowTaint) {
					return
				}
				src := driver.SourceLabel(tf.Sources)
				via := ""
				if tf.Via != "" {
					via = " via " + tf.Via
				}
				if tf.Overflow {
					pass.Reportf(tf.Pos, "product of unvalidated %s input reaches %s%s; the multiply can wrap past any later cap check — bound each factor before multiplying", src, tf.Kind, via)
					return
				}
				pass.Reportf(tf.Pos, "unvalidated %s input reaches %s%s; clamp it against a named cap first (or annotate //mtlint:allow taint <reason>)", src, tf.Kind, via)
			})
		}
	}
	return nil
}
