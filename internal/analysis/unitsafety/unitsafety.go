// Package unitsafety enforces the dimensional-safety contract that
// internal/units establishes. The simulator chains quantities in
// distinct physical dimensions — block power (W) → RC thermal state
// (°C) → DVFS frequency scale (dimensionless) → throughput (BIPS) —
// and the defined types in internal/units make cross-dimension
// assignment a compile error. This analyzer closes the three holes the
// type system leaves open in packages marked //mtlint:units:
//
//  1. Raw float64 / []float64 in exported signatures and struct
//     fields whose name or doc matches the unit lexicon (temp, watts,
//     seconds, duty, freq, bips, …) — the API should carry the typed
//     quantity, or justify the raw float with //mtlint:allow unit.
//  2. Cross-dimension conversions: units.Celsius(x) where x is
//     another units type compiles (both are float64 underneath) but
//     is exactly the silent dimension swap the types exist to stop.
//     Converting a typed vector straight to []float64 is flagged the
//     same way — the audited spelling is .Raw().
//  3. Every .Raw() escape hatch must sit inside a //mtlint:zeroalloc
//     or //mtlint:unitboundary function, or be handed directly to a
//     linalg kernel call — keeping the unit-erasing sites auditable.
//
// Test files are exempt: tests legitimately probe raw representations
// and bit-exactness.
package unitsafety

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"

	"multitherm/internal/analysis/driver"
)

// Analyzer is the dimensional-safety check.
var Analyzer = &driver.Analyzer{
	Name: "unitsafety",
	Doc:  "flag raw floats in unit-bearing APIs, cross-dimension conversions, and unaudited .Raw() calls in //mtlint:units packages",
	Run:  run,
}

// Marker is the package-level opt-in directive (//mtlint:units).
const Marker = "units"

// BoundaryMarker is the function-level directive that sanctions .Raw()
// escape hatches (//mtlint:unitboundary <reason>).
const BoundaryMarker = "unitboundary"

// AllowCheck is the //mtlint:allow check name for rule-level
// suppressions.
const AllowCheck = "unit"

// UnitsPackageName identifies the package whose named types are the
// unit gauges. Matching by package name (not import path) lets the
// analysistest fixtures declare their own miniature units package.
const UnitsPackageName = "units"

// KernelPackageName is the unit-agnostic kernel package; handing a
// .Raw() result directly to one of its functions is a sanctioned
// boundary without further annotation.
const KernelPackageName = "linalg"

// lexicon are the lowercase name/doc words that signal a quantity with
// a physical dimension. A raw float64 whose identifier or doc comment
// contains one of these words is presumed to be a unit-bearing value.
var lexicon = map[string]bool{
	"temp": true, "temps": true, "temperature": true, "temperatures": true, "celsius": true,
	"watt": true, "watts": true, "power": true,
	"joule": true, "joules": true, "energy": true,
	"second": true, "seconds": true, "period": true, "time": true, "dt": true,
	"duty": true, "freq": true, "frequency": true, "scale": true,
	"bips": true, "throughput": true,
	"setpoint": true, "threshold": true, "ambient": true, "margin": true, "slope": true,
}

func run(pass *driver.Pass) error {
	pkg := pass.Pkg
	if !driver.PackageMarked(pkg, Marker) {
		return nil
	}
	// The gauge-defining package is definitionally the boundary: its
	// Raw accessors return []float64 on purpose.
	if pkg.Name == UnitsPackageName {
		return nil
	}
	info := pass.TypesInfo()
	for i, file := range pass.Files() {
		if strings.HasSuffix(pkg.GoFiles[i], "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, info, d)
				checkBody(pass, info, d)
			case *ast.GenDecl:
				checkStructs(pass, info, d)
			}
		}
	}
	return nil
}

// ------------------------------------------------------------ rule 1

// checkSignature flags raw float64/[]float64 parameters and results of
// exported functions whose name (or, for unnamed results, the function
// name or doc) matches the lexicon.
func checkSignature(pass *driver.Pass, info *types.Info, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() {
		return
	}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if !rawFloat(info, field.Type) {
				continue
			}
			for _, name := range field.Names {
				if !lexHit(name.Name) || driver.Allowed(pass.Pkg, name.Pos(), AllowCheck) {
					continue
				}
				pass.Reportf(name.Pos(),
					"exported %s takes unit-bearing parameter %q as raw %s; use a units type or annotate //mtlint:allow unit <reason>",
					fn.Name.Name, name.Name, typeLabel(info, field.Type))
			}
		}
	}
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			if !rawFloat(info, field.Type) {
				continue
			}
			if len(field.Names) > 0 {
				for _, name := range field.Names {
					if !lexHit(name.Name) || driver.Allowed(pass.Pkg, name.Pos(), AllowCheck) {
						continue
					}
					pass.Reportf(name.Pos(),
						"exported %s returns unit-bearing result %q as raw %s; use a units type or annotate //mtlint:allow unit <reason>",
						fn.Name.Name, name.Name, typeLabel(info, field.Type))
				}
				continue
			}
			if !lexHit(fn.Name.Name) && !docHit(fn.Doc) {
				continue
			}
			if driver.Allowed(pass.Pkg, fn.Pos(), AllowCheck) || driver.Allowed(pass.Pkg, field.Pos(), AllowCheck) {
				continue
			}
			pass.Reportf(field.Pos(),
				"exported %s returns a unit-bearing quantity as raw %s; use a units type or annotate //mtlint:allow unit <reason>",
				fn.Name.Name, typeLabel(info, field.Type))
		}
	}
}

// checkStructs flags raw float64/[]float64 fields of exported struct
// types whose name or doc matches the lexicon.
func checkStructs(pass *driver.Pass, info *types.Info, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok || !ts.Name.IsExported() {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			if !rawFloat(info, field.Type) {
				continue
			}
			for _, name := range field.Names {
				if !name.IsExported() {
					continue
				}
				if !lexHit(name.Name) && !docHit(field.Doc) && !docHit(field.Comment) {
					continue
				}
				if driver.Allowed(pass.Pkg, name.Pos(), AllowCheck) {
					continue
				}
				pass.Reportf(name.Pos(),
					"field %s.%s holds a unit-bearing quantity as raw %s; use a units type or annotate //mtlint:allow unit <reason>",
					ts.Name.Name, name.Name, typeLabel(info, field.Type))
			}
		}
	}
}

// --------------------------------------------------------- rules 2, 3

// checkBody flags cross-dimension conversions and unaudited .Raw()
// calls inside one function.
func checkBody(pass *driver.Pass, info *types.Info, fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	boundary := driver.FuncMarked(fn, BoundaryMarker) || driver.FuncMarked(fn, "zeroalloc")
	// Raw() results handed directly to a linalg call are sanctioned:
	// the parent call is visited before its arguments, so collect them
	// on the way down.
	sanctioned := map[ast.Node]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if calleePackage(info, call) == KernelPackageName {
			for _, arg := range call.Args {
				if rc, ok := arg.(*ast.CallExpr); ok && isRawCall(info, rc) {
					sanctioned[rc] = true
				}
			}
		}
		checkConversion(pass, info, call)
		if isRawCall(info, call) && !boundary && !sanctioned[call] {
			if !driver.Allowed(pass.Pkg, call.Pos(), AllowCheck) {
				pass.Reportf(call.Pos(),
					".Raw() outside a //mtlint:zeroalloc or //mtlint:unitboundary function and not handed directly to a %s kernel; mark %s or move the escape to the kernel boundary",
					KernelPackageName, fn.Name.Name)
			}
		}
		return true
	})
}

// checkConversion flags T(x) where T and x's type are different units
// gauges, and []float64(v) where v is a typed units vector.
func checkConversion(pass *driver.Pass, info *types.Info, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	src, ok := info.Types[call.Args[0]]
	if !ok || src.Type == nil {
		return
	}
	dstName, dstUnits := unitsTypeName(tv.Type)
	srcName, srcUnits := unitsTypeName(src.Type)
	switch {
	case dstUnits && srcUnits && dstName != srcName:
		if !driver.Allowed(pass.Pkg, call.Pos(), AllowCheck) {
			pass.Reportf(call.Pos(),
				"cross-dimension conversion %s(%s); if the reinterpretation is intentional go through float64 or .Raw() and annotate //mtlint:allow unit <reason>",
				dstName, srcName)
		}
	case !dstUnits && srcUnits && isRawFloatSlice(tv.Type):
		if !driver.Allowed(pass.Pkg, call.Pos(), AllowCheck) {
			pass.Reportf(call.Pos(),
				"converting %s straight to []float64 erases its dimension silently; call .Raw() so the escape is auditable", srcName)
		}
	}
}

// ------------------------------------------------------------ helpers

// unitsTypeName reports whether t is a named type declared in a
// package named "units", and which one.
func unitsTypeName(t types.Type) (string, bool) {
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != UnitsPackageName {
		return "", false
	}
	return obj.Name(), true
}

// isRawCall reports whether call is v.Raw() on a units-typed receiver.
func isRawCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Raw" {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isUnits := unitsTypeName(tv.Type)
	return isUnits
}

// calleePackage returns the package name a pkg.Func(...) call selects
// through, or "" for method calls and local calls.
func calleePackage(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Name()
	}
	return ""
}

// rawFloat reports whether the type expression denotes plain float64
// or []float64 (defined types over them are the fix, not the finding).
func rawFloat(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	return isRawFloatScalar(tv.Type) || isRawFloatSlice(tv.Type)
}

func isRawFloatScalar(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func isRawFloatSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	return isRawFloatScalar(s.Elem())
}

func typeLabel(info *types.Info, expr ast.Expr) string {
	if tv, ok := info.Types[expr]; ok && tv.Type != nil {
		if _, ok := tv.Type.(*types.Slice); ok {
			return "[]float64"
		}
	}
	return "float64"
}

// lexHit reports whether any camelCase/underscore-separated word of
// the identifier is in the unit lexicon.
func lexHit(name string) bool {
	for _, w := range splitWords(name) {
		if lexicon[w] {
			return true
		}
	}
	return false
}

// docHit reports whether a doc or line comment mentions a lexicon
// word. Directive comments (//mtlint:...) are not prose and are
// skipped.
func docHit(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//mtlint:") {
			continue
		}
		for _, w := range splitWords(c.Text) {
			if lexicon[w] {
				return true
			}
		}
	}
	return false
}

// splitWords cuts an identifier or comment into lowercase words at
// camelCase humps and non-letter boundaries.
func splitWords(s string) []string {
	var (
		out []string
		cur strings.Builder
	)
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	prevLower := false
	for _, r := range s {
		switch {
		case unicode.IsUpper(r):
			if prevLower {
				flush()
			}
			cur.WriteRune(r)
			prevLower = false
		case unicode.IsLetter(r):
			cur.WriteRune(r)
			prevLower = true
		default:
			flush()
			prevLower = false
		}
	}
	flush()
	return out
}
