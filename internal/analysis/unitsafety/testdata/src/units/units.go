// Package units is a miniature stand-in for the repository's
// internal/units: the analyzer identifies unit gauges by the declaring
// package's name, so fixtures carry their own.
package units

// Celsius is a temperature.
type Celsius float64

// Watts is a power flow.
type Watts float64

// Seconds is a duration.
type Seconds float64

// TempVec is a typed temperature vector.
type TempVec []float64

// Raw exposes the backing storage.
func (v TempVec) Raw() []float64 { return v }

// PowerVec is a typed power vector.
type PowerVec []float64

// Raw exposes the backing storage.
func (v PowerVec) Raw() []float64 { return v }
