// Package unmarked carries no //mtlint:units directive: the analyzer
// must stay silent even on shapes it would flag in a marked package.
package unmarked

import "fixture.example/unitsafety/units"

// Hottest takes raw temps; fine here.
func Hottest(temps []float64) float64 { return temps[0] }

// Swap crosses gauges; fine here.
func Swap(p units.PowerVec) units.TempVec { return units.TempVec(p) }

// Leak escapes; fine here.
func Leak(v units.TempVec) []float64 { return v.Raw() }
