// Package linalg is a miniature stand-in for the unit-agnostic kernel
// package: handing .Raw() storage directly to its functions is a
// sanctioned boundary.
package linalg

// MulVec is a placeholder kernel.
func MulVec(dst, src []float64) {
	for i := range dst {
		dst[i] = src[i]
	}
}
