module fixture.example/unitsafety

go 1.22
