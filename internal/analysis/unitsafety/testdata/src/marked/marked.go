// Package marked opts into dimensional safety.
//
//mtlint:units
package marked

import (
	"fixture.example/unitsafety/linalg"
	"fixture.example/unitsafety/units"
)

// ---- rule 1: raw floats in exported unit-bearing APIs ----

// Hottest scans a slice for its peak value. The raw parameter is the
// seeded bug shape: callers can hand it a watts slice and it compiles.
func Hottest(temps []float64) float64 { // want `unit-bearing parameter .temps. as raw \[\]float64` `returns a unit-bearing quantity as raw float64`
	hi := 0.0
	for _, t := range temps {
		if t > hi {
			hi = t
		}
	}
	return hi
}

// Threshold returns the trip point.
func Threshold() (thresholdC float64) { return 84.2 } // want `unit-bearing result .thresholdC. as raw float64`

// Target returns the temperature target in degrees.
func Target() float64 { return 81.8 } // want `returns a unit-bearing quantity as raw float64`

// Ratio returns a plain dimensionless quotient; no lexicon words here.
func Ratio() float64 { return 0.5 }

// Gain returns the controller gain.
//
//mtlint:allow unit gain is scale per degree, not a units dimension
func Gain() float64 { return -0.0107 }

// Sample is a telemetry record.
type Sample struct {
	TempC float64 // want `field Sample.TempC holds a unit-bearing quantity as raw float64`
	// Watts drawn by the block at this sample.
	Draw float64 // want `field Sample.Draw holds a unit-bearing quantity as raw float64`
	//mtlint:allow unit milliseconds for display, not the Seconds gauge
	ElapsedMS float64
	Count     int
}

// ---- rule 2: cross-dimension conversions ----

// Swap is the watts-for-temps slice swap the seed code would have
// compiled silently: both views share a []float64 underlying type, so
// only the analyzer stands between the gauges.
func Swap(p units.PowerVec) units.TempVec {
	return units.TempVec(p) // want `cross-dimension conversion TempVec\(PowerVec\)`
}

// Reinterpret crosses scalar gauges.
func Reinterpret(w units.Watts) units.Celsius {
	return units.Celsius(w) // want `cross-dimension conversion Celsius\(Watts\)`
}

// Widen goes through float64 explicitly: that is the sanctioned
// spelling for genuine reinterpretation.
func Widen(w units.Watts) units.Celsius {
	return units.Celsius(float64(w))
}

// Erase drops the dimension without the audited accessor.
func Erase(v units.TempVec) []float64 {
	return []float64(v) // want `converting TempVec straight to \[\]float64 erases its dimension silently`
}

// ---- rule 3: .Raw() audit ----

// Leak calls the escape hatch outside any sanctioned boundary.
func Leak(v units.TempVec) float64 {
	raw := v.Raw() // want `\.Raw\(\) outside a //mtlint:zeroalloc or //mtlint:unitboundary function`
	return raw[0]
}

// Kernel hands storage straight to the kernel package: sanctioned.
func Kernel(dst units.TempVec, src units.PowerVec) {
	linalg.MulVec(dst.Raw(), src.Raw())
}

// Boundary is a declared unit-erasing seam.
//
//mtlint:unitboundary adapts the typed state onto a wire format
func Boundary(v units.PowerVec) []float64 {
	return append([]float64(nil), v.Raw()...)
}

// Tick is a zero-alloc hot path; the marker implies boundary rights.
//
//mtlint:zeroalloc
func Tick(v units.TempVec) float64 {
	s := 0.0
	for _, x := range v.Raw() {
		s += x
	}
	return s
}
