package unitsafety_test

import (
	"testing"

	"multitherm/internal/analysis/analysistest"
	"multitherm/internal/analysis/unitsafety"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", unitsafety.Analyzer)
}
