package cowcheck_test

import (
	"testing"

	"multitherm/internal/analysis/analysistest"
	"multitherm/internal/analysis/cowcheck"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", cowcheck.Analyzer)
}
