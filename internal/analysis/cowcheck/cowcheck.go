// Package cowcheck enforces the memo layer's copy-on-write contract.
// The lock-free read path works only if every value reachable through
// an atomic.Pointer/atomic.Value is immutable from the moment it is
// published: readers Load the snapshot with no lock, so a single
// post-publish write is an unsynchronized data race even when the
// writer still holds the writer mutex.
//
// Two checks, both over the driver's CFG dataflow core:
//
//  1. Publish-then-mutate. A forward may-analysis (union join) tracks
//     local variables that become aliases of a published value —
//     either because they were the operand of an atomic
//     Store/Swap/CompareAndSwap, or because they were bound from an
//     atomic Load. Any subsequent mutation through such a variable is
//     flagged: index assignment, delete, append (which mutates the
//     shared backing array in place when capacity allows), or a write
//     through the pointer. Rebinding the variable to a fresh value
//     (the correct copy-on-write move) kills the fact.
//
//  2. Mixed access discipline. A field passed by address to a
//     sync/atomic package function (atomic.AddInt64(&s.n, 1)) must
//     never also be read or written plainly: the plain access is
//     invisible to the atomic one and the pair races. Fields of
//     atomic value types (atomic.Int64 and friends) cannot be
//     accessed plainly at all, so they are exempt by construction.
//
// The analysis is intraprocedural and tracks identifiers, not heap
// shapes: passing a published map to another function that mutates it
// is not caught. Suppress deliberate violations with
// //mtlint:allow cowcheck|atomicmix <reason>.
package cowcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"multitherm/internal/analysis/driver"
)

// Analyzer is the copy-on-write contract check.
var Analyzer = &driver.Analyzer{
	Name: "cowcheck",
	Doc:  "flag mutations of atomically published values and fields mixing sync/atomic with plain access",
	Run:  run,
}

// Allow check names.
const (
	AllowPublish = "cowcheck"
	AllowMix     = "atomicmix"
)

// pubSet is the may-published set: objects that may alias an
// atomically published value at a program point. Treated as immutable.
type pubSet map[types.Object]bool

func (s pubSet) with(o types.Object) pubSet {
	if s[o] {
		return s
	}
	next := make(pubSet, len(s)+1)
	for k := range s { //mtlint:allow maprange set copy; sets are order-insensitive
		next[k] = true
	}
	next[o] = true
	return next
}

func (s pubSet) without(o types.Object) pubSet {
	if !s[o] {
		return s
	}
	next := make(pubSet, len(s))
	for k := range s { //mtlint:allow maprange set copy; sets are order-insensitive
		if k != o {
			next[k] = true
		}
	}
	return next
}

func joinSets(a, b pubSet) pubSet {
	if len(a) == 0 {
		return b
	}
	out := a
	for o := range b { //mtlint:allow maprange set union; sets are order-insensitive
		out = out.with(o)
	}
	return out
}

func equalSets(a, b pubSet) bool {
	if len(a) != len(b) {
		return false
	}
	for o := range a { //mtlint:allow maprange set compare; sets are order-insensitive
		if !b[o] {
			return false
		}
	}
	return true
}

type checker struct {
	pass *driver.Pass
	info *types.Info
}

func run(pass *driver.Pass) error {
	c := &checker{pass: pass, info: pass.TypesInfo()}
	for _, fb := range driver.PackageFunctions(pass.Pkg) {
		c.checkFunc(fb)
	}
	c.checkMixedAccess()
	return nil
}

func (c *checker) checkFunc(fb driver.FuncBody) {
	cfg := driver.NewCFG(fb.Body)
	transfer := func(b *driver.Block, in pubSet) pubSet {
		s := in
		for _, a := range b.Atoms {
			s = c.atom(a, s, false)
		}
		return s
	}
	in := driver.Forward(cfg, nil, joinSets, equalSets, transfer)
	for _, b := range cfg.Blocks {
		s, ok := in[b]
		if !ok {
			continue // unreachable
		}
		for _, a := range b.Atoms {
			s = c.atom(a, s, true)
		}
	}
}

// atom threads the may-published set through one CFG atom, reporting
// post-publish mutations when report is set.
func (c *checker) atom(a ast.Node, s pubSet, report bool) pubSet {
	switch n := a.(type) {
	case *ast.AssignStmt:
		return c.assign(n, s, report)
	case *ast.IncDecStmt:
		c.checkMutation(n.X, "mutated", s, report)
		return c.scanPublishes(n, s)
	default:
		c.scanDeletes(a, s, report)
		return c.scanPublishes(a, s)
	}
}

// assign handles gen (publish, load-alias, alias copy), kill (rebind
// to a fresh value), and mutation checks for one assignment.
func (c *checker) assign(n *ast.AssignStmt, s pubSet, report bool) pubSet {
	for _, r := range n.Rhs {
		c.scanDeletes(r, s, report)
		s = c.scanPublishes(r, s)
	}
	paired := len(n.Lhs) == len(n.Rhs)
	for i, l := range n.Lhs {
		// Mutations through a published alias: m[k] = v, *p = v.
		switch l.(type) {
		case *ast.IndexExpr, *ast.StarExpr:
			c.checkMutation(l, "mutated", s, report)
		}
		id, isIdent := l.(*ast.Ident)
		if !isIdent {
			continue
		}
		obj := c.objOf(id)
		if obj == nil {
			continue
		}
		if !paired {
			continue
		}
		rhs := n.Rhs[i]
		switch {
		case c.isAppendOfPublished(rhs, s):
			if report && !driver.Allowed(c.pass.Pkg, rhs.Pos(), AllowPublish) {
				c.pass.Reportf(rhs.Pos(), "append to %s after atomic publish; append mutates the shared backing array in place — build a fresh slice and re-publish", appendArgName(rhs))
			}
			s = s.without(obj)
		case c.isAtomicLoad(rhs):
			s = s.with(obj)
		default:
			if src := c.objOf(aliasSource(rhs)); src != nil && s[src] {
				s = s.with(obj) // m2 := m keeps the alias published
			} else {
				s = s.without(obj) // rebinding to a fresh value is the COW move
			}
		}
	}
	return s
}

// checkMutation reports a write through e when e bottoms out in a
// published identifier.
func (c *checker) checkMutation(e ast.Expr, verb string, s pubSet, report bool) {
	if !report {
		return
	}
	base := baseIdent(e)
	if base == nil {
		return
	}
	obj := c.objOf(base)
	if obj == nil || !s[obj] {
		return
	}
	if driver.Allowed(c.pass.Pkg, e.Pos(), AllowPublish) {
		return
	}
	c.pass.Reportf(e.Pos(), "%s %s after atomic publish; lock-free readers share this value — build a fresh copy and re-publish", base.Name, verb)
}

// scanDeletes finds delete(m, k) calls on published maps anywhere in
// the atom.
func (c *checker) scanDeletes(a ast.Node, s pubSet, report bool) {
	if !report {
		return
	}
	driver.WalkAtom(a, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "delete" || len(call.Args) == 0 {
			return true
		}
		if _, isBuiltin := c.info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		base := baseIdent(call.Args[0])
		if base == nil {
			return true
		}
		if obj := c.objOf(base); obj != nil && s[obj] {
			if !driver.Allowed(c.pass.Pkg, call.Pos(), AllowPublish) {
				c.pass.Reportf(call.Pos(), "%s deleted from after atomic publish; lock-free readers share this value — build a fresh copy and re-publish", base.Name)
			}
		}
		return true
	})
}

// scanPublishes adds the operands of atomic Store/Swap/CompareAndSwap
// calls found in the atom to the published set.
func (c *checker) scanPublishes(a ast.Node, s pubSet) pubSet {
	driver.WalkAtom(a, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		argIdx, isPublish := atomicPublishArg[sel.Sel.Name]
		if !isPublish || !c.isAtomicMethodSel(sel) || len(call.Args) <= argIdx {
			return true
		}
		if base := baseIdent(call.Args[argIdx]); base != nil {
			if obj := c.objOf(base); obj != nil {
				s = s.with(obj)
			}
		}
		return true
	})
	return s
}

// atomicPublishArg maps publishing method names to the index of the
// argument that becomes visible to other goroutines.
var atomicPublishArg = map[string]int{
	"Store":          0,
	"Swap":           0,
	"CompareAndSwap": 1,
}

// isAtomicLoad reports whether e is a Load from an atomic value,
// possibly behind a dereference: p.Load(), *p.Load().
func (c *checker) isAtomicLoad(e ast.Expr) bool {
	switch n := e.(type) {
	case *ast.StarExpr:
		return c.isAtomicLoad(n.X)
	case *ast.ParenExpr:
		return c.isAtomicLoad(n.X)
	case *ast.CallExpr:
		sel, ok := n.Fun.(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "Load" && c.isAtomicMethodSel(sel)
	}
	return false
}

// isAtomicMethodSel reports whether sel names a method of a
// sync/atomic type.
func (c *checker) isAtomicMethodSel(sel *ast.SelectorExpr) bool {
	fn, ok := c.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// isAppendOfPublished reports whether e is append(m, ...) with m
// published.
func (c *checker) isAppendOfPublished(e ast.Expr, s pubSet) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := c.info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	base := baseIdent(call.Args[0])
	if base == nil {
		return false
	}
	obj := c.objOf(base)
	return obj != nil && s[obj]
}

func appendArgName(e ast.Expr) string {
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) > 0 {
		if base := baseIdent(call.Args[0]); base != nil {
			return base.Name
		}
	}
	return "value"
}

// baseIdent unwraps unary/star/paren/index layers to the identifier a
// mutation flows through, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch n := e.(type) {
		case *ast.Ident:
			return n
		case *ast.ParenExpr:
			e = n.X
		case *ast.StarExpr:
			e = n.X
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return nil
			}
			e = n.X
		case *ast.IndexExpr:
			e = n.X
		default:
			return nil
		}
	}
}

func (c *checker) objOf(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := c.info.Uses[id]; o != nil {
		return o
	}
	return c.info.Defs[id]
}

// aliasSource unwraps an RHS to the identifier it aliases, if the
// binding shares backing storage: m2 := m, p2 := (m).
func aliasSource(e ast.Expr) ast.Expr {
	for {
		switch n := e.(type) {
		case *ast.ParenExpr:
			e = n.X
		default:
			return e
		}
	}
}

// checkMixedAccess flags fields that are accessed both through
// sync/atomic package functions and plainly.
func (c *checker) checkMixedAccess() {
	atomicSel := map[*ast.SelectorExpr]bool{} // &s.f args of atomic pkg funcs
	skipSel := map[*ast.SelectorExpr]bool{}   // receivers of atomic-typed method calls

	for _, f := range c.pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if c.isAtomicPkgFunc(n) {
					for _, arg := range n.Args {
						if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
							if sel, ok := u.X.(*ast.SelectorExpr); ok {
								atomicSel[sel] = true
							}
						}
					}
				}
			case *ast.SelectorExpr:
				// s.counter.Add(1): the field selector is the receiver of
				// an atomic-typed method; the type system already forbids
				// plain access to such fields.
				if c.isAtomicMethodSel(n) {
					if sel, ok := n.X.(*ast.SelectorExpr); ok {
						skipSel[sel] = true
					}
				}
			}
			return true
		})
	}

	type access struct {
		pos    token.Pos
		atomic bool
	}
	uses := map[*types.Var][]access{}
	var order []*types.Var
	for _, f := range c.pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || skipSel[sel] {
				return true
			}
			selection, ok := c.info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			field, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			if _, seen := uses[field]; !seen {
				order = append(order, field)
			}
			uses[field] = append(uses[field], access{pos: sel.Pos(), atomic: atomicSel[sel]})
			return true
		})
	}

	for _, field := range order {
		accs := uses[field]
		hasAtomic := false
		for _, a := range accs {
			if a.atomic {
				hasAtomic = true
			}
		}
		if !hasAtomic {
			continue
		}
		for _, a := range accs {
			if a.atomic {
				continue
			}
			if driver.Allowed(c.pass.Pkg, a.pos, AllowMix) {
				continue
			}
			c.pass.Reportf(a.pos, "field %s is accessed plainly here but through sync/atomic elsewhere in this package; the pair races — use one discipline", field.Name())
		}
	}
}

// isAtomicPkgFunc reports whether call invokes a package-level
// function of sync/atomic (atomic.AddInt64, atomic.LoadPointer, ...).
func (c *checker) isAtomicPkgFunc(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
