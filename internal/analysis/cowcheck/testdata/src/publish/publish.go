// Package publish seeds the publish-then-mutate bug family: a map or
// slice handed to an atomic.Pointer keeps being written through the
// local variable, racing with every lock-free reader that already
// Loaded it. The compliant shapes are the real copy-on-write moves:
// build fresh, publish, forget.
package publish

import (
	"sync"
	"sync/atomic"
)

type cache struct {
	mu   sync.Mutex
	snap atomic.Pointer[map[string]int]
}

// PutGood is the production shape: copy the current snapshot, mutate
// the copy, publish, never touch it again.
func (c *cache) PutGood(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := map[string]int{}
	if cur := c.snap.Load(); cur != nil {
		for key, val := range *cur {
			next[key] = val
		}
	}
	next[k] = v
	c.snap.Store(&next)
}

// PutThenMutate stores the map and keeps writing it: the classic
// snapshot-mutated-after-publish bug.
func (c *cache) PutThenMutate(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := map[string]int{k: v}
	c.snap.Store(&next)
	next["extra"] = v // want `next mutated after atomic publish`
}

func (c *cache) DeleteAfterPublish(k string) {
	next := map[string]int{}
	c.snap.Store(&next)
	delete(next, k) // want `next deleted from after atomic publish`
}

// MutateLoaded writes through a Load result: the alias is published
// by definition.
func (c *cache) MutateLoaded(k string, v int) {
	m := c.snap.Load()
	if m == nil {
		return
	}
	(*m)[k] = v // want `m mutated after atomic publish`
}

// AliasEscapes shows the alias chain is followed: m2 shares backing
// with the published map.
func (c *cache) AliasEscapes(k string, v int) {
	next := map[string]int{}
	c.snap.Store(&next)
	m2 := next
	m2[k] = v // want `m2 mutated after atomic publish`
}

// RebindIsFine: after rebinding to a fresh map the variable no longer
// aliases the published value.
func (c *cache) RebindIsFine(k string, v int) {
	next := map[string]int{}
	c.snap.Store(&next)
	next = map[string]int{}
	next[k] = v
}

// Allowed demonstrates the suppression escape hatch.
func (c *cache) Allowed(k string, v int) {
	next := map[string]int{}
	c.snap.Store(&next)
	//mtlint:allow cowcheck single-writer startup fill; no reader exists yet
	next[k] = v
}

type ring struct {
	slots atomic.Pointer[[]int]
}

// AppendAfterPublish is the memo slice-swap analogue: append may
// write the published backing array in place.
func (r *ring) AppendAfterPublish(v int) {
	s := make([]int, 0, 8)
	r.slots.Store(&s)
	s = append(s, v) // want `append to s after atomic publish`
}

// SwapPublishes: Swap's operand is published exactly like Store's.
func (r *ring) SwapPublishes(v int) {
	s := []int{v}
	_ = r.slots.Swap(&s)
	s[0] = v // want `s mutated after atomic publish`
}

// CopyFirst is the compliant slice move.
func (r *ring) CopyFirst(v int) {
	old := r.slots.Load()
	var next []int
	if old != nil {
		next = append(append([]int(nil), *old...), v)
	} else {
		next = []int{v}
	}
	r.slots.Store(&next)
}
