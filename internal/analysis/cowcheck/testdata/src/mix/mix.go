// Package mix seeds the mixed-discipline bug: one goroutine bumps a
// counter through sync/atomic while another reads it plainly; the
// plain access is invisible to the atomic one and the pair races.
package mix

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	// ops uses an atomic value type: the compiler already forbids
	// plain access, so method calls on it are never flagged.
	ops atomic.Int64
}

func (c *counters) RecordHit() {
	atomic.AddInt64(&c.hits, 1)
	c.ops.Add(1)
}

func (c *counters) SnapshotBad() int64 {
	return c.hits // want `field hits is accessed plainly here but through sync/atomic elsewhere`
}

func (c *counters) SnapshotGood() int64 {
	return atomic.LoadInt64(&c.hits) + c.ops.Load()
}

// misses is only ever accessed plainly: one discipline, no report.
func (c *counters) RecordMiss() {
	c.misses++
}

func (c *counters) Misses() int64 {
	return c.misses
}

// Allowed demonstrates the suppression escape hatch.
func (c *counters) SnapshotAllowed() int64 {
	//mtlint:allow atomicmix post-join readout; all writers have exited
	return c.hits
}
