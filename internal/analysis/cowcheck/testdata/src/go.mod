module fixture.example/cowcheck

go 1.22
