// Package analysistest runs a driver.Analyzer over fixture packages
// and checks its diagnostics against inline "// want" expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest on top of the
// repository's stdlib-only driver.
//
// Fixtures live in a testdata directory that is its own Go module (a
// nested go.mod keeps fixture packages out of the repository build),
// with one package per scenario. Expected diagnostics are annotated on
// the offending line:
//
//	x := rand.Float64() // want `math/rand`
//
// The argument is a regular expression in double or back quotes that
// must match the diagnostic message. Every diagnostic must match a
// want on its line and every want must be matched exactly once.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"multitherm/internal/analysis/driver"
)

// expectation is one "// want" annotation.
type expectation struct {
	file string // base name
	line int
	rx   *regexp.Regexp
	hits int
}

// Run loads the fixture module rooted at dir (patterns default to
// ./...), applies the analyzer, and reports any mismatch between its
// diagnostics and the fixtures' want annotations as test failures.
func Run(t *testing.T, dir string, a *driver.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := driver.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures from %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s", dir)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %v", pkg.ImportPath, terr)
		}
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
		for _, f := range files {
			ws, err := collectWants(pkg.Fset, f)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}

	diags, errs := driver.Run(pkgs, []*driver.Analyzer{a})
	for _, err := range errs {
		t.Errorf("analyzer error: %v", err)
	}

diag:
	for _, d := range diags {
		base := d.Pos.Filename[strings.LastIndexByte(d.Pos.Filename, '/')+1:]
		for _, w := range wants {
			if w.file == base && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.hits++
				continue diag
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if w.hits == 0 {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		} else if w.hits > 1 {
			t.Errorf("%s:%d: want %q matched %d diagnostics, expected exactly one", w.file, w.line, w.rx, w.hits)
		}
	}
}

// wantRE matches the annotation payloads: one or more quoted or
// back-quoted regular expressions after "want".
var wantRE = regexp.MustCompile("// want ((?:[`\"][^`\"]*[`\"] ?)+)")

func collectWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			base := pos.Filename[strings.LastIndexByte(pos.Filename, '/')+1:]
			for _, q := range splitQuoted(m[1]) {
				rx, err := regexp.Compile(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", base, pos.Line, q, err)
				}
				out = append(out, &expectation{file: base, line: pos.Line, rx: rx})
			}
		}
	}
	return out, nil
}

// splitQuoted extracts the bodies of consecutive quoted or back-quoted
// strings.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// Re-quote through strconv to honor escapes.
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				return out
			}
			if uq, err := strconv.Unquote(s[:end+2]); err == nil {
				out = append(out, uq)
			}
			s = strings.TrimSpace(s[end+2:])
		default:
			return out
		}
	}
	return out
}
