// Package kernelparity keeps the assembly kernels honest. Every
// body-less Go declaration backed by a .s file (the AVX-512 fused-tick
// kernels in internal/linalg) must name a pure-Go twin via
// //mtlint:generic and the differential test or fuzz target that
// exercises both, so the generic fallback — the only path on
// non-AVX-512 hosts and under the noasm build tag — can never rot
// silently. Detection primitives that have no meaningful generic
// counterpart (CPUID probes) opt out explicitly with
// //mtlint:nogeneric and a reason.
//
// Checked per prototype:
//
//  1. a //mtlint:generic <twin> tested-by <TestOrFuzz> (or
//     //mtlint:nogeneric <reason>) directive is present;
//  2. the named twin exists in the package with a body;
//  3. the named test/fuzz function exists in the package's test files
//     and its body references the twin, so the differential coverage
//     claim is real.
package kernelparity

import (
	"go/ast"
	"strings"

	"multitherm/internal/analysis/driver"
)

// Analyzer is the asm/generic parity check.
var Analyzer = &driver.Analyzer{
	Name: "kernelparity",
	Doc:  "require every asm-backed function to declare a generic twin and a differential test referencing it",
	Run:  run,
}

func run(pass *driver.Pass) error {
	pkg := pass.Pkg
	if len(pkg.SFiles) == 0 {
		return nil
	}

	// Functions with bodies, by name (receivers ignored: kernel twins
	// are uniquely named within the package).
	defined := map[string]bool{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				defined[fn.Name.Name] = true
			}
		}
	}
	// Test/fuzz functions, by name, with their bodies for reference
	// scanning.
	testFns := map[string]*ast.FuncDecl{}
	for _, file := range pkg.TestFiles {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				testFns[fn.Name.Name] = fn
			}
		}
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body != nil {
				continue
			}
			checkPrototype(pass, fn, defined, testFns)
		}
	}
	return nil
}

func checkPrototype(pass *driver.Pass, fn *ast.FuncDecl, defined map[string]bool, testFns map[string]*ast.FuncDecl) {
	name := fn.Name.Name
	if reason, ok := driver.FuncDirective(fn, "nogeneric"); ok {
		if strings.TrimSpace(reason) == "" {
			pass.Reportf(fn.Pos(), "asm function %s: //mtlint:nogeneric needs a reason", name)
		}
		return
	}
	args, ok := driver.FuncDirective(fn, "generic")
	if !ok {
		pass.Reportf(fn.Pos(), "asm function %s has no registered generic twin; add //mtlint:generic <twin> tested-by <TestOrFuzz> (or //mtlint:nogeneric <reason>)", name)
		return
	}
	fields := strings.Fields(args)
	if len(fields) != 3 || fields[1] != "tested-by" {
		pass.Reportf(fn.Pos(), "asm function %s: malformed directive; want //mtlint:generic <twin> tested-by <TestOrFuzz>", name)
		return
	}
	twin, testName := fields[0], fields[2]
	if !defined[twin] {
		pass.Reportf(fn.Pos(), "asm function %s: generic twin %s is not defined in this package", name, twin)
		return
	}
	tf, ok := testFns[testName]
	if !ok {
		pass.Reportf(fn.Pos(), "asm function %s: differential target %s not found in package tests", name, testName)
		return
	}
	if !references(tf, twin) {
		pass.Reportf(fn.Pos(), "asm function %s: %s does not reference generic twin %s, so it cannot be differential", name, testName, twin)
	}
}

// references reports whether fn's body mentions ident name (as a plain
// identifier or a method selector).
func references(fn *ast.FuncDecl, name string) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == name {
				found = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}
