// Package kern exercises the asm/generic parity contract: one
// prototype per failure mode, plus fully compliant registrations.
package kern

// addGeneric is the pure-Go twin of addAsm.
func addGeneric(a, b float64) float64 { return a + b }

// addAsm is properly registered: twin defined, test exists and
// references the twin.
//
//mtlint:generic addGeneric tested-by TestAddDiff
func addAsm(a, b float64) float64

// cpuidAsm opts out with a reason.
//
//mtlint:nogeneric feature probe, no arithmetic to mirror
func cpuidAsm() uint32

//mtlint:generic subGeneric tested-by TestAddDiff
func subAsm(a, b float64) float64 // want `generic twin subGeneric is not defined`

//mtlint:generic addGeneric tested-by TestDivDiff
func divAsm(a, b float64) float64 // want `differential target TestDivDiff not found`

//mtlint:generic addGeneric tested-by TestUnrelated
func negAsm(a float64) float64 // want `TestUnrelated does not reference generic twin addGeneric`

//mtlint:generic addGeneric
func badAsm(a float64) float64 // want `malformed directive`

//mtlint:nogeneric
func probeAsm() uint32 // want `//mtlint:nogeneric needs a reason`

func mulAsm(a, b float64) float64 // want `asm function mulAsm has no registered generic twin`
