package kern

import "testing"

// TestAddDiff references the generic twin, so the coverage claim in
// the addAsm directive is real.
func TestAddDiff(t *testing.T) {
	if addGeneric(1, 2) != 3 {
		t.Fatal("addGeneric(1, 2)")
	}
}

// TestUnrelated never touches addGeneric; directives naming it must be
// rejected.
func TestUnrelated(t *testing.T) {}
