// Empty assembly file: its presence lets the compiler accept the
// body-less prototypes in kern.go; nothing here is ever linked.
