module fixture.example/kernelparity

go 1.22
