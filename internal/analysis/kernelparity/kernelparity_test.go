package kernelparity_test

import (
	"testing"

	"multitherm/internal/analysis/analysistest"
	"multitherm/internal/analysis/kernelparity"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", kernelparity.Analyzer)
}
