// Package driver is a self-contained static-analysis harness in the
// spirit of golang.org/x/tools/go/analysis, built entirely on the
// standard library so the repository carries no external tool
// dependencies. It loads packages through `go list -export` (parsing
// source with go/parser and type-checking against the gc export data
// the go command already produces), hands each package to a set of
// Analyzers, and collects position-tagged diagnostics.
//
// The domain analyzers under internal/analysis/... enforce the
// invariants the simulator's correctness claims rest on — reproducible
// closed-loop trajectories, float-comparison hygiene, zero-allocation
// hot ticks, and asm/generic kernel parity — and cmd/mtlint wires them
// into one CLI gate.
package driver

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"multitherm/internal/parallel"
)

// Analyzer is one static check. Run inspects a fully loaded package
// through the Pass and reports findings; it returns an error only for
// infrastructure failures (a finding is a diagnostic, not an error).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the interprocedural view over every package of this Run:
	// the function index and the shared summary caches (see summary.go
	// and taint.go). One Program is built per Run, so summaries are
	// computed once and reused by every (package, analyzer) pass.
	Prog   *Program
	report func(Diagnostic)
}

// Fset returns the file set all package positions resolve through.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the parsed non-test Go files of the package.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypesInfo returns the type information recorded while checking the
// package.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.TypesInfo }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Package:  p.Pkg.ImportPath,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Pos      token.Position
	Package  string
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package and returns the combined
// diagnostics sorted by file, line, and column. Infrastructure errors
// (not findings) are returned separately; analysis continues past them
// so one broken analyzer does not mask another's findings.
//
// Passes are independent — an analyzer sees one package at a time and
// only reads shared structures (the FileSet, gc export data) — so Run
// fans them out across internal/parallel workers. That matters chiefly
// for zeroalloc, whose per-package `go build -gcflags=-m` subprocess
// dominates the gate's wall clock. Determinism is preserved the same
// way the sweep engine preserves it: each pass writes into its own
// index-addressed slot, the slots are flattened in index order, and the
// final position sort makes the output independent of scheduling.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []error) {
	if len(pkgs) == 0 || len(analyzers) == 0 {
		return nil, nil
	}
	type slot struct {
		diags []Diagnostic
		err   error
	}
	slots := make([]slot, len(pkgs)*len(analyzers))
	prog := NewProgram(pkgs)
	// fn never returns an error: infrastructure failures are recorded in
	// the pass's slot so every pass still runs (ForEach would cancel the
	// remaining work on the first error).
	_ = parallel.ForEach(context.Background(), 0, len(slots), func(_ context.Context, i int) error {
		pkg, a := pkgs[i/len(analyzers)], analyzers[i%len(analyzers)]
		s := &slots[i]
		pass := &Pass{
			Analyzer: a,
			Pkg:      pkg,
			Prog:     prog,
			report:   func(d Diagnostic) { s.diags = append(s.diags, d) },
		}
		if err := a.Run(pass); err != nil {
			s.err = fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
		return nil
	})
	var (
		diags []Diagnostic
		errs  []error
	)
	for i := range slots {
		diags = append(diags, slots[i].diags...)
		if slots[i].err != nil {
			errs = append(errs, slots[i].err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, errs
}
