package driver

// Interprocedural layer: a Program indexes every function declaration
// of the loaded packages (cross-package, within the module) and
// computes per-function summaries on demand — which parameters reach
// allocation/loop-bound/index sinks (taint.go), which parameters are
// clamp-validated before use, what a function's net lock effect is,
// and what join evidence (WaitGroup Done, channel send) it provides.
// Summaries are memoized under one mutex, so the cache is shared by
// every (package, analyzer) pass of a Run: lifecycle, lockcheck, and
// taintcheck all read the same tables, and the work is paid once per
// mtlint invocation rather than once per analyzer.
//
// Identity is by types.Func full name (FuncID), not object pointer:
// a function imported through gc export data is a different object
// than the same function loaded from source, but both spell
// "pkg/path.Name" (or "(pkg/path.Recv).Name") identically, so
// summaries computed from the defining package's source resolve from
// any caller package.
//
// Soundness limits, shared by every summary kind: recursion is cut by
// returning a conservative empty summary for the in-progress function;
// function values and interface-method calls are opaque (no summary);
// package-level variable state does not flow between functions. These
// are documented in DESIGN.md and are the price of staying stdlib-only.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Program is the cross-package function index plus the shared summary
// caches. Build one per Run (driver.Run does this automatically) and
// read it from Pass.Prog.
type Program struct {
	fns map[string]*ProgFunc

	// lockedPre maps FuncID -> lock field for //mtlint:locked methods,
	// program-wide; built eagerly, read-only afterwards.
	lockedPre map[string]string

	// globalTaint marks package-level variables initialized straight
	// from a source call (var addr = flag.String(...)); function bodies
	// never execute those initializers, so the index substitutes for
	// dataflow through them. Built eagerly, read-only afterwards.
	globalTaint map[types.Object]Taint

	mu        sync.Mutex
	taint     map[string]*TaintSummary
	taintBusy map[string]bool
	joins     map[string]*JoinSummary
	joinBusy  map[string]bool
	locks     map[string][]LockEffect
	lockBusy  map[string]bool
}

// ProgFunc is one indexed function declaration: where it lives, its
// syntax, and its types object.
type ProgFunc struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
	ID   string
}

// FuncID is the program-wide identity of a function: the full name of
// its origin (generic instantiations share their origin's summary).
func FuncID(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return fn.FullName()
}

// NewProgram indexes the loaded packages. Only functions with bodies
// in the target packages are summarizable; everything else (stdlib,
// dependencies outside the pattern set) is treated as opaque.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		fns:         map[string]*ProgFunc{},
		lockedPre:   map[string]string{},
		globalTaint: map[types.Object]Taint{},
		taint:       map[string]*TaintSummary{},
		taintBusy:   map[string]bool{},
		joins:       map[string]*JoinSummary{},
		joinBusy:    map[string]bool{},
		locks:       map[string][]LockEffect{},
		lockBusy:    map[string]bool{},
	}
	for _, pkg := range pkgs {
		if pkg.TypesInfo == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					fn, ok := pkg.TypesInfo.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					pf := &ProgFunc{Pkg: pkg, Decl: d, Obj: fn, ID: FuncID(fn)}
					p.fns[pf.ID] = pf
					if args, ok := FuncDirective(d, "locked"); ok {
						if fields := strings.Fields(args); len(fields) > 0 {
							p.lockedPre[pf.ID] = fields[0]
						}
					}
				case *ast.GenDecl:
					p.indexGlobalSources(pkg, d)
				}
			}
		}
	}
	return p
}

// indexGlobalSources records package-level vars whose initializer is a
// direct source call.
func (p *Program) indexGlobalSources(pkg *Package, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i >= len(vs.Values) {
				break
			}
			call, ok := ast.Unparen(vs.Values[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			callee := calleeFunc(pkg.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil {
				continue
			}
			var t Taint
			switch {
			case callee.Pkg().Path() == "flag":
				t = Taint{Direct: SrcFlag}
			case callee.FullName() == "os.Getenv" || callee.FullName() == "os.LookupEnv":
				t = Taint{Direct: SrcEnv}
			default:
				continue
			}
			if obj := pkg.TypesInfo.Defs[name]; obj != nil {
				p.globalTaint[obj] = t
			}
		}
	}
}

// FuncOf resolves a types.Func (from any package, source- or
// export-loaded) to its indexed declaration, or nil.
func (p *Program) FuncOf(fn *types.Func) *ProgFunc {
	if fn == nil {
		return nil
	}
	return p.fns[FuncID(fn)]
}

// LockedPrecondition returns the //mtlint:locked lock field declared on
// fn, looked up program-wide (cross-package call sites included).
func (p *Program) LockedPrecondition(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	field, ok := p.lockedPre[FuncID(fn)]
	return field, ok
}

// paramObjects returns the function's parameter objects, receiver
// first when present, so parameter index 0 is the receiver of a
// method. Nil entries stand for unnamed parameters.
func (pf *ProgFunc) paramObjects() []types.Object {
	sig, ok := pf.Obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []types.Object
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// paramIndex returns obj's position in paramObjects, or -1.
func paramIndex(params []types.Object, obj types.Object) int {
	for i, o := range params {
		if o != nil && o == obj {
			return i
		}
	}
	return -1
}

// BaseObj resolves the object an expression's access path starts from:
// the field object for s.wg (so every selection of one field shares an
// identity), the variable for wg. It is the identity the lifecycle and
// summary layers key join evidence by.
func BaseObj(info *types.Info, e ast.Expr) types.Object {
	switch n := e.(type) {
	case *ast.ParenExpr:
		return BaseObj(info, n.X)
	case *ast.UnaryExpr:
		return BaseObj(info, n.X)
	case *ast.StarExpr:
		return BaseObj(info, n.X)
	case *ast.Ident:
		if o := info.Uses[n]; o != nil {
			return o
		}
		return info.Defs[n]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[n]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Join summaries (lifecycle retrofit)

// JoinSummary records the join evidence a function provides when run:
// WaitGroup Done calls and channel sends, split into those on objects
// (fields, package variables, locals of the summarized function) and
// those on the function's own parameters (resolved to caller arguments
// at the call site). Transitive: calls into other indexed functions
// contribute their summaries.
type JoinSummary struct {
	DoneObjs   []types.Object
	SendObjs   []types.Object
	DoneParams []int
	SendParams []int
}

func (s *JoinSummary) empty() bool {
	return s == nil || (len(s.DoneObjs) == 0 && len(s.SendObjs) == 0 &&
		len(s.DoneParams) == 0 && len(s.SendParams) == 0)
}

// JoinSummaryOf returns fn's join summary, computing and caching it on
// first use. Returns an empty summary for unindexed functions and for
// recursion back into a function currently being summarized.
func (p *Program) JoinSummaryOf(fn *types.Func) *JoinSummary {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.joinSummaryLocked(fn)
}

func (p *Program) joinSummaryLocked(fn *types.Func) *JoinSummary {
	if fn == nil {
		return &JoinSummary{}
	}
	id := FuncID(fn)
	if s, ok := p.joins[id]; ok {
		return s
	}
	pf := p.fns[id]
	if pf == nil || p.joinBusy[id] {
		return &JoinSummary{}
	}
	p.joinBusy[id] = true
	s := p.computeJoin(pf)
	delete(p.joinBusy, id)
	p.joins[id] = s
	return s
}

func (p *Program) computeJoin(pf *ProgFunc) *JoinSummary {
	info := pf.Pkg.TypesInfo
	params := pf.paramObjects()
	s := &JoinSummary{}
	doneObjs := map[types.Object]bool{}
	sendObjs := map[types.Object]bool{}
	doneParams := map[int]bool{}
	sendParams := map[int]bool{}

	classify := func(e ast.Expr, objs map[types.Object]bool, prms map[int]bool) {
		obj := BaseObj(info, e)
		if obj == nil {
			return
		}
		if i := paramIndex(params, obj); i >= 0 {
			prms[i] = true
			return
		}
		objs[obj] = true
	}

	ast.Inspect(pf.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			classify(n.Chan, sendObjs, sendParams)
		case *ast.CallExpr:
			sel, _ := n.Fun.(*ast.SelectorExpr)
			if sel != nil {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.FullName() == "(*sync.WaitGroup).Done" {
					classify(sel.X, doneObjs, doneParams)
					return true
				}
			}
			callee := calleeFunc(info, n)
			if callee == nil {
				return true
			}
			cs := p.joinSummaryLocked(callee)
			if cs.empty() {
				return true
			}
			for _, o := range cs.DoneObjs {
				doneObjs[o] = true
			}
			for _, o := range cs.SendObjs {
				sendObjs[o] = true
			}
			calleePF := p.fns[FuncID(callee)]
			for _, j := range cs.DoneParams {
				if arg := callArg(n, calleePF, j); arg != nil {
					classify(arg, doneObjs, doneParams)
				}
			}
			for _, j := range cs.SendParams {
				if arg := callArg(n, calleePF, j); arg != nil {
					classify(arg, sendObjs, sendParams)
				}
			}
		}
		return true
	})

	for o := range doneObjs { //mtlint:allow maprange collected into sorted slices below
		s.DoneObjs = append(s.DoneObjs, o)
	}
	for o := range sendObjs { //mtlint:allow maprange collected into sorted slices below
		s.SendObjs = append(s.SendObjs, o)
	}
	for i := range doneParams { //mtlint:allow maprange collected into sorted slices below
		s.DoneParams = append(s.DoneParams, i)
	}
	for i := range sendParams { //mtlint:allow maprange collected into sorted slices below
		s.SendParams = append(s.SendParams, i)
	}
	sortObjs(s.DoneObjs)
	sortObjs(s.SendObjs)
	sort.Ints(s.DoneParams)
	sort.Ints(s.SendParams)
	return s
}

func sortObjs(objs []types.Object) {
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
}

// CalleeOf resolves a call's static target function — plain calls,
// method calls, generic instantiations — or nil for builtins,
// conversions, and dynamic calls through function values.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	return calleeFunc(info, call)
}

// CallArg maps fn's idx-th parameter (receiver first) to the caller
// expression bound to it at call, or nil when it cannot be recovered.
func (p *Program) CallArg(call *ast.CallExpr, fn *types.Func, idx int) ast.Expr {
	return callArg(call, p.FuncOf(fn), idx)
}

// calleeFunc resolves a call's static target, or nil for builtins,
// conversions, and dynamic calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	case *ast.IndexListExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// callArg maps a callee parameter index (receiver first) to the caller
// expression bound to it, or nil when it cannot be recovered (method
// expressions, arity mismatches, variadic tails).
func callArg(call *ast.CallExpr, callee *ProgFunc, idx int) ast.Expr {
	if callee == nil {
		return nil
	}
	sig, _ := callee.Obj.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	if sig.Recv() != nil {
		if idx == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		idx--
	}
	if idx < len(call.Args) {
		return call.Args[idx]
	}
	return nil
}

// ---------------------------------------------------------------------
// Lock effects (lockcheck retrofit)

// LockEffect is a function's net effect on one lock reachable through
// a parameter (index 0 = receiver): it returns with the lock acquired,
// or with it released. Functions that both acquire and release a lock
// (the dominant lock/work/unlock shape) have no net effect and no
// entry. Transitive through indexed callees.
type LockEffect struct {
	Param   int
	Field   string
	Acquire bool
	Excl    bool
}

// LockEffectsOf returns fn's net lock effects, computed and cached on
// first use; nil for opaque functions and recursion.
func (p *Program) LockEffectsOf(fn *types.Func) []LockEffect {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lockEffectsLocked(fn)
}

func (p *Program) lockEffectsLocked(fn *types.Func) []LockEffect {
	if fn == nil {
		return nil
	}
	id := FuncID(fn)
	if e, ok := p.locks[id]; ok {
		return e
	}
	pf := p.fns[id]
	if pf == nil || p.lockBusy[id] {
		return nil
	}
	p.lockBusy[id] = true
	e := p.computeLockEffects(pf)
	delete(p.lockBusy, id)
	p.locks[id] = e
	return e
}

type lockCounts struct{ lock, rlock, unlock int }

func (p *Program) computeLockEffects(pf *ProgFunc) []LockEffect {
	info := pf.Pkg.TypesInfo
	params := pf.paramObjects()
	type key struct {
		param int
		field string
	}
	counts := map[key]*lockCounts{}
	bump := func(k key) *lockCounts {
		c := counts[k]
		if c == nil {
			c = &lockCounts{}
			counts[k] = c
		}
		return c
	}
	// paramField matches `p.field` where p is a parameter (or receiver).
	paramField := func(e ast.Expr) (key, bool) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return key{}, false
		}
		obj := BaseObj(info, sel.X)
		if obj == nil {
			return key{}, false
		}
		i := paramIndex(params, obj)
		if i < 0 {
			return key{}, false
		}
		return key{param: i, field: sel.Sel.Name}, true
	}

	// Walk synchronously executed statements only: function literals are
	// their own functions and go statements run elsewhere; a deferred
	// unlock has run by the time the call returns, so defers count.
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				sel, _ := c.Fun.(*ast.SelectorExpr)
				callee := calleeFunc(info, c)
				if sel != nil && callee != nil {
					switch callee.FullName() {
					case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(sync.Locker).Lock":
						if k, ok := paramField(sel.X); ok {
							bump(k).lock++
						}
						return true
					case "(*sync.RWMutex).RLock":
						if k, ok := paramField(sel.X); ok {
							bump(k).rlock++
						}
						return true
					case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock", "(sync.Locker).Unlock":
						if k, ok := paramField(sel.X); ok {
							bump(k).unlock++
						}
						return true
					}
				}
				if callee == nil {
					return true
				}
				calleePF := p.fns[FuncID(callee)]
				if calleePF == nil {
					return true
				}
				for _, eff := range p.lockEffectsLocked(callee) {
					arg := callArg(c, calleePF, eff.Param)
					if arg == nil {
						continue
					}
					obj := BaseObj(info, ast.Unparen(arg))
					i := paramIndex(params, obj)
					if i < 0 {
						continue
					}
					k := key{param: i, field: eff.Field}
					if eff.Acquire {
						if eff.Excl {
							bump(k).lock++
						} else {
							bump(k).rlock++
						}
					} else {
						bump(k).unlock++
					}
				}
			}
			return true
		})
	}
	walk(pf.Decl.Body)

	var out []LockEffect
	for k, c := range counts { //mtlint:allow maprange collected into a sorted slice below
		acquires := c.lock + c.rlock
		switch {
		case acquires > 0 && c.unlock == 0:
			out = append(out, LockEffect{Param: k.param, Field: k.field, Acquire: true, Excl: c.lock > 0})
		case c.unlock > 0 && acquires == 0:
			out = append(out, LockEffect{Param: k.param, Field: k.field, Acquire: false})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Param != out[j].Param {
			return out[i].Param < out[j].Param
		}
		return out[i].Field < out[j].Field
	})
	return out
}
