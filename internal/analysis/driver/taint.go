package driver

// Taint dataflow over the CFG core: a forward may-analysis tracking
// which values derive from untrusted input. Sources are HTTP/JSON
// request decoding, flag parsing, and environment reads; sinks are
// make sizes, loop trip counts, and slice indexing; sanitizers are
// comparisons against named cap expressions, min/max against a cap,
// modulo, //mtlint:sanitizer functions, and — interprocedurally —
// callees whose summaries prove they validate a parameter.
//
// State maps (root object, selector path) keys to taint masks. The
// mask carries one bit per function parameter (receiver first) plus
// three source bits; parameter bits exist so the same engine computes
// call-site-translatable summaries (seed the parameters, record which
// bits reach sinks and returns) and top-level findings (seed nothing,
// report source bits that reach sinks). A separate overflow mask marks
// products of two tainted integers: comparing such a product against a
// cap does not clear the overflow bits, which is exactly the Rows×Cols
// wrap-past-the-check shape this analysis exists to catch — validating
// each factor before multiplying is the only accepted fix.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"maps"
	"sort"
	"strings"
)

// Taint source bits beyond the per-parameter bits (0..47).
const (
	maxTaintParams        = 48
	SrcRequest     uint64 = 1 << 48 // HTTP/JSON request input
	SrcFlag        uint64 = 1 << 49 // command-line flag input
	SrcEnv         uint64 = 1 << 50 // environment variable input
	srcMask               = SrcRequest | SrcFlag | SrcEnv
	paramsMask            = (uint64(1) << maxTaintParams) - 1
)

// Taint is one value's taint: Direct carries plain data flow, Ovf
// marks values that are products of tainted integers and may have
// wrapped (so a later cap comparison proves nothing).
type Taint struct{ Direct, Ovf uint64 }

func (t Taint) union(o Taint) Taint { return Taint{t.Direct | o.Direct, t.Ovf | o.Ovf} }
func (t Taint) empty() bool         { return t.Direct == 0 && t.Ovf == 0 }
func (t Taint) bits() uint64        { return t.Direct | t.Ovf }

// SourceLabel names the source bits in a mask for diagnostics.
func SourceLabel(mask uint64) string {
	var parts []string
	if mask&SrcRequest != 0 {
		parts = append(parts, "request")
	}
	if mask&SrcFlag != 0 {
		parts = append(parts, "flag")
	}
	if mask&SrcEnv != 0 {
		parts = append(parts, "env")
	}
	if len(parts) == 0 {
		return "untrusted"
	}
	return strings.Join(parts, "/")
}

// SummarySink is one sink a parameter of a summarized function reaches,
// reportable at call sites.
type SummarySink struct {
	Kind string // "make size", "loop bound", "slice index"
	Via  string // call chain from the summarized function to the sink
	Ovf  bool   // the reaching value is an unvalidated product
}

// TaintSummary is the callable contract of one function: per-parameter
// sinks, per-parameter validation (a clamp comparison against a cap
// cleans the caller's argument), and result taint as a function of
// parameter taint.
type TaintSummary struct {
	NumParams      int
	ParamSinks     [][]SummarySink
	ParamValidated []bool
	Results        []Taint // bits 0..47 select parameter taints, source bits pass through
	Sanitizer      bool    // //mtlint:sanitizer: trusted to validate everything
}

// TaintFinding is one top-level taint diagnosis.
type TaintFinding struct {
	Pos      token.Pos
	Kind     string
	Sources  uint64 // source bits that reach the sink
	Overflow bool   // the reaching value is a product that can wrap past cap checks
	Via      string // call chain for interprocedural sinks, "" for direct
}

// TaintSummaryOf returns fn's taint summary, computed and cached on
// first use; nil for opaque functions and recursion (callers treat nil
// as "propagate arguments, no sinks, no validation").
func (p *Program) TaintSummaryOf(fn *types.Func) *TaintSummary {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.taintSummaryLocked(fn)
}

func (p *Program) taintSummaryLocked(fn *types.Func) *TaintSummary {
	if fn == nil {
		return nil
	}
	id := FuncID(fn)
	if s, ok := p.taint[id]; ok {
		return s
	}
	pf := p.fns[id]
	if pf == nil || p.taintBusy[id] {
		return nil
	}
	p.taintBusy[id] = true
	s := p.computeTaintSummary(pf)
	delete(p.taintBusy, id)
	p.taint[id] = s
	return s
}

func (p *Program) computeTaintSummary(pf *ProgFunc) *TaintSummary {
	params := pf.paramObjects()
	n := len(params)
	s := &TaintSummary{
		NumParams:      n,
		ParamSinks:     make([][]SummarySink, n),
		ParamValidated: make([]bool, n),
	}
	if nres := resultCount(pf); nres > 0 {
		s.Results = make([]Taint, nres)
	}
	if FuncMarked(pf.Decl, "sanitizer") {
		s.Sanitizer = true
		for i := range s.ParamValidated {
			s.ParamValidated[i] = true
		}
		return s
	}

	entry := taintState{}
	for i, obj := range params {
		if obj == nil || i >= maxTaintParams {
			continue
		}
		entry[taintKey{root: obj}] = Taint{Direct: uint64(1) << i}
	}
	seen := map[sinkDedup]bool{}
	eng := &taintEngine{
		pf:        pf,
		prog:      p,
		info:      pf.Pkg.TypesInfo,
		summaryOf: p.taintSummaryLocked,
		onSink: func(pos token.Pos, kind string, t Taint, via string) {
			mask := t.bits() & paramsMask
			for i := 0; i < n && i < maxTaintParams; i++ {
				bit := uint64(1) << i
				if mask&bit == 0 {
					continue
				}
				d := sinkDedup{pos: pos, kind: kind, param: i}
				if seen[d] {
					continue
				}
				seen[d] = true
				s.ParamSinks[i] = append(s.ParamSinks[i], SummarySink{
					Kind: kind,
					Via:  via,
					Ovf:  t.Ovf&bit != 0,
				})
			}
		},
		onKill: func(root types.Object) {
			if i := paramIndex(params, root); i >= 0 {
				s.ParamValidated[i] = true
			}
		},
		onReturn: func(taints []Taint) {
			for i, t := range taints {
				if i < len(s.Results) {
					s.Results[i] = s.Results[i].union(t)
				}
			}
		},
	}
	eng.analyze(pf.Decl.Body, entry)
	return s
}

type sinkDedup struct {
	pos   token.Pos
	kind  string
	param int
}

func resultCount(pf *ProgFunc) int {
	sig, ok := pf.Obj.Type().(*types.Signature)
	if !ok {
		return 0
	}
	return sig.Results().Len()
}

// CheckTaint runs the taint analysis over fn's body with no seeded
// parameters, emitting a finding for every sink an untrusted source
// reaches — directly or through the summaries of called functions.
func (p *Program) CheckTaint(fn *types.Func, emit func(TaintFinding)) {
	pf := p.FuncOf(fn)
	if pf == nil {
		return
	}
	type finding struct {
		pos  token.Pos
		kind string
		via  string
		src  uint64
	}
	seen := map[finding]bool{}
	eng := &taintEngine{
		pf:        pf,
		prog:      p,
		info:      pf.Pkg.TypesInfo,
		summaryOf: p.TaintSummaryOf,
		onSink: func(pos token.Pos, kind string, t Taint, via string) {
			src := t.bits() & srcMask
			if src == 0 {
				return
			}
			d := finding{pos: pos, kind: kind, via: via, src: src}
			if seen[d] {
				return
			}
			seen[d] = true
			emit(TaintFinding{
				Pos:      pos,
				Kind:     kind,
				Sources:  src,
				Overflow: t.Ovf&srcMask != 0,
				Via:      via,
			})
		},
	}
	eng.analyze(pf.Decl.Body, taintState{})
}

// ---------------------------------------------------------------------
// Engine

// taintKey addresses one tracked value: a root object (variable,
// parameter, field base) plus a selector path within it ("" for the
// whole object). Explicit path entries override the whole-object
// entry, which is how per-field sanitization works.
type taintKey struct {
	root types.Object
	path string
}

type taintState map[taintKey]Taint

// lookup resolves a key, falling back through shorter path prefixes to
// the whole-object entry.
func (st taintState) lookup(k taintKey) Taint {
	t, _ := st.lookupOK(k)
	return t
}

// lookupOK additionally reports whether any entry (including an
// explicit zero written by a kill) was found.
func (st taintState) lookupOK(k taintKey) (Taint, bool) {
	for {
		if t, ok := st[k]; ok {
			return t, true
		}
		if k.path == "" {
			return Taint{}, false
		}
		if i := strings.LastIndexByte(k.path, '.'); i >= 0 {
			k.path = k.path[:i]
		} else {
			k.path = ""
		}
	}
}

func joinTaint(a, b taintState) taintState {
	out := make(taintState, len(a)+len(b))
	for k := range a { //mtlint:allow maprange map-union join; result is canonical per key set
		out[k] = a.lookup(k).union(b.lookup(k))
	}
	for k := range b { //mtlint:allow maprange map-union join; result is canonical per key set
		if _, ok := out[k]; !ok {
			out[k] = a.lookup(k).union(b.lookup(k))
		}
	}
	return out
}

func equalTaint(a, b taintState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a { //mtlint:allow maprange order-insensitive map comparison
		if o, ok := b[k]; !ok || o != v {
			return false
		}
	}
	return true
}

type taintEngine struct {
	pf        *ProgFunc
	prog      *Program
	info      *types.Info
	summaryOf func(*types.Func) *TaintSummary
	onSink    func(pos token.Pos, kind string, t Taint, via string)
	onKill    func(root types.Object)
	onReturn  func([]Taint)
}

// analyze runs the fixpoint over body, reports sinks with the final
// states, then analyzes directly nested function literals with the
// union of observed states as environment (captured variables keep
// their taint inside closures; gridCache.LoadOrStore(spec, func(){...})
// style indirection stays visible).
func (e *taintEngine) analyze(body *ast.BlockStmt, entry taintState) {
	cfg := NewCFG(body)
	forConds := map[ast.Expr]bool{}
	var lits []*ast.FuncLit
	collectLitsAndConds(body, forConds, &lits)

	transfer := func(b *Block, in taintState) taintState {
		ip := &interp{e: e, st: in, forConds: forConds}
		for _, a := range b.Atoms {
			ip.atom(a)
		}
		return ip.st
	}
	ins := Forward(cfg, entry, joinTaint, equalTaint, transfer)

	env := maps.Clone(entry)
	var blocks []*Block
	for b := range ins { //mtlint:allow maprange collected into an index-sorted slice below
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Index < blocks[j].Index })
	for _, b := range blocks {
		ip := &interp{e: e, st: ins[b], forConds: forConds, report: true}
		for _, a := range b.Atoms {
			ip.atom(a)
		}
		env = joinTaint(env, ip.st)
	}
	for _, lit := range lits {
		sub := *e
		sub.onReturn = nil // literal returns feed their caller, not the summary
		sub.analyze(lit.Body, env)
	}
}

// collectLitsAndConds gathers the for-loop condition expressions and
// the directly nested literals of one body (literals inside literals
// are found when the outer literal is analyzed).
func collectLitsAndConds(body *ast.BlockStmt, conds map[ast.Expr]bool, lits *[]*ast.FuncLit) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			*lits = append(*lits, n)
			return false
		case *ast.ForStmt:
			if n.Cond != nil {
				conds[n.Cond] = true
			}
		}
		return true
	})
}

// interp threads one state through one block's atoms, cloning lazily.
type interp struct {
	e        *taintEngine
	st       taintState
	forConds map[ast.Expr]bool
	mutated  bool
	report   bool
}

func (ip *interp) set(k taintKey, t Taint) {
	if !ip.mutated {
		ip.st = maps.Clone(ip.st)
		if ip.st == nil {
			ip.st = taintState{}
		}
		ip.mutated = true
	}
	ip.st[k] = t
	// A strong whole-object update overrides stale per-path entries.
	if k.path == "" {
		for other := range ip.st { //mtlint:allow maprange deleting subsumed entries; key order is irrelevant
			if other.root == k.root && other.path != "" {
				delete(ip.st, other)
			}
		}
	}
}

// taintOf reads a key's taint: the state first (a kill leaves an
// explicit zero entry, which must win), then the program's index of
// package-level vars initialized from source calls (var f =
// flag.Int(...)) — those initializers never run through any analyzed
// body, so the index substitutes for them.
func (ip *interp) taintOf(k taintKey) Taint {
	if t, ok := ip.st.lookupOK(k); ok {
		return t
	}
	if ip.e.prog != nil && k.root != nil {
		return ip.e.prog.globalTaint[k.root]
	}
	return Taint{}
}

// sink emits one finding. Only the report pass emits: fixpoint
// iterations run the same transfer with report unset and see partial
// states.
func (ip *interp) sink(pos token.Pos, kind string, t Taint, via string) {
	if !ip.report || t.empty() || ip.e.onSink == nil {
		return
	}
	ip.e.onSink(pos, kind, t, via)
}

func (ip *interp) atom(a ast.Node) {
	switch n := a.(type) {
	case *ast.AssignStmt:
		ip.assign(n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var t Taint
					if len(vs.Values) == len(vs.Names) {
						t = ip.eval(vs.Values[i])
					} else if len(vs.Values) == 1 {
						ts := ip.evalMulti(vs.Values[0], len(vs.Names))
						t = ts[i]
					}
					if obj := ip.e.info.Defs[name]; obj != nil {
						ip.set(taintKey{root: obj}, t)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		// x++ preserves x's taint.
	case *ast.ExprStmt:
		ip.eval(n.X)
	case *ast.SendStmt:
		ip.eval(n.Chan)
		ip.eval(n.Value)
	case *ast.GoStmt:
		ip.eval(n.Call)
	case *ast.DeferStmt:
		ip.eval(n.Call)
	case *ast.ReturnStmt:
		ip.returnStmt(n)
	case *ast.RangeStmt:
		ip.rangeStmt(n)
	case ast.Expr:
		ip.eval(n)
		if ip.forConds[n] {
			ip.loopBoundSink(n)
		}
	}
}

// loopBoundSink flags tainted integer operands of a for-condition
// comparison. len/cap operands are exempt: iterating to a container's
// own length allocates nothing the decode step did not already bound.
func (ip *interp) loopBoundSink(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || !isComparison(bin.Op) {
			return true
		}
		for _, op := range []ast.Expr{bin.X, bin.Y} {
			if _, isLit := ast.Unparen(op).(*ast.BasicLit); isLit {
				continue
			}
			if isLenCap(ip.e.info, op) || !isIntExpr(ip.e.info, op) {
				continue
			}
			if t := ip.eval(op); !t.empty() {
				ip.sink(op.Pos(), "loop bound", t, "")
			}
		}
		return true
	})
}

func (ip *interp) assign(n *ast.AssignStmt) {
	var rhs []Taint
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		rhs = ip.evalMulti(n.Rhs[0], len(n.Lhs))
	} else {
		rhs = make([]Taint, len(n.Rhs))
		for i, r := range n.Rhs {
			rhs[i] = ip.eval(r)
		}
	}
	for i, l := range n.Lhs {
		var t Taint
		if i < len(rhs) {
			t = rhs[i]
		}
		switch n.Tok {
		case token.ASSIGN, token.DEFINE:
		case token.MUL_ASSIGN:
			old := ip.eval(l)
			t = mulTaint(old, t)
		default:
			// +=, -=, etc: accumulate.
			t = ip.eval(l).union(t)
		}
		ip.store(l, t)
	}
}

// store writes taint to an lvalue. Identifier and selector targets get
// strong updates; element writes (a[i] = v) union into the container
// and check the index sink.
func (ip *interp) store(l ast.Expr, t Taint) {
	l = ast.Unparen(l)
	if idx, ok := l.(*ast.IndexExpr); ok {
		ip.indexSink(idx)
		if k, _, ok := ip.keyOf(idx.X); ok {
			ip.set(k, ip.taintOf(k).union(t))
		}
		return
	}
	if id, ok := l.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if k, weak, ok := ip.keyOf(l); ok {
		if weak {
			t = ip.taintOf(k).union(t)
		}
		ip.set(k, t)
	}
}

func (ip *interp) returnStmt(n *ast.ReturnStmt) {
	var taints []Taint
	if len(n.Results) > 0 {
		if len(n.Results) == 1 {
			sig, _ := ip.e.pf.Obj.Type().(*types.Signature)
			want := 1
			if sig != nil && sig.Results().Len() > 1 {
				want = sig.Results().Len()
			}
			taints = ip.evalMulti(n.Results[0], want)
		} else {
			for _, r := range n.Results {
				taints = append(taints, ip.eval(r))
			}
		}
	} else {
		// Bare return with named results.
		sig, _ := ip.e.pf.Obj.Type().(*types.Signature)
		if sig != nil {
			for i := 0; i < sig.Results().Len(); i++ {
				taints = append(taints, ip.st.lookup(taintKey{root: sig.Results().At(i)}))
			}
		}
	}
	if ip.report && ip.e.onReturn != nil {
		ip.e.onReturn(taints)
	}
}

func (ip *interp) rangeStmt(n *ast.RangeStmt) {
	xt := ip.eval(n.X)
	keyT, valT := Taint{}, xt
	if tv, ok := ip.e.info.Types[n.X]; ok {
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			keyT = xt
		case *types.Chan:
			keyT = xt
			valT = Taint{}
		}
	}
	if n.Key != nil {
		ip.store(n.Key, keyT)
	}
	if n.Value != nil {
		ip.store(n.Value, valT)
	}
}

// keyOf maps an expression to its state key. weak marks element access
// (updates must union, not overwrite).
func (ip *interp) keyOf(e ast.Expr) (k taintKey, weak bool, ok bool) {
	const maxPathSegments = 4
	e = ast.Unparen(e)
	switch n := e.(type) {
	case *ast.Ident:
		obj := ip.e.info.Uses[n]
		if obj == nil {
			obj = ip.e.info.Defs[n]
		}
		if v, isVar := obj.(*types.Var); isVar {
			return taintKey{root: v}, false, true
		}
	case *ast.SelectorExpr:
		sel, isSel := ip.e.info.Selections[n]
		if !isSel || sel.Kind() != types.FieldVal {
			return taintKey{}, false, false
		}
		inner, w, innerOK := ip.keyOf(n.X)
		if !innerOK {
			return taintKey{}, false, false
		}
		if strings.Count(inner.path, ".") >= maxPathSegments-1 {
			return inner, true, true // path too deep: collapse to the prefix, weakly
		}
		if inner.path == "" {
			inner.path = n.Sel.Name
		} else {
			inner.path += "." + n.Sel.Name
		}
		return inner, w, true
	case *ast.StarExpr:
		return ip.keyOf(n.X)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			return ip.keyOf(n.X)
		}
	case *ast.IndexExpr:
		k, _, ok := ip.keyOf(n.X)
		return k, true, ok
	}
	return taintKey{}, false, false
}

// kill cleans an expression's key after validation: Direct bits drop;
// Ovf bits survive a plain comparison (the wrap already happened) but
// drop on a full kill (callee-validated arguments, min/max).
func (ip *interp) kill(e ast.Expr, full bool) {
	target := ast.Unparen(e)
	// Comparing len(x)/cap(x)/int(x) validates x.
	if call, ok := target.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if isLenCap(ip.e.info, call) || isConversion(ip.e.info, call) {
			target = ast.Unparen(call.Args[0])
		}
	}
	k, _, ok := ip.keyOf(target)
	if !ok {
		return
	}
	old := ip.taintOf(k)
	next := Taint{}
	if !full {
		next.Ovf = old.Ovf
	}
	ip.set(k, next)
	if ip.report && ip.e.onKill != nil && k.root != nil {
		ip.e.onKill(k.root)
	}
}

// eval computes an expression's taint, mutating state for source calls
// (Decode into &x) and sanitizing comparisons.
func (ip *interp) eval(e ast.Expr) Taint {
	ts := ip.evalMulti(e, 1)
	return ts[0]
}

// evalMulti evaluates an expression expected to produce want values
// (call results fan out; everything else replicates).
func (ip *interp) evalMulti(e ast.Expr, want int) []Taint {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		ts := ip.evalCall(call)
		for len(ts) < want {
			ts = append(ts, Taint{})
		}
		return ts
	}
	t := ip.evalSingle(e)
	ts := make([]Taint, want)
	for i := range ts {
		ts[i] = t
	}
	return ts
}

func (ip *interp) evalSingle(e ast.Expr) Taint {
	switch n := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return Taint{}
	case *ast.Ident:
		if k, _, ok := ip.keyOf(n); ok {
			return ip.taintOf(k)
		}
		return Taint{}
	case *ast.SelectorExpr:
		if isRequestExpr(ip.e.info, n.X) {
			return Taint{Direct: SrcRequest}
		}
		if k, _, ok := ip.keyOf(n); ok {
			return ip.taintOf(k)
		}
		return ip.eval(n.X)
	case *ast.StarExpr:
		return ip.eval(n.X)
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			ip.eval(n.X)
			return Taint{}
		}
		return ip.eval(n.X)
	case *ast.BinaryExpr:
		return ip.evalBinary(n)
	case *ast.CallExpr:
		ts := ip.evalCall(n)
		return ts[0]
	case *ast.IndexExpr:
		if tv, ok := ip.e.info.Types[n.Index]; ok && tv.IsType() {
			return ip.eval(n.X) // generic instantiation
		}
		ip.indexSink(n)
		return ip.eval(n.X).union(ip.eval(n.Index))
	case *ast.IndexListExpr:
		return ip.eval(n.X)
	case *ast.SliceExpr:
		for _, sub := range []ast.Expr{n.Low, n.High, n.Max} {
			if sub != nil {
				ip.eval(sub)
			}
		}
		return ip.eval(n.X)
	case *ast.CompositeLit:
		var t Taint
		for _, el := range n.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = t.union(ip.eval(kv.Value))
				continue
			}
			t = t.union(ip.eval(el))
		}
		return t
	case *ast.TypeAssertExpr:
		return ip.eval(n.X)
	case *ast.FuncLit:
		return Taint{}
	}
	return Taint{}
}

func (ip *interp) evalBinary(n *ast.BinaryExpr) Taint {
	if isComparison(n.Op) {
		ip.eval(n.X)
		ip.eval(n.Y)
		if n.Op != token.EQL && n.Op != token.NEQ {
			if isCapExpr(ip.e.info, n.Y) {
				ip.kill(n.X, false)
			}
			if isCapExpr(ip.e.info, n.X) {
				ip.kill(n.Y, false)
			}
		}
		return Taint{}
	}
	xt := ip.eval(n.X)
	yt := ip.eval(n.Y)
	switch n.Op {
	case token.MUL:
		if isIntExpr(ip.e.info, n) {
			return mulTaint(xt, yt)
		}
		return xt.union(yt)
	case token.REM:
		// x % m is bounded by m.
		return Taint{Ovf: xt.Ovf}
	default:
		return xt.union(yt)
	}
}

// mulTaint implements the overflow rule: a product of two tainted
// integers carries their bits in the Ovf mask, which no later cap
// comparison clears.
func mulTaint(a, b Taint) Taint {
	t := a.union(b)
	if !a.empty() && !b.empty() {
		t.Ovf |= a.bits() | b.bits()
	}
	return t
}

func (ip *interp) indexSink(n *ast.IndexExpr) {
	it := ip.eval(n.Index)
	if it.empty() {
		return
	}
	tv, ok := ip.e.info.Types[n.X]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Pointer:
		ip.sink(n.Index.Pos(), "slice index", it, "")
	case *types.Basic: // string indexing
		ip.sink(n.Index.Pos(), "slice index", it, "")
	}
}

// evalCall handles conversions, builtins, the source lexicon, indexed
// callees with summaries, and opaque callees (union of arguments).
func (ip *interp) evalCall(call *ast.CallExpr) []Taint {
	nres := 1
	if tv, ok := ip.e.info.Types[call]; ok {
		if tup, ok := tv.Type.(*types.Tuple); ok {
			nres = tup.Len()
		}
	}
	results := func(t Taint) []Taint {
		out := make([]Taint, max(nres, 1))
		for i := range out {
			out[i] = t
		}
		return out
	}

	if isConversion(ip.e.info, call) {
		if len(call.Args) == 1 {
			return results(ip.eval(call.Args[0]))
		}
		return results(Taint{})
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := ip.e.info.Uses[id].(*types.Builtin); isBuiltin {
			return ip.evalBuiltin(id.Name, call, results)
		}
	}

	var recvT Taint
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvT = ip.eval(sel.X)
	}

	callee := calleeFunc(ip.e.info, call)
	if callee != nil {
		if ts, handled := ip.sourceCall(callee, call, results); handled {
			return ts
		}
		if ip.e.prog.FuncOf(callee) != nil {
			return ip.summaryCall(callee, call, results)
		}
	}

	// Opaque callee (stdlib, dependency, function value): results union
	// the argument and receiver taints — strconv.Atoi(s) is as tainted
	// as s, r.FormValue(k) as tainted as r.
	t := recvT
	for _, a := range call.Args {
		t = t.union(ip.eval(a))
	}
	if callee == nil {
		ip.eval(call.Fun)
	}
	return results(t)
}

func (ip *interp) evalBuiltin(name string, call *ast.CallExpr, results func(Taint) []Taint) []Taint {
	switch name {
	case "make":
		for _, a := range call.Args[1:] {
			if t := ip.eval(a); !t.empty() {
				ip.sink(a.Pos(), "make size", t, "")
			}
		}
		return results(Taint{})
	case "append":
		var t Taint
		for _, a := range call.Args {
			t = t.union(ip.eval(a))
		}
		return results(t)
	case "len", "cap":
		return results(ip.eval(call.Args[0]))
	case "min", "max":
		capped := false
		var t Taint
		for _, a := range call.Args {
			at := ip.eval(a)
			t = t.union(at)
			if isCapExpr(ip.e.info, a) {
				capped = true
			}
		}
		if capped {
			return results(Taint{})
		}
		return results(t)
	default:
		var t Taint
		for _, a := range call.Args {
			t = t.union(ip.eval(a))
		}
		if name == "copy" || name == "delete" || name == "clear" || name == "panic" ||
			name == "print" || name == "println" || name == "close" {
			return results(Taint{})
		}
		return results(t)
	}
}

// sourceCall recognizes the untrusted-input lexicon.
func (ip *interp) sourceCall(callee *types.Func, call *ast.CallExpr, results func(Taint) []Taint) ([]Taint, bool) {
	full := callee.FullName()
	switch full {
	case "os.Getenv", "os.LookupEnv":
		for _, a := range call.Args {
			ip.eval(a)
		}
		return results(Taint{Direct: SrcEnv}), true
	case "encoding/json.Unmarshal":
		if len(call.Args) == 2 {
			ip.eval(call.Args[0])
			ip.taintTarget(call.Args[1], Taint{Direct: SrcRequest})
		}
		return results(Taint{}), true
	case "(*encoding/json.Decoder).Decode":
		if len(call.Args) == 1 {
			ip.taintTarget(call.Args[0], Taint{Direct: SrcRequest})
		}
		return results(Taint{}), true
	}
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "flag" {
		for _, a := range call.Args {
			ip.eval(a)
		}
		if strings.HasSuffix(callee.Name(), "Var") && len(call.Args) > 0 {
			ip.taintTarget(call.Args[0], Taint{Direct: SrcFlag})
			return results(Taint{}), true
		}
		switch callee.Name() {
		case "Parse", "Parsed", "NewFlagSet", "PrintDefaults", "Usage", "Set", "Visit", "VisitAll":
			return results(Taint{}), true
		}
		return results(Taint{Direct: SrcFlag}), true
	}
	return nil, false
}

// taintTarget marks the object behind a &x / pointer argument.
func (ip *interp) taintTarget(arg ast.Expr, t Taint) {
	if k, _, ok := ip.keyOf(arg); ok {
		ip.set(k, t)
		return
	}
	ip.eval(arg)
}

// summaryCall applies an indexed callee's summary: translate parameter
// sinks to the call site, clean validated arguments, derive result
// taint from argument taint.
func (ip *interp) summaryCall(callee *types.Func, call *ast.CallExpr, results func(Taint) []Taint) []Taint {
	calleePF := ip.e.prog.FuncOf(callee)
	sum := ip.e.summaryOf(callee)

	nparams := 0
	if sig, ok := calleePF.Obj.Type().(*types.Signature); ok {
		nparams = sig.Params().Len()
		if sig.Recv() != nil {
			nparams++
		}
	}
	argT := make([]Taint, nparams)
	argExprs := make([]ast.Expr, nparams)
	for i := 0; i < nparams; i++ {
		if arg := callArg(call, calleePF, i); arg != nil {
			argExprs[i] = arg
			argT[i] = ip.eval(arg)
		}
	}

	if sum == nil {
		// Recursion guard hit: propagate arguments, assume no sinks.
		var t Taint
		for _, at := range argT {
			t = t.union(at)
		}
		return results(t)
	}
	if sum.Sanitizer {
		for _, arg := range argExprs {
			if arg != nil {
				ip.kill(arg, true)
			}
		}
		return results(Taint{})
	}

	// Sinks translate with pre-validation argument taint: a summary only
	// records sinks the parameter reached before the callee's own clamp.
	for i := 0; i < nparams && i < len(sum.ParamSinks); i++ {
		if argT[i].empty() {
			continue
		}
		for _, sink := range sum.ParamSinks[i] {
			via := callee.Name()
			if sink.Via != "" {
				via = via + " → " + sink.Via
			}
			t := argT[i]
			if sink.Ovf {
				t.Ovf |= t.Direct
			}
			ip.sink(call.Pos(), sink.Kind, t, via)
		}
	}
	for i := 0; i < nparams && i < len(sum.ParamValidated); i++ {
		if sum.ParamValidated[i] && argExprs[i] != nil {
			ip.kill(argExprs[i], false)
		}
	}

	out := make([]Taint, max(len(sum.Results), 1))
	for r, rt := range sum.Results {
		t := Taint{Direct: rt.Direct & srcMask, Ovf: rt.Ovf & srcMask}
		for i := 0; i < nparams && i < maxTaintParams; i++ {
			bit := uint64(1) << i
			if rt.Direct&bit != 0 {
				t = t.union(argT[i])
			}
			if rt.Ovf&bit != 0 {
				t.Ovf |= argT[i].bits()
			}
		}
		out[r] = t
	}
	for len(out) < 1 {
		out = append(out, Taint{})
	}
	return out
}

// ---------------------------------------------------------------------
// Lexicon predicates

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

func isIntExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isLenCap(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && (b.Name() == "len" || b.Name() == "cap")
}

func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

func isRequestExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "net/http" && n.Obj().Name() == "Request"
}

// capNameFragments match helper calls that express a bound by name:
// cfg.maxSimTime(), Limit(), queueBound().
var capNameFragments = []string{"max", "cap", "limit", "bound", "budget"}

// isCapExpr recognizes cap expressions a comparison may sanitize
// against: named constants, integer literals >= 2 in magnitude,
// len/cap calls, conversions of caps, and calls whose name names a
// bound.
func isCapExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch n := e.(type) {
	case *ast.BasicLit:
		if n.Kind != token.INT && n.Kind != token.FLOAT {
			return false
		}
		v := constant.MakeFromLiteral(n.Value, n.Kind, 0)
		if f, ok := constant.Float64Val(v); ok {
			return f >= 2 || f <= -2
		}
		return false
	case *ast.UnaryExpr:
		if n.Op == token.SUB {
			return isCapExpr(info, n.X)
		}
	case *ast.Ident:
		_, isConst := info.Uses[n].(*types.Const)
		return isConst
	case *ast.SelectorExpr:
		_, isConst := info.Uses[n.Sel].(*types.Const)
		return isConst
	case *ast.CallExpr:
		if isLenCap(info, n) {
			return true
		}
		if isConversion(info, n) && len(n.Args) == 1 {
			return isCapExpr(info, n.Args[0])
		}
		var name string
		switch fun := ast.Unparen(n.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		lower := strings.ToLower(name)
		for _, frag := range capNameFragments {
			if strings.Contains(lower, frag) {
				return true
			}
		}
	}
	return false
}
