package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package plus the metadata the
// analyzers need (assembly files, in-package test sources, module
// context for re-invoking the go tool).
type Package struct {
	ImportPath string
	Name       string
	Dir        string

	GoFiles     []string // absolute paths, non-test
	TestGoFiles []string // absolute paths, in-package _test.go files
	SFiles      []string // absolute paths, assembly sources

	Fset      *token.FileSet
	Files     []*ast.File // parsed GoFiles, with comments
	TestFiles []*ast.File // parsed TestGoFiles, with comments (not type-checked)

	Types     *types.Package
	TypesInfo *types.Info

	// TypeErrors collects non-fatal type-checking problems. A package
	// that builds under `go build` has none; they are surfaced so
	// mtlint fails loudly instead of silently analyzing partial types.
	TypeErrors []error
}

// decodeListPkg reads the next `go list -json` record. The stream is
// produced by the local toolchain from the local module — trusted build
// metadata, not remote input — so this decode boundary is marked as a
// taint sanitizer; without the mark every go-list-derived file count
// would read as request-controlled.
//
//mtlint:sanitizer
func decodeListPkg(dec *json.Decoder, p *goListPkg) error {
	return dec.Decode(p)
}

// goListPkg mirrors the fields of `go list -json` output the loader
// consumes.
type goListPkg struct {
	Dir         string
	ImportPath  string
	Name        string
	GoFiles     []string
	TestGoFiles []string
	SFiles      []string
	Export      string
	ImportMap   map[string]string
	DepOnly     bool
	Standard    bool
	Incomplete  bool
	Error       *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir),
// parses their sources, and type-checks them against the gc export
// data produced by `go list -export`. The export-data route keeps the
// loader independent of golang.org/x/tools while still giving every
// analyzer full types.Info: the go command compiles (or reuses from
// the build cache) each dependency and reports the archive path, and
// go/importer reads those archives directly.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=Dir,ImportPath,Name,GoFiles,TestGoFiles,SFiles,Export,ImportMap,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}

	var (
		targets   []*goListPkg
		exports   = make(map[string]string)
		importMap = make(map[string]string)
	)
	dec := json.NewDecoder(&stdout)
	for {
		var p goListPkg
		if err := decodeListPkg(dec, &p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			cp := p
			targets = append(targets, &cp)
		}
	}

	fset := token.NewFileSet()
	imp := &exportImporter{
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			if to, ok := importMap[path]; ok {
				path = to
			}
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}),
	}

	var out []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", t.ImportPath, err)
		}
		out = append(out, pkg)
	}
	return out, nil
}

// exportImporter wraps the gc export-data importer, special-casing
// "unsafe" (which has no export data; go/types represents it as the
// singleton types.Unsafe).
type exportImporter struct {
	gc types.Importer
}

func (i *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.Import(path)
}

func typecheck(fset *token.FileSet, imp types.Importer, lp *goListPkg) (*Package, error) {
	pkg := &Package{
		ImportPath:  lp.ImportPath,
		Name:        lp.Name,
		Dir:         lp.Dir,
		GoFiles:     absAll(lp.Dir, lp.GoFiles),
		TestGoFiles: absAll(lp.Dir, lp.TestGoFiles),
		SFiles:      absAll(lp.Dir, lp.SFiles),
		Fset:        fset,
	}
	for _, f := range pkg.GoFiles {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, af)
	}
	for _, f := range pkg.TestGoFiles {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.TestFiles = append(pkg.TestFiles, af)
	}

	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tp, err := conf.Check(lp.ImportPath, fset, pkg.Files, pkg.TypesInfo)
	if err != nil && tp == nil {
		return nil, err
	}
	pkg.Types = tp
	return pkg, nil
}

func absAll(dir string, files []string) []string {
	out := make([]string, len(files))
	for i, f := range files {
		if filepath.IsAbs(f) {
			out[i] = f
		} else {
			out[i] = filepath.Join(dir, f)
		}
	}
	return out
}

// GoTool runs the go command with the given arguments in the package's
// module context and returns its combined output. The zeroalloc
// analyzer uses it to obtain `-gcflags=-m` escape-analysis output; the
// build cache replays compiler diagnostics, so repeated runs stay
// cheap.
func (p *Package) GoTool(args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = p.Dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	if err != nil && !strings.Contains(buf.String(), ":") {
		// Diagnostics-bearing failures still return useful output; a
		// bare failure (tool missing, bad invocation) does not.
		return "", fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, buf.String())
	}
	return buf.String(), nil
}
