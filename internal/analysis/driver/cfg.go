package driver

// This file is the intraprocedural control-flow + dataflow core the
// concurrency analyzers (lockcheck, cowcheck, lifecycle) build on. It
// deliberately stops far short of golang.org/x/tools SSA: there is no
// value numbering, no phi insertion, no interprocedural anything —
// just basic blocks over `go/ast` statement structure, a generic
// forward fixpoint, and a reachability query. That is enough to answer
// the questions the concurrency contracts pose ("is this lock held at
// this access?", "does any path write this map after its atomic
// publish?", "is the join reachable from the spawn?") while staying
// stdlib-only and small enough to hold in one's head.
//
// Vocabulary: a Block holds a sequence of *atoms* — simple statements
// (assignments, calls, sends, defers, go statements) and the condition
// or tag expressions of the control statements that end a block.
// Control statements themselves are decomposed into edges and never
// appear whole inside a block, with two deliberate exceptions that
// WalkAtom compensates for: a RangeStmt heads its loop block (its
// Body belongs to other blocks) and a select's CommClause comm
// statements open their clause blocks. WalkAtom therefore never
// descends into a nested *ast.BlockStmt, and visits *ast.FuncLit
// nodes without entering their bodies — a literal's body is its own
// function with its own CFG.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: atoms executed in order, then a transfer
// of control along one of Succs.
type Block struct {
	Index int
	Atoms []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body. Entry is where
// execution begins; Exit is the single synthetic block every return
// (and the final fall-off-the-end) feeds.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// NewCFG builds the control-flow graph of a function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*labelInfo{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	return b.cfg
}

// labelInfo tracks the blocks a label can transfer control to: the
// label's own block (goto target) and, when the labeled statement is a
// loop or switch, its break/continue targets.
type labelInfo struct {
	block *Block // goto target; created lazily on first reference
	brk   *Block
	cont  *Block
}

// loopCtx is one enclosing breakable/continuable construct.
type loopCtx struct {
	brk  *Block
	cont *Block // nil for switch/select (continue skips them)
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil after a terminating statement (return/goto/...)
	loops  []loopCtx
	labels map[string]*labelInfo
	// pendingLabel carries a just-opened label block into the labeled
	// statement so labeled loops register their break/continue targets.
	pendingLabel *labelInfo
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// current returns the block under construction, opening an unreachable
// one if control cannot arrive here (code after return/goto — it still
// parses, so it still gets blocks; they simply have no predecessors).
func (b *cfgBuilder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) atom(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.current()
	blk.Atoms = append(blk.Atoms, n)
}

func (b *cfgBuilder) labelFor(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{}
		b.labels[name] = li
	}
	if li.block == nil {
		li.block = b.newBlock()
	}
	return li
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.labelFor(s.Label.Name)
		b.edge(b.current(), li.block)
		b.cur = li.block
		b.pendingLabel = li
		b.stmt(s.Stmt)
		b.pendingLabel = nil

	case *ast.IfStmt:
		if s.Init != nil {
			b.atom(s.Init)
		}
		b.atom(s.Cond)
		cond := b.current()
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.atom(s.Init)
		}
		head := b.newBlock()
		b.edge(b.current(), head)
		after := b.newBlock()
		if s.Cond != nil {
			b.cur = head
			b.atom(s.Cond)
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			b.cur = post
			b.atom(s.Post)
			b.edge(post, head)
			cont = post
		}
		b.pushLoop(after, cont)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, cont)
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.current(), head)
		// The RangeStmt itself is the head atom: analyzers see its X
		// (and Key/Value) via WalkAtom, which will not descend into the
		// Body — those statements live in the loop body blocks.
		b.cur = head
		b.atom(s)
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(after, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.atom(s.Init)
		}
		if s.Tag != nil {
			b.atom(s.Tag)
		}
		b.buildSwitch(s.Body.List)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.atom(s.Init)
		}
		b.atom(s.Assign)
		b.buildSwitch(s.Body.List)

	case *ast.SelectStmt:
		head := b.current()
		after := b.newBlock()
		b.pushLoop(after, nil)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			clause := b.newBlock()
			b.edge(head, clause)
			b.cur = clause
			// The comm statement (send or receive) opens the clause: it
			// is where the channel operation happens, so analyzers see
			// it with the dataflow state that held at the select.
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.popLoop()
		// An empty select blocks forever: no edge to after.
		if len(s.Body.List) == 0 {
			b.cur = nil
		} else {
			b.cur = after
		}

	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			b.edge(b.current(), b.labelFor(s.Label.Name).block)
			b.cur = nil
		case token.BREAK:
			b.edge(b.current(), b.branchTarget(s.Label, false))
			b.cur = nil
		case token.CONTINUE:
			b.edge(b.current(), b.branchTarget(s.Label, true))
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by buildSwitch, which inspects the clause tail.
		}

	case *ast.ReturnStmt:
		b.atom(s)
		b.edge(b.current(), b.cfg.Exit)
		b.cur = nil

	default:
		// Assign, Decl, Expr, IncDec, Send, Go, Defer, Empty: straight-
		// line atoms.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.atom(s)
	}
}

// buildSwitch lowers (type) switch clauses: the dispatcher block fans
// out to every clause, a missing default adds a fall-past edge, and a
// trailing fallthrough chains to the next clause's block.
func (b *cfgBuilder) buildSwitch(clauses []ast.Stmt) {
	head := b.current()
	after := b.newBlock()
	b.pushLoop(after, nil)
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.atom(e)
		}
		body := cc.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		b.stmtList(body)
		if fallsThrough && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
			b.cur = nil
		} else {
			b.edge(b.cur, after)
		}
	}
	b.popLoop()
	b.cur = after
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.loops = append(b.loops, loopCtx{brk: brk, cont: cont})
	if b.pendingLabel != nil {
		b.pendingLabel.brk = brk
		b.pendingLabel.cont = cont
		b.pendingLabel = nil
	}
}

func (b *cfgBuilder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

func (b *cfgBuilder) branchTarget(label *ast.Ident, isContinue bool) *Block {
	if label != nil {
		li := b.labelFor(label.Name)
		if isContinue && li.cont != nil {
			return li.cont
		}
		if !isContinue && li.brk != nil {
			return li.brk
		}
		// Label declared after the branch (or on a non-loop): fall back
		// to the label block itself; conservative but connected.
		return li.block
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := b.loops[i]
		if isContinue {
			if lc.cont != nil {
				return lc.cont
			}
			continue // continue skips switch/select contexts
		}
		return lc.brk
	}
	// Malformed code (break outside loop) — route to exit so the graph
	// stays connected.
	return b.cfg.Exit
}

// WalkAtom visits n and its children in source order, calling fn for
// each node; fn returning false prunes that subtree. Unlike
// ast.Inspect it never descends into a nested *ast.BlockStmt (those
// statements belong to other blocks) and visits *ast.FuncLit nodes
// without entering their bodies — a literal is its own function with
// its own CFG.
func WalkAtom(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c.(type) {
		case nil:
			return false
		case *ast.BlockStmt:
			return false
		}
		if !fn(c) {
			return false
		}
		if lit, ok := c.(*ast.FuncLit); ok {
			// Visit the literal's signature but not its body.
			ast.Inspect(lit.Type, func(t ast.Node) bool {
				if t == nil {
					return false
				}
				return fn(t)
			})
			return false
		}
		return true
	})
}

// Reachable reports whether to can be reached from from along CFG
// edges (from is considered to reach itself).
func (c *CFG) Reachable(from, to *Block) bool {
	if from == to {
		return true
	}
	seen := make([]bool, len(c.Blocks))
	stack := []*Block{from}
	seen[from.Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if s == to {
				return true
			}
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// BlockOf returns the block whose atoms contain pos, or nil. Positions
// inside nested function literals resolve to the block holding the
// literal's atom.
func (c *CFG) BlockOf(pos token.Pos) *Block {
	for _, b := range c.Blocks {
		for _, a := range b.Atoms {
			if a.Pos() <= pos && pos <= a.End() {
				return b
			}
		}
	}
	return nil
}

// Forward runs an iterative forward dataflow analysis to fixpoint and
// returns the state at entry to each reachable block. join merges the
// states arriving along two edges; equal detects convergence; transfer
// pushes a state through one block's atoms. States must be treated as
// immutable by all three callbacks (return fresh values), and transfer
// must be monotone for termination.
func Forward[S any](c *CFG, entry S, join func(a, b S) S, equal func(a, b S) bool, transfer func(b *Block, in S) S) map[*Block]S {
	in := map[*Block]S{c.Entry: entry}
	work := []*Block{c.Entry}
	queued := make([]bool, len(c.Blocks))
	queued[c.Entry.Index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		out := transfer(blk, in[blk])
		for _, s := range blk.Succs {
			next, ok := in[s]
			if !ok {
				in[s] = out
			} else {
				j := join(next, out)
				if equal(j, next) {
					continue
				}
				in[s] = j
			}
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// FuncBody is one analyzable function body: a declared function or
// method (Decl set) or a function literal (Lit set).
type FuncBody struct {
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Body *ast.BlockStmt
}

// Pos returns the function's position for reporting.
func (f FuncBody) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// PackageFunctions enumerates every function body in the package's
// non-test files: declared functions and methods first, then every
// function literal (including literals nested in other literals), in
// source order. Each body is analyzed as its own function — a
// literal's CFG is not embedded in its enclosing function's.
func PackageFunctions(pkg *Package) []FuncBody {
	var out []FuncBody
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, FuncBody{Decl: n, Body: n.Body})
				}
			case *ast.FuncLit:
				out = append(out, FuncBody{Lit: n, Body: n.Body})
			}
			return true
		})
	}
	return out
}
