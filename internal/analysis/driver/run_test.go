package driver_test

import (
	"errors"
	"go/ast"
	"reflect"
	"testing"

	"multitherm/internal/analysis/driver"
	"multitherm/internal/analysis/taintcheck"
)

// loadFixture loads the small multi-package module the unitsafety
// analyzer tests carry; it gives Run several independent passes to fan
// out without depending on the repository's own package graph.
func loadFixture(t *testing.T) []*driver.Package {
	t.Helper()
	pkgs, err := driver.Load("../unitsafety/testdata/src", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 3 {
		t.Fatalf("fixture module loaded %d packages, want >= 3", len(pkgs))
	}
	return pkgs
}

// identReporter flags every exported top-level declaration name; it is
// cheap, touches every package, and yields multiple diagnostics per
// pass so scheduling skew between parallel passes would be visible as
// reordered output if the slotting were broken.
var identReporter = &driver.Analyzer{
	Name: "identreporter",
	Doc:  "test analyzer: reports every exported top-level name",
	Run: func(pass *driver.Pass) error {
		for _, f := range pass.Files() {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() {
						pass.Reportf(d.Name.Pos(), "exported func %s", d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.IsExported() {
							pass.Reportf(ts.Name.Pos(), "exported type %s", ts.Name.Name)
						}
					}
				}
			}
		}
		return nil
	},
}

var fileReporter = &driver.Analyzer{
	Name: "filereporter",
	Doc:  "test analyzer: reports each file's package clause",
	Run: func(pass *driver.Pass) error {
		for _, f := range pass.Files() {
			pass.Reportf(f.Name.Pos(), "package clause %s", f.Name.Name)
		}
		return nil
	},
}

// TestRunDeterministicOrder runs the same analyzer set repeatedly over
// the same packages and demands bit-identical diagnostic sequences:
// the parallel fan-out must not let goroutine scheduling leak into the
// reported order.
func TestRunDeterministicOrder(t *testing.T) {
	pkgs := loadFixture(t)
	analyzers := []*driver.Analyzer{identReporter, fileReporter}

	first, errs := driver.Run(pkgs, analyzers)
	if len(errs) != 0 {
		t.Fatalf("unexpected infrastructure errors: %v", errs)
	}
	if len(first) == 0 {
		t.Fatal("test analyzers reported nothing; fixture or analyzers broken")
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("diagnostics out of position order: %s then %s", a, b)
		}
	}
	for run := 0; run < 5; run++ {
		got, errs := driver.Run(pkgs, analyzers)
		if len(errs) != 0 {
			t.Fatalf("run %d: unexpected errors: %v", run, errs)
		}
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: diagnostics differ from first run:\nfirst: %v\ngot:   %v", run, first, got)
		}
	}
}

// TestSummaryCacheDeterministic runs the interprocedural taint
// analyzer — whose findings flow entirely through the Program's shared
// summary cache — repeatedly over its fixture module and demands
// identical diagnostics every time. Each Run builds a fresh Program
// whose summaries are computed lazily by whichever parallel pass asks
// first, so this fails if population order ever leaks into a summary
// (or if the cache returns a summary computed for the wrong function).
func TestSummaryCacheDeterministic(t *testing.T) {
	pkgs, err := driver.Load("../taintcheck/testdata/src", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 3 {
		t.Fatalf("taint fixture module loaded %d packages, want >= 3", len(pkgs))
	}
	analyzers := []*driver.Analyzer{taintcheck.Analyzer}
	first, errs := driver.Run(pkgs, analyzers)
	if len(errs) != 0 {
		t.Fatalf("unexpected infrastructure errors: %v", errs)
	}
	if len(first) < 3 {
		t.Fatalf("taintcheck reported %d findings over its fixture, want >= 3 seeded positives", len(first))
	}
	for run := 0; run < 5; run++ {
		got, errs := driver.Run(pkgs, analyzers)
		if len(errs) != 0 {
			t.Fatalf("run %d: unexpected errors: %v", run, errs)
		}
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: diagnostics differ from first run:\nfirst: %v\ngot:   %v", run, first, got)
		}
	}
}

// TestRunContinuesPastErrors checks that one failing analyzer neither
// cancels the remaining passes nor suppresses their findings, and that
// every failing pass surfaces its own error.
func TestRunContinuesPastErrors(t *testing.T) {
	pkgs := loadFixture(t)
	failing := &driver.Analyzer{
		Name: "alwaysfails",
		Doc:  "test analyzer: fails on every package",
		Run:  func(*driver.Pass) error { return errors.New("synthetic failure") },
	}

	diags, errs := driver.Run(pkgs, []*driver.Analyzer{failing, identReporter})
	if len(errs) != len(pkgs) {
		t.Fatalf("got %d errors, want one per package (%d): %v", len(errs), len(pkgs), errs)
	}
	if len(diags) == 0 {
		t.Fatal("healthy analyzer's findings were lost alongside the failing one")
	}
	for _, d := range diags {
		if d.Analyzer != identReporter.Name {
			t.Fatalf("unexpected diagnostic from %s: %s", d.Analyzer, d)
		}
	}
}
