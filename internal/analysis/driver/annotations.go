package driver

import (
	"go/ast"
	"go/token"
	"strings"
)

// mtlint annotation grammar. Annotations are directive-style comments
// (no space after the slashes), so gofmt leaves them alone:
//
//	//mtlint:deterministic
//	    Package marker, placed with the package clause (any file).
//	    Opts the package into the determinism analyzer.
//
//	//mtlint:zeroalloc
//	    Function marker, placed in a function's doc comment. The
//	    zeroalloc analyzer fails the build if escape analysis reports
//	    any heap allocation inside the function body.
//
//	//mtlint:generic <name> tested-by <TestOrFuzzName>
//	    Function marker on a body-less assembly prototype naming its
//	    pure-Go twin and the differential test or fuzz target that
//	    exercises both.
//
//	//mtlint:nogeneric <reason>
//	    Function marker exempting an assembly prototype that is not a
//	    compute kernel (e.g. CPUID feature probes) from kernel parity.
//
//	//mtlint:units
//	    Package marker, placed with the package clause (any file).
//	    Opts the package into the unitsafety analyzer: exported
//	    signatures and struct fields must carry internal/units types
//	    for unit-bearing quantities, cross-dimension conversions are
//	    flagged, and .Raw() escapes must be audited.
//
//	//mtlint:unitboundary <reason>
//	    Function marker, placed in a function's doc comment. Declares
//	    the function a sanctioned unit-erasing boundary, permitting
//	    .Raw() calls inside its body (//mtlint:zeroalloc implies the
//	    same permission — the zero-alloc kernels are the boundary).
//
//	//mtlint:guardedby <lockField> [writes]
//	    Struct-field marker, in the field's doc or trailing comment.
//	    Every access to the field must happen with the named sibling
//	    lock held on the same base expression (g.pending needs g.mu),
//	    proven by the lockcheck analyzer's must-hold dataflow; writes
//	    additionally need the lock exclusively (Lock, not RLock). The
//	    `writes` variant guards writes only — the copy-on-write shape
//	    where lock-free readers Load an immutable snapshot and only
//	    publication takes the writer lock.
//
//	//mtlint:locked <lockField>
//	    Method marker, placed in the method's doc comment. Declares
//	    the contract "callers hold recv.<lockField>": the body is
//	    checked with the lock pre-held, and every call site must
//	    prove it holds the receiver's lock.
//
//	//mtlint:lifecycle
//	    Package marker, placed with the package clause (any file).
//	    Opts the package into the lifecycle analyzer: every goroutine
//	    needs a join path (WaitGroup Done/Wait, observed channel
//	    send) and every timer/ticker a reachable Stop.
//	    //mtlint:deterministic packages are covered implicitly.
//
//	//mtlint:sanitizer
//	    Function marker, placed in the function's doc comment.
//	    Declares the function a trust boundary for the taint analysis:
//	    its results are clean regardless of argument taint, and its
//	    arguments count as validated afterwards. Reserve it for strict
//	    whitelist lookups (MixByName, PolicyByName) and decodes of
//	    trusted local toolchain output — a sanitizer that forwards its
//	    input unexamined silences real findings downstream.
//
//	//mtlint:allow <check> [reason]
//	    Line-level suppression, on the flagged line or the line
//	    directly above it. Checks: floatcmp, maprange, time, rand,
//	    goappend, unit, lockheld, lockorder, guardedby, cowcheck,
//	    atomicmix, lifecycle, taint.
const directivePrefix = "//mtlint:"

// directive splits an "//mtlint:name args..." comment into its name
// and argument string; ok is false for other comments.
func directive(c *ast.Comment) (name, args string, ok bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	name, args, _ = strings.Cut(rest, " ")
	return name, strings.TrimSpace(args), true
}

// PackageMarked reports whether any file of the package carries the
// given //mtlint:<name> directive at package level (in or above the
// package clause's comments, before the first declaration).
func PackageMarked(pkg *Package, name string) bool {
	for _, f := range pkg.Files {
		limit := f.End()
		if len(f.Decls) > 0 {
			limit = f.Decls[0].Pos()
		}
		for _, cg := range f.Comments {
			if cg.Pos() >= limit {
				break
			}
			for _, c := range cg.List {
				if n, _, ok := directive(c); ok && n == name {
					return true
				}
			}
		}
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				if n, _, ok := directive(c); ok && n == name {
					return true
				}
			}
		}
	}
	return false
}

// FuncDirective returns the argument string of the //mtlint:<name>
// directive in fn's doc comment, and whether it is present.
func FuncDirective(fn *ast.FuncDecl, name string) (args string, ok bool) {
	if fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		if n, a, isDir := directive(c); isDir && n == name {
			return a, true
		}
	}
	return "", false
}

// FuncMarked reports whether fn's doc comment carries //mtlint:<name>.
func FuncMarked(fn *ast.FuncDecl, name string) bool {
	_, ok := FuncDirective(fn, name)
	return ok
}

// Allowed reports whether a "//mtlint:allow <check>" suppression
// covers pos: the directive may sit on the same line (trailing
// comment) or on the line immediately above.
func Allowed(pkg *Package, pos token.Pos, check string) bool {
	position := pkg.Fset.Position(pos)
	file := fileFor(pkg, pos)
	if file == nil {
		return false
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			n, args, ok := directive(c)
			if !ok || n != "allow" {
				continue
			}
			fields := strings.Fields(args)
			if len(fields) == 0 || fields[0] != check {
				continue
			}
			cl := pkg.Fset.Position(c.Pos()).Line
			if cl == position.Line || cl == position.Line-1 {
				return true
			}
		}
	}
	return false
}

// fileFor returns the parsed file containing pos (test files included,
// so suppressions work uniformly).
func fileFor(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	for _, f := range pkg.TestFiles {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
