package driver

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFunc parses src (a file body containing one function named fn)
// and returns the function's declaration.
func parseFunc(t *testing.T, src, fn string) (*token.FileSet, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", "package p\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fset, fd
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil
}

// atomStrings renders every atom of every reachable block, for shape
// assertions that survive formatting changes.
func atomStrings(c *CFG) []string {
	var out []string
	for _, b := range c.Blocks {
		if b != c.Entry && len(b.Preds) == 0 {
			continue
		}
		for _, a := range b.Atoms {
			switch a := a.(type) {
			case *ast.Ident:
				out = append(out, a.Name)
			case *ast.ReturnStmt:
				out = append(out, "return")
			default:
				out = append(out, "")
			}
		}
	}
	return out
}

func TestCFGStraightLine(t *testing.T) {
	_, fd := parseFunc(t, `
func f() int {
	x := 1
	x++
	return x
}`, "f")
	c := NewCFG(fd.Body)
	if len(c.Entry.Atoms) != 3 {
		t.Fatalf("entry has %d atoms, want 3 (assign, incdec, return)", len(c.Entry.Atoms))
	}
	if !c.Reachable(c.Entry, c.Exit) {
		t.Fatal("exit not reachable from entry")
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	_, fd := parseFunc(t, `
func f(a bool) int {
	x := 0
	if a {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	c := NewCFG(fd.Body)
	// Entry (assign + cond) must have two successors, both of which
	// reach the block holding the return.
	if got := len(c.Entry.Succs); got != 2 {
		t.Fatalf("condition block has %d successors, want 2", got)
	}
	for i, s := range c.Entry.Succs {
		if !c.Reachable(s, c.Exit) {
			t.Errorf("branch %d cannot reach exit", i)
		}
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	_, fd := parseFunc(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	c := NewCFG(fd.Body)
	// The loop body must be able to reach itself (through the post and
	// head blocks) — i.e. the graph has a cycle.
	var body *Block
	for _, b := range c.Blocks {
		for _, a := range b.Atoms {
			if as, ok := a.(*ast.AssignStmt); ok && as.Tok.String() == "+=" {
				body = b
			}
		}
	}
	if body == nil {
		t.Fatal("loop body block not found")
	}
	cyclic := false
	for _, s := range body.Succs {
		if c.Reachable(s, body) {
			cyclic = true
		}
	}
	if !cyclic {
		t.Fatal("loop body has no back edge to itself")
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	_, fd := parseFunc(t, `
func f(a bool) int {
	if a {
		return 1
	}
	return 2
}`, "f")
	c := NewCFG(fd.Body)
	if len(c.Exit.Preds) != 2 {
		t.Fatalf("exit has %d predecessors, want 2 (both returns)", len(c.Exit.Preds))
	}
}

func TestCFGSelectClausesCarryCommAtoms(t *testing.T) {
	_, fd := parseFunc(t, `
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case b <- 1:
	}
	return 0
}`, "f")
	c := NewCFG(fd.Body)
	recv, send := false, false
	for _, blk := range c.Blocks {
		for _, atom := range blk.Atoms {
			switch atom.(type) {
			case *ast.AssignStmt:
				recv = true
			case *ast.SendStmt:
				send = true
			}
		}
	}
	if !recv || !send {
		t.Fatalf("select comm statements missing from clause blocks (recv=%v send=%v)", recv, send)
	}
}

func TestCFGGotoAndLabels(t *testing.T) {
	_, fd := parseFunc(t, `
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`, "f")
	c := NewCFG(fd.Body)
	if !c.Reachable(c.Entry, c.Exit) {
		t.Fatal("exit unreachable through goto loop")
	}
	// The goto must create a cycle: some block reaches itself.
	cyclic := false
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if c.Reachable(s, b) {
				cyclic = true
			}
		}
	}
	if !cyclic {
		t.Fatal("goto loop produced no cycle")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	_, fd := parseFunc(t, `
func f(m [][]int) int {
outer:
	for _, row := range m {
		for _, v := range row {
			if v < 0 {
				break outer
			}
		}
	}
	return 0
}`, "f")
	c := NewCFG(fd.Body)
	if !c.Reachable(c.Entry, c.Exit) {
		t.Fatal("exit unreachable with labeled break")
	}
}

// TestCFGForwardMustHold exercises the Forward fixpoint with the exact
// lattice lockcheck uses: a must-hold set with intersection join. The
// "lock" is modeled as idents named lock/unlock.
func TestCFGForwardMustHold(t *testing.T) {
	_, fd := parseFunc(t, `
func f(a bool) {
	lock
	if a {
		unlock
	}
	probe
}`, "f")
	c := NewCFG(fd.Body)
	type state = string // "" or "held"
	join := func(x, y state) state {
		if x == y {
			return x
		}
		return ""
	}
	equal := func(x, y state) bool { return x == y }
	var probeState *string
	transfer := func(b *Block, in state) state {
		s := in
		for _, a := range b.Atoms {
			WalkAtom(a, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					switch id.Name {
					case "lock":
						s = "held"
					case "unlock":
						s = ""
					case "probe":
						v := s
						probeState = &v
					}
				}
				return true
			})
		}
		return s
	}
	Forward(c, "", join, equal, transfer)
	if probeState == nil {
		t.Fatal("probe atom never visited")
	}
	// One path unlocks, so the must-hold meet at the probe is "not held".
	if *probeState != "" {
		t.Fatalf("probe sees state %q, want must-hold meet of branches (empty)", *probeState)
	}
}

// TestCFGForwardMayPublish exercises the union-join direction cowcheck
// uses: after a conditional publish, the merge point must still report
// "maybe published".
func TestCFGForwardMayPublish(t *testing.T) {
	_, fd := parseFunc(t, `
func f(a bool) {
	if a {
		publish
	}
	probe
}`, "f")
	c := NewCFG(fd.Body)
	join := func(x, y bool) bool { return x || y }
	equal := func(x, y bool) bool { return x == y }
	var probeState *bool
	transfer := func(b *Block, in bool) bool {
		s := in
		for _, a := range b.Atoms {
			WalkAtom(a, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					switch id.Name {
					case "publish":
						s = true
					case "probe":
						v := s
						probeState = &v
					}
				}
				return true
			})
		}
		return s
	}
	Forward(c, false, join, equal, transfer)
	if probeState == nil || !*probeState {
		t.Fatal("may-publish did not survive the branch merge")
	}
}

// TestWalkAtomSkipsFuncLitBodies proves atoms never leak another
// function's statements: the literal node is visited, its body is not.
func TestWalkAtomSkipsFuncLitBodies(t *testing.T) {
	_, fd := parseFunc(t, `
func f() {
	g := func() { inner }
	g()
}`, "f")
	c := NewCFG(fd.Body)
	sawLit, sawInner := false, false
	for _, b := range c.Blocks {
		for _, a := range b.Atoms {
			WalkAtom(a, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					sawLit = true
				case *ast.Ident:
					if n.Name == "inner" {
						sawInner = true
					}
				}
				return true
			})
		}
	}
	if !sawLit {
		t.Fatal("WalkAtom never visited the function literal node")
	}
	if sawInner {
		t.Fatal("WalkAtom descended into the function literal's body")
	}
}

// TestPackageFunctionsFindsLiterals checks literals are enumerated as
// their own bodies.
func TestPackageFunctionsFindsLiterals(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", `package p
func a() { go func() { _ = func() {} }() }
func b() {}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Fset: fset, Files: []*ast.File{file}}
	fns := PackageFunctions(pkg)
	decls, lits := 0, 0
	for _, f := range fns {
		if f.Decl != nil {
			decls++
		}
		if f.Lit != nil {
			lits++
		}
	}
	if decls != 2 || lits != 2 {
		t.Fatalf("got %d decls and %d literals, want 2 and 2", decls, lits)
	}
}

// TestCFGSwitchFallthrough checks fallthrough chains clause blocks.
func TestCFGSwitchFallthrough(t *testing.T) {
	_, fd := parseFunc(t, `
func f(x int) string {
	out := ""
	switch x {
	case 1:
		out += "one"
		fallthrough
	case 2:
		out += "two"
	default:
		out += "other"
	}
	return out
}`, "f")
	c := NewCFG(fd.Body)
	if !c.Reachable(c.Entry, c.Exit) {
		t.Fatal("exit unreachable through switch")
	}
	// Sanity: all atom text accounted for (no clause bodies dropped).
	var rendered strings.Builder
	for _, b := range c.Blocks {
		for _, a := range b.Atoms {
			if as, ok := a.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
					rendered.WriteString(lit.Value)
				}
			}
		}
	}
	for _, want := range []string{"one", "two", "other"} {
		if !strings.Contains(rendered.String(), want) {
			t.Errorf("case body %q missing from CFG atoms", want)
		}
	}
}
