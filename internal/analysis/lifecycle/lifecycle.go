// Package lifecycle verifies that concurrency in deterministic and
// server packages can be shut down. The SIGTERM drain contract
// (Shutdown → flushAll → pool Close → exit 0) only terminates if
// every goroutine has a join path and every timer can be stopped; a
// single leaked worker or flush timer keeps the process alive past
// drain or fires into freed state after it.
//
// The check runs only in packages marked //mtlint:deterministic or
// //mtlint:lifecycle. For every `go` statement it demands join
// evidence in the spawned body (including, transitively, functions it
// calls, resolved through the driver's call-graph join summaries):
//
//   - a sync.WaitGroup Done whose Wait exists — reachable from the
//     spawn site (CFG) when the group is a local variable, anywhere
//     in the package when it is a field; or
//   - a channel send whose channel is received from somewhere in the
//     package (the errc <- srv.Serve(ln) idiom, observed by the
//     caller's select).
//
// For every time.AfterFunc / time.NewTimer / time.NewTicker it
// demands the result be captured and Stop be called on that variable
// or field somewhere in the package; a discarded result can never be
// stopped. time.Tick is flagged unconditionally — its ticker is
// unreachable by construction.
//
// Join evidence buried inside callees is found through the Program's
// JoinSummary cache: a call contributes the Done/send effects of its
// (transitive) callees, with effects on callee parameters mapped back
// to the arguments at the call site. Function values and interface
// calls remain opaque; a goroutine joined through a mechanism the
// analysis cannot see (context trees, external registries) should
// carry //mtlint:allow lifecycle <reason>.
package lifecycle

import (
	"go/ast"
	"go/token"
	"go/types"

	"multitherm/internal/analysis/driver"
)

// Analyzer is the goroutine/timer lifecycle check.
var Analyzer = &driver.Analyzer{
	Name: "lifecycle",
	Doc:  "flag goroutines without a join path and timers without a stop path in //mtlint:deterministic or //mtlint:lifecycle packages",
	Run:  run,
}

// Marker gates the check; //mtlint:deterministic packages are also
// covered since determinism is the stronger contract.
const Marker = "lifecycle"

// AllowLifecycle is the suppression check name.
const AllowLifecycle = "lifecycle"

type checker struct {
	pass  *driver.Pass
	info  *types.Info
	funcs map[*types.Func]*ast.FuncDecl // package-local declarations
	waits map[types.Object]bool         // WaitGroup objects with a package-level Wait
	stops map[types.Object]bool         // timer/ticker objects Stop is called on
	recvs map[types.Object]bool         // channel objects received from
}

func run(pass *driver.Pass) error {
	if !driver.PackageMarked(pass.Pkg, Marker) && !driver.PackageMarked(pass.Pkg, "deterministic") {
		return nil
	}
	c := &checker{
		pass:  pass,
		info:  pass.TypesInfo(),
		funcs: map[*types.Func]*ast.FuncDecl{},
		waits: map[types.Object]bool{},
		stops: map[types.Object]bool{},
		recvs: map[types.Object]bool{},
	}
	c.collectFacts()
	for _, fb := range driver.PackageFunctions(pass.Pkg) {
		c.checkGoStmts(fb)
	}
	c.checkTimers()
	return nil
}

// collectFacts indexes the package: function declarations, Wait/Stop
// call receivers, and channels that something receives from.
func (c *checker) collectFacts() {
	for _, f := range c.pass.Files() {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := c.info.Defs[fd.Name].(*types.Func); ok {
					c.funcs[fn] = fd
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch c.fullName(sel) {
				case "(*sync.WaitGroup).Wait":
					if obj := c.baseObj(sel.X); obj != nil {
						c.waits[obj] = true
					}
				case "(*time.Timer).Stop", "(*time.Ticker).Stop":
					if obj := c.baseObj(sel.X); obj != nil {
						c.stops[obj] = true
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if obj := c.baseObj(n.X); obj != nil {
						c.recvs[obj] = true
					}
				}
			case *ast.RangeStmt:
				if tv, ok := c.info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						if obj := c.baseObj(n.X); obj != nil {
							c.recvs[obj] = true
						}
					}
				}
			}
			return true
		})
	}
}

// checkGoStmts demands join evidence for every go statement in one
// function body.
func (c *checker) checkGoStmts(fb driver.FuncBody) {
	cfg := driver.NewCFG(fb.Body)
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			c.checkGo(gs, fb, cfg)
			return true // still descend: spawnedBody only reads the literal
		}
		// Nested literals are enumerated as their own FuncBody by
		// PackageFunctions; their go statements are checked there.
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	})
}

// checkGo verifies one go statement.
func (c *checker) checkGo(gs *ast.GoStmt, fb driver.FuncBody, cfg *driver.CFG) {
	body := c.spawnedBody(gs.Call)
	if body != nil && c.hasJoinEvidence(body, gs, fb, cfg) {
		return
	}
	if driver.Allowed(c.pass.Pkg, gs.Pos(), AllowLifecycle) {
		return
	}
	c.pass.Reportf(gs.Pos(), "goroutine has no join or stop path (no WaitGroup Done with a matching Wait, no channel send with a package-side receiver); it can outlive Close and drain")
}

// spawnedBody resolves the body the go statement runs: a literal, or
// a package-local function or method declaration.
func (c *checker) spawnedBody(call *ast.CallExpr) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := c.info.Uses[fun].(*types.Func); ok {
			if fd := c.funcs[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := c.info.Uses[fun.Sel].(*types.Func); ok {
			if fd := c.funcs[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// hasJoinEvidence scans a spawned body for a Done/send that something
// else observes. Calls are resolved through the Program's transitive
// join summaries, so evidence any number of (statically resolvable)
// calls deep counts.
func (c *checker) hasJoinEvidence(body *ast.BlockStmt, gs *ast.GoStmt, fb driver.FuncBody, cfg *driver.CFG) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if obj := c.baseObj(n.Chan); obj != nil && c.recvs[obj] {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && c.fullName(sel) == "(*sync.WaitGroup).Done" {
				if obj := c.baseObj(sel.X); obj != nil && c.waitObserved(obj, gs, fb, cfg) {
					found = true
				}
				return true
			}
			if c.callJoins(n, gs, fb, cfg) {
				found = true
			}
		}
		return true
	})
	return found
}

// callJoins consults the callee's transitive join summary: Done/send
// effects on fields and package variables are checked directly, and
// effects on the callee's parameters are mapped back to this call
// site's arguments first.
func (c *checker) callJoins(call *ast.CallExpr, gs *ast.GoStmt, fb driver.FuncBody, cfg *driver.CFG) bool {
	prog := c.pass.Prog
	if prog == nil {
		return false
	}
	fn := driver.CalleeOf(c.info, call)
	if fn == nil {
		return false
	}
	sum := prog.JoinSummaryOf(fn)
	for _, obj := range sum.DoneObjs {
		if c.waitObserved(obj, gs, fb, cfg) {
			return true
		}
	}
	for _, obj := range sum.SendObjs {
		if c.recvs[obj] {
			return true
		}
	}
	for _, idx := range sum.DoneParams {
		if obj := c.baseObj(prog.CallArg(call, fn, idx)); obj != nil && c.waitObserved(obj, gs, fb, cfg) {
			return true
		}
	}
	for _, idx := range sum.SendParams {
		if obj := c.baseObj(prog.CallArg(call, fn, idx)); obj != nil && c.recvs[obj] {
			return true
		}
	}
	return false
}

// waitObserved decides whether a Done on obj is matched by a Wait:
// fields and package variables need one anywhere in the package;
// locals need one reachable from the spawn site in the spawning
// function, so a Wait on a dead branch does not count.
func (c *checker) waitObserved(obj types.Object, gs *ast.GoStmt, fb driver.FuncBody, cfg *driver.CFG) bool {
	if !c.waits[obj] {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || isPkgLevel(v) {
		return true
	}
	// Local WaitGroup: find a reachable Wait in the spawning function.
	spawnBlock := cfg.BlockOf(gs.Pos())
	if spawnBlock == nil {
		return true // conservative: the spawn sits outside tracked atoms
	}
	reachable := false
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		if reachable {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || c.fullName(sel) != "(*sync.WaitGroup).Wait" {
			return true
		}
		if c.baseObj(sel.X) != obj {
			return true
		}
		wb := cfg.BlockOf(call.Pos())
		if wb != nil && (wb == spawnBlock || cfg.Reachable(spawnBlock, wb)) {
			reachable = true
		}
		return true
	})
	return reachable
}

// timeCtors maps timer-producing time functions to what to call the
// leak.
var timeCtors = map[string]string{
	"time.AfterFunc": "timer",
	"time.NewTimer":  "timer",
	"time.NewTicker": "ticker",
}

// checkTimers demands a stop path for every timer/ticker constructor.
func (c *checker) checkTimers() {
	captured := map[*ast.CallExpr]bool{}
	for _, f := range c.pass.Files() {
		// First pass: constructor results that are captured into a
		// variable or field; verify Stop evidence on the target.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, r := range n.Rhs {
					call, kind := c.timeCtor(r)
					if call == nil {
						continue
					}
					captured[call] = true
					c.checkStopTarget(n.Lhs[i], call, kind)
				}
			case *ast.ValueSpec:
				for i, r := range n.Values {
					call, kind := c.timeCtor(r)
					if call == nil || i >= len(n.Names) {
						continue
					}
					captured[call] = true
					c.checkStopTarget(n.Names[i], call, kind)
				}
			}
			return true
		})
		// Second pass: constructors whose result is discarded, plus
		// time.Tick which has no stoppable handle at all.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && c.fullName(sel) == "time.Tick" {
				if !driver.Allowed(c.pass.Pkg, call.Pos(), AllowLifecycle) {
					c.pass.Reportf(call.Pos(), "time.Tick leaks its ticker by construction; use time.NewTicker and Stop it")
				}
				return true
			}
			kind := ""
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				kind = timeCtors[c.fullName(sel)]
			}
			if kind == "" || captured[call] {
				return true
			}
			// Escaping uses (return values, call arguments, composite
			// literals) hand ownership elsewhere; only a bare statement
			// provably discards the handle.
			if c.isExprStmtCall(f, call) {
				if !driver.Allowed(c.pass.Pkg, call.Pos(), AllowLifecycle) {
					c.pass.Reportf(call.Pos(), "%s result discarded; the %s can never be stopped — capture it and Stop it on shutdown", callName(call), kind)
				}
			}
			return true
		})
	}
}

// checkStopTarget verifies Stop is called somewhere on the variable
// or field a constructor result lands in.
func (c *checker) checkStopTarget(lhs ast.Expr, call *ast.CallExpr, kind string) {
	obj := c.baseObj(lhs)
	if obj == nil {
		return // blank identifier or untrackable target: report as discard below
	}
	if c.stops[obj] {
		return
	}
	if driver.Allowed(c.pass.Pkg, call.Pos(), AllowLifecycle) {
		return
	}
	c.pass.Reportf(call.Pos(), "%s stored in %s is never stopped; call Stop on every shutdown path", kind, obj.Name())
}

// timeCtor matches a timer/ticker constructor call.
func (c *checker) timeCtor(e ast.Expr) (*ast.CallExpr, string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	kind := timeCtors[c.fullName(sel)]
	if kind == "" {
		return nil, ""
	}
	return call, kind
}

// isExprStmtCall reports whether call appears as its own statement.
func (c *checker) isExprStmtCall(f *ast.File, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok && es.X == ast.Expr(call) {
			found = true
		}
		return !found
	})
	return found
}

func (c *checker) fullName(sel *ast.SelectorExpr) string {
	fn, ok := c.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	return fn.FullName()
}

// baseObj resolves the object an expression's access path starts
// from: the field for s.wg, the variable for wg.
func (c *checker) baseObj(e ast.Expr) types.Object {
	switch n := e.(type) {
	case *ast.ParenExpr:
		return c.baseObj(n.X)
	case *ast.UnaryExpr:
		return c.baseObj(n.X)
	case *ast.StarExpr:
		return c.baseObj(n.X)
	case *ast.Ident:
		if o := c.info.Uses[n]; o != nil {
			return o
		}
		return c.info.Defs[n]
	case *ast.SelectorExpr:
		if s, ok := c.info.Selections[n]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
	}
	return nil
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X) + "." + sel.Sel.Name
	}
	return types.ExprString(call.Fun)
}
