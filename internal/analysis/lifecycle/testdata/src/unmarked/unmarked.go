// Package unmarked leaks freely: without //mtlint:lifecycle or
// //mtlint:deterministic the analyzer must stay silent.
package unmarked

import "time"

func work() {}

func Orphan() {
	go work()
	time.AfterFunc(time.Second, work)
}
