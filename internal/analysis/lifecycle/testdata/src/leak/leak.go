// Package leak seeds goroutine and timer leaks: spawns with no join
// evidence and timers nobody can stop. The compliant shapes mirror
// production: WaitGroup-joined workers (local and field), the
// errc-send-observed-by-select idiom, and field timers with a Stop on
// the drain path.
//
//mtlint:lifecycle
package leak

import (
	"sync"
	"time"
)

func work() {}

// Orphan spawns a goroutine nothing ever joins.
func Orphan() {
	go work() // want `goroutine has no join or stop path`
}

// OrphanLit is the literal flavor.
func OrphanLit() {
	go func() { // want `goroutine has no join or stop path`
		work()
	}()
}

// LocalJoin is the steal-scheduler shape: local WaitGroup, Done in
// the body, Wait reachable from the spawn.
func LocalJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// DeadWait has the Done/Wait pair, but the Wait sits behind a return:
// the CFG proves the spawn never reaches it.
func DeadWait(skip bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine has no join or stop path`
		defer wg.Done()
		work()
	}()
	if skip {
		return
	}
	return
	wg.Wait()
}

// worker is the pool shape: Done on a field group, Wait on the drain
// path of another method.
type worker struct {
	wg sync.WaitGroup
}

func (w *worker) run() {
	defer w.wg.Done()
	work()
}

func (w *worker) Start() {
	w.wg.Add(1)
	go w.run()
}

func (w *worker) Close() {
	w.wg.Wait()
}

// finish/finishVia bury the Done two calls deep; the call-graph join
// summaries map the parameter Done back to &wg at each call site.
func finish(wg *sync.WaitGroup) { wg.Done() }

func finishVia(wg *sync.WaitGroup) { finish(wg) }

// DeepJoin joins through two levels of helpers. The summary-based
// analysis proves the Done with no fixed expansion depth; the old
// one-level expansion flagged this shape.
func DeepJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer finishVia(&wg)
		work()
	}()
	wg.Wait()
}

// ServeShape is the thermald idiom: the goroutine's send is observed
// by the caller's receive.
func ServeShape() error {
	errc := make(chan error, 1)
	go func() { errc <- serve() }()
	return <-errc
}

func serve() error { return nil }

// DeafChannel sends on a channel nothing receives from.
func DeafChannel() {
	done := make(chan int, 1)
	go func() { // want `goroutine has no join or stop path`
		done <- 1
	}()
	_ = done
}

// AllowedDetached is the sanctioned leak: the suppression names the
// external joiner the analysis cannot see.
func AllowedDetached() {
	//mtlint:allow lifecycle joined by the process-wide supervisor registry
	go work()
}

// flusher mirrors the batcher: a field timer armed on demand.
type flusher struct {
	mu    sync.Mutex
	timer *time.Timer
}

// Arm stores the timer in a field; Drain stops it, so the package has
// a stop path and Arm is silent.
func (f *flusher) Arm(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.timer = time.AfterFunc(d, work)
}

func (f *flusher) Drain() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.timer != nil {
		f.timer.Stop()
	}
}

// leaky mirrors the seeded bug: the flush timer field has no Stop
// anywhere.
type leaky struct {
	timer *time.Timer
}

func (l *leaky) Arm(d time.Duration) {
	l.timer = time.AfterFunc(d, work) // want `timer stored in timer is never stopped`
}

// DiscardedTimer drops the handle on the floor.
func DiscardedTimer(d time.Duration) {
	time.AfterFunc(d, work) // want `time.AfterFunc result discarded; the timer can never be stopped`
}

// LocalStopped stops its ticker on the way out.
func LocalStopped(d time.Duration) {
	t := time.NewTicker(d)
	defer t.Stop()
	<-t.C
}

// TickLeaks has no stoppable handle at all.
func TickLeaks(d time.Duration) <-chan time.Time {
	return time.Tick(d) // want `time.Tick leaks its ticker by construction`
}

// AllowedTimer suppresses a deliberate fire-and-forget arm.
func AllowedTimer(d time.Duration) {
	//mtlint:allow lifecycle one-shot process deadline; firing is the point
	time.AfterFunc(d, work)
}
