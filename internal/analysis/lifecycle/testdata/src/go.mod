module fixture.example/lifecycle

go 1.22
