package lifecycle_test

import (
	"testing"

	"multitherm/internal/analysis/analysistest"
	"multitherm/internal/analysis/lifecycle"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", lifecycle.Analyzer)
}
