// Package floatcmp flags == and != between floating-point operands
// (and switch statements dispatching on a float tag). Temperature
// thresholds, duty cycles, and controller outputs are exactly where
// DTM policies go subtly wrong: `temp == threshold` silently never
// fires, and a policy compares equal on one build and not another once
// FMA contraction or SIMD dispatch changes the low bits. Comparisons
// should go through a tolerance helper (internal/poly keeps the
// approved ones) or, where exact equality is genuinely the contract —
// memo-key checks, saturation sentinels, skip-zero fast paths — carry
// a //mtlint:allow floatcmp annotation stating why.
//
// Test files are exempt (tests legitimately assert bit-exactness), as
// is the internal/poly package itself.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"multitherm/internal/analysis/driver"
)

// Analyzer is the float-comparison check.
var Analyzer = &driver.Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= and switch on floating-point operands outside approved tolerance helpers",
	Run:  run,
}

// AllowedPackages are packages whose whole purpose is exact float
// manipulation; their comparisons are the approved tolerance helpers
// everyone else should call.
var AllowedPackages = map[string]bool{
	"poly": true,
}

func run(pass *driver.Pass) error {
	pkg := pass.Pkg
	if AllowedPackages[pkg.Name] {
		return nil
	}
	info := pass.TypesInfo()
	for i, file := range pass.Files() {
		if strings.HasSuffix(pkg.GoFiles[i], "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkCmp(pass, info, n)
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(info, n.Tag) && !constExpr(info, n.Tag) {
					if !driver.Allowed(pkg, n.Pos(), "floatcmp") {
						pass.Reportf(n.Pos(), "switch on floating-point value; equality cases are unreliable — compare with a tolerance instead")
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkCmp(pass *driver.Pass, info *types.Info, cmp *ast.BinaryExpr) {
	if !isFloat(info, cmp.X) && !isFloat(info, cmp.Y) {
		return
	}
	// Both sides compile-time constants: the comparison is resolved by
	// the compiler in exact arithmetic and cannot drift at run time.
	if constExpr(info, cmp.X) && constExpr(info, cmp.Y) {
		return
	}
	if driver.Allowed(pass.Pkg, cmp.Pos(), "floatcmp") {
		return
	}
	pass.Reportf(cmp.Pos(), "floating-point %s comparison; use a tolerance helper or annotate //mtlint:allow floatcmp with why exact equality is the contract", cmp.Op)
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func constExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
