// Package app exercises the float-comparison check: bare ==/!= and
// float switches are flagged, constant folds and annotated sentinels
// are not.
package app

func Equal(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func NotEqual(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

func MixedConst(x float64) bool {
	return x == 1.5 // want `floating-point == comparison`
}

func Classify(x float64) int {
	switch x { // want `switch on floating-point value`
	case 0:
		return 0
	}
	return 1
}

const eps = 1e-9

// BothConst folds at compile time in exact arithmetic; not flagged.
func BothConst() bool { return eps == 1e-9 }

// SkipZero documents an exact-equality contract; suppressed.
func SkipZero(x float64) bool {
	return x == 0 //mtlint:allow floatcmp exact-zero sentinel is the contract
}

// Ints are not the analyzer's business.
func Ints(a, b int) bool { return a == b }
