package app

// Test files are exempt: asserting bit-exactness is what they are for.
func bitExact(a, b float64) bool { return a == b }
