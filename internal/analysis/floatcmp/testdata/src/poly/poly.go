// Package poly is name-exempt: its comparisons ARE the approved
// tolerance helpers, so nothing here is flagged.
package poly

func ApproxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
