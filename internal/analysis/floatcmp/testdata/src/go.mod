module fixture.example/floatcmp

go 1.22
