package floatcmp_test

import (
	"testing"

	"multitherm/internal/analysis/analysistest"
	"multitherm/internal/analysis/floatcmp"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata/src", floatcmp.Analyzer)
}
