// Package order seeds a lock-order inversion: Transfer takes a then
// b, Refund takes b then a. Either function alone is fine; together
// they deadlock two goroutines that interleave. The analyzer must
// flag both acquire sites that close the cycle.
package order

import "sync"

var (
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
)

func Transfer() {
	a.Lock()
	defer a.Unlock()
	b.Lock() // want `lock ordering cycle: pkgvar:b acquired while pkgvar:a held`
	defer b.Unlock()
}

func Refund() {
	b.Lock()
	defer b.Unlock()
	a.Lock() // want `lock ordering cycle: pkgvar:a acquired while pkgvar:b held`
	defer a.Unlock()
}

// Nested consistently with the a->b order: no cycle through c.
func Consistent() {
	a.Lock()
	defer a.Unlock()
	c.Lock()
	defer c.Unlock()
}

func Recursive() {
	a.Lock()
	a.Lock() // want `lock a acquired while already held`
	a.Unlock()
	a.Unlock()
}

// ReleasedBetween holds neither lock while taking the other, so it
// contributes no ordering edge at all.
func ReleasedBetween() {
	b.Lock()
	b.Unlock()
	a.Lock()
	a.Unlock()
}
