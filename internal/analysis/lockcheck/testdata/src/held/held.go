// Package held seeds locks held across blocking operations: channel
// sends and receives, WaitGroup joins, and worker-pool submission —
// each one a server-wide stall when the blocked goroutine owns a lock
// every other request path needs.
package held

import (
	"sync"
	"time"
)

// Pool mimics the parallel.Pool surface; lockcheck matches it by type
// and method name so the fixture exercises the production shape.
type Pool struct{}

func (p *Pool) Submit(job func()) error { return nil }
func (p *Pool) Close()                  {}

type server struct {
	mu   sync.Mutex
	out  chan int
	pool *Pool
}

func (s *server) SendWhileLocked(v int) {
	s.mu.Lock()
	s.out <- v // want `lock s\.mu held across a channel send`
	s.mu.Unlock()
}

func (s *server) RecvWhileLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.out // want `lock s\.mu held across a channel receive`
}

func (s *server) SubmitWhileLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.pool.Submit(func() {}) // want `lock s\.mu held across s\.pool\.Submit`
}

func (s *server) WaitWhileLocked(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `lock s\.mu held across sync\.WaitGroup\.Wait`
	s.mu.Unlock()
}

func (s *server) SleepWhileLocked() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `lock s\.mu held across time\.Sleep`
	s.mu.Unlock()
}

// ReleaseFirst is the compliant shape: take what you need under the
// lock, release, then block.
func (s *server) ReleaseFirst(v int) {
	s.mu.Lock()
	out := s.out
	s.mu.Unlock()
	out <- v
}

// CondWait is the sanctioned blocking-under-lock idiom: Wait
// atomically releases the mutex while parked.
type queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (q *queue) Take() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		q.cond.Wait()
	}
	q.n--
	return q.n
}

// Allowed demonstrates the suppression escape hatch.
func (s *server) Allowed(v int) {
	s.mu.Lock()
	//mtlint:allow lockheld startup handshake; the receiver is guaranteed ready before any contender exists
	s.out <- v
	s.mu.Unlock()
}
