// Package guarded seeds //mtlint:guardedby and //mtlint:locked
// violations: unlocked reads and writes of guarded fields, a write
// under a read lock, a copy-on-write publish without the writer lock,
// and a caller-holds-lock helper invoked bare. The compliant shapes
// mirror production: defer-unlock mutators, lock-free snapshot
// readers, and locked helpers called under their lock.
package guarded

import (
	"sync"
	"sync/atomic"
	"time"
)

type group struct {
	mu sync.Mutex
	//mtlint:guardedby mu
	pending []int
	timer   *time.Timer //mtlint:guardedby mu
}

// Add is the compliant mutator: every access happens under g.mu.
func (g *group) Add(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pending = append(g.pending, v)
	if g.timer == nil {
		g.timer = time.NewTimer(time.Second)
	}
}

func (g *group) LenBad() int {
	return len(g.pending) // want `read of g\.pending requires g\.mu held`
}

func (g *group) ResetBad() {
	g.pending = nil // want `write of g\.pending requires g\.mu held`
}

// LenAllowed shows the suppression: a torn length is tolerable for
// monitoring output.
func (g *group) LenAllowed() int {
	//mtlint:allow guardedby approximate gauge; a torn read is acceptable
	return len(g.pending)
}

// takeLocked's contract is "caller holds g.mu"; the annotation seeds
// the entry state so the body checks clean, and makes call sites
// prove they hold the lock.
//
//mtlint:locked mu
func (g *group) takeLocked() []int {
	out := g.pending
	g.pending = nil
	return out
}

func (g *group) Flush() []int {
	g.mu.Lock()
	out := g.takeLocked()
	g.mu.Unlock()
	return out
}

func (g *group) FlushBad() []int {
	return g.takeLocked() // want `call to takeLocked requires g\.mu held \(//mtlint:locked\)`
}

// lockFor/unlockFor are net-effect helpers: the program-wide lock
// summaries propagate their acquire/release to every call site.
func (g *group) lockFor()   { g.mu.Lock() }
func (g *group) unlockFor() { g.mu.Unlock() }

// FlushViaHelper acquires through a helper; the callee's net-acquire
// summary leaves g.mu in the held set, so the locked call checks clean.
func (g *group) FlushViaHelper() []int {
	g.lockFor()
	out := g.takeLocked()
	g.unlockFor()
	return out
}

// FlushReleasedEarly releases through a helper before the locked call;
// the net-release summary empties the held set first.
func (g *group) FlushReleasedEarly() []int {
	g.mu.Lock()
	g.unlockFor()
	return g.takeLocked() // want `call to takeLocked requires g\.mu held \(//mtlint:locked\)`
}

// RelockViaHelper re-acquires through the helper while already holding
// the lock — the summarized acquire deadlocks like a direct one.
func (g *group) RelockViaHelper() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.lockFor() // want `call to g\.lockFor re-acquires g\.mu, which is already held`
}

// stats exercises the shared/exclusive split of an RWMutex guard.
type stats struct {
	mu sync.RWMutex
	//mtlint:guardedby mu
	hits map[string]int
}

// Get reads under RLock: shared access is enough for a read.
func (s *stats) Get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits[k]
}

func (s *stats) BumpUnderRLock(k string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.hits[k]++ // want `write of s\.hits requires s\.mu held exclusively; only RLock is held`
}

func (s *stats) Bump(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits[k]++
}

// cache mirrors the memo copy-on-write layout: readers load the
// snapshot lock-free, publication requires the writer lock.
type cache struct {
	mu sync.Mutex
	//mtlint:guardedby mu writes
	snap atomic.Pointer[map[string]int]
}

// Lookup is the lock-free fast path — reads of a writes-guarded field
// need no lock.
func (c *cache) Lookup(k string) (int, bool) {
	m := c.snap.Load()
	if m == nil {
		return 0, false
	}
	v, ok := (*m)[k]
	return v, ok
}

// Publish swaps in a rebuilt snapshot under the writer lock.
func (c *cache) Publish(m map[string]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snap.Store(&m)
}

func (c *cache) PublishBad(m map[string]int) {
	c.snap.Store(&m) // want `write of c\.snap requires c\.mu held`
}

// misannotated proves the spec itself is validated: the named lock
// must be a sibling field.
type misannotated struct {
	//mtlint:guardedby lock
	data []int // want `//mtlint:guardedby names .lock., which is not a field of this struct`
}
