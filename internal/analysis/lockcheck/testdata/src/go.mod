module fixture.example/lockcheck

go 1.22
